package repro_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
	"repro/internal/selector"
	"repro/internal/sum"
)

// TestPublicCalibrationLoop drives the closed loop end to end through
// the public API: calibrate (quick envelope), persist, load, install
// with WithCalibration, and serve — the runtime must still honor the
// tolerance contract (tolerance 0 resolves to a reproducible rung) and
// expose cache statistics from the auto-attached decision cache.
func TestPublicCalibrationLoop(t *testing.T) {
	cal := selector.RunCalibration(selector.HarnessConfig{
		Accuracy: selector.CalibrationConfig{
			Ns:     []int{256, 1024},
			Ks:     []float64{1, 1e4, 1e8},
			DRs:    []int{0, 16},
			Trials: 8,
			Seed:   21,
		},
		Cost: selector.CostSweepConfig{
			Ns:         []int{256},
			Workers:    []int{0},
			LaneWidths: []int{1},
			MinTime:    100 * time.Microsecond,
			Reps:       1,
		},
		Host: "api-test",
	})

	path := filepath.Join(t.TempDir(), "host.reprocal")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := selector.SaveCalibration(f, cal); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := repro.LoadCalibrationFile(path)
	if err != nil {
		t.Fatalf("LoadCalibrationFile: %v", err)
	}
	if loaded.Host != "api-test" || len(loaded.Cells) != len(cal.Cells) {
		t.Fatalf("loaded artifact host=%q cells=%d, want api-test/%d", loaded.Host, len(loaded.Cells), len(cal.Cells))
	}

	rt := repro.New(0, repro.WithCalibration(loaded))
	xs := []float64{3.5, -3.5, 1.25, 2.75}
	total, rep := rt.Sum(xs)
	if total != 4 {
		t.Errorf("calibrated runtime sum = %g, want 4", total)
	}
	if rep.Algorithm != repro.Binned && rep.Algorithm != repro.Prerounded {
		t.Errorf("tolerance 0 under calibration picked %v, want a reproducible algorithm", rep.Algorithm)
	}
	if _, ok := rt.CacheStats(); !ok {
		t.Error("WithCalibration did not attach a decision cache")
	}

	// A loose tolerance must serve through the surface without escalating
	// to a reproducible rung on benign data.
	loose := repro.New(1e-6, repro.WithCalibration(loaded))
	if _, rep := loose.Sum(xs); rep.Algorithm.CostRank() > sum.BinnedAlg.CostRank() {
		t.Errorf("loose tolerance picked %v, costlier than the reproducible floor", rep.Algorithm)
	}
}

// TestPublicLoadCalibrationRejectsGarbage pins the public loader's
// error path.
func TestPublicLoadCalibrationRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.reprocal")
	if err := os.WriteFile(path, []byte("not a calibration\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := repro.LoadCalibrationFile(path); err == nil {
		t.Error("garbage artifact loaded without error")
	}
	if _, err := repro.LoadCalibrationFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file loaded without error")
	}
}
