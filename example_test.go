package repro_test

import (
	"fmt"

	"repro"
)

// The intelligent runtime profiles the data and selects the cheapest
// algorithm meeting the reproducibility tolerance.
func ExampleNew() {
	values := []float64{1e16, 3.25, -1e16, 1.25}
	rt := repro.New(0) // bitwise reproducibility required
	total, report := rt.Sum(values)
	fmt.Println(total, report.Algorithm)
	// Output: 4.5 BN
}

// Fixed algorithms are available directly; compensated and prerounded
// summation recover bits the naive sum loses.
func ExampleSum() {
	values := []float64{1e16, 1, -1e16}
	fmt.Println(repro.Sum(repro.Standard, values))
	fmt.Println(repro.Sum(repro.Composite, values))
	// Output:
	// 0
	// 1
}

// ExactSum is the order-independent oracle: the correctly rounded value
// of the real-arithmetic sum.
func ExampleExactSum() {
	fmt.Println(repro.ExactSum([]float64{1e9, 1e-9, -1e9}))
	// Output: 1e-09
}

// CondNumber measures how sensitive a set's sum is to perturbations —
// the paper's k parameter.
func ExampleCondNumber() {
	fmt.Println(repro.CondNumber([]float64{1, 2, 3}))       // same sign
	fmt.Println(repro.CondNumber([]float64{500.5, -499.5})) // cancelling
	// Output:
	// 1
	// 1000
}

// Dot products inherit their summation algorithm's guarantees; the
// Prerounded variant is bitwise reproducible under any term order.
func ExampleDot() {
	a := []float64{0x1p20, 0x1p20, 1}
	b := []float64{0x1p20, -0x1p20, 0x1p-20}
	// The huge products cancel exactly; the tiny one survives, and the
	// result is bitwise identical for every term order.
	fmt.Println(repro.Dot(repro.Prerounded, a, b))
	// Output: 9.5367431640625e-07
}

// Streaming accumulators support the local-sum phase of a distributed
// reduction.
func ExampleAlgorithm_NewAccumulator() {
	acc := repro.Kahan.NewAccumulator()
	for i := 0; i < 10; i++ {
		acc.Add(0.1)
	}
	fmt.Printf("%.1f\n", acc.Sum())
	// Output: 1.0
}
