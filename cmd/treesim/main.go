// Command treesim reduces a generated workload over varied reduction
// trees and reports each algorithm's result spread — an interactive
// version of the paper's Figs 6 and 7.
//
// Usage:
//
//	treesim -n 8192 -k inf -dr 32 -shape unbalanced -trees 100
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

func main() {
	n := flag.Int("n", 8192, "number of summands")
	kStr := flag.String("k", "inf", "target condition number (number or 'inf')")
	dr := flag.Int("dr", 32, "binary dynamic range")
	shapeStr := flag.String("shape", "balanced", "tree shape: balanced, unbalanced, random, blocked, knomial")
	trees := flag.Int("trees", 100, "number of permuted trees")
	seed := flag.Uint64("seed", 1, "seed")
	flag.Parse()

	k := math.Inf(1)
	if *kStr != "inf" {
		if _, err := fmt.Sscanf(*kStr, "%g", &k); err != nil {
			fmt.Fprintf(os.Stderr, "treesim: bad -k %q\n", *kStr)
			os.Exit(1)
		}
	}
	var shape tree.Shape
	switch *shapeStr {
	case "balanced":
		shape = tree.Balanced
	case "unbalanced":
		shape = tree.Unbalanced
	case "random":
		shape = tree.Random
	case "blocked":
		shape = tree.Blocked
	case "knomial":
		shape = tree.Knomial
	default:
		fmt.Fprintf(os.Stderr, "treesim: unknown shape %q\n", *shapeStr)
		os.Exit(1)
	}

	xs := gen.Spec{N: *n, Cond: k, DynRange: *dr, Seed: *seed}.Generate()
	ref := bigref.SumFloat64(xs)
	fmt.Printf("workload: n=%d measured k=%.3g dr=%d; exact sum %.17g\n",
		*n, metrics.CondNumber(xs), metrics.DynRange(xs), ref)
	fmt.Printf("reducing over %d %s trees with permuted leaf assignments\n\n", *trees, shape)

	labels := make([]string, 0, len(sum.PaperAlgorithms))
	stats := make([]metrics.Stats, 0, len(sum.PaperAlgorithms))
	var rows [][]string
	for _, alg := range sum.PaperAlgorithms {
		rng := fpu.NewRNG(*seed ^ uint64(alg)<<13)
		sums := grid.AlgSpread(alg, shape, xs, *trees, rng)
		st := metrics.ErrorStats(sums, ref)
		labels = append(labels, alg.String())
		stats = append(stats, st)
		rows = append(rows, []string{
			alg.String(),
			fmt.Sprintf("%.3g", st.Max),
			fmt.Sprintf("%.3g", st.StdDev),
			fmt.Sprintf("%d", metrics.DistinctValues(sums)),
		})
	}
	fmt.Print(textplot.Boxplot("error magnitude per tree", labels, stats, 60))
	fmt.Println()
	fmt.Print(textplot.Table([]string{"alg", "max err", "stddev", "distinct results"}, rows))
}
