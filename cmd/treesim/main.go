// Command treesim reduces a generated workload over varied reduction
// trees and reports each algorithm's result spread — an interactive
// version of the paper's Figs 6 and 7.
//
// Usage:
//
//	treesim -n 8192 -k inf -dr 32 -shape unbalanced -trees 100
//
// With -collective the workload is instead distributed over an mpirt
// world and reduced with a collective schedule under arrival-order
// merging and jitter, one world per trial:
//
//	treesim -n 8192 -collective rabenseifner -ranks 256
//	treesim -n 8192 -collective auto -ranks 1024   # selection table picks
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/mpirt"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

func main() {
	n := flag.Int("n", 8192, "number of summands")
	kStr := flag.String("k", "inf", "target condition number (number or 'inf')")
	dr := flag.Int("dr", 32, "binary dynamic range")
	shapeStr := flag.String("shape", "balanced", "tree shape: balanced, unbalanced, random, blocked, knomial")
	trees := flag.Int("trees", 100, "number of permuted trees (or jittered worlds with -collective)")
	seed := flag.Uint64("seed", 1, "seed")
	collective := flag.String("collective", "",
		"reduce over an mpirt collective instead of permuted trees: binomial, binary, chain, flat, rabenseifner, rsag, dtree, or auto (selection table)")
	ranks := flag.Int("ranks", 64, "mpirt world size for -collective")
	flag.Parse()

	k := math.Inf(1)
	if *kStr != "inf" {
		if _, err := fmt.Sscanf(*kStr, "%g", &k); err != nil {
			fmt.Fprintf(os.Stderr, "treesim: bad -k %q\n", *kStr)
			os.Exit(1)
		}
	}
	var shape tree.Shape
	switch *shapeStr {
	case "balanced":
		shape = tree.Balanced
	case "unbalanced":
		shape = tree.Unbalanced
	case "random":
		shape = tree.Random
	case "blocked":
		shape = tree.Blocked
	case "knomial":
		shape = tree.Knomial
	default:
		fmt.Fprintf(os.Stderr, "treesim: unknown shape %q\n", *shapeStr)
		os.Exit(1)
	}

	xs := gen.Spec{N: *n, Cond: k, DynRange: *dr, Seed: *seed}.Generate()
	ref := bigref.SumFloat64(xs)
	fmt.Printf("workload: n=%d measured k=%.3g dr=%d; exact sum %.17g\n",
		*n, metrics.CondNumber(xs), metrics.DynRange(xs), ref)
	if *collective != "" {
		runCollective(*collective, *ranks, *trees, *seed, xs, ref)
		return
	}
	fmt.Printf("reducing over %d %s trees with permuted leaf assignments\n\n", *trees, shape)

	labels := make([]string, 0, len(sum.PaperAlgorithms))
	stats := make([]metrics.Stats, 0, len(sum.PaperAlgorithms))
	var rows [][]string
	for _, alg := range sum.PaperAlgorithms {
		rng := fpu.NewRNG(*seed ^ uint64(alg)<<13)
		sums := grid.AlgSpread(alg, shape, xs, *trees, rng)
		st := metrics.ErrorStats(sums, ref)
		labels = append(labels, alg.String())
		stats = append(stats, st)
		rows = append(rows, []string{
			alg.String(),
			fmt.Sprintf("%.3g", st.Max),
			fmt.Sprintf("%.3g", st.StdDev),
			fmt.Sprintf("%d", metrics.DistinctValues(sums)),
		})
	}
	fmt.Print(textplot.Boxplot("error magnitude per tree", labels, stats, 60))
	fmt.Println()
	fmt.Print(textplot.Table([]string{"alg", "max err", "stddev", "distinct results"}, rows))
}

// runCollective distributes the workload over an mpirt world and
// reduces it with the chosen collective schedule, one jittered
// arrival-order world per trial, reporting each algorithm's spread the
// same way the tree simulation does.
func runCollective(name string, ranks, trials int, seed uint64, xs []float64, ref float64) {
	var topo mpirt.Topology
	if name == "auto" {
		perRank := (len(xs) + ranks - 1) / ranks
		topo = mpirt.SelectTopology(8*perRank, ranks)
		fmt.Printf("selection table picked %v for %dB/rank over %d ranks\n", topo, 8*perRank, ranks)
	} else {
		t, err := mpirt.ParseTopology(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "treesim:", err)
			os.Exit(1)
		}
		topo = t
	}
	fmt.Printf("reducing over the %v collective: %d ranks, %d arrival-order worlds with jitter\n\n",
		topo, ranks, trials)

	algs := append(append([]sum.Algorithm(nil), sum.PaperAlgorithms...), sum.BinnedAlg)
	per := (len(xs) + ranks - 1) / ranks
	labels := make([]string, 0, len(algs))
	stats := make([]metrics.Stats, 0, len(algs))
	var rows [][]string
	for _, alg := range algs {
		op := alg.Op()
		sums := make([]float64, 0, trials)
		for trial := 0; trial < trials; trial++ {
			w := mpirt.NewWorld(ranks, mpirt.Config{
				Jitter: 100 * time.Microsecond,
				Seed:   seed ^ uint64(alg)<<13 ^ uint64(trial)<<1,
			})
			var got float64
			err := w.Run(func(r *mpirt.Rank) {
				lo, hi := r.ID*per, (r.ID+1)*per
				if lo > len(xs) {
					lo = len(xs)
				}
				if hi > len(xs) {
					hi = len(xs)
				}
				if v, ok := r.ReduceSum(0, xs[lo:hi], op, topo, mpirt.ArrivalOrder); ok {
					got = v
				}
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "treesim:", err)
				os.Exit(1)
			}
			sums = append(sums, got)
		}
		st := metrics.ErrorStats(sums, ref)
		labels = append(labels, alg.String())
		stats = append(stats, st)
		rows = append(rows, []string{
			alg.String(),
			fmt.Sprintf("%.3g", st.Max),
			fmt.Sprintf("%.3g", st.StdDev),
			fmt.Sprintf("%d", metrics.DistinctValues(sums)),
		})
	}
	fmt.Print(textplot.Boxplot("error magnitude per world", labels, stats, 60))
	fmt.Println()
	fmt.Print(textplot.Table([]string{"alg", "max err", "stddev", "distinct results"}, rows))
}
