// Command redbench regenerates every table and figure of the paper's
// evaluation and writes the rendered results to stdout (and optionally
// to per-artifact files under -out).
//
// Usage:
//
//	redbench [-full] [-seed N] [-only fig7,fig9] [-out results/]
//
// Quick mode (default) runs scaled-down experiments in seconds; -full
// runs near-paper-scale parameters (minutes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run near-paper-scale experiments (minutes)")
	seed := flag.Uint64("seed", 1, "experiment seed")
	only := flag.String("only", "", "comma-separated artifact ids to run (e.g. fig7,fig9); empty = all")
	out := flag.String("out", "", "directory to write per-artifact .txt files (optional)")
	jsonOut := flag.Bool("json", false, "also write machine-readable .json files under -out")
	flag.Parse()

	cfg := experiments.Config{Scale: experiments.Quick, Seed: *seed}
	if *full {
		cfg.Scale = experiments.Full
	}

	type driver struct {
		id  string
		run func(experiments.Config) experiments.Result
	}
	drivers := []driver{
		{"tableI", func(c experiments.Config) experiments.Result { return experiments.TableI(c) }},
		{"fig2", func(c experiments.Config) experiments.Result { return experiments.Fig2(c) }},
		{"fig3", func(c experiments.Config) experiments.Result { return experiments.Fig3(c) }},
		{"fig4+fig5", func(c experiments.Config) experiments.Result { return experiments.Fig45(c) }},
		{"fig6", func(c experiments.Config) experiments.Result { return experiments.Fig6(c) }},
		{"fig7", func(c experiments.Config) experiments.Result { return experiments.Fig7(c) }},
		{"fig9", func(c experiments.Config) experiments.Result { return experiments.Fig9(c) }},
		{"fig10", func(c experiments.Config) experiments.Result { return experiments.Fig10(c) }},
		{"fig11", func(c experiments.Config) experiments.Result { return experiments.Fig11(c) }},
		{"fig12", func(c experiments.Config) experiments.Result { return experiments.Fig12(c) }},
		{"ext-topology", func(c experiments.Config) experiments.Result { return experiments.TopoExt(c) }},
		{"ext-interval", func(c experiments.Config) experiments.Result { return experiments.IntervalExt(c) }},
		{"ext-nbody", func(c experiments.Config) experiments.Result { return experiments.NBodyExt(c) }},
		{"ext-shapes", func(c experiments.Config) experiments.Result { return experiments.ShapesExt(c) }},
		{"ext-precision", func(c experiments.Config) experiments.Result { return experiments.PrecisionExt(c) }},
		{"ext-bounds", func(c experiments.Config) experiments.Result { return experiments.BoundsExt(c) }},
		{"ext-parallel", func(c experiments.Config) experiments.Result { return experiments.ParallelExt(c) }},
		{"ext-collectives", func(c experiments.Config) experiments.Result { return experiments.CollectivesExt(c) }},
	}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "redbench:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("redbench: scale=%s seed=%d\n", cfg.Scale, cfg.Seed)
	for _, d := range drivers {
		if len(wanted) > 0 && !wanted[d.id] && !anyPartWanted(wanted, d.id) {
			continue
		}
		start := time.Now()
		res := d.run(cfg)
		text := res.String()
		fmt.Printf("\n===== %s (%.1fs) =====\n%s\n", d.id, time.Since(start).Seconds(), text)
		if *out != "" {
			base := strings.ReplaceAll(d.id, "+", "_")
			if err := os.WriteFile(filepath.Join(*out, base+".txt"), []byte(text), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "redbench:", err)
				os.Exit(1)
			}
			if *jsonOut {
				blob, err := json.MarshalIndent(res, "", "  ")
				if err != nil {
					fmt.Fprintln(os.Stderr, "redbench: json:", err)
					os.Exit(1)
				}
				if err := os.WriteFile(filepath.Join(*out, base+".json"), blob, 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "redbench:", err)
					os.Exit(1)
				}
			}
		}
	}
}

// anyPartWanted matches combined ids like "fig4+fig5" against either part.
func anyPartWanted(wanted map[string]bool, id string) bool {
	for _, part := range strings.Split(id, "+") {
		if wanted[part] {
			return true
		}
	}
	return false
}
