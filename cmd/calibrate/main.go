// Command calibrate closes the selection loop on the local host: it
// benchmarks the summation engines (accuracy sweep across the
// (n, k, dynamic-range) envelope plus engine cost sweep across
// workers × lane widths × sizes), fits the results into selection
// surfaces, and writes a versioned calibration artifact the runtime
// loads at startup (repro.LoadCalibrationFile / repro.WithCalibration).
//
//	calibrate -out host.reprocal             # full sweep, minutes
//	calibrate -quick -out host.reprocal      # smoke sweep, seconds
//
// With -check, calibrate instead re-measures a cheap probe subset of an
// existing artifact and exits nonzero when the host has drifted from
// it — accuracy probes must match bitwise (the sweep is deterministic
// given the stored seeds), cost probes within -drift x:
//
//	calibrate -check host.reprocal
//	calibrate -check host.reprocal -probes 5 -drift 4
//
// To diff two artifacts cell by cell, use the shared comparison tool:
// `benchjson -compare -threshold 25 old.reprocal new.reprocal`.
//
// With -mpirt, calibrate refits the collective-topology selection table
// from a recorded BENCH_mpirt.json (the measured analogue of the
// α-β-γ model's table) and prints the refit table:
//
//	calibrate -mpirt BENCH_mpirt.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/mpirt"
	"repro/internal/selector"
)

func main() {
	out := flag.String("out", "calibration.reprocal", "path to write the calibration artifact")
	quick := flag.Bool("quick", false, "small envelope (seconds, for smoke tests) instead of the full sweep")
	check := flag.String("check", "", "re-probe an existing artifact and exit nonzero on drift, instead of calibrating")
	probes := flag.Int("probes", 3, "with -check: probe cells and cost samples to re-measure")
	drift := flag.Float64("drift", 4, "with -check: tolerated cost drift factor in either direction")
	seed := flag.Uint64("seed", 1, "sweep seed (part of the artifact: probes re-derive cell seeds from it)")
	safety := flag.Float64("safety", 4, "safety factor on measured variability at selection time")
	host := flag.String("host", "", "host label stored in the artifact (default os.Hostname)")
	mpirtIn := flag.String("mpirt", "", "refit the collective selection table from a BENCH_mpirt.json and print it, instead of calibrating")
	flag.Parse()

	switch {
	case *check != "":
		if err := runCheck(*check, *probes, *drift); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
	case *mpirtIn != "":
		if err := runMpirtRefit(*mpirtIn); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
	default:
		if err := runCalibrate(*out, *quick, *seed, *safety, *host); err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
	}
}

// harness assembles the sweep envelope: the full envelope spans the
// selector's default operating range; -quick shrinks every axis to a
// seconds-scale smoke sweep with the same structure.
func harness(quick bool, seed uint64, safety float64, host string) selector.HarnessConfig {
	if host == "" {
		host, _ = os.Hostname()
	}
	cfg := selector.HarnessConfig{Host: host}
	cfg.Accuracy = selector.CalibrationConfig{Seed: seed, Safety: safety}
	if quick {
		cfg.Accuracy.Ns = []int{256, 4096}
		cfg.Accuracy.Ks = []float64{1, 1e4, 1e8}
		cfg.Accuracy.DRs = []int{0, 16}
		cfg.Accuracy.Trials = 8
		cfg.Cost = selector.CostSweepConfig{
			Ns:      []int{256, 4096},
			MinTime: 200 * time.Microsecond,
			Reps:    1,
		}
	}
	return cfg
}

func runCalibrate(out string, quick bool, seed uint64, safety float64, host string) error {
	cfg := harness(quick, seed, safety, host)
	start := time.Now()
	cal := selector.RunCalibration(cfg)
	sweep := time.Since(start)

	start = time.Now()
	surface := cal.SurfacePolicy()
	fit := time.Since(start)
	if surface.Empty() {
		return fmt.Errorf("calibration produced no usable cells")
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := selector.SaveCalibration(f, cal); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("calibrated %s: %d cells, %d cost samples (sweep %v, fit %v)\n",
		cal.Host, len(cal.Cells), len(cal.Costs), sweep.Round(time.Millisecond), fit.Round(time.Microsecond))
	fmt.Printf("wrote %s; load with repro.LoadCalibrationFile\n", out)
	return nil
}

func runCheck(path string, probes int, drift float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	cal, err := selector.LoadCalibration(f)
	f.Close()
	if err != nil {
		return err
	}
	check := selector.CheckCalibration(cal, probes, drift)
	fmt.Printf("%s: %d accuracy probes, %d cost probes\n", path, check.AccuracyProbes, check.CostProbes)
	for _, line := range check.AccuracyDrift {
		fmt.Printf("accuracy drift: %s\n", line)
	}
	for _, line := range check.CostDrift {
		fmt.Printf("cost drift: %s\n", line)
	}
	if check.Drifted() {
		return fmt.Errorf("%s has drifted from this host: recalibrate", path)
	}
	fmt.Println("calibration still valid")
	return nil
}

// benchReport mirrors the benchjson document shape (cmd/benchjson's
// Report) closely enough to pull collective samples out of it.
type benchReport struct {
	Results []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"results"`
}

func runMpirtRefit(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var rep benchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var samples []mpirt.TopoSample
	for _, r := range rep.Results {
		if s, ok := mpirt.ParseBenchSample(r.Name, r.NsPerOp); ok {
			samples = append(samples, s)
		}
	}
	if len(samples) == 0 {
		return fmt.Errorf("%s: no collective benchmark samples", path)
	}
	table := mpirt.NewSelectionTable(mpirt.DefaultMachine())
	refit, n := table.Refit(samples)
	fmt.Printf("%d collective samples, %d selection cells refit from measurement\n", len(samples), n)
	fmt.Print(refit.String())
	return nil
}
