// Command redselect profiles a stream of floating-point values and
// recommends the cheapest reduction algorithm meeting a reproducibility
// tolerance — the paper's intelligent runtime as a CLI.
//
// Values are read one per line from stdin (or from a generator spec):
//
//	seq 1 1000 | redselect -t 1e-12
//	redselect -t 1e-13 -gen "n=100000,k=1e6,dr=32"
//
// Output: the measured profile, the chosen algorithm, and the sum
// computed with it (plus the exact sum for comparison).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/superacc"
)

func main() {
	tol := flag.Float64("t", 1e-12, "tolerated relative run-to-run variability (0 = bitwise)")
	genSpec := flag.String("gen", "", `generate input instead of reading stdin: "n=...,k=...,dr=...[,seed=...]"`)
	hier := flag.Int("hier", 0, "hierarchical mode: profile and select per block of this size (0 = whole set)")
	flag.Parse()

	var xs []float64
	var err error
	if *genSpec != "" {
		xs, err = generate(*genSpec)
	} else {
		xs, err = readValues(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "redselect:", err)
		os.Exit(1)
	}
	if len(xs) == 0 {
		fmt.Fprintln(os.Stderr, "redselect: no input values")
		os.Exit(1)
	}

	rt := core.New(*tol)
	exact := superacc.Sum(xs)
	if *hier > 0 {
		total, blocks := rt.HierarchicalSum(xs, *hier)
		counts := map[string]int{}
		for _, b := range blocks {
			counts[b.Report.Algorithm.String()]++
		}
		fmt.Printf("hierarchical selection over %d blocks of %d: %v\n", len(blocks), *hier, counts)
		fmt.Printf("sum        = %.17g\n", total)
		fmt.Printf("exact sum  = %.17g\n", exact)
		fmt.Printf("abs error  = %.3g\n", abs(total-exact))
		return
	}
	total, rep := rt.Sum(xs)
	fmt.Println(rep)
	if rep.PRConfig != nil {
		fmt.Printf("tuned PR config: W=%d F=%d\n", rep.PRConfig.W, rep.PRConfig.F)
	}
	fmt.Printf("sum        = %.17g\n", total)
	fmt.Printf("exact sum  = %.17g\n", exact)
	fmt.Printf("abs error  = %.3g\n", abs(total-exact))
}

func readValues(f *os.File) ([]float64, error) {
	var xs []float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", line, err)
		}
		xs = append(xs, v)
	}
	return xs, sc.Err()
}

func generate(spec string) ([]float64, error) {
	s := gen.Spec{N: 1000, Cond: 1, Seed: 1}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad spec fragment %q", part)
		}
		switch kv[0] {
		case "n":
			n, err := strconv.Atoi(kv[1])
			if err != nil {
				return nil, err
			}
			s.N = n
		case "k":
			if kv[1] == "inf" {
				s.Cond = math.Inf(1)
				break
			}
			k, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return nil, err
			}
			s.Cond = k
		case "dr":
			dr, err := strconv.Atoi(kv[1])
			if err != nil {
				return nil, err
			}
			s.DynRange = dr
		case "seed":
			seed, err := strconv.ParseUint(kv[1], 10, 64)
			if err != nil {
				return nil, err
			}
			s.Seed = seed
		default:
			return nil, fmt.Errorf("unknown spec key %q", kv[0])
		}
	}
	return s.Generate(), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
