// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark numbers can be recorded as
// machine-readable artifacts (the repo's BENCH_sweep.json):
//
//	go test ./internal/grid -run '^$' -bench Sweep -benchmem | benchjson
//
// Context lines (goos, goarch, cpu, pkg) are captured as metadata;
// every benchmark result line becomes one entry with its run count,
// ns/op, and — when -benchmem was given — B/op and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Report, error) {
	var rep Report
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseResult decodes one "BenchmarkX-8  100  12345 ns/op  67 B/op  8
// allocs/op" line; the memory columns are optional.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	var r Result
	r.Name = fields[0]
	r.Procs = 1
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Runs = runs
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if r.NsPerOp == 0 && r.Runs == 0 {
		return Result{}, false
	}
	return r, true
}
