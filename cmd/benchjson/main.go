// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, so benchmark numbers can be recorded as
// machine-readable artifacts (the repo's BENCH_sweep.json and
// BENCH_kernels.json):
//
//	go test ./internal/grid -run '^$' -bench Sweep -benchmem | benchjson
//
// Context lines (goos, goarch, cpu, pkg) are captured as metadata;
// every benchmark result line becomes one entry with its run count,
// ns/op, and — when -benchmem was given — B/op and allocs/op.
//
// With -compare, benchjson instead diffs two previously recorded
// documents and prints per-benchmark ns/op and B/op deltas, so the perf
// trajectory across PRs is reviewable at a glance. Benchmarks and
// custom metric keys present in only one document are reported as
// added/removed rather than silently skipped, and -threshold turns the
// comparison into a regression gate: exit status 1 when any shared
// benchmark's ns/op regressed by more than the given percentage.
//
//	benchjson -compare old.json new.json
//	benchjson -compare -threshold 10 old.json new.json  # CI gate
//
// -compare also accepts calibration artifacts written by cmd/calibrate
// (sniffed by their "reprocal" header, both files must be the same
// kind): the diff is then per calibration cell — each algorithm's
// measured variability and each engine cost sample — with envelope
// changes (cells present on one side) listed but not gated, and
// -threshold gating on drift in either direction, which is what
// `calibrate -check -against` builds on.
//
//	benchjson -compare -threshold 25 old.reprocal new.reprocal
//
// With -ratio num,den, benchjson reports the ns/op ratio between two
// benchmarks of one document (a recorded JSON file argument, or `go
// test -bench` text on stdin) and -max turns it into an absolute
// performance gate: exit status 1 when num/den exceeds the given
// factor. This is how `make verify` pins the binned reproducible
// kernel to its acceptance envelope over the ST kernel floor:
//
//	go test ./internal/kernel -run '^$' -bench BinnedVsAlternatives |
//	  benchjson -ratio 'BenchmarkBinnedVsAlternatives1M/binned,BenchmarkBinnedVsAlternatives1M/stkernel' -max 2.2
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/selector"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "hit-rate",
	// "MB/s") keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the full document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	compare := flag.Bool("compare", false,
		"compare two recorded JSON documents: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 0,
		"with -compare: exit nonzero when any shared benchmark's ns/op regressed by more than this percentage (0 disables gating)")
	ratio := flag.String("ratio", "",
		"report ns/op ratio between two benchmarks, given as 'numName,denName'; reads a recorded JSON file argument or bench text on stdin")
	maxRatio := flag.Float64("max", 0,
		"with -ratio: exit nonzero when the ratio exceeds this factor (0 disables gating)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		oldCal, newCal := isCalibrationArtifact(flag.Arg(0)), isCalibrationArtifact(flag.Arg(1))
		if oldCal != newCal {
			fmt.Fprintln(os.Stderr, "benchjson: cannot compare a calibration artifact against a benchmark document")
			os.Exit(2)
		}
		var regressed []string
		var err error
		if oldCal {
			regressed, err = compareCalibrationFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		} else {
			regressed, err = compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(regressed) > 0 {
			what := "benchmark(s) regressed"
			if oldCal {
				what = "calibration cell(s) drifted"
			}
			fmt.Fprintf(os.Stderr, "benchjson: %d %s beyond %.1f%%: %s\n",
				len(regressed), what, *threshold, strings.Join(regressed, ", "))
			os.Exit(1)
		}
		return
	}
	if *threshold != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -threshold requires -compare")
		os.Exit(2)
	}
	if *ratio != "" {
		if err := gateRatio(*ratio, *maxRatio); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *maxRatio != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: -max requires -ratio")
		os.Exit(2)
	}
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// gateRatio resolves the 'num,den' benchmark pair in a recorded JSON
// document (single file argument) or in bench text on stdin, prints
// the ns/op ratio, and errors when it exceeds max (if max > 0) — the
// absolute performance gate used by `make verify`.
func gateRatio(spec string, max float64) error {
	num, den, ok := strings.Cut(spec, ",")
	if !ok || num == "" || den == "" {
		return fmt.Errorf("-ratio wants 'numName,denName', got %q", spec)
	}
	var rep Report
	var err error
	switch flag.NArg() {
	case 0:
		rep, err = parse(bufio.NewScanner(os.Stdin))
	case 1:
		rep, err = loadReport(flag.Arg(0))
	default:
		return fmt.Errorf("-ratio takes at most one file argument")
	}
	if err != nil {
		return err
	}
	lookup := func(name string) (Result, error) {
		for _, r := range rep.Results {
			if r.Name == name {
				return r, nil
			}
		}
		return Result{}, fmt.Errorf("benchmark %q not found", name)
	}
	nr, err := lookup(num)
	if err != nil {
		return err
	}
	dr, err := lookup(den)
	if err != nil {
		return err
	}
	if dr.NsPerOp <= 0 {
		return fmt.Errorf("denominator %q has non-positive ns/op %g", den, dr.NsPerOp)
	}
	r := nr.NsPerOp / dr.NsPerOp
	fmt.Printf("%s / %s = %.3fx (%.1f / %.1f ns/op)\n", num, den, r, nr.NsPerOp, dr.NsPerOp)
	if max > 0 && r > max {
		return fmt.Errorf("ratio %.3fx exceeds the %.2fx gate", r, max)
	}
	return nil
}

// isCalibrationArtifact sniffs whether the file is a cmd/calibrate
// artifact (leading "reprocal" token) rather than a benchmark JSON
// document. Unreadable files report false and fail later with the
// regular open error.
func isCalibrationArtifact(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	head := make([]byte, len("reprocal "))
	n, _ := io.ReadFull(f, head)
	return strings.HasPrefix(string(head[:n]), "reprocal")
}

// loadCalibration reads one calibration artifact.
func loadCalibration(path string) (*selector.Calibration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cal, err := selector.LoadCalibration(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cal, nil
}

// compareCalibrationFiles prints the per-cell surface delta between two
// calibration artifacts. When threshold is positive, the returned slice
// names every matched quantity that drifted beyond threshold percent in
// either direction (accuracy surfaces and engine costs both gate —
// selection depends on both).
func compareCalibrationFiles(w *os.File, oldPath, newPath string, threshold float64) ([]string, error) {
	oldCal, err := loadCalibration(oldPath)
	if err != nil {
		return nil, err
	}
	newCal, err := loadCalibration(newPath)
	if err != nil {
		return nil, err
	}
	cmp := selector.CompareCalibrations(oldCal, newCal)
	fmt.Fprintf(w, "calibration %s (host %q) vs %s (host %q): %d cells, %d cost samples\n",
		oldPath, oldCal.Host, newPath, newCal.Host, len(newCal.Cells), len(newCal.Costs))
	if len(cmp.Deltas) == 0 {
		fmt.Fprintln(w, "surfaces identical")
	}
	var drifted []string
	for _, d := range cmp.Deltas {
		fmt.Fprintf(w, "%s\n", d.Line)
		if threshold > 0 && d.Pct > threshold {
			drifted = append(drifted, d.Line)
		}
	}
	for _, line := range cmp.Added {
		fmt.Fprintf(w, "%s (added: only in %s)\n", line, newPath)
	}
	for _, line := range cmp.Removed {
		fmt.Fprintf(w, "%s (removed: only in %s)\n", line, oldPath)
	}
	fmt.Fprintf(w, "max drift: accuracy %.1f%%, cost %.1f%%\n", cmp.MaxAccuracyPct, cmp.MaxCostPct)
	return drifted, nil
}

// loadReport reads one previously recorded document.
func loadReport(path string) (Report, error) {
	var rep Report
	f, err := os.Open(path)
	if err != nil {
		return rep, err
	}
	defer f.Close()
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return rep, fmt.Errorf("%s: %v", path, err)
	}
	return rep, nil
}

// compareFiles prints per-benchmark ns/op and B/op deltas between two
// recorded documents. Benchmarks — and custom metric keys within a
// shared benchmark — present in only one document are listed as
// added/removed so silent coverage drift is visible. When threshold is
// positive, the returned slice names every shared benchmark whose
// ns/op regressed by more than threshold percent.
func compareFiles(w *os.File, oldPath, newPath string, threshold float64) ([]string, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return nil, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return nil, err
	}
	oldBy := make(map[string]Result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	var onlyNew []string
	type row struct {
		name string
		o, n Result
	}
	var rows []row
	for _, r := range newRep.Results {
		o, ok := oldBy[r.Name]
		if !ok {
			onlyNew = append(onlyNew, r.Name)
			continue
		}
		rows = append(rows, row{r.Name, o, r})
		delete(oldBy, r.Name)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var regressed []string
	fmt.Fprintf(w, "%-52s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old B/op", "new B/op", "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%-52s %14.1f %14.1f %7.1f%% %12d %12d %7s\n",
			r.name, r.o.NsPerOp, r.n.NsPerOp, pct(r.o.NsPerOp, r.n.NsPerOp),
			r.o.BytesPerOp, r.n.BytesPerOp, pctStr(float64(r.o.BytesPerOp), float64(r.n.BytesPerOp)))
		if threshold > 0 && pct(r.o.NsPerOp, r.n.NsPerOp) > threshold {
			regressed = append(regressed, r.name)
		}
		for _, line := range extraDiff(r.o.Extra, r.n.Extra) {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
	for _, name := range onlyNew {
		fmt.Fprintf(w, "%-52s (added: only in %s)\n", name, newPath)
	}
	removed := make([]string, 0, len(oldBy))
	for name := range oldBy {
		removed = append(removed, name)
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-52s (removed: only in %s)\n", name, oldPath)
	}
	return regressed, nil
}

// extraDiff renders the custom-metric (Result.Extra) comparison of one
// shared benchmark: changed values plus keys present on only one side.
func extraDiff(old, new map[string]float64) []string {
	if len(old) == 0 && len(new) == 0 {
		return nil
	}
	keys := make(map[string]bool, len(old)+len(new))
	for k := range old {
		keys[k] = true
	}
	for k := range new {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	var out []string
	for _, k := range sorted {
		ov, inOld := old[k]
		nv, inNew := new[k]
		switch {
		case !inOld:
			out = append(out, fmt.Sprintf("%s: %g (added metric)", k, nv))
		case !inNew:
			out = append(out, fmt.Sprintf("%s: %g (removed metric)", k, ov))
		default:
			out = append(out, fmt.Sprintf("%s: %g -> %g (%+.1f%%)", k, ov, nv, pct(ov, nv)))
		}
	}
	return out
}

// pct returns the relative change from old to new in percent; negative
// is an improvement for ns/op and B/op.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func pctStr(old, new float64) string {
	if old == 0 && new == 0 {
		return "0%"
	}
	if old == 0 {
		return "+new"
	}
	return fmt.Sprintf("%.1f%%", pct(old, new))
}

func parse(sc *bufio.Scanner) (Report, error) {
	var rep Report
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseResult(line)
			if ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	return rep, sc.Err()
}

// parseResult decodes one "BenchmarkX-8  100  12345 ns/op  67 B/op  8
// allocs/op" line; the memory columns are optional.
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	var r Result
	r.Name = fields[0]
	r.Procs = 1
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Procs = p
			r.Name = r.Name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Runs = runs
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64, 1)
			}
			r.Extra[unit] = v
		}
	}
	if r.NsPerOp == 0 && r.Runs == 0 {
		return Result{}, false
	}
	return r, true
}
