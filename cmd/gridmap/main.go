// Command gridmap renders parameter-space variability grids (the
// paper's Figs 9–11) and cheapest-acceptable-algorithm policy maps
// (Fig 12) as ASCII heatmaps, with configurable axes.
//
// Usage:
//
//	gridmap -space kdr -n 4096 -trials 50
//	gridmap -space nk -dr 16
//	gridmap -space kdr -policy -thresholds 5e-13,1e-13,5e-14
//	gridmap -space kdr -shape unbalanced -workers 8 -engine legacy
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/grid"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

func main() {
	space := flag.String("space", "kdr", "parameter space: kdr, ndr, or nk")
	n := flag.Int("n", 4096, "set size for the kdr space")
	k := flag.Float64("k", 1, "condition number for the ndr space")
	dr := flag.Int("dr", 16, "dynamic range for the nk space")
	trials := flag.Int("trials", 50, "reduction trees per cell")
	seed := flag.Uint64("seed", 1, "seed")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS); never affects results")
	shapeName := flag.String("shape", "balanced", "reduction tree shape: balanced, unbalanced, random, blocked, or knomial")
	engineName := flag.String("engine", "fused", "sweep engine: fused or legacy")
	policy := flag.Bool("policy", false, "render Fig 12-style cheapest-algorithm maps instead of shading")
	thresholds := flag.String("thresholds", "5e-13,3e-13,2.5e-13,1.5e-13,5e-14",
		"comma-separated variability thresholds for -policy")
	flag.Parse()

	var shape tree.Shape
	if err := shape.UnmarshalText([]byte(*shapeName)); err != nil {
		fmt.Fprintln(os.Stderr, "gridmap:", err)
		os.Exit(1)
	}
	var engine grid.Engine
	switch *engineName {
	case "fused":
		engine = grid.FusedEngine
	case "legacy":
		engine = grid.LegacyEngine
	default:
		fmt.Fprintf(os.Stderr, "gridmap: unknown engine %q (want fused or legacy)\n", *engineName)
		os.Exit(1)
	}

	ks := []float64{1, 1e2, 1e4, 1e6, 1e8}
	drs := []int{0, 8, 16, 24, 32}
	ns := []int{1 << 8, 1 << 10, 1 << 12, 1 << 14}

	var cells []grid.CellSpec
	var rowLabels, colLabels []string
	var rows, cols int
	switch *space {
	case "kdr":
		cells = grid.KDRGrid(*n, ks, drs)
		rowLabels, colLabels = intLabels(drs), kLabels(ks)
		rows, cols = len(drs), len(ks)
	case "ndr":
		cells = grid.NDRGrid(ns, *k, drs)
		rowLabels, colLabels = intLabels(drs), intLabels(ns)
		rows, cols = len(drs), len(ns)
	case "nk":
		cells = grid.NKGrid(ns, ks, *dr)
		rowLabels, colLabels = kLabels(ks), intLabels(ns)
		rows, cols = len(ks), len(ns)
	default:
		fmt.Fprintf(os.Stderr, "gridmap: unknown space %q\n", *space)
		os.Exit(1)
	}

	results := grid.Sweep(cells, grid.Config{
		Algorithms: sum.PaperAlgorithms,
		Trials:     *trials,
		Shape:      shape,
		Seed:       *seed,
		Workers:    *workers,
		Fused:      engine,
	})

	if *policy {
		ths, err := parseThresholds(*thresholds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gridmap:", err)
			os.Exit(1)
		}
		classes := grid.Classify(results, ths)
		for ti, th := range ths {
			fmt.Printf("\ncheapest acceptable algorithm, t = %.3g:\n", th)
			var tRows [][]string
			for r := 0; r < rows; r++ {
				line := []string{rowLabels[r]}
				for c := 0; c < cols; c++ {
					cls := classes[ti][r*cols+c]
					if cls < 0 {
						line = append(line, "-")
					} else {
						line = append(line, sum.Algorithm(cls).String())
					}
				}
				tRows = append(tRows, line)
			}
			fmt.Print(textplot.Table(append([]string{""}, colLabels...), tRows))
		}
		return
	}

	for _, alg := range sum.PaperAlgorithms {
		shade := make([][]float64, rows)
		for r := 0; r < rows; r++ {
			shade[r] = make([]float64, cols)
			for c := 0; c < cols; c++ {
				shade[r][c] = results[r*cols+c].RelStdDev[alg]
			}
		}
		fmt.Println()
		fmt.Print(textplot.Heatmap(
			fmt.Sprintf("%s — relative stddev over %d trees", alg.FullName(), *trials),
			rowLabels, colLabels, shade))
	}
}

func parseThresholds(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func intLabels(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

func kLabels(ks []float64) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("1e%d", int(math.Round(math.Log10(k))))
	}
	return out
}
