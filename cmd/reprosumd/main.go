// Command reprosumd runs the reduction-as-a-service aggregation
// daemon: a TCP endpoint that folds streaming deposit batches from
// many clients into named reproducible accumulators (see
// internal/aggsrv for the wire protocol).
//
// Usage:
//
//	reprosumd [-addr :7464] [-shards 16] [-read-timeout 1m]
//	          [-write-timeout 10s] [-drain-timeout 30s]
//
// On SIGINT or SIGTERM the daemon stops accepting connections and
// drains in-flight ones for up to -drain-timeout before force-closing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/aggsrv"
)

func main() {
	var (
		addr         = flag.String("addr", ":7464", "listen address")
		shards       = flag.Int("shards", 16, "accumulator shards (rounded up to a power of two)")
		readTimeout  = flag.Duration("read-timeout", time.Minute, "per-frame read deadline (0 disables)")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "per-reply write deadline (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain window")
	)
	flag.Parse()
	if err := run(*addr, *shards, *readTimeout, *writeTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "reprosumd:", err)
		os.Exit(1)
	}
}

func run(addr string, shards int, readTimeout, writeTimeout, drainTimeout time.Duration) error {
	srv := aggsrv.New(aggsrv.Config{
		Shards:       shards,
		ReadTimeout:  readTimeout,
		WriteTimeout: writeTimeout,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("reprosumd listening on %s (%d shards)", ln.Addr(), shards)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		return err
	case s := <-sig:
		log.Printf("received %v, draining for up to %v", s, drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain window expired, connections force-closed: %v", err)
		}
		if err := <-done; err != nil {
			return err
		}
		st := srv.Stats()
		log.Printf("drained: %d deposits in %d batches across %d keys, %d snapshots served",
			st.Deposits, st.Batches, st.Keys, st.Snapshots)
		return nil
	}
}
