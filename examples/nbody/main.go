// N-body force reduction: the paper's motivating workload. The net
// force on a particle is the sum of many pairwise contributions that
// nearly cancel (both the condition number and the dynamic range are
// "frequently very large"), so the result of a naive parallel sum
// depends on the reduction tree — run to run, the same simulation step
// produces different forces.
//
// This example builds a small N-body system, computes one particle's
// net force under many reduction orders with each algorithm, and shows
// the intelligent runtime restoring run-to-run agreement at the cost of
// a (profiled, justified) more expensive operator.
package main

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/fpu"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/tree"
)

// body is a point mass in the plane.
type body struct {
	x, y, m float64
}

// forceTerms returns the x-components of the gravitational pull of every
// other body on bodies[0].
func forceTerms(bodies []body) []float64 {
	p := bodies[0]
	terms := make([]float64, 0, len(bodies)-1)
	for _, q := range bodies[1:] {
		dx, dy := q.x-p.x, q.y-p.y
		r2 := dx*dx + dy*dy
		r := math.Sqrt(r2)
		terms = append(terms, p.m*q.m*dx/(r2*r)) // G = 1
	}
	return terms
}

func main() {
	// A clustered system: a few nearby heavy bodies (large, cancelling
	// pulls) plus a swarm of distant light ones (tiny pulls).
	r := fpu.NewRNG(2026)
	bodies := []body{{0, 0, 1}}
	for i := 0; i < 6; i++ {
		ang := float64(i) * math.Pi / 3
		bodies = append(bodies, body{math.Cos(ang) * 1e-3, math.Sin(ang) * 1e-3, 5})
	}
	for i := 0; i < 20000; i++ {
		bodies = append(bodies, body{
			x: (r.Float64() - 0.5) * 2e3,
			y: (r.Float64() - 0.5) * 2e3,
			m: r.Float64() * 1e-3,
		})
	}
	terms := forceTerms(bodies)
	fmt.Printf("force reduction: %d terms, k = %.3g, dr = %d bits\n",
		len(terms), metrics.CondNumber(terms), metrics.DynRange(terms))

	exact := repro.ExactSum(terms)
	fmt.Printf("exact net force (x):  %.17g\n\n", exact)

	// How much does the answer move when only the reduction tree moves?
	for _, alg := range repro.PaperAlgorithms {
		rng := fpu.NewRNG(7)
		sums := grid.AlgSpread(alg, tree.Balanced, terms, 50, rng)
		worst := 0.0
		for _, v := range sums {
			if e := math.Abs(v - exact); e > worst {
				worst = e
			}
		}
		fmt.Printf("%-2s: %2d distinct results over 50 trees, worst error %.3g\n",
			alg, metrics.DistinctValues(sums), worst)
	}

	// The runtime profiles the force terms and picks the operator that
	// makes the simulation step reproducible.
	rt := repro.New(0)
	total, report := rt.Sum(terms)
	fmt.Printf("\nruntime decision: %v\n", report)
	fmt.Printf("reproducible net force (x): %.17g (error %.3g)\n",
		total, math.Abs(total-exact))
}
