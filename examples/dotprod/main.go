// Reproducible dot products: the reduction at the heart of BLAS (and of
// ReproBLAS, where the paper's PR operator comes from). A residual
// check r = b - A*x in an iterative solver computes dot products whose
// terms nearly cancel; if the reduction order varies between runs, the
// solver's convergence test flips between runs. This example shows the
// ST dot product drifting across orders while the PR dot product stays
// bitwise identical.
package main

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/fpu"
	"repro/internal/sum"
)

func main() {
	// Build two nearly-orthogonal vectors: huge matched components that
	// cancel plus a tiny genuine signal.
	r := fpu.NewRNG(7)
	n := 100000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i+1 < n-1; i += 2 {
		v := math.Ldexp(r.Float64()+0.5, r.Intn(20))
		w := math.Ldexp(r.Float64()+0.5, r.Intn(20))
		// Two consecutive terms contribute +vw and -vw: exact cancel.
		a[i], b[i] = v, w
		a[i+1], b[i+1] = v, -w
	}
	a[n-1], b[n-1] = 1.0, 3e-11 // the signal

	exact := sum.DotExact(a, b)
	fmt.Printf("dot product of %d-element vectors; exact value %.17g\n\n", n, exact)

	perm := func(seed uint64) ([]float64, []float64) {
		rr := fpu.NewRNG(seed)
		p := rr.Perm(n)
		pa := make([]float64, n)
		pb := make([]float64, n)
		for i, j := range p {
			pa[i], pb[i] = a[j], b[j]
		}
		return pa, pb
	}

	fmt.Println("same vectors, five different term orders:")
	fmt.Printf("%-6s  %-24s  %-24s\n", "order", "ST dot", "PR dot")
	stSet := map[float64]bool{}
	prSet := map[float64]bool{}
	for seed := uint64(1); seed <= 5; seed++ {
		pa, pb := perm(seed)
		st := repro.Dot(repro.Standard, pa, pb)
		pr := repro.Dot(repro.Prerounded, pa, pb)
		stSet[st] = true
		prSet[pr] = true
		fmt.Printf("%-6d  %-24.17g  %-24.17g\n", seed, st, pr)
	}
	fmt.Printf("\nST: %d distinct values (sign may even flip) — a convergence test on this residual is nondeterministic\n", len(stSet))
	fmt.Printf("PR: %d distinct value, error vs exact %.3g\n", len(prSet), math.Abs(firstKey(prSet)-exact))
}

func firstKey(m map[float64]bool) float64 {
	for k := range m {
		return k
	}
	return math.NaN()
}
