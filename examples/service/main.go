// Reduction-as-a-service: three goroutine "ranks" stream shuffled
// shares of a hostile fig12-style vector (ill-conditioned, wide
// dynamic range) to an in-process aggregation server — different batch
// sizes, interleaved arrivals, one of them shipping a locally
// accumulated state instead of scalars. Because every deposit and
// merge is exact, the service snapshot equals the serial binned sum
// bit for bit; a plain floating-point sum of the same shards does not.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"sync"

	"repro"
	"repro/internal/binned"
	"repro/internal/gen"
)

const (
	ranks = 3
	n     = 90_000
)

func main() {
	// Fig12-style operands: condition number 1e14 over ~30 binary
	// orders of magnitude — the regime where summation order visibly
	// changes a naive result.
	xs := gen.Spec{N: n, Cond: 1e14, DynRange: 30, Seed: 2015}.Generate()
	want := repro.Sum(repro.Binned, xs) // serial BN reference

	// Start the service in-process (cmd/reprosumd is the same engine).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := repro.NewAggServer(repro.AggServerConfig{Shards: 8})
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// Shuffle the element-to-rank assignment so arrival order shares
	// nothing with the serial order.
	assign := rand.New(rand.NewSource(7)).Perm(n)
	shards := make([][]float64, ranks)
	for i, x := range xs {
		r := assign[i] % ranks
		shards[r] = append(shards[r], x)
	}

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int, part []float64) {
			defer wg.Done()
			cl, err := repro.DialAggregator(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer cl.Close()
			switch r {
			case 0: // scalar stream, tiny batches
				for len(part) > 0 {
					k := min(17, len(part))
					if err := cl.Deposit("fig12", part[:k]); err != nil {
						log.Fatal(err)
					}
					part = part[k:]
				}
			case 1: // scalar stream, one big batch
				if err := cl.Deposit("fig12", part); err != nil {
					log.Fatal(err)
				}
			default: // rank-local partial, shipped as one canonical state
				var local binned.State
				local.AddSlice(part)
				if err := cl.DepositState("fig12", &local); err != nil {
					log.Fatal(err)
				}
			}
			if err := cl.Flush(); err != nil {
				log.Fatal(err)
			}
		}(r, shards[r])
	}
	wg.Wait()

	cl, err := repro.DialAggregator(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	snap, err := cl.Snapshot("fig12")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("service snapshot: value=%v count=%d wire=%dB\n", snap.Value, snap.Count, len(snap.Wire))
	fmt.Printf("serial BN sum:    value=%v\n", want)
	if math.Float64bits(snap.Value) != math.Float64bits(want) || snap.Count != n {
		log.Fatalf("MISMATCH: service %x vs serial %x",
			math.Float64bits(snap.Value), math.Float64bits(want))
	}
	fmt.Println("bitwise identical across 3 ranks, shuffled arrivals, mixed batch shapes ✓")

	// The same shards summed naively, in two different rank orders:
	naive := func(order []int) float64 {
		s := 0.0
		for _, r := range order {
			for _, x := range shards[r] {
				s += x
			}
		}
		return s
	}
	a, b := naive([]int{0, 1, 2}), naive([]int{2, 0, 1})
	fmt.Printf("naive ST by rank order: %v vs %v (equal: %v)\n", a, b,
		math.Float64bits(a) == math.Float64bits(b))
}
