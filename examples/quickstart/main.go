// Quickstart: sum the same ill-conditioned data three ways — naively,
// with an explicit algorithm, and through the intelligent runtime —
// and see why the runtime's choice matters.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A hostile little set: huge values that cancel, tiny values that
	// must survive (the paper's Section II-A absorption example, scaled
	// up).
	values := []float64{1e16, 3.25, -1e16, 1.25, 1e9, -1e9, 0.5}

	exact := repro.ExactSum(values)
	fmt.Printf("exact sum:            %.17g\n", exact)
	fmt.Printf("standard (ST):        %.17g\n", repro.Sum(repro.Standard, values))
	fmt.Printf("Kahan (K):            %.17g\n", repro.Sum(repro.Kahan, values))
	fmt.Printf("composite (CP):       %.17g\n", repro.Sum(repro.Composite, values))
	fmt.Printf("prerounded (PR):      %.17g\n", repro.Sum(repro.Prerounded, values))

	// The data's intrinsic properties drive the cost of reproducibility.
	fmt.Printf("\ncondition number: %.3g, dynamic range: %d bits\n",
		repro.CondNumber(values), repro.DynRange(values))

	// The intelligent runtime profiles the data and picks the cheapest
	// algorithm meeting the tolerance.
	for _, tol := range []float64{1e-6, 1e-15, 0} {
		rt := repro.New(tol)
		total, report := rt.Sum(values)
		fmt.Printf("tolerance %-6g -> %-2s  sum = %.17g\n",
			tol, report.Algorithm, total)
	}
}
