// Reduction-tree forensics: record the exact merge topology a
// nondeterministic collective used, then replay it. Two reruns of the
// same global ST sum disagree; the recorded traces prove the data was
// identical and only the trees differed — replaying run 2's tree with
// run 1's operator reproduces run 2's result bitwise, and replaying
// either tree with the exact oracle shows what that tree's answer
// should have been.
package main

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/mpirt"
	"repro/internal/sum"
	"repro/internal/trace"
)

const (
	ranks = 16
	per   = 2048
)

// runOnce performs one arrival-order global ST reduction, recording it.
func runOnce(xs []float64, seed uint64) (float64, trace.Trace) {
	rec := trace.NewRecorder(sum.StandardAlg.Op())
	w := mpirt.NewWorld(ranks, mpirt.Config{Jitter: 150 * time.Microsecond, Seed: seed})
	var live float64
	var tr trace.Trace
	err := w.Run(func(r *mpirt.Rank) {
		local := mpirt.LocalState(rec, xs[r.ID*per:(r.ID+1)*per])
		if st := r.Reduce(0, local, rec, mpirt.Binomial, mpirt.ArrivalOrder); st != nil {
			live = rec.Finalize(st)
			tr = rec.TraceOf(st)
		}
	})
	if err != nil {
		panic(err)
	}
	return live, tr
}

func main() {
	xs := gen.SumZeroSeries(ranks*per, 32, 7)
	fmt.Printf("global ST sum of %d values (exact sum 0) over %d ranks, arrival-order collectives\n\n", len(xs), ranks)

	v1, t1 := runOnce(xs, 1)
	// Arrival orders are timing-sensitive; scan seeds until a rerun
	// disagrees with the first (usually within a few tries).
	v2, t2 := runOnce(xs, 2)
	for seed := uint64(3); v2 == v1 && seed < 64; seed++ {
		v2, t2 = runOnce(xs, seed)
	}
	fmt.Printf("run 1: %+.17e (tree depth %d)\n", v1, t1.Depth())
	fmt.Printf("run 2: %+.17e (tree depth %d)\n", v2, t2.Depth())
	if v1 == v2 {
		fmt.Println("(all reruns agreed this time; the forensics below still hold)")
	} else {
		fmt.Println("-> same data, different answers.")
	}

	fmt.Println("\nforensics via recorded traces:")
	r1 := t1.Replay(sum.StandardAlg.Op())
	r2 := t2.Replay(sum.StandardAlg.Op())
	fmt.Printf("replay(tree1, ST) = %+.17e  bitwise == run1: %v\n", r1, r1 == v1)
	fmt.Printf("replay(tree2, ST) = %+.17e  bitwise == run2: %v\n", r2, r2 == v2)

	// The same trees, evaluated with stronger operators.
	fmt.Printf("replay(tree1, CP) = %+.17e\n", t1.Replay(sum.CompositeAlg.Op()))
	fmt.Printf("replay(tree2, CP) = %+.17e\n", t2.Replay(sum.CompositeAlg.Op()))
	fmt.Printf("replay(tree1, PR) = %+.17e\n", t1.Replay(sum.PreroundedAlg.Op()))
	fmt.Printf("replay(tree2, PR) = %+.17e\n", t2.Replay(sum.PreroundedAlg.Op()))
	fmt.Println("-> the discrepancy was the tree's doing: reproducible operators erase it.")
}
