// Cancellation tracking: the paper's Section IV-B argues that counting
// cancellations (the CADNA/CESTAC approach) does not predict error.
// This example instruments several summation orders of one mixed-sign
// data set, prints cancellation severities next to true errors, and
// surfaces a counterexample pair — more cancellations, less error.
package main

import (
	"fmt"
	"math"

	"repro"
	"repro/internal/cestac"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/textplot"
)

func main() {
	xs := gen.Uniform(1000, -1, 1, 99)
	exact := repro.ExactSum(xs)
	fmt.Printf("1000 uniform [-1,1] values, exact sum %.17g\n\n", exact)

	type record struct {
		counts [4]int
		digits float64
		err    float64
	}
	var recs []record
	r := fpu.NewRNG(3)
	work := append([]float64(nil), xs...)
	for order := 0; order < 12; order++ {
		r.Shuffle(work)
		ctx := cestac.NewCtx(uint64(order))
		v := ctx.SumStandard(work)
		recs = append(recs, record{
			counts: ctx.Counts(),
			digits: v.SignificantDigits(),
			err:    math.Abs(v.Mean() - exact),
		})
	}

	var rows [][]string
	for i, rec := range recs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", rec.counts[0]),
			fmt.Sprintf("%d", rec.counts[1]),
			fmt.Sprintf("%d", rec.counts[2]),
			fmt.Sprintf("%d", rec.counts[3]),
			fmt.Sprintf("%.1f", rec.digits),
			fmt.Sprintf("%.3g", rec.err),
		})
	}
	fmt.Print(textplot.Table(
		[]string{"order", "cancels>=1", ">=2", ">=4", ">=8", "sig digits", "true error"}, rows))

	// Find the paper's counterexample shape: order A with strictly more
	// cancellations than order B but strictly less error.
	for i := range recs {
		for j := range recs {
			if recs[i].counts[0] > recs[j].counts[0] && recs[i].err < recs[j].err &&
				recs[j].counts[0] > 0 {
				fmt.Printf("\ncounterexample: order %d has %.1fx the cancellations of order %d "+
					"but only %.2fx the error -> counting cancellations does not predict error\n",
					i+1, float64(recs[i].counts[0])/float64(recs[j].counts[0]),
					j+1, recs[i].err/recs[j].err)
				return
			}
		}
	}
	fmt.Println("\nno inversion pair in this small sample; rerun with another seed")
}
