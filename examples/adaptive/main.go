// Adaptive distributed reduction: 32 simulated ranks hold chunks of a
// global vector and reduce it with arrival-order (nondeterministic)
// collectives — the exascale scenario of the paper. A fixed ST operator
// gives a different answer on every run; the intelligent runtime
// profiles the data with one cheap AllReduce, all ranks agree on the
// cheapest acceptable operator, and the global sum becomes stable.
package main

import (
	"fmt"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/mpirt"
	"repro/internal/selector"
	"repro/internal/sum"
)

const (
	ranks  = 32
	perRnk = 4096
	runs   = 6
)

func main() {
	// A hostile global vector: exact sum zero, wide dynamic range.
	global := gen.SumZeroSeries(ranks*perRnk, 32, 42)
	chunks := make([][]float64, ranks)
	for i := range chunks {
		chunks[i] = global[i*perRnk : (i+1)*perRnk]
	}

	fmt.Printf("global vector: %d values over %d ranks, exact sum 0\n\n", len(global), ranks)

	fmt.Println("fixed ST operator, arrival-order binomial reduce:")
	runMany(chunks, func(r *mpirt.Rank) (float64, bool) {
		return r.ReduceSum(0, chunks[r.ID], sum.StandardAlg.Op(), mpirt.Binomial, mpirt.ArrivalOrder)
	})

	fmt.Println("\nintelligent runtime (tolerance 0 = bitwise), same nondeterministic collectives:")
	sel := selector.New(0)
	runMany(chunks, func(r *mpirt.Rank) (float64, bool) {
		v, alg, ok := selector.AdaptiveReduce(r, 0, chunks[r.ID], sel, mpirt.Binomial, mpirt.ArrivalOrder)
		if ok {
			fmt.Printf("  (ranks agreed on %s)", alg)
		}
		return v, ok
	})

	// The same choice falls out of the one-shot serial entry point: at a
	// bitwise tolerance the selector lands on BN, the cheapest
	// reproducible rung — order-invariant bits at a fraction of PR's
	// cost — instead of escalating all the way to PR.
	total, rep := repro.SelectAndSum(0, global)
	fmt.Printf("\nserial SelectAndSum(tolerance 0): sum = %+.17e via %s (reproducible: %v)\n",
		total, rep.Algorithm, rep.Algorithm.Reproducible())
}

// runMany repeats the reduction with per-run jitter seeds and prints
// each run's root result.
func runMany(chunks [][]float64, body func(*mpirt.Rank) (float64, bool)) {
	distinct := map[float64]bool{}
	for run := 0; run < runs; run++ {
		w := mpirt.NewWorld(len(chunks), mpirt.Config{
			Jitter: 200 * time.Microsecond,
			Seed:   uint64(run) * 977,
		})
		var got float64
		if err := w.Run(func(r *mpirt.Rank) {
			if v, ok := body(r); ok {
				got = v
			}
		}); err != nil {
			panic(err)
		}
		distinct[got] = true
		fmt.Printf("  run %d: sum = %+.17e\n", run+1, got)
	}
	fmt.Printf("  -> %d distinct result(s) across %d runs\n", len(distinct), runs)
}
