// Package repro is a library for reproducible floating-point summation
// at scale, reproducing "On the Need for Reproducible Numerical Accuracy
// through Intelligent Runtime Selection of Reduction Algorithms at the
// Extreme Scale" (Chapp, Johnston, Taufer — IEEE CLUSTER 2015).
//
// It provides:
//
//   - the paper's four summation algorithms — standard (ST), Kahan (K),
//     composite precision (CP), and prerounded (PR) — plus the
//     single-pass binned reproducible engine (BN, the ladder's fast
//     bitwise-reproducible middle rung) in one-shot, streaming, and
//     tree-mergeable forms (Sum, NewAccumulator, Op);
//   - reduction-tree simulation (balanced/unbalanced/random/blocked
//     shapes with permuted operand assignment) and a simulated
//     message-passing runtime with nondeterministic collectives;
//   - data profiling (n, condition number, dynamic range) and the
//     intelligent runtime that picks the cheapest algorithm meeting an
//     application-specified reproducibility tolerance (New, Runtime);
//   - an exact superaccumulator oracle (ExactSum) for validation;
//   - a deterministic chunked parallel engine (ParallelSum,
//     ParallelExactSum, New with WithWorkers) whose results are
//     bitwise-identical across worker counts.
//
// Quick start:
//
//	rt := repro.New(1e-12)            // tolerated relative variability
//	total, report := rt.Sum(values)   // profiles, selects, sums
//	fmt.Println(total, report)
package repro

import (
	"os"

	"repro/internal/aggsrv"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/selector"
	"repro/internal/sum"
	"repro/internal/superacc"
)

// Algorithm identifies a summation algorithm. The zero value is ST.
type Algorithm = sum.Algorithm

// The registered algorithms, in increasing cost order.
const (
	Standard  = sum.StandardAlg
	Pairwise  = sum.PairwiseAlg
	Kahan     = sum.KahanAlg
	Neumaier  = sum.NeumaierAlg
	Binned    = sum.BinnedAlg
	Composite = sum.CompositeAlg
	// Prerounded is the windowed prerounded operator; Binned is the
	// cheaper single-pass reproducible rung the selector now prefers at
	// tight tolerances.
	Prerounded = sum.PreroundedAlg
)

// Algorithms lists every registered algorithm in cost order.
var Algorithms = sum.Algorithms

// PaperAlgorithms lists the four algorithms the paper evaluates.
var PaperAlgorithms = sum.PaperAlgorithms

// Accumulator is a streaming summation state.
type Accumulator = sum.Accumulator

// Runtime is the intelligent reduction runtime (the paper's proposal).
type Runtime = core.Runtime

// Report describes one adaptive reduction decision.
type Report = core.Report

// Profile summarizes the runtime-estimable properties of a value set.
type Profile = selector.Profile

// Policy maps a data profile and a reproducibility requirement to the
// cheapest acceptable algorithm (see WithPolicy).
type Policy = selector.Policy

// Bounds holds per-algorithm Hallman–Ipsen forward-error bound
// estimates (deterministic and λ-confidence probabilistic) computed
// from a Profile — every Report carries them at no extra data pass.
type Bounds = selector.Bounds

// Bound is one algorithm's (deterministic, probabilistic) absolute
// forward-error bound pair within a Bounds estimate.
type Bound = selector.Bound

// Option configures a Runtime (see WithWorkers, WithChunkSize).
type Option = core.Option

// WithPolicy substitutes the Runtime's selection policy: the analytic
// default can be replaced by a measurement-backed
// selector.CalibratedPolicy or the bound-driven ProbabilisticPolicy.
func WithPolicy(p Policy) Option { return core.WithPolicy(p) }

// NewProbabilisticPolicy returns the Hallman–Ipsen bound-driven
// policy: it accepts the cheapest algorithm whose λ-confidence
// relative error bound clears the tolerance (lambda <= 0 selects the
// default λ=4, failure probability 2·exp(-λ²/2) ≈ 6.7e-4), falling
// back to the analytic heuristic when the bounds are inconclusive.
// Its picks are cheaper than the worst-case heuristic's by design —
// probabilistic bounds are ~sqrt(n) tighter than deterministic ones.
func NewProbabilisticPolicy(lambda float64) Policy {
	return selector.NewProbabilisticPolicy(lambda)
}

// ComputeBounds evaluates the forward-error bound estimators for a
// profile at confidence lambda (<= 0 selects the default λ=4).
func ComputeBounds(p Profile, lambda float64) Bounds {
	return selector.ComputeBounds(p, lambda)
}

// WithWorkers routes large reductions through the deterministic chunked
// parallel engine with the given pool size (0 selects GOMAXPROCS).
// Engine results are bitwise-identical across worker counts.
func WithWorkers(n int) Option { return core.WithWorkers(n) }

// WithChunkSize sets the engine's fixed partition width in elements and
// enables the engine (0 keeps the default width). The chunk size is part
// of the reproducibility contract: two runtimes agree bitwise only if
// they use the same chunk size.
func WithChunkSize(c int) Option { return core.WithChunkSize(c) }

// WithLaneWidth sets the engine's fixed accumulator-lane count (1, 2, 4,
// or 8) and enables the engine. Lane-parallel chunk folds break the
// serial floating-point dependency chain for speed and remain
// bitwise-identical across worker counts and runs; the lane width itself
// — like the chunk size — is part of the reproducibility contract.
func WithLaneWidth(k int) Option { return core.WithLaneWidth(k) }

// CacheConfig sizes a selection decision cache (capacity in entries and
// shard count for concurrent callers).
type CacheConfig = selector.CacheConfig

// CacheStats is an observability snapshot of a decision cache: hits,
// misses, and current occupancy.
type CacheStats = selector.CacheStats

// WithDecisionCache attaches a quantized decision cache (capacity in
// entries; <= 0 selects the default 4096): selection decisions are
// memoized per (tolerance, condition, size, dynamic-range) bucket, so
// steady-state traffic skips policy evaluation entirely. Each bucket's
// decision is computed once from the bucket's conservative canonical
// representative, making cached selection a deterministic pure function
// of the data's profile — independent of request order, concurrency, and
// evictions. Inspect hit rates with Runtime.CacheStats.
func WithDecisionCache(capacity int) Option { return core.WithDecisionCache(capacity) }

// WithDecisionCacheConfig is WithDecisionCache with explicit cache
// geometry (see CacheConfig).
func WithDecisionCacheConfig(cfg CacheConfig) Option { return core.WithDecisionCacheConfig(cfg) }

// Calibration is a host calibration artifact measured by cmd/calibrate:
// the accuracy sweep, engine cost samples, and the parameters that
// reproduce them (see selector.Calibration).
type Calibration = selector.Calibration

// LoadCalibrationFile reads a calibration artifact written by
// cmd/calibrate (or selector.SaveCalibration). Unknown versions and
// truncated files are rejected.
func LoadCalibrationFile(path string) (*Calibration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return selector.LoadCalibration(f)
}

// WithCalibration installs a host calibration as the Runtime's
// selection policy: the artifact's measured crossover surfaces replace
// the analytic model, fitted once at startup so every selection is a
// handful of comparisons, with a decision cache attached (if none was
// configured) for repeat traffic. The closed loop is:
//
//	calibrate -out host.reprocal         // once per host
//	cal, _ := repro.LoadCalibrationFile("host.reprocal")
//	rt := repro.New(1e-12, repro.WithCalibration(cal))
func WithCalibration(cal *Calibration) Option { return core.WithCalibration(cal) }

// New returns a Runtime that keeps the relative run-to-run variability
// of its reductions within tolerance; 0 demands bitwise reproducibility.
func New(tolerance float64, opts ...Option) *Runtime { return core.New(tolerance, opts...) }

// SelectAndSum is the one-shot fused serving call: a single pass over xs
// profiles the data and speculatively computes the cheap candidate sums,
// the policy picks the cheapest algorithm meeting tolerance, and only a
// selection beyond ST/Neumaier reads xs a second time. Equivalent to
// New(tolerance).Sum(xs), minus the Runtime setup.
func SelectAndSum(tolerance float64, xs []float64) (float64, Report) {
	return core.New(tolerance).Sum(xs)
}

// Sum computes the sum of xs with the given algorithm.
func Sum(alg Algorithm, xs []float64) float64 { return alg.Sum(xs) }

// Dot computes the dot product of a and b with the given algorithm; the
// Prerounded variant is bitwise reproducible under any reduction order.
func Dot(alg Algorithm, a, b []float64) float64 { return sum.Dot(alg, a, b) }

// ExactSum returns the exact, correctly rounded sum of xs (an
// order-independent oracle backed by a Kulisch-style superaccumulator).
func ExactSum(xs []float64) float64 { return superacc.Sum(xs) }

// ParallelSum computes the sum of xs with the given algorithm on the
// deterministic chunked parallel engine (workers <= 0 selects
// GOMAXPROCS). The input is cut into fixed-size chunks, each chunk is
// reduced with the algorithm's mergeable operator, and the partials are
// combined in a fixed balanced tree — so the result is bitwise-identical
// for every worker count and equal to a single-threaded execution of the
// same plan.
func ParallelSum(alg Algorithm, xs []float64, workers int) float64 {
	return parallel.Sum(alg, xs, parallel.Config{Workers: workers})
}

// ParallelExactSum computes the exact, correctly rounded sum of xs with
// sharded superaccumulators merged exactly (workers <= 0 selects
// GOMAXPROCS). The result is identical to ExactSum for any worker count.
func ParallelExactSum(xs []float64, workers int) float64 {
	return parallel.ExactSum(xs, parallel.Config{Workers: workers})
}

// ProfileOf profiles xs in one streaming pass.
func ProfileOf(xs []float64) Profile { return selector.ProfileOf(xs) }

// CondNumber returns the exact sum condition number of xs
// (sum|x| / |sum x|; +Inf when the exact sum is zero).
func CondNumber(xs []float64) float64 { return metrics.CondNumber(xs) }

// DynRange returns the binary dynamic range of xs (largest minus
// smallest binary exponent over the nonzero values).
func DynRange(xs []float64) int { return metrics.DynRange(xs) }

// AggClient is a connection to a reduction-as-a-service aggregation
// server (see cmd/reprosumd). Deposits stream into named server-side
// binned accumulators; because deposits and merges are exact, the
// snapshot bits of every key are invariant under arrival order,
// connection count, and batch sizing. A client is not safe for
// concurrent use — give each goroutine its own.
type AggClient = aggsrv.Client

// AggSnapshot is a consistent point-in-time view of one server-side
// accumulator: the correctly rounded value, the deposit count, and the
// canonical reprostate v1 wire encoding of the state.
type AggSnapshot = aggsrv.Snapshot

// AggServerConfig parameterizes NewAggServer; the zero value is usable.
type AggServerConfig = aggsrv.Config

// AggServer is an embeddable reduction-as-a-service endpoint, the same
// engine cmd/reprosumd wraps.
type AggServer = aggsrv.Server

// DialAggregator connects to an aggregation server at addr.
func DialAggregator(addr string) (*AggClient, error) { return aggsrv.Dial(addr) }

// NewAggServer constructs an aggregation server; call its Serve or
// ListenAndServe to start accepting deposits.
func NewAggServer(cfg AggServerConfig) *AggServer { return aggsrv.New(cfg) }
