package repro_test

import (
	"math"
	"testing"

	"repro"
)

func TestPublicSumAndExactSum(t *testing.T) {
	xs := []float64{1e16, 1, -1e16}
	if got := repro.ExactSum(xs); got != 1 {
		t.Errorf("ExactSum = %g, want 1", got)
	}
	if got := repro.Sum(repro.Composite, xs); got != 1 {
		t.Errorf("Composite sum = %g, want 1", got)
	}
	if got := repro.Sum(repro.Standard, xs); got != 0 {
		t.Errorf("Standard sum = %g (expected absorption to 0)", got)
	}
}

func TestPublicRuntime(t *testing.T) {
	rt := repro.New(0)
	xs := []float64{3.5, -3.5, 1.25, 2.75}
	total, rep := rt.Sum(xs)
	if total != 4 {
		t.Errorf("runtime sum = %g", total)
	}
	if rep.Algorithm != repro.Binned {
		t.Errorf("t=0 chose %v, want the binned reproducible rung", rep.Algorithm)
	}
}

func TestPublicProfileAndMetrics(t *testing.T) {
	xs := []float64{500.5, -499.5}
	if k := repro.CondNumber(xs); k != 1000 {
		t.Errorf("CondNumber = %g", k)
	}
	if dr := repro.DynRange([]float64{1, 256}); dr != 8 {
		t.Errorf("DynRange = %d", dr)
	}
	p := repro.ProfileOf(xs)
	if math.Abs(p.Cond()-1000) > 1e-9 {
		t.Errorf("profile k = %g", p.Cond())
	}
}

func TestPublicAccumulators(t *testing.T) {
	for _, alg := range repro.Algorithms {
		acc := alg.NewAccumulator()
		for i := 0; i < 100; i++ {
			acc.Add(0.25)
		}
		if got := acc.Sum(); got != 25 {
			t.Errorf("%v accumulator = %g", alg, got)
		}
	}
	if len(repro.PaperAlgorithms) != 4 {
		t.Error("paper algorithm set wrong")
	}
}

func TestPublicParallelSum(t *testing.T) {
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = float64(i%7) * 0.125
	}
	for _, alg := range repro.Algorithms {
		ref := repro.ParallelSum(alg, xs, 1)
		for _, w := range []int{2, 4, 8} {
			got := repro.ParallelSum(alg, xs, w)
			if math.Float64bits(got) != math.Float64bits(ref) {
				t.Errorf("%v: %d workers gave %x, 1 worker gave %x",
					alg, w, math.Float64bits(got), math.Float64bits(ref))
			}
		}
	}
	if got := repro.ParallelExactSum(xs, 4); got != repro.ExactSum(xs) {
		t.Errorf("ParallelExactSum = %g, ExactSum = %g", got, repro.ExactSum(xs))
	}
}

func TestPublicRuntimeWithWorkers(t *testing.T) {
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = 1 / float64(i+1)
	}
	seq, seqRep := repro.New(1e-8).Sum(xs)
	for _, w := range []int{1, 2, 4, 8} {
		rt := repro.New(1e-8, repro.WithWorkers(w), repro.WithChunkSize(1<<12))
		got, rep := rt.Sum(xs)
		if rep.Algorithm != seqRep.Algorithm {
			t.Errorf("workers=%d selected %v, sequential selected %v",
				w, rep.Algorithm, seqRep.Algorithm)
		}
		if w == 1 {
			seq = got // engine plan differs from the no-engine path; w=1 is the oracle
		} else if math.Float64bits(got) != math.Float64bits(seq) {
			t.Errorf("workers=%d sum %x != workers=1 sum %x",
				w, math.Float64bits(got), math.Float64bits(seq))
		}
	}
}

func TestPublicSelectAndSum(t *testing.T) {
	xs := []float64{3.5, -3.5, 1.25, 2.75}
	got, rep := repro.SelectAndSum(1e-9, xs)
	want, wantRep := repro.New(1e-9).Sum(xs)
	if math.Float64bits(got) != math.Float64bits(want) || rep.Algorithm != wantRep.Algorithm {
		t.Errorf("SelectAndSum = %g/%v, Runtime.Sum = %g/%v",
			got, rep.Algorithm, want, wantRep.Algorithm)
	}
}

func TestPublicDecisionCache(t *testing.T) {
	xs := make([]float64, 8192)
	for i := range xs {
		xs[i] = 1 / float64(i+1)
	}
	if _, ok := repro.New(1e-9).CacheStats(); ok {
		t.Error("CacheStats reported a cache that was never attached")
	}
	rt := repro.New(1e-9, repro.WithDecisionCache(256))
	base, baseRep := repro.New(1e-9).Sum(xs)
	var got float64
	var rep repro.Report
	for i := 0; i < 3; i++ {
		got, rep = rt.Sum(xs)
	}
	if math.Float64bits(got) != math.Float64bits(base) || rep.Algorithm != baseRep.Algorithm {
		t.Errorf("cached runtime diverged: %g/%v vs %g/%v",
			got, rep.Algorithm, base, baseRep.Algorithm)
	}
	st, ok := rt.CacheStats()
	if !ok || st.Hits < 2 || st.Misses < 1 {
		t.Errorf("cache stats = %+v ok=%v, want >=2 hits / >=1 miss", st, ok)
	}
	if r := st.HitRate(); r <= 0 || r >= 1 {
		t.Errorf("hit rate = %g", r)
	}
	cfg := repro.New(1e-9, repro.WithDecisionCacheConfig(repro.CacheConfig{Capacity: 32, Shards: 2}))
	if v, _ := cfg.Sum(xs); math.Float64bits(v) != math.Float64bits(base) {
		t.Error("configured cache changed serving bits")
	}
}
