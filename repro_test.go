package repro_test

import (
	"math"
	"testing"

	"repro"
)

func TestPublicSumAndExactSum(t *testing.T) {
	xs := []float64{1e16, 1, -1e16}
	if got := repro.ExactSum(xs); got != 1 {
		t.Errorf("ExactSum = %g, want 1", got)
	}
	if got := repro.Sum(repro.Composite, xs); got != 1 {
		t.Errorf("Composite sum = %g, want 1", got)
	}
	if got := repro.Sum(repro.Standard, xs); got != 0 {
		t.Errorf("Standard sum = %g (expected absorption to 0)", got)
	}
}

func TestPublicRuntime(t *testing.T) {
	rt := repro.New(0)
	xs := []float64{3.5, -3.5, 1.25, 2.75}
	total, rep := rt.Sum(xs)
	if total != 4 {
		t.Errorf("runtime sum = %g", total)
	}
	if rep.Algorithm != repro.Prerounded {
		t.Errorf("t=0 chose %v", rep.Algorithm)
	}
}

func TestPublicProfileAndMetrics(t *testing.T) {
	xs := []float64{500.5, -499.5}
	if k := repro.CondNumber(xs); k != 1000 {
		t.Errorf("CondNumber = %g", k)
	}
	if dr := repro.DynRange([]float64{1, 256}); dr != 8 {
		t.Errorf("DynRange = %d", dr)
	}
	p := repro.ProfileOf(xs)
	if math.Abs(p.Cond()-1000) > 1e-9 {
		t.Errorf("profile k = %g", p.Cond())
	}
}

func TestPublicAccumulators(t *testing.T) {
	for _, alg := range repro.Algorithms {
		acc := alg.NewAccumulator()
		for i := 0; i < 100; i++ {
			acc.Add(0.25)
		}
		if got := acc.Sum(); got != 25 {
			t.Errorf("%v accumulator = %g", alg, got)
		}
	}
	if len(repro.PaperAlgorithms) != 4 {
		t.Error("paper algorithm set wrong")
	}
}
