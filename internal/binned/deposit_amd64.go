package binned

// AVX2 engine selection for the two-level deposit path. The assembly
// kernel performs the same exact floating-point operations as the
// portable depositGroupsGo (sublane-for-sublane), so installing it is
// invisible to the reproducibility contract — Finalize bits cannot
// depend on which engine ran.

//go:noescape
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func depositGroupsAVX2(xs []float64, consts *[3]float64, efLo, efSpan int64, q *[16]float64) int64

// hasAVX2 reports whether the CPU and OS support AVX2: AVX CPU flag,
// OS-enabled XMM+YMM state (OSXSAVE + XCR0), and the AVX2 extension.
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b&avx2 != 0
}

// useAVX2 routes depositGroupsFast to the assembly kernel.
var useAVX2 = hasAVX2()

// depositGroupsFast runs the widest group kernel this CPU supports.
// Small enough to inline, and both callees leave the quad pointer on
// the stack, so the caller's quad never escapes.
func depositGroupsFast(xs []float64, consts *[3]float64, efLo, efSpan int64, q *[16]float64) int64 {
	if useAVX2 {
		return depositGroupsAVX2(xs, consts, efLo, efSpan, q)
	}
	return depositGroupsGo(xs, consts, efLo, efSpan, q)
}
