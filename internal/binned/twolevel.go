package binned

import "math"

// This file implements the two-level accumulate-direct deposit path —
// the default batch kernel behind AddSlice.
//
// # Level 0: the anchored quad
//
// Instead of three Dekker round-to-multiple folds against a freshly
// loaded constant per element (the reference path, AddSliceRef), the
// batch loop pins an anchor window A and keeps a quad of 16 register
// accumulators: four independent sublanes, each holding four grades
//
//	h — multiples of q_A       (chunk c0 against big_A)
//	m — multiples of q_{A-1}   (chunk c1 against big_{A-1})
//	l — multiples of q_{A-2}   (chunk c2 against big_{A-2})
//	u — the exact sub-q_{A-2} residual
//
// Every element whose raw exponent field lies in the anchor's
// two-window range [32(A-1)-51, 32A-20] — i.e. its own top window is A
// or A-1 — is split against the three broadcast constants and
// plain-added into its sublane's four grades. The split constants no
// longer depend on the element's own window, so the whole group kernel
// is branch-free and vectorizes: groups of groupW elements are checked
// for range membership with integer compares and deposited with 13
// float64 adds/subs (depositGroupsGo, or the AVX2 kernel on amd64).
//
// # The run-length bound R
//
// Level-0 partials are exact for any run of up to R = renormEvery = 2^20
// elements between flushes (the batch driver never feeds a longer run:
// AddSlice caps each batch at the renorm budget):
//
//   - h: each element contributes at most 2^32 quanta of q_A (elements
//     of window A-1 contribute at most one quantum), so |h| <=
//     2^20·2^32 q_A = 2^52 q_A < 2^53 q_A — every add exact.
//   - m: the residual after c0 is < q_A/2 = 2^31 q_{A-1}; window-(A-1)
//     elements contribute up to 2^32 q_{A-1}; |m| <= 2^52 q_{A-1}.
//   - l: same shape one window down; |l| <= 2^52 q_{A-2}.
//   - u: residuals after three folds are exact multiples of the finest
//     operand ulp in range, gamma = 2^(32(A-1)-51-1075), with |r2| <=
//     q_{A-2}/2 = 2^19 gamma; window-A elements have r2 = 0 exactly
//     (their ulp exceeds q_{A-2}). After 2^20 adds |u| <= 2^39 gamma,
//     a 39-bit multiple of gamma — exact in float64's 53 bits.
//
// # Flush schedule
//
// The quad is flushed — sublanes folded pairwise (exact: capacity
// bounds above leave a factor-4 margin) and added into bins[A],
// bins[A-1], bins[A-2], with u routed through the generic per-element
// deposit — on re-anchor, and at the end of every batch, hence before
// any renorm, Merge, or Finalize (State never holds level-0 partials
// across calls). Flushed mass per bin is bounded by the same chunk
// mass the reference path would deposit, plus the u deposits (at most
// one per groupW elements, each < q_{A-1}/2^11), so the renorm
// schedule's 2^53-quanta headroom argument is preserved (see DESIGN.md
// for the full accounting).
//
// Because every operation above is exact, the State after a two-level
// batch represents exactly Σ r(x_i) = Σ x_i — the same real number the
// reference path represents — so Finalize returns bitwise identical
// results even though the in-memory bin decomposition may differ
// (window-(A-1) elements split against window-A grids). This is what
// licenses per-CPU group kernels: engine choice, group width, and
// anchor policy are pure speed knobs outside the reproducibility
// contract.

// groupW is the group width of the level-0 kernels: eligibility is
// checked and deposits performed groupW elements at a time.
const groupW = 4

// Group kernels consume a prefix of xs in groups of groupW (or the
// kernel's native width), depositing eligible elements into the quad q
// (layout h=q[0:4], m=q[4:8], l=q[8:12], u=q[12:16]) against the
// broadcast constants consts = {big_A, big_{A-1}, big_{A-2}}. An
// element is eligible when its raw exponent field ef satisfies
// 0 <= ef-efLo <= efSpan. They return the number of elements consumed,
// stopping at the first group containing an ineligible element. The
// widest engine on this CPU is reached through depositGroupsFast
// (deposit_amd64.go / deposit_noasm.go); all engines perform the same
// exact operations, so the choice cannot affect Finalize bits.

// depositGroupsGo is the portable group kernel: four independent
// sublanes, groups of four, mirroring the AVX2 kernel's operation
// order sublane-for-sublane.
func depositGroupsGo(xs []float64, consts *[3]float64, efLo, efSpan int64, q *[16]float64) int64 {
	b0, b1, b2 := consts[0], consts[1], consts[2]
	h0, h1, h2, h3 := q[0], q[1], q[2], q[3]
	m0, m1, m2, m3 := q[4], q[5], q[6], q[7]
	l0, l1, l2, l3 := q[8], q[9], q[10], q[11]
	u0, u1, u2, u3 := q[12], q[13], q[14], q[15]
	var i int64
	n := int64(len(xs))
	for i+groupW <= n {
		x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		e0 := int64(math.Float64bits(x0)>>52&0x7ff) - efLo
		e1 := int64(math.Float64bits(x1)>>52&0x7ff) - efLo
		e2 := int64(math.Float64bits(x2)>>52&0x7ff) - efLo
		e3 := int64(math.Float64bits(x3)>>52&0x7ff) - efLo
		if uint64(e0) > uint64(efSpan) || uint64(e1) > uint64(efSpan) ||
			uint64(e2) > uint64(efSpan) || uint64(e3) > uint64(efSpan) {
			break
		}
		c0 := (b0 + x0) - b0
		c1 := (b0 + x1) - b0
		c2 := (b0 + x2) - b0
		c3 := (b0 + x3) - b0
		x0 -= c0
		x1 -= c1
		x2 -= c2
		x3 -= c3
		h0 += c0
		h1 += c1
		h2 += c2
		h3 += c3
		c0 = (b1 + x0) - b1
		c1 = (b1 + x1) - b1
		c2 = (b1 + x2) - b1
		c3 = (b1 + x3) - b1
		x0 -= c0
		x1 -= c1
		x2 -= c2
		x3 -= c3
		m0 += c0
		m1 += c1
		m2 += c2
		m3 += c3
		c0 = (b2 + x0) - b2
		c1 = (b2 + x1) - b2
		c2 = (b2 + x2) - b2
		c3 = (b2 + x3) - b2
		x0 -= c0
		x1 -= c1
		x2 -= c2
		x3 -= c3
		l0 += c0
		l1 += c1
		l2 += c2
		l3 += c3
		u0 += x0
		u1 += x1
		u2 += x2
		u3 += x3
		i += groupW
	}
	q[0], q[1], q[2], q[3] = h0, h1, h2, h3
	q[4], q[5], q[6], q[7] = m0, m1, m2, m3
	q[8], q[9], q[10], q[11] = l0, l1, l2, l3
	q[12], q[13], q[14], q[15] = u0, u1, u2, u3
	return i
}

// depositGroupsGo2 is the two-sublane group kernel behind lane width 2:
// pairs instead of quads, using sublanes 0 and 1 of the quad layout.
// Exactness makes it bit-equivalent to every other kernel.
func depositGroupsGo2(xs []float64, consts *[3]float64, efLo, efSpan int64, q *[16]float64) int64 {
	b0, b1, b2 := consts[0], consts[1], consts[2]
	h0, h1 := q[0], q[1]
	m0, m1 := q[4], q[5]
	l0, l1 := q[8], q[9]
	u0, u1 := q[12], q[13]
	var i int64
	n := int64(len(xs))
	for i+2 <= n {
		x0, x1 := xs[i], xs[i+1]
		e0 := int64(math.Float64bits(x0)>>52&0x7ff) - efLo
		e1 := int64(math.Float64bits(x1)>>52&0x7ff) - efLo
		if uint64(e0) > uint64(efSpan) || uint64(e1) > uint64(efSpan) {
			break
		}
		c0 := (b0 + x0) - b0
		c1 := (b0 + x1) - b0
		x0 -= c0
		x1 -= c1
		h0 += c0
		h1 += c1
		c0 = (b1 + x0) - b1
		c1 = (b1 + x1) - b1
		x0 -= c0
		x1 -= c1
		m0 += c0
		m1 += c1
		c0 = (b2 + x0) - b2
		c1 = (b2 + x1) - b2
		x0 -= c0
		x1 -= c1
		l0 += c0
		l1 += c1
		u0 += x0
		u1 += x1
		i += 2
	}
	q[0], q[1] = h0, h1
	q[4], q[5] = m0, m1
	q[8], q[9] = l0, l1
	q[12], q[13] = u0, u1
	return i
}

// batchTwoLevel deposits one renorm-budgeted batch through the
// two-level path; wide selects the widest group kernel (AddSlice, lane
// widths >= 4) over the two-sublane one (lane width 2). Count/pend
// bookkeeping belongs to the caller (addSliceLanes), as for the other
// batch kernels.
func (st *State) batchTwoLevel(xs []float64, wide bool) {
	var q [16]float64
	var consts [3]float64
	var efLo, efSpan int64
	anchor := -1 // anchor window A (bin index), or -1 before the first
	n := len(xs)
	i := 0
	for i+groupW <= n {
		if anchor >= 0 {
			if wide {
				i += int(depositGroupsFast(xs[i:], &consts, efLo, efSpan, &q))
			} else {
				i += int(depositGroupsGo2(xs[i:], &consts, efLo, efSpan, &q))
			}
			if i+groupW > n {
				break
			}
		}
		// The group at i contains an element outside the current
		// anchor's range (or no anchor is set). Re-anchor at the
		// group's top window when the whole group fits a two-window
		// range; otherwise fall back to per-element deposits for this
		// group. Non-finite and top-of-range elements (ef >= hiEF)
		// always take the fallback, which keeps the anchor window
		// <= 63 and the quad clear of the scaled bins.
		ef0 := int(math.Float64bits(xs[i]) >> 52 & 0x7ff)
		ef1 := int(math.Float64bits(xs[i+1]) >> 52 & 0x7ff)
		ef2 := int(math.Float64bits(xs[i+2]) >> 52 & 0x7ff)
		ef3 := int(math.Float64bits(xs[i+3]) >> 52 & 0x7ff)
		emax := ef0
		if ef1 > emax {
			emax = ef1
		}
		if ef2 > emax {
			emax = ef2
		}
		if ef3 > emax {
			emax = ef3
		}
		if emax < hiEF {
			s := int(uint(emax+51) >> binShift)
			lo := int64(BinWidth*s) - (BinWidth + 51)
			if lo < 0 {
				lo = 0
			}
			if int64(ef0) >= lo && int64(ef1) >= lo && int64(ef2) >= lo && int64(ef3) >= lo {
				// The group lies within [lo, 32s-20]: after
				// re-anchoring at s it is eligible, so the kernel is
				// guaranteed to consume it — no livelock.
				st.flushQuad(&q, anchor)
				anchor = s
				consts[0] = bigTab[s+pad]
				consts[1] = bigTab[s+pad-1]
				consts[2] = bigTab[s+pad-2]
				efLo = lo
				efSpan = int64(BinWidth*s-20) - lo
				continue
			}
		}
		depositOne(&st.bins, st, xs[i])
		depositOne(&st.bins, st, xs[i+1])
		depositOne(&st.bins, st, xs[i+2])
		depositOne(&st.bins, st, xs[i+3])
		i += groupW
	}
	for ; i < n; i++ {
		depositOne(&st.bins, st, xs[i])
	}
	st.flushQuad(&q, anchor)
}

// flushQuad folds the level-0 quad into the bins, exactly, and clears
// it. The pairwise sublane folds are exact: the four sublanes of a
// grade partition one run's elements, so every partial fold is bounded
// by the whole-run capacity bounds in the file comment (< 2^53 quanta
// of the grade's grid).
func (st *State) flushQuad(q *[16]float64, anchor int) {
	if anchor < 0 {
		return
	}
	s := uint(anchor)
	if v := (q[0] + q[1]) + (q[2] + q[3]); v != 0 {
		st.bins[s+pad] += v
	}
	if v := (q[4] + q[5]) + (q[6] + q[7]); v != 0 {
		st.bins[s+pad-1] += v
	}
	if v := (q[8] + q[9]) + (q[10] + q[11]); v != 0 {
		st.bins[s+pad-2] += v
	}
	if v := (q[12] + q[13]) + (q[14] + q[15]); v != 0 {
		// The residual sum is far below q_{A-2}; one generic deposit
		// bins it exactly.
		depositOne(&st.bins, st, v)
	}
	*q = [16]float64{}
}
