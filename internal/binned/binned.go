// Package binned implements single-pass binned reproducible summation —
// the fast-reproducible middle rung of the cost ladder, after Demmel &
// Nguyen's indexed (binned) accumulation.
//
// The float64 exponent range is partitioned into fixed, absolute bins of
// BinWidth = 32 bits: bin j holds multiples of the quantum q_j =
// 2^(32j-1074). Each operand is split into Folds = 3 chunks, one per
// bin, starting at the operand's own top bin (located by one shift of
// the raw exponent field); chunk f is extracted with the Dekker
// round-to-multiple trick. The third chunk's grid, q_{top-2}, is at
// least 2^12 finer than the operand's own ulp (a window spans 32
// exponents, the significand has 52 fraction bits), so the residual
// below the lowest chunk is exactly zero: the deposit retains every
// operand exactly. Unlike the windowed prerounded operator
// (sum.PRConfig), the bin grid spans the whole exponent range, so
//
//   - the deposited chunks of an operand are a pure function of x
//     alone (never of accumulator state, a running max, or a window),
//     and sum exactly to x,
//   - every deposit, carry, and merge is an exact floating-point
//     operation (chunks are exact multiples of their bin's quantum and
//     bin magnitudes are kept under 2^53 quanta by a fixed
//     renormalization schedule), and
//   - Finalize rounds the exact represented value Σ x_i with an exact
//     superaccumulator pass over the ~66 bins.
//
// The represented value is therefore the same real number for every
// deposit order, chunking, merge tree, worker count, and lane width —
// and Finalize is a pure function of that value — so the result is
// bitwise identical under all of them. Renormalization timing (which
// moves bits between bins but never changes the represented value)
// cannot affect the result, which is what frees the carry schedule to
// be a pure amortized-cost knob instead of part of the plan.
//
// Accuracy: because every deposit is exact, Finalize returns the
// correctly rounded (nearest, ties to even) float64 of the exact sum
// Σ x_i — the same bits as the exact superaccumulator — independent of
// condition number, at a small constant factor over the plain ST loop.
// (The earlier design note bounded a "dropped residual" at < 2^-65|x|;
// the residual is in fact identically zero, see DESIGN.md.)
//
// Deposits default to the two-level accumulate-direct batch kernel
// (twolevel.go): register-resident level-0 partials over an anchored
// two-window range, flushed exactly into the bins on a fixed schedule.
// Exactness makes the kernel choice — reference per-element loop,
// portable groups, or the AVX2 engine — invisible in the Finalize
// bits; AddSliceRef keeps the per-element reference path as the
// oracle.
//
// Capacity is unbounded: a renormalization pass runs every renormEvery
// deposits (and on demand at merges), restoring per-bin headroom, so
// any number of operands can be absorbed — unlike the windowed PR
// operator's 2^(52-W) cap.
//
// Top-of-range handling: bins 64 and 65 (operand magnitudes >= 2^974)
// are stored scaled by 2^-512 so their totals cannot overflow float64;
// Finalize deposits them at their true weight. The exactness guarantee
// there holds up to ~2^34 such huge operands — beyond that the top
// bin's total can exceed 2^53 of its quantum (strictly wider coverage
// than the windowed PR operator, which voids its guarantee above 2^1020
// for any count). NaN and ±Inf operands are tallied outside the bins
// and reproduce IEEE semantics order-invariantly: any NaN, or both Inf
// signs, yields NaN; otherwise an Inf sign wins; a represented value
// beyond the float64 range rounds to ±Inf.
package binned

import (
	"math"

	"repro/internal/superacc"
)

const (
	// BinWidth is the bin width in bits. 32 makes the exponent-to-bin
	// map a single shift of the raw exponent field.
	BinWidth = 32
	// Folds is the number of chunks each operand deposits (its own top
	// bin and the two below), retaining ~64 significant bits per
	// operand.
	Folds = 3

	// binShift is log2(BinWidth).
	binShift = 5
	// numBins covers bin indices 0..65: (1023+1074)/32 = 65 is the top
	// bin of the largest finite float64.
	numBins = 66
	// pad adds Folds-1 dead slots below bin 0 so the deposit loop never
	// indexes negative bins (chunks there are always exactly zero: every
	// value with top bin <= 1 is a multiple of q_0 = 2^-1074).
	pad = Folds - 1
	// numSlots is the length of the bin array; slot(j) = j + pad.
	numSlots = numBins + pad

	// hiBin is the first scaled bin: bins hiBin.. are stored multiplied
	// by 2^-scaleSH so their totals stay far from float64 overflow.
	hiBin = 64
	// hiEF is the raw-exponent-field threshold routing deposits to the
	// scaled slow path: ef >= hiEF means top bin >= hiBin (|x| >= 2^974)
	// or a non-finite value (ef == 0x7ff).
	hiEF = hiBin<<binShift - 51
	// scaleSH is the power-of-two scaling of the hi bins.
	scaleSH = 512

	// renormEvery is the fixed carry schedule: after this many deposits
	// a renormalization pass restores per-bin headroom. The bound keeps
	// every bin total under 2^53 quanta (the exact-accumulation limit):
	// a renormalized bin holds at most 2^31 quanta and each deposit adds
	// at most 2^32, so 2^31 + renormEvery*2^32 <= 2^53 requires
	// renormEvery <= 2^20 (with 2x margin left for merges, see Merge).
	renormEvery = 1 << 20
)

// bigTab[s] is the Dekker rounding constant 1.5*2^(q+52) for the bin at
// slot s (quantum exponent q = (s-pad)*BinWidth - 1074). Pad slots hold
// 0 — they are only ever "rounded" against an exactly zero residual.
// Slots hiBin+pad.. hold the scaled constants (q reduced by scaleSH).
var bigTab [numSlots]float64

func init() {
	for j := 0; j < numBins; j++ {
		q := j*BinWidth - 1074
		if j >= hiBin {
			q -= scaleSH
		}
		bigTab[j+pad] = math.Ldexp(1.5, q+52)
	}
}

// State is a binned partial-reduction state. The zero value is an empty
// accumulator ready to use. States merge exactly (Merge) and finalize
// to a float64 that is bitwise identical for every way of splitting and
// ordering the same multiset of operands.
type State struct {
	// bins[j+pad] is the bin-j total: an exact multiple of q_j
	// (2^-scaleSH q_j for j >= hiBin) of magnitude < 2^53 quanta.
	bins [numSlots]float64
	// count is the number of operands absorbed (including zeros and
	// non-finite values); it never influences Finalize.
	count int64
	// pend counts deposits since the last renormalization.
	pend int64
	// posInf/negInf tally ±Inf operands; nan records any NaN operand.
	posInf, negInf int64
	nan            bool
}

// Count returns the number of operands absorbed.
func (st *State) Count() int64 { return st.count }

// Reset restores st to the empty state.
func (st *State) Reset() { *st = State{} }

// Add folds one operand into the state.
func (st *State) Add(x float64) {
	ef := int(math.Float64bits(x) >> 52 & 0x7ff)
	if ef >= hiEF {
		st.addSlow(x, ef)
		return
	}
	s := uint(ef+51) >> binShift
	b0 := bigTab[s+pad]
	c0 := (b0 + x) - b0
	r := x - c0
	st.bins[s+pad] += c0
	b1 := bigTab[s+pad-1]
	c1 := (b1 + r) - b1
	r -= c1
	st.bins[s+pad-1] += c1
	b2 := bigTab[s+pad-2]
	c2 := (b2 + r) - b2
	st.bins[s+pad-2] += c2
	st.count++
	st.pend++
	if st.pend >= renormEvery {
		st.renorm()
	}
}

// addSlow handles the rare top-of-range and non-finite operands
// (ef >= hiEF). Huge operands are chunked in the 2^-scaleSH domain;
// chunks landing below hiBin are scaled back up (exactly) before
// depositing.
func (st *State) addSlow(x float64, ef int) {
	st.count++
	if ef == 0x7ff {
		switch {
		case math.IsNaN(x):
			st.nan = true
		case x > 0:
			st.posInf++
		default:
			st.negInf++
		}
		return
	}
	j := (ef + 51) >> binShift // 64 or 65
	r := x * (0x1p-512)        // exact: |x| >= 2^974
	for f := 0; f < Folds; f++ {
		jj := j - f
		var big float64
		if jj >= hiBin {
			big = bigTab[jj+pad]
		} else {
			// Scaled constant for an unscaled bin: quantum exponent
			// (jj*BinWidth - 1074) - scaleSH.
			big = math.Ldexp(1.5, jj*BinWidth-1074-scaleSH+52)
		}
		c := (big + r) - big
		r -= c
		if jj >= hiBin {
			st.bins[jj+pad] += c
		} else {
			st.bins[jj+pad] += c * (0x1p512) // exact rescale
		}
	}
	st.pend++
	if st.pend >= renormEvery {
		st.renorm()
	}
}

// renorm runs one carry pass, bottom bin up: each bin's total is
// rounded to a multiple of the next bin's quantum, the rounded part
// carries up, and the exact residual (at most 2^31 quanta) stays. Every
// operation is exact, so the represented value never changes — which is
// why the carry schedule is not part of the reproducibility contract.
func (st *State) renorm() {
	// Unscaled bins 0..hiBin-2 carry within the unscaled domain. The
	// deposit constant of bin j+1 is exactly the rounding constant for
	// "multiple of q_{j+1}".
	for s := pad; s < hiBin+pad-1; s++ {
		v := st.bins[s]
		if v == 0 {
			continue
		}
		big := bigTab[s+1]
		c := (big + v) - big
		if c != 0 {
			st.bins[s] = v - c
			st.bins[s+1] += c
		}
	}
	// Bin hiBin-1 carries into the scaled domain: round in the
	// 2^-scaleSH frame, keep the residual unscaled.
	if v := st.bins[hiBin+pad-1]; v != 0 {
		vs := v * (0x1p-512) // exact: v is a multiple of q_63 = 2^942
		big := bigTab[hiBin+pad]
		c := (big + vs) - big
		if c != 0 {
			st.bins[hiBin+pad-1] = (vs - c) * (0x1p512)
			st.bins[hiBin+pad] += c
		}
	}
	// Scaled bin hiBin carries to the top bin, all in the scaled frame.
	if v := st.bins[hiBin+pad]; v != 0 {
		big := bigTab[hiBin+pad+1]
		c := (big + v) - big
		if c != 0 {
			st.bins[hiBin+pad] = v - c
			st.bins[hiBin+pad+1] += c
		}
	}
	// The top bin has no carry target; its headroom bounds are
	// documented in the package comment.
	st.pend = 0
}

// Merge folds o into st, exactly. o is left unchanged. The result
// represents exactly the sum of the two represented values, so merging
// in any order or tree shape yields the same Finalize bits.
func (st *State) Merge(o *State) {
	for s := range st.bins {
		st.bins[s] += o.bins[s]
	}
	st.count += o.count
	st.posInf += o.posInf
	st.negInf += o.negInf
	st.nan = st.nan || o.nan
	// Two renormalized-plus-deposits states add to at most
	// 2^32 + (pendA+pendB)*2^32 quanta; the +1 folds the doubled
	// residual term back into the standard pend bound.
	st.pend += o.pend + 1
	if st.pend >= renormEvery {
		st.renorm()
	}
}

// Finalize rounds the represented value to the nearest float64 (ties to
// even) via an exact superaccumulator pass over the bins. It does not
// modify st. NaN and ±Inf tallies reproduce IEEE semantics: any NaN or
// both Inf signs give NaN, otherwise a present Inf sign wins.
func (st *State) Finalize() float64 {
	if st.nan || (st.posInf > 0 && st.negInf > 0) {
		return math.NaN()
	}
	if st.posInf > 0 {
		return math.Inf(1)
	}
	if st.negInf > 0 {
		return math.Inf(-1)
	}
	var sa superacc.Acc
	for s := 0; s < hiBin+pad; s++ {
		if v := st.bins[s]; v != 0 {
			sa.Add(v)
		}
	}
	for s := hiBin + pad; s < numSlots; s++ {
		if v := st.bins[s]; v != 0 {
			sa.AddLdexp(v, scaleSH)
		}
	}
	return sa.Float64()
}

// Sum computes the one-shot binned reproducible sum of xs.
func Sum(xs []float64) float64 {
	var st State
	st.AddSlice(xs)
	return st.Finalize()
}

// AddSlice folds every element of xs into st with the two-level batch
// kernel (twolevel.go): renormalization bookkeeping is hoisted out of
// the element loop (one check per renormEvery elements, which is also
// the level-0 run bound R) and eligible elements plain-add into an
// anchored quad of register partials, flushed exactly at every
// re-anchor and batch end. Because every operation is exact, the
// result is bit-identical to element-wise Add and to the reference
// path (AddSliceRef) — kernel engine and batch boundaries are pure
// speed knobs, not part of the plan.
func (st *State) AddSlice(xs []float64) {
	st.addSliceLanes(xs, 4)
}

// AddSliceLanes is AddSlice with an explicit level-0 sublane width k:
// 1 selects the per-element reference deposit loop, 2 the two-sublane
// group kernel, and 4 or 8 the widest kernel available (the AVX2
// engine where supported). All widths produce states with the same
// represented value and identical Finalize bits.
func (st *State) AddSliceLanes(xs []float64, k int) {
	switch k {
	case 1, 2, 4, 8:
		st.addSliceLanes(xs, k)
	default:
		panic("binned: invalid lane width (want 1, 2, 4, or 8)")
	}
}

func (st *State) addSliceLanes(xs []float64, k int) {
	for len(xs) > 0 {
		batch := xs
		if budget := renormEvery - st.pend; int64(len(batch)) > budget {
			batch = batch[:budget]
		}
		switch {
		case k >= 4:
			st.batchTwoLevel(batch, true)
		case k == 2:
			st.batchTwoLevel(batch, false)
		default:
			st.batch1(batch)
		}
		st.count += int64(len(batch))
		st.pend += int64(len(batch))
		if st.pend >= renormEvery {
			st.renorm()
		}
		xs = xs[len(batch):]
	}
}

// AddSliceRef folds xs with the per-element three-fold reference
// deposit loop — the pre-two-level batch path, kept as the oracle the
// fast path is pinned against. It produces the same represented value
// and Finalize bits as AddSlice; the in-memory bin decomposition may
// differ (the two-level path splits window-(A-1) elements against the
// anchor window's grids).
func (st *State) AddSliceRef(xs []float64) {
	st.addSliceRefLanes(xs, 2)
}

// AddSliceRefLanes is AddSliceRef with the reference path's interleave
// width k (1, 2, 4, or 8; 8 runs the widest 4-lane kernel). Reference
// widths interleave whole bin arrays, so — unlike the two-level path —
// all reference widths produce field-for-field identical states.
func (st *State) AddSliceRefLanes(xs []float64, k int) {
	switch k {
	case 1, 2, 4, 8:
		st.addSliceRefLanes(xs, k)
	default:
		panic("binned: invalid lane width (want 1, 2, 4, or 8)")
	}
}

func (st *State) addSliceRefLanes(xs []float64, k int) {
	for len(xs) > 0 {
		batch := xs
		if budget := renormEvery - st.pend; int64(len(batch)) > budget {
			batch = batch[:budget]
		}
		switch {
		case k >= 4:
			st.batch4(batch)
		case k == 2:
			st.batch2(batch)
		default:
			st.batch1(batch)
		}
		st.count += int64(len(batch))
		st.pend += int64(len(batch))
		if st.pend >= renormEvery {
			st.renorm()
		}
		xs = xs[len(batch):]
	}
}

// batch1 deposits directly into the state's bins, serially.
func (st *State) batch1(xs []float64) {
	b := &st.bins
	for _, x := range xs {
		ef := int(math.Float64bits(x) >> 52 & 0x7ff)
		if ef >= hiEF {
			st.slowNoCount(x, ef)
			continue
		}
		s := uint(ef+51) >> binShift
		b0 := bigTab[s+pad]
		c0 := (b0 + x) - b0
		r := x - c0
		b[s+pad] += c0
		b1 := bigTab[s+pad-1]
		c1 := (b1 + r) - b1
		r -= c1
		b[s+pad-1] += c1
		b2 := bigTab[s+pad-2]
		c2 := (b2 + r) - b2
		b[s+pad-2] += c2
	}
}

// batch2 interleaves two local bin arrays and folds them into the state
// afterwards (all exact adds).
func (st *State) batch2(xs []float64) {
	var la, lb [numSlots]float64
	n := len(xs)
	i := 0
	for ; i+2 <= n; i += 2 {
		x, y := xs[i], xs[i+1]
		efx := int(math.Float64bits(x) >> 52 & 0x7ff)
		efy := int(math.Float64bits(y) >> 52 & 0x7ff)
		if efx >= hiEF || efy >= hiEF {
			st.slowPair(x, efx, y, efy, &la, &lb)
			continue
		}
		sx := uint(efx+51) >> binShift
		sy := uint(efy+51) >> binShift
		bx0 := bigTab[sx+pad]
		by0 := bigTab[sy+pad]
		cx0 := (bx0 + x) - bx0
		cy0 := (by0 + y) - by0
		rx := x - cx0
		ry := y - cy0
		la[sx+pad] += cx0
		lb[sy+pad] += cy0
		bx1 := bigTab[sx+pad-1]
		by1 := bigTab[sy+pad-1]
		cx1 := (bx1 + rx) - bx1
		cy1 := (by1 + ry) - by1
		rx -= cx1
		ry -= cy1
		la[sx+pad-1] += cx1
		lb[sy+pad-1] += cy1
		bx2 := bigTab[sx+pad-2]
		by2 := bigTab[sy+pad-2]
		cx2 := (bx2 + rx) - bx2
		cy2 := (by2 + ry) - by2
		la[sx+pad-2] += cx2
		lb[sy+pad-2] += cy2
	}
	if i < n {
		depositOne(&la, st, xs[i])
	}
	for s := range st.bins {
		if v := la[s] + lb[s]; v != 0 {
			st.bins[s] += v
		}
	}
}

// batch4 interleaves four local bin arrays.
func (st *State) batch4(xs []float64) {
	var l0, l1, l2, l3 [numSlots]float64
	lanes := [4]*[numSlots]float64{&l0, &l1, &l2, &l3}
	n := len(xs)
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := xs[i], xs[i+1], xs[i+2], xs[i+3]
		e0 := int(math.Float64bits(x0) >> 52 & 0x7ff)
		e1 := int(math.Float64bits(x1) >> 52 & 0x7ff)
		e2 := int(math.Float64bits(x2) >> 52 & 0x7ff)
		e3 := int(math.Float64bits(x3) >> 52 & 0x7ff)
		if e0 >= hiEF || e1 >= hiEF || e2 >= hiEF || e3 >= hiEF {
			depositOne(&l0, st, x0)
			depositOne(&l1, st, x1)
			depositOne(&l2, st, x2)
			depositOne(&l3, st, x3)
			continue
		}
		s0 := uint(e0+51) >> binShift
		s1 := uint(e1+51) >> binShift
		s2 := uint(e2+51) >> binShift
		s3 := uint(e3+51) >> binShift
		b00 := bigTab[s0+pad]
		b10 := bigTab[s1+pad]
		b20 := bigTab[s2+pad]
		b30 := bigTab[s3+pad]
		c00 := (b00 + x0) - b00
		c10 := (b10 + x1) - b10
		c20 := (b20 + x2) - b20
		c30 := (b30 + x3) - b30
		r0 := x0 - c00
		r1 := x1 - c10
		r2 := x2 - c20
		r3 := x3 - c30
		l0[s0+pad] += c00
		l1[s1+pad] += c10
		l2[s2+pad] += c20
		l3[s3+pad] += c30
		b01 := bigTab[s0+pad-1]
		b11 := bigTab[s1+pad-1]
		b21 := bigTab[s2+pad-1]
		b31 := bigTab[s3+pad-1]
		c01 := (b01 + r0) - b01
		c11 := (b11 + r1) - b11
		c21 := (b21 + r2) - b21
		c31 := (b31 + r3) - b31
		r0 -= c01
		r1 -= c11
		r2 -= c21
		r3 -= c31
		l0[s0+pad-1] += c01
		l1[s1+pad-1] += c11
		l2[s2+pad-1] += c21
		l3[s3+pad-1] += c31
		b02 := bigTab[s0+pad-2]
		b12 := bigTab[s1+pad-2]
		b22 := bigTab[s2+pad-2]
		b32 := bigTab[s3+pad-2]
		c02 := (b02 + r0) - b02
		c12 := (b12 + r1) - b12
		c22 := (b22 + r2) - b22
		c32 := (b32 + r3) - b32
		l0[s0+pad-2] += c02
		l1[s1+pad-2] += c12
		l2[s2+pad-2] += c22
		l3[s3+pad-2] += c32
	}
	for ; i < n; i++ {
		depositOne(lanes[i&3], st, xs[i])
	}
	for s := range st.bins {
		// Pairwise exact lane folds stay within the 2^53-quanta bound.
		if v := (l0[s] + l1[s]) + (l2[s] + l3[s]); v != 0 {
			st.bins[s] += v
		}
	}
}

// depositOne deposits x into local bin array b, diverting top-of-range
// and non-finite operands to the state's slow path.
func depositOne(b *[numSlots]float64, st *State, x float64) {
	ef := int(math.Float64bits(x) >> 52 & 0x7ff)
	if ef >= hiEF {
		st.slowNoCount(x, ef)
		return
	}
	s := uint(ef+51) >> binShift
	b0 := bigTab[s+pad]
	c0 := (b0 + x) - b0
	r := x - c0
	b[s+pad] += c0
	b1 := bigTab[s+pad-1]
	c1 := (b1 + r) - b1
	r -= c1
	b[s+pad-1] += c1
	b2 := bigTab[s+pad-2]
	c2 := (b2 + r) - b2
	b[s+pad-2] += c2
}

// slowPair routes an unrolled pair through the slow path as needed,
// keeping in-range elements on their lanes.
func (st *State) slowPair(x float64, efx int, y float64, efy int, la, lb *[numSlots]float64) {
	if efx >= hiEF {
		st.slowNoCount(x, efx)
	} else {
		depositOne(la, st, x)
	}
	if efy >= hiEF {
		st.slowNoCount(y, efy)
	} else {
		depositOne(lb, st, y)
	}
}

// slowNoCount is addSlow without the count/pend bookkeeping (the batch
// loop accounts for the whole slice at once).
func (st *State) slowNoCount(x float64, ef int) {
	if ef == 0x7ff {
		switch {
		case math.IsNaN(x):
			st.nan = true
		case x > 0:
			st.posInf++
		default:
			st.negInf++
		}
		return
	}
	j := (ef + 51) >> binShift
	r := x * (0x1p-512)
	for f := 0; f < Folds; f++ {
		jj := j - f
		var big float64
		if jj >= hiBin {
			big = bigTab[jj+pad]
		} else {
			big = math.Ldexp(1.5, jj*BinWidth-1074-scaleSH+52)
		}
		c := (big + r) - big
		r -= c
		if jj >= hiBin {
			st.bins[jj+pad] += c
		} else {
			st.bins[jj+pad] += c * (0x1p512)
		}
	}
}
