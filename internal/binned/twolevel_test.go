package binned

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/superacc"
)

// Property tests for the two-level deposit path: exactness of the
// engine (the theorem the whole scheme rests on), the level-0 run
// bound R at its boundaries, and every flush path pinned bitwise
// against the reference deposit loop.

// pinAllPaths runs xs through the reference loop and every two-level
// lane width and requires identical Finalize bits (and counts).
func pinAllPaths(t *testing.T, name string, xs []float64) {
	t.Helper()
	var ref State
	ref.AddSliceRef(xs)
	want := ref.Finalize()
	wantBits := math.Float64bits(want)
	for _, k := range []int{1, 2, 4, 8} {
		var st State
		st.AddSliceLanes(xs, k)
		if got := math.Float64bits(st.Finalize()); got != wantBits {
			t.Fatalf("%s: lane width %d Finalize %x != reference %x", name, k, got, wantBits)
		}
		if st.Count() != ref.Count() {
			t.Fatalf("%s: lane width %d count %d != %d", name, k, st.Count(), ref.Count())
		}
	}
	var st State
	st.AddSlice(xs)
	if got := math.Float64bits(st.Finalize()); got != wantBits {
		t.Fatalf("%s: AddSlice Finalize %x != reference %x", name, got, wantBits)
	}
}

// TestDepositExactness verifies the exactness theorem directly: the
// binned engine's Finalize equals the exact superaccumulator's
// correctly rounded sum, bitwise, on arbitrary finite data across the
// full exponent range (denormals through the scaled top windows).
func TestDepositExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(2000)
		xs := make([]float64, n)
		for i := range xs {
			m := 1 + rng.Float64()
			if rng.Intn(2) == 0 {
				m = -m
			}
			e := rng.Intn(600) - 300
			switch trial % 5 {
			case 1:
				e = rng.Intn(40) - 20
			case 2:
				e = -1000 - rng.Intn(70) // denormal range
			case 3:
				e = 900 + rng.Intn(120) // huge, incl. the scaled path
			case 4:
				e = 0
			}
			xs[i] = math.Ldexp(m, e)
			if math.IsInf(xs[i], 0) {
				xs[i] = math.MaxFloat64
			}
		}
		got := math.Float64bits(Sum(xs))
		want := math.Float64bits(superacc.Sum(xs))
		if got != want {
			t.Fatalf("trial %d n=%d: binned %x != superacc %x", trial, n, got, want)
		}
	}
}

// TestThirdFoldIsExact verifies the linchpin of the exactness theorem:
// the third Dekker fold never rounds — after two folds the residual is
// already an exact multiple of q_{s-2} (the operand's ulp is at least
// 2^12 q_{s-2}), so c2 == r exactly.
func TestThirdFoldIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 200000; trial++ {
		m := 1 + rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		x := math.Ldexp(m, rng.Intn(2040)-1070)
		if x == 0 || math.IsInf(x, 0) {
			continue
		}
		ef := int(math.Float64bits(x) >> 52 & 0x7ff)
		if ef >= hiEF {
			continue
		}
		s := uint(ef+51) >> binShift
		b0 := bigTab[s+pad]
		c0 := (b0 + x) - b0
		r := x - c0
		b1 := bigTab[s+pad-1]
		c1 := (b1 + r) - b1
		r -= c1
		b2 := bigTab[s+pad-2]
		if c2 := (b2 + r) - b2; c2 != r {
			t.Fatalf("x=%x: third fold rounds: c2=%x r=%x",
				math.Float64bits(x), math.Float64bits(c2), math.Float64bits(r))
		}
	}
}

// TestRunLengthBoundary drives same-window runs of length R-1, R, and
// R+1 (R = renormEvery, the level-0 run bound) at worst-case
// magnitudes — full mantissas at the window's top exponent, same sign,
// so the h grade reaches its proven 2^52-quanta capacity — plus a
// mixed-sign variant, and pins all paths against the reference and
// the exact superaccumulator.
func TestRunLengthBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("R-length runs")
	}
	const R = renormEvery
	mk := func(n int, mixed bool) []float64 {
		rng := rand.New(rand.NewSource(int64(n)))
		xs := make([]float64, n)
		for i := range xs {
			// Window 33 tops out at unbiased exponent 13.
			m := 1 + rng.Float64()
			if mixed && rng.Intn(4) == 0 {
				m = -m
			}
			xs[i] = math.Ldexp(m, 13)
		}
		return xs
	}
	for _, n := range []int{R - 1, R, R + 1} {
		for _, mixed := range []bool{false, true} {
			xs := mk(n, mixed)
			var st State
			st.AddSlice(xs)
			got := math.Float64bits(st.Finalize())
			if want := math.Float64bits(superacc.Sum(xs)); got != want {
				t.Fatalf("n=R%+d mixed=%v: two-level %x != superacc %x", n-R, mixed, got, want)
			}
			var ref State
			ref.AddSliceRef(xs)
			if want := math.Float64bits(ref.Finalize()); got != want {
				t.Fatalf("n=R%+d mixed=%v: two-level %x != reference %x", n-R, mixed, got, want)
			}
		}
	}
}

// TestResidualGradeCapacity stresses the u grade: an anchor pinned at
// window 33 by a leading group, then a full run of window-32 elements
// whose three-fold splits against window-33 grids leave nonzero
// sub-q_{A-2} residuals on every deposit.
func TestResidualGradeCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("R-length runs")
	}
	rng := rand.New(rand.NewSource(77))
	xs := make([]float64, renormEvery)
	for i := range xs {
		e := -20 - rng.Intn(30) // window 32: unbiased exponents -50..-19
		if i < groupW {
			e = 0 // anchor group in window 33
		}
		m := 1 + rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		xs[i] = math.Ldexp(m, e)
	}
	var st State
	st.AddSlice(xs)
	got := math.Float64bits(st.Finalize())
	if want := math.Float64bits(superacc.Sum(xs)); got != want {
		t.Fatalf("residual capacity: two-level %x != superacc %x", got, want)
	}
}

// TestFlushPathsAdversarial pins every flush/fallback path of the
// two-level driver against the reference loop: anchor churn between
// distant windows, three-window groups that can never anchor, zeros
// and negative zeros interleaved mid-run, denormals, the scaled
// 2^-512-domain top windows, and window-boundary straddles.
func TestFlushPathsAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mant := func() float64 {
		m := 1 + rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		return m
	}
	churn := make([]float64, 4096)
	for i := range churn {
		e := 0
		if (i/4)%2 == 1 {
			e = 300 // re-anchor every group
		}
		churn[i] = math.Ldexp(mant(), e)
	}
	wide := make([]float64, 4096)
	for i := range wide {
		wide[i] = math.Ldexp(mant(), (i%3)*64) // 3 windows per group: direct fallback
	}
	zeros := make([]float64, 4096)
	for i := range zeros {
		switch i % 3 {
		case 0:
			zeros[i] = math.Ldexp(mant(), 40)
		case 1:
			zeros[i] = 0
		default:
			zeros[i] = math.Copysign(0, -1)
		}
	}
	denorm := make([]float64, 4096)
	for i := range denorm {
		denorm[i] = math.Ldexp(mant(), -1040-rng.Intn(35))
	}
	top := make([]float64, 4096)
	for i := range top {
		e := 980 + rng.Intn(44) // bins 64/65: scaled slow path
		if i%5 == 0 {
			e = 900 // straddles back below hiEF
		}
		top[i] = math.Ldexp(mant(), e)
	}
	boundary := make([]float64, 4096)
	for i := range boundary {
		// Alternate the two sides of the window-33/34 boundary.
		boundary[i] = math.Ldexp(mant(), 13+i%2)
	}
	cases := map[string][]float64{
		"anchor-churn":    churn,
		"three-windows":   wide,
		"zeros-mid-run":   zeros,
		"denormals":       denorm,
		"scaled-top":      top,
		"window-boundary": boundary,
	}
	for name, xs := range cases {
		pinAllPaths(t, name, xs)
		// And a permutation of each, which must not change the bits.
		perm := rng.Perm(len(xs))
		shuf := make([]float64, len(xs))
		for i, p := range perm {
			shuf[i] = xs[p]
		}
		pinAllPaths(t, name+"-permuted", shuf)
	}
}

// TestPoisonMidRun injects NaN / Inf inside an eligible stream (the
// group kernel must stop, route the poison through the slow path, and
// resume) and checks IEEE semantics match the reference loop.
func TestPoisonMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	base := func() []float64 {
		xs := make([]float64, 40000)
		for i := range xs {
			m := 1 + rng.Float64()
			if rng.Intn(2) == 0 {
				m = -m
			}
			xs[i] = math.Ldexp(m, rng.Intn(17))
		}
		return xs
	}
	t.Run("nan", func(t *testing.T) {
		xs := base()
		xs[len(xs)/2] = math.NaN()
		var st, ref State
		st.AddSlice(xs)
		ref.AddSliceRef(xs)
		if !math.IsNaN(st.Finalize()) || !math.IsNaN(ref.Finalize()) {
			t.Fatal("NaN poison lost")
		}
	})
	t.Run("inf", func(t *testing.T) {
		xs := base()
		xs[len(xs)/2] = math.Inf(-1)
		pinAllPaths(t, "inf", xs)
		var st State
		st.AddSlice(xs)
		if got := st.Finalize(); !math.IsInf(got, -1) {
			t.Fatalf("got %g, want -Inf", got)
		}
	})
	t.Run("both-inf", func(t *testing.T) {
		xs := base()
		xs[100] = math.Inf(1)
		xs[len(xs)-100] = math.Inf(-1)
		var st, ref State
		st.AddSlice(xs)
		ref.AddSliceRef(xs)
		if !math.IsNaN(st.Finalize()) || !math.IsNaN(ref.Finalize()) {
			t.Fatal("Inf/-Inf must finalize NaN")
		}
	})
}

// TestGroupKernelContract checks the group kernels' consumption
// contract: multiples of their native width, stopping at the first
// group containing an ineligible element, quad layout intact.
func TestGroupKernelContract(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 1e300, 8, 9, 10}
	var consts [3]float64
	s := 33 // window of 1..10 (unbiased exponents 0..3)
	consts[0] = bigTab[s+pad]
	consts[1] = bigTab[s+pad-1]
	consts[2] = bigTab[s+pad-2]
	efLo := int64(BinWidth*s) - (BinWidth + 51)
	efSpan := int64(BinWidth*s-20) - efLo

	var q4 [16]float64
	if got := depositGroupsGo(xs, &consts, efLo, efSpan, &q4); got != 4 {
		t.Fatalf("Go4 consumed %d, want 4 (stop at group with 1e300)", got)
	}
	var q2 [16]float64
	if got := depositGroupsGo2(xs, &consts, efLo, efSpan, &q2); got != 6 {
		t.Fatalf("Go2 consumed %d, want 6 (stop at pair with 1e300)", got)
	}
	var qf [16]float64
	if got := depositGroupsFast(xs, &consts, efLo, efSpan, &qf); got != 4 {
		t.Fatalf("fast kernel consumed %d, want 4", got)
	}
	if qf != q4 {
		t.Fatal("fast kernel quad differs from portable quad")
	}
	// The quads represent the consumed prefixes exactly.
	sum4 := (q4[0] + q4[1] + q4[2] + q4[3]) + (q4[4] + q4[5] + q4[6] + q4[7]) +
		(q4[8] + q4[9] + q4[10] + q4[11]) + (q4[12] + q4[13] + q4[14] + q4[15])
	if sum4 != 1+2+3+4 {
		t.Fatalf("Go4 quad sums to %g, want 10", sum4)
	}
}
