package binned

import "fmt"

// StateSlots is the length of a State's bin array (66 bins spanning the
// float64 exponent range plus Folds-1 pad slots below bin 0), exported
// so serializers can carry the array without reflecting over private
// fields.
const StateSlots = numSlots

// MaxPend is the exclusive upper bound on a live State's pending-deposit
// counter: the fixed carry schedule renormalizes whenever pend reaches
// renormEvery, so every state observable through the public API holds
// pend in [0, MaxPend). Serializers use it to reject counters no real
// state can carry (which would void the exact-accumulation headroom
// bounds on subsequent deposits).
const MaxPend = renormEvery

// Snapshot is the complete serializable content of a State, with every
// field exported. It exists for the wire layer: Snapshot/Restore are
// the stable accessor pair, so external encodings never reflect over
// State's private fields and the package is free to keep its in-memory
// layout private.
//
// A restored state is field-for-field the state that was snapshotted —
// including the renormalization counter Pend, which is part of the
// exactness bookkeeping (it bounds how many more deposits may land
// before a carry pass must run), and the NaN/±Inf tallies, which carry
// IEEE semantics order-invariantly. Restore therefore resumes
// depositing and merging bitwise-identically to the never-serialized
// original.
type Snapshot struct {
	// Bins is the bin array: Bins[j+2] is the bin-j total, an exact
	// multiple of the bin's quantum (scaled by 2^-512 for bins >= 64).
	Bins [StateSlots]float64
	// Count is the number of operands absorbed.
	Count int64
	// Pend counts deposits since the last renormalization pass.
	Pend int64
	// PosInf and NegInf tally ±Inf operands; NaN records any NaN
	// operand.
	PosInf, NegInf int64
	NaN            bool
}

// Snapshot returns the complete state content. It does not modify st.
func (st *State) Snapshot() Snapshot {
	return Snapshot{
		Bins:   st.bins,
		Count:  st.count,
		Pend:   st.pend,
		PosInf: st.posInf,
		NegInf: st.negInf,
		NaN:    st.nan,
	}
}

// Validate checks the invariants every API-produced state satisfies:
// non-negative counters and a pending-deposit count inside the carry
// schedule's budget. A snapshot violating them cannot have come from
// Snapshot on a live state, and restoring it would void the exactness
// bounds (a forged Pend defers renormalization past the 2^53-quanta
// headroom), so Restore rejects it.
func (s *Snapshot) Validate() error {
	if s.Count < 0 {
		return fmt.Errorf("binned: negative operand count %d", s.Count)
	}
	if s.Pend < 0 || s.Pend >= MaxPend {
		return fmt.Errorf("binned: pending-deposit count %d outside [0, %d)", s.Pend, int64(MaxPend))
	}
	if s.PosInf < 0 || s.NegInf < 0 {
		return fmt.Errorf("binned: negative infinity tally %d/%d", s.PosInf, s.NegInf)
	}
	if s.PosInf+s.NegInf > s.Count {
		return fmt.Errorf("binned: infinity tallies %d exceed operand count %d", s.PosInf+s.NegInf, s.Count)
	}
	return nil
}

// Restore reconstructs the snapshotted State. The result is
// field-for-field the snapshotted state, so its subsequent deposits,
// merges, and Finalize are bitwise-identical to the original's. Invalid
// snapshots (see Validate) are rejected.
func Restore(s Snapshot) (State, error) {
	if err := s.Validate(); err != nil {
		return State{}, err
	}
	return State{
		bins:   s.Bins,
		count:  s.Count,
		pend:   s.Pend,
		posInf: s.PosInf,
		negInf: s.NegInf,
		nan:    s.NaN,
	}, nil
}
