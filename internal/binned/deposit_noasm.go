//go:build !amd64

package binned

// depositGroupsFast runs the widest group kernel this CPU supports:
// the portable four-sublane kernel on architectures without an
// assembly engine.
func depositGroupsFast(xs []float64, consts *[3]float64, efLo, efSpan int64, q *[16]float64) int64 {
	return depositGroupsGo(xs, consts, efLo, efSpan, q)
}
