// AVX2 group kernel for the two-level deposit path (see twolevel.go).

#include "textflag.h"

DATA efFieldMask<>+0(SB)/8, $0x00000000000007ff
GLOBL efFieldMask<>(SB), RODATA|NOPTR, $8

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func depositGroupsAVX2(xs []float64, consts *[3]float64, efLo, efSpan int64, q *[16]float64) int64
//
// Semantics are exactly depositGroupsGo's: consume groups of 4
// elements while every element's raw exponent field ef satisfies
// 0 <= ef-efLo <= efSpan, splitting each against the broadcast
// constants consts = {b0, b1, b2} with three Dekker round-to-multiple
// extractions and plain-adding the grades into the quad q (h=q[0:4],
// m=q[4:8], l=q[8:12], u=q[12:16], one ymm sublane per array slot).
// Returns the number of elements consumed (a multiple of 4), stopping
// at the first ineligible group or when fewer than 4 elements remain.
//
// Register plan: Y0 group, Y1-Y3 temps, Y5 zero, Y6-Y9 = h/m/l/u,
// Y10/Y11 = efLo/efSpan, Y12-Y14 = b0/b1/b2, Y15 = 0x7ff mask.
TEXT ·depositGroupsAVX2(SB), NOSPLIT, $0-64
	MOVQ xs_base+0(FP), SI
	MOVQ xs_len+8(FP), CX
	MOVQ consts+24(FP), BX
	MOVQ q+48(FP), DI
	VBROADCASTSD 0(BX), Y12
	VBROADCASTSD 8(BX), Y13
	VBROADCASTSD 16(BX), Y14
	VPBROADCASTQ efLo+32(FP), Y10
	VPBROADCASTQ efSpan+40(FP), Y11
	VMOVUPD 0(DI), Y6
	VMOVUPD 32(DI), Y7
	VMOVUPD 64(DI), Y8
	VMOVUPD 96(DI), Y9
	VPXOR Y5, Y5, Y5
	VPBROADCASTQ efFieldMask<>(SB), Y15
	XORQ DX, DX

loop:
	LEAQ 4(DX), AX
	CMPQ AX, CX
	JGT  done
	VMOVUPD (SI)(DX*8), Y0
	VPSRLQ $52, Y0, Y1
	VPAND Y15, Y1, Y1
	VPSUBQ Y10, Y1, Y1
	VPCMPGTQ Y11, Y1, Y2 // Y2 = (ef-efLo) > efSpan
	VPCMPGTQ Y1, Y5, Y3  // Y3 = 0 > (ef-efLo)
	VPOR Y3, Y2, Y2
	VPTEST Y2, Y2
	JNZ  done
	// c = (b0+x)-b0; x -= c; h += c
	VADDPD Y0, Y12, Y1
	VSUBPD Y12, Y1, Y1
	VSUBPD Y1, Y0, Y0
	VADDPD Y1, Y6, Y6
	// c = (b1+x)-b1; x -= c; m += c
	VADDPD Y0, Y13, Y1
	VSUBPD Y13, Y1, Y1
	VSUBPD Y1, Y0, Y0
	VADDPD Y1, Y7, Y7
	// c = (b2+x)-b2; x -= c; l += c; u += x
	VADDPD Y0, Y14, Y1
	VSUBPD Y14, Y1, Y1
	VSUBPD Y1, Y0, Y0
	VADDPD Y1, Y8, Y8
	VADDPD Y0, Y9, Y9
	ADDQ $4, DX
	JMP  loop

done:
	VMOVUPD Y6, 0(DI)
	VMOVUPD Y7, 32(DI)
	VMOVUPD Y8, 64(DI)
	VMOVUPD Y9, 96(DI)
	VZEROUPPER
	MOVQ DX, ret+56(FP)
	RET
