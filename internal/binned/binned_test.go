package binned

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/superacc"
)

// refRetained computes the exact sum of the retained values r(x) by
// chunking each operand independently (with big headroom via superacc)
// — the value the engine must represent exactly.
func refRetained(xs []float64) float64 {
	var sa superacc.Acc
	for _, x := range xs {
		ef := int(math.Float64bits(x) >> 52 & 0x7ff)
		if ef == 0x7ff {
			sa.Add(x)
			continue
		}
		j := (ef + 51) >> binShift
		if j >= hiBin {
			r := x * (0x1p-512)
			for f := 0; f < Folds; f++ {
				jj := j - f
				big := math.Ldexp(1.5, jj*BinWidth-1074-scaleSH+52)
				c := (big + r) - big
				r -= c
				sa.AddLdexp(c, scaleSH)
			}
			continue
		}
		r := x
		for f := 0; f < Folds; f++ {
			jj := j - f
			big := bigTab[jj+pad]
			c := (big + r) - big
			r -= c
			sa.Add(c)
		}
	}
	return sa.Float64()
}

func randSlice(rng *rand.Rand, n int, scale float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(60)-30) * scale
	}
	return xs
}

func TestSumMatchesRetainedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]float64{
		{},
		{0},
		{1, 2, 3},
		{1e300, -1e300, 1},
		{math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64},
		{math.MaxFloat64, -math.MaxFloat64, 1e-300},
		randSlice(rng, 1000, 1),
		randSlice(rng, 1000, 1e280),
		randSlice(rng, 1000, 1e-290),
		randSlice(rng, 10000, 1e150),
	}
	for i, xs := range cases {
		got := Sum(xs)
		want := refRetained(xs)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("case %d: Sum=%x want %x", i, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

func TestAccuracyNearExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		xs := randSlice(rng, 5000, 1)
		got := Sum(xs)
		exact := superacc.Sum(xs)
		// Retained 64 bits per operand: error <= ~n * 2^-65 * max|x|.
		bound := float64(len(xs)) * math.Ldexp(1, -64) * math.Ldexp(1, 30)
		if math.Abs(got-exact) > bound {
			t.Fatalf("trial %d: |%g - %g| > %g", trial, got, exact, bound)
		}
	}
}

func TestAddMatchesAddSliceAllLanes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := randSlice(rng, 4097, 1e100)
	xs[17] = 1e308  // top-of-range slow path
	xs[99] = -5e307 // hi-bin negative
	xs[512] = 0
	var ref State
	for _, x := range xs {
		ref.Add(x)
	}
	for _, k := range []int{1, 2, 4, 8} {
		var st State
		st.AddSliceLanes(xs, k)
		if k == 1 {
			// The reference scalar path performs the exact deposits of
			// element-wise Add in the same order: field-for-field equal.
			if st.bins != ref.bins {
				t.Fatalf("lane width 1: bins differ from element-wise Add")
			}
		}
		// Two-level widths may decompose the same represented value
		// differently across bins (anchored grids); the contract is the
		// represented value, i.e. the Finalize bits.
		if got, want := st.Finalize(), ref.Finalize(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("lane width %d: Finalize %x != %x", k, math.Float64bits(got), math.Float64bits(want))
		}
		if st.Count() != int64(len(xs)) {
			t.Fatalf("lane width %d: count %d != %d", k, st.Count(), len(xs))
		}
	}
	// The reference batch path (all widths) stays field-for-field equal
	// to element-wise Add.
	for _, k := range []int{1, 2, 4, 8} {
		var st State
		st.AddSliceRefLanes(xs, k)
		if st.bins != ref.bins {
			t.Fatalf("reference lane width %d: bins differ from element-wise Add", k)
		}
	}
}

func TestPermutationAndSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := randSlice(rng, 2000, 1e200)
	want := math.Float64bits(Sum(xs))
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(len(xs))
		shuf := make([]float64, len(xs))
		for i, p := range perm {
			shuf[i] = xs[p]
		}
		// Random split into 1..8 parts, each summed then merged in
		// random order.
		parts := 1 + rng.Intn(8)
		states := make([]*State, parts)
		for i := range states {
			states[i] = new(State)
		}
		for i, x := range shuf {
			states[i%parts].AddSliceLanes([]float64{x}, []int{1, 2, 4, 8}[rng.Intn(4)])
		}
		root := states[0]
		for _, o := range states[1:] {
			root.Merge(o)
		}
		if got := math.Float64bits(root.Finalize()); got != want {
			t.Fatalf("trial %d: merged bits %x != %x", trial, got, want)
		}
	}
}

func TestMergedStateEqualsSequentialBitwise(t *testing.T) {
	// Below the renormalization schedule no carry pass runs, so with
	// the reference path (whose chunk decomposition is per-element,
	// independent of batch boundaries) bin totals are plain exact sums
	// of chunk multiples — associative — and a merged state must equal
	// the sequential state field-for-field (bins; pend bookkeeping may
	// differ). The two-level default path re-decomposes against anchor
	// grids that depend on batch boundaries, so for it — as across the
	// schedule boundary, where carry timing differs between the two
	// histories — the invariant is the represented value: Finalize bits
	// must agree.
	rng := rand.New(rand.NewSource(7))
	xs := randSlice(rng, 50000, 1e120)
	var seqRef, seqSt State
	seqRef.AddSliceRef(xs)
	seqSt.AddSlice(xs)
	if got, want := seqSt.Finalize(), seqRef.Finalize(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("two-level Finalize %x != reference %x", math.Float64bits(got), math.Float64bits(want))
	}
	for trial := 0; trial < 10; trial++ {
		cut := 1 + rng.Intn(len(xs)-1)
		var ra, rb State
		ra.AddSliceRef(xs[:cut])
		rb.AddSliceRef(xs[cut:])
		ra.Merge(&rb)
		if ra.bins != seqRef.bins {
			t.Fatalf("trial %d (cut %d): merged reference bins differ from sequential", trial, cut)
		}
		var a, b State
		a.AddSlice(xs[:cut])
		b.AddSlice(xs[cut:])
		a.Merge(&b)
		if got, want := a.Finalize(), seqSt.Finalize(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("trial %d: merged Finalize %x != sequential %x",
				trial, math.Float64bits(got), math.Float64bits(want))
		}
	}
	// Across the renorm schedule: finalize bits must agree even though
	// carry timing differs.
	big := make([]float64, 0, renormEvery+4096)
	for len(big) < renormEvery+4096 {
		big = append(big, math.Ldexp(rng.Float64()-0.5, rng.Intn(40)))
	}
	var whole State
	whole.AddSlice(big)
	cut := renormEvery - 1000 // second half crosses the schedule mid-merge
	var a, b State
	a.AddSlice(big[:cut])
	b.AddSlice(big[cut:])
	a.Merge(&b)
	if got, want := a.Finalize(), whole.Finalize(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("cross-schedule merge: %x != %x", math.Float64bits(got), math.Float64bits(want))
	}
}

func TestRenormCapacityStress(t *testing.T) {
	// Many more deposits than renormEvery, same magnitude, alternating
	// signs plus a drift term: exercises scheduled renorm and carries.
	n := 3 * renormEvery / 2
	xs := make([]float64, 0, 8)
	var st State
	chunk := make([]float64, 4096)
	total := 0
	rng := rand.New(rand.NewSource(5))
	for total < n {
		for i := range chunk {
			chunk[i] = math.Ldexp(rng.Float64()-0.25, 40)
		}
		st.AddSlice(chunk)
		total += len(chunk)
	}
	_ = xs
	got := st.Finalize()
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("stress sum is non-finite: %g", got)
	}
	if st.Count() != int64(total) {
		t.Fatalf("count %d != %d", st.Count(), total)
	}
}

func TestSpecials(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, inf, 2}, inf},
		{[]float64{1, -inf, 2}, -inf},
		{[]float64{inf, -inf}, nan},
		{[]float64{nan, 1}, nan},
		{[]float64{inf, nan, -inf}, nan},
		{[]float64{math.MaxFloat64, math.MaxFloat64}, inf},     // overflowed finite sum
		{[]float64{-math.MaxFloat64, -math.MaxFloat64}, -inf},  // negative overflow
		{[]float64{math.MaxFloat64, -math.MaxFloat64, 2.5}, 2.5},
	}
	for i, c := range cases {
		got := Sum(c.xs)
		if math.IsNaN(c.want) {
			if !math.IsNaN(got) {
				t.Fatalf("case %d: got %g want NaN", i, got)
			}
			continue
		}
		if got != c.want {
			t.Fatalf("case %d: got %g want %g", i, got, c.want)
		}
	}
}

func TestAllocsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := randSlice(rng, 8192, 1)
	var st State
	allocs := testing.AllocsPerRun(10, func() {
		st.Reset()
		st.AddSlice(xs)
		_ = st.Finalize()
	})
	if allocs != 0 {
		t.Fatalf("AddSlice+Finalize allocates %v per run, want 0", allocs)
	}
}
