package binned

import (
	"math"
	"testing"
)

// adversarialOperands is a deposit stream exercising every state
// component: denormals, -0, huge top-window values, sign mixes, and
// enough bulk to cross carry-pass boundaries when repeated.
func adversarialOperands() []float64 {
	return []float64{
		1, -1.5, 0x1p-1074, -0x1p-1050, 0.0, math.Copysign(0, -1),
		0x1.fffffffffffffp1023, -0x1p990, 3.14e-200, -2.71e200,
		0x1p-500, -0x1p-500, 1e16, -1e-16, 0x1.23456789abcdep42,
	}
}

// compareStates asserts two states are field-for-field identical at the
// bit level.
func compareStates(t *testing.T, label string, a, b *State) {
	t.Helper()
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := range sa.Bins {
		if math.Float64bits(sa.Bins[i]) != math.Float64bits(sb.Bins[i]) {
			t.Fatalf("%s: bin slot %d differs: %x vs %x",
				label, i, math.Float64bits(sa.Bins[i]), math.Float64bits(sb.Bins[i]))
		}
	}
	if sa.Count != sb.Count || sa.Pend != sb.Pend ||
		sa.PosInf != sb.PosInf || sa.NegInf != sb.NegInf || sa.NaN != sb.NaN {
		t.Fatalf("%s: counters differ: %+v vs %+v", label,
			struct{ C, P, PI, NI int64 }{sa.Count, sa.Pend, sa.PosInf, sa.NegInf},
			struct{ C, P, PI, NI int64 }{sb.Count, sb.Pend, sb.PosInf, sb.NegInf})
	}
	if math.Float64bits(a.Finalize()) != math.Float64bits(b.Finalize()) {
		t.Fatalf("%s: Finalize bits differ: %x vs %x",
			label, math.Float64bits(a.Finalize()), math.Float64bits(b.Finalize()))
	}
}

// TestSnapshotRestoreTwin pins the satellite contract: a state
// round-tripped through Snapshot/Restore continues depositing and
// merging bitwise-identically to the never-serialized twin — including
// across renormalization boundaries, where the Pend counter (not just
// the bins) determines the carry-pass timing.
func TestSnapshotRestoreTwin(t *testing.T) {
	ops := adversarialOperands()
	var twin State
	for i := 0; i < 1000; i++ {
		twin.Add(ops[i%len(ops)])
	}
	// Park the twin 10 deposits below a renorm boundary so the restored
	// copy must reproduce the carry-pass timing exactly.
	fill := make([]float64, MaxPend-int(twin.Snapshot().Pend)-10)
	for i := range fill {
		fill[i] = float64(i%97) * 0x1p-30
	}
	twin.AddSlice(fill)
	if got := twin.Snapshot().Pend; got != MaxPend-10 {
		t.Fatalf("parking failed: pend %d, want %d", got, MaxPend-10)
	}

	restored, err := Restore(twin.Snapshot())
	if err != nil {
		t.Fatalf("Restore rejected a live snapshot: %v", err)
	}
	compareStates(t, "immediately after restore", &twin, &restored)

	// Deposit across the renorm boundary on both, one element at a time.
	for i := 0; i < 25; i++ {
		x := float64(i+1) * 0x1p-20
		twin.Add(x)
		restored.Add(x)
	}
	compareStates(t, "after crossing a renorm boundary", &twin, &restored)
	filler := fill[:1111]

	// Element-wise deposits and specials.
	for _, x := range adversarialOperands() {
		twin.Add(x)
		restored.Add(x)
	}
	compareStates(t, "after special deposits", &twin, &restored)

	// Merge each against a common other state.
	var other State
	other.AddSlice(filler)
	other.Add(math.Inf(1))
	twin.Merge(&other)
	restored.Merge(&other)
	compareStates(t, "after merge", &twin, &restored)

	// NaN poison propagates identically.
	twin.Add(math.NaN())
	restored.Add(math.NaN())
	sa, sb := twin.Snapshot(), restored.Snapshot()
	if !sa.NaN || !sb.NaN {
		t.Fatal("NaN deposit did not poison both twins")
	}
}

// TestRestoreRejectsInvalid pins the validation envelope: counters no
// live state can hold are rejected rather than silently voiding the
// exactness bounds.
func TestRestoreRejectsInvalid(t *testing.T) {
	var st State
	st.Add(1)
	good := st.Snapshot()
	if _, err := Restore(good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"negative count", func(s *Snapshot) { s.Count = -1 }},
		{"negative pend", func(s *Snapshot) { s.Pend = -5 }},
		{"pend at schedule bound", func(s *Snapshot) { s.Pend = MaxPend }},
		{"pend beyond schedule", func(s *Snapshot) { s.Pend = MaxPend + 7 }},
		{"negative posInf", func(s *Snapshot) { s.PosInf = -1 }},
		{"negative negInf", func(s *Snapshot) { s.NegInf = -2 }},
		{"inf tallies exceed count", func(s *Snapshot) { s.PosInf = s.Count + 1 }},
	}
	for _, tc := range cases {
		s := good
		tc.mut(&s)
		if _, err := Restore(s); err == nil {
			t.Errorf("%s: Restore accepted an invalid snapshot", tc.name)
		}
	}
}
