package binned

import (
	"math"
	"math/rand"
	"testing"
)

// TestEngineBitEquality runs the same slices through the assembly and
// portable engines and requires field-for-field identical states: the
// two kernels perform the same exact operations in the same order, so
// even the in-memory bin decomposition must match, not just Finalize.
func TestEngineBitEquality(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this host")
	}
	defer func() { useAVX2 = true }()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(20000)
		xs := make([]float64, n)
		for i := range xs {
			m := 1 + rng.Float64()
			if rng.Intn(2) == 0 {
				m = -m
			}
			e := rng.Intn(120) - 60
			if trial%3 == 0 {
				e = rng.Intn(17) // single two-window regime
			}
			xs[i] = math.Ldexp(m, e)
		}
		useAVX2 = true
		var asm State
		asm.AddSlice(xs)
		useAVX2 = false
		var gost State
		gost.AddSlice(xs)
		if asm != gost {
			t.Fatalf("trial %d n=%d: AVX2 and portable states differ", trial, n)
		}
	}
}

// TestCPUFeatureDetect sanity-checks the CPUID dance: it must not
// report AVX2 on a CPU without OSXSAVE-managed YMM state, and the
// probe itself must be callable.
func TestCPUFeatureDetect(t *testing.T) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID == 0 {
		t.Fatal("CPUID leaf 0 returned max leaf 0")
	}
	_ = hasAVX2() // must not fault regardless of features
}
