package sum

import (
	"repro/internal/fpu"
	"repro/internal/kernel"
)

// Neumaier computes Neumaier's improved compensated sum: like Kahan,
// but the compensation step branches on operand magnitude so the error
// is captured exactly even when the addend dominates the running sum,
// and the correction is added once at the end.
func Neumaier(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		t := s + x
		if abs(s) >= abs(x) {
			c += (s - t) + x
		} else {
			c += (x - t) + s
		}
		s = t
	}
	return s + c
}

// NeumaierAcc is the streaming form of Neumaier summation.
type NeumaierAcc struct{ s, c float64 }

// Add folds x into the running sum.
func (a *NeumaierAcc) Add(x float64) {
	t := a.s + x
	if abs(a.s) >= abs(x) {
		a.c += (a.s - t) + x
	} else {
		a.c += (x - t) + a.s
	}
	a.s = t
}

// Sum returns the current sum with the correction applied.
func (a *NeumaierAcc) Sum() float64 { return a.s + a.c }

// Reset restores the accumulator to zero.
func (a *NeumaierAcc) Reset() { *a = NeumaierAcc{} }

// State exposes the (sum, correction) pair for tree merging. The
// branched correction of Add captures the same exact residual as the
// branch-free TwoSum in Merge, so streaming accumulation is
// bitwise-identical to folding the same values through NeumaierMonoid.
func (a *NeumaierAcc) State() NState { return NState{S: a.s, C: a.c} }

// NState is the partial state of the Neumaier tree operator.
type NState struct{ S, C float64 }

// NeumaierMonoid is the mergeable tree form: partial sums combine with
// an exact TwoSum, and corrections accumulate in plain arithmetic.
type NeumaierMonoid struct{}

// Leaf lifts an operand.
func (NeumaierMonoid) Leaf(x float64) NState { return NState{S: x} }

// Merge combines two partial states.
func (NeumaierMonoid) Merge(a, b NState) NState {
	s, e := fpu.TwoSum(a.S, b.S)
	return NState{S: s, C: a.C + b.C + e}
}

// Finalize applies the accumulated correction once, at the root.
func (NeumaierMonoid) Finalize(s NState) float64 { return s.S + s.C }

// FoldSlice implements reduce.SliceFolder: the devirtualized batch loop,
// bit-identical to the reference left-to-right fold (and to streaming
// NeumaierAcc accumulation).
func (NeumaierMonoid) FoldSlice(xs []float64) NState {
	s, c := kernel.Neumaier(xs)
	return NState{S: s, C: c}
}
