package sum

import "sort"

// Standard computes the naive left-to-right iterative sum (ST).
func Standard(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Pairwise computes the sum with a recursive balanced split, falling
// back to the iterative loop below blockSize (the usual cache-friendly
// pairwise summation).
func Pairwise(xs []float64) float64 {
	const blockSize = 64
	n := len(xs)
	if n <= blockSize {
		return Standard(xs)
	}
	half := n / 2
	return Pairwise(xs[:half]) + Pairwise(xs[half:])
}

// SortedAscending sums |x|-ascending — the "conventional wisdom" order
// for same-sign data (Section III-A of the paper). The input is not
// modified.
func SortedAscending(xs []float64) float64 {
	return sortedSum(xs, func(a, b float64) bool { return abs(a) < abs(b) })
}

// SortedDescending sums |x|-descending — the conventional order for
// mixed-sign data. The input is not modified.
func SortedDescending(xs []float64) float64 {
	return sortedSum(xs, func(a, b float64) bool { return abs(a) > abs(b) })
}

func sortedSum(xs []float64, less func(a, b float64) bool) float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Slice(cp, func(i, j int) bool { return less(cp[i], cp[j]) })
	return Standard(cp)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// StandardAcc is the streaming form of ST.
type StandardAcc struct{ s float64 }

// Add folds x into the running sum.
func (a *StandardAcc) Add(x float64) { a.s += x }

// Sum returns the current sum.
func (a *StandardAcc) Sum() float64 { return a.s }

// Reset restores the accumulator to zero.
func (a *StandardAcc) Reset() { a.s = 0 }

// STMonoid is the mergeable tree form of ST: partial state is the bare
// partial sum.
type STMonoid struct{}

// Leaf lifts an operand.
func (STMonoid) Leaf(x float64) float64 { return x }

// Merge adds two partial sums (one floating-point add per tree node).
func (STMonoid) Merge(a, b float64) float64 { return a + b }

// Finalize returns the root sum.
func (STMonoid) Finalize(s float64) float64 { return s }
