package sum

import (
	"slices"

	"repro/internal/kernel"
)

// Standard computes the naive left-to-right iterative sum (ST).
func Standard(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// PairwiseBlock is Pairwise's serial base-case width (exported for the
// selector's chain-shape error estimators).
const PairwiseBlock = 64

// Pairwise computes the sum with a recursive balanced split, falling
// back to the iterative loop below PairwiseBlock (the usual
// cache-friendly pairwise summation).
func Pairwise(xs []float64) float64 {
	n := len(xs)
	if n <= PairwiseBlock {
		return Standard(xs)
	}
	half := n / 2
	return Pairwise(xs[:half]) + Pairwise(xs[half:])
}

// PairwiseChainHeight returns the longest floating-point accumulation
// chain of Pairwise(n values) — up to PairwiseBlock-1 additions in a
// serial base block plus one per recursion level above it. Error-bound
// estimators must use this height, not the ideal ⌈log2 n⌉ of
// element-level pairwise summation: the blocked base case makes the
// real chain markedly longer (69 at n = 4096, vs 12 ideal).
//
// The walk is exact: the floor/ceil splits mean node sizes at any
// depth take at most two consecutive values [lo, hi], every splitting
// node produces both a floor and a ceil child, and a node terminates
// (serial chain size-1) once its size fits the base block. O(log n),
// no allocation (the estimators run on the fused serving fast path).
func PairwiseChainHeight(n int) int {
	if n <= 1 {
		return 0
	}
	best := 0
	lo, hi := n, n
	for depth := 0; ; depth++ {
		if lo <= PairwiseBlock {
			t := lo
			if hi <= PairwiseBlock {
				t = hi
			}
			if h := depth + t - 1; h > best {
				best = h
			}
			if hi <= PairwiseBlock {
				return best
			}
			// Only the hi-sized nodes split further.
			lo, hi = hi/2, hi-hi/2
		} else {
			lo, hi = lo/2, hi-hi/2
		}
	}
}

// SortedAscending sums |x|-ascending — the "conventional wisdom" order
// for same-sign data (Section III-A of the paper). The input is not
// modified.
func SortedAscending(xs []float64) float64 {
	return sortedSum(xs, nil, false)
}

// SortedDescending sums |x|-descending — the conventional order for
// mixed-sign data. The input is not modified.
func SortedDescending(xs []float64) float64 {
	return sortedSum(xs, nil, true)
}

// SortedAscendingBuf is SortedAscending with a caller-provided scratch
// buffer: when cap(scratch) >= len(xs) the sort works in scratch and the
// call does not allocate, so repeated profiling passes can reuse one
// buffer. The input is not modified.
func SortedAscendingBuf(xs, scratch []float64) float64 {
	return sortedSum(xs, scratch, false)
}

// SortedDescendingBuf is SortedDescending with a caller-provided scratch
// buffer (see SortedAscendingBuf).
func SortedDescendingBuf(xs, scratch []float64) float64 {
	return sortedSum(xs, scratch, true)
}

// sortedSum copies xs (into scratch when it is large enough), sorts the
// copy by |x| with slices.SortFunc — a concrete-typed sort, unlike the
// reflection-based sort.Slice with a closure per comparison it replaces
// — and sums left-to-right.
func sortedSum(xs, scratch []float64, desc bool) float64 {
	var cp []float64
	if cap(scratch) >= len(xs) {
		cp = scratch[:len(xs)]
	} else {
		cp = make([]float64, len(xs))
	}
	copy(cp, xs)
	if desc {
		slices.SortFunc(cp, func(a, b float64) int { return cmpAbs(b, a) })
	} else {
		slices.SortFunc(cp, cmpAbs)
	}
	return Standard(cp)
}

// cmpAbs orders by |a| vs |b| (NaN compares equal to everything, as the
// old sort.Slice comparator had it).
func cmpAbs(a, b float64) int {
	aa, ab := abs(a), abs(b)
	switch {
	case aa < ab:
		return -1
	case aa > ab:
		return 1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// StandardAcc is the streaming form of ST.
type StandardAcc struct{ s float64 }

// Add folds x into the running sum.
func (a *StandardAcc) Add(x float64) { a.s += x }

// Sum returns the current sum.
func (a *StandardAcc) Sum() float64 { return a.s }

// Reset restores the accumulator to zero.
func (a *StandardAcc) Reset() { a.s = 0 }

// STMonoid is the mergeable tree form of ST: partial state is the bare
// partial sum.
type STMonoid struct{}

// Leaf lifts an operand.
func (STMonoid) Leaf(x float64) float64 { return x }

// Merge adds two partial sums (one floating-point add per tree node).
func (STMonoid) Merge(a, b float64) float64 { return a + b }

// Finalize returns the root sum.
func (STMonoid) Finalize(s float64) float64 { return s }

// FoldSlice implements reduce.SliceFolder: the devirtualized batch loop,
// bit-identical to the reference left-to-right fold.
func (STMonoid) FoldSlice(xs []float64) float64 { return kernel.ST(xs) }
