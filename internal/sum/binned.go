package sum

import (
	"repro/internal/binned"
	"repro/internal/reduce"
)

// This file adapts internal/binned — the single-pass binned (indexed)
// reproducible engine, the ladder's fast-reproducible middle rung — to
// the sum package's three algorithm forms (one-shot, streaming
// Accumulator, mergeable Monoid). The numerical machinery and the
// order-invariance argument live in the binned package.

// Binned computes the one-shot binned reproducible sum of xs: bitwise
// identical for every permutation, chunking, and reduction tree over
// the same operands, at a small constant factor over Standard.
func Binned(xs []float64) float64 { return binned.Sum(xs) }

// BinnedAcc is the streaming accumulator form of the binned engine.
// The zero value is ready to use.
type BinnedAcc struct {
	st binned.State
}

// Add folds one value into the accumulator.
func (a *BinnedAcc) Add(x float64) { a.st.Add(x) }

// AddSlice folds a whole slice with the batch kernel (bit-identical to
// element-wise Add, with the carry bookkeeping hoisted per batch).
func (a *BinnedAcc) AddSlice(xs []float64) { a.st.AddSlice(xs) }

// Sum rounds the current state to float64. It does not modify the
// accumulator; more values may be added afterwards.
func (a *BinnedAcc) Sum() float64 { return a.st.Finalize() }

// Reset restores the accumulator to zero.
func (a *BinnedAcc) Reset() { a.st.Reset() }

// State returns the current mergeable partial state.
func (a *BinnedAcc) State() binned.State { return a.st }

// BNMonoid is the mergeable reduction operator of the binned engine.
// Partial states combine exactly in any tree shape; FoldSlice runs the
// batch kernel and is bit-identical to the generic leaf/merge fold.
type BNMonoid struct{}

// Leaf lifts one operand into a partial state.
func (BNMonoid) Leaf(x float64) binned.State {
	var st binned.State
	st.Add(x)
	return st
}

// Merge combines two partial states, exactly.
func (BNMonoid) Merge(a, b binned.State) binned.State {
	a.Merge(&b)
	return a
}

// Finalize rounds a partial state to float64.
func (BNMonoid) Finalize(st binned.State) float64 { return st.Finalize() }

// FoldSlice implements reduce.SliceFolder with the batch deposit
// kernel.
func (BNMonoid) FoldSlice(xs []float64) binned.State {
	var st binned.State
	st.AddSlice(xs)
	return st
}

var _ reduce.SliceFolder[binned.State] = BNMonoid{}
