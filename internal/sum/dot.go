package sum

import (
	"repro/internal/dd"
	"repro/internal/fpu"
	"repro/internal/superacc"
)

// Dot products — the other reduction the paper's framing covers (its
// PR operator comes from ReproBLAS, whose headline kernel is the dot
// product). Each variant mirrors the corresponding summation algorithm;
// the reproducible variants split every product exactly with TwoProd
// (a*b = p + e with both parts representable) and feed the parts to the
// order-insensitive accumulator, so nondeterministic reduction of the
// partial dot products cannot change the result.

// DotStandard is the naive dot product (ST).
func DotStandard(a, b []float64) float64 {
	checkDotLen(a, b)
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// DotKahan compensates the product accumulation Kahan-style (K).
func DotKahan(a, b []float64) float64 {
	checkDotLen(a, b)
	var s, c float64
	for i, x := range a {
		y := x*b[i] - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// DotComposite accumulates exact products in composite precision (CP):
// each product is split with TwoProd and both parts enter the
// double-double accumulator.
func DotComposite(a, b []float64) float64 {
	checkDotLen(a, b)
	acc := dd.Zero
	for i, x := range a {
		p, e := fpu.TwoProd(x, b[i])
		acc = acc.AddFloat64(p)
		acc = acc.AddFloat64(e)
	}
	return acc.Float64()
}

// DotPrerounded computes a bitwise-reproducible dot product (PR): exact
// product splits deposited into the binned accumulator.
func DotPrerounded(a, b []float64) float64 {
	return DotPreroundedWith(DefaultPRConfig(), a, b)
}

// DotPreroundedWith is DotPrerounded with an explicit configuration.
// Each element contributes two deposits (product head and tail), so the
// effective capacity is half the configuration's.
func DotPreroundedWith(cfg PRConfig, a, b []float64) float64 {
	checkDotLen(a, b)
	acc := NewPreroundedAcc(cfg)
	for i, x := range a {
		p, e := fpu.TwoProd(x, b[i])
		acc.Add(p)
		acc.Add(e)
	}
	return acc.Sum()
}

// DotBinned computes a bitwise-reproducible dot product on the binned
// rung (BN): exact product splits deposited into the binned
// accumulator. Each element contributes two deposits (product head and
// tail); capacity is unbounded thanks to the scheduled renormalization.
func DotBinned(a, b []float64) float64 {
	checkDotLen(a, b)
	var acc BinnedAcc
	for i, x := range a {
		p, e := fpu.TwoProd(x, b[i])
		acc.Add(p)
		acc.Add(e)
	}
	return acc.Sum()
}

// DotExact returns the exact, correctly rounded dot product via the
// superaccumulator (the validation oracle).
func DotExact(a, b []float64) float64 {
	checkDotLen(a, b)
	var acc superacc.Acc
	for i, x := range a {
		p, e := fpu.TwoProd(x, b[i])
		acc.Add(p)
		acc.Add(e)
	}
	return acc.Float64()
}

// Dot computes the dot product with the named algorithm.
func Dot(alg Algorithm, a, b []float64) float64 {
	switch alg {
	case StandardAlg, PairwiseAlg:
		return DotStandard(a, b)
	case KahanAlg, NeumaierAlg:
		return DotKahan(a, b)
	case CompositeAlg:
		return DotComposite(a, b)
	case PreroundedAlg:
		return DotPrerounded(a, b)
	case BinnedAlg:
		return DotBinned(a, b)
	}
	panic("sum: invalid algorithm " + alg.String())
}

func checkDotLen(a, b []float64) {
	if len(a) != len(b) {
		panic("sum: dot product length mismatch")
	}
}
