package sum

import (
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/superacc"
)

// Differential testing: every algorithm against the exact oracle across
// adversarial data families, with per-algorithm error budgets derived
// from their published bounds (Higham). A failure here is a real
// implementation bug, not statistical noise — the budgets carry
// generous constants.

type family struct {
	name string
	gen  func(n int, seed uint64) []float64
}

var families = []family{
	{"uniform", func(n int, seed uint64) []float64 {
		r := fpu.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*2 - 1
		}
		return xs
	}},
	{"wide-range-mixed", func(n int, seed uint64) []float64 {
		r := fpu.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			v := math.Ldexp(r.Float64()+0.5, r.Intn(64)-32)
			if r.Bool() {
				v = -v
			}
			xs[i] = v
		}
		return xs
	}},
	{"exact-cancel-pairs", func(n int, seed uint64) []float64 {
		r := fpu.NewRNG(seed)
		xs := make([]float64, 0, n)
		for len(xs)+2 <= n {
			v := math.Ldexp(r.Float64()+0.5, r.Intn(40)-20)
			xs = append(xs, v, -v)
		}
		for len(xs) < n {
			xs = append(xs, 0)
		}
		r.Shuffle(xs)
		return xs
	}},
	{"pow2-ladder", func(n int, seed uint64) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(1, i%50-25)
		}
		return xs
	}},
	{"duplicates", func(n int, seed uint64) []float64 {
		r := fpu.NewRNG(seed)
		vals := []float64{0.1, -0.3, 1e10, -1e10, 7, 0x1p-30}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = vals[r.Intn(len(vals))]
		}
		return xs
	}},
	{"subnormal-heavy", func(n int, seed uint64) []float64 {
		r := fpu.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			v := math.Ldexp(r.Float64()+0.5, -1040-r.Intn(30))
			if r.Bool() {
				v = -v
			}
			xs[i] = v
		}
		return xs
	}},
	{"huge-plus-dust", func(n int, seed uint64) []float64 {
		r := fpu.NewRNG(seed)
		xs := make([]float64, n)
		xs[0] = 0x1p400
		xs[1] = -0x1p400
		for i := 2; i < n; i++ {
			xs[i] = r.Float64()*2 - 1
		}
		r.Shuffle(xs)
		return xs
	}},
}

func TestDifferentialAllAlgorithmsAllFamilies(t *testing.T) {
	u := fpu.UnitRoundoff
	for _, fam := range families {
		for _, n := range []int{3, 17, 256, 4097} {
			for seed := uint64(0); seed < 3; seed++ {
				xs := fam.gen(n, seed)
				// The huge-plus-dust family exceeds the 256-bit
				// big.Float oracle's range (see bigref.Prec docs); use
				// the exact superaccumulator oracle throughout.
				var oracle superacc.Acc
				oracle.AddSlice(xs)
				ref := oracle.BigFloat(2200)
				exact := oracle.Float64()
				var sumAbs float64
				for _, x := range xs {
					sumAbs += math.Abs(x)
				}
				nn := float64(n)
				maxAbs := 0.0
				for _, x := range xs {
					if a := math.Abs(x); a > maxAbs {
						maxAbs = a
					}
				}
				budget := map[Algorithm]float64{
					StandardAlg:   2 * nn * u * sumAbs,
					PairwiseAlg:   2 * nn * u * sumAbs,
					KahanAlg:      4*u*sumAbs + 8*nn*nn*u*u*sumAbs,
					NeumaierAlg:   4*u*sumAbs + 8*nn*nn*u*u*sumAbs,
					CompositeAlg:  2*u*math.Abs(exact) + 16*nn*u*u*sumAbs,
					PreroundedAlg: 4 * nn * maxAbs * 0x1p-77, // 3 folds below top + slack
				}
				for alg, bud := range budget {
					got := alg.Sum(xs)
					err := bigref.Err(got, ref)
					// Allow the representability floor.
					floor := math.Abs(exact) * u * 2
					if err > bud+floor {
						t.Errorf("%s n=%d seed=%d: %v error %g exceeds budget %g",
							fam.name, n, seed, alg, err, bud+floor)
					}
				}
				// Expansion summation must be exactly the rounded sum.
				if got := Expansion(xs); got != exact {
					t.Errorf("%s n=%d seed=%d: expansion %g != exact %g",
						fam.name, n, seed, got, exact)
				}
			}
		}
	}
}

func TestDifferentialReproducibleUnderPermutation(t *testing.T) {
	r := fpu.NewRNG(77)
	for _, fam := range families {
		xs := fam.gen(513, 9)
		wantPR := Prerounded(xs)
		wantExp := Expansion(xs)
		wantTP := PreroundedTwoPass(xs, 3)
		for trial := 0; trial < 5; trial++ {
			r.Shuffle(xs)
			if got := Prerounded(xs); got != wantPR {
				t.Errorf("%s: PR order-dependent", fam.name)
			}
			if got := Expansion(xs); got != wantExp {
				t.Errorf("%s: expansion order-dependent", fam.name)
			}
			if got := PreroundedTwoPass(xs, 3); got != wantTP {
				t.Errorf("%s: two-pass order-dependent", fam.name)
			}
		}
	}
}
