package sum_test

import (
	"fmt"

	"repro/internal/sum"
)

// The four paper algorithms on the classic absorption example.
func Example() {
	xs := []float64{1e16, 1, -1e16}
	fmt.Println("ST:", sum.Standard(xs))
	fmt.Println("K: ", sum.Kahan(xs))
	fmt.Println("CP:", sum.Composite(xs))
	fmt.Println("PR:", sum.Prerounded(xs))
	// Output:
	// ST: 0
	// K:  0
	// CP: 1
	// PR: 1
}

// Streaming accumulation is the local phase of a distributed reduction.
func ExampleAccumulator() {
	acc := sum.CompositeAlg.NewAccumulator()
	for i := 0; i < 10; i++ {
		acc.Add(0.1)
	}
	fmt.Printf("%.17g\n", acc.Sum())
	// Output: 1
}

// Tree-mergeable states let an algorithm run under any reduction tree;
// the prerounded monoid's merge is exactly associative.
func ExamplePRMonoid() {
	m := sum.DefaultPRConfig().Monoid()
	a := m.Merge(m.Leaf(1e16), m.Leaf(1))
	b := m.Leaf(-1e16)
	left := m.Finalize(m.Merge(a, b))
	right := m.Finalize(m.Merge(m.Leaf(1e16), m.Merge(m.Leaf(1), b)))
	fmt.Println(left, right, left == right)
	// Output: 1 1 true
}

// Fold and Pairwise realize the two extreme tree shapes of Fig 1.
func ExampleAlgorithm_Op() {
	op := sum.KahanAlg.Op()
	st := op.Leaf(0.5)
	st = op.Merge(st, op.Leaf(0.25))
	st = op.Merge(st, op.Leaf(0.25))
	fmt.Println(op.Finalize(st))
	// Output: 1
}

// Dot products inherit their summation algorithm's guarantees.
func ExampleDot() {
	a := []float64{0x1p30, 0x1p30, 2}
	b := []float64{0x1p30, -0x1p30, 0.5}
	fmt.Println(sum.Dot(sum.PreroundedAlg, a, b))
	// Output: 1
}
