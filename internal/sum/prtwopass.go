package sum

import (
	"math"

	"repro/internal/fpu"
)

// PreroundedTwoPass computes a reproducible sum with the two-pass
// pre-rounding scheme of Demmel & Hida: pass one finds the maximum
// magnitude M (an exact, order-independent reduction); pass two rounds
// every operand to a quantum derived from M and n so that the high
// parts sum exactly, then recurses on the residuals for `folds` rounds.
//
// The result is bitwise identical for every permutation of xs (the
// boundaries depend only on the multiset of values), at the cost of an
// extra pass over the data compared to the one-pass binned form. Kept
// as an ablation point against PreroundedWith.
func PreroundedTwoPass(xs []float64, folds int) float64 {
	if folds < 1 {
		folds = 1
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := 0.0
	for _, x := range xs {
		if a := abs(x); a > m {
			m = a
		}
	}
	if m == 0 {
		return 0
	}
	if math.IsInf(m, 0) || m != m {
		return math.NaN()
	}
	// k = ceil(log2(n+1)): headroom bits so n quanta-multiples sum exactly.
	k := 0
	for c := n; c > 0; c >>= 1 {
		k++
	}
	res := make([]float64, n)
	copy(res, xs)
	q := fpu.Exponent(m) + 1 + k - 52
	partials := make([]float64, 0, folds)
	for round := 0; round < folds; round++ {
		if q < -1074 {
			// The quantum is below the subnormal grid: residuals are
			// exactly representable, one final exact pass suffices.
			q = -1074
		}
		s := 0.0
		for i, r := range res {
			hi, lo := roundToMultipleSafe(r, q)
			s += hi // exact: multiples of 2^q within 2^53*2^q
			res[i] = lo
		}
		partials = append(partials, s)
		if q == -1074 {
			break
		}
		// Residuals are bounded by 2^(q-1); derive the next quantum.
		q = q + k - 52
	}
	// Fold the per-round partials lowest-first with exact compensation;
	// the order is fixed so the result stays deterministic.
	var s, comp float64
	for i := len(partials) - 1; i >= 0; i-- {
		t, e := fpu.TwoSum(s, partials[i])
		s = t
		comp += e
	}
	return s + comp
}
