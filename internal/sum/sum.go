// Package sum implements the four summation algorithms studied in the
// paper — standard iterative (ST), Kahan compensated (K), composite
// precision (CP), and prerounded/binned (PR) — plus the Neumaier and
// pairwise variants used for ablations.
//
// Each algorithm is available in three forms:
//
//   - one-shot: Standard(xs), Kahan(xs), ... — sum a slice directly;
//   - streaming: an Accumulator fed one value at a time (the "local sum"
//     phase of a distributed reduction);
//   - mergeable: a reduce.Monoid whose partial states can be combined at
//     the internal nodes of an arbitrary reduction tree (the "global
//     reduce" phase, where nondeterministic tree shape bites).
//
// The Algorithm enum is the runtime-selectable registry the intelligent
// selector draws from; CostRank orders algorithms by expense, matching
// the paper's ST < K < CP < PR ladder (Figs 4–5).
package sum

import (
	"fmt"

	"repro/internal/binned"
	"repro/internal/reduce"
)

// Algorithm identifies a summation algorithm in the runtime registry.
type Algorithm uint8

const (
	// Standard is the naive iterative summation (ST in the paper).
	StandardAlg Algorithm = iota
	// PairwiseAlg is recursive pairwise summation (balanced-tree ST).
	PairwiseAlg
	// KahanAlg is Kahan's compensated summation (K).
	KahanAlg
	// NeumaierAlg is Neumaier's improved compensated summation.
	NeumaierAlg
	// CompositeAlg is composite-precision summation (CP): the error term
	// is carried separately and folded in only at the end.
	CompositeAlg
	// PreroundedAlg is windowed prerounded reproducible summation (PR),
	// bitwise reproducible under any reduction order.
	PreroundedAlg
	// BinnedAlg is single-pass binned (indexed) reproducible summation
	// (BN): full-exponent-range fixed bins, bitwise reproducible under
	// any reduction order at a small constant factor over ST. Appended
	// after PreroundedAlg so persisted numeric values stay stable; its
	// place in the cost ladder comes from CostRank and the Algorithms
	// ordering, not the enum value.
	BinnedAlg

	numAlgorithms
)

// Algorithms lists every registered algorithm in cost order.
var Algorithms = []Algorithm{
	StandardAlg, PairwiseAlg, BinnedAlg, KahanAlg, NeumaierAlg, CompositeAlg, PreroundedAlg,
}

// SelectionLadder lists, in cost order, the algorithms the runtime
// selector escalates through: the paper's ST < K < CP < PR ladder with
// the binned rung (BN) slotted directly after ST. With the two-level
// deposit kernel BN runs within 2x of the ST floor — measured cheaper
// than the Kahan kernel (BENCH_binned.json vs BENCH_kernels.json) —
// so any request the plain sum cannot satisfy escalates straight to
// the exact, bitwise-reproducible rung: reproducible by default. The
// compensated and expensive rungs remain for policy pinning
// (selector.Static, TunePR) and calibration tables. Policies walk
// this ladder instead of hardcoding any particular reproducible
// algorithm.
var SelectionLadder = []Algorithm{
	StandardAlg, BinnedAlg, KahanAlg, CompositeAlg, PreroundedAlg,
}

// CheapestReproducible returns the lowest-cost algorithm whose results
// are bitwise reproducible under arbitrary reduction orders — the
// ladder-driven replacement for hardcoded PreroundedAlg fallbacks.
func CheapestReproducible() Algorithm {
	best := PreroundedAlg
	for _, a := range Algorithms {
		if a.Reproducible() && a.CostRank() < best.CostRank() {
			best = a
		}
	}
	return best
}

// PaperAlgorithms lists the four algorithms the paper evaluates, in the
// paper's cost order ST < K < CP < PR.
var PaperAlgorithms = []Algorithm{StandardAlg, KahanAlg, CompositeAlg, PreroundedAlg}

// String returns the paper's abbreviation for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case StandardAlg:
		return "ST"
	case PairwiseAlg:
		return "PW"
	case KahanAlg:
		return "K"
	case NeumaierAlg:
		return "N"
	case CompositeAlg:
		return "CP"
	case PreroundedAlg:
		return "PR"
	case BinnedAlg:
		return "BN"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// FullName returns the descriptive name used in prose and reports.
func (a Algorithm) FullName() string {
	switch a {
	case StandardAlg:
		return "standard iterative summation"
	case PairwiseAlg:
		return "pairwise summation"
	case KahanAlg:
		return "Kahan compensated summation"
	case NeumaierAlg:
		return "Neumaier compensated summation"
	case CompositeAlg:
		return "composite precision summation"
	case PreroundedAlg:
		return "prerounded (windowed binned) summation"
	case BinnedAlg:
		return "binned (indexed) reproducible summation"
	}
	return a.String()
}

// CostRank orders algorithms by runtime expense: lower is cheaper. The
// non-reproducible rungs keep the measured ladder of the paper's
// Figs 4–5 (ST < K < CP < PR); BN's rank reflects the measured cost of
// the two-level deposit kernel — under 2x the ST floor and below the
// Kahan kernel at 1M elements (BENCH_binned.json) — which places the
// cheapest reproducible rung directly after the plain loops.
func (a Algorithm) CostRank() int {
	switch a {
	case StandardAlg:
		return 0
	case PairwiseAlg:
		return 1
	case BinnedAlg:
		return 2
	case KahanAlg:
		return 3
	case NeumaierAlg:
		return 4
	case CompositeAlg:
		return 5
	case PreroundedAlg:
		return 6
	}
	return int(a) + 100
}

// Valid reports whether a names a registered algorithm.
func (a Algorithm) Valid() bool { return a < numAlgorithms }

// MarshalText encodes the algorithm as its abbreviation (so JSON maps
// keyed by Algorithm read "ST"/"K"/"CP"/"PR" instead of integers).
func (a Algorithm) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText decodes an abbreviation or full name.
func (a *Algorithm) UnmarshalText(b []byte) error {
	alg, err := ParseAlgorithm(string(b))
	if err != nil {
		return err
	}
	*a = alg
	return nil
}

// ParseAlgorithm maps a paper abbreviation or full name to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms {
		if s == a.String() || s == a.FullName() {
			return a, nil
		}
	}
	return 0, fmt.Errorf("sum: unknown algorithm %q", s)
}

// Sum computes the one-shot sum of xs with algorithm a.
func (a Algorithm) Sum(xs []float64) float64 {
	switch a {
	case StandardAlg:
		return Standard(xs)
	case PairwiseAlg:
		return Pairwise(xs)
	case KahanAlg:
		return Kahan(xs)
	case NeumaierAlg:
		return Neumaier(xs)
	case CompositeAlg:
		return Composite(xs)
	case PreroundedAlg:
		return Prerounded(xs)
	case BinnedAlg:
		return Binned(xs)
	}
	panic("sum: invalid algorithm " + a.String())
}

// NewAccumulator returns a fresh streaming accumulator for a.
func (a Algorithm) NewAccumulator() Accumulator {
	switch a {
	case StandardAlg, PairwiseAlg:
		return &StandardAcc{}
	case KahanAlg:
		return &KahanAcc{}
	case NeumaierAlg:
		return &NeumaierAcc{}
	case CompositeAlg:
		return &CompositeAcc{}
	case PreroundedAlg:
		return NewPreroundedAcc(DefaultPRConfig())
	case BinnedAlg:
		return &BinnedAcc{}
	}
	panic("sum: invalid algorithm " + a.String())
}

// Op returns the dynamic mergeable reduction operator for a, for use
// with simulated collectives and runtime selection.
func (a Algorithm) Op() reduce.Op {
	switch a {
	case StandardAlg, PairwiseAlg:
		return reduce.Boxed(a.String(), STMonoid{})
	case KahanAlg:
		return reduce.Boxed(a.String(), KahanMonoid{})
	case NeumaierAlg:
		return reduce.Boxed(a.String(), NeumaierMonoid{})
	case CompositeAlg:
		return reduce.Boxed(a.String(), CPMonoid{})
	case PreroundedAlg:
		return reduce.Boxed(a.String(), DefaultPRConfig().Monoid())
	case BinnedAlg:
		return reduce.Boxed(a.String(), BNMonoid{})
	}
	panic("sum: invalid algorithm " + a.String())
}

// Reproducible reports whether a guarantees bitwise-identical results
// under arbitrary reduction trees. Call sites must not assume a single
// reproducible algorithm: use CheapestReproducible or walk
// SelectionLadder instead of hardcoding one.
func (a Algorithm) Reproducible() bool {
	return a == PreroundedAlg || a == BinnedAlg
}

// LocalState folds xs into a boxed partial-reduction state using the
// algorithm's native, unboxed merge loop — the efficient "local sum"
// phase of a distributed reduction. The returned state is compatible
// with a.Op().Merge / Finalize.
func (a Algorithm) LocalState(xs []float64) reduce.State {
	switch a {
	case StandardAlg, PairwiseAlg:
		return Standard(xs)
	case KahanAlg:
		m := KahanMonoid{}
		st := m.Leaf(0)
		for _, x := range xs {
			st = m.Merge(st, m.Leaf(x))
		}
		return st
	case NeumaierAlg:
		m := NeumaierMonoid{}
		st := m.Leaf(0)
		for _, x := range xs {
			st = m.Merge(st, m.Leaf(x))
		}
		return st
	case CompositeAlg:
		var acc CompositeAcc
		AddSlice(&acc, xs)
		return acc.State()
	case PreroundedAlg:
		acc := NewPreroundedAcc(DefaultPRConfig())
		AddSlice(acc, xs)
		return acc.State()
	case BinnedAlg:
		var st binned.State
		st.AddSlice(xs)
		return st
	}
	panic("sum: invalid algorithm " + a.String())
}

// Accumulator is a streaming summation state: the "local sum" half of a
// distributed reduction.
type Accumulator interface {
	// Add folds one value into the running sum.
	Add(x float64)
	// Sum returns the current value of the sum.
	Sum() float64
	// Reset restores the accumulator to zero.
	Reset()
}

// AddSlice feeds every element of xs into acc.
func AddSlice(acc Accumulator, xs []float64) {
	for _, x := range xs {
		acc.Add(x)
	}
}
