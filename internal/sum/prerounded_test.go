package sum

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/reduce"
)

// randomTreeReduce reduces xs under m with a random tree: it repeatedly
// merges two randomly chosen partial states until one remains. This is
// a stronger scramble than permutation alone — both shape and operand
// placement vary.
func randomTreeReduce(m PRMonoid, xs []float64, r *fpu.RNG) float64 {
	if len(xs) == 0 {
		return m.Finalize(m.Leaf(0))
	}
	states := make([]PRState, len(xs))
	for i, x := range xs {
		states[i] = m.Leaf(x)
	}
	for len(states) > 1 {
		i := r.Intn(len(states))
		j := r.Intn(len(states) - 1)
		if j >= i {
			j++
		}
		merged := m.Merge(states[i], states[j])
		// Remove i and j, append merged.
		if i < j {
			i, j = j, i
		}
		states[i] = states[len(states)-1]
		states = states[:len(states)-1]
		if j == len(states) {
			j = i
		}
		states[j] = states[len(states)-1]
		states = states[:len(states)-1]
		states = append(states, merged)
	}
	return m.Finalize(states[0])
}

func TestPRBitwiseReproducibleUnderRandomTrees(t *testing.T) {
	m := DefaultPRConfig().Monoid()
	r := fpu.NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		n := 50 + r.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(120)-60)
		}
		want := Prerounded(xs)
		for rep := 0; rep < 10; rep++ {
			r.Shuffle(xs)
			if got := randomTreeReduce(m, xs, r); got != want {
				t.Fatalf("trial %d rep %d: PR not reproducible: %g vs %g (bits %x vs %x)",
					trial, rep, got, want, math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

func TestPRMergeExactlyAssociativeAndCommutative(t *testing.T) {
	m := DefaultPRConfig().Monoid()
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) ||
			math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		// Documented limitation: exactness holds for |x| <= 2^1020.
		if math.Abs(a) > 0x1p1020 || math.Abs(b) > 0x1p1020 || math.Abs(c) > 0x1p1020 {
			return true
		}
		sa, sb, sc := m.Leaf(a), m.Leaf(b), m.Leaf(c)
		left := m.Merge(m.Merge(sa, sb), sc)
		right := m.Merge(sa, m.Merge(sb, sc))
		if m.Finalize(left) != m.Finalize(right) {
			return false
		}
		ab := m.Finalize(m.Merge(sa, sb))
		ba := m.Finalize(m.Merge(sb, sa))
		return ab == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPRAccuracyNearExact(t *testing.T) {
	// With W=26, F=4 the retained precision is ~104 bits below the
	// largest operand: for moderate dynamic ranges PR must match the
	// correctly rounded sum.
	r := fpu.NewRNG(2)
	for trial := 0; trial < 50; trial++ {
		n := 100 + r.Intn(1000)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(40)-20)
		}
		got := Prerounded(xs)
		want := bigref.SumFloat64(xs)
		// Allow a few ulps of the max operand's dropped tail.
		maxAbs := 0.0
		for _, x := range xs {
			if a := math.Abs(x); a > maxAbs {
				maxAbs = a
			}
		}
		tol := float64(n) * maxAbs * 0x1p-78 // F*W - W = 78 retained bits below top bin
		if math.Abs(got-want) > tol {
			t.Errorf("trial %d: PR error %g exceeds bound %g", trial, math.Abs(got-want), tol)
		}
	}
}

func TestPRExactOnSameBinIntegers(t *testing.T) {
	// Small integers all live in adjacent bins: PR must be exact.
	xs := []float64{1, 2, 3, 4, 5, -3, -2, 10}
	if got := Prerounded(xs); got != 20 {
		t.Errorf("PR integer sum = %g, want 20", got)
	}
}

func TestPRWideDynamicRangeDrops(t *testing.T) {
	// A value more than F*W bits below the max is entirely discarded —
	// deterministically.
	xs := []float64{1.0, 0x1p-200}
	got := Prerounded(xs)
	if got != 1.0 {
		t.Errorf("PR should drop the tiny term deterministically: %g", got)
	}
	// And the drop is order-independent.
	if got2 := Prerounded([]float64{0x1p-200, 1.0}); got2 != got {
		t.Errorf("drop order-dependent: %g vs %g", got2, got)
	}
}

func TestPRSubnormalsAndZeros(t *testing.T) {
	xs := []float64{0, 0x1p-1074, 0x1p-1074, 0, 0x1p-1073}
	got := Prerounded(xs)
	want := 0x1p-1072
	if got != want {
		t.Errorf("subnormal PR sum = %g, want %g", got, want)
	}
	if got := Prerounded([]float64{0, 0, 0}); got != 0 {
		t.Errorf("all-zero PR sum = %g", got)
	}
}

func TestPRNearOverflowBins(t *testing.T) {
	// Values near the top of the exponent range exercise the scaled
	// round-to-multiple path.
	xs := []float64{0x1p1020, 0x1p1019, -0x1p1020}
	got := Prerounded(xs)
	if got != 0x1p1019 {
		t.Errorf("near-overflow PR sum = %g, want %g", got, 0x1p1019)
	}
}

func TestPRConfigValidation(t *testing.T) {
	bad := []PRConfig{{W: 4, F: 4}, {W: 60, F: 4}, {W: 26, F: 0}, {W: 26, F: 9}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := DefaultPRConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if got := DefaultPRConfig().Capacity(); got != 1<<26 {
		t.Errorf("capacity = %d, want %d", got, 1<<26)
	}
}

func TestPRCapacityPanics(t *testing.T) {
	cfg := PRConfig{W: 40, F: 2} // capacity 2^12 = 4096
	defer func() {
		if recover() == nil {
			t.Error("expected capacity panic")
		}
	}()
	acc := NewPreroundedAcc(cfg)
	for i := 0; i < 5000; i++ {
		acc.Add(1.0)
	}
}

func TestPRFoldWidthTradeoff(t *testing.T) {
	// More folds must not reduce accuracy.
	r := fpu.NewRNG(5)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(60)-30)
	}
	ref := bigref.Sum(xs)
	e1 := bigref.Err(PreroundedWith(PRConfig{W: 26, F: 1}, xs), ref)
	e2 := bigref.Err(PreroundedWith(PRConfig{W: 26, F: 2}, xs), ref)
	e4 := bigref.Err(PreroundedWith(PRConfig{W: 26, F: 4}, xs), ref)
	if e2 > e1 || e4 > e2 {
		t.Errorf("fold ladder violated: F=1:%g F=2:%g F=4:%g", e1, e2, e4)
	}
}

func TestTwoPassReproducibleUnderPermutation(t *testing.T) {
	r := fpu.NewRNG(6)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(100)-50)
	}
	want := PreroundedTwoPass(xs, 3)
	for rep := 0; rep < 20; rep++ {
		r.Shuffle(xs)
		if got := PreroundedTwoPass(xs, 3); got != want {
			t.Fatalf("two-pass not permutation-invariant: %g vs %g", got, want)
		}
	}
}

func TestTwoPassAccuracy(t *testing.T) {
	r := fpu.NewRNG(7)
	xs := make([]float64, 3000)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(30)-15)
	}
	got := PreroundedTwoPass(xs, 3)
	want := bigref.SumFloat64(xs)
	rel := math.Abs(got-want) / math.Abs(want)
	if want != 0 && rel > 1e-12 {
		t.Errorf("two-pass relative error %g too large", rel)
	}
}

func TestTwoPassEdgeCases(t *testing.T) {
	if got := PreroundedTwoPass(nil, 3); got != 0 {
		t.Errorf("empty = %g", got)
	}
	if got := PreroundedTwoPass([]float64{0, 0}, 3); got != 0 {
		t.Errorf("zeros = %g", got)
	}
	if got := PreroundedTwoPass([]float64{5}, 0); got != 5 {
		t.Errorf("single with folds clamp = %g", got)
	}
	if got := PreroundedTwoPass([]float64{math.Inf(1)}, 2); !math.IsNaN(got) {
		t.Errorf("inf should yield NaN, got %g", got)
	}
	// Subnormal-only input hits the q clamp path.
	if got := PreroundedTwoPass([]float64{0x1p-1074, 0x1p-1074}, 4); got != 0x1p-1073 {
		t.Errorf("subnormal two-pass = %g", got)
	}
}

func TestPRStreamWindowShifts(t *testing.T) {
	// Feed ascending magnitudes so the window shifts on every add, then
	// compare against the descending feed (window never shifts).
	xs := []float64{0x1p-40, 0x1p-10, 1.0, 0x1p30, 0x1p60}
	asc := Prerounded(xs)
	desc := Prerounded([]float64{0x1p60, 0x1p30, 1.0, 0x1p-10, 0x1p-40})
	if asc != desc {
		t.Errorf("window shift order-dependence: %g vs %g", asc, desc)
	}
}

func TestPRMergeEmptyStates(t *testing.T) {
	m := DefaultPRConfig().Monoid()
	empty := m.Leaf(0)
	one := m.Leaf(3.5)
	if got := m.Finalize(m.Merge(empty, one)); got != 3.5 {
		t.Errorf("merge(empty, x) = %g", got)
	}
	if got := m.Finalize(m.Merge(one, empty)); got != 3.5 {
		t.Errorf("merge(x, empty) = %g", got)
	}
	if got := m.Finalize(m.Merge(empty, empty)); got != 0 {
		t.Errorf("merge(empty, empty) = %g", got)
	}
}

func TestPRReducePairwiseMatchesFold(t *testing.T) {
	m := DefaultPRConfig().Monoid()
	xs := hardSet(777, 13)
	a := reduce.Fold[PRState](m, xs)
	b := reduce.Pairwise[PRState](m, xs, nil)
	if a != b {
		t.Errorf("PR balanced vs serial differ: %g vs %g", a, b)
	}
}
