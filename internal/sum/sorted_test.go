package sum

import (
	"math"
	"testing"

	"repro/internal/gen"
)

// TestSortedBufMatchesUnbuffered pins the scratch-buffer sorted sums
// bitwise against the allocating spellings, confirms the input is never
// modified, and confirms an adequate scratch buffer removes the
// allocation.
func TestSortedBufMatchesUnbuffered(t *testing.T) {
	xs := gen.Spec{N: 1000, Cond: 1e8, DynRange: 30, Seed: 11}.Generate()
	orig := append([]float64(nil), xs...)
	scratch := make([]float64, len(xs))

	if got, want := SortedAscendingBuf(xs, scratch), SortedAscending(xs); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("SortedAscendingBuf = %x, SortedAscending = %x", math.Float64bits(got), math.Float64bits(want))
	}
	if got, want := SortedDescendingBuf(xs, scratch), SortedDescending(xs); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("SortedDescendingBuf = %x, SortedDescending = %x", math.Float64bits(got), math.Float64bits(want))
	}
	// A too-small scratch buffer must fall back to allocating, not panic
	// or truncate.
	if got, want := SortedAscendingBuf(xs, scratch[:0:4]), SortedAscending(xs); math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("small-scratch SortedAscendingBuf = %x, want %x", math.Float64bits(got), math.Float64bits(want))
	}
	for i := range xs {
		if math.Float64bits(xs[i]) != math.Float64bits(orig[i]) {
			t.Fatalf("input modified at %d: %x -> %x", i, math.Float64bits(orig[i]), math.Float64bits(xs[i]))
		}
	}

	var sink float64
	allocs := testing.AllocsPerRun(20, func() { sink = SortedDescendingBuf(xs, scratch) })
	if allocs != 0 {
		t.Errorf("SortedDescendingBuf with adequate scratch: %v allocs per run, want 0", allocs)
	}
	_ = sink
}
