package sum

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/reduce"
)

func TestExpansionExactSimple(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{1e16, 1, -1e16}, 1},
		{[]float64{1e9, 1e-9, -1e9}, 1e-9},
		{[]float64{0.1, 0.2, -0.3}, 0.1 + 0.2 - 0.3}, // rounded exactly
	}
	for _, c := range cases {
		if got := Expansion(c.xs); got != bigref.SumFloat64(c.xs) {
			t.Errorf("Expansion(%v) = %g, want exact %g", c.xs, got, bigref.SumFloat64(c.xs))
		}
		_ = c.want
	}
}

func TestExpansionMatchesExactOracleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := fpu.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(300)-150)
		}
		return Expansion(xs) == bigref.SumFloat64(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestExpansionBitwiseReproducibleUnderTrees(t *testing.T) {
	r := fpu.NewRNG(3)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(200)-100)
	}
	m := ExpMonoid{}
	want := Expansion(xs)
	// Serial fold and balanced reductions over shuffles must agree
	// bitwise.
	for trial := 0; trial < 10; trial++ {
		r.Shuffle(xs)
		if got := reduce.Fold[ExpState](m, xs); got != want {
			t.Fatalf("fold trial %d: %g != %g", trial, got, want)
		}
		if got := reduce.Pairwise[ExpState](m, xs, nil); got != want {
			t.Fatalf("pairwise trial %d: %g != %g", trial, got, want)
		}
	}
}

func TestExpansionLengthStaysBounded(t *testing.T) {
	var a ExpansionAcc
	r := fpu.NewRNG(4)
	for i := 0; i < 100000; i++ {
		a.Add(math.Ldexp(r.Float64()*2-1, r.Intn(120)-60))
	}
	if n := a.st.Len(); n > 45 {
		t.Errorf("expansion grew to %d components", n)
	}
	if got, want := a.Sum(), a.st.Value(); got != want {
		t.Errorf("Sum %g != state value %g", got, want)
	}
}

func TestExpansionAccReset(t *testing.T) {
	var a ExpansionAcc
	a.Add(5)
	a.Reset()
	if a.Sum() != 0 {
		t.Error("reset failed")
	}
	a.Add(7)
	if a.Sum() != 7 {
		t.Error("post-reset add failed")
	}
}

func TestExpansionStateIsolation(t *testing.T) {
	var a ExpansionAcc
	a.Add(1)
	st := a.State()
	a.Add(1e-30)
	if st.Value() != 1 {
		t.Error("State() shares mutation with accumulator")
	}
}

func TestExpMonoidMergeEmpty(t *testing.T) {
	m := ExpMonoid{}
	if got := m.Finalize(m.Merge(m.Leaf(0), m.Leaf(3))); got != 3 {
		t.Errorf("merge with empty = %g", got)
	}
	if got := m.Finalize(m.Leaf(0)); got != 0 {
		t.Errorf("empty leaf = %g", got)
	}
}

func TestDotVariants(t *testing.T) {
	r := fpu.NewRNG(5)
	n := 2000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = math.Ldexp(r.Float64()*2-1, r.Intn(30)-15)
		b[i] = math.Ldexp(r.Float64()*2-1, r.Intn(30)-15)
	}
	exact := DotExact(a, b)
	// CP and PR dots must be at least as accurate as ST.
	eST := math.Abs(DotStandard(a, b) - exact)
	eK := math.Abs(DotKahan(a, b) - exact)
	eCP := math.Abs(DotComposite(a, b) - exact)
	ePR := math.Abs(DotPrerounded(a, b) - exact)
	if eCP > eST || ePR > eST {
		t.Errorf("dot accuracy ladder violated: ST=%g K=%g CP=%g PR=%g", eST, eK, eCP, ePR)
	}
}

func TestDotPreroundedPermutationInvariant(t *testing.T) {
	r := fpu.NewRNG(6)
	n := 1000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = math.Ldexp(r.Float64()*2-1, r.Intn(60)-30)
		b[i] = math.Ldexp(r.Float64()*2-1, r.Intn(60)-30)
	}
	want := DotPrerounded(a, b)
	for trial := 0; trial < 10; trial++ {
		// Permute the index pairing jointly.
		perm := r.Perm(n)
		pa := make([]float64, n)
		pb := make([]float64, n)
		for i, j := range perm {
			pa[i], pb[i] = a[j], b[j]
		}
		if got := DotPrerounded(pa, pb); got != want {
			t.Fatalf("PR dot order-dependent: %g vs %g", got, want)
		}
	}
}

func TestDotCancellingVectors(t *testing.T) {
	// a·b with exact cancellation: ST loses it, CP/PR keep it.
	a := []float64{1e8, 1e8, 1.0}
	b := []float64{1e8, -1e8, 1e-8}
	exact := DotExact(a, b) // = 1e-8
	if exact != 1e-8 {
		t.Fatalf("oracle = %g", exact)
	}
	if got := DotComposite(a, b); got != 1e-8 {
		t.Errorf("CP dot = %g", got)
	}
	if got := DotStandard(a, b); got == 1e-8 {
		t.Log("ST happened to be exact here (acceptable)")
	}
}

func TestDotDispatchAndMismatch(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	for _, alg := range Algorithms {
		if got := Dot(alg, a, b); got != 11 {
			t.Errorf("%v dot = %g", alg, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	DotStandard([]float64{1}, []float64{1, 2})
}
