package sum_test

// Cross-layer property tests for the binned reproducible rung: the same
// multiset of operands must produce bitwise-identical sums through
// every execution surface — permutations, all tree shapes, all worker
// counts, all lane widths, any chunk size — and the selection ladder
// must expose BN as the cheapest reproducible rung.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/binned"
	"repro/internal/fpu"
	"repro/internal/parallel"
	"repro/internal/sum"
	"repro/internal/tree"
)

func binnedPropData(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(120)-60)
	}
	return xs
}

func TestBinnedInvarianceAcrossTreesWorkersLanes(t *testing.T) {
	xs := binnedPropData(11, 3001)
	want := math.Float64bits(sum.Binned(xs))

	// Random permutations.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		perm := rng.Perm(len(xs))
		shuf := make([]float64, len(xs))
		for i, p := range perm {
			shuf[i] = xs[p]
		}
		if got := math.Float64bits(sum.Binned(shuf)); got != want {
			t.Fatalf("permutation %d: %x != %x", trial, got, want)
		}
	}

	// Every tree shape, several randomly drawn plans each.
	for _, shape := range []tree.Shape{tree.Balanced, tree.Unbalanced, tree.Random, tree.Blocked, tree.Knomial} {
		r := fpu.NewRNG(uint64(13 + shape))
		for trial := 0; trial < 6; trial++ {
			p := tree.NewPlan(shape, len(xs), r)
			got := math.Float64bits(tree.Reduce(sum.BNMonoid{}, p, xs))
			if got != want {
				t.Fatalf("%v trial %d: %x != %x", shape, trial, got, want)
			}
		}
	}

	// Worker counts x lane widths x chunk sizes on the parallel engine.
	for _, workers := range []int{1, 2, 4, 7} {
		for _, lanes := range []int{1, 2, 4, 8} {
			for _, chunk := range []int{0, 256, 1000} {
				cfg := parallel.Config{Workers: workers, ChunkSize: chunk, LaneWidth: lanes}
				got := math.Float64bits(parallel.Sum(sum.BinnedAlg, xs, cfg))
				if got != want {
					t.Fatalf("w=%d lanes=%d chunk=%d: %x != %x", workers, lanes, chunk, got, want)
				}
			}
		}
	}
}

// adversarialBinnedSets exercises every flush path of the two-level
// deposit kernel: anchor churn (per-group window jumps), multi-window
// mixes, zeros mid-run, denormals, and the scaled top windows around
// the 2^-512 Finalize scaling boundary.
func adversarialBinnedSets() map[string][]float64 {
	rng := rand.New(rand.NewSource(23))
	sets := map[string][]float64{}
	churn := make([]float64, 801)
	for i := range churn {
		e := 0
		if i%2 == 1 {
			e = 300
		}
		churn[i] = (rng.Float64() - 0.5) * math.Ldexp(1, e)
	}
	sets["anchor-churn"] = churn
	three := make([]float64, 900)
	for i := range three {
		three[i] = (rng.Float64() - 0.5) * math.Ldexp(1, (i%3)*64-64)
	}
	sets["three-windows"] = three
	zeros := make([]float64, 700)
	for i := range zeros {
		switch i % 5 {
		case 0:
			zeros[i] = 0
		case 1:
			zeros[i] = math.Copysign(0, -1)
		default:
			zeros[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40))
		}
	}
	sets["zeros-mid-run"] = zeros
	den := make([]float64, 600)
	for i := range den {
		den[i] = math.Ldexp(1+rng.Float64(), -1040-rng.Intn(30))
		if i%2 == 1 {
			den[i] = -den[i]
		}
	}
	sets["denormal"] = den
	top := make([]float64, 500)
	for i := range top {
		e := 980
		if i%2 == 1 {
			e = 900
		}
		top[i] = (rng.Float64() - 0.5) * math.Ldexp(1, e)
	}
	sets["scaled-top-straddle"] = top
	return sets
}

// TestBinnedAdversarialFlushPathsAcrossEngines pins the two-level fast
// path against the reference per-element deposit loop (the pre-PR-7
// oracle) on data that forces every flush path, then drives the same
// multisets through permutations, all five tree shapes, and the
// parallel engine at several worker counts — all must reproduce the
// oracle's Finalize bits exactly.
func TestBinnedAdversarialFlushPathsAcrossEngines(t *testing.T) {
	shapes := []tree.Shape{tree.Balanced, tree.Unbalanced, tree.Random, tree.Blocked, tree.Knomial}
	rng := rand.New(rand.NewSource(24))
	for name, xs := range adversarialBinnedSets() {
		var ref binned.State
		ref.AddSliceRef(xs)
		want := math.Float64bits(ref.Finalize())
		if got := math.Float64bits(sum.Binned(xs)); got != want {
			t.Fatalf("%s: two-level %x != reference oracle %x", name, got, want)
		}
		for trial := 0; trial < 3; trial++ {
			perm := rng.Perm(len(xs))
			shuf := make([]float64, len(xs))
			for i, p := range perm {
				shuf[i] = xs[p]
			}
			if got := math.Float64bits(sum.Binned(shuf)); got != want {
				t.Fatalf("%s perm %d: %x != %x", name, trial, got, want)
			}
			for _, shape := range shapes {
				p := tree.NewPlan(shape, len(shuf), fpu.NewRNG(uint64(25+trial)+uint64(shape)))
				if got := math.Float64bits(tree.Reduce(sum.BNMonoid{}, p, shuf)); got != want {
					t.Fatalf("%s perm %d %v: %x != %x", name, trial, shape, got, want)
				}
			}
			for _, workers := range []int{1, 2, 4, 7} {
				cfg := parallel.Config{Workers: workers, ChunkSize: 128 + 100*trial}
				if got := math.Float64bits(parallel.Sum(sum.BinnedAlg, shuf, cfg)); got != want {
					t.Fatalf("%s perm %d w=%d: %x != %x", name, trial, workers, got, want)
				}
			}
		}
	}
}

func TestBinnedNonFinitePropagationAcrossEngines(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		xs   []float64
		nan  bool
		want float64
	}{
		{"posinf", append(binnedPropData(14, 500), inf), false, inf},
		{"neginf", append(binnedPropData(15, 500), -inf), false, -inf},
		{"bothinf", append(binnedPropData(16, 500), inf, -inf), true, 0},
		{"nan", append(binnedPropData(17, 500), math.NaN()), true, 0},
		{"overflow", []float64{math.MaxFloat64, math.Ldexp(1, 1023)}, false, inf},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			got := parallel.Sum(sum.BinnedAlg, c.xs, parallel.Config{Workers: workers})
			serial := sum.Binned(c.xs)
			if c.nan {
				if !math.IsNaN(got) || !math.IsNaN(serial) {
					t.Errorf("%s w=%d: got %g serial %g, want NaN", c.name, workers, got, serial)
				}
				continue
			}
			if got != c.want || serial != c.want {
				t.Errorf("%s w=%d: got %g serial %g, want %g", c.name, workers, got, serial, c.want)
			}
		}
	}
}

func TestBinnedSelectionLadder(t *testing.T) {
	if got := sum.CheapestReproducible(); got != sum.BinnedAlg {
		t.Errorf("CheapestReproducible = %v, want BN", got)
	}
	if !sum.BinnedAlg.Reproducible() || !sum.PreroundedAlg.Reproducible() {
		t.Error("both reproducible rungs must report Reproducible")
	}
	for _, a := range []sum.Algorithm{sum.StandardAlg, sum.KahanAlg, sum.NeumaierAlg, sum.CompositeAlg} {
		if a.Reproducible() {
			t.Errorf("%v must not report Reproducible", a)
		}
	}
	// The ladder is strictly cost-ordered and ends reproducible.
	prev := -1
	for _, a := range sum.SelectionLadder {
		if r := a.CostRank(); r <= prev {
			t.Errorf("SelectionLadder not strictly cost-ordered at %v", a)
		} else {
			prev = r
		}
	}
	last := sum.SelectionLadder[len(sum.SelectionLadder)-1]
	if !last.Reproducible() {
		t.Error("SelectionLadder must end in a reproducible rung")
	}
	// BN sits directly after the plain loops on the cost ladder: the
	// two-level kernel measures under 2x the ST floor and below the
	// Kahan kernel, so the cheapest reproducible rung precedes every
	// compensated one ("reproducible by default").
	if !(sum.PairwiseAlg.CostRank() < sum.BinnedAlg.CostRank() &&
		sum.BinnedAlg.CostRank() < sum.KahanAlg.CostRank() &&
		sum.KahanAlg.CostRank() < sum.CompositeAlg.CostRank() &&
		sum.CompositeAlg.CostRank() < sum.PreroundedAlg.CostRank()) {
		t.Error("cost ladder order violated: want PW < BN < K < CP < PR")
	}
	// The ladder's second rung is the reproducible one.
	if sum.SelectionLadder[1] != sum.BinnedAlg {
		t.Errorf("SelectionLadder[1] = %v, want BN", sum.SelectionLadder[1])
	}
}

func TestBinnedAccumulatorStreaming(t *testing.T) {
	xs := binnedPropData(18, 1234)
	var acc sum.BinnedAcc
	for _, x := range xs {
		acc.Add(x)
	}
	if got, want := acc.Sum(), sum.Binned(xs); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("streaming %x != one-shot %x", math.Float64bits(got), math.Float64bits(want))
	}
	// Sum is non-destructive: adding after reading continues the stream.
	mid := acc.Sum()
	acc.Add(math.Ldexp(1, 80))
	if acc.Sum() == mid {
		t.Error("accumulator froze after a mid-stream Sum read")
	}
	acc.Reset()
	if acc.Sum() != 0 {
		t.Error("Reset did not zero the accumulator")
	}
	// The enum round-trips through its text form.
	b, err := sum.BinnedAlg.MarshalText()
	if err != nil || string(b) != "BN" {
		t.Fatalf("MarshalText = %q, %v", b, err)
	}
	parsed, err := sum.ParseAlgorithm("BN")
	if err != nil || parsed != sum.BinnedAlg {
		t.Fatalf("ParseAlgorithm(BN) = %v, %v", parsed, err)
	}
}

func TestBinnedDotReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n := 800
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-20)
		b[i] = (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(40)-20)
	}
	want := math.Float64bits(sum.DotBinned(a, b))
	for trial := 0; trial < 6; trial++ {
		perm := rng.Perm(n)
		pa := make([]float64, n)
		pb := make([]float64, n)
		for i, p := range perm {
			pa[i] = a[p]
			pb[i] = b[p]
		}
		if got := math.Float64bits(sum.DotBinned(pa, pb)); got != want {
			t.Fatalf("permutation %d: %x != %x", trial, got, want)
		}
	}
	if got := math.Float64bits(sum.Dot(sum.BinnedAlg, a, b)); got != want {
		t.Fatal("Dot dispatcher disagrees with DotBinned")
	}
}
