package sum

import "repro/internal/kernel"

// Kahan computes the classic compensated sum (K): the estimated rounding
// error of each partial sum is folded back into the next addend. The
// final pending correction is dropped, exactly as in Kahan's original
// formulation — that (together with the uncompensated case where the
// addend exceeds the running sum in magnitude) is what separates K from
// the stronger CP operator.
func Kahan(xs []float64) float64 {
	var s, c float64 // c = running negative correction to subtract
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// KahanAcc is the streaming form of K.
type KahanAcc struct{ s, c float64 }

// Add folds x into the running compensated sum.
func (a *KahanAcc) Add(x float64) {
	y := x - a.c
	t := a.s + y
	a.c = (t - a.s) - y
	a.s = t
}

// Sum returns the current sum (pending correction dropped, per Kahan).
func (a *KahanAcc) Sum() float64 { return a.s }

// Reset restores the accumulator to zero.
func (a *KahanAcc) Reset() { *a = KahanAcc{} }

// State exposes the (sum, correction) pair for tree merging. Streaming
// accumulation is bitwise-identical to folding the same values through
// KahanMonoid, so the state can seed a merge tree directly.
func (a *KahanAcc) State() KState { return KState{S: a.s, C: a.c} }

// KState is the partial-reduction state of the Kahan tree operator:
// the partial sum s and the pending correction c (to be subtracted).
type KState struct{ S, C float64 }

// KahanMonoid is the mergeable tree form of K, mirroring the custom
// MPI_Reduce operator of Robey et al. that the paper uses: corrections
// travel with the partial sums and are folded into the next combination.
type KahanMonoid struct{}

// Leaf lifts an operand.
func (KahanMonoid) Leaf(x float64) KState { return KState{S: x} }

// Merge combines two compensated partial sums: the incoming partial sum
// is pre-corrected by both pending corrections, then added with a
// Kahan-style error recovery step.
func (KahanMonoid) Merge(a, b KState) KState {
	y := b.S - (a.C + b.C)
	t := a.S + y
	c := (t - a.S) - y
	return KState{S: t, C: c}
}

// Finalize returns the root sum; the residual correction is dropped,
// matching Kahan's classic formulation.
func (KahanMonoid) Finalize(s KState) float64 { return s.S }

// FoldSlice implements reduce.SliceFolder: the devirtualized batch loop,
// bit-identical to the reference left-to-right fold (and to streaming
// KahanAcc accumulation).
func (KahanMonoid) FoldSlice(xs []float64) KState {
	s, c := kernel.Kahan(xs)
	return KState{S: s, C: c}
}
