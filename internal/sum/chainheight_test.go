package sum

import "testing"

// chainHeightRef recomputes Pairwise's longest accumulation chain by
// literally mirroring the recursion.
func chainHeightRef(n int) int {
	if n <= 1 {
		return 0
	}
	if n <= PairwiseBlock {
		return n - 1
	}
	half := n / 2
	a, b := chainHeightRef(half), chainHeightRef(n-half)
	if b > a {
		a = b
	}
	return a + 1
}

// TestPairwiseChainHeight pins the closed form against the recursion —
// the error-bound estimators depend on this height being the real one
// (the 64-wide serial base case, not the ideal ⌈log2 n⌉).
func TestPairwiseChainHeight(t *testing.T) {
	for n := 0; n <= 4096; n++ {
		if got, want := PairwiseChainHeight(n), chainHeightRef(n); got != want {
			t.Fatalf("PairwiseChainHeight(%d) = %d, want %d", n, got, want)
		}
	}
	for _, n := range []int{1 << 13, 1<<16 + 3, 1 << 20, 1<<24 - 1} {
		if got, want := PairwiseChainHeight(n), chainHeightRef(n); got != want {
			t.Fatalf("PairwiseChainHeight(%d) = %d, want %d", n, got, want)
		}
	}
}
