package sum

import (
	"fmt"
	"math"

	"repro/internal/fpu"
)

// Prerounded summation (PR) — a from-scratch implementation of the
// binned ("indexed") reproducible summation family of Demmel & Nguyen
// (ReproBLAS' dIAdd/dIAddd operators, which the paper uses).
//
// The float64 exponent range is partitioned into fixed, absolute bins of
// W bits. Each operand is pre-rounded into F chunks, one per bin,
// starting at the operand's own top bin: chunk j is the nearest multiple
// of the bin quantum 2^(j*W-1074), extracted with the Dekker
// round-to-multiple trick, and the residual below the operand's lowest
// chunk is discarded. Because
//
//   - the chunk decomposition of a value depends only on that value (and
//     the fixed bin grid), and
//   - chunks are exact multiples of the bin quantum, so accumulating
//     fewer than 2^(52-W) of them per bin is exact in float64,
//
// the retained bin contents — and therefore the final result — are
// bitwise identical for every reduction order and tree shape. Accuracy
// is governed by F*W: everything more than F*W bits below the largest
// operand's bin is dropped.
//
// Limitation (shared with ReproBLAS): operands with |x| > 2^1020 can
// produce chunks or bin totals that overflow float64, voiding the
// exactness guarantee near the very top of the exponent range.

// maxFold bounds the fold count so PRState can be a flat value type.
const maxFold = 8

// PRConfig parameterizes prerounded summation.
type PRConfig struct {
	// W is the bin width in bits (8..40). Capacity — the number of
	// operands that can be absorbed with an exactness guarantee — is
	// 2^(52-W).
	W int
	// F is the number of folds (bins kept per state), 1..maxFold.
	// Retained precision relative to the largest operand is ~F*W bits.
	F int
}

// DefaultPRConfig returns the configuration used throughout the paper
// reproduction: 26-bit bins, 4 folds — ~104 retained bits and a
// 2^26 (≈67M) operand capacity, comfortably covering the paper's
// 1M-element experiments.
func DefaultPRConfig() PRConfig { return PRConfig{W: 26, F: 4} }

// Validate checks the configuration bounds.
func (c PRConfig) Validate() error {
	if c.W < 8 || c.W > 40 {
		return fmt.Errorf("sum: PR bin width W=%d outside [8,40]", c.W)
	}
	if c.F < 1 || c.F > maxFold {
		return fmt.Errorf("sum: PR fold count F=%d outside [1,%d]", c.F, maxFold)
	}
	return nil
}

// Capacity returns the maximum number of operands a single reduction may
// absorb while preserving the exactness (and thus reproducibility)
// guarantee.
func (c PRConfig) Capacity() int64 { return 1 << uint(52-c.W) }

// Monoid returns the mergeable tree operator for this configuration.
func (c PRConfig) Monoid() PRMonoid {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	return PRMonoid{cfg: c}
}

// PRState is the partial-reduction state of prerounded summation: a
// window of F bin accumulators anchored at the highest bin seen.
type PRState struct {
	// Top is the absolute index of the highest occupied bin; -1 when
	// the state is empty.
	Top int
	// Count is the number of operands absorbed (for capacity checks).
	Count int64
	// Acc[f] accumulates bin Top-f; every entry is an exact multiple of
	// that bin's quantum.
	Acc [maxFold]float64
}

// emptyPRState is the identity element of the PR merge.
func emptyPRState() PRState { return PRState{Top: -1} }

// topBin returns the absolute bin index of x's leading bit.
func topBin(x float64, w int) int {
	return (fpu.Exponent(x) + 1074) / w
}

// roundToMultipleSafe is fpu.RoundToMultiple with pre-scaling so the
// internal constant 1.5*2^(q+52) cannot overflow for bins near the top
// of the exponent range.
func roundToMultipleSafe(x float64, q int) (rounded, residual float64) {
	if q+52 > 1020 {
		const sh = 600
		r, res := fpu.RoundToMultiple(math.Ldexp(x, -sh), q-sh)
		return math.Ldexp(r, sh), math.Ldexp(res, sh)
	}
	return fpu.RoundToMultiple(x, q)
}

// deposit pre-rounds x into its F chunks and adds the chunks that fall
// inside the state's current window. st.Top must already be >= x's top
// bin. The decomposition of x is independent of st, which is what makes
// the final bin contents order-independent.
func (c PRConfig) deposit(st *PRState, x float64) {
	jtop := topBin(x, c.W)
	r := x
	for f := 0; f < c.F; f++ {
		j := jtop - f
		if j < 0 || r == 0 {
			break
		}
		idx := st.Top - j
		if idx >= c.F {
			break // this chunk and everything below is under the window
		}
		var chunk float64
		chunk, r = roundToMultipleSafe(r, j*c.W-1074)
		st.Acc[idx] += chunk
	}
	st.Count++
	if st.Count > c.Capacity() {
		panic(fmt.Sprintf("sum: prerounded capacity exceeded: %d operands > 2^(52-%d); use a smaller W", st.Count, c.W))
	}
}

// shiftWindow raises the state's window so its top bin becomes newTop,
// discarding accumulators that fall below the new window.
func (c PRConfig) shiftWindow(st *PRState, newTop int) {
	if st.Top < 0 {
		st.Top = newTop
		return
	}
	d := newTop - st.Top
	if d <= 0 {
		return
	}
	for f := c.F - 1; f >= 0; f-- {
		if f-d >= 0 {
			st.Acc[f] = st.Acc[f-d]
		} else {
			st.Acc[f] = 0
		}
	}
	st.Top = newTop
}

// add folds one operand into the state.
func (c PRConfig) add(st *PRState, x float64) {
	if x == 0 {
		st.Count++
		return
	}
	if jt := topBin(x, c.W); jt > st.Top {
		c.shiftWindow(st, jt)
	}
	c.deposit(st, x)
}

// merge combines two states, aligning their windows to the higher top.
func (c PRConfig) merge(a, b PRState) PRState {
	if b.Top < 0 {
		a.Count += b.Count
		return a
	}
	if a.Top < 0 {
		b.Count += a.Count
		return b
	}
	if a.Top < b.Top {
		a, b = b, a
	}
	d := a.Top - b.Top
	for f := 0; f < c.F; f++ {
		if f+d < c.F {
			a.Acc[f+d] += b.Acc[f]
		}
	}
	a.Count += b.Count
	if a.Count > c.Capacity() {
		panic(fmt.Sprintf("sum: prerounded capacity exceeded in merge: %d operands > 2^(52-%d); use a smaller W", a.Count, c.W))
	}
	return a
}

// finalize folds the window accumulators, lowest bin first, with an
// exact compensated pass. The order is fixed, so the result is a pure
// function of the bin contents.
func (c PRConfig) finalize(st PRState) float64 {
	if st.Top < 0 {
		return 0
	}
	var s, comp float64
	for f := c.F - 1; f >= 0; f-- {
		t, e := fpu.TwoSum(s, st.Acc[f])
		s = t
		comp += e
	}
	return s + comp
}

// PRMonoid is the mergeable tree form of prerounded summation. Its
// Merge is exactly associative and commutative (all operations are
// exact), so reductions are bitwise reproducible under any tree.
type PRMonoid struct{ cfg PRConfig }

// Config returns the monoid's configuration.
func (m PRMonoid) Config() PRConfig { return m.cfg }

// Leaf lifts an operand into a single-value state.
func (m PRMonoid) Leaf(x float64) PRState {
	st := emptyPRState()
	m.cfg.add(&st, x)
	return st
}

// Merge combines two partial states exactly.
func (m PRMonoid) Merge(a, b PRState) PRState { return m.cfg.merge(a, b) }

// Finalize rounds the bin contents to a float64.
func (m PRMonoid) Finalize(s PRState) float64 { return m.cfg.finalize(s) }

// PreroundedAcc is the streaming form of PR.
type PreroundedAcc struct {
	cfg PRConfig
	st  PRState
}

// NewPreroundedAcc returns a streaming accumulator with the given
// configuration.
func NewPreroundedAcc(cfg PRConfig) *PreroundedAcc {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &PreroundedAcc{cfg: cfg, st: emptyPRState()}
}

// Add folds x into the binned state.
func (a *PreroundedAcc) Add(x float64) { a.cfg.add(&a.st, x) }

// Sum rounds the current bin contents to a float64.
func (a *PreroundedAcc) Sum() float64 { return a.cfg.finalize(a.st) }

// Reset restores the accumulator to empty.
func (a *PreroundedAcc) Reset() { a.st = emptyPRState() }

// State exposes the raw binned state for tree merging.
func (a *PreroundedAcc) State() PRState { return a.st }

// Prerounded computes the one-shot binned reproducible sum of xs with
// the default configuration.
func Prerounded(xs []float64) float64 { return PreroundedWith(DefaultPRConfig(), xs) }

// PreroundedWith computes the one-shot binned reproducible sum with an
// explicit configuration.
func PreroundedWith(cfg PRConfig, xs []float64) float64 {
	acc := NewPreroundedAcc(cfg)
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Sum()
}
