package sum

import (
	"repro/internal/fpu"
	"repro/internal/superacc"
)

// Expansion summation (Shewchuk 1997): the running sum is kept as a
// nonoverlapping expansion — a list of floats whose sum is *exactly*
// the sum of everything absorbed so far. Growing the expansion by one
// operand costs one TwoSum per surviving component, so the worst case
// is O(n) per add, but for realistic data the expansion stays short
// (its length is bounded by the number of distinct exponent "bands" in
// flight, at most 39 for full-range float64 data).
//
// Because the represented value is exact, the rounded result is the
// correctly rounded sum and is independent of operand order: expansion
// summation is an alternative reproducible operator, traded off against
// PR's fixed O(F) state (an expansion state is variable-length and its
// merge costs O(len_a + len_b) TwoSums).

// ExpState is a partial-reduction state for expansion summation: a
// nonoverlapping expansion in increasing-magnitude order.
type ExpState struct {
	comps []float64
}

// growExpansion adds x to the expansion in place (Shewchuk's
// grow-expansion with zero elimination).
func growExpansion(comps []float64, x float64) []float64 {
	q := x
	out := comps[:0]
	for _, c := range comps {
		s, e := fpu.TwoSum(q, c)
		if e != 0 {
			out = append(out, e)
		}
		q = s
	}
	if q != 0 {
		out = append(out, q)
	}
	return out
}

// Value rounds the expansion to the nearest float64. Expansions are not
// canonical — different insertion orders can decompose the same exact
// value differently — so the rounding goes through the exact
// superaccumulator, which depends only on the represented value. That
// keeps the root result bitwise identical for every reduction tree.
func (s ExpState) Value() float64 {
	var a superacc.Acc
	for _, c := range s.comps {
		a.Add(c)
	}
	return a.Float64()
}

// Len returns the number of live components (diagnostic).
func (s ExpState) Len() int { return len(s.comps) }

// ExpansionAcc is the streaming form of expansion summation.
type ExpansionAcc struct {
	st ExpState
}

// Add folds x into the expansion exactly.
func (a *ExpansionAcc) Add(x float64) {
	if x == 0 {
		return
	}
	a.st.comps = growExpansion(a.st.comps, x)
}

// Sum rounds the exact expansion to a float64.
func (a *ExpansionAcc) Sum() float64 { return a.st.Value() }

// Reset restores the accumulator to zero.
func (a *ExpansionAcc) Reset() { a.st.comps = a.st.comps[:0] }

// State exposes the expansion for tree merging. The returned state
// shares the accumulator's backing array; merge it or copy it before
// further Adds.
func (a *ExpansionAcc) State() ExpState {
	return ExpState{comps: append([]float64(nil), a.st.comps...)}
}

// ExpMonoid is the mergeable tree form of expansion summation. Its
// partial states represent their sums exactly, so — like PR — the root
// value is bitwise identical under every reduction tree.
type ExpMonoid struct{}

// Leaf lifts an operand.
func (ExpMonoid) Leaf(x float64) ExpState {
	if x == 0 {
		return ExpState{}
	}
	return ExpState{comps: []float64{x}}
}

// Merge combines two expansions exactly.
func (ExpMonoid) Merge(a, b ExpState) ExpState {
	if len(a.comps) < len(b.comps) {
		a, b = b, a
	}
	comps := append([]float64(nil), a.comps...)
	for _, c := range b.comps {
		comps = growExpansion(comps, c)
	}
	return ExpState{comps: comps}
}

// Finalize rounds the root expansion.
func (ExpMonoid) Finalize(s ExpState) float64 { return s.Value() }

// Expansion computes the exact, correctly rounded, order-independent
// sum of xs via expansion summation.
func Expansion(xs []float64) float64 {
	var a ExpansionAcc
	for _, x := range xs {
		a.Add(x)
	}
	return a.Sum()
}
