package sum

import (
	"repro/internal/dd"
	"repro/internal/kernel"
)

// Composite computes the composite-precision sum (CP): the running sum
// is an unevaluated (value, error) pair — effectively double-double —
// with the error term kept separate throughout and folded in only at
// the end, per Taufer et al. (IPDPS 2010). CP is an "enhanced form of
// compensated summation" (paper, Section V-B): every step uses an exact
// error-free transformation and renormalizes, so it is strictly
// stronger than Kahan and Neumaier.
func Composite(xs []float64) float64 {
	acc := dd.Zero
	for _, x := range xs {
		acc = acc.AddFloat64(x)
	}
	return acc.Float64()
}

// CompositeAcc is the streaming form of CP.
type CompositeAcc struct{ acc dd.DD }

// Add folds x into the running composite-precision sum.
func (a *CompositeAcc) Add(x float64) { a.acc = a.acc.AddFloat64(x) }

// Sum folds the carried error term into the value — the step CP defers
// to the very end.
func (a *CompositeAcc) Sum() float64 { return a.acc.Float64() }

// Reset restores the accumulator to zero.
func (a *CompositeAcc) Reset() { a.acc = dd.Zero }

// State exposes the raw (value, error) pair for tree merging.
func (a *CompositeAcc) State() dd.DD { return a.acc }

// CPMonoid is the mergeable tree form of CP: partial states are
// double-double pairs combined with the accurate double-double addition.
type CPMonoid struct{}

// Leaf lifts an operand.
func (CPMonoid) Leaf(x float64) dd.DD { return dd.FromFloat64(x) }

// Merge combines two composite partial sums.
func (CPMonoid) Merge(a, b dd.DD) dd.DD { return a.Add(b) }

// Finalize folds the error term into the value at the root.
func (CPMonoid) Finalize(s dd.DD) float64 { return s.Float64() }

// FoldSlice implements reduce.SliceFolder: the devirtualized batch loop,
// bit-identical to the reference left-to-right fold (every step the full
// accurate dd.Add, exactly as Merge over Leafs performs it).
func (CPMonoid) FoldSlice(xs []float64) dd.DD { return kernel.CP(xs) }
