package sum

import (
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/reduce"
)

// hardSet builds a mixed-sign, wide-dynamic-range set whose exact sum is
// known via the exact oracle.
func hardSet(n int, seed uint64) []float64 {
	r := fpu.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		e := r.Intn(32) - 16
		v := math.Ldexp(r.Float64()+0.5, e)
		if r.Bool() {
			v = -v
		}
		xs[i] = v
	}
	return xs
}

func TestSimpleExactCases(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{42}, 42},
		{[]float64{1, 2, 3, 4}, 10},
		{[]float64{-1.5, 1.5}, 0},
		{[]float64{0.25, 0.25, 0.25, 0.25}, 1},
	}
	for _, alg := range Algorithms {
		for _, c := range cases {
			if got := alg.Sum(c.xs); got != c.want {
				t.Errorf("%v.Sum(%v) = %g, want %g", alg, c.xs, got, c.want)
			}
		}
	}
}

func TestAbsorptionExample(t *testing.T) {
	// The paper's Section II-A example: a=1e9, b=-1e9, c=1e-9.
	a, b, c := 1e9, -1e9, 1e-9
	if got := (a + b) + c; got != 1e-9 {
		t.Fatalf("(a+b)+c = %g", got)
	}
	if got := a + (b + c); got != 0 {
		t.Fatalf("a+(b+c) = %g — expected absorption", got)
	}
	// Compensated summation recovers the small term regardless of order.
	for _, alg := range []Algorithm{CompositeAlg, NeumaierAlg} {
		if got := alg.Sum([]float64{a, b, c}); got != 1e-9 {
			t.Errorf("%v lost the small term: %g", alg, got)
		}
	}
	// Prerounded summation may round the small term (it sits ~90 bits
	// below the window top here) but must do so identically in every
	// order — reproducibility, not exactness, is its contract.
	p1 := Prerounded([]float64{a, b, c})
	p2 := Prerounded([]float64{c, b, a})
	p3 := Prerounded([]float64{b, c, a})
	if p1 != p2 || p2 != p3 {
		t.Errorf("PR order-dependent: %g %g %g", p1, p2, p3)
	}
	if rel := math.Abs(p1-c) / c; rel > 1e-8 {
		t.Errorf("PR too far from the true sum: rel err %g", rel)
	}
}

func TestKahanClassicWeakness(t *testing.T) {
	// Neumaier's canonical example: Kahan returns 0, the true sum is 2.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Kahan(xs); got != 0 {
		t.Errorf("Kahan(%v) = %g; expected the classic failure value 0", xs, got)
	}
	if got := Neumaier(xs); got != 2 {
		t.Errorf("Neumaier(%v) = %g, want 2", xs, got)
	}
	if got := Composite(xs); got != 2 {
		t.Errorf("Composite(%v) = %g, want 2", xs, got)
	}
}

func TestAccuracyLadder(t *testing.T) {
	// Across many random hard sets, average error must respect
	// ST >= K >= CP and CP ~ exact.
	var errST, errK, errCP, errPR float64
	trials := 50
	for i := 0; i < trials; i++ {
		xs := hardSet(4096, uint64(i)+1)
		ref := bigref.Sum(xs)
		errST += bigref.Err(Standard(xs), ref)
		errK += bigref.Err(Kahan(xs), ref)
		errCP += bigref.Err(Composite(xs), ref)
		errPR += bigref.Err(Prerounded(xs), ref)
	}
	if errST < errK {
		t.Errorf("expected err(ST) >= err(K): %g < %g", errST, errK)
	}
	if errK < errCP {
		t.Errorf("expected err(K) >= err(CP): %g < %g", errK, errCP)
	}
	t.Logf("avg errors: ST=%g K=%g CP=%g PR=%g",
		errST/float64(trials), errK/float64(trials), errCP/float64(trials), errPR/float64(trials))
}

func TestStreamingMatchesOneShot(t *testing.T) {
	xs := hardSet(2000, 7)
	for _, alg := range Algorithms {
		acc := alg.NewAccumulator()
		AddSlice(acc, xs)
		var want float64
		switch alg {
		case PairwiseAlg:
			want = Standard(xs) // streaming pairwise degenerates to ST
		default:
			want = alg.Sum(xs)
		}
		if got := acc.Sum(); got != want {
			t.Errorf("%v: streaming %g != one-shot %g", alg, got, want)
		}
		acc.Reset()
		if acc.Sum() != 0 {
			t.Errorf("%v: Reset did not zero the accumulator", alg)
		}
	}
}

func TestFoldMatchesSequential(t *testing.T) {
	xs := hardSet(500, 9)
	// The ST monoid folded left-to-right is exactly the iterative sum.
	if got, want := reduce.Fold[float64](STMonoid{}, xs), Standard(xs); got != want {
		t.Errorf("ST fold %g != Standard %g", got, want)
	}
	// The PR monoid fold equals the streaming accumulator bitwise.
	m := DefaultPRConfig().Monoid()
	if got, want := reduce.Fold[PRState](m, xs), Prerounded(xs); got != want {
		t.Errorf("PR fold %g != streaming %g", got, want)
	}
}

func TestPairwiseBeatsStandardOnLongUniform(t *testing.T) {
	r := fpu.NewRNG(11)
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = r.Float64()
	}
	ref := bigref.Sum(xs)
	eST := bigref.Err(Standard(xs), ref)
	ePW := bigref.Err(Pairwise(xs), ref)
	if ePW > eST && eST > 0 {
		t.Errorf("pairwise error %g worse than standard %g on uniform data", ePW, eST)
	}
}

func TestSortedOrders(t *testing.T) {
	xs := []float64{0x1p53, 1, 1, 1, 1}
	asc := SortedAscending(xs)
	desc := SortedDescending(xs)
	// Ascending-by-magnitude accumulates the unit terms before they meet
	// 2^53 (the conventional-wisdom order for same-sign data): exact.
	if asc != 0x1p53+4 {
		t.Errorf("SortedAscending = %g, want %g", asc, 0x1p53+4)
	}
	// Descending absorbs each unit term into 2^53 one at a time
	// (ties-to-even keeps the even mantissa), losing all four.
	if desc != 0x1p53 {
		t.Errorf("SortedDescending = %g, want %g (absorption)", desc, 0x1p53)
	}
	// Input must be untouched.
	if xs[0] != 0x1p53 || xs[4] != 1 {
		t.Error("sorted sums mutated their input")
	}
}

func TestRegistryMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Algorithms {
		if !a.Valid() {
			t.Errorf("%v not valid", a)
		}
		if a.String() == "" || a.FullName() == "" {
			t.Errorf("%v missing names", a)
		}
		if seen[a.String()] {
			t.Errorf("duplicate abbreviation %q", a)
		}
		seen[a.String()] = true
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), back, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("ParseAlgorithm should reject unknown names")
	}
	// Cost ladder of the paper's four algorithms.
	for i := 1; i < len(PaperAlgorithms); i++ {
		if PaperAlgorithms[i-1].CostRank() >= PaperAlgorithms[i].CostRank() {
			t.Errorf("cost ladder violated at %v >= %v", PaperAlgorithms[i-1], PaperAlgorithms[i])
		}
	}
	if PreroundedAlg.Reproducible() != true || StandardAlg.Reproducible() {
		t.Error("Reproducible flags wrong")
	}
}

func TestOpsMatchMonoids(t *testing.T) {
	xs := hardSet(300, 21)
	for _, a := range Algorithms {
		op := a.Op()
		if op.Name() != a.String() && !(a == PairwiseAlg && op.Name() == "PW") {
			t.Errorf("op name %q for %v", op.Name(), a)
		}
		st := op.Leaf(xs[0])
		for _, x := range xs[1:] {
			st = op.Merge(st, op.Leaf(x))
		}
		got := op.Finalize(st)
		ref := bigref.SumFloat64(xs)
		if math.Abs(got-ref) > 1e-6*math.Abs(ref)+1e-9 {
			t.Errorf("%v op fold wildly off: %g vs %g", a, got, ref)
		}
	}
}

func TestKahanMonoidAccuracy(t *testing.T) {
	// The Kahan tree operator must be at least as accurate as plain ST
	// folds on hard sets (statistically).
	var eST, eK float64
	for i := 0; i < 30; i++ {
		xs := hardSet(2048, uint64(100+i))
		ref := bigref.Sum(xs)
		eST += bigref.Err(reduce.Fold[float64](STMonoid{}, xs), ref)
		eK += bigref.Err(reduce.Fold[KState](KahanMonoid{}, xs), ref)
	}
	if eK > eST {
		t.Errorf("Kahan fold error %g exceeds ST fold error %g", eK, eST)
	}
}

func TestNeumaierMonoidExactOnTwoSumCases(t *testing.T) {
	xs := []float64{1, 1e100, 1, -1e100}
	got := reduce.Fold[NState](NeumaierMonoid{}, xs)
	if got != 2 {
		t.Errorf("Neumaier monoid fold = %g, want 2", got)
	}
}

func TestReducePairwiseMatchesPairwiseST(t *testing.T) {
	xs := hardSet(1000, 33)
	got := reduce.Pairwise[float64](STMonoid{}, xs, nil)
	// reduce.Pairwise with ST is a balanced-tree sum; it must agree with
	// a reference balanced reduction within representable differences:
	// here we just require it to be finite and close to the exact sum.
	ref := bigref.SumFloat64(xs)
	if math.Abs(got-ref) > 1e-7*math.Abs(ref)+1e-9 {
		t.Errorf("balanced ST reduce too far off: %g vs %g", got, ref)
	}
	// Scratch reuse must not change the result.
	scratch := make([]float64, len(xs))
	if got2 := reduce.Pairwise[float64](STMonoid{}, xs, scratch); got2 != got {
		t.Errorf("scratch changed result: %g vs %g", got2, got)
	}
}

func TestEmptyAndSingleFold(t *testing.T) {
	if got := reduce.Fold[float64](STMonoid{}, nil); got != 0 {
		t.Errorf("empty fold = %g", got)
	}
	if got := reduce.Pairwise[float64](STMonoid{}, nil, nil); got != 0 {
		t.Errorf("empty pairwise = %g", got)
	}
	if got := reduce.Pairwise[float64](STMonoid{}, []float64{7}, nil); got != 7 {
		t.Errorf("single pairwise = %g", got)
	}
}
