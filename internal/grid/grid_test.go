package grid

import (
	"math"
	"testing"

	"repro/internal/fpu"
	"repro/internal/sum"
	"repro/internal/tree"
)

func TestGridBuilders(t *testing.T) {
	ks := []float64{1, 100, math.Inf(1)}
	drs := []int{0, 8}
	kdr := KDRGrid(1000, ks, drs)
	if len(kdr) != 6 {
		t.Fatalf("KDRGrid size %d", len(kdr))
	}
	for _, c := range kdr {
		if c.N != 1000 {
			t.Error("KDRGrid should fix n")
		}
	}
	ndr := NDRGrid([]int{10, 20}, 1, drs)
	if len(ndr) != 4 || ndr[0].Cond != 1 {
		t.Errorf("NDRGrid wrong: %v", ndr)
	}
	nk := NKGrid([]int{10, 20}, ks, 8)
	if len(nk) != 6 || nk[0].DynRange != 8 {
		t.Errorf("NKGrid wrong: %v", nk)
	}
}

func TestEvalCellShape(t *testing.T) {
	cell := CellSpec{N: 512, Cond: math.Inf(1), DynRange: 16}
	cfg := Config{Trials: 30, Shape: tree.Balanced, Seed: 1}
	res := EvalCell(cell, cfg, 7)
	if res.MeasuredDR != 16 {
		t.Errorf("measured dr = %d", res.MeasuredDR)
	}
	if !math.IsInf(res.MeasuredK, 1) {
		t.Errorf("measured k = %g, want Inf", res.MeasuredK)
	}
	// PR must be bitwise reproducible: stddev exactly 0, 1 distinct value.
	if res.StdDev[sum.PreroundedAlg] != 0 || res.Distinct[sum.PreroundedAlg] != 1 {
		t.Errorf("PR not reproducible in cell: sd=%g distinct=%d",
			res.StdDev[sum.PreroundedAlg], res.Distinct[sum.PreroundedAlg])
	}
	// ST must vary on an ill-conditioned wide-range cell.
	if res.Distinct[sum.StandardAlg] < 2 {
		t.Error("ST unexpectedly reproducible on hard cell")
	}
}

func TestStdDevLadderUnbalanced(t *testing.T) {
	// On serial (unbalanced) trees the compensated operators separate
	// clearly: sd(CP) <= sd(K) <= sd(ST).
	cell := CellSpec{N: 2048, Cond: math.Inf(1), DynRange: 24}
	res := EvalCell(cell, Config{Trials: 100, Shape: tree.Unbalanced, Seed: 11}, 11)
	st, k, cp := res.StdDev[sum.StandardAlg], res.StdDev[sum.KahanAlg], res.StdDev[sum.CompositeAlg]
	if cp > k || k > st {
		t.Errorf("stddev ladder violated: ST=%g K=%g CP=%g", st, k, cp)
	}
	if st == 0 {
		t.Error("ST should vary on this cell")
	}
}

func TestSweepOrderAndDeterminism(t *testing.T) {
	cells := KDRGrid(256, []float64{1, 1e4}, []int{0, 8})
	cfg := Config{Trials: 10, Shape: tree.Balanced, Seed: 5, Workers: 4}
	a := Sweep(cells, cfg)
	b := Sweep(cells, cfg)
	if len(a) != len(cells) {
		t.Fatalf("result count %d", len(a))
	}
	for i := range a {
		if a[i].Spec != cells[i] {
			t.Errorf("result %d out of order", i)
		}
		for _, alg := range sum.PaperAlgorithms {
			if a[i].StdDev[alg] != b[i].StdDev[alg] {
				t.Errorf("sweep not deterministic at cell %d alg %v", i, alg)
			}
		}
	}
}

func TestVariabilityGrowsWithK(t *testing.T) {
	// Fig 9's central observation: ST stddev grows strongly with k.
	cells := []CellSpec{
		{N: 1024, Cond: 1, DynRange: 8},
		{N: 1024, Cond: 1e6, DynRange: 8},
	}
	res := Sweep(cells, Config{Trials: 50, Shape: tree.Balanced, Seed: 2})
	low, high := res[0].RelStdDev[sum.StandardAlg], res[1].RelStdDev[sum.StandardAlg]
	if high <= low {
		t.Errorf("ST relative stddev did not grow with k: k=1 -> %g, k=1e6 -> %g", low, high)
	}
	if high < low*100 {
		t.Errorf("expected strong k dependence, got %gx", high/low)
	}
}

func TestCheapestAcceptable(t *testing.T) {
	res := CellResult{
		RelStdDev: map[sum.Algorithm]float64{
			sum.StandardAlg:   1e-10,
			sum.KahanAlg:      1e-13,
			sum.CompositeAlg:  1e-16,
			sum.PreroundedAlg: 0,
		},
	}
	if alg, ok := CheapestAcceptable(res, 1e-9); !ok || alg != sum.StandardAlg {
		t.Errorf("loose threshold: %v %v", alg, ok)
	}
	if alg, ok := CheapestAcceptable(res, 1e-12); !ok || alg != sum.KahanAlg {
		t.Errorf("mid threshold: %v %v", alg, ok)
	}
	if alg, ok := CheapestAcceptable(res, 1e-15); !ok || alg != sum.CompositeAlg {
		t.Errorf("tight threshold: %v %v", alg, ok)
	}
	if alg, ok := CheapestAcceptable(res, 0); !ok || alg != sum.PreroundedAlg {
		t.Errorf("zero threshold: %v %v", alg, ok)
	}
	none := CellResult{RelStdDev: map[sum.Algorithm]float64{sum.StandardAlg: 1}}
	if _, ok := CheapestAcceptable(none, 1e-20); ok {
		t.Error("nothing should qualify")
	}
}

func TestSeedStreamsDistinct(t *testing.T) {
	// Regression for the old seed^i*constant mixing: cell 0 received the
	// raw sweep seed and neighboring cells got correlated streams. Every
	// cell and every per-algorithm tree-sampling stream must be distinct,
	// and no cell may leak the unmixed base seed.
	for _, base := range []uint64{0, 1, 5, 0x9e3779b97f4a7c15} {
		seen := map[uint64]int{}
		for i := 0; i < 1000; i++ {
			s := cellSeed(base, i)
			if s == base {
				t.Errorf("seed %#x: cell %d got the unmixed sweep seed", base, i)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed %#x: cells %d and %d share stream %#x", base, prev, i, s)
			}
			seen[s] = i
		}
		// Per-algorithm streams live in their own domain: distinct from
		// each other and from every cell stream of the same base.
		for _, alg := range sum.Algorithms {
			s := algSeed(base, alg)
			if s == base {
				t.Errorf("seed %#x: alg %v got the unmixed cell seed", base, alg)
			}
			if prev, dup := seen[s]; dup {
				t.Errorf("seed %#x: alg %v collides with cell %d", base, alg, prev)
			}
			seen[s] = -1 - int(alg)
		}
	}
}

func TestAlgStreamsProduceDistinctTrees(t *testing.T) {
	// The per-algorithm RNGs must be independent streams, not shifted
	// copies: their leading outputs share no values.
	seen := map[uint64]sum.Algorithm{}
	for _, alg := range sum.Algorithms {
		rng := fpu.NewRNG(algSeed(7, alg))
		for j := 0; j < 64; j++ {
			v := rng.Uint64()
			if other, dup := seen[v]; dup {
				t.Fatalf("algs %v and %v share RNG output %#x", other, alg, v)
			}
			seen[v] = alg
		}
	}
}

func TestCheapestAcceptableDeterministicOrder(t *testing.T) {
	// All six registered algorithms qualify; the choice must be the
	// cheapest by CostRank (ties broken by id) on every call, immune to
	// Go's randomized map iteration order.
	res := CellResult{RelStdDev: map[sum.Algorithm]float64{}}
	for _, alg := range sum.Algorithms {
		res.RelStdDev[alg] = 0
	}
	for trial := 0; trial < 500; trial++ {
		alg, ok := CheapestAcceptable(res, 1e-9)
		if !ok || alg != sum.StandardAlg {
			t.Fatalf("trial %d: got %v ok=%v, want ST", trial, alg, ok)
		}
	}
	// Drop the two cheapest: the next by cost order must win, stably
	// (BN, now ranked directly after the plain loops).
	res.RelStdDev[sum.StandardAlg] = 1
	res.RelStdDev[sum.PairwiseAlg] = math.NaN()
	for trial := 0; trial < 500; trial++ {
		alg, ok := CheapestAcceptable(res, 1e-9)
		if !ok || alg != sum.BinnedAlg {
			t.Fatalf("trial %d: got %v ok=%v, want BN", trial, alg, ok)
		}
	}
	// Drop BN as well: the Kahan rung follows.
	res.RelStdDev[sum.BinnedAlg] = 1
	for trial := 0; trial < 500; trial++ {
		alg, ok := CheapestAcceptable(res, 1e-9)
		if !ok || alg != sum.KahanAlg {
			t.Fatalf("trial %d: got %v ok=%v, want K", trial, alg, ok)
		}
	}
}

func TestClassifyMonotoneInThreshold(t *testing.T) {
	// As the threshold tightens, the required algorithm's cost rank must
	// not decrease (Fig 12's progression).
	cells := KDRGrid(512, []float64{1, 1e3, math.Inf(1)}, []int{0, 16})
	res := Sweep(cells, Config{Trials: 40, Shape: tree.Balanced, Seed: 3})
	thresholds := []float64{1e-9, 1e-12, 1e-15, 0}
	classes := Classify(res, thresholds)
	if len(classes) != len(thresholds) {
		t.Fatal("classification row count")
	}
	for i := range cells {
		prevRank := -1
		for ti := range thresholds {
			c := classes[ti][i]
			rank := 1 << 30 // "nothing qualifies" is costliest
			if c >= 0 {
				rank = sum.Algorithm(c).CostRank()
			}
			if rank < prevRank {
				t.Errorf("cell %d: rank decreased when tightening threshold (%d -> %d)",
					i, prevRank, rank)
			}
			prevRank = rank
		}
	}
	// At threshold 0 only algorithms that were bitwise reproducible on
	// the cell qualify; PR always is, so every cell must classify, and
	// whatever cheaper algorithm wins must itself have been bitwise
	// reproducible over the sample (K or CP can legitimately achieve
	// that on easy cells).
	for i, c := range classes[len(thresholds)-1] {
		if c < 0 {
			t.Errorf("cell %d at t=0: nothing qualified, but PR always does", i)
			continue
		}
		if res[i].Distinct[sum.Algorithm(c)] != 1 {
			t.Errorf("cell %d: classified algorithm %v was not reproducible", i, sum.Algorithm(c))
		}
	}
}
