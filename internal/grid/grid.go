// Package grid implements the parameter-space methodology of the paper's
// Section V-C (illustrated by its Fig 8): the spaces (k, dr), (n, dr),
// and (n, k) are covered by a grid of cells; for each cell an operand
// set with the cell's parameters is generated and summed over many
// distinct reduction trees; and the cell is scored by the standard
// deviation of the errors — the visualized "level of irreproducibility".
//
// Cells are evaluated concurrently (one worker per CPU), since each cell
// is an independent simulation.
package grid

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/tree"
)

// CellSpec locates one cell in the parameter space.
type CellSpec struct {
	N        int
	Cond     float64
	DynRange int
}

// String renders the cell coordinates.
func (c CellSpec) String() string {
	return fmt.Sprintf("(n=%d, k=%g, dr=%d)", c.N, c.Cond, c.DynRange)
}

// CellResult is the measured irreproducibility of one cell.
type CellResult struct {
	Spec CellSpec
	// MeasuredK and MeasuredDR are the achieved properties of the
	// generated set (the generator hits dr exactly and k approximately).
	MeasuredK  float64
	MeasuredDR int
	// StdDev[alg] is the standard deviation of the absolute errors over
	// the sampled reduction trees.
	StdDev map[sum.Algorithm]float64
	// RelStdDev[alg] is StdDev normalized by |exact sum| — the
	// conditioning-aware variability that shades Figs 9–12 (the paper's
	// k axis acts through the relative, not absolute, error). For cells
	// whose exact sum is zero it is 0 when the algorithm is perfectly
	// reproducible and +Inf otherwise.
	RelStdDev map[sum.Algorithm]float64
	// MaxErr[alg] is the worst absolute error observed.
	MaxErr map[sum.Algorithm]float64
	// Distinct[alg] counts distinct result bit patterns; 1 = bitwise
	// reproducible over the sample.
	Distinct map[sum.Algorithm]int
}

// Config tunes a sweep.
type Config struct {
	// Algorithms to evaluate per cell (default: the paper's four).
	Algorithms []sum.Algorithm
	// Trials is the number of distinct reduction trees per cell
	// (the paper uses 1000 balanced trees).
	Trials int
	// Shape of the reduction trees (the paper's grids use Balanced).
	Shape tree.Shape
	// Seed makes the sweep reproducible.
	Seed uint64
	// Workers bounds concurrency (default: GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if len(c.Algorithms) == 0 {
		c.Algorithms = sum.PaperAlgorithms
	}
	if c.Trials <= 0 {
		c.Trials = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// KDRGrid enumerates the (k, dr) space at fixed n — Fig 9's axes.
func KDRGrid(n int, ks []float64, drs []int) []CellSpec {
	var cells []CellSpec
	for _, dr := range drs {
		for _, k := range ks {
			cells = append(cells, CellSpec{N: n, Cond: k, DynRange: dr})
		}
	}
	return cells
}

// NDRGrid enumerates the (n, dr) space at fixed k — Fig 10's axes.
func NDRGrid(ns []int, k float64, drs []int) []CellSpec {
	var cells []CellSpec
	for _, dr := range drs {
		for _, n := range ns {
			cells = append(cells, CellSpec{N: n, Cond: k, DynRange: dr})
		}
	}
	return cells
}

// NKGrid enumerates the (n, k) space at fixed dr — Fig 11's axes.
func NKGrid(ns []int, ks []float64, dr int) []CellSpec {
	var cells []CellSpec
	for _, k := range ks {
		for _, n := range ns {
			cells = append(cells, CellSpec{N: n, Cond: k, DynRange: dr})
		}
	}
	return cells
}

// Sweep evaluates every cell and returns results in the cells' order.
func Sweep(cells []CellSpec, cfg Config) []CellResult {
	cfg = cfg.withDefaults()
	out := make([]CellResult, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, cell := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cell CellSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = EvalCell(cell, cfg, cellSeed(cfg.Seed, i))
		}(i, cell)
	}
	wg.Wait()
	return out
}

// cellSeed derives cell i's generation seed from the sweep seed. The
// full splitmix mix guarantees distinct streams per cell; the previous
// seed^i*constant arithmetic left cell 0 with the raw sweep seed and
// correlated neighboring cells.
func cellSeed(sweepSeed uint64, i int) uint64 {
	return fpu.MixSeed(sweepSeed, uint64(i))
}

// algSeed derives the tree-sampling RNG seed for one algorithm within a
// cell. The stream index is offset into its own domain so per-algorithm
// streams can never collide with per-cell streams split off the same
// base seed.
func algSeed(cellSeed uint64, alg sum.Algorithm) uint64 {
	return fpu.MixSeed(cellSeed, 0xa15<<32|uint64(alg))
}

// EvalCell generates the cell's operand set and measures per-algorithm
// error spreads over cfg.Trials random reduction trees.
func EvalCell(cell CellSpec, cfg Config, seed uint64) CellResult {
	cfg = cfg.withDefaults()
	xs := gen.Spec{
		N:        cell.N,
		Cond:     cell.Cond,
		DynRange: cell.DynRange,
		Seed:     seed,
	}.Generate()
	ref := bigref.SumFloat64(xs)
	res := CellResult{
		Spec:       cell,
		MeasuredK:  metrics.CondNumber(xs),
		MeasuredDR: metrics.DynRange(xs),
		StdDev:     make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		RelStdDev:  make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		MaxErr:     make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		Distinct:   make(map[sum.Algorithm]int, len(cfg.Algorithms)),
	}
	for _, alg := range cfg.Algorithms {
		rng := fpu.NewRNG(algSeed(seed, alg))
		sums := AlgSpread(alg, cfg.Shape, xs, cfg.Trials, rng)
		st := metrics.ErrorStats(sums, ref)
		res.StdDev[alg] = st.StdDev
		res.MaxErr[alg] = st.Max
		res.Distinct[alg] = metrics.DistinctValues(sums)
		switch {
		case st.StdDev == 0:
			res.RelStdDev[alg] = 0
		case ref == 0:
			res.RelStdDev[alg] = math.Inf(1)
		default:
			res.RelStdDev[alg] = st.StdDev / math.Abs(ref)
		}
	}
	return res
}

// AlgSpread runs trials random-assignment trees of the given shape over
// xs with algorithm alg, returning the root sums (dynamic dispatch over
// the generic tree executors).
func AlgSpread(alg sum.Algorithm, shape tree.Shape, xs []float64, trials int, rng *fpu.RNG) []float64 {
	switch alg {
	case sum.StandardAlg, sum.PairwiseAlg:
		return tree.Spread[float64](sum.STMonoid{}, shape, xs, trials, rng)
	case sum.KahanAlg:
		return tree.Spread[sum.KState](sum.KahanMonoid{}, shape, xs, trials, rng)
	case sum.NeumaierAlg:
		return tree.Spread[sum.NState](sum.NeumaierMonoid{}, shape, xs, trials, rng)
	case sum.CompositeAlg:
		return tree.Spread(sum.CPMonoid{}, shape, xs, trials, rng)
	case sum.PreroundedAlg:
		return tree.Spread[sum.PRState](sum.DefaultPRConfig().Monoid(), shape, xs, trials, rng)
	}
	panic("grid: invalid algorithm " + alg.String())
}

// CheapestAcceptable returns the cheapest algorithm (by CostRank) whose
// relative error standard deviation in res is at or below threshold —
// the Fig 12 classification. Candidates are visited in deterministic
// (CostRank, algorithm id) order, never by ranging over the map, so a
// tie between equal-cost algorithms always resolves to the lowest id
// instead of flipping with Go's randomized map iteration. ok is false
// when none qualifies.
func CheapestAcceptable(res CellResult, threshold float64) (alg sum.Algorithm, ok bool) {
	algs := make([]sum.Algorithm, 0, len(res.RelStdDev))
	for a := range res.RelStdDev {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool {
		ri, rj := algs[i].CostRank(), algs[j].CostRank()
		if ri != rj {
			return ri < rj
		}
		return algs[i] < algs[j]
	})
	for _, a := range algs {
		if sd := res.RelStdDev[a]; sd <= threshold && !math.IsNaN(sd) {
			return a, true
		}
	}
	return 0, false
}

// Classify maps every cell to its cheapest acceptable algorithm for each
// threshold, returning one classification slice per threshold (entries
// are -1 where no algorithm qualifies). This is the full Fig 12 series.
func Classify(results []CellResult, thresholds []float64) [][]int {
	out := make([][]int, len(thresholds))
	for ti, th := range thresholds {
		row := make([]int, len(results))
		for i, res := range results {
			if alg, ok := CheapestAcceptable(res, th); ok {
				row[i] = int(alg)
			} else {
				row[i] = -1
			}
		}
		out[ti] = row
	}
	return out
}
