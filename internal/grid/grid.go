// Package grid implements the parameter-space methodology of the paper's
// Section V-C (illustrated by its Fig 8): the spaces (k, dr), (n, dr),
// and (n, k) are covered by a grid of cells; for each cell an operand
// set with the cell's parameters is generated and summed over many
// distinct reduction trees; and the cell is scored by the standard
// deviation of the errors — the visualized "level of irreproducibility".
//
// Two evaluation engines are provided. The default fused engine samples
// one shared plan stream per cell and walks every tree with all
// configured algorithms in lockstep (tree.MultiExecutor): the paper's
// question — how does each algorithm respond to the same tree
// nondeterminism — answered with one operand permutation per tree
// instead of one per tree per algorithm, streaming statistics instead
// of materialized sum slices, and a flat (cell, trial-block) work queue
// so grids with a few huge cells do not serialize on their largest
// cell. The legacy engine (per-algorithm plan streams, per-cell
// scheduling) is kept for equivalence testing and benchmarking.
//
// Both engines are deterministic: results are bitwise-identical at any
// worker count.
package grid

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bigref"
	"repro/internal/binned"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/tree"
)

// CellSpec locates one cell in the parameter space.
type CellSpec struct {
	N        int
	Cond     float64
	DynRange int
}

// String renders the cell coordinates.
func (c CellSpec) String() string {
	return fmt.Sprintf("(n=%d, k=%g, dr=%d)", c.N, c.Cond, c.DynRange)
}

// CellResult is the measured irreproducibility of one cell.
type CellResult struct {
	Spec CellSpec
	// MeasuredK and MeasuredDR are the achieved properties of the
	// generated set (the generator hits dr exactly and k approximately).
	MeasuredK  float64
	MeasuredDR int
	// StdDev[alg] is the standard deviation of the absolute errors over
	// the sampled reduction trees.
	StdDev map[sum.Algorithm]float64
	// RelStdDev[alg] is StdDev normalized by |exact sum| — the
	// conditioning-aware variability that shades Figs 9–12 (the paper's
	// k axis acts through the relative, not absolute, error). For cells
	// whose exact sum is zero it is 0 when the algorithm is perfectly
	// reproducible and +Inf otherwise.
	RelStdDev map[sum.Algorithm]float64
	// MaxErr[alg] is the worst absolute error observed.
	MaxErr map[sum.Algorithm]float64
	// Distinct[alg] counts distinct result bit patterns; 1 = bitwise
	// reproducible over the sample.
	Distinct map[sum.Algorithm]int
}

// Engine selects a sweep's cell-evaluation engine.
type Engine uint8

const (
	// FusedEngine — the zero value, so the default — evaluates all
	// algorithms over one shared plan stream per cell with lockstep
	// execution, streaming statistics, and flat trial-block scheduling.
	FusedEngine Engine = iota
	// LegacyEngine gives each algorithm its own independent plan stream
	// and schedules whole cells; kept for equivalence tests and the
	// BenchmarkSweepLegacy baseline.
	LegacyEngine
)

// String names the engine.
func (e Engine) String() string {
	if e == LegacyEngine {
		return "legacy"
	}
	return "fused"
}

// Config tunes a sweep.
type Config struct {
	// Algorithms to evaluate per cell (default: the paper's four).
	Algorithms []sum.Algorithm
	// Trials is the number of distinct reduction trees per cell
	// (the paper uses 1000 balanced trees).
	Trials int
	// Shape of the reduction trees (the paper's grids use Balanced).
	Shape tree.Shape
	// Seed makes the sweep reproducible.
	Seed uint64
	// Workers bounds concurrency (default: GOMAXPROCS). Results are
	// bitwise-identical at any worker count.
	Workers int
	// Fused selects the evaluation engine (default FusedEngine).
	Fused Engine
	// TrialBlock is the number of trials per fused work unit (default
	// 32). Block boundaries seed the per-block plan streams, so
	// TrialBlock is part of the experiment definition — changing it
	// changes the sampled trees, whereas Workers never does.
	TrialBlock int
}

func (c Config) withDefaults() Config {
	if len(c.Algorithms) == 0 {
		c.Algorithms = sum.PaperAlgorithms
	}
	if c.Trials <= 0 {
		c.Trials = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.TrialBlock <= 0 {
		c.TrialBlock = 32
	}
	return c
}

// blocks returns the number of trial blocks per cell.
func (c Config) blocks() int { return (c.Trials + c.TrialBlock - 1) / c.TrialBlock }

// KDRGrid enumerates the (k, dr) space at fixed n — Fig 9's axes.
func KDRGrid(n int, ks []float64, drs []int) []CellSpec {
	var cells []CellSpec
	for _, dr := range drs {
		for _, k := range ks {
			cells = append(cells, CellSpec{N: n, Cond: k, DynRange: dr})
		}
	}
	return cells
}

// NDRGrid enumerates the (n, dr) space at fixed k — Fig 10's axes.
func NDRGrid(ns []int, k float64, drs []int) []CellSpec {
	var cells []CellSpec
	for _, dr := range drs {
		for _, n := range ns {
			cells = append(cells, CellSpec{N: n, Cond: k, DynRange: dr})
		}
	}
	return cells
}

// NKGrid enumerates the (n, k) space at fixed dr — Fig 11's axes.
func NKGrid(ns []int, ks []float64, dr int) []CellSpec {
	var cells []CellSpec
	for _, k := range ks {
		for _, n := range ns {
			cells = append(cells, CellSpec{N: n, Cond: k, DynRange: dr})
		}
	}
	return cells
}

// Sweep evaluates every cell and returns results in the cells' order.
// Sweep(cells, cfg)[i] is always identical to EvalCell(cells[i], cfg,
// cellSeed(cfg.Seed, i)), whatever the engine or worker count.
func Sweep(cells []CellSpec, cfg Config) []CellResult {
	cfg = cfg.withDefaults()
	if cfg.Fused == LegacyEngine {
		return sweepLegacy(cells, cfg)
	}
	return sweepFused(cells, cfg)
}

// sweepLegacy is the pre-fused scheduler: one goroutine per cell behind
// a semaphore. A grid with a few huge-n cells serializes on its largest
// cell here — the pathology sweepFused's flat queue removes.
func sweepLegacy(cells []CellSpec, cfg Config) []CellResult {
	out := make([]CellResult, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, cell := range cells {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, cell CellSpec) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i] = EvalCell(cell, cfg, cellSeed(cfg.Seed, i))
		}(i, cell)
	}
	wg.Wait()
	return out
}

// sweepFused schedules a flat queue of (cell, trial-block) units over a
// bounded worker pool. Workers pull units with an atomic cursor, so all
// of them can cooperate on the blocks of one expensive cell instead of
// idling while a single goroutine grinds through it. Each unit writes
// its per-algorithm streams into its own slot; per-cell results are
// then merged in ascending block order, keeping the output
// bitwise-stable at any worker count (the invariant internal/parallel
// established for shared-memory reductions).
func sweepFused(cells []CellSpec, cfg Config) []CellResult {
	type unit struct{ cell, block int }
	nb := cfg.blocks()
	units := make([]unit, 0, len(cells)*nb)
	for ci := range cells {
		for b := 0; b < nb; b++ {
			units = append(units, unit{ci, b})
		}
	}
	data := make([]cellData, len(cells))
	partials := make([][][]*metrics.ErrorStream, len(cells))
	for ci := range partials {
		partials[ci] = make([][]*metrics.ErrorStream, nb)
	}
	workers := cfg.Workers
	if workers > len(units) {
		workers = len(units)
	}
	var cursor int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-worker reusable state: lanes, lockstep executor, plan
			// source, and output slot all reach a zero-allocation steady
			// state across every unit this worker processes.
			fw := newFusedWorker(cfg)
			for {
				i := int(atomic.AddInt64(&cursor, 1)) - 1
				if i >= len(units) {
					return
				}
				u := units[i]
				seed := cellSeed(cfg.Seed, u.cell)
				cd := &data[u.cell]
				cd.init(cells[u.cell], seed)
				partials[u.cell][u.block] = fw.evalBlock(cfg, cd, seed, u.block)
			}
		}()
	}
	wg.Wait()
	out := make([]CellResult, len(cells))
	for ci := range cells {
		out[ci] = mergeCellResult(cells[ci], cfg, &data[ci], partials[ci])
	}
	return out
}

// cellData is one cell's lazily generated operand set, shared by all of
// the cell's trial blocks (whichever worker touches the cell first
// generates it).
type cellData struct {
	once sync.Once
	xs   []float64
	ref  float64
	k    float64
	dr   int
}

func (cd *cellData) init(cell CellSpec, seed uint64) {
	cd.once.Do(func() {
		cd.xs = gen.Spec{
			N:        cell.N,
			Cond:     cell.Cond,
			DynRange: cell.DynRange,
			Seed:     seed,
		}.Generate()
		cd.ref = bigref.SumFloat64(cd.xs)
		cd.k = metrics.CondNumber(cd.xs)
		cd.dr = metrics.DynRange(cd.xs)
	})
}

// fusedWorker owns one worker's reusable evaluation state.
type fusedWorker struct {
	me  *tree.MultiExecutor
	ps  *tree.PlanSource
	out []float64
}

func newFusedWorker(cfg Config) *fusedWorker {
	return &fusedWorker{
		me:  tree.NewMultiExecutor(Lanes(cfg.Algorithms)...),
		ps:  tree.NewPlanSource(cfg.Shape, 0, 0),
		out: make([]float64, len(cfg.Algorithms)),
	}
}

// evalBlock evaluates one cell's trials [block*TrialBlock, min(...,
// Trials)) over the block's plan stream, returning one error stream per
// configured algorithm. Every plan is permuted once and walked by all
// algorithms in lockstep.
func (w *fusedWorker) evalBlock(cfg Config, cd *cellData, cellSeed uint64, block int) []*metrics.ErrorStream {
	lo := block * cfg.TrialBlock
	hi := lo + cfg.TrialBlock
	if hi > cfg.Trials {
		hi = cfg.Trials
	}
	streams := make([]*metrics.ErrorStream, len(cfg.Algorithms))
	for i := range streams {
		streams[i] = metrics.NewErrorStream(cd.ref, hi-lo)
	}
	w.ps.Reset(cfg.Shape, len(cd.xs), blockSeed(cellSeed, block))
	for t := lo; t < hi; t++ {
		w.me.Run(w.ps.Next(), cd.xs, w.out)
		for i, s := range w.out {
			streams[i].Observe(s)
		}
	}
	return streams
}

// mergeCellResult folds a cell's per-block streams (in ascending block
// order — the deterministic merge) into its CellResult.
func mergeCellResult(cell CellSpec, cfg Config, cd *cellData, blocks [][]*metrics.ErrorStream) CellResult {
	res := CellResult{
		Spec:       cell,
		MeasuredK:  cd.k,
		MeasuredDR: cd.dr,
		StdDev:     make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		RelStdDev:  make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		MaxErr:     make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		Distinct:   make(map[sum.Algorithm]int, len(cfg.Algorithms)),
	}
	for ai, alg := range cfg.Algorithms {
		agg := blocks[0][ai]
		for b := 1; b < len(blocks); b++ {
			agg.Merge(blocks[b][ai])
		}
		sd := agg.StdDev()
		res.StdDev[alg] = sd
		res.MaxErr[alg] = agg.Max()
		res.Distinct[alg] = agg.Distinct()
		switch {
		case sd == 0:
			res.RelStdDev[alg] = 0
		case cd.ref == 0:
			res.RelStdDev[alg] = math.Inf(1)
		default:
			res.RelStdDev[alg] = sd / math.Abs(cd.ref)
		}
	}
	return res
}

// blockSeed derives the plan-stream seed of one trial block within a
// cell. Blocks occupy their own stream domain, disjoint from both the
// per-cell domain (cellSeed) and the legacy per-algorithm domain
// (algSeed) split off the same base seed.
func blockSeed(cellSeed uint64, block int) uint64 {
	return fpu.MixSeed(cellSeed, 0xb10c<<32|uint64(block))
}

// Lanes returns one lockstep-execution lane per algorithm, for use with
// tree.MultiExecutor. Each lane is the exact single-algorithm executor,
// so fused roots are bitwise-identical to Executor.Run on the same
// plan.
func Lanes(algs []sum.Algorithm) []tree.Lane {
	out := make([]tree.Lane, len(algs))
	for i, alg := range algs {
		out[i] = AlgLane(alg)
	}
	return out
}

// AlgLane returns the lockstep lane for one algorithm.
func AlgLane(alg sum.Algorithm) tree.Lane {
	switch alg {
	case sum.StandardAlg, sum.PairwiseAlg:
		return tree.NewLane[float64](sum.STMonoid{})
	case sum.KahanAlg:
		return tree.NewLane[sum.KState](sum.KahanMonoid{})
	case sum.NeumaierAlg:
		return tree.NewLane[sum.NState](sum.NeumaierMonoid{})
	case sum.CompositeAlg:
		return tree.NewLane(sum.CPMonoid{})
	case sum.PreroundedAlg:
		return tree.NewLane[sum.PRState](sum.DefaultPRConfig().Monoid())
	case sum.BinnedAlg:
		return tree.NewLane[binned.State](sum.BNMonoid{})
	}
	panic("grid: invalid algorithm " + alg.String())
}

// cellSeed derives cell i's generation seed from the sweep seed. The
// full splitmix mix guarantees distinct streams per cell; the previous
// seed^i*constant arithmetic left cell 0 with the raw sweep seed and
// correlated neighboring cells.
func cellSeed(sweepSeed uint64, i int) uint64 {
	return fpu.MixSeed(sweepSeed, uint64(i))
}

// algSeed derives the tree-sampling RNG seed for one algorithm within a
// cell. The stream index is offset into its own domain so per-algorithm
// streams can never collide with per-cell streams split off the same
// base seed.
func algSeed(cellSeed uint64, alg sum.Algorithm) uint64 {
	return fpu.MixSeed(cellSeed, 0xa15<<32|uint64(alg))
}

// EvalCell generates the cell's operand set and measures per-algorithm
// error spreads over cfg.Trials random reduction trees, using the
// engine selected by cfg.Fused. The two engines sample different (both
// deterministic) plan streams: the fused engine feeds one shared
// stream to all algorithms, the legacy engine one independent stream
// per algorithm.
func EvalCell(cell CellSpec, cfg Config, seed uint64) CellResult {
	cfg = cfg.withDefaults()
	if cfg.Fused == LegacyEngine {
		return evalCellLegacy(cell, cfg, seed)
	}
	var cd cellData
	cd.init(cell, seed)
	w := newFusedWorker(cfg)
	blocks := make([][]*metrics.ErrorStream, cfg.blocks())
	for b := range blocks {
		blocks[b] = w.evalBlock(cfg, &cd, seed, b)
	}
	return mergeCellResult(cell, cfg, &cd, blocks)
}

// evalCellLegacy is the pre-fused evaluation: every algorithm draws its
// own plan stream, materializes its sums slice, and summarizes it after
// the fact.
func evalCellLegacy(cell CellSpec, cfg Config, seed uint64) CellResult {
	xs := gen.Spec{
		N:        cell.N,
		Cond:     cell.Cond,
		DynRange: cell.DynRange,
		Seed:     seed,
	}.Generate()
	ref := bigref.SumFloat64(xs)
	res := CellResult{
		Spec:       cell,
		MeasuredK:  metrics.CondNumber(xs),
		MeasuredDR: metrics.DynRange(xs),
		StdDev:     make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		RelStdDev:  make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		MaxErr:     make(map[sum.Algorithm]float64, len(cfg.Algorithms)),
		Distinct:   make(map[sum.Algorithm]int, len(cfg.Algorithms)),
	}
	for _, alg := range cfg.Algorithms {
		rng := fpu.NewRNG(algSeed(seed, alg))
		sums := AlgSpread(alg, cfg.Shape, xs, cfg.Trials, rng)
		st := metrics.ErrorStats(sums, ref)
		res.StdDev[alg] = st.StdDev
		res.MaxErr[alg] = st.Max
		res.Distinct[alg] = metrics.DistinctValues(sums)
		switch {
		case st.StdDev == 0:
			res.RelStdDev[alg] = 0
		case ref == 0:
			res.RelStdDev[alg] = math.Inf(1)
		default:
			res.RelStdDev[alg] = st.StdDev / math.Abs(ref)
		}
	}
	return res
}

// AlgSpread runs trials random-assignment trees of the given shape over
// xs with algorithm alg, returning the root sums (dynamic dispatch over
// the generic tree executors).
func AlgSpread(alg sum.Algorithm, shape tree.Shape, xs []float64, trials int, rng *fpu.RNG) []float64 {
	switch alg {
	case sum.StandardAlg, sum.PairwiseAlg:
		return tree.Spread[float64](sum.STMonoid{}, shape, xs, trials, rng)
	case sum.KahanAlg:
		return tree.Spread[sum.KState](sum.KahanMonoid{}, shape, xs, trials, rng)
	case sum.NeumaierAlg:
		return tree.Spread[sum.NState](sum.NeumaierMonoid{}, shape, xs, trials, rng)
	case sum.CompositeAlg:
		return tree.Spread(sum.CPMonoid{}, shape, xs, trials, rng)
	case sum.PreroundedAlg:
		return tree.Spread[sum.PRState](sum.DefaultPRConfig().Monoid(), shape, xs, trials, rng)
	case sum.BinnedAlg:
		return tree.Spread[binned.State](sum.BNMonoid{}, shape, xs, trials, rng)
	}
	panic("grid: invalid algorithm " + alg.String())
}

// CheapestAcceptable returns the cheapest algorithm (by CostRank) whose
// relative error standard deviation in res is at or below threshold —
// the Fig 12 classification. Candidates are visited in deterministic
// (CostRank, algorithm id) order, never by ranging over the map, so a
// tie between equal-cost algorithms always resolves to the lowest id
// instead of flipping with Go's randomized map iteration. ok is false
// when none qualifies.
func CheapestAcceptable(res CellResult, threshold float64) (alg sum.Algorithm, ok bool) {
	algs := make([]sum.Algorithm, 0, len(res.RelStdDev))
	for a := range res.RelStdDev {
		algs = append(algs, a)
	}
	sort.Slice(algs, func(i, j int) bool {
		ri, rj := algs[i].CostRank(), algs[j].CostRank()
		if ri != rj {
			return ri < rj
		}
		return algs[i] < algs[j]
	})
	for _, a := range algs {
		if sd := res.RelStdDev[a]; sd <= threshold && !math.IsNaN(sd) {
			return a, true
		}
	}
	return 0, false
}

// Classify maps every cell to its cheapest acceptable algorithm for each
// threshold, returning one classification slice per threshold (entries
// are -1 where no algorithm qualifies). This is the full Fig 12 series.
func Classify(results []CellResult, thresholds []float64) [][]int {
	out := make([][]int, len(thresholds))
	for ti, th := range thresholds {
		row := make([]int, len(results))
		for i, res := range results {
			if alg, ok := CheapestAcceptable(res, th); ok {
				row[i] = int(alg)
			} else {
				row[i] = -1
			}
		}
		out[ti] = row
	}
	return out
}
