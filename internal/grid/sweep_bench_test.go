package grid

import (
	"math"
	"testing"

	"repro/internal/tree"
)

// benchCells is a representative Fig 9-style grid: one n, a spread of
// condition numbers and dynamic ranges. Both engines sweep the identical
// cell list and trial count; only the evaluation strategy differs.
func benchCells() []CellSpec {
	return KDRGrid(2048, []float64{1, 1e4, 1e8}, []int{0, 16, 32})
}

func benchSweep(b *testing.B, engine Engine, shape tree.Shape) {
	cells := benchCells()
	cfg := Config{
		Trials:  64,
		Shape:   shape,
		Seed:    42,
		Fused:   engine,
		Workers: 4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Sweep(cells, cfg)
		if len(res) != len(cells) {
			b.Fatal("short sweep")
		}
	}
}

func BenchmarkSweepFusedBalanced(b *testing.B)  { benchSweep(b, FusedEngine, tree.Balanced) }
func BenchmarkSweepLegacyBalanced(b *testing.B) { benchSweep(b, LegacyEngine, tree.Balanced) }
func BenchmarkSweepFusedRandom(b *testing.B)    { benchSweep(b, FusedEngine, tree.Random) }
func BenchmarkSweepLegacyRandom(b *testing.B)   { benchSweep(b, LegacyEngine, tree.Random) }

// Single-cell benchmarks isolate per-trial evaluation cost from
// scheduling: same operand set, same trial count, no worker pool.
func benchEvalCell(b *testing.B, engine Engine) {
	cell := CellSpec{N: 4096, Cond: math.Inf(1), DynRange: 24}
	cfg := Config{Trials: 128, Shape: tree.Balanced, Seed: 7, Fused: engine}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalCell(cell, cfg, 7)
	}
}

func BenchmarkSweepFusedEvalCell(b *testing.B)  { benchEvalCell(b, FusedEngine) }
func BenchmarkSweepLegacyEvalCell(b *testing.B) { benchEvalCell(b, LegacyEngine) }
