package grid

import (
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/tree"
)

// bitsEqual compares two floats including NaN/Inf payloads.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameCellResult(t *testing.T, label string, a, b CellResult, algs []sum.Algorithm) {
	t.Helper()
	if a.Spec != b.Spec || a.MeasuredDR != b.MeasuredDR || !bitsEqual(a.MeasuredK, b.MeasuredK) {
		t.Errorf("%s: cell header differs: %+v vs %+v", label, a.Spec, b.Spec)
	}
	for _, alg := range algs {
		if !bitsEqual(a.StdDev[alg], b.StdDev[alg]) {
			t.Errorf("%s alg %v: StdDev %x != %x", label, alg,
				math.Float64bits(a.StdDev[alg]), math.Float64bits(b.StdDev[alg]))
		}
		if !bitsEqual(a.RelStdDev[alg], b.RelStdDev[alg]) {
			t.Errorf("%s alg %v: RelStdDev differs", label, alg)
		}
		if !bitsEqual(a.MaxErr[alg], b.MaxErr[alg]) {
			t.Errorf("%s alg %v: MaxErr differs", label, alg)
		}
		if a.Distinct[alg] != b.Distinct[alg] {
			t.Errorf("%s alg %v: Distinct %d != %d", label, alg, a.Distinct[alg], b.Distinct[alg])
		}
	}
}

func TestSweepBitwiseStableAcrossWorkerCounts(t *testing.T) {
	// The flat (cell, trial-block) queue must produce bitwise-identical
	// results at any worker count, including ragged Trials that leave the
	// final block short.
	cells := KDRGrid(257, []float64{1, 1e6, math.Inf(1)}, []int{0, 12})
	base := Config{
		Algorithms: sum.Algorithms, // all six lanes
		Trials:     33,
		TrialBlock: 8, // 5 blocks, last holds a single trial
		Shape:      tree.Balanced,
		Seed:       21,
		Workers:    1,
	}
	ref := Sweep(cells, base)
	for _, workers := range []int{2, 3, 8, 64} {
		cfg := base
		cfg.Workers = workers
		got := Sweep(cells, cfg)
		for i := range cells {
			sameCellResult(t, cells[i].String(), got[i], ref[i], base.Algorithms)
		}
	}
}

func TestSweepMatchesEvalCell(t *testing.T) {
	// The documented invariant, for both engines: Sweep(cells, cfg)[i] ==
	// EvalCell(cells[i], cfg, cellSeed(cfg.Seed, i)).
	cells := KDRGrid(128, []float64{1, 1e4}, []int{0, 8})
	for _, engine := range []Engine{FusedEngine, LegacyEngine} {
		cfg := Config{Trials: 20, Shape: tree.Unbalanced, Seed: 9, Fused: engine, Workers: 3}
		swept := Sweep(cells, cfg)
		for i, cell := range cells {
			single := EvalCell(cell, cfg, cellSeed(cfg.Seed, i))
			sameCellResult(t, engine.String()+" "+cell.String(), swept[i], single, sum.PaperAlgorithms)
		}
	}
}

// singleAlgRunners builds one independent single-algorithm executor per
// algorithm in algs, for replaying the fused engine's shared plan stream
// through the pre-fused code path.
func singleAlgRunners(algs []sum.Algorithm) []func(tree.Plan, []float64) float64 {
	out := make([]func(tree.Plan, []float64) float64, len(algs))
	for i, alg := range algs {
		switch alg {
		case sum.StandardAlg, sum.PairwiseAlg:
			out[i] = tree.NewExecutor[float64](sum.STMonoid{}).Run
		case sum.KahanAlg:
			out[i] = tree.NewExecutor[sum.KState](sum.KahanMonoid{}).Run
		case sum.NeumaierAlg:
			out[i] = tree.NewExecutor[sum.NState](sum.NeumaierMonoid{}).Run
		case sum.CompositeAlg:
			out[i] = tree.NewExecutor(sum.CPMonoid{}).Run
		case sum.PreroundedAlg:
			out[i] = tree.NewExecutor[sum.PRState](sum.DefaultPRConfig().Monoid()).Run
		}
	}
	return out
}

func TestFusedMatchesSingleExecutorReplay(t *testing.T) {
	// Grid-level equivalence: replaying the fused engine's per-block plan
	// streams through plain single-algorithm executors, observing into
	// one ErrorStream per algorithm in the same block order, reproduces
	// EvalCell's fused statistics bit for bit — the lockstep walk changes
	// the schedule, never the arithmetic.
	cell := CellSpec{N: 300, Cond: 1e5, DynRange: 14}
	for _, shape := range tree.Shapes {
		cfg := Config{Trials: 25, TrialBlock: 8, Shape: shape, Seed: 13}
		seed := cellSeed(cfg.Seed, 0)
		fused := EvalCell(cell, cfg.withDefaults(), seed)

		xs := gen.Spec{N: cell.N, Cond: cell.Cond, DynRange: cell.DynRange, Seed: seed}.Generate()
		ref := bigref.SumFloat64(xs)
		algs := sum.PaperAlgorithms
		runners := singleAlgRunners(algs)
		agg := make([]*metrics.ErrorStream, len(algs))
		for ai := range agg {
			agg[ai] = metrics.NewErrorStream(ref, cfg.Trials)
		}
		cfgd := cfg.withDefaults()
		for b := 0; b < cfgd.blocks(); b++ {
			lo := b * cfgd.TrialBlock
			hi := lo + cfgd.TrialBlock
			if hi > cfgd.Trials {
				hi = cfgd.Trials
			}
			block := make([]*metrics.ErrorStream, len(algs))
			for ai := range block {
				block[ai] = metrics.NewErrorStream(ref, hi-lo)
			}
			ps := tree.NewPlanSource(cfgd.Shape, len(xs), blockSeed(seed, b))
			for tr := lo; tr < hi; tr++ {
				p := ps.Next().Clone()
				for ai, run := range runners {
					block[ai].Observe(run(p, xs))
				}
			}
			for ai := range agg {
				agg[ai].Merge(block[ai])
			}
		}
		for ai, alg := range algs {
			if !bitsEqual(fused.StdDev[alg], agg[ai].StdDev()) {
				t.Errorf("%v %v: fused StdDev %x != replay %x", shape, alg,
					math.Float64bits(fused.StdDev[alg]), math.Float64bits(agg[ai].StdDev()))
			}
			if !bitsEqual(fused.MaxErr[alg], agg[ai].Max()) {
				t.Errorf("%v %v: fused MaxErr != replay", shape, alg)
			}
			if fused.Distinct[alg] != agg[ai].Distinct() {
				t.Errorf("%v %v: fused Distinct %d != replay %d", shape, alg,
					fused.Distinct[alg], agg[ai].Distinct())
			}
		}
	}
}

func TestLegacyEngineDeterministic(t *testing.T) {
	// The retained legacy engine must stay deterministic and independent
	// of worker count (it always was; guard the property while both
	// engines coexist).
	cells := KDRGrid(200, []float64{1, 1e8}, []int{0, 10})
	mk := func(workers int) []CellResult {
		return Sweep(cells, Config{
			Trials: 15, Shape: tree.Balanced, Seed: 4, Fused: LegacyEngine, Workers: workers,
		})
	}
	a, b := mk(1), mk(5)
	for i := range cells {
		sameCellResult(t, cells[i].String(), a[i], b[i], sum.PaperAlgorithms)
	}
}

func TestEnginesAgreeQualitatively(t *testing.T) {
	// The engines sample different plan streams, so results are not
	// bitwise-equal — but the science must match: reproducible algorithms
	// stay reproducible, and the Fig 9 variability ordering holds in both.
	cell := CellSpec{N: 1024, Cond: math.Inf(1), DynRange: 20}
	for _, engine := range []Engine{FusedEngine, LegacyEngine} {
		res := EvalCell(cell, Config{Trials: 60, Shape: tree.Balanced, Seed: 6, Fused: engine}, 99)
		if res.Distinct[sum.PreroundedAlg] != 1 || res.StdDev[sum.PreroundedAlg] != 0 {
			t.Errorf("%v: PR not reproducible", engine)
		}
		if res.StdDev[sum.CompositeAlg] > res.StdDev[sum.StandardAlg] {
			t.Errorf("%v: CP (%g) noisier than ST (%g)", engine,
				res.StdDev[sum.CompositeAlg], res.StdDev[sum.StandardAlg])
		}
		if res.Distinct[sum.StandardAlg] < 2 {
			t.Errorf("%v: ST unexpectedly reproducible on hard cell", engine)
		}
	}
}

func TestTrialBlockIsPartOfExperimentDefinition(t *testing.T) {
	// Changing TrialBlock changes the sampled trees (block boundaries
	// seed the plan streams) — configs differing only in TrialBlock are
	// different experiments, while Workers never is. Pin both halves.
	cell := CellSpec{N: 512, Cond: 1e6, DynRange: 16}
	mk := func(block int) CellResult {
		return EvalCell(cell, Config{Trials: 64, TrialBlock: block, Shape: tree.Balanced, Seed: 30}, 77)
	}
	a, b := mk(16), mk(64)
	if bitsEqual(a.StdDev[sum.StandardAlg], b.StdDev[sum.StandardAlg]) {
		t.Error("different TrialBlock produced identical ST statistics — block seeding is broken")
	}
}
