package parallel

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/reduce"
	"repro/internal/sum"
	"repro/internal/superacc"
)

// adversarialSets spans the hostile corners of the generator's parameter
// space: benign same-sign data, exact cancellation, near-total
// cancellation at wide dynamic range, and odd/non-chunk-aligned lengths.
func adversarialSets() map[string][]float64 {
	sets := map[string][]float64{
		"benign":      gen.Spec{N: 5000, Cond: 1, DynRange: 8, Seed: 1}.Generate(),
		"sumzero":     gen.Spec{N: 4096, Cond: math.Inf(1), DynRange: 32, Seed: 2}.Generate(),
		"illcond":     gen.Spec{N: 4097, Cond: 1e8, DynRange: 24, Seed: 3}.Generate(),
		"widerange":   gen.Spec{N: 2000, Cond: 1e4, DynRange: 40, Seed: 4}.Generate(),
		"nbodyforces": gen.NBodyForces(3000, 5),
		"tiny":        {1.0, 0x1p-40},
		"single":      {3.25},
	}
	return sets
}

func bits(v float64) uint64 { return math.Float64bits(v) }

func TestSumBitwiseAcrossWorkerCounts(t *testing.T) {
	// The acceptance property of the engine: for every registered
	// algorithm, every worker count 1..8, and every adversarial input,
	// the parallel result is bitwise-identical to the single-threaded
	// execution of the same plan.
	cfg := Config{ChunkSize: 256} // force many chunks even on small sets
	for name, xs := range adversarialSets() {
		for _, alg := range sum.Algorithms {
			cfg.Workers = 1
			ref := SeqSum(alg, xs, Config{ChunkSize: cfg.ChunkSize})
			for w := 1; w <= 8; w++ {
				cfg.Workers = w
				if got := Sum(alg, xs, cfg); bits(got) != bits(ref) {
					t.Errorf("%s/%v: %d workers gave %x, sequential plan gave %x",
						name, alg, w, bits(got), bits(ref))
				}
			}
		}
	}
}

func TestSumMatchesSequentialMonoidFold(t *testing.T) {
	// Sum's native chunk kernels (streaming accumulators) must be
	// bitwise-equivalent to folding the same chunks through the
	// algorithm's monoid — the contract that lets SeqReduce serve as the
	// engine's oracle.
	cfg := Config{ChunkSize: 512, Workers: 4}
	for name, xs := range adversarialSets() {
		check := func(alg sum.Algorithm, ref float64) {
			if got := Sum(alg, xs, cfg); bits(got) != bits(ref) {
				t.Errorf("%s/%v: engine %x, monoid fold %x", name, alg, bits(got), bits(ref))
			}
		}
		check(sum.StandardAlg, SeqReduce(sum.STMonoid{}, xs, cfg))
		check(sum.KahanAlg, SeqReduce(sum.KahanMonoid{}, xs, cfg))
		check(sum.NeumaierAlg, SeqReduce(sum.NeumaierMonoid{}, xs, cfg))
		check(sum.CompositeAlg, SeqReduce(sum.CPMonoid{}, xs, cfg))
		check(sum.PreroundedAlg, SeqReduce(sum.DefaultPRConfig().Monoid(), xs, cfg))
	}
}

func TestPRInvariantToChunkPlan(t *testing.T) {
	// Only the prerounded operator promises invariance to the plan
	// itself (its merge is exactly associative and commutative): any
	// chunk size must give the same bits as the one-shot sum.
	for name, xs := range adversarialSets() {
		ref := sum.Prerounded(xs)
		for _, cs := range []int{1, 3, 100, 1 << 15} {
			got := Sum(sum.PreroundedAlg, xs, Config{ChunkSize: cs, Workers: 3})
			if bits(got) != bits(ref) {
				t.Errorf("%s: PR with chunk %d gave %x, one-shot %x", name, cs, bits(got), bits(ref))
			}
		}
	}
}

func TestExactSumShardedOracle(t *testing.T) {
	// Sharded superaccumulators merged exactly must reproduce the
	// one-shot exact sum bit-for-bit under every plan and worker count.
	sets := adversarialSets()
	sets["subnormals"] = []float64{0x1p-1074, 0x1p-1070, -0x1p-1074, 0x1p-1022}
	sets["hugecancel"] = []float64{0x1p900, -0x1p900, 0x1p-900, 1, -1, 0x1.5p-901}
	for name, xs := range sets {
		ref := superacc.Sum(xs)
		for _, cs := range []int{1, 7, 1000} {
			for w := 1; w <= 8; w += 2 {
				got := ExactSum(xs, Config{ChunkSize: cs, Workers: w})
				if bits(got) != bits(ref) {
					t.Errorf("%s: sharded exact (chunk %d, %d workers) %x, oracle %x",
						name, cs, w, bits(got), bits(ref))
				}
			}
		}
	}
}

func TestReduceEmptyAndEdgeInputs(t *testing.T) {
	for _, alg := range sum.Algorithms {
		if got := Sum(alg, nil, Config{}); got != 0 {
			t.Errorf("%v: empty sum = %g", alg, got)
		}
		if got := Sum(alg, []float64{42.5}, Config{Workers: 8}); got != 42.5 {
			t.Errorf("%v: singleton sum = %g", alg, got)
		}
	}
	if got := ExactSum(nil, Config{}); got != 0 {
		t.Errorf("empty exact sum = %g", got)
	}
	if got := Reduce(sum.STMonoid{}, nil, Config{}); got != 0 {
		t.Errorf("empty Reduce = %g", got)
	}
}

func TestMergeTreeFixedPairing(t *testing.T) {
	// The tree pairing must be a pure function of the leaf count:
	// adjacent pairs level by level, odd tail carried up unmerged.
	leaves := []string{"a", "b", "c", "d", "e"}
	got := MergeTree(leaves, func(a, b string) string { return "(" + a + " " + b + ")" })
	if want := "(((a b) (c d)) e)"; got != want {
		t.Errorf("pairing = %s, want %s", got, want)
	}
	if one := MergeTree([]string{"x"}, func(a, b string) string { return a + b }); one != "x" {
		t.Errorf("single-leaf tree = %s", one)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty MergeTree did not panic")
		}
	}()
	MergeTree(nil, func(a, b string) string { return a + b })
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		const n = 257
		counts := make([]int32, n)
		For(n, workers, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
	For(0, 4, func(i int) { t.Error("For(0) ran an iteration") })
}

func TestNumChunks(t *testing.T) {
	cfg := Config{ChunkSize: 100}
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {99, 1}, {100, 1}, {101, 2}, {1000, 10}, {1001, 11},
	} {
		if got := cfg.NumChunks(tc.n); got != tc.want {
			t.Errorf("NumChunks(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestReduceGenericAcrossWorkers(t *testing.T) {
	// Reduce/SeqReduce (the generic monoid entry points) obey the same
	// worker-count invariance as the algorithm dispatcher.
	xs := gen.SumZeroSeries(3000, 32, 11)
	run := func(m interface{}, w int) float64 {
		switch mm := m.(type) {
		case reduce.Monoid[float64]:
			return Reduce(mm, xs, Config{ChunkSize: 128, Workers: w})
		case reduce.Monoid[sum.KState]:
			return Reduce(mm, xs, Config{ChunkSize: 128, Workers: w})
		}
		panic("unhandled monoid")
	}
	for _, m := range []interface{}{reduce.Monoid[float64](sum.STMonoid{}), reduce.Monoid[sum.KState](sum.KahanMonoid{})} {
		ref := run(m, 1)
		for w := 2; w <= 8; w++ {
			if got := run(m, w); bits(got) != bits(ref) {
				t.Errorf("%T: workers=%d gave %x, workers=1 gave %x", m, w, bits(got), bits(ref))
			}
		}
	}
}

func TestWorkerCountDoesNotChangeChunkPlan(t *testing.T) {
	// Sanity on the plan itself: chunk results land at fixed indices, so
	// a permutation-sensitive merge (string concat) still produces the
	// same output at any worker count.
	const n = 1001
	cfg := Config{ChunkSize: 37}
	build := func(w int) string {
		cfg.Workers = w
		s, ok := MapReduce(n, cfg,
			func(lo, hi int) string { return fmt.Sprintf("[%d:%d]", lo, hi) },
			func(a, b string) string { return a + b })
		if !ok {
			t.Fatal("MapReduce returned !ok")
		}
		return s
	}
	ref := build(1)
	for w := 2; w <= 8; w++ {
		if got := build(w); got != ref {
			t.Fatalf("workers=%d plan %q != workers=1 plan %q", w, got, ref)
		}
	}
}
