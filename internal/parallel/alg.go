package parallel

import (
	"fmt"

	"repro/internal/binned"
	"repro/internal/kernel"
	"repro/internal/sum"
	"repro/internal/superacc"
)

// Sum computes the sum of xs with the named algorithm on the parallel
// engine. For every algorithm the result is bitwise-identical across
// worker counts and equal to SeqSum with the same Config: both execute
// the same plan (fixed chunks, fixed intra-chunk fold, fixed balanced
// merge tree).
//
// With the default LaneWidth of 1 the chunk folds are the devirtualized
// reference-order kernels of internal/kernel, bit-identical to the
// algorithms' monoid folds (verified by the kernel and package tests);
// CP chunks run the monoid fold kernel directly because dd.AddFloat64
// and dd.Add are not guaranteed to round identically at the last bit.
// With LaneWidth > 1 the ST, PW, K, and N chunk folds switch to the
// fixed-width lane kernels — a different, equally deterministic plan
// (see Config.LaneWidth); CP and PR have no lane form and ignore the
// width.
func Sum(alg sum.Algorithm, xs []float64, cfg Config) float64 {
	return algSum(alg, xs, cfg, false)
}

// SeqSum executes the identical plan as Sum on a single goroutine — the
// bitwise oracle for the engine and the baseline for its benchmarks.
func SeqSum(alg sum.Algorithm, xs []float64, cfg Config) float64 {
	return algSum(alg, xs, cfg, true)
}

func algSum(alg sum.Algorithm, xs []float64, cfg Config, seq bool) float64 {
	lw := cfg.LaneWidth
	if lw <= 0 {
		lw = 1
	}
	if !kernel.ValidLaneWidth(lw) {
		panic(fmt.Sprintf("parallel: invalid LaneWidth %d (want 1, 2, 4, or 8)", lw))
	}
	switch alg {
	case sum.StandardAlg:
		st, ok := mapReduce(len(xs), cfg, seq,
			func(lo, hi int) float64 { return kernel.LaneST(xs[lo:hi], lw) },
			sum.STMonoid{}.Merge)
		if !ok {
			return 0
		}
		return st
	case sum.PairwiseAlg:
		// LaneWidth 1 keeps the legacy plan (PW chunks fold exactly like
		// ST chunks); wider lanes use the blocked pairwise lane kernel.
		chunk := func(lo, hi int) float64 { return kernel.ST(xs[lo:hi]) }
		if lw > 1 {
			chunk = func(lo, hi int) float64 { return kernel.LanePairwise(xs[lo:hi], lw) }
		}
		st, ok := mapReduce(len(xs), cfg, seq, chunk, sum.STMonoid{}.Merge)
		if !ok {
			return 0
		}
		return st
	case sum.KahanAlg:
		st, ok := mapReduce(len(xs), cfg, seq,
			func(lo, hi int) sum.KState {
				s, c := kernel.LaneKahan(xs[lo:hi], lw)
				return sum.KState{S: s, C: c}
			},
			sum.KahanMonoid{}.Merge)
		if !ok {
			return 0
		}
		return sum.KahanMonoid{}.Finalize(st)
	case sum.NeumaierAlg:
		st, ok := mapReduce(len(xs), cfg, seq,
			func(lo, hi int) sum.NState {
				s, c := kernel.LaneNeumaier(xs[lo:hi], lw)
				return sum.NState{S: s, C: c}
			},
			sum.NeumaierMonoid{}.Merge)
		if !ok {
			return 0
		}
		return sum.NeumaierMonoid{}.Finalize(st)
	case sum.CompositeAlg:
		if seq {
			return SeqReduce(sum.CPMonoid{}, xs, cfg)
		}
		return Reduce(sum.CPMonoid{}, xs, cfg)
	case sum.PreroundedAlg:
		return prSum(sum.DefaultPRConfig(), xs, cfg, seq)
	case sum.BinnedAlg:
		// Binned chunks fold with the batch kernel at the configured lane
		// width; deposits and merges are exact, so the result is invariant
		// to the lane width and the chunk plan itself, like PR.
		m := sum.BNMonoid{}
		st, ok := mapReduce(len(xs), cfg, seq,
			func(lo, hi int) binned.State { return kernel.LaneBinned(xs[lo:hi], lw) },
			m.Merge)
		if !ok {
			return 0
		}
		return m.Finalize(st)
	}
	panic("parallel: invalid algorithm " + alg.String())
}

// SumPR computes the prerounded sum with an explicit bin configuration
// (e.g. one tuned by selector.TunePR) on the parallel engine. PR's merge
// is exactly associative and commutative, so the result is additionally
// invariant to the chunk plan itself, not just the worker count.
func SumPR(prCfg sum.PRConfig, xs []float64, cfg Config) float64 {
	return prSum(prCfg, xs, cfg, false)
}

func prSum(prCfg sum.PRConfig, xs []float64, cfg Config, seq bool) float64 {
	m := prCfg.Monoid()
	st, ok := mapReduce(len(xs), cfg, seq,
		func(lo, hi int) sum.PRState {
			acc := sum.NewPreroundedAcc(prCfg)
			sum.AddSlice(acc, xs[lo:hi])
			return acc.State()
		},
		m.Merge)
	if !ok {
		return 0
	}
	return m.Finalize(st)
}

// ExactSum computes the exact, correctly rounded sum of xs with sharded
// superaccumulators: one exact accumulator per chunk, merged exactly at
// the root. Because every operation is exact, the result is identical to
// superacc.Sum for any worker count and any chunk plan.
func ExactSum(xs []float64, cfg Config) float64 {
	st, ok := MapReduce(len(xs), cfg,
		func(lo, hi int) *superacc.Acc {
			a := superacc.New()
			kernel.Exact(a, xs[lo:hi])
			return a
		},
		func(a, b *superacc.Acc) *superacc.Acc {
			a.Merge(b)
			return a
		})
	if !ok {
		return 0
	}
	return st.Float64()
}

func mapReduce[S any](n int, cfg Config, seq bool, chunk func(lo, hi int) S, merge func(a, b S) S) (S, bool) {
	if seq {
		return MapReduceSeq(n, cfg, chunk, merge)
	}
	return MapReduce(n, cfg, chunk, merge)
}
