package parallel

import (
	"repro/internal/sum"
	"repro/internal/superacc"
)

// Sum computes the sum of xs with the named algorithm on the parallel
// engine. For every algorithm the result is bitwise-identical across
// worker counts and equal to SeqSum with the same Config: both execute
// the same plan (fixed chunks, left-to-right chunk folds under the
// algorithm's monoid, fixed balanced merge tree).
//
// The chunk kernels use the algorithms' native streaming accumulators
// where those are bitwise-equivalent to the monoid fold (ST, K, N, PR —
// verified by the package tests); CP chunks run the monoid fold directly
// because dd.AddFloat64 and dd.Add are not guaranteed to round
// identically at the last bit.
func Sum(alg sum.Algorithm, xs []float64, cfg Config) float64 {
	return algSum(alg, xs, cfg, false)
}

// SeqSum executes the identical plan as Sum on a single goroutine — the
// bitwise oracle for the engine and the baseline for its benchmarks.
func SeqSum(alg sum.Algorithm, xs []float64, cfg Config) float64 {
	return algSum(alg, xs, cfg, true)
}

func algSum(alg sum.Algorithm, xs []float64, cfg Config, seq bool) float64 {
	switch alg {
	case sum.StandardAlg, sum.PairwiseAlg:
		st, ok := mapReduce(len(xs), cfg, seq,
			func(lo, hi int) float64 { return sum.Standard(xs[lo:hi]) },
			sum.STMonoid{}.Merge)
		if !ok {
			return 0
		}
		return st
	case sum.KahanAlg:
		st, ok := mapReduce(len(xs), cfg, seq,
			func(lo, hi int) sum.KState {
				var acc sum.KahanAcc
				sum.AddSlice(&acc, xs[lo:hi])
				return acc.State()
			},
			sum.KahanMonoid{}.Merge)
		if !ok {
			return 0
		}
		return sum.KahanMonoid{}.Finalize(st)
	case sum.NeumaierAlg:
		st, ok := mapReduce(len(xs), cfg, seq,
			func(lo, hi int) sum.NState {
				var acc sum.NeumaierAcc
				sum.AddSlice(&acc, xs[lo:hi])
				return acc.State()
			},
			sum.NeumaierMonoid{}.Merge)
		if !ok {
			return 0
		}
		return sum.NeumaierMonoid{}.Finalize(st)
	case sum.CompositeAlg:
		if seq {
			return SeqReduce(sum.CPMonoid{}, xs, cfg)
		}
		return Reduce(sum.CPMonoid{}, xs, cfg)
	case sum.PreroundedAlg:
		return prSum(sum.DefaultPRConfig(), xs, cfg, seq)
	}
	panic("parallel: invalid algorithm " + alg.String())
}

// SumPR computes the prerounded sum with an explicit bin configuration
// (e.g. one tuned by selector.TunePR) on the parallel engine. PR's merge
// is exactly associative and commutative, so the result is additionally
// invariant to the chunk plan itself, not just the worker count.
func SumPR(prCfg sum.PRConfig, xs []float64, cfg Config) float64 {
	return prSum(prCfg, xs, cfg, false)
}

func prSum(prCfg sum.PRConfig, xs []float64, cfg Config, seq bool) float64 {
	m := prCfg.Monoid()
	st, ok := mapReduce(len(xs), cfg, seq,
		func(lo, hi int) sum.PRState {
			acc := sum.NewPreroundedAcc(prCfg)
			sum.AddSlice(acc, xs[lo:hi])
			return acc.State()
		},
		m.Merge)
	if !ok {
		return 0
	}
	return m.Finalize(st)
}

// ExactSum computes the exact, correctly rounded sum of xs with sharded
// superaccumulators: one exact accumulator per chunk, merged exactly at
// the root. Because every operation is exact, the result is identical to
// superacc.Sum for any worker count and any chunk plan.
func ExactSum(xs []float64, cfg Config) float64 {
	st, ok := MapReduce(len(xs), cfg,
		func(lo, hi int) *superacc.Acc {
			a := superacc.New()
			a.AddSlice(xs[lo:hi])
			return a
		},
		func(a, b *superacc.Acc) *superacc.Acc {
			a.Merge(b)
			return a
		})
	if !ok {
		return 0
	}
	return st.Float64()
}

func mapReduce[S any](n int, cfg Config, seq bool, chunk func(lo, hi int) S, merge func(a, b S) S) (S, bool) {
	if seq {
		return MapReduceSeq(n, cfg, chunk, merge)
	}
	return MapReduce(n, cfg, chunk, merge)
}
