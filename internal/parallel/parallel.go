// Package parallel is a deterministic chunked worker-pool reduction
// engine: the bridge between this repository's mergeable summation
// operators and actual multi-core speedup, without reintroducing the
// run-to-run nondeterminism the paper studies.
//
// The determinism contract has three legs:
//
//  1. Fixed partitioning. The input is cut into chunks of exactly
//     Config.ChunkSize elements (the last chunk may be short). Chunk
//     boundaries depend only on len(xs) and ChunkSize — never on the
//     worker count or on scheduling.
//  2. Fixed intra-chunk order. Each chunk is folded left-to-right with
//     the algorithm's monoid, exactly as a sequential pass over that
//     chunk would.
//  3. Fixed merge tree. The per-chunk partial states are combined with a
//     balanced binary tree whose pairing depends only on the number of
//     chunks, executed in one goroutine at the root.
//
// Workers only race for *which chunk to compute next*; every chunk's
// partial state is a pure function of the chunk's elements, so the tree
// sees identical inputs in an identical shape regardless of how many
// workers ran or how the scheduler interleaved them. The result is
// therefore bitwise-identical across worker counts, and bitwise equal to
// a single-threaded execution of the same plan (SeqReduce).
//
// This is the "fixed reduction tree" remedy of Goodrich & Eldawy
// (parallel summation with reproducibility) applied at the shared-memory
// level: the plan (ChunkSize, tree shape) is part of the reproducibility
// contract, the worker count is not. Note that a *different* ChunkSize
// is a different plan and may give a (deterministically) different
// result for non-reproducible operators; only the prerounded operator is
// invariant to the plan itself.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/reduce"
)

// DefaultChunkSize is the fallback chunk length: large enough to
// amortize scheduling, small enough to load-balance a few dozen chunks
// over typical core counts at the 1M-element scale.
const DefaultChunkSize = 1 << 15

// Config tunes the engine. The zero value means "auto": GOMAXPROCS
// workers and DefaultChunkSize elements per chunk.
type Config struct {
	// Workers bounds pool size; <= 0 selects runtime.GOMAXPROCS(0).
	// Workers == 1 still runs the chunked plan, just on one goroutine,
	// and produces the identical bits.
	Workers int
	// ChunkSize is the fixed partition width in elements; <= 0 selects
	// DefaultChunkSize. It is part of the determinism contract: two runs
	// agree bitwise only if they use the same ChunkSize.
	ChunkSize int
	// LaneWidth is the number of interleaved accumulator lanes each
	// chunk fold runs with (1, 2, 4, or 8; <= 0 selects 1, the legacy
	// single-accumulator bits). Widths > 1 break the serial
	// floating-point dependency chain inside each chunk with the
	// internal/kernel lane kernels: element i of a chunk feeds lane
	// i mod LaneWidth and lanes merge in a fixed order, so the result is
	// still bitwise-identical across worker counts and runs — but, like
	// ChunkSize, the lane width is part of the plan: two runs agree
	// bitwise only if they use the same LaneWidth. Lane kernels exist
	// for ST, PW, K, and N; CP and PR chunk folds ignore LaneWidth.
	LaneWidth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = DefaultChunkSize
	}
	if c.LaneWidth <= 0 {
		c.LaneWidth = 1
	}
	return c
}

// NumChunks returns the number of chunks the plan cuts n elements into.
func (c Config) NumChunks(n int) int {
	c = c.withDefaults()
	return (n + c.ChunkSize - 1) / c.ChunkSize
}

// For runs f(i) for every i in [0, n) on a bounded pool of workers.
// Iterations must be independent; completion order is unspecified but
// For returns only after every iteration finished.
func For(n, workers int, f func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// MapReduce partitions [0, n) into the plan's fixed chunks, computes
// chunk(lo, hi) for each on the worker pool, and combines the per-chunk
// results with merge over the fixed balanced tree. ok is false when
// n <= 0 (there is nothing to reduce and no identity available).
//
// chunk must be a pure function of its interval. merge may consume
// (mutate and return) its arguments — every partial state is handed to
// merge at most once — but must not touch states it was not given.
func MapReduce[S any](n int, cfg Config, chunk func(lo, hi int) S, merge func(a, b S) S) (s S, ok bool) {
	if n <= 0 {
		return s, false
	}
	cfg = cfg.withDefaults()
	nc := cfg.NumChunks(n)
	partials := make([]S, nc)
	For(nc, cfg.Workers, func(i int) {
		lo := i * cfg.ChunkSize
		hi := lo + cfg.ChunkSize
		if hi > n {
			hi = n
		}
		partials[i] = chunk(lo, hi)
	})
	return MergeTree(partials, merge), true
}

// MapReduceSeq is the single-goroutine reference execution of the exact
// same plan as MapReduce: same chunk boundaries, same merge tree. It is
// the oracle the engine's bitwise-equality tests compare against, and a
// zero-overhead baseline for benchmarks.
func MapReduceSeq[S any](n int, cfg Config, chunk func(lo, hi int) S, merge func(a, b S) S) (s S, ok bool) {
	if n <= 0 {
		return s, false
	}
	cfg = cfg.withDefaults()
	nc := cfg.NumChunks(n)
	partials := make([]S, nc)
	for i := 0; i < nc; i++ {
		lo := i * cfg.ChunkSize
		hi := lo + cfg.ChunkSize
		if hi > n {
			hi = n
		}
		partials[i] = chunk(lo, hi)
	}
	return MergeTree(partials, merge), true
}

// MergeTree folds the states with a balanced binary tree whose pairing
// depends only on len(states): adjacent pairs are merged level by level,
// an odd trailing state is carried up unmerged. The pairing is identical
// to reduce.Pairwise's, and the fold runs in the calling goroutine, so
// the combination order is a fixed function of the state count.
// MergeTree overwrites states as scratch space. Panics on empty input.
func MergeTree[S any](states []S, merge func(a, b S) S) S {
	if len(states) == 0 {
		panic("parallel: MergeTree on empty state list")
	}
	n := len(states)
	for n > 1 {
		half := n / 2
		for i := 0; i < half; i++ {
			states[i] = merge(states[2*i], states[2*i+1])
		}
		if n%2 == 1 {
			states[half] = states[n-1]
			n = half + 1
		} else {
			n = half
		}
	}
	return states[0]
}

// Reduce sums xs under monoid m with the parallel engine: fixed chunks
// folded left-to-right, fixed balanced merge tree, Finalize at the root.
// The result is bitwise-identical across worker counts and equal to
// SeqReduce with the same Config.
func Reduce[S any](m reduce.Monoid[S], xs []float64, cfg Config) float64 {
	st, ok := MapReduce(len(xs), cfg, func(lo, hi int) S {
		return foldChunk(m, xs[lo:hi])
	}, m.Merge)
	if !ok {
		return m.Finalize(m.Leaf(0))
	}
	return m.Finalize(st)
}

// SeqReduce executes the identical plan as Reduce on one goroutine.
func SeqReduce[S any](m reduce.Monoid[S], xs []float64, cfg Config) float64 {
	st, ok := MapReduceSeq(len(xs), cfg, func(lo, hi int) S {
		return foldChunk(m, xs[lo:hi])
	}, m.Merge)
	if !ok {
		return m.Finalize(m.Leaf(0))
	}
	return m.Finalize(st)
}

// foldChunk reduces one chunk left-to-right — the fixed intra-chunk
// order leg of the determinism contract. Monoids that implement
// reduce.SliceFolder run their devirtualized batch kernel instead of the
// generic Leaf/Merge loop; the bits are identical. (Generic Reduce
// ignores Config.LaneWidth — lane plans exist only for the named
// algorithms in Sum, which have hand-specialized lane kernels.)
func foldChunk[S any](m reduce.Monoid[S], xs []float64) S {
	if sf, ok := m.(reduce.SliceFolder[S]); ok {
		return sf.FoldSlice(xs)
	}
	acc := m.Leaf(xs[0])
	for _, x := range xs[1:] {
		acc = m.Merge(acc, m.Leaf(x))
	}
	return acc
}
