package parallel

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/sum"
)

// laneAlgs are the algorithms with hand-specialized lane kernels.
var laneAlgs = []sum.Algorithm{sum.StandardAlg, sum.PairwiseAlg, sum.KahanAlg, sum.NeumaierAlg}

func TestLaneWidthBitwiseAcrossWorkerCounts(t *testing.T) {
	// The lane-kernel extension of the engine's acceptance property: for
	// every lane width, the parallel result is bitwise-identical to the
	// single-goroutine execution of the same (ChunkSize, LaneWidth) plan
	// at every worker count.
	for name, xs := range adversarialSets() {
		for _, alg := range sum.Algorithms {
			for _, lw := range kernel.LaneWidths {
				cfg := Config{ChunkSize: 256, LaneWidth: lw}
				ref := SeqSum(alg, xs, cfg)
				for w := 1; w <= 8; w++ {
					cfg.Workers = w
					if got := Sum(alg, xs, cfg); bits(got) != bits(ref) {
						t.Errorf("%s/%v/lanes=%d: %d workers gave %x, sequential plan gave %x",
							name, alg, lw, w, bits(got), bits(ref))
					}
				}
			}
		}
	}
}

func TestLaneWidthIsPartOfThePlan(t *testing.T) {
	// Same bits run-to-run for a fixed width; a poisoned-free check that
	// widths are deterministic plans rather than scheduling accidents.
	xs := gen.Spec{N: 4097, Cond: 1e8, DynRange: 24, Seed: 9}.Generate()
	for _, alg := range laneAlgs {
		for _, lw := range kernel.LaneWidths {
			cfg := Config{ChunkSize: 300, LaneWidth: lw, Workers: 4}
			a, b := Sum(alg, xs, cfg), Sum(alg, xs, cfg)
			if bits(a) != bits(b) {
				t.Errorf("%v/lanes=%d: repeated runs disagree: %x vs %x", alg, lw, bits(a), bits(b))
			}
		}
	}
	// Width 1 (and 0, its default spelling) must reproduce the legacy
	// single-accumulator plan bits.
	for _, alg := range sum.Algorithms {
		legacy := Sum(alg, xs, Config{ChunkSize: 300, Workers: 3})
		for _, lw := range []int{0, 1} {
			if got := Sum(alg, xs, Config{ChunkSize: 300, Workers: 3, LaneWidth: lw}); bits(got) != bits(legacy) {
				t.Errorf("%v: LaneWidth=%d gave %x, legacy plan %x", alg, lw, bits(got), bits(legacy))
			}
		}
	}
}

func TestLaneWidthIgnoredByPlanInvariantAlgorithms(t *testing.T) {
	// CP has no lane form (LaneWidth is documented as ignored), and PR is
	// invariant to any plan; both must give the legacy bits at any width.
	xs := gen.Spec{N: 2000, Cond: 1e4, DynRange: 40, Seed: 4}.Generate()
	for _, alg := range []sum.Algorithm{sum.CompositeAlg, sum.PreroundedAlg} {
		ref := Sum(alg, xs, Config{ChunkSize: 256, Workers: 2})
		for _, lw := range []int{2, 4, 8} {
			if got := Sum(alg, xs, Config{ChunkSize: 256, Workers: 2, LaneWidth: lw}); bits(got) != bits(ref) {
				t.Errorf("%v: LaneWidth=%d changed bits: %x vs %x", alg, lw, bits(got), bits(ref))
			}
		}
	}
}

func TestInvalidLaneWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Sum with LaneWidth=3 did not panic")
		}
	}()
	Sum(sum.StandardAlg, []float64{1, 2, 3}, Config{LaneWidth: 3})
}

func TestEngineEdgeCases(t *testing.T) {
	// n = 0 with every lane width.
	for _, lw := range kernel.LaneWidths {
		for _, alg := range sum.Algorithms {
			if got := Sum(alg, nil, Config{LaneWidth: lw}); got != 0 {
				t.Errorf("%v/lanes=%d: empty sum = %g", alg, lw, got)
			}
		}
	}
	// Workers far beyond n, ChunkSize 1 (every element its own chunk),
	// a short trailing chunk, and LaneWidth > n must all agree with the
	// sequential plan bit for bit.
	cases := []struct {
		name string
		xs   []float64
		cfg  Config
	}{
		{"workers>n", []float64{1, 0x1p-40, -1}, Config{Workers: 64, ChunkSize: 2}},
		{"chunksize=1", gen.Spec{N: 37, Cond: 1e4, DynRange: 10, Seed: 5}.Generate(), Config{Workers: 4, ChunkSize: 1}},
		{"short-tail", gen.Spec{N: 1001, Cond: 1e4, DynRange: 10, Seed: 6}.Generate(), Config{Workers: 4, ChunkSize: 100}},
		{"lanes>n", []float64{1, 0x1p-40, -1}, Config{Workers: 2, ChunkSize: 8, LaneWidth: 8}},
		{"lanes>chunk", gen.Spec{N: 100, Cond: 1e4, DynRange: 10, Seed: 7}.Generate(), Config{Workers: 3, ChunkSize: 3, LaneWidth: 8}},
	}
	for _, tc := range cases {
		for _, alg := range sum.Algorithms {
			ref := SeqSum(alg, tc.xs, tc.cfg)
			if got := Sum(alg, tc.xs, tc.cfg); bits(got) != bits(ref) {
				t.Errorf("%s/%v: parallel %x, sequential %x", tc.name, alg, bits(got), bits(ref))
			}
		}
	}
}

func TestLaneKernelNonFinitePropagation(t *testing.T) {
	// Poisoned inputs must come out non-finite from the engine at every
	// lane width for the IEEE-propagating algorithms — the same poison
	// semantics selector.Profile promises (non-finite in, flagged out).
	poisoned := [][]float64{
		{1, 2, math.NaN(), 4, 5, 6, 7, 8, 9, 10},
		{1, math.Inf(1), 2, 3, 4, 5, 6, 7, 8, 9},
		{math.Inf(1), math.Inf(-1), 1, 2, 3, 4, 5, 6, 7, 8},
	}
	for i, xs := range poisoned {
		for _, alg := range laneAlgs {
			for _, lw := range kernel.LaneWidths {
				got := Sum(alg, xs, Config{ChunkSize: 3, Workers: 2, LaneWidth: lw})
				if !math.IsNaN(got) && !math.IsInf(got, 0) {
					t.Errorf("set %d/%v/lanes=%d: finite %g from poisoned input", i, alg, lw, got)
				}
			}
		}
	}
}
