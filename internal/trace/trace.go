// Package trace records the reduction tree an actual (possibly
// nondeterministic) run used, and replays it. This is the tooling the
// paper's Section V-D calls for — "tools that, at exascale, profile
// parameters of interest (e.g. n, k, dr, and tree shape) at runtime" —
// applied to the tree-shape parameter: wrap any reduce.Op in a
// Recorder, run the collective, and the recorder captures the exact
// merge topology that arrival order produced. The trace can then be
//
//   - replayed with any other algorithm (e.g. an exact oracle) to
//     compute what that very tree would have yielded — attributing a
//     result discrepancy to the tree rather than the data; and
//   - analyzed for shape statistics (depth, imbalance), feeding the
//     tree-shape term of an intelligent selector.
//
// Recorders are safe for concurrent use: merges from many ranks
// interleave during a collective.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/reduce"
)

// node identifies a leaf or merge event in a trace.
type node struct {
	// For leaves, value is the operand and a, b are -1. For merges,
	// a and b are the input node ids.
	value float64
	a, b  int
}

// Trace is the recorded reduction topology.
type Trace struct {
	nodes []node
	root  int
}

// Recorder wraps a reduce.Op and records every Leaf and Merge call.
type Recorder struct {
	op reduce.Op

	mu    sync.Mutex
	nodes []node
}

// NewRecorder returns a recording wrapper around op.
func NewRecorder(op reduce.Op) *Recorder { return &Recorder{op: op} }

// traced pairs the wrapped operator state with its trace node id.
type traced struct {
	st reduce.State
	id int
}

// Name implements reduce.Op.
func (r *Recorder) Name() string { return r.op.Name() + "+trace" }

// Leaf implements reduce.Op, recording the operand.
func (r *Recorder) Leaf(x float64) reduce.State {
	r.mu.Lock()
	id := len(r.nodes)
	r.nodes = append(r.nodes, node{value: x, a: -1, b: -1})
	r.mu.Unlock()
	return traced{st: r.op.Leaf(x), id: id}
}

// Merge implements reduce.Op, recording the merge event.
func (r *Recorder) Merge(a, b reduce.State) reduce.State {
	ta, tb := a.(traced), b.(traced)
	r.mu.Lock()
	id := len(r.nodes)
	r.nodes = append(r.nodes, node{a: ta.id, b: tb.id})
	r.mu.Unlock()
	return traced{st: r.op.Merge(ta.st, tb.st), id: id}
}

// Finalize implements reduce.Op.
func (r *Recorder) Finalize(s reduce.State) float64 {
	return r.op.Finalize(s.(traced).st)
}

// TraceOf extracts the trace rooted at the final state s (the state the
// collective returned at the root rank).
func (r *Recorder) TraceOf(s reduce.State) Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	nodes := make([]node, len(r.nodes))
	copy(nodes, r.nodes)
	return Trace{nodes: nodes, root: s.(traced).id}
}

// Leaves returns the number of operands under the trace's root.
func (t Trace) Leaves() int {
	n := 0
	t.walk(func(nd node) {
		if nd.a < 0 {
			n++
		}
	})
	return n
}

// walk visits all nodes reachable from the root (iteratively).
func (t Trace) walk(visit func(node)) {
	if len(t.nodes) == 0 {
		return
	}
	stack := []int{t.root}
	seen := make([]bool, len(t.nodes))
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		nd := t.nodes[id]
		visit(nd)
		if nd.a >= 0 {
			stack = append(stack, nd.a, nd.b)
		}
	}
}

// Depth returns the longest leaf-to-root path length (merge count).
func (t Trace) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	depth := make([]int, len(t.nodes))
	// Node ids are creation-ordered, so inputs precede their merge.
	for id, nd := range t.nodes {
		if nd.a >= 0 {
			d := depth[nd.a]
			if depth[nd.b] > d {
				d = depth[nd.b]
			}
			depth[id] = d + 1
		}
	}
	return depth[t.root]
}

// Replay re-executes the recorded topology — the same operands combined
// through the same tree — with another operator. Replaying with the
// original operator reproduces its result bitwise; replaying with an
// exact oracle yields the true sum of the same tree's operands,
// attributing any discrepancy to the tree.
func (t Trace) Replay(op reduce.Op) float64 {
	if len(t.nodes) == 0 {
		return op.Finalize(op.Leaf(0))
	}
	states := make([]reduce.State, len(t.nodes))
	// Node ids are creation-ordered, so inputs precede their merge.
	for id, nd := range t.nodes {
		if nd.a < 0 {
			states[id] = op.Leaf(nd.value)
		} else if states[nd.a] != nil && states[nd.b] != nil {
			states[id] = op.Merge(states[nd.a], states[nd.b])
		}
	}
	if states[t.root] == nil {
		panic(fmt.Sprintf("trace: root %d unreachable during replay (incomplete trace)", t.root))
	}
	return op.Finalize(states[t.root])
}

// Operands returns the operands under the trace's root, in node-id
// (creation) order.
func (t Trace) Operands() []float64 {
	var out []float64
	// Collect reachable leaf ids in ascending id order.
	reach := make([]bool, len(t.nodes))
	if len(t.nodes) > 0 {
		stack := []int{t.root}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if reach[id] {
				continue
			}
			reach[id] = true
			if nd := t.nodes[id]; nd.a >= 0 {
				stack = append(stack, nd.a, nd.b)
			}
		}
	}
	for id, nd := range t.nodes {
		if reach[id] && nd.a < 0 {
			out = append(out, nd.value)
		}
	}
	return out
}
