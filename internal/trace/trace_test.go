package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/mpirt"
	"repro/internal/sum"
)

func TestRecordAndReplaySerial(t *testing.T) {
	op := sum.StandardAlg.Op()
	rec := NewRecorder(op)
	xs := []float64{1e16, 1, -1e16, 2}
	st := rec.Leaf(xs[0])
	for _, x := range xs[1:] {
		st = rec.Merge(st, rec.Leaf(x))
	}
	live := rec.Finalize(st)
	tr := rec.TraceOf(st)
	if tr.Leaves() != 4 {
		t.Fatalf("leaves = %d", tr.Leaves())
	}
	if tr.Depth() != 3 {
		t.Errorf("serial depth = %d, want 3", tr.Depth())
	}
	// Replaying the same operator reproduces the live result bitwise.
	if got := tr.Replay(op); got != live {
		t.Errorf("replay %g != live %g", got, live)
	}
	// Replaying with CP over the same tree recovers the absorbed bits.
	if got := tr.Replay(sum.CompositeAlg.Op()); got != 3 {
		t.Errorf("CP replay = %g, want 3", got)
	}
	// Operands round-trip.
	ops := tr.Operands()
	if len(ops) != 4 {
		t.Fatalf("operands %v", ops)
	}
}

func TestRecorderUnderNondeterministicCollective(t *testing.T) {
	// Record an arrival-order mpirt reduction, then verify the replay
	// of the recorded tree reproduces the live root value bitwise —
	// even though the tree itself differs run to run.
	xs := gen.SumZeroSeries(2048, 24, 5)
	const ranks = 8
	per := len(xs) / ranks
	for trial := 0; trial < 3; trial++ {
		rec := NewRecorder(sum.StandardAlg.Op())
		w := mpirt.NewWorld(ranks, mpirt.Config{Jitter: 100 * time.Microsecond, Seed: uint64(trial)})
		var live float64
		var tr Trace
		err := w.Run(func(r *mpirt.Rank) {
			local := mpirt.LocalState(rec, xs[r.ID*per:(r.ID+1)*per])
			if st := r.Reduce(0, local, rec, mpirt.Binomial, mpirt.ArrivalOrder); st != nil {
				live = rec.Finalize(st)
				tr = rec.TraceOf(st)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Leaves() != len(xs) {
			t.Fatalf("trace covers %d leaves, want %d", tr.Leaves(), len(xs))
		}
		if got := tr.Replay(sum.StandardAlg.Op()); got != live {
			t.Errorf("trial %d: replay %g != live %g", trial, got, live)
		}
		// The exact oracle over the same operands shows the tree's error.
		exact := bigref.SumFloat64(tr.Operands())
		if exact != 0 {
			t.Errorf("trial %d: trace lost operands: exact %g", trial, exact)
		}
	}
}

func TestReplayDifferentAlgorithmsDiffer(t *testing.T) {
	// On a hard set, ST replay and CP replay of the same tree disagree;
	// CP is closer to exact.
	r := fpu.NewRNG(9)
	rec := NewRecorder(sum.StandardAlg.Op())
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(40)-20)
	}
	st := rec.Leaf(xs[0])
	for _, x := range xs[1:] {
		st = rec.Merge(st, rec.Leaf(x))
	}
	tr := rec.TraceOf(st)
	exact := bigref.SumFloat64(xs)
	eST := math.Abs(tr.Replay(sum.StandardAlg.Op()) - exact)
	eCP := math.Abs(tr.Replay(sum.CompositeAlg.Op()) - exact)
	if eCP > eST {
		t.Errorf("CP replay error %g worse than ST %g", eCP, eST)
	}
}

func TestBalancedTraceDepth(t *testing.T) {
	rec := NewRecorder(sum.StandardAlg.Op())
	// Build a balanced 8-leaf reduction by hand.
	states := make([]any, 8)
	for i := range states {
		states[i] = rec.Leaf(float64(i))
	}
	for n := 8; n > 1; n /= 2 {
		for i := 0; i < n/2; i++ {
			states[i] = rec.Merge(states[2*i], states[2*i+1])
		}
	}
	tr := rec.TraceOf(states[0])
	if tr.Depth() != 3 {
		t.Errorf("balanced depth = %d, want 3", tr.Depth())
	}
	if got := tr.Replay(sum.StandardAlg.Op()); got != 28 {
		t.Errorf("replay = %g", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if tr.Leaves() != 0 || tr.Depth() != 0 {
		t.Error("empty trace stats")
	}
	if got := tr.Replay(sum.StandardAlg.Op()); got != 0 {
		t.Errorf("empty replay = %g", got)
	}
	if ops := tr.Operands(); len(ops) != 0 {
		t.Errorf("empty operands %v", ops)
	}
}

func TestTraceOfSubtree(t *testing.T) {
	// A trace rooted at a partial state only covers that subtree.
	rec := NewRecorder(sum.StandardAlg.Op())
	a := rec.Merge(rec.Leaf(1), rec.Leaf(2))
	b := rec.Merge(rec.Leaf(3), rec.Leaf(4))
	sub := rec.TraceOf(a)
	if sub.Leaves() != 2 {
		t.Errorf("subtree leaves = %d", sub.Leaves())
	}
	if got := sub.Replay(sum.StandardAlg.Op()); got != 3 {
		t.Errorf("subtree replay = %g", got)
	}
	whole := rec.TraceOf(rec.Merge(a, b))
	if whole.Leaves() != 4 {
		t.Errorf("whole leaves = %d", whole.Leaves())
	}
}
