// Package dd implements double-double arithmetic: an unevaluated sum of
// two float64 values (hi, lo) with |lo| <= ulp(hi)/2, giving roughly 106
// bits of significand. It is the substrate for the composite-precision
// summation operator and for cheap high-precision cross-checks.
//
// The algorithms follow Dekker (1971) and Hida, Li & Bailey (2001).
// All operations renormalize their results.
package dd

import (
	"fmt"
	"math"

	"repro/internal/fpu"
)

// DD is a double-double value hi+lo with hi = fl(hi+lo).
type DD struct {
	Hi, Lo float64
}

// Zero is the double-double zero value.
var Zero = DD{}

// FromFloat64 lifts a float64 into a DD exactly.
func FromFloat64(x float64) DD { return DD{Hi: x} }

// New constructs a normalized DD from an unevaluated pair (a, b).
func New(a, b float64) DD {
	s, e := fpu.TwoSum(a, b)
	return DD{Hi: s, Lo: e}
}

// Float64 rounds the DD to the nearest float64.
func (a DD) Float64() float64 { return a.Hi + a.Lo }

// IsZero reports whether a represents exactly zero.
func (a DD) IsZero() bool { return a.Hi == 0 && a.Lo == 0 }

// IsNaN reports whether either component is NaN.
func (a DD) IsNaN() bool { return math.IsNaN(a.Hi) || math.IsNaN(a.Lo) }

// Neg returns -a.
func (a DD) Neg() DD { return DD{Hi: -a.Hi, Lo: -a.Lo} }

// Abs returns |a|.
func (a DD) Abs() DD {
	if a.Hi < 0 || (a.Hi == 0 && a.Lo < 0) {
		return a.Neg()
	}
	return a
}

// AddFloat64 returns a + x with double-double accuracy.
func (a DD) AddFloat64(x float64) DD {
	s, e := fpu.TwoSum(a.Hi, x)
	e += a.Lo
	s, e = fpu.FastTwoSum(s, e)
	return DD{Hi: s, Lo: e}
}

// Add returns a + b with double-double accuracy (full Hida-Li-Bailey
// "accurate" addition: relative error bounded by 2^-104ish).
func (a DD) Add(b DD) DD {
	s1, e1 := fpu.TwoSum(a.Hi, b.Hi)
	s2, e2 := fpu.TwoSum(a.Lo, b.Lo)
	e1 += s2
	s1, e1 = fpu.FastTwoSum(s1, e1)
	e1 += e2
	s1, e1 = fpu.FastTwoSum(s1, e1)
	return DD{Hi: s1, Lo: e1}
}

// Sub returns a - b.
func (a DD) Sub(b DD) DD { return a.Add(b.Neg()) }

// SubFloat64 returns a - x.
func (a DD) SubFloat64(x float64) DD { return a.AddFloat64(-x) }

// MulFloat64 returns a * x.
func (a DD) MulFloat64(x float64) DD {
	p, e := fpu.TwoProd(a.Hi, x)
	e += a.Lo * x
	p, e = fpu.FastTwoSum(p, e)
	return DD{Hi: p, Lo: e}
}

// Mul returns a * b.
func (a DD) Mul(b DD) DD {
	p, e := fpu.TwoProd(a.Hi, b.Hi)
	e += a.Hi*b.Lo + a.Lo*b.Hi
	p, e = fpu.FastTwoSum(p, e)
	return DD{Hi: p, Lo: e}
}

// Div returns a / b (one Newton refinement over the float64 quotient).
func (a DD) Div(b DD) DD {
	q1 := a.Hi / b.Hi
	r := a.Sub(b.MulFloat64(q1))
	q2 := r.Hi / b.Hi
	r = r.Sub(b.MulFloat64(q2))
	q3 := r.Hi / b.Hi
	s, e := fpu.FastTwoSum(q1, q2)
	e += q3
	s, e = fpu.FastTwoSum(s, e)
	return DD{Hi: s, Lo: e}
}

// Cmp compares a and b, returning -1, 0, or +1.
func (a DD) Cmp(b DD) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	}
	return 0
}

// String formats the value showing both components.
func (a DD) String() string {
	return fmt.Sprintf("dd(%.17g + %.17g)", a.Hi, a.Lo)
}

// Sum reduces xs to a DD using double-double accumulation; the result is
// order-dependent only below ~2^-104 relative precision.
func Sum(xs []float64) DD {
	acc := Zero
	for _, x := range xs {
		acc = acc.AddFloat64(x)
	}
	return acc
}
