package dd

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func toBig(a DD) *big.Float {
	x := new(big.Float).SetPrec(300).SetFloat64(a.Hi)
	return x.Add(x, new(big.Float).SetPrec(300).SetFloat64(a.Lo))
}

func bigOf(x float64) *big.Float {
	return new(big.Float).SetPrec(300).SetFloat64(x)
}

// relErr returns |got-want|/|want| in big.Float arithmetic, or absolute
// error if want == 0.
func relErr(got, want *big.Float) float64 {
	d := new(big.Float).SetPrec(300).Sub(got, want)
	d.Abs(d)
	if want.Sign() != 0 {
		w := new(big.Float).SetPrec(300).Abs(want)
		d.Quo(d, w)
	}
	f, _ := d.Float64()
	return f
}

func usable(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
		if x != 0 && (math.Abs(x) > 0x1p500 || math.Abs(x) < 0x1p-500) {
			return false
		}
	}
	return true
}

func TestNormalization(t *testing.T) {
	a := New(1.0, 1e-30)
	if a.Hi != 1.0 || a.Lo != 1e-30 {
		t.Errorf("New(1,1e-30) = %v", a)
	}
	b := New(1e-30, 1.0) // unordered inputs must normalize
	if b.Hi != 1.0 {
		t.Errorf("New should normalize: %v", b)
	}
}

func TestAddFloat64Accuracy(t *testing.T) {
	f := func(a, b, c float64) bool {
		if !usable(a, b, c) {
			return true
		}
		got := FromFloat64(a).AddFloat64(b).AddFloat64(c)
		want := bigOf(a)
		want.Add(want, bigOf(b))
		want.Add(want, bigOf(c))
		return relErr(toBig(got), want) < 0x1p-100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestAddDDAccuracy(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if !usable(a, b, c, d) {
			return true
		}
		x := New(a, b*0x1p-40)
		y := New(c, d*0x1p-40)
		got := x.Add(y)
		want := new(big.Float).SetPrec(300).Add(toBig(x), toBig(y))
		return relErr(toBig(got), want) < 0x1p-98
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestMulAccuracy(t *testing.T) {
	f := func(a, b float64) bool {
		if !usable(a, b) {
			return true
		}
		x, y := FromFloat64(a), FromFloat64(b)
		got := x.Mul(y)
		want := new(big.Float).SetPrec(300).Mul(bigOf(a), bigOf(b))
		return relErr(toBig(got), want) < 0x1p-100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDivAccuracy(t *testing.T) {
	f := func(a, b float64) bool {
		if !usable(a, b) || b == 0 {
			return true
		}
		got := FromFloat64(a).Div(FromFloat64(b))
		want := new(big.Float).SetPrec(300).Quo(bigOf(a), bigOf(b))
		return relErr(toBig(got), want) < 0x1p-98
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDivMulRoundTrip(t *testing.T) {
	a := New(math.Pi, 1.2246467991473515e-16)
	b := FromFloat64(3.0)
	q := a.Div(b)
	back := q.Mul(b)
	diff := back.Sub(a).Abs().Float64()
	if diff > 1e-30 {
		t.Errorf("a/b*b differs from a by %g", diff)
	}
}

func TestCancellationCaptured(t *testing.T) {
	// 1e9 + 1e-9 - 1e9 must recover 1e-9 exactly in dd.
	acc := FromFloat64(1e9).AddFloat64(1e-9).AddFloat64(-1e9)
	if acc.Float64() != 1e-9 {
		t.Errorf("dd lost the small term: %v", acc)
	}
}

func TestSumKnownSeries(t *testing.T) {
	// sum of 1/2^i for i=1..60 = 1 - 2^-60 exactly.
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = math.Ldexp(1, -(i + 1))
	}
	got := Sum(xs)
	want := New(1, -0x1p-60)
	if got.Cmp(want) != 0 {
		t.Errorf("Sum geometric = %v, want %v", got, want)
	}
}

func TestCmpAndNegAbs(t *testing.T) {
	a := New(1, 1e-20)
	b := New(1, 2e-20)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if a.Neg().Cmp(Zero) != -1 {
		t.Error("Neg sign wrong")
	}
	if a.Neg().Abs().Cmp(a) != 0 {
		t.Error("Abs(Neg(a)) != a")
	}
}

func TestSubExactCancel(t *testing.T) {
	a := New(1.5, 3e-20)
	if !a.Sub(a).IsZero() {
		t.Error("a - a != 0")
	}
}

func TestIsNaN(t *testing.T) {
	if FromFloat64(1).IsNaN() {
		t.Error("1 is not NaN")
	}
	if !(DD{Hi: math.NaN()}).IsNaN() {
		t.Error("NaN not detected")
	}
}

func TestStringNonEmpty(t *testing.T) {
	if New(1, 0).String() == "" {
		t.Error("empty String()")
	}
}
