package reduce_test

import (
	"testing"

	"repro/internal/reduce"
)

// addMonoid is a trivial exact monoid over small integers (stored as
// float64), so fold/pairwise equivalences are exact.
type addMonoid struct{}

func (addMonoid) Leaf(x float64) float64     { return x }
func (addMonoid) Merge(a, b float64) float64 { return a + b }
func (addMonoid) Finalize(s float64) float64 { return s }

// trackMonoid records the parenthesization it performed, to verify the
// tree structures Fold and Pairwise build.
type trackMonoid struct{}

func (trackMonoid) Leaf(x float64) string { return itoa(int(x)) }
func (trackMonoid) Merge(a, b string) string {
	return "(" + a + "+" + b + ")"
}
func (trackMonoid) Finalize(s string) float64 { return float64(len(s)) }

func itoa(v int) string {
	if v < 0 || v > 9 {
		return "?"
	}
	return string(rune('0' + v))
}

// shape extracts the parenthesization a monoid run produced.
func shape(xs []float64, pairwise bool) string {
	m := trackMonoid{}
	var st string
	if pairwise {
		n := len(xs)
		level := make([]string, n)
		for i, x := range xs {
			level[i] = m.Leaf(x)
		}
		for n > 1 {
			half := n / 2
			for i := 0; i < half; i++ {
				level[i] = m.Merge(level[2*i], level[2*i+1])
			}
			if n%2 == 1 {
				level[half] = level[n-1]
				n = half + 1
			} else {
				n = half
			}
		}
		st = level[0]
	} else {
		st = m.Leaf(xs[0])
		for _, x := range xs[1:] {
			st = m.Merge(st, m.Leaf(x))
		}
	}
	return st
}

func TestFoldIsLeftAssociated(t *testing.T) {
	want := "(((1+2)+3)+4)"
	if got := shape([]float64{1, 2, 3, 4}, false); got != want {
		t.Errorf("fold shape %q, want %q", got, want)
	}
}

func TestPairwiseIsBalanced(t *testing.T) {
	want := "((1+2)+(3+4))"
	if got := shape([]float64{1, 2, 3, 4}, true); got != want {
		t.Errorf("pairwise shape %q, want %q", got, want)
	}
	// Odd count: the straggler joins the next level.
	want5 := "(((1+2)+(3+4))+5)"
	if got := shape([]float64{1, 2, 3, 4, 5}, true); got != want5 {
		t.Errorf("pairwise-5 shape %q, want %q", got, want5)
	}
}

func TestFoldAndPairwiseAgreeOnExactData(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	f := reduce.Fold[float64](addMonoid{}, xs)
	p := reduce.Pairwise[float64](addMonoid{}, xs, nil)
	if f != 28 || p != 28 {
		t.Errorf("fold=%g pairwise=%g, want 28", f, p)
	}
}

func TestBoxedRoundTrip(t *testing.T) {
	op := reduce.Boxed[float64]("add", addMonoid{})
	if op.Name() != "add" {
		t.Errorf("name %q", op.Name())
	}
	st := op.Leaf(1)
	st = op.Merge(st, op.Leaf(2))
	st = op.Merge(st, op.Leaf(3))
	if got := op.Finalize(st); got != 6 {
		t.Errorf("boxed fold = %g", got)
	}
}

func TestPairwiseScratchTooSmallFallsBack(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	small := make([]float64, 2)
	if got := reduce.Pairwise[float64](addMonoid{}, xs, small); got != 15 {
		t.Errorf("pairwise with small scratch = %g", got)
	}
}
