// Package reduce defines the contracts that connect summation algorithms
// to reduction trees and simulated collectives.
//
// A reduction algorithm participates in a tree reduction by exposing a
// commutative-monoid-like triple: lift an operand into a partial state
// (Leaf), combine two partial states (Merge), and extract the final
// float64 (Finalize). Floating-point merges are not associative — that
// nonassociativity is exactly what this repository studies — so "monoid"
// describes the shape of the API, not an algebraic guarantee. The
// prerounded algorithm is the exception: its Merge is exactly
// associative and commutative by construction, which is what makes it
// bitwise reproducible under arbitrary reduction trees.
package reduce

// Monoid is the generic (unboxed) form used by performance-critical tree
// executors. S is the algorithm-specific partial-reduction state.
type Monoid[S any] interface {
	// Leaf lifts one operand into a partial state.
	Leaf(x float64) S
	// Merge combines two partial states (an internal tree node).
	Merge(a, b S) S
	// Finalize extracts the float64 result at the root.
	Finalize(s S) float64
}

// State is a boxed partial-reduction state used by the dynamic Op form.
type State interface{}

// Op is the dynamic (runtime-selectable) form of a reduction operator:
// what an intelligent runtime hands to a collective once an algorithm
// has been chosen.
type Op interface {
	Name() string
	Leaf(x float64) State
	Merge(a, b State) State
	Finalize(s State) float64
}

// boxed adapts a generic Monoid into a dynamic Op.
type boxed[S any] struct {
	name string
	m    Monoid[S]
}

func (b boxed[S]) Name() string         { return b.name }
func (b boxed[S]) Leaf(x float64) State { return b.m.Leaf(x) }
func (b boxed[S]) Finalize(s State) float64 {
	return b.m.Finalize(s.(S))
}
func (b boxed[S]) Merge(a, c State) State {
	return b.m.Merge(a.(S), c.(S))
}

// Boxed wraps a generic monoid as a dynamic Op under the given name.
func Boxed[S any](name string, m Monoid[S]) Op {
	return boxed[S]{name: name, m: m}
}

// SliceFolder is the optional batch fast path a Monoid may implement.
// FoldSlice must return exactly the state a reference left-to-right fold
// would build — Leaf(xs[0]) merged in order with Leaf of every later
// element, or the Leaf(0) identity state for an empty slice — bit for
// bit. Implementations are hand-specialized, devirtualized loops (see
// internal/kernel); their bitwise equivalence to the reference fold is
// pinned by the kernel package's exhaustive tests, which is what lets
// Fold, the parallel chunk folds, and the tree executors substitute them
// without changing any result.
type SliceFolder[S any] interface {
	FoldSlice(xs []float64) S
}

// Fold reduces xs left-to-right (a fully unbalanced tree) under m. When
// m implements SliceFolder the devirtualized batch loop runs instead of
// the generic Leaf/Merge-per-element loop; the bits are identical.
func Fold[S any](m Monoid[S], xs []float64) float64 {
	if len(xs) == 0 {
		return m.Finalize(m.Leaf(0))
	}
	if sf, ok := m.(SliceFolder[S]); ok {
		return m.Finalize(sf.FoldSlice(xs))
	}
	acc := m.Leaf(xs[0])
	for _, x := range xs[1:] {
		acc = m.Merge(acc, m.Leaf(x))
	}
	return m.Finalize(acc)
}

// Pairwise reduces xs with a balanced binary tree under m. The scratch
// slice, if non-nil and large enough, avoids an allocation.
func Pairwise[S any](m Monoid[S], xs []float64, scratch []S) float64 {
	n := len(xs)
	if n == 0 {
		return m.Finalize(m.Leaf(0))
	}
	var level []S
	if cap(scratch) >= n {
		level = scratch[:n]
	} else {
		level = make([]S, n)
	}
	for i, x := range xs {
		level[i] = m.Leaf(x)
	}
	for n > 1 {
		half := n / 2
		for i := 0; i < half; i++ {
			level[i] = m.Merge(level[2*i], level[2*i+1])
		}
		if n%2 == 1 {
			level[half] = level[n-1]
			n = half + 1
		} else {
			n = half
		}
	}
	return m.Finalize(level[0])
}
