package kernel_test

import (
	"math"
	"testing"

	"repro/internal/kernel"
)

// Empty-merge identity audit for the fused accumulator (issue 6,
// satellite 3), mirroring selector.Profile.Merge: combining with a
// zero-observation accumulator is an exact identity, bit-preserving
// for every float component. Without the short-circuit the ST shadow
// (a+b) and the Neumaier pair merges can flip a -0 component to +0.

// fusedBitsEqual compares accumulators with float fields compared by
// bit pattern.
func fusedBitsEqual(a, b kernel.FusedAcc) bool {
	return a.N == b.N &&
		math.Float64bits(a.ST) == math.Float64bits(b.ST) &&
		math.Float64bits(a.SumS) == math.Float64bits(b.SumS) &&
		math.Float64bits(a.SumC) == math.Float64bits(b.SumC) &&
		math.Float64bits(a.AbsS) == math.Float64bits(b.AbsS) &&
		math.Float64bits(a.AbsC) == math.Float64bits(b.AbsC) &&
		a.MaxExp == b.MaxExp && a.MinExp == b.MinExp &&
		a.HasNonzero == b.HasNonzero &&
		a.Pos == b.Pos && a.Neg == b.Neg &&
		a.NonFinite == b.NonFinite
}

// TestFusedMergeEmptyIdentity: merge with an empty accumulator is a
// bit-exact identity in both directions, including for states holding
// -0 components that only the exported surface (not the fold) can
// construct.
func TestFusedMergeEmptyIdentity(t *testing.T) {
	empty := kernel.FusedProfileSum(nil)
	corpus := map[string]kernel.FusedAcc{
		"empty":      empty,
		"plain":      kernel.FusedProfileSum([]float64{1, 2.5, -3e7, 1e-12}),
		"cancel":     kernel.FusedProfileSum([]float64{1e16, 1, -1e16}),
		"zeros":      kernel.FusedProfileSum([]float64{0, 0}),
		"poisoned":   kernel.FusedProfileSum([]float64{math.NaN(), 1}),
		"neg-0-st":   {N: 3, ST: math.Copysign(0, -1), SumS: 1, AbsS: 3, HasNonzero: true, Pos: 1, Neg: 2},
		"neg-0-sumc": {N: 2, ST: 1, SumS: 1, SumC: math.Copysign(0, -1), AbsS: 1, HasNonzero: true, Pos: 2},
	}
	for name, a := range corpus {
		if got := a.Merge(empty); !fusedBitsEqual(got, a) {
			t.Errorf("%s: a.Merge(empty) = %+v, want %+v", name, got, a)
		}
		if got := empty.Merge(a); !fusedBitsEqual(got, a) {
			t.Errorf("%s: empty.Merge(a) = %+v, want %+v", name, got, a)
		}
	}
}

// TestFusedMergeEmptyShardsInvariant: interleaving empty shards into a
// chunked fused reduction leaves every output bit unchanged, so fused
// speculative results are independent of how many empty chunks the
// partition produced.
func TestFusedMergeEmptyShardsInvariant(t *testing.T) {
	xs := make([]float64, 3000)
	for i := range xs {
		// Deterministic mix of magnitudes and signs (incl. exact
		// cancellation pairs) without an RNG dependency.
		xs[i] = math.Ldexp(float64(i%13-6), i%40-20)
	}
	const chunk = 256
	want := kernel.FusedProfileSum(nil)
	for lo := 0; lo < len(xs); lo += chunk {
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		want = want.Merge(kernel.FusedProfileSum(xs[lo:hi]))
	}
	got := kernel.FusedProfileSum(nil)
	for lo := 0; lo < len(xs); lo += chunk {
		hi := lo + chunk
		if hi > len(xs) {
			hi = len(xs)
		}
		got = got.Merge(kernel.FusedProfileSum(nil)) // empty shard
		got = got.Merge(kernel.FusedProfileSum(xs[lo:hi]))
		got = got.Merge(kernel.FusedProfileSum(xs[lo:lo]))
	}
	if !fusedBitsEqual(got, want) {
		t.Fatalf("empty shards perturbed the fused merge:\n got %+v\nwant %+v", got, want)
	}
}

// TestFusedMergeEmptyPoisonPropagates: a poisoned zero-observation
// state must not short-circuit away its poison flag.
func TestFusedMergeEmptyPoisonPropagates(t *testing.T) {
	a := kernel.FusedProfileSum([]float64{1, 2})
	poison := kernel.FusedAcc{NonFinite: true}
	if got := a.Merge(poison); !got.NonFinite || got.N != a.N {
		t.Errorf("a.Merge(poison) = %+v, want poisoned with N=%d", got, a.N)
	}
	if got := poison.Merge(a); !got.NonFinite || got.N != a.N {
		t.Errorf("poison.Merge(a) = %+v, want poisoned with N=%d", got, a.N)
	}
}
