package kernel

import "repro/internal/binned"

// Binned folds xs into a fresh binned reproducible partial state with
// the two-level accumulate-direct batch kernel: eligible elements
// plain-add into an anchored quad of register-resident level-0
// partials (the AVX2 group engine where the CPU supports it, the
// portable four-sublane kernel otherwise), flushed exactly into the
// K-fold bins on a fixed schedule. Every operation is exact, so the
// result is bit-identical to the element-wise accumulator and to the
// reference deposit loop (BinnedRef) for any input — engine and batch
// boundaries are machine-local speed knobs outside the plan.
func Binned(xs []float64) binned.State {
	var st binned.State
	st.AddSlice(xs)
	return st
}

// BinnedRef folds xs with the per-element three-fold reference deposit
// loop — the pre-two-level path, kept as the oracle the fast path is
// pinned against (same represented value and Finalize bits; the
// in-memory bin decomposition may differ).
func BinnedRef(xs []float64) binned.State {
	var st binned.State
	st.AddSliceRef(xs)
	return st
}

// LaneBinned is Binned with an explicit level-0 sublane width k: 1
// selects the reference per-element loop, 2 the two-sublane group
// kernel, 4 or 8 the widest engine available. Unlike the lane kernels
// for ST/K/N — where width is part of the reduction plan because it
// changes the bits — every width here performs only exact operations,
// so all widths produce identical Finalize bits and width is safe to
// vary per machine. Width now carries real data-parallel work (each
// sublane owns an independent chain of level-0 partial sums), not just
// instruction interleaving: see BenchmarkBinnedSum1M for the measured
// spread.
func LaneBinned(xs []float64, k int) binned.State {
	var st binned.State
	st.AddSliceLanes(xs, k)
	return st
}
