package kernel

import "repro/internal/binned"

// Binned folds xs into a fresh binned reproducible partial state with
// the batch deposit kernel: carry bookkeeping hoisted per batch and a
// two-way interleaved deposit loop. Unlike the lane kernels for ST/K/N,
// interleaving cannot change the result — every deposit and lane fold
// is exact — so this is bit-identical to the element-wise accumulator
// for any input.
func Binned(xs []float64) binned.State {
	var st binned.State
	st.AddSlice(xs)
	return st
}

// LaneBinned is Binned with an explicit interleave width k (1, 2, 4, or
// 8). All widths produce bit-identical states; width is purely an
// instruction-level-parallelism knob, so — uniquely among the lane
// kernels — it is safe to vary per machine without changing the plan.
func LaneBinned(xs []float64, k int) binned.State {
	var st binned.State
	st.AddSliceLanes(xs, k)
	return st
}
