package kernel_test

import (
	"sync"
	"testing"

	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/reduce"
	"repro/internal/sum"
)

// benchData is the canonical 1M-element workload of the paper's
// experiments, generated once.
var benchData = sync.OnceValue(func() []float64 {
	return gen.Spec{N: 1 << 20, Cond: 1e4, DynRange: 16, Seed: 42}.Generate()
})

var (
	sinkF  float64
	sinkDD dd.DD
)

// The generic fold is the legacy reduce.Fold path: one Leaf plus one
// Merge through the monoid interface per element. refFold (kernel_test)
// replicates it without the FoldSlice fast path, so the generic/kernel
// pairs below measure exactly the devirtualization win the kernels are
// for; the lane variants additionally measure the ILP win of breaking
// the serial dependency chain.

func BenchmarkFoldST1M(b *testing.B) {
	xs := benchData()
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = (sum.STMonoid{}).Finalize(refFold[float64](sum.STMonoid{}, xs))
		}
	})
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = kernel.ST(xs)
		}
	})
	for _, k := range []int{2, 4, 8} {
		b.Run("lane"+string(rune('0'+k)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = kernel.LaneST(xs, k)
			}
		})
	}
}

func BenchmarkFoldKahan1M(b *testing.B) {
	xs := benchData()
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = (sum.KahanMonoid{}).Finalize(refFold[sum.KState](sum.KahanMonoid{}, xs))
		}
	})
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF, _ = kernel.Kahan(xs)
		}
	})
	for _, k := range []int{2, 4, 8} {
		b.Run("lane"+string(rune('0'+k)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF, _ = kernel.LaneKahan(xs, k)
			}
		})
	}
}

func BenchmarkFoldNeumaier1M(b *testing.B) {
	xs := benchData()
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = (sum.NeumaierMonoid{}).Finalize(refFold[sum.NState](sum.NeumaierMonoid{}, xs))
		}
	})
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF, _ = kernel.Neumaier(xs)
		}
	})
	for _, k := range []int{2, 4, 8} {
		b.Run("lane"+string(rune('0'+k)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF, _ = kernel.LaneNeumaier(xs, k)
			}
		})
	}
}

func BenchmarkFoldCP1M(b *testing.B) {
	xs := benchData()
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkDD = refFold[dd.DD](sum.CPMonoid{}, xs)
		}
	})
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkDD = kernel.CP(xs)
		}
	})
}

func BenchmarkFoldPairwise1M(b *testing.B) {
	xs := benchData()
	b.Run("classic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = sum.Pairwise(xs)
		}
	})
	for _, k := range []int{2, 4, 8} {
		b.Run("lane"+string(rune('0'+k)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF = kernel.LanePairwise(xs, k)
			}
		})
	}
}

// BenchmarkReduceFoldST1M measures the wired-through entry point: the
// public reduce.Fold, which now takes the FoldSlice fast path for the
// sum monoids.
func BenchmarkReduceFoldST1M(b *testing.B) {
	xs := benchData()
	for i := 0; i < b.N; i++ {
		sinkF = reduce.Fold[float64](sum.STMonoid{}, xs)
	}
}
