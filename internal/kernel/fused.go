package kernel

import (
	"math"

	"repro/internal/fpu"
)

// Fused profile+sum kernel: one memory pass that computes everything the
// runtime selector needs to pick an algorithm AND the two cheapest
// candidate answers.
//
// The legacy serving path reads the data twice — selector.ProfileOf(xs)
// to build the selection profile, then alg.Sum(xs) once the policy has
// chosen — so runtime selection costs 2x memory bandwidth even when the
// policy settles on the cheapest algorithm. FusedProfileSum folds the
// profile statistics and two speculative sums in the same loop:
//
//   - ST: the plain left-to-right float64 sum, bit-identical to ST(xs)
//     (zeros and non-finite values included, exactly like sum.Standard);
//   - Sum pair (SumS, SumC): the compensated Neumaier state over the
//     nonzero finite values — the profiling statistic Σx at full
//     compensated accuracy, and simultaneously the Neumaier answer,
//     bit-identical to Neumaier(xs) whenever no non-finite value or
//     intermediate overflow occurred (zeros are exact no-ops on a
//     Neumaier accumulator: t = s+0 = s and the residual is +0, which
//     cannot flip c's sign since c never holds -0 on a finite history).
//
// If the policy then picks ST or Neumaier, the fused pass already holds
// the answer and the data is never read again; only escalations to
// CP/PR/superacc pay a second pass. The selector layer
// (selector.FusedProfileSum / SelectAndSum) owns that protocol and pins
// both equalities with exhaustive tests.
//
// FusedAcc is also a monoid (Merge), component-wise identical to
// selector.Profile.Merge plus the engine merges for ST (a+b) and
// Neumaier (nmerge), so per-chunk fused accumulators combined over the
// parallel engine's fixed tree reproduce parallel.Sum's bits for both
// speculative algorithms at any worker count.

// FusedAcc is the state of one fused profile+sum pass. The profile
// fields mirror selector.Profile field-for-field (same accumulation
// order, same bits); ST carries the plain-sum shadow.
type FusedAcc struct {
	// N counts every element, zeros and non-finite values included.
	N int64
	// ST is the plain left-to-right sum of all elements (== kernel.ST).
	ST float64
	// SumS, SumC is the compensated Neumaier pair over nonzero finite
	// elements: Σx for the profile, and the Neumaier(xs) state when
	// nothing non-finite was seen.
	SumS, SumC float64
	// AbsS, AbsC hold Σ|x| over nonzero finite elements. The fold
	// accumulates AbsS plainly (|x| never cancels, so n·u relative
	// accuracy is ample); AbsC is populated only by Merge's exact
	// combination, mirroring selector.Profile.SumAbs.
	AbsS, AbsC float64
	// MaxExp, MinExp are the extreme binary exponents of the nonzero
	// finite elements; valid only when HasNonzero.
	MaxExp, MinExp int
	HasNonzero     bool
	// Pos, Neg count strictly positive and negative finite elements.
	Pos, Neg int64
	// NonFinite records that a NaN or ±Inf was seen; such values enter
	// only N and the ST shadow (where they poison the plain sum exactly
	// as sum.Standard would).
	NonFinite bool
}

// FusedProfileSum folds xs once, producing the complete profile state
// and both speculative sums. The loop keeps four independent float64
// dependency chains (st, the TwoSum pair, the plain |x| sum) that
// schedule in parallel on any modern core, and counts signs branch-free
// from the sign bit, so the pass runs at nearly the speed of the plain
// compensated fold alone.
func FusedProfileSum(xs []float64) FusedAcc {
	var (
		st, s, c, abs float64
		maxE, minE    int
		hasNZ         bool
		pos, neg      int64
		nonFinite     bool
	)
	for _, x := range xs {
		st += x
		if x == 0 {
			continue
		}
		b := math.Float64bits(x)
		e := int(b >> 52 & 0x7ff)
		if e == 0x7ff {
			nonFinite = true
			continue
		}
		// One Neumaier step for Σx. The branch-free TwoSum residual
		// equals the branched Neumaier residual bit-for-bit (both are
		// the exact representable error of the same addition), so the
		// pair tracks kernel.Neumaier exactly.
		t, e2 := fpu.TwoSum(s, x)
		c += e2
		s = t
		abs += math.Abs(x)
		if e == 0 {
			e = math.Ilogb(x) // subnormal: decode via the slow path
		} else {
			e -= 1023
		}
		if hasNZ {
			if e > maxE {
				maxE = e
			}
			if e < minE {
				minE = e
			}
		} else {
			hasNZ, maxE, minE = true, e, e
		}
		sb := int64(b >> 63)
		neg += sb
		pos += 1 - sb
	}
	return FusedAcc{
		N: int64(len(xs)), ST: st,
		SumS: s, SumC: c, AbsS: abs,
		MaxExp: maxE, MinExp: minE, HasNonzero: hasNZ,
		Pos: pos, Neg: neg, NonFinite: nonFinite,
	}
}

// Merge combines two fused accumulators describing adjacent ranges:
// a+b for the ST shadow (sum.STMonoid), nmerge for both compensated
// pairs (sum.NeumaierMonoid), and selector.Profile.Merge's rules for
// the discrete fields. Merging per-chunk FusedProfileSum states over
// the parallel engine's fixed tree therefore reproduces, bit-for-bit,
// what parallel.Sum computes for ST and Neumaier and what
// selector.ProfileOfParallel computes for the profile.
func (a FusedAcc) Merge(b FusedAcc) FusedAcc {
	// Zero-observation sides merge as an exact identity (mirroring
	// selector.Profile.Merge): the general path's ST += and nmerge
	// against zero are value-preserving but can flip a -0 shadow sum
	// to +0, breaking bitwise agreement with the serial fold.
	if b.N == 0 && !b.NonFinite {
		return a
	}
	if a.N == 0 && !a.NonFinite {
		return b
	}
	out := FusedAcc{
		N:         a.N + b.N,
		ST:        a.ST + b.ST,
		Pos:       a.Pos + b.Pos,
		Neg:       a.Neg + b.Neg,
		NonFinite: a.NonFinite || b.NonFinite,
	}
	out.SumS, out.SumC = nmerge(a.SumS, a.SumC, b.SumS, b.SumC)
	out.AbsS, out.AbsC = nmerge(a.AbsS, a.AbsC, b.AbsS, b.AbsC)
	switch {
	case a.HasNonzero && b.HasNonzero:
		out.HasNonzero = true
		out.MaxExp = max(a.MaxExp, b.MaxExp)
		out.MinExp = min(a.MinExp, b.MinExp)
	case a.HasNonzero:
		out.HasNonzero, out.MaxExp, out.MinExp = true, a.MaxExp, a.MinExp
	case b.HasNonzero:
		out.HasNonzero, out.MaxExp, out.MinExp = true, b.MaxExp, b.MinExp
	}
	return out
}
