package kernel

import (
	"fmt"

	"repro/internal/fpu"
)

// Lane kernels: fixed-width K-accumulator folds. Element i feeds lane
// i mod K (fixed stride partition); after the pass the K lane states are
// merged left-to-right — ((lane0 op lane1) op lane2) op ... — with the
// algorithm's own merge operator. The plan depends only on (len(xs), K),
// never on scheduling, so the bits are stable across machines and runs;
// K is part of the plan exactly like parallel.Config.ChunkSize.

// LaneWidths lists the supported lane widths, in order.
var LaneWidths = []int{1, 2, 4, 8}

// ValidLaneWidth reports whether k is a supported lane width.
func ValidLaneWidth(k int) bool { return k == 1 || k == 2 || k == 4 || k == 8 }

func badLaneWidth(k int) string {
	return fmt.Sprintf("kernel: invalid lane width %d (want 1, 2, 4, or 8)", k)
}

// LaneST sums xs with k interleaved plain accumulators. k = 1 is exactly
// ST. Panics unless ValidLaneWidth(k).
func LaneST(xs []float64, k int) float64 {
	switch k {
	case 1:
		return ST(xs)
	case 2:
		return laneST2(xs)
	case 4:
		return laneST4(xs)
	case 8:
		return laneST8(xs)
	}
	panic(badLaneWidth(k))
}

func laneST2(xs []float64) float64 {
	var s0, s1 float64
	n := len(xs)
	i := 0
	for ; i+2 <= n; i += 2 {
		s0 += xs[i]
		s1 += xs[i+1]
	}
	if i < n {
		s0 += xs[i]
	}
	return s0 + s1
}

func laneST4(xs []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(xs)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += xs[i]
		s1 += xs[i+1]
		s2 += xs[i+2]
		s3 += xs[i+3]
	}
	if i < n {
		s0 += xs[i]
	}
	if i+1 < n {
		s1 += xs[i+1]
	}
	if i+2 < n {
		s2 += xs[i+2]
	}
	return ((s0 + s1) + s2) + s3
}

func laneST8(xs []float64) float64 {
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	n := len(xs)
	i := 0
	for ; i+8 <= n; i += 8 {
		s0 += xs[i]
		s1 += xs[i+1]
		s2 += xs[i+2]
		s3 += xs[i+3]
		s4 += xs[i+4]
		s5 += xs[i+5]
		s6 += xs[i+6]
		s7 += xs[i+7]
	}
	if i < n {
		s0 += xs[i]
	}
	if i+1 < n {
		s1 += xs[i+1]
	}
	if i+2 < n {
		s2 += xs[i+2]
	}
	if i+3 < n {
		s3 += xs[i+3]
	}
	if i+4 < n {
		s4 += xs[i+4]
	}
	if i+5 < n {
		s5 += xs[i+5]
	}
	if i+6 < n {
		s6 += xs[i+6]
	}
	return ((((((s0 + s1) + s2) + s3) + s4) + s5) + s6) + s7
}

// kadd is one Kahan compensated-add step (the sum.KahanAcc recurrence).
func kadd(s, c, x float64) (float64, float64) {
	y := x - c
	t := s + y
	return t, (t - s) - y
}

// kmerge combines two Kahan lane states with sum.KahanMonoid's merge.
func kmerge(sa, ca, sb, cb float64) (float64, float64) {
	y := sb - (ca + cb)
	t := sa + y
	return t, (t - sa) - y
}

// LaneKahan sums xs with k interleaved compensated accumulators and
// returns the merged (sum, correction) state. k = 1 is exactly Kahan.
// Panics unless ValidLaneWidth(k).
func LaneKahan(xs []float64, k int) (s, c float64) {
	switch k {
	case 1:
		return Kahan(xs)
	case 2:
		return laneKahan2(xs)
	case 4:
		return laneKahan4(xs)
	case 8:
		return laneKahan8(xs)
	}
	panic(badLaneWidth(k))
}

func laneKahan2(xs []float64) (float64, float64) {
	var s0, c0, s1, c1 float64
	n := len(xs)
	i := 0
	for ; i+2 <= n; i += 2 {
		s0, c0 = kadd(s0, c0, xs[i])
		s1, c1 = kadd(s1, c1, xs[i+1])
	}
	if i < n {
		s0, c0 = kadd(s0, c0, xs[i])
	}
	return kmerge(s0, c0, s1, c1)
}

func laneKahan4(xs []float64) (float64, float64) {
	var s0, c0, s1, c1, s2, c2, s3, c3 float64
	n := len(xs)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0, c0 = kadd(s0, c0, xs[i])
		s1, c1 = kadd(s1, c1, xs[i+1])
		s2, c2 = kadd(s2, c2, xs[i+2])
		s3, c3 = kadd(s3, c3, xs[i+3])
	}
	if i < n {
		s0, c0 = kadd(s0, c0, xs[i])
	}
	if i+1 < n {
		s1, c1 = kadd(s1, c1, xs[i+1])
	}
	if i+2 < n {
		s2, c2 = kadd(s2, c2, xs[i+2])
	}
	s, c := kmerge(s0, c0, s1, c1)
	s, c = kmerge(s, c, s2, c2)
	return kmerge(s, c, s3, c3)
}

func laneKahan8(xs []float64) (float64, float64) {
	var s0, c0, s1, c1, s2, c2, s3, c3 float64
	var s4, c4, s5, c5, s6, c6, s7, c7 float64
	n := len(xs)
	i := 0
	for ; i+8 <= n; i += 8 {
		s0, c0 = kadd(s0, c0, xs[i])
		s1, c1 = kadd(s1, c1, xs[i+1])
		s2, c2 = kadd(s2, c2, xs[i+2])
		s3, c3 = kadd(s3, c3, xs[i+3])
		s4, c4 = kadd(s4, c4, xs[i+4])
		s5, c5 = kadd(s5, c5, xs[i+5])
		s6, c6 = kadd(s6, c6, xs[i+6])
		s7, c7 = kadd(s7, c7, xs[i+7])
	}
	if i < n {
		s0, c0 = kadd(s0, c0, xs[i])
	}
	if i+1 < n {
		s1, c1 = kadd(s1, c1, xs[i+1])
	}
	if i+2 < n {
		s2, c2 = kadd(s2, c2, xs[i+2])
	}
	if i+3 < n {
		s3, c3 = kadd(s3, c3, xs[i+3])
	}
	if i+4 < n {
		s4, c4 = kadd(s4, c4, xs[i+4])
	}
	if i+5 < n {
		s5, c5 = kadd(s5, c5, xs[i+5])
	}
	if i+6 < n {
		s6, c6 = kadd(s6, c6, xs[i+6])
	}
	s, c := kmerge(s0, c0, s1, c1)
	s, c = kmerge(s, c, s2, c2)
	s, c = kmerge(s, c, s3, c3)
	s, c = kmerge(s, c, s4, c4)
	s, c = kmerge(s, c, s5, c5)
	s, c = kmerge(s, c, s6, c6)
	return kmerge(s, c, s7, c7)
}

// nadd is one Neumaier compensated-add step (the sum.NeumaierAcc
// recurrence).
func nadd(s, c, x float64) (float64, float64) {
	t := s + x
	if abs(s) >= abs(x) {
		c += (s - t) + x
	} else {
		c += (x - t) + s
	}
	return t, c
}

// nmerge combines two Neumaier lane states with sum.NeumaierMonoid's
// merge: an exact TwoSum of the partial sums, corrections added plainly.
func nmerge(sa, ca, sb, cb float64) (float64, float64) {
	s, e := fpu.TwoSum(sa, sb)
	return s, ca + cb + e
}

// LaneNeumaier sums xs with k interleaved Neumaier accumulators and
// returns the merged (sum, correction) state. k = 1 is exactly Neumaier.
// Panics unless ValidLaneWidth(k).
func LaneNeumaier(xs []float64, k int) (s, c float64) {
	switch k {
	case 1:
		return Neumaier(xs)
	case 2:
		return laneNeumaier2(xs)
	case 4:
		return laneNeumaier4(xs)
	case 8:
		return laneNeumaier8(xs)
	}
	panic(badLaneWidth(k))
}

func laneNeumaier2(xs []float64) (float64, float64) {
	var s0, c0, s1, c1 float64
	n := len(xs)
	i := 0
	for ; i+2 <= n; i += 2 {
		s0, c0 = nadd(s0, c0, xs[i])
		s1, c1 = nadd(s1, c1, xs[i+1])
	}
	if i < n {
		s0, c0 = nadd(s0, c0, xs[i])
	}
	return nmerge(s0, c0, s1, c1)
}

func laneNeumaier4(xs []float64) (float64, float64) {
	var s0, c0, s1, c1, s2, c2, s3, c3 float64
	n := len(xs)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0, c0 = nadd(s0, c0, xs[i])
		s1, c1 = nadd(s1, c1, xs[i+1])
		s2, c2 = nadd(s2, c2, xs[i+2])
		s3, c3 = nadd(s3, c3, xs[i+3])
	}
	if i < n {
		s0, c0 = nadd(s0, c0, xs[i])
	}
	if i+1 < n {
		s1, c1 = nadd(s1, c1, xs[i+1])
	}
	if i+2 < n {
		s2, c2 = nadd(s2, c2, xs[i+2])
	}
	s, c := nmerge(s0, c0, s1, c1)
	s, c = nmerge(s, c, s2, c2)
	return nmerge(s, c, s3, c3)
}

func laneNeumaier8(xs []float64) (float64, float64) {
	var s0, c0, s1, c1, s2, c2, s3, c3 float64
	var s4, c4, s5, c5, s6, c6, s7, c7 float64
	n := len(xs)
	i := 0
	for ; i+8 <= n; i += 8 {
		s0, c0 = nadd(s0, c0, xs[i])
		s1, c1 = nadd(s1, c1, xs[i+1])
		s2, c2 = nadd(s2, c2, xs[i+2])
		s3, c3 = nadd(s3, c3, xs[i+3])
		s4, c4 = nadd(s4, c4, xs[i+4])
		s5, c5 = nadd(s5, c5, xs[i+5])
		s6, c6 = nadd(s6, c6, xs[i+6])
		s7, c7 = nadd(s7, c7, xs[i+7])
	}
	if i < n {
		s0, c0 = nadd(s0, c0, xs[i])
	}
	if i+1 < n {
		s1, c1 = nadd(s1, c1, xs[i+1])
	}
	if i+2 < n {
		s2, c2 = nadd(s2, c2, xs[i+2])
	}
	if i+3 < n {
		s3, c3 = nadd(s3, c3, xs[i+3])
	}
	if i+4 < n {
		s4, c4 = nadd(s4, c4, xs[i+4])
	}
	if i+5 < n {
		s5, c5 = nadd(s5, c5, xs[i+5])
	}
	if i+6 < n {
		s6, c6 = nadd(s6, c6, xs[i+6])
	}
	s, c := nmerge(s0, c0, s1, c1)
	s, c = nmerge(s, c, s2, c2)
	s, c = nmerge(s, c, s3, c3)
	s, c = nmerge(s, c, s4, c4)
	s, c = nmerge(s, c, s5, c5)
	s, c = nmerge(s, c, s6, c6)
	return nmerge(s, c, s7, c7)
}

// laneBlock is the base-case block length of LanePairwise, matching
// sum.Pairwise's cache-friendly recursion cutoff.
const laneBlock = 64

// LanePairwise sums xs with a balanced recursive split (the same
// splitting rule as sum.Pairwise) whose base-case blocks are summed with
// the k-lane ST kernel instead of a serial loop. k = 1 reproduces
// sum.Pairwise exactly; wider k is a different (equally deterministic)
// plan. Panics unless ValidLaneWidth(k).
func LanePairwise(xs []float64, k int) float64 {
	if !ValidLaneWidth(k) {
		panic(badLaneWidth(k))
	}
	return lanePairwise(xs, k)
}

func lanePairwise(xs []float64, k int) float64 {
	if len(xs) <= laneBlock {
		return LaneST(xs, k)
	}
	half := len(xs) / 2
	return lanePairwise(xs[:half], k) + lanePairwise(xs[half:], k)
}
