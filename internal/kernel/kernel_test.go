package kernel_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/dd"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/reduce"
	"repro/internal/sum"
	"repro/internal/superacc"
)

func bits(v float64) uint64 { return math.Float64bits(v) }

// refFold is the reference left-to-right fold — the exact sequence
// reduce.Fold documents — executed through the generic Leaf/Merge
// interface with no fast path, so kernels are tested against the
// generic semantics rather than against themselves.
func refFold[S any](m reduce.Monoid[S], xs []float64) S {
	if len(xs) == 0 {
		return m.Leaf(0)
	}
	acc := m.Leaf(xs[0])
	for _, x := range xs[1:] {
		acc = m.Merge(acc, m.Leaf(x))
	}
	return acc
}

// sizes covers the lane-width and block edge cases: empty, below every
// lane width, at and around multiples of 2/4/8 and of the pairwise
// block, and a large non-aligned length.
var sizes = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 127, 128, 129, 1000, 4096, 4097}

// inputs generates the adversarial corners of the generator space at
// length n (n < 2 falls back to fixed values, gen requires N >= 2).
func inputs(n int) map[string][]float64 {
	switch n {
	case 0:
		return map[string][]float64{"empty": nil}
	case 1:
		return map[string][]float64{"single": {3.25}, "negsingle": {-0x1p-40}}
	}
	return map[string][]float64{
		"benign":    gen.Spec{N: n, Cond: 1, DynRange: 8, Seed: uint64(n)}.Generate(),
		"illcond":   gen.Spec{N: n, Cond: 1e8, DynRange: 24, Seed: uint64(n) + 1}.Generate(),
		"sumzero":   gen.Spec{N: n, Cond: math.Inf(1), DynRange: 32, Seed: uint64(n) + 2}.Generate(),
		"widerange": gen.Spec{N: n, Cond: 1e4, DynRange: 40, Seed: uint64(n) + 3}.Generate(),
	}
}

// TestKernelFoldEquivalence pins every reference-order kernel bitwise
// against the generic fold of its monoid, state component by state
// component, across algorithms x sizes x adversarial inputs.
func TestKernelFoldEquivalence(t *testing.T) {
	for _, n := range sizes {
		for name, xs := range inputs(n) {
			tag := fmt.Sprintf("n=%d/%s", n, name)

			if got, want := kernel.ST(xs), refFold[float64](sum.STMonoid{}, xs); bits(got) != bits(want) {
				t.Errorf("%s: ST kernel %x, reference fold %x", tag, bits(got), bits(want))
			}

			ks, kc := kernel.Kahan(xs)
			kref := refFold[sum.KState](sum.KahanMonoid{}, xs)
			if bits(ks) != bits(kref.S) || bits(kc) != bits(kref.C) {
				t.Errorf("%s: Kahan kernel (%x,%x), reference (%x,%x)",
					tag, bits(ks), bits(kc), bits(kref.S), bits(kref.C))
			}

			ns, nc := kernel.Neumaier(xs)
			nref := refFold[sum.NState](sum.NeumaierMonoid{}, xs)
			if bits(ns) != bits(nref.S) || bits(nc) != bits(nref.C) {
				t.Errorf("%s: Neumaier kernel (%x,%x), reference (%x,%x)",
					tag, bits(ns), bits(nc), bits(nref.S), bits(nref.C))
			}

			cp := kernel.CP(xs)
			cpref := refFold[dd.DD](sum.CPMonoid{}, xs)
			if bits(cp.Hi) != bits(cpref.Hi) || bits(cp.Lo) != bits(cpref.Lo) {
				t.Errorf("%s: CP kernel (%x,%x), reference (%x,%x)",
					tag, bits(cp.Hi), bits(cp.Lo), bits(cpref.Hi), bits(cpref.Lo))
			}
		}
	}
}

// TestReduceFoldFastPathEquivalence proves the end-to-end substitution:
// reduce.Fold over the sum monoids (which now route through FoldSlice)
// returns the identical bits to the generic reference fold.
func TestReduceFoldFastPathEquivalence(t *testing.T) {
	for _, n := range sizes {
		for name, xs := range inputs(n) {
			tag := fmt.Sprintf("n=%d/%s", n, name)
			check := func(alg string, got, want float64) {
				if bits(got) != bits(want) {
					t.Errorf("%s/%s: Fold fast path %x, reference %x", tag, alg, bits(got), bits(want))
				}
			}
			stm := sum.STMonoid{}
			check("ST", reduce.Fold[float64](stm, xs), stm.Finalize(refFold[float64](stm, xs)))
			km := sum.KahanMonoid{}
			check("K", reduce.Fold[sum.KState](km, xs), km.Finalize(refFold[sum.KState](km, xs)))
			nm := sum.NeumaierMonoid{}
			check("N", reduce.Fold[sum.NState](nm, xs), nm.Finalize(refFold[sum.NState](nm, xs)))
			cm := sum.CPMonoid{}
			check("CP", reduce.Fold[dd.DD](cm, xs), cm.Finalize(refFold[dd.DD](cm, xs)))
		}
	}
}

// laneRefST is the lane-plan reference: gather lane l = elements at
// indices congruent to l mod k, fold each lane with the monoid's
// reference fold, merge lane states left-to-right. The hand-unrolled
// kernels must match this definition exactly.
func laneRef[S any](m reduce.Monoid[S], xs []float64, k int) S {
	lanes := make([]S, k)
	for l := 0; l < k; l++ {
		var vals []float64
		for i := l; i < len(xs); i += k {
			vals = append(vals, xs[i])
		}
		lanes[l] = refFold(m, vals)
	}
	st := lanes[0]
	for _, s := range lanes[1:] {
		st = m.Merge(st, s)
	}
	return st
}

// TestLaneKernelEquivalence pins every lane kernel bitwise against the
// stride-partition-plus-ordered-merge plan definition, for every
// supported width, across sizes (including n < k) and adversarial
// inputs.
func TestLaneKernelEquivalence(t *testing.T) {
	for _, n := range sizes {
		for name, xs := range inputs(n) {
			for _, k := range kernel.LaneWidths {
				tag := fmt.Sprintf("n=%d/%s/k=%d", n, name, k)

				stWant := (sum.STMonoid{}).Finalize(laneRef[float64](sum.STMonoid{}, xs, k))
				if got := kernel.LaneST(xs, k); bits(got) != bits(stWant) {
					t.Errorf("%s: LaneST %x, plan reference %x", tag, bits(got), bits(stWant))
				}

				ks, kc := kernel.LaneKahan(xs, k)
				kref := laneRef[sum.KState](sum.KahanMonoid{}, xs, k)
				if bits(ks) != bits(kref.S) || bits(kc) != bits(kref.C) {
					t.Errorf("%s: LaneKahan (%x,%x), plan reference (%x,%x)",
						tag, bits(ks), bits(kc), bits(kref.S), bits(kref.C))
				}

				ns, nc := kernel.LaneNeumaier(xs, k)
				nref := laneRef[sum.NState](sum.NeumaierMonoid{}, xs, k)
				if bits(ns) != bits(nref.S) || bits(nc) != bits(nref.C) {
					t.Errorf("%s: LaneNeumaier (%x,%x), plan reference (%x,%x)",
						tag, bits(ns), bits(nc), bits(nref.S), bits(nref.C))
				}
			}
		}
	}
}

// lanePairwiseRef mirrors LanePairwise's plan definition with the lane
// reference instead of the unrolled base kernel.
func lanePairwiseRef(xs []float64, k int) float64 {
	if len(xs) <= 64 {
		return sum.STMonoid{}.Finalize(laneRef[float64](sum.STMonoid{}, xs, k))
	}
	half := len(xs) / 2
	return lanePairwiseRef(xs[:half], k) + lanePairwiseRef(xs[half:], k)
}

func TestLanePairwiseEquivalence(t *testing.T) {
	for _, n := range sizes {
		for name, xs := range inputs(n) {
			// Width 1 must reproduce the classic pairwise sum exactly.
			if got, want := kernel.LanePairwise(xs, 1), sum.Pairwise(xs); bits(got) != bits(want) {
				t.Errorf("n=%d/%s: LanePairwise(k=1) %x, sum.Pairwise %x", n, name, bits(got), bits(want))
			}
			for _, k := range kernel.LaneWidths {
				if got, want := kernel.LanePairwise(xs, k), lanePairwiseRef(xs, k); bits(got) != bits(want) {
					t.Errorf("n=%d/%s/k=%d: LanePairwise %x, plan reference %x", n, name, k, bits(got), bits(want))
				}
			}
		}
	}
}

// TestKernelNonFinite checks the poison semantics the selector's profile
// promises: non-finite inputs yield non-finite results from every
// kernel, matching the generic fold's IEEE propagation.
func TestKernelNonFinite(t *testing.T) {
	poisoned := map[string][]float64{
		"nan":     {1, 2, math.NaN(), 4, 5, 6, 7, 8, 9},
		"inf":     {1, math.Inf(1), 2, 3, 4, 5, 6, 7, 8},
		"neginf":  {math.Inf(-1), 1, 2, 3, 4, 5, 6, 7, 8},
		"infclash": {math.Inf(1), math.Inf(-1), 1, 2, 3, 4, 5, 6, 7},
	}
	for name, xs := range poisoned {
		nonFinite := func(kind string, v float64) {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				t.Errorf("%s/%s: finite result %g from poisoned input", name, kind, v)
			}
		}
		nonFinite("ST", kernel.ST(xs))
		s, _ := kernel.Kahan(xs)
		nonFinite("Kahan", s)
		s, c := kernel.Neumaier(xs)
		nonFinite("Neumaier", s+c)
		nonFinite("CP-hi", kernel.CP(xs).Hi)
		for _, k := range kernel.LaneWidths {
			nonFinite(fmt.Sprintf("LaneST%d", k), kernel.LaneST(xs, k))
			s, _ := kernel.LaneKahan(xs, k)
			nonFinite(fmt.Sprintf("LaneKahan%d", k), s)
			s, c := kernel.LaneNeumaier(xs, k)
			nonFinite(fmt.Sprintf("LaneNeumaier%d", k), s+c)
			nonFinite(fmt.Sprintf("LanePairwise%d", k), kernel.LanePairwise(xs, k))
		}
		// The ST kernel must propagate exactly as the generic fold does
		// (same NaN-vs-Inf outcome), since it is a bit-identical fast path.
		got, want := kernel.ST(xs), refFold[float64](sum.STMonoid{}, xs)
		if math.IsNaN(got) != math.IsNaN(want) || (!math.IsNaN(got) && bits(got) != bits(want)) {
			t.Errorf("%s: ST kernel %v, reference fold %v", name, got, want)
		}
	}
}

// TestLaneWidthValidation pins the supported-width set and the panic on
// anything else.
func TestLaneWidthValidation(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		if !kernel.ValidLaneWidth(k) {
			t.Errorf("ValidLaneWidth(%d) = false", k)
		}
	}
	for _, k := range []int{-1, 0, 3, 5, 6, 7, 9, 16} {
		if kernel.ValidLaneWidth(k) {
			t.Errorf("ValidLaneWidth(%d) = true", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("LaneST with invalid width did not panic")
		}
	}()
	kernel.LaneST([]float64{1, 2, 3}, 3)
}

// TestExactBatchDeposit pins the superaccumulator batch loop (used via
// kernel.Exact) bitwise against element-wise deposits, including the
// NaN poison path.
func TestExactBatchDeposit(t *testing.T) {
	for _, n := range sizes {
		for name, xs := range inputs(n) {
			batch := superacc.New()
			kernel.Exact(batch, xs)
			single := superacc.New()
			for _, x := range xs {
				single.Add(x)
			}
			if bits(batch.Float64()) != bits(single.Float64()) {
				t.Errorf("n=%d/%s: batch deposit %x, element-wise %x",
					n, name, bits(batch.Float64()), bits(single.Float64()))
			}
		}
	}
	poisoned := superacc.New()
	kernel.Exact(poisoned, []float64{1, math.NaN(), 2})
	if !math.IsNaN(poisoned.Float64()) {
		t.Error("batch deposit dropped the NaN poison flag")
	}
}

// TestKernelAllocs pins the zero-allocation contract of every kernel
// fold, mirroring the fused-engine alloc tests.
func TestKernelAllocs(t *testing.T) {
	xs := gen.Spec{N: 4097, Cond: 1e4, DynRange: 16, Seed: 77}.Generate()
	var sinkF float64
	var sinkDD dd.DD
	folds := map[string]func(){
		"ST":       func() { sinkF = kernel.ST(xs) },
		"Kahan":    func() { sinkF, _ = kernel.Kahan(xs) },
		"Neumaier": func() { sinkF, _ = kernel.Neumaier(xs) },
		"CP":       func() { sinkDD = kernel.CP(xs) },
	}
	for _, k := range kernel.LaneWidths {
		k := k
		folds[fmt.Sprintf("LaneST%d", k)] = func() { sinkF = kernel.LaneST(xs, k) }
		folds[fmt.Sprintf("LaneKahan%d", k)] = func() { sinkF, _ = kernel.LaneKahan(xs, k) }
		folds[fmt.Sprintf("LaneNeumaier%d", k)] = func() { sinkF, _ = kernel.LaneNeumaier(xs, k) }
		folds[fmt.Sprintf("LanePairwise%d", k)] = func() { sinkF = kernel.LanePairwise(xs, k) }
	}
	for name, f := range folds {
		if allocs := testing.AllocsPerRun(20, f); allocs != 0 {
			t.Errorf("%s: %v allocs per fold, want 0", name, allocs)
		}
	}
	_, _ = sinkF, sinkDD
}
