package kernel_test

import (
	"math"
	"testing"

	"repro/internal/binned"
	"repro/internal/kernel"
	"repro/internal/sum"
	"repro/internal/superacc"
)

var sinkBN binned.State

// TestBinnedKernelEquivalenceAndAllocs pins the kernel contract: every
// lane width produces a state bit-identical to the element-wise
// accumulator, and the fast path performs zero heap allocations.
func TestBinnedKernelEquivalenceAndAllocs(t *testing.T) {
	xs := benchData()[:65536]
	var ref binned.State
	for _, x := range xs {
		ref.Add(x)
	}
	want := math.Float64bits(ref.Finalize())
	st := kernel.Binned(xs)
	if got := math.Float64bits(st.Finalize()); got != want {
		t.Fatalf("kernel.Binned: %x != element-wise %x", got, want)
	}
	refSt := kernel.BinnedRef(xs)
	if got := math.Float64bits(refSt.Finalize()); got != want {
		t.Fatalf("kernel.BinnedRef: %x != element-wise %x", got, want)
	}
	for _, k := range []int{1, 2, 4, 8} {
		lst := kernel.LaneBinned(xs, k)
		if got := math.Float64bits(lst.Finalize()); got != want {
			t.Fatalf("LaneBinned(k=%d): %x != element-wise %x", k, got, want)
		}
		allocs := testing.AllocsPerRun(10, func() {
			sinkBN = kernel.LaneBinned(xs, k)
			sinkF = sinkBN.Finalize()
		})
		if allocs != 0 {
			t.Fatalf("LaneBinned(k=%d)+Finalize allocates %v per run, want 0", k, allocs)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		sinkBN = kernel.Binned(xs)
		sinkF = sinkBN.Finalize()
	})
	if allocs != 0 {
		t.Fatalf("Binned+Finalize allocates %v per run, want 0", allocs)
	}
}

// BenchmarkBinnedSum1M is the headline artifact benchmark: the binned
// reproducible kernel over the canonical 1M-element workload — the
// two-level default at each sublane width, and the reference
// per-element deposit loop it replaced. All variants produce identical
// bits; only throughput varies (see TestBinnedKernelEquivalenceAndAllocs
// for the 0-alloc contract).
func BenchmarkBinnedSum1M(b *testing.B) {
	xs := benchData()
	b.Run("kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := kernel.Binned(xs)
			sinkF = st.Finalize()
		}
	})
	for _, k := range []int{1, 2, 4, 8} {
		b.Run("lane"+string(rune('0'+k)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := kernel.LaneBinned(xs, k)
				sinkF = st.Finalize()
			}
		})
	}
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := kernel.BinnedRef(xs)
			sinkF = st.Finalize()
		}
	})
}

// BenchmarkBinnedFinalize isolates the Finalize-only cost — the
// superacc pass (superacc.AddLdexp for the scaled bins) over the ~66
// bins of a populated 1M-element state. It must stay far below 1% of
// the sum itself for the "Finalize off the hot path" framing to hold.
func BenchmarkBinnedFinalize(b *testing.B) {
	st := kernel.Binned(benchData())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = st.Finalize()
	}
}

// BenchmarkBinnedVsAlternatives1M frames the acceptance ratios directly:
// binned vs the full superaccumulator, vs the two-pass prerounded
// engine at its cheapest fold budget, and vs the non-reproducible ST
// kernel floor.
func BenchmarkBinnedVsAlternatives1M(b *testing.B) {
	xs := benchData()
	b.Run("binned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := kernel.LaneBinned(xs, 4)
			sinkF = st.Finalize()
		}
	})
	b.Run("superacc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = superacc.Sum(xs)
		}
	})
	b.Run("prtwopass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = sum.PreroundedTwoPass(xs, 2)
		}
	})
	b.Run("stkernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkF = kernel.ST(xs)
		}
	})
}
