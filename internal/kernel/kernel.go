// Package kernel provides hand-specialized batch summation kernels: the
// devirtualized inner loops behind every hot fold in the repository.
//
// The generic execution paths (reduce.Fold, parallel chunk folds, the
// tree executors' serial leaf runs, selector profiling) express one
// element step as a Leaf plus a Merge through a reduce.Monoid interface
// value — two dynamic calls per element that the compiler can neither
// inline nor software-pipeline. The kernels in this package collapse
// that step into straight-line float64 code over a []float64, in two
// classes:
//
//   - Reference-order kernels (ST, Kahan, Neumaier, CP, Exact): fold the
//     slice in exactly the left-to-right order reduce.Fold defines —
//     Leaf(xs[0]) merged with Leaf of every later element — and are
//     proven bit-identical to that reference by exhaustive equivalence
//     tests. They are pure speedups: swapping them in changes no bits
//     anywhere.
//
//   - Lane kernels (LaneST, LaneKahan, LaneNeumaier, LanePairwise):
//     fixed-width K-accumulator variants (K in {1, 2, 4, 8}) that break
//     the serial floating-point dependency chain for instruction-level
//     parallelism. Element i feeds lane i mod K (a fixed stride
//     partition) and the K lane states are merged left-to-right with the
//     algorithm's own merge operator. Both the partition and the merge
//     order are pure functions of (len(xs), K), so a lane kernel's
//     result is bitwise-stable across machines, worker counts, and runs
//     — but it is a *different reduction plan* than the serial fold, the
//     same way a different parallel.Config.ChunkSize is. The lane width
//     is therefore part of the determinism contract, surfaced as
//     parallel.Config.LaneWidth / repro.WithLaneWidth.
//
// Go's float64 arithmetic follows IEEE-754 exactly and is never fused or
// reassociated by the compiler, so every kernel's bit pattern is a
// platform-independent function of its input and width.
package kernel

import (
	"repro/internal/dd"
	"repro/internal/superacc"
)

// ST folds xs left-to-right with plain float64 addition — bit-identical
// to reduce.Fold over sum.STMonoid and to sum.Standard. Empty input
// returns 0 (the fold identity).
func ST(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Kahan folds xs left-to-right with Kahan's compensated recurrence and
// returns the (sum, pending correction) pair — bit-identical to folding
// sum.KahanMonoid in reference order (and to streaming sum.KahanAcc).
// Empty input returns the zero state.
func Kahan(xs []float64) (s, c float64) {
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s, c
}

// Neumaier folds xs left-to-right with Neumaier's branched compensated
// recurrence and returns the (sum, correction) pair — bit-identical to
// folding sum.NeumaierMonoid in reference order (the branched residual
// equals the branch-free TwoSum residual exactly: both are the
// representable error of the same addition). Empty input returns the
// zero state.
func Neumaier(xs []float64) (s, c float64) {
	for _, x := range xs {
		t := s + x
		if abs(s) >= abs(x) {
			c += (s - t) + x
		} else {
			c += (x - t) + s
		}
		s = t
	}
	return s, c
}

// CP folds xs left-to-right in composite precision — bit-identical to
// folding sum.CPMonoid in reference order: the running state is a
// double-double pair and every step is the full accurate dd.Add (not
// the cheaper AddFloat64, whose last bit can differ). Empty input
// returns the zero state.
func CP(xs []float64) dd.DD {
	if len(xs) == 0 {
		return dd.Zero
	}
	acc := dd.FromFloat64(xs[0])
	for _, x := range xs[1:] {
		acc = acc.Add(dd.FromFloat64(x))
	}
	return acc
}

// Exact deposits xs into the superaccumulator with its batch loop
// (superacc.Acc.AddSlice): per-element carry bookkeeping is hoisted out
// of the deposit loop. The accumulated value is exact, so the result is
// identical to element-wise Add in any order.
func Exact(acc *superacc.Acc, xs []float64) { acc.AddSlice(xs) }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
