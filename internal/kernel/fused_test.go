package kernel_test

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/sum"
)

// fusedInputs extends the shared adversarial corners with the cases the
// fused kernel special-cases in its loop: zeros (skipped by the profile
// arms, folded by the ST shadow), signed zeros, subnormals (slow-path
// exponent decode), and non-finite poison.
func fusedInputs(n int) map[string][]float64 {
	m := inputs(n)
	if n < 2 {
		return m
	}
	zeros := make([]float64, n)
	for i := range zeros {
		if i%3 == 0 {
			zeros[i] = float64(i%7) - 3
		}
	}
	zeros[1] = math.Copysign(0, -1)
	m["zeroheavy"] = zeros
	sub := make([]float64, n)
	for i := range sub {
		sub[i] = math.Ldexp(float64(i%5+1), -1070-i%4)
	}
	sub[n/2] = 0x1p-1022 // smallest normal, next to its subnormal neighbors
	m["subnormal"] = sub
	return m
}

// TestFusedProfileSumEquivalence pins the fused pass's two speculative
// sums bitwise against the standalone kernels: the ST shadow against
// kernel.ST always (non-finite values flow through both identically),
// and the compensated pair against kernel.Neumaier whenever the input
// holds no non-finite value.
func TestFusedProfileSumEquivalence(t *testing.T) {
	for _, n := range sizes {
		for name, xs := range fusedInputs(n) {
			a := kernel.FusedProfileSum(xs)
			if got, want := bits(a.ST), bits(kernel.ST(xs)); got != want {
				t.Errorf("n=%d %s: fused ST %x != kernel.ST %x", n, name, got, want)
			}
			s, c := kernel.Neumaier(xs)
			if bits(a.SumS) != bits(s) || bits(a.SumC) != bits(c) {
				t.Errorf("n=%d %s: fused pair (%x,%x) != Neumaier (%x,%x)",
					n, name, bits(a.SumS), bits(a.SumC), bits(s), bits(c))
			}
			if a.N != int64(len(xs)) {
				t.Errorf("n=%d %s: N=%d", n, name, a.N)
			}
			if a.AbsC != 0 {
				t.Errorf("n=%d %s: serial fold populated AbsC=%g", n, name, a.AbsC)
			}
		}
	}
}

// TestFusedProfileSumNonFinite checks the poison protocol: NaN/±Inf set
// the flag and still flow through the ST shadow with IEEE semantics,
// while the profile arms skip them.
func TestFusedProfileSumNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		xs := []float64{1.5, bad, -2.25, 0, 8}
		a := kernel.FusedProfileSum(xs)
		if !a.NonFinite {
			t.Errorf("%v did not poison the accumulator", bad)
		}
		if got, want := bits(a.ST), bits(kernel.ST(xs)); got != want {
			t.Errorf("%v: poisoned ST shadow %x != kernel.ST %x", bad, got, want)
		}
		// The profile arms must hold only the finite values.
		if a.SumS != 1.5-2.25+8 || a.AbsS != 1.5+2.25+8 {
			t.Errorf("%v leaked into the profile sums: %g / %g", bad, a.SumS, a.AbsS)
		}
		if a.Pos != 2 || a.Neg != 1 || a.N != 5 {
			t.Errorf("%v: counts pos=%d neg=%d n=%d", bad, a.Pos, a.Neg, a.N)
		}
	}
}

// TestFusedMergeEquivalence pins Merge component-wise against the
// engine's own merge operators: plain addition for the ST shadow
// (sum.STMonoid) and the Neumaier monoid merge for both compensated
// pairs, plus exact combination of the discrete fields.
func TestFusedMergeEquivalence(t *testing.T) {
	for _, n := range sizes {
		if n < 2 {
			continue
		}
		for name, xs := range fusedInputs(n) {
			for _, cut := range []int{0, 1, n / 3, n / 2, n - 1, n} {
				a := kernel.FusedProfileSum(xs[:cut])
				b := kernel.FusedProfileSum(xs[cut:])
				m := a.Merge(b)
				if got, want := bits(m.ST), bits(a.ST+b.ST); got != want {
					t.Fatalf("n=%d %s cut=%d: merged ST %x != a+b %x", n, name, cut, got, want)
				}
				ns := sum.NeumaierMonoid{}.Merge(
					sum.NState{S: a.SumS, C: a.SumC}, sum.NState{S: b.SumS, C: b.SumC})
				if bits(m.SumS) != bits(ns.S) || bits(m.SumC) != bits(ns.C) {
					t.Fatalf("n=%d %s cut=%d: merged pair != NeumaierMonoid merge", n, name, cut)
				}
				abs := sum.NeumaierMonoid{}.Merge(
					sum.NState{S: a.AbsS, C: a.AbsC}, sum.NState{S: b.AbsS, C: b.AbsC})
				if bits(m.AbsS) != bits(abs.S) || bits(m.AbsC) != bits(abs.C) {
					t.Fatalf("n=%d %s cut=%d: merged abs pair != NeumaierMonoid merge", n, name, cut)
				}
				whole := kernel.FusedProfileSum(xs)
				if m.N != whole.N || m.Pos != whole.Pos || m.Neg != whole.Neg ||
					m.HasNonzero != whole.HasNonzero || m.NonFinite != whole.NonFinite {
					t.Fatalf("n=%d %s cut=%d: merged discrete fields diverge", n, name, cut)
				}
				if whole.HasNonzero && (m.MaxExp != whole.MaxExp || m.MinExp != whole.MinExp) {
					t.Fatalf("n=%d %s cut=%d: merged exponents diverge", n, name, cut)
				}
			}
		}
	}
}

// TestFusedProfileSumAllocs pins the fused pass as allocation-free.
func TestFusedProfileSumAllocs(t *testing.T) {
	xs := fusedInputs(4096)["benign"]
	var sink kernel.FusedAcc
	if n := testing.AllocsPerRun(100, func() {
		sink = kernel.FusedProfileSum(xs)
	}); n != 0 {
		t.Errorf("FusedProfileSum allocates %v per run", n)
	}
	_ = sink
}
