// Package core assembles the paper's proposal into a deployable runtime:
// data-aware, requirement-driven selection of reduction algorithms. A
// Runtime owns a reproducibility requirement and a selection policy;
// every reduction it performs is preceded by a cheap profiling pass
// (local, streaming, mergeable across ranks) whose result picks the
// cheapest algorithm expected to stay within the requirement.
//
// The package also implements the paper's closing suggestion —
// "apply cheaper but acceptably accurate reduction algorithms to
// subtrees based on the profile" — as HierarchicalSum: the operand set
// is partitioned into blocks, each block is profiled and reduced with
// its own cheapest-acceptable algorithm, and the per-block partial sums
// (now few) are combined with a reproducible operator.
package core

import (
	"fmt"

	"repro/internal/selector"
	"repro/internal/sum"
	"repro/internal/tree"
)

// Runtime is an intelligent reduction runtime.
type Runtime struct {
	sel *selector.Selector
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithPolicy substitutes the selection policy (e.g. a measurement-backed
// selector.CalibratedPolicy instead of the analytic default).
func WithPolicy(p selector.Policy) Option {
	return func(rt *Runtime) { rt.sel.Policy = p }
}

// New returns a Runtime that keeps the relative run-to-run variability
// of its reductions within tolerance (0 demands bitwise reproducibility).
func New(tolerance float64, opts ...Option) *Runtime {
	rt := &Runtime{sel: selector.New(tolerance)}
	for _, o := range opts {
		o(rt)
	}
	return rt
}

// Selector exposes the underlying selector (for distributed use via
// selector.AdaptiveReduce).
func (rt *Runtime) Selector() *selector.Selector { return rt.sel }

// Tolerance returns the configured variability tolerance.
func (rt *Runtime) Tolerance() float64 { return rt.sel.Req.Tolerance }

// Report describes one adaptive reduction: what was profiled, what was
// chosen, and what the policy predicted.
type Report struct {
	Algorithm sum.Algorithm
	Profile   selector.Profile
	Predicted float64
	// PRConfig is set when the prerounded operator was chosen: the
	// tolerance-tuned bin configuration (selector.TunePR).
	PRConfig *sum.PRConfig
}

// String summarizes the report.
func (r Report) String() string {
	return fmt.Sprintf("chose %s (%s) for %v (predicted variability %.3g)",
		r.Algorithm, r.Algorithm.FullName(), r.Profile, r.Predicted)
}

// Sum profiles xs, selects the cheapest acceptable algorithm, and sums.
// When the prerounded operator is selected its fold budget is tuned to
// the tolerance (selector.TunePR) — the paper's precision-tuning idea
// applied to the one algorithm with a precision knob.
func (rt *Runtime) Sum(xs []float64) (float64, Report) {
	prof := selector.ProfileOf(xs)
	alg, pred := rt.sel.Policy.Select(prof, rt.sel.Req)
	rep := Report{Algorithm: alg, Profile: prof, Predicted: pred}
	if alg == sum.PreroundedAlg {
		cfg := selector.TunePR(prof, rt.sel.Req)
		rep.PRConfig = &cfg
		return sum.PreroundedWith(cfg, xs), rep
	}
	return alg.Sum(xs), rep
}

// Reduce profiles xs and reduces it under the given tree plan with the
// selected algorithm — the paper's scenario where the tree is imposed
// by the system, not the algorithm.
func (rt *Runtime) Reduce(p tree.Plan, xs []float64) (float64, Report) {
	prof := selector.ProfileOf(xs)
	alg, pred := rt.sel.Policy.Select(prof, rt.sel.Req)
	v := selector.ReduceTreeWith(alg, p, xs)
	return v, Report{Algorithm: alg, Profile: prof, Predicted: pred}
}

// BlockReport records the per-block decision of a hierarchical sum.
type BlockReport struct {
	Start, End int
	Report     Report
}

// HierarchicalSum implements subtree-level selection: xs is split into
// blocks of blockSize, each block is profiled independently and reduced
// with its own cheapest acceptable algorithm, and the block partials
// are combined with the prerounded operator so the combination step
// never reintroduces order sensitivity.
//
// Blocks whose local data is benign (same sign, narrow range) get the
// cheap operator even when the global set is hostile — the cost saving
// the paper's Section V-D argues for.
//
// Caveat: the tolerance contract applies per block. When blocks cancel
// strongly against each other, the global relative error can exceed the
// per-block tolerance by the ratio of global to block condition
// numbers; use Sum (whole-set profiling) when the contract must hold
// for the global result.
func (rt *Runtime) HierarchicalSum(xs []float64, blockSize int) (float64, []BlockReport) {
	if blockSize <= 0 {
		blockSize = 4096
	}
	n := len(xs)
	if n == 0 {
		return 0, nil
	}
	var reports []BlockReport
	// Block partials are folded with PR so the final combination is
	// insensitive to block order (e.g. if blocks completed on different
	// ranks at different times).
	acc := sum.NewPreroundedAcc(sum.DefaultPRConfig())
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		block := xs[lo:hi]
		v, rep := rt.Sum(block)
		acc.Add(v)
		reports = append(reports, BlockReport{Start: lo, End: hi, Report: rep})
	}
	return acc.Sum(), reports
}

// CostSavings summarizes a hierarchical run: the fraction of blocks that
// got away with an algorithm cheaper than the one a whole-set profile
// would have required.
func CostSavings(whole Report, blocks []BlockReport) float64 {
	if len(blocks) == 0 {
		return 0
	}
	cheaper := 0
	for _, b := range blocks {
		if b.Report.Algorithm.CostRank() < whole.Algorithm.CostRank() {
			cheaper++
		}
	}
	return float64(cheaper) / float64(len(blocks))
}
