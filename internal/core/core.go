// Package core assembles the paper's proposal into a deployable runtime:
// data-aware, requirement-driven selection of reduction algorithms. A
// Runtime owns a reproducibility requirement and a selection policy;
// every reduction it performs is preceded by a cheap profiling pass
// (local, streaming, mergeable across ranks) whose result picks the
// cheapest algorithm expected to stay within the requirement.
//
// The package also implements the paper's closing suggestion —
// "apply cheaper but acceptably accurate reduction algorithms to
// subtrees based on the profile" — as HierarchicalSum: the operand set
// is partitioned into blocks, each block is profiled and reduced with
// its own cheapest-acceptable algorithm, and the per-block partial sums
// (now few) are combined with a reproducible operator.
package core

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/selector"
	"repro/internal/sum"
	"repro/internal/tree"
)

// Runtime is an intelligent reduction runtime.
type Runtime struct {
	sel *selector.Selector
	// useEngine enables the deterministic chunked parallel engine for
	// Sum and HierarchicalSum on inputs spanning at least two chunks.
	useEngine bool
	// par configures the engine (zero fields mean auto).
	par parallel.Config
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithPolicy substitutes the selection policy (e.g. a measurement-backed
// selector.CalibratedPolicy instead of the analytic default).
func WithPolicy(p selector.Policy) Option {
	return func(rt *Runtime) { rt.sel.Policy = p }
}

// WithWorkers routes large reductions through the deterministic chunked
// parallel engine with the given pool size (0 selects GOMAXPROCS). The
// engine's results are bitwise-identical across worker counts — the
// chunk plan, not the scheduling, determines the bits — but for
// order-sensitive algorithms they differ (deterministically) from the
// engine-less streaming path, so enabling the engine is a new, equally
// reproducible, summation plan rather than a transparent accelerator.
func WithWorkers(n int) Option {
	return func(rt *Runtime) {
		rt.useEngine = true
		rt.par.Workers = n
	}
}

// WithChunkSize sets the engine's fixed partition width in elements
// (0 selects parallel.DefaultChunkSize) and enables the engine. The
// chunk size is part of the reproducibility contract: two runtimes agree
// bitwise only if they use the same chunk size.
func WithChunkSize(c int) Option {
	return func(rt *Runtime) {
		rt.useEngine = true
		rt.par.ChunkSize = c
	}
}

// WithLaneWidth sets the engine's fixed accumulator-lane count (1, 2, 4,
// or 8; 0 selects 1, the legacy single-accumulator bits) and enables the
// engine. Wider lanes break the serial floating-point dependency chain
// inside each chunk fold for instruction-level parallelism while staying
// bitwise-identical across worker counts and runs — but, like the chunk
// size, the lane width is part of the reproducibility contract: two
// runtimes agree bitwise only if they use the same lane width. See
// parallel.Config.LaneWidth.
func WithLaneWidth(k int) Option {
	return func(rt *Runtime) {
		rt.useEngine = true
		rt.par.LaneWidth = k
	}
}

// WithDecisionCache attaches a quantized decision cache of the given
// capacity (entries; <= 0 selects the default 4096) to the runtime's
// selector: selection decisions are memoized per profile bucket, so
// steady-state traffic skips policy evaluation. Decisions are computed
// from each bucket's conservative canonical representative — a pure
// function of the bucket — so results stay deterministic and
// independent of request order or cache capacity; see
// selector.DecisionCache for the exact semantics.
func WithDecisionCache(capacity int) Option {
	return WithDecisionCacheConfig(selector.CacheConfig{Capacity: capacity})
}

// WithDecisionCacheConfig is WithDecisionCache with full control over
// the cache geometry (capacity and shard count for concurrent callers).
func WithDecisionCacheConfig(cfg selector.CacheConfig) Option {
	return func(rt *Runtime) { rt.sel.Cache = selector.NewDecisionCache(cfg) }
}

// WithCalibration installs a host calibration artifact (cmd/calibrate)
// as the runtime's selection policy: the artifact's measurements are
// fitted once into a selection surface, so every cold-miss decision is
// a few array comparisons instead of a table scan, and a decision cache
// is attached (if none was configured) so repeat traffic is a hash
// probe. Apply after any WithDecisionCacheConfig option you want to
// keep.
func WithCalibration(cal *selector.Calibration) Option {
	return func(rt *Runtime) {
		rt.sel.Policy = cal.SurfacePolicy()
		if rt.sel.Cache == nil {
			rt.sel.Cache = selector.NewDecisionCache(selector.CacheConfig{})
		}
	}
}

// New returns a Runtime that keeps the relative run-to-run variability
// of its reductions within tolerance (0 demands bitwise reproducibility).
func New(tolerance float64, opts ...Option) *Runtime {
	rt := &Runtime{sel: selector.New(tolerance)}
	for _, o := range opts {
		o(rt)
	}
	return rt
}

// Selector exposes the underlying selector (for distributed use via
// selector.AdaptiveReduce).
func (rt *Runtime) Selector() *selector.Selector { return rt.sel }

// Tolerance returns the configured variability tolerance.
func (rt *Runtime) Tolerance() float64 { return rt.sel.Req.Tolerance }

// CacheStats snapshots the decision cache's hit/miss/occupancy counters;
// ok is false when no cache is attached (see WithDecisionCache).
func (rt *Runtime) CacheStats() (selector.CacheStats, bool) {
	if rt.sel.Cache == nil {
		return selector.CacheStats{}, false
	}
	return rt.sel.Cache.Stats(), true
}

// Report describes one adaptive reduction: what was profiled, what was
// chosen, and what the policy predicted.
type Report struct {
	Algorithm sum.Algorithm
	Profile   selector.Profile
	Predicted float64
	// Bounds are the Hallman–Ipsen per-algorithm forward-error bound
	// estimates computed from the profile the decision was made from
	// (the cache bucket's conservative representative on cached paths)
	// — pure arithmetic on already-collected statistics, no extra data
	// pass. Bounds.Conclusive is false on the non-finite fallback.
	Bounds selector.Bounds
	// PRConfig is set when the prerounded operator was chosen: the
	// tolerance-tuned bin configuration (selector.TunePR).
	PRConfig *sum.PRConfig
	// NonFinite is set when the profile was poisoned by NaN/±Inf inputs
	// and the runtime fell back to the standard iterative sum — the one
	// operator whose result follows IEEE non-finite propagation exactly
	// (compensated corrections manufacture NaN out of Inf−Inf, and PR's
	// binning is undefined on non-finite operands). No variability
	// contract applies to such data.
	NonFinite bool
}

// String summarizes the report.
func (r Report) String() string {
	if r.NonFinite {
		return fmt.Sprintf("chose %s (%s) for %v (non-finite input; no variability contract)",
			r.Algorithm, r.Algorithm.FullName(), r.Profile)
	}
	return fmt.Sprintf("chose %s (%s) for %v (predicted variability %.3g)",
		r.Algorithm, r.Algorithm.FullName(), r.Profile, r.Predicted)
}

// Sum profiles xs, selects the cheapest acceptable algorithm, and sums.
// When the prerounded operator is selected its fold budget is tuned to
// the tolerance (selector.TunePR) — the paper's precision-tuning idea
// applied to the one algorithm with a precision knob.
//
// The pass is fused and speculative (selector.SelectAndSum): profiling
// already yields the ST and Neumaier answers, so those selections never
// read xs a second time, and every result is bit-identical to the
// two-pass profile-then-sum route.
//
// With the engine enabled (WithWorkers/WithChunkSize) and an input
// spanning at least two chunks, both the profiling pass and the sum run
// on the deterministic chunked worker pool; the result is bitwise-stable
// across worker counts. Lane widths above 1 fall back to the two-pass
// engine route (the fused chunk kernel is a single-lane plan).
func (rt *Runtime) Sum(xs []float64) (float64, Report) {
	if rt.engineFor(len(xs)) {
		if v, sel, ok := rt.sel.SelectAndSumParallel(xs, rt.par); ok {
			return v, reportOf(sel)
		}
		return rt.sumParallel(xs)
	}
	v, sel := rt.sel.SelectAndSum(xs)
	return v, reportOf(sel)
}

// reportOf translates a fused-path selection into the runtime's report.
func reportOf(sel selector.Selection) Report {
	rep := Report{
		Algorithm: sel.Alg,
		Profile:   sel.Profile,
		Predicted: sel.Predicted,
		Bounds:    sel.Bounds,
		PRConfig:  sel.PR,
		NonFinite: sel.NonFinite,
	}
	if sel.NonFinite {
		rep.Predicted = math.Inf(1)
	}
	return rep
}

// engineFor reports whether the parallel engine should run a reduction
// of n values: it must be enabled and the input must span at least two
// chunks (below that the plan degenerates to the sequential pass).
func (rt *Runtime) engineFor(n int) bool {
	if !rt.useEngine {
		return false
	}
	cs := rt.par.ChunkSize
	if cs <= 0 {
		cs = parallel.DefaultChunkSize
	}
	return n > cs
}

// sumParallel is the two-pass Sum on the chunked engine, kept for lane
// widths the fused chunk kernel does not cover.
func (rt *Runtime) sumParallel(xs []float64) (float64, Report) {
	prof := selector.ProfileOfParallel(xs, rt.par)
	if prof.NonFinite {
		return rt.nonFiniteSum(xs, prof)
	}
	d := rt.sel.Decide(prof)
	rep := Report{Algorithm: d.Alg, Profile: prof, Predicted: d.Predicted, Bounds: d.Bounds}
	if d.Alg == sum.PreroundedAlg {
		cfg := d.PR
		rep.PRConfig = &cfg
		return parallel.SumPR(cfg, xs, rt.par), rep
	}
	return parallel.Sum(d.Alg, xs, rt.par), rep
}

// nonFiniteSum is the fallback for NaN/±Inf-poisoned inputs: the
// standard iterative sum, whose non-finite propagation follows IEEE
// semantics exactly. The condition is recorded in the report.
func (rt *Runtime) nonFiniteSum(xs []float64, prof selector.Profile) (float64, Report) {
	rep := Report{
		Algorithm: sum.StandardAlg,
		Profile:   prof,
		Predicted: math.Inf(1),
		Bounds:    selector.ComputeBounds(prof, 0),
		NonFinite: true,
	}
	return sum.Standard(xs), rep
}

// Reduce profiles xs and reduces it under the given tree plan with the
// selected algorithm — the paper's scenario where the tree is imposed
// by the system, not the algorithm. NaN/±Inf-poisoned inputs fall back
// to the standard operator (see Report.NonFinite).
func (rt *Runtime) Reduce(p tree.Plan, xs []float64) (float64, Report) {
	prof := selector.ProfileOf(xs)
	if prof.NonFinite {
		v := selector.ReduceTreeWith(sum.StandardAlg, p, xs)
		return v, Report{Algorithm: sum.StandardAlg, Profile: prof,
			Predicted: math.Inf(1), Bounds: selector.ComputeBounds(prof, 0),
			NonFinite: true}
	}
	d := rt.sel.Decide(prof)
	v := selector.ReduceTreeWith(d.Alg, p, xs)
	return v, Report{Algorithm: d.Alg, Profile: prof, Predicted: d.Predicted,
		Bounds: d.Bounds}
}

// BlockReport records the per-block decision of a hierarchical sum.
type BlockReport struct {
	Start, End int
	Report     Report
}

// HierarchicalSum implements subtree-level selection: xs is split into
// blocks of blockSize, each block is profiled independently and reduced
// with its own cheapest acceptable algorithm, and the block partials
// are combined with the cheapest reproducible operator on the ladder
// (sum.CheapestReproducible — the binned rung) so the combination step
// never reintroduces order sensitivity.
//
// Blocks whose local data is benign (same sign, narrow range) get the
// cheap operator even when the global set is hostile — the cost saving
// the paper's Section V-D argues for.
//
// Caveat: the tolerance contract applies per block. When blocks cancel
// strongly against each other, the global relative error can exceed the
// per-block tolerance by the ratio of global to block condition
// numbers; use Sum (whole-set profiling) when the contract must hold
// for the global result.
//
// With the engine enabled, blocks are profiled and summed concurrently
// on the worker pool. Each block's result is a pure function of the
// block's elements and the partials are folded in block order with a
// reproducible operator, so the global result is bitwise-identical to
// the sequential run regardless of worker count.
func (rt *Runtime) HierarchicalSum(xs []float64, blockSize int) (float64, []BlockReport) {
	if blockSize <= 0 {
		blockSize = 4096
	}
	n := len(xs)
	if n == 0 {
		return 0, nil
	}
	nb := (n + blockSize - 1) / blockSize
	workers := 1
	if rt.useEngine {
		workers = rt.par.Workers // 0 selects GOMAXPROCS inside For
	}
	vals := make([]float64, nb)
	reports := make([]BlockReport, nb)
	parallel.For(nb, workers, func(i int) {
		lo := i * blockSize
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		v, rep := rt.Sum(xs[lo:hi])
		vals[i] = v
		reports[i] = BlockReport{Start: lo, End: hi, Report: rep}
	})
	// Block partials are folded with the cheapest reproducible rung of
	// the ladder so the final combination is insensitive to block order
	// (e.g. if blocks completed on different ranks at different times);
	// the fold runs in block order anyway.
	acc := sum.CheapestReproducible().NewAccumulator()
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Sum(), reports
}

// CostSavings summarizes a hierarchical run: the fraction of blocks that
// got away with an algorithm cheaper than the one a whole-set profile
// would have required.
func CostSavings(whole Report, blocks []BlockReport) float64 {
	if len(blocks) == 0 {
		return 0
	}
	cheaper := 0
	for _, b := range blocks {
		if b.Report.Algorithm.CostRank() < whole.Algorithm.CostRank() {
			cheaper++
		}
	}
	return float64(cheaper) / float64(len(blocks))
}
