package core

import (
	"math"
	"testing"

	"repro/internal/gen"
)

// TestWithLaneWidthBitwiseAcrossWorkers extends the runtime's
// worker-invariance guarantee to lane-parallel plans: a fixed
// (ChunkSize, LaneWidth) plan gives identical bits at every pool size,
// and the selection report is unaffected by the lane width.
func TestWithLaneWidthBitwiseAcrossWorkers(t *testing.T) {
	xs := gen.Spec{N: 40000, Cond: 1e8, DynRange: 24, Seed: 21}.Generate()
	for _, lw := range []int{2, 4, 8} {
		ref, refRep := New(1e-9, WithWorkers(1), WithChunkSize(1024), WithLaneWidth(lw)).Sum(xs)
		for _, w := range []int{2, 3, 8} {
			got, rep := New(1e-9, WithWorkers(w), WithChunkSize(1024), WithLaneWidth(lw)).Sum(xs)
			if math.Float64bits(got) != math.Float64bits(ref) {
				t.Errorf("lanes=%d: %d workers gave %x, 1 worker gave %x",
					lw, w, math.Float64bits(got), math.Float64bits(ref))
			}
			if rep.Algorithm != refRep.Algorithm {
				t.Errorf("lanes=%d: algorithm choice varied with workers: %v vs %v",
					lw, rep.Algorithm, refRep.Algorithm)
			}
		}
	}
}

// TestWithLaneWidthEnablesEngine confirms WithLaneWidth alone routes
// large sums through the engine (like WithWorkers/WithChunkSize do).
func TestWithLaneWidthEnablesEngine(t *testing.T) {
	rt := New(1e-9, WithLaneWidth(4))
	if !rt.useEngine {
		t.Fatal("WithLaneWidth did not enable the parallel engine")
	}
	if rt.par.LaneWidth != 4 {
		t.Fatalf("LaneWidth = %d, want 4", rt.par.LaneWidth)
	}
}
