package core

import (
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/selector"
	"repro/internal/sum"
	"repro/internal/tree"
)

func TestRuntimeSumPicksCheapOnEasyData(t *testing.T) {
	rt := New(1e-9)
	xs := gen.Spec{N: 1024, Cond: 1, DynRange: 4, Seed: 1}.Generate()
	v, rep := rt.Sum(xs)
	if rep.Algorithm != sum.StandardAlg {
		t.Errorf("chose %v for easy data", rep.Algorithm)
	}
	if v != sum.Standard(xs) {
		t.Errorf("value %g does not match the chosen algorithm", v)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}

func TestRuntimeBitwiseTolerance(t *testing.T) {
	rt := New(0)
	xs := gen.SumZeroSeries(2048, 24, 2)
	_, rep := rt.Sum(xs)
	if rep.Algorithm != sum.BinnedAlg {
		t.Errorf("t=0 chose %v, want the binned reproducible rung", rep.Algorithm)
	}
	if rep.Predicted != 0 {
		t.Errorf("predicted %g for BN", rep.Predicted)
	}
}

func TestRuntimeReduceFollowsPlan(t *testing.T) {
	rt := New(0)
	xs := gen.SumZeroSeries(1024, 16, 3)
	r := fpu.NewRNG(4)
	seen := map[float64]bool{}
	for i := 0; i < 8; i++ {
		v, rep := rt.Reduce(tree.NewPlan(tree.Random, len(xs), r), xs)
		if !rep.Algorithm.Reproducible() {
			t.Fatalf("chose %v", rep.Algorithm)
		}
		seen[v] = true
	}
	if len(seen) != 1 {
		t.Errorf("bitwise runtime produced %d distinct values over random trees", len(seen))
	}
}

func TestWithPolicyOption(t *testing.T) {
	pol := selector.NewCalibratedPolicy(nil, 0) // falls back to heuristic
	rt := New(1e-9, WithPolicy(pol))
	if rt.Selector().Policy != selector.Policy(pol) {
		t.Error("option did not install policy")
	}
	if rt.Tolerance() != 1e-9 {
		t.Error("tolerance lost")
	}
}

func TestHierarchicalSumSavesCost(t *testing.T) {
	// Compose a set from benign blocks (same-sign, narrow) and hostile
	// blocks (cancelling, wide): per-block selection must give the
	// benign blocks a cheaper operator than a whole-set profile would.
	const block = 1024
	var xs []float64
	for b := 0; b < 8; b++ {
		if b%2 == 0 {
			xs = append(xs, gen.Spec{N: block, Cond: 1, DynRange: 2, Seed: uint64(b)}.Generate()...)
		} else {
			xs = append(xs, gen.SumZeroSeries(block, 32, uint64(b))...)
		}
	}
	rt := New(1e-10)
	_, whole := rt.Sum(xs)
	got, blocks := rt.HierarchicalSum(xs, block)
	if len(blocks) != 8 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	cheapBlocks := 0
	for i, b := range blocks {
		if i%2 == 0 && b.Report.Algorithm == sum.StandardAlg {
			cheapBlocks++
		}
		if i%2 == 1 && b.Report.Algorithm == sum.StandardAlg {
			t.Errorf("hostile block %d got ST", i)
		}
	}
	if cheapBlocks != 4 {
		t.Errorf("benign blocks with cheap operator: %d/4", cheapBlocks)
	}
	if sav := CostSavings(whole, blocks); sav < 0.5 {
		t.Errorf("cost savings %.2f, want >= 0.5 (whole-set choice was %v)", sav, whole.Algorithm)
	}
	// Accuracy: the hierarchical result must match the exact sum well.
	ref := bigref.SumFloat64(xs)
	if math.Abs(got-ref) > 1e-6*math.Abs(ref)+1e-9 {
		t.Errorf("hierarchical sum %g vs exact %g", got, ref)
	}
}

func TestHierarchicalBlockOrderInvariance(t *testing.T) {
	// The block combination uses PR, so permuting whole blocks must not
	// change the result.
	const block = 512
	blocksData := make([][]float64, 6)
	for b := range blocksData {
		blocksData[b] = gen.Spec{N: block, Cond: 1e4, DynRange: 16, Seed: uint64(20 + b)}.Generate()
	}
	rt := New(1e-8)
	assemble := func(order []int) []float64 {
		var xs []float64
		for _, b := range order {
			xs = append(xs, blocksData[b]...)
		}
		return xs
	}
	v1, _ := rt.HierarchicalSum(assemble([]int{0, 1, 2, 3, 4, 5}), block)
	v2, _ := rt.HierarchicalSum(assemble([]int{5, 3, 1, 0, 4, 2}), block)
	if v1 != v2 {
		t.Errorf("block order changed hierarchical sum: %g vs %g", v1, v2)
	}
}

func TestHierarchicalEdgeCases(t *testing.T) {
	rt := New(1e-9)
	if v, reps := rt.HierarchicalSum(nil, 100); v != 0 || reps != nil {
		t.Error("empty input")
	}
	// Non-multiple length: last block is short.
	xs := gen.Spec{N: 1000, Cond: 1, DynRange: 2, Seed: 30}.Generate()
	v, reps := rt.HierarchicalSum(xs, 300)
	if len(reps) != 4 {
		t.Fatalf("blocks = %d", len(reps))
	}
	if reps[3].End-reps[3].Start != 100 {
		t.Errorf("tail block size %d", reps[3].End-reps[3].Start)
	}
	ref := bigref.SumFloat64(xs)
	if math.Abs(v-ref) > 1e-9*math.Abs(ref) {
		t.Errorf("hierarchical %g vs %g", v, ref)
	}
	// Zero block size uses the default.
	if v2, _ := rt.HierarchicalSum(xs, 0); math.Abs(v2-ref) > 1e-9*math.Abs(ref) {
		t.Error("default block size broken")
	}
}

func TestCostSavingsEmpty(t *testing.T) {
	if CostSavings(Report{}, nil) != 0 {
		t.Error("empty savings")
	}
}

func TestRuntimeTunesPRConfig(t *testing.T) {
	// The ladder now serves t=0 with the cheaper binned rung, so PR (the
	// one algorithm with a precision knob) is pinned via a static policy
	// to keep the tuning path covered.
	xs := gen.SumZeroSeries(2048, 24, 40)
	rt := New(0, WithPolicy(selector.Static{Alg: sum.PreroundedAlg}))
	_, rep := rt.Sum(xs)
	if rep.Algorithm != sum.PreroundedAlg {
		t.Fatalf("chose %v", rep.Algorithm)
	}
	if rep.PRConfig == nil {
		t.Fatal("PR chosen but no tuned config reported")
	}
	if err := rep.PRConfig.Validate(); err != nil {
		t.Fatal(err)
	}
	// Non-PR selections carry no config.
	easy := gen.Spec{N: 512, Cond: 1, DynRange: 2, Seed: 41}.Generate()
	rt2 := New(1e-9)
	_, rep2 := rt2.Sum(easy)
	if rep2.PRConfig != nil {
		t.Errorf("%v selection carries a PR config", rep2.Algorithm)
	}
}

func TestRuntimeSumNonFiniteFallback(t *testing.T) {
	rt := New(1e-9)
	// NaN input: the result is NaN and the report flags the condition.
	xs := []float64{1, 2, math.NaN(), 4}
	v, rep := rt.Sum(xs)
	if !math.IsNaN(v) {
		t.Errorf("NaN input summed to %g", v)
	}
	if !rep.NonFinite {
		t.Error("report did not flag non-finite input")
	}
	if rep.Algorithm != sum.StandardAlg {
		t.Errorf("fallback chose %v, want ST (IEEE propagation)", rep.Algorithm)
	}
	if rep.String() == "" {
		t.Error("empty report")
	}

	// +Inf input: IEEE propagation demands +Inf, not the NaN a
	// compensated correction would manufacture out of Inf-Inf.
	ys := []float64{1, math.Inf(1), 2}
	v2, rep2 := rt.Sum(ys)
	if !math.IsInf(v2, 1) {
		t.Errorf("+Inf input summed to %g, want +Inf", v2)
	}
	if !rep2.NonFinite || rep2.PRConfig != nil {
		t.Errorf("bad +Inf report: %+v", rep2)
	}

	// A bitwise-tolerance runtime must take the same fallback rather
	// than feeding non-finite operands into PR's binning.
	v3, rep3 := New(0).Sum(ys)
	if !math.IsInf(v3, 1) || rep3.Algorithm != sum.StandardAlg {
		t.Errorf("t=0 runtime: %g via %v", v3, rep3.Algorithm)
	}
}

func TestRuntimeReduceNonFiniteFallback(t *testing.T) {
	rt := New(0)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 1
	}
	xs[17] = math.Inf(-1)
	r := fpu.NewRNG(9)
	v, rep := rt.Reduce(tree.NewPlan(tree.Random, len(xs), r), xs)
	if !math.IsInf(v, -1) {
		t.Errorf("reduce of -Inf data = %g", v)
	}
	if !rep.NonFinite || rep.Algorithm != sum.StandardAlg {
		t.Errorf("bad report: %+v", rep)
	}
}
