package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/parallel"
	"repro/internal/selector"
	"repro/internal/sum"
)

// legacySum reproduces the pre-fused two-pass Runtime.Sum exactly:
// profile, policy, TunePR when PR, then the selected operator — the
// oracle the fused serving path is pinned against.
func legacySum(rt *Runtime, xs []float64) (float64, sum.Algorithm) {
	if rt.engineFor(len(xs)) {
		prof := selector.ProfileOfParallel(xs, rt.par)
		if prof.NonFinite {
			return sum.Standard(xs), sum.StandardAlg
		}
		alg, _ := rt.sel.Policy.Select(prof, rt.sel.Req)
		if alg == sum.PreroundedAlg {
			return parallel.SumPR(selector.TunePR(prof, rt.sel.Req), xs, rt.par), alg
		}
		return parallel.Sum(alg, xs, rt.par), alg
	}
	prof := selector.ProfileOf(xs)
	if prof.NonFinite {
		return sum.Standard(xs), sum.StandardAlg
	}
	alg, _ := rt.sel.Policy.Select(prof, rt.sel.Req)
	if alg == sum.PreroundedAlg {
		return sum.PreroundedWith(selector.TunePR(prof, rt.sel.Req), xs), alg
	}
	return alg.Sum(xs), alg
}

func coreCases() map[string][]float64 {
	cases := map[string][]float64{
		"empty": nil,
		"tiny":  {1, 2, 3.5},
	}
	for name, spec := range map[string]gen.Spec{
		"benign":  {N: 60000, Cond: 1, DynRange: 8, Seed: 80},
		"illcond": {N: 60000, Cond: 1e8, DynRange: 24, Seed: 81},
		"sumzero": {N: 50000, Cond: math.Inf(1), DynRange: 32, Seed: 82},
	} {
		cases[name] = spec.Generate()
	}
	poisoned := gen.Spec{N: 50000, Cond: 1, DynRange: 4, Seed: 83}.Generate()
	poisoned[33333] = math.NaN()
	cases["poisoned"] = poisoned
	return cases
}

// TestRuntimeSumFusedEquivalence pins the rewired Runtime.Sum bitwise
// against the legacy two-pass semantics, serial and on the engine at
// several worker counts and lane widths (wide lanes exercising the
// two-pass fallback).
func TestRuntimeSumFusedEquivalence(t *testing.T) {
	for name, xs := range coreCases() {
		for _, tol := range []float64{1e-6, 1e-12, 0} {
			variants := map[string]*Runtime{
				"serial": New(tol),
				"w1":     New(tol, WithWorkers(1), WithChunkSize(1<<12)),
				"w4":     New(tol, WithWorkers(4), WithChunkSize(1<<12)),
				"w4lane4": New(tol, WithWorkers(4), WithChunkSize(1<<12),
					WithLaneWidth(4)),
			}
			for vname, rt := range variants {
				got, rep := rt.Sum(xs)
				want, wantAlg := legacySum(rt, xs)
				if rep.Algorithm != wantAlg {
					t.Errorf("%s %s tol=%g: chose %v, legacy %v",
						name, vname, tol, rep.Algorithm, wantAlg)
					continue
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Errorf("%s %s tol=%g (%v): fused %x != legacy %x", name, vname,
						tol, rep.Algorithm, math.Float64bits(got), math.Float64bits(want))
				}
				if name == "poisoned" && (!rep.NonFinite || !math.IsInf(rep.Predicted, 1)) {
					t.Errorf("%s %s: poisoned report %+v", name, vname, rep)
				}
			}
		}
	}
}

// TestRuntimeDecisionCache exercises the WithDecisionCache option
// end-to-end: stats plumbing, hit accounting across repeated serving,
// and bit-stability between cached and cache-less runs for fast-path
// selections.
func TestRuntimeDecisionCache(t *testing.T) {
	xs := gen.Spec{N: 30000, Cond: 1, DynRange: 8, Seed: 84}.Generate()
	plain := New(1e-9)
	if _, ok := plain.CacheStats(); ok {
		t.Error("cache stats reported with no cache attached")
	}
	rt := New(1e-9, WithDecisionCache(128))
	vPlain, _ := plain.Sum(xs)
	var vCached float64
	for i := 0; i < 5; i++ {
		vCached, _ = rt.Sum(xs)
	}
	st, ok := rt.CacheStats()
	if !ok {
		t.Fatal("cache stats unavailable")
	}
	if st.Misses != 1 || st.Hits != 4 {
		t.Errorf("stats %+v, want 1 miss / 4 hits", st)
	}
	if math.Float64bits(vPlain) != math.Float64bits(vCached) {
		t.Errorf("cache changed ST fast-path bits: %x vs %x",
			math.Float64bits(vPlain), math.Float64bits(vCached))
	}
	// Sharded geometry via the config option, on the engine path.
	shard := New(0, WithWorkers(4), WithChunkSize(1<<12),
		WithDecisionCacheConfig(selector.CacheConfig{Capacity: 64, Shards: 4}))
	r1, _ := shard.Sum(xs)
	r2, _ := shard.Sum(xs)
	if math.Float64bits(r1) != math.Float64bits(r2) {
		t.Error("cached engine serving not self-consistent")
	}
	if st, _ := shard.CacheStats(); st.Hits == 0 {
		t.Errorf("engine serving never hit the cache: %+v", st)
	}
}

// TestRuntimeCachedSumDeterministicAcrossHistory: the cache must make
// decisions from bucket representatives, so serving history (which
// profile warmed the bucket first) cannot change any answer.
func TestRuntimeCachedSumDeterministicAcrossHistory(t *testing.T) {
	a := gen.Spec{N: 4000, Cond: 1.1e5, DynRange: 16, Seed: 85}.Generate()
	b := gen.Spec{N: 4000, Cond: 1.4e5, DynRange: 16, Seed: 86}.Generate()
	run := func(order [][]float64) [2]uint64 {
		rt := New(1e-12, WithDecisionCache(64))
		var va, vb float64
		for _, xs := range order {
			v, _ := rt.Sum(xs)
			if &xs[0] == &a[0] {
				va = v
			} else {
				vb = v
			}
		}
		return [2]uint64{math.Float64bits(va), math.Float64bits(vb)}
	}
	ab := run([][]float64{a, b})
	ba := run([][]float64{b, a})
	if ab != ba {
		t.Errorf("serving order changed cached results: %v vs %v", ab, ba)
	}
}
