package selector

import (
	"repro/internal/mpirt"
	"repro/internal/sum"
	"repro/internal/tree"
)

// Selector is the user-facing intelligent runtime: profile the data,
// consult the policy, run the cheapest acceptable reduction.
type Selector struct {
	Policy Policy
	Req    Requirement
}

// New returns a Selector with the analytic policy and the given
// tolerance (relative run-to-run variability; 0 demands bitwise
// reproducibility).
func New(tolerance float64) *Selector {
	return &Selector{Policy: NewHeuristicPolicy(), Req: Requirement{Tolerance: tolerance}}
}

// Choose profiles xs and returns the selected algorithm with the
// policy's predicted variability.
func (s *Selector) Choose(xs []float64) (sum.Algorithm, float64) {
	return s.Policy.Select(ProfileOf(xs), s.Req)
}

// Sum selects an algorithm for xs and computes the sum with it,
// returning both.
func (s *Selector) Sum(xs []float64) (float64, sum.Algorithm) {
	alg, _ := s.Choose(xs)
	return alg.Sum(xs), alg
}

// ReduceTree selects an algorithm from the profile of xs and reduces xs
// under the given tree plan with it.
func (s *Selector) ReduceTree(p tree.Plan, xs []float64) (float64, sum.Algorithm) {
	alg, _ := s.Choose(xs)
	return ReduceTreeWith(alg, p, xs), alg
}

// ReduceTreeWith reduces xs under plan p with an already-chosen
// algorithm, dispatching to the unboxed generic executors.
func ReduceTreeWith(alg sum.Algorithm, p tree.Plan, xs []float64) float64 {
	switch alg {
	case sum.StandardAlg, sum.PairwiseAlg:
		return tree.Reduce[float64](sum.STMonoid{}, p, xs)
	case sum.KahanAlg:
		return tree.Reduce[sum.KState](sum.KahanMonoid{}, p, xs)
	case sum.NeumaierAlg:
		return tree.Reduce[sum.NState](sum.NeumaierMonoid{}, p, xs)
	case sum.CompositeAlg:
		return tree.Reduce(sum.CPMonoid{}, p, xs)
	case sum.PreroundedAlg:
		return tree.Reduce[sum.PRState](sum.DefaultPRConfig().Monoid(), p, xs)
	}
	panic("selector: invalid algorithm " + alg.String())
}

// AdaptiveReduce performs an intelligently selected global sum over a
// simulated communicator:
//
//  1. each rank profiles its local values (one streaming pass);
//  2. the profiles are merged with one AllReduce (profiles are small
//     and their merge is cheap and insensitive to order at the
//     resolution that matters);
//  3. every rank applies the policy to the identical global profile,
//     reaching the same algorithm choice with no extra coordination;
//  4. the selected operator runs the real reduction.
//
// Returns the sum (valid on the root, ok=true there) and the algorithm
// every rank agreed on.
func AdaptiveReduce(r *mpirt.Rank, root int, local []float64, s *Selector,
	topo mpirt.Topology, mode mpirt.Mode) (result float64, alg sum.Algorithm, ok bool) {
	localProf := ProfileOf(local)
	st := r.AllReduce(localProf, ProfileOp{}, topo, mpirt.FixedOrder)
	global := st.(Profile)
	alg, _ = s.Policy.Select(global, s.Req)
	op := alg.Op()
	reduced := r.Reduce(root, alg.LocalState(local), op, topo, mode)
	if reduced == nil {
		return 0, alg, false
	}
	return op.Finalize(reduced), alg, true
}
