package selector

import (
	"repro/internal/binned"
	"repro/internal/mpirt"
	"repro/internal/sum"
	"repro/internal/tree"
)

// Selector is the user-facing intelligent runtime: profile the data,
// consult the policy, run the cheapest acceptable reduction.
type Selector struct {
	Policy Policy
	Req    Requirement
	// Cache optionally memoizes decisions per quantized profile bucket
	// (see DecisionCache); nil means every call evaluates the policy.
	Cache *DecisionCache
}

// New returns a Selector with the analytic policy and the given
// tolerance (relative run-to-run variability; 0 demands bitwise
// reproducibility).
func New(tolerance float64) *Selector {
	return &Selector{Policy: NewHeuristicPolicy(), Req: Requirement{Tolerance: tolerance}}
}

// Choose profiles xs and returns the selected algorithm with the
// policy's predicted variability; the decision goes through the
// decision cache when one is attached.
func (s *Selector) Choose(xs []float64) (sum.Algorithm, float64) {
	d := s.Decide(ProfileOf(xs))
	return d.Alg, d.Predicted
}

// Sum selects an algorithm for xs and computes the sum with it,
// returning both. The pass is fused and speculative: profiling already
// yields the ST and Neumaier answers, so those selections return
// without reading xs again, and escalations re-fold with the selected
// algorithm exactly as the legacy two-pass path did (PR runs its
// default configuration here; SelectAndSum is the tuning-aware serving
// call).
func (s *Selector) Sum(xs []float64) (float64, sum.Algorithm) {
	fp := FusedProfileSum(xs)
	d := s.Decide(fp.Profile)
	if v, ok := fp.SpecSum(d.Alg); ok {
		return v, d.Alg
	}
	return d.Alg.Sum(xs), d.Alg
}

// ReduceTree selects an algorithm from the profile of xs and reduces xs
// under the given tree plan with it.
func (s *Selector) ReduceTree(p tree.Plan, xs []float64) (float64, sum.Algorithm) {
	alg, _ := s.Choose(xs)
	return ReduceTreeWith(alg, p, xs), alg
}

// ReduceTreeWith reduces xs under plan p with an already-chosen
// algorithm, dispatching to the unboxed generic executors.
func ReduceTreeWith(alg sum.Algorithm, p tree.Plan, xs []float64) float64 {
	switch alg {
	case sum.StandardAlg, sum.PairwiseAlg:
		return tree.Reduce[float64](sum.STMonoid{}, p, xs)
	case sum.KahanAlg:
		return tree.Reduce[sum.KState](sum.KahanMonoid{}, p, xs)
	case sum.NeumaierAlg:
		return tree.Reduce[sum.NState](sum.NeumaierMonoid{}, p, xs)
	case sum.CompositeAlg:
		return tree.Reduce(sum.CPMonoid{}, p, xs)
	case sum.PreroundedAlg:
		return tree.Reduce[sum.PRState](sum.DefaultPRConfig().Monoid(), p, xs)
	case sum.BinnedAlg:
		return tree.Reduce[binned.State](sum.BNMonoid{}, p, xs)
	}
	panic("selector: invalid algorithm " + alg.String())
}

// AdaptiveReduce performs an intelligently selected global sum over a
// simulated communicator:
//
//  1. each rank profiles its local values (one streaming pass);
//  2. the profiles are merged with one AllReduce (profiles are small
//     and their merge is cheap and insensitive to order at the
//     resolution that matters);
//  3. every rank applies the policy to the identical global profile,
//     reaching the same algorithm choice with no extra coordination
//     (the quantized decision cache, when attached, is consulted here
//     — its decisions are pure functions of the profile bucket, so
//     ranks with the same global profile still agree);
//  4. the selected operator runs the real reduction.
//
// Returns the sum (valid on the root, ok=true there) and the algorithm
// every rank agreed on.
func AdaptiveReduce(r *mpirt.Rank, root int, local []float64, s *Selector,
	topo mpirt.Topology, mode mpirt.Mode) (result float64, alg sum.Algorithm, ok bool) {
	localProf := ProfileOf(local)
	st := r.AllReduce(localProf, ProfileOp{}, topo, mpirt.FixedOrder)
	global := ProfileOp{}.Profile(st)
	alg = s.Decide(global).Alg
	op := alg.Op()
	reduced := r.Reduce(root, alg.LocalState(local), op, topo, mode)
	if reduced == nil {
		return 0, alg, false
	}
	return op.Finalize(reduced), alg, true
}
