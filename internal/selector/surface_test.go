package selector

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/sum"
)

// fig12Thresholds mirrors experiments.Fig12Thresholds (loosest to
// tightest) without importing the experiments package.
var fig12Thresholds = []float64{5e-13, 3e-13, 2.5e-13, 1.5e-13, 5e-14}

// auditCalibration runs one small real sweep shared by the agreement
// tests (the fig12 audit fixture).
func auditCalibration(t *testing.T) *CalibratedPolicy {
	t.Helper()
	return Calibrate(CalibrationConfig{
		Ns:         []int{256, 1024, 4096},
		Ks:         []float64{1, 1e2, 1e4, 1e6, 1e8},
		DRs:        []int{0, 8, 16},
		Trials:     12,
		Seed:       7,
		Algorithms: sum.SelectionLadder,
	})
}

// auditProfiles spans the fig12 audit grid as live profiles.
func auditProfiles() []Profile {
	var profs []Profile
	seed := uint64(400)
	for _, n := range []int{256, 512, 1024, 4096} {
		for ki := 0; ki <= 8; ki += 2 {
			for _, dr := range []int{0, 8, 16} {
				seed++
				xs := gen.Spec{N: n, Cond: math.Pow(10, float64(ki)), DynRange: dr, Seed: seed}.Generate()
				profs = append(profs, ProfileOf(xs))
			}
		}
	}
	return profs
}

// TestSurfaceAgreesWithScan fits a surface from a real calibration sweep
// and audits it against the nearest-neighbor scan across the fig12 grid
// of profiles and thresholds: picks must agree on at least 95% of the
// grid, and a surface pick must never violate the tolerance according
// to the scan's own measured variability for that profile.
func TestSurfaceAgreesWithScan(t *testing.T) {
	scan := auditCalibration(t)
	surface := FitSurface(scan.Cells(), nil, 4)
	if surface.Empty() {
		t.Fatal("surface empty after real calibration sweep")
	}
	profs := auditProfiles()
	total, agree := 0, 0
	for _, tol := range fig12Thresholds {
		req := Requirement{Tolerance: tol}
		for _, p := range profs {
			scanAlg, _ := scan.Select(p, req)
			surfAlg, _ := surface.Select(p, req)
			total++
			if scanAlg == surfAlg {
				agree++
			}
			// Tolerance audit: judge the surface's pick by the scan's
			// measured variability at this profile's nearest cell.
			cell, ok := scan.nearest(p)
			if !ok {
				continue
			}
			if rel, measured := cell.RelStdDev[surfAlg]; measured && rel*4 > tol {
				t.Errorf("tolerance violation: surface picked %v (measured rel %.3g, safety-scaled %.3g) at tol %.3g for n=%d k=%.3g dr=%d",
					surfAlg, rel, rel*4, tol, p.N, p.Cond(), p.DynRange())
			}
		}
	}
	if pct := float64(agree) / float64(total) * 100; pct < 95 {
		t.Errorf("surface agrees with scan on %d/%d picks (%.1f%%), want >= 95%%", agree, total, pct)
	}
}

// TestSurfaceBoundaryExtremes pins extrapolation: at and beyond every
// table extreme — n below the smallest and above the largest calibrated
// size, condition numbers past the last calibrated decade and past the
// clamp ceiling, dynamic ranges past the calibrated span — the surface
// must resolve exactly like the scan (both clamp to the edge of the
// calibrated envelope).
func TestSurfaceBoundaryExtremes(t *testing.T) {
	scan := syntheticTable()
	surface := FitSurface(scan.Cells(), nil, 4)
	specs := []gen.Spec{
		{N: 4, Cond: 1, DynRange: 0, Seed: 500},           // far below smallest n
		{N: 1 << 22, Cond: 1e4, DynRange: 8, Seed: 501},   // above largest n
		{N: 1 << 10, Cond: 1e12, DynRange: 8, Seed: 502},  // k past last decade
		{N: 1 << 14, Cond: 1e30, DynRange: 16, Seed: 503}, // k past the 1e17 clamp
		{N: 1 << 14, Cond: 1e4, DynRange: 48, Seed: 504},  // dr past calibrated span
		{N: 1 << 22, Cond: 1e30, DynRange: 48, Seed: 505}, // every axis beyond
	}
	for _, spec := range specs {
		p := ProfileOf(spec.Generate())
		for _, tol := range []float64{1e-6, 1e-9, 1e-12, 0} {
			req := Requirement{Tolerance: tol}
			scanAlg, _ := scan.Select(p, req)
			surfAlg, _ := surface.Select(p, req)
			if scanAlg != surfAlg {
				t.Errorf("spec %+v tol %.3g: surface picked %v, scan %v", spec, tol, surfAlg, scanAlg)
			}
		}
	}
	// A single-value profile exercises the n floor (bits.Len64 clamp).
	p := ProfileOf([]float64{1.5})
	sAlg, _ := scan.Select(p, Requirement{Tolerance: 1e-12})
	fAlg, _ := surface.Select(p, Requirement{Tolerance: 1e-12})
	if sAlg != fAlg {
		t.Errorf("n=1 profile: surface picked %v, scan %v", fAlg, sAlg)
	}
}

// TestSurfaceDegenerateInput exercises the failed-calibration paths: a
// sweep where an engine produced NaN, where whole algorithms are
// missing, or where nothing usable was measured at all must yield a
// surface that still serves — escalating past the broken columns to a
// reproducible rung, or falling back to the heuristic when empty.
func TestSurfaceDegenerateInput(t *testing.T) {
	p := ProfileOf(gen.Spec{N: 1024, Cond: 1e6, DynRange: 8, Seed: 600}.Generate())
	req := Requirement{Tolerance: 1e-12}

	t.Run("empty", func(t *testing.T) {
		surface := FitSurface(nil, nil, 4)
		if !surface.Empty() {
			t.Fatal("surface from no cells should be empty")
		}
		wantAlg, wantPred := NewHeuristicPolicy().Select(p, req)
		alg, pred := surface.Select(p, req)
		if alg != wantAlg || pred != wantPred {
			t.Errorf("empty surface selected %v/%g, heuristic %v/%g", alg, pred, wantAlg, wantPred)
		}
	})

	t.Run("nil policy", func(t *testing.T) {
		var surface *CalibratedSurfacePolicy
		wantAlg, _ := NewHeuristicPolicy().Select(p, req)
		alg, _ := surface.Select(p, req)
		if alg != wantAlg {
			t.Errorf("nil surface selected %v, heuristic %v", alg, wantAlg)
		}
	})

	t.Run("all NaN measurements", func(t *testing.T) {
		cells := []grid.CellResult{{
			Spec: grid.CellSpec{N: 1024, Cond: 1e6, DynRange: 8}, MeasuredK: 1e6, MeasuredDR: 8,
			RelStdDev: map[sum.Algorithm]float64{sum.StandardAlg: math.NaN(), sum.KahanAlg: math.NaN()},
		}}
		surface := FitSurface(cells, nil, 4)
		alg, pred := surface.Select(p, req)
		if alg != sum.CheapestReproducible() || pred != 0 {
			t.Errorf("all-NaN surface selected %v/%g, want ladder fallback %v/0", alg, pred, sum.CheapestReproducible())
		}
	})

	t.Run("partial engine failure", func(t *testing.T) {
		// ST failed on the high-k cell (NaN), K measured fine: at high k
		// the surface must skip ST's corrupt column yet keep serving K.
		cells := []grid.CellResult{
			{
				Spec: grid.CellSpec{N: 1024, Cond: 1, DynRange: 8}, MeasuredK: 1, MeasuredDR: 8,
				RelStdDev: map[sum.Algorithm]float64{sum.StandardAlg: 1e-16, sum.KahanAlg: 1e-18},
			},
			{
				Spec: grid.CellSpec{N: 1024, Cond: 1e6, DynRange: 8}, MeasuredK: 1e6, MeasuredDR: 8,
				RelStdDev: map[sum.Algorithm]float64{sum.StandardAlg: math.NaN(), sum.KahanAlg: 1e-12},
			},
		}
		surface := FitSurface(cells, nil, 4)
		alg, _ := surface.Select(p, Requirement{Tolerance: 1e-10})
		if alg != sum.KahanAlg {
			t.Errorf("partial surface selected %v, want K (ST's high-k knot is corrupt, clamp keeps ST's k=1 value only below)", alg)
		}
	})

	t.Run("non-finite cost timings", func(t *testing.T) {
		cells := syntheticTable().Cells()
		costs := []CostSample{
			{Alg: sum.StandardAlg, N: 1024, NsPerOp: math.Inf(1)},
			{Alg: sum.KahanAlg, N: 1024, NsPerOp: math.NaN()},
			{Alg: sum.CompositeAlg, N: 1024, NsPerOp: -3},
		}
		clean := FitSurface(cells, nil, 4)
		dirty := FitSurface(cells, costs, 4)
		for _, n := range []int64{256, 1024, 1 << 20} {
			co, do := clean.WalkOrder(n), dirty.WalkOrder(n)
			for i := range co {
				if co[i] != do[i] {
					t.Fatalf("n=%d: unusable cost samples changed the walk order: %v vs %v", n, do, co)
				}
			}
		}
	})
}

// TestSurfaceToleranceZeroRequiresReproducible pins the bitwise
// contract against the measured-cost walk order: a finite sweep can
// measure CP's spread as exactly 0 on benign cells, and host timings
// (e.g. under the race detector's instrumentation) can put CP ahead of
// BN in the walk — but tolerance 0 demands a construction-level
// guarantee, so the surface must still resolve to a reproducible rung.
func TestSurfaceToleranceZeroRequiresReproducible(t *testing.T) {
	cells := []grid.CellResult{{
		Spec: grid.CellSpec{N: 1024, Cond: 1, DynRange: 8}, MeasuredK: 1, MeasuredDR: 8,
		RelStdDev: map[sum.Algorithm]float64{
			sum.CompositeAlg: 0, // measured zero, not a bitwise guarantee
			sum.BinnedAlg:    0,
		},
	}}
	costs := []CostSample{
		{Alg: sum.CompositeAlg, N: 1024, Workers: 0, LaneWidth: 1, NsPerOp: 50},
		{Alg: sum.BinnedAlg, N: 1024, Workers: 0, LaneWidth: 1, NsPerOp: 80},
	}
	surface := FitSurface(cells, costs, 4)
	if order := surface.WalkOrder(1024); len(order) < 2 || order[0] != sum.CompositeAlg {
		t.Fatalf("walk order %v, want CP first (measured cheaper) for this pin to bite", order)
	}
	p := ProfileOf(gen.Spec{N: 1024, Cond: 1, DynRange: 8, Seed: 800}.Generate())
	alg, _ := surface.Select(p, Requirement{Tolerance: 0})
	if !alg.Reproducible() {
		t.Errorf("tolerance 0 selected %v, want a reproducible algorithm", alg)
	}
	// A nonzero tolerance keeps the measured order: CP qualifies and wins.
	if alg, _ := surface.Select(p, Requirement{Tolerance: 1e-15}); alg != sum.CompositeAlg {
		t.Errorf("tolerance 1e-15 selected %v, want CP (measured cheapest, qualifies)", alg)
	}
}

// TestSurfaceCostOrderRefit verifies measured costs re-order the ladder
// walk: when a nominally costlier algorithm measures cheaper on this
// host, the surface walks it first (and picks it when both qualify),
// while size buckets without samples inherit the nearest measured
// bucket.
func TestSurfaceCostOrderRefit(t *testing.T) {
	cells := syntheticTable().Cells()
	costs := []CostSample{
		{Alg: sum.StandardAlg, N: 1 << 10, Workers: 0, LaneWidth: 1, NsPerOp: 100},
		{Alg: sum.KahanAlg, N: 1 << 10, Workers: 0, LaneWidth: 1, NsPerOp: 40},
	}
	surface := FitSurface(cells, costs, 4)

	order := surface.WalkOrder(1 << 10)
	if len(order) < 2 || order[0] != sum.KahanAlg || order[1] != sum.StandardAlg {
		t.Fatalf("walk order %v, want K before ST (K measured cheaper)", order)
	}
	// The measured order must inherit into unmeasured size buckets.
	far := surface.WalkOrder(1 << 18)
	if far[0] != sum.KahanAlg {
		t.Errorf("unmeasured bucket walk order %v, want inherited K-first", far)
	}

	// At a tolerance both ST and K satisfy, the re-ordered walk picks K.
	p := ProfileOf(gen.Spec{N: 1 << 10, Cond: 1, DynRange: 8, Seed: 700}.Generate())
	alg, _ := surface.Select(p, Requirement{Tolerance: 1e-9})
	if alg != sum.KahanAlg {
		t.Errorf("selected %v, want K (cheapest by measurement, tolerance permits both)", alg)
	}
	// The unmodified surface keeps the static CostRank walk: ST first.
	static := FitSurface(cells, nil, 4)
	if alg, _ := static.Select(p, Requirement{Tolerance: 1e-9}); alg != sum.StandardAlg {
		t.Errorf("static-order surface selected %v, want ST", alg)
	}
}

// TestSurfaceSelectAllocs pins the zero-allocation serve path.
func TestSurfaceSelectAllocs(t *testing.T) {
	surface := FitSurface(syntheticTable().Cells(), nil, 4)
	p := ProfileOf(gen.Spec{N: 100000, Cond: 1e8, DynRange: 24, Seed: 91}.Generate())
	req := Requirement{Tolerance: 1e-12}
	if allocs := testing.AllocsPerRun(100, func() {
		surface.Select(p, req)
	}); allocs != 0 {
		t.Errorf("surface Select allocates %v per op, want 0", allocs)
	}
}

// TestSurfaceCacheHitEqualsMiss composes the surface with the decision
// cache: the cached decision must equal the surface's direct answer for
// every profile (the hit==miss soundness the cache guarantees requires
// the policy to be constant within a quantized bucket, which the
// surface is by construction).
func TestSurfaceCacheHitEqualsMiss(t *testing.T) {
	surface := FitSurface(syntheticTable().Cells(), nil, 4)
	seed := uint64(800)
	for _, n := range []int{512, 4096, 100000} {
		for _, k := range []float64{1, 1e4, 1e8, 1e12} {
			for _, dr := range []int{0, 16, 40} {
				seed++
				p := ProfileOf(gen.Spec{N: n, Cond: k, DynRange: dr, Seed: seed}.Generate())

				miss := New(1e-12)
				miss.Policy = surface

				cached := New(1e-12)
				cached.Policy = surface
				cached.Cache = NewDecisionCache(CacheConfig{})
				cached.Decide(p) // populate
				hit := cached.Decide(p)

				if want := miss.Decide(p); hit.Alg != want.Alg {
					t.Errorf("n=%d k=%.3g dr=%d: cache hit picked %v, direct surface %v", n, k, dr, hit.Alg, want.Alg)
				}
			}
		}
	}
}
