package selector

import (
	"math"
	"sort"

	"repro/internal/fpu"
	"repro/internal/grid"
	"repro/internal/sum"
	"repro/internal/tree"
)

// Requirement is the application's reproducibility contract: the maximum
// tolerated run-to-run variability of a reduction, expressed as the
// standard deviation of the result across reduction trees relative to
// the magnitude of the sum. Tolerance 0 demands bitwise reproducibility.
type Requirement struct {
	Tolerance float64
}

// Policy maps a data profile and a requirement to the cheapest
// algorithm expected to satisfy the requirement.
type Policy interface {
	// Select returns the chosen algorithm and the predicted relative
	// variability it would exhibit on data matching the profile.
	Select(p Profile, req Requirement) (sum.Algorithm, float64)
}

// ModelParams are the safety multipliers of the analytic variability
// model, calibratable against measurement (FitModel).
type ModelParams struct {
	CST, CK, CCP float64
}

// DefaultModelParams returns conservative multipliers validated against
// the repository's grid sweeps.
func DefaultModelParams() ModelParams { return ModelParams{CST: 2, CK: 4, CCP: 4} }

// HeuristicPolicy selects from closed-form variability predictions:
//
//	ST: c_st · u · sqrt(n) · k   (roundoff random walk across orders)
//	K:  c_k  · u · k             (compensation removes the n growth)
//	CP: c_cp · n · u^2 · k       (only the second-order term survives)
//	PR: 0                        (bitwise reproducible by construction)
//
// The shapes follow Higham's bounds for the respective operators; the
// condition number k converts absolute error into relative variability,
// which is why the paper's grids darken so strongly along the k axis.
type HeuristicPolicy struct {
	Params ModelParams
}

// NewHeuristicPolicy returns a HeuristicPolicy with default parameters.
func NewHeuristicPolicy() HeuristicPolicy {
	return HeuristicPolicy{Params: DefaultModelParams()}
}

// Predict returns the modeled relative variability of alg on profile p.
//
// Degenerate profiles short-circuit to 0: a reduction over at most one
// value admits exactly one evaluation order, and an all-zero set sums
// to zero under every algorithm and tree, so no run-to-run variability
// exists for any operator (the general shapes would otherwise
// manufacture a c·u·k floor out of Cond's empty-set convention k = 1).
// Poisoned (NonFinite) profiles keep the general path: Cond is +Inf
// there, every non-reproducible prediction is +Inf, and the ladder
// walk escalates to a reproducible rung.
func (hp HeuristicPolicy) Predict(alg sum.Algorithm, p Profile) float64 {
	if !p.NonFinite && (p.N <= 1 || p.SumAbs.Float64() == 0) {
		return 0
	}
	n := float64(p.N)
	if n < 1 {
		n = 1 // poisoned empty profiles: keep the shapes finite
	}
	k := p.Cond()
	u := fpu.UnitRoundoff
	switch alg {
	case sum.StandardAlg:
		return hp.Params.CST * u * math.Sqrt(n) * k
	case sum.PairwiseAlg:
		// Balanced-tree depth replaces the serial length.
		d := math.Log2(n) + 1
		return hp.Params.CST * u * math.Sqrt(d) * k
	case sum.KahanAlg:
		return hp.Params.CK * u * k
	case sum.NeumaierAlg:
		return hp.Params.CK * u * k // same first-order behavior as Kahan
	case sum.CompositeAlg:
		return hp.Params.CCP * n * u * u * k
	case sum.PreroundedAlg, sum.BinnedAlg:
		// Bitwise reproducible by construction.
		return 0
	}
	return math.Inf(1)
}

// Select implements Policy: the cheapest ladder algorithm whose
// predicted variability meets the requirement. The ladder ends in
// reproducible rungs predicting 0, so the walk always terminates; the
// cheapest reproducible algorithm is the safety net if it somehow
// doesn't.
func (hp HeuristicPolicy) Select(p Profile, req Requirement) (sum.Algorithm, float64) {
	for _, alg := range sum.SelectionLadder {
		if pred := hp.Predict(alg, p); pred <= req.Tolerance {
			return alg, pred
		}
	}
	return sum.CheapestReproducible(), 0
}

// CalibratedPolicy selects from measured variability: a table of grid
// cells evaluated offline (grid.Sweep), matched by nearest neighbor in
// (log n, log k, dr) space with a safety factor on the measured value.
type CalibratedPolicy struct {
	cells  []grid.CellResult
	safety float64
}

// CalibrationConfig tunes the offline sweep backing a CalibratedPolicy.
type CalibrationConfig struct {
	// Ns, Ks, DRs span the expected operating envelope.
	Ns  []int
	Ks  []float64
	DRs []int
	// Algorithms to measure per cell (default sum.PaperAlgorithms; the
	// calibration harness passes the full selection ladder).
	Algorithms []sum.Algorithm
	// Trials per cell (default 50).
	Trials int
	// Shape of the calibration trees (default Balanced).
	Shape tree.Shape
	// Safety multiplies measured variability before comparison with the
	// tolerance (default 4).
	Safety float64
	Seed   uint64
}

func (c CalibrationConfig) withDefaults() CalibrationConfig {
	if len(c.Ns) == 0 {
		c.Ns = []int{1 << 10, 1 << 14, 1 << 18}
	}
	if len(c.Ks) == 0 {
		c.Ks = []float64{1, 1e2, 1e4, 1e6, 1e8}
	}
	if len(c.DRs) == 0 {
		c.DRs = []int{0, 16, 32}
	}
	if c.Trials <= 0 {
		c.Trials = 50
	}
	if c.Safety <= 0 {
		c.Safety = 4
	}
	if len(c.Algorithms) == 0 {
		c.Algorithms = sum.PaperAlgorithms
	}
	return c
}

// Calibrate runs the offline sweep and returns a measurement-backed
// policy. Cost scales with len(Ns)*len(Ks)*len(DRs)*Trials*max(Ns).
func Calibrate(cfg CalibrationConfig) *CalibratedPolicy {
	cfg = cfg.withDefaults()
	var cells []grid.CellSpec
	for _, n := range cfg.Ns {
		cells = append(cells, grid.KDRGrid(n, cfg.Ks, cfg.DRs)...)
	}
	results := grid.Sweep(cells, grid.Config{
		Algorithms: cfg.Algorithms,
		Trials:     cfg.Trials,
		Shape:      cfg.Shape,
		Seed:       cfg.Seed,
	})
	return &CalibratedPolicy{cells: results, safety: cfg.Safety}
}

// NewCalibratedPolicy wraps pre-computed sweep results (e.g. loaded from
// a previous run) as a policy.
func NewCalibratedPolicy(results []grid.CellResult, safety float64) *CalibratedPolicy {
	if safety <= 0 {
		safety = 4
	}
	cp := &CalibratedPolicy{safety: safety}
	cp.cells = append(cp.cells, results...)
	return cp
}

// nearest returns the calibration cell closest to the profile in
// (log2 n, log10 k, dr/8) space.
func (cp *CalibratedPolicy) nearest(p Profile) (grid.CellResult, bool) {
	if len(cp.cells) == 0 {
		return grid.CellResult{}, false
	}
	pk := clampLog10K(p.Cond())
	pn := math.Log2(float64(max64(p.N, 1)))
	pdr := float64(p.DynRange()) / 8
	bestIdx, bestDist := -1, math.Inf(1)
	for i, c := range cp.cells {
		dk := clampLog10K(c.MeasuredK) - pk
		dn := math.Log2(float64(c.Spec.N)) - pn
		ddr := float64(c.MeasuredDR)/8 - pdr
		d := dk*dk + dn*dn + ddr*ddr
		if d < bestDist {
			bestDist, bestIdx = d, i
		}
	}
	if bestIdx < 0 {
		// Every distance was NaN (degenerate cell coordinates); no
		// meaningful neighbor exists.
		return grid.CellResult{}, false
	}
	return cp.cells[bestIdx], true
}

// clampLog10K maps k (possibly +Inf or NaN) onto a bounded log scale so
// that distances remain finite; k beyond 10^17 (full cancellation at
// double precision) saturates, and NaN estimates — an overflowed Σ|x|
// yields Cond = Inf/Inf — are treated as saturated rather than poisoning
// every distance they touch.
func clampLog10K(k float64) float64 {
	if math.IsNaN(k) || k > 1e17 {
		return 17
	}
	if k < 1 {
		k = 1
	}
	return math.Log10(k)
}

// Select implements Policy using measured cell variability.
func (cp *CalibratedPolicy) Select(p Profile, req Requirement) (sum.Algorithm, float64) {
	cell, ok := cp.nearest(p)
	if !ok {
		return NewHeuristicPolicy().Select(p, req)
	}
	type cand struct {
		alg  sum.Algorithm
		pred float64
	}
	var cands []cand
	for alg, rel := range cell.RelStdDev {
		cands = append(cands, cand{alg, rel * cp.safety})
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].alg.CostRank() < cands[j].alg.CostRank()
	})
	for _, c := range cands {
		if c.pred <= req.Tolerance {
			return c.alg, c.pred
		}
	}
	// No measured column met the tolerance (calibration tables need not
	// include a reproducible algorithm): escalate to the cheapest
	// reproducible rung of the ladder rather than a hardcoded one.
	return sum.CheapestReproducible(), 0
}

// Cells exposes the calibration table (for persistence and reports).
func (cp *CalibratedPolicy) Cells() []grid.CellResult { return cp.cells }

// Static is a Policy that always selects one fixed algorithm, with a
// predicted variability of 0. It pins an operator while keeping the
// selector's profiling, fused speculation, and caching machinery in
// the loop — the benchmarks use it to isolate the Neumaier fast path,
// which the analytic policy never reaches (Kahan precedes it in
// sum.PaperAlgorithms at the same predicted variability).
type Static struct {
	Alg sum.Algorithm
}

// Select implements Policy.
func (st Static) Select(Profile, Requirement) (sum.Algorithm, float64) {
	return st.Alg, 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
