package selector_test

import (
	"fmt"

	"repro/internal/selector"
)

// Profiles capture the runtime-estimable properties driving selection.
func ExampleProfileOf() {
	p := selector.ProfileOf([]float64{500.5, -499.5, 256})
	fmt.Printf("n=%d k=%.4g dr=%d sameSign=%v\n", p.N, p.Cond(), p.DynRange(), p.SameSign())
	// Output: n=3 k=4.887 dr=0 sameSign=false
}

// The analytic policy picks the cheapest algorithm whose modeled
// variability meets the requirement.
func ExampleHeuristicPolicy_Select() {
	hp := selector.NewHeuristicPolicy()
	easy := selector.ProfileOf([]float64{1, 2, 3, 4})
	alg, _ := hp.Select(easy, selector.Requirement{Tolerance: 1e-9})
	fmt.Println("easy data:", alg)
	algBit, _ := hp.Select(easy, selector.Requirement{Tolerance: 0})
	fmt.Println("bitwise contract:", algBit)
	// Output:
	// easy data: ST
	// bitwise contract: BN
}

// TunePR sizes the prerounded operator's fold budget to the tolerance.
func ExampleTunePR() {
	p := selector.ProfileOf([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	loose := selector.TunePR(p, selector.Requirement{Tolerance: 1e-3})
	tight := selector.TunePR(p, selector.Requirement{Tolerance: 1e-25})
	fmt.Printf("loose: F=%d, tight: F=%d\n", loose.F, tight.F)
	// Output: loose: F=2, tight: F=5
}
