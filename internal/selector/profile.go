// Package selector implements the paper's proposed contribution: an
// intelligent runtime that profiles the mathematical properties of the
// floating-point values to be reduced (n, condition number, dynamic
// range, sign uniformity) and selects the cheapest reduction algorithm
// that achieves an application-specified reproducibility target
// (Sections V-C/V-D and Fig 12).
//
// Two policies are provided: an analytic HeuristicPolicy derived from
// error-bound shapes, and a CalibratedPolicy backed by measured
// variability over a parameter-space sweep (the grid package). Both
// are deterministic functions of the profile, so every rank of a
// distributed reduction reaches the same decision without extra
// coordination beyond sharing the profile.
package selector

import (
	"fmt"
	"math"

	"repro/internal/dd"
	"repro/internal/fpu"
	"repro/internal/parallel"
	"repro/internal/reduce"
)

// Profile summarizes the runtime-estimable properties of a value set.
// Profiles are mergeable, so a global profile can be computed with one
// cheap AllReduce before the real reduction.
type Profile struct {
	// N is the number of values (zeros included).
	N int64
	// Sum is the running sum in composite precision — accurate enough
	// to detect near-total cancellation (~106 bits).
	Sum dd.DD
	// SumAbs is the running sum of |x| in composite precision.
	SumAbs dd.DD
	// MaxExp and MinExp are the extreme binary exponents of the nonzero
	// values; valid only when HasNonzero.
	MaxExp, MinExp int
	HasNonzero     bool
	// Pos, Neg count strictly positive and negative values.
	Pos, Neg int64
	// NonFinite is the poison flag (mirroring superacc.Acc): a NaN or
	// ±Inf was profiled. Such values never enter Sum/SumAbs or the
	// exponent extremes — they would silently corrupt the dd arithmetic —
	// and Merge propagates the flag, so a poisoned shard poisons the
	// global profile. Cond reports +Inf for poisoned profiles.
	NonFinite bool
}

// Cond estimates the sum condition number k = sum|x| / |sum x| from the
// profile. All-zero or empty profiles return 1; profiles whose sum
// cancels below composite-precision resolution, and profiles poisoned by
// non-finite values, return +Inf (the worst-conditioned answer — the
// selector cannot promise any finite variability for such data).
func (p Profile) Cond() float64 {
	if p.NonFinite {
		return math.Inf(1)
	}
	abs := p.SumAbs.Float64()
	if abs == 0 {
		return 1
	}
	s := p.Sum.Float64()
	if s == 0 {
		return math.Inf(1)
	}
	return abs / math.Abs(s)
}

// DynRange returns the binary dynamic range of the profiled values.
func (p Profile) DynRange() int {
	if !p.HasNonzero {
		return 0
	}
	return p.MaxExp - p.MinExp
}

// SameSign reports whether every nonzero value shares one sign (k = 1).
func (p Profile) SameSign() bool { return p.Pos == 0 || p.Neg == 0 }

// String renders the profile's headline numbers.
func (p Profile) String() string {
	if p.NonFinite {
		return fmt.Sprintf("profile{n=%d non-finite}", p.N)
	}
	return fmt.Sprintf("profile{n=%d k=%.3g dr=%d sameSign=%v}",
		p.N, p.Cond(), p.DynRange(), p.SameSign())
}

// Merge combines two profiles; the result describes the union of the
// two value sets.
func (p Profile) Merge(q Profile) Profile {
	out := Profile{
		N:         p.N + q.N,
		Sum:       p.Sum.Add(q.Sum),
		SumAbs:    p.SumAbs.Add(q.SumAbs),
		Pos:       p.Pos + q.Pos,
		Neg:       p.Neg + q.Neg,
		NonFinite: p.NonFinite || q.NonFinite,
	}
	switch {
	case p.HasNonzero && q.HasNonzero:
		out.HasNonzero = true
		out.MaxExp = max(p.MaxExp, q.MaxExp)
		out.MinExp = min(p.MinExp, q.MinExp)
	case p.HasNonzero:
		out.HasNonzero, out.MaxExp, out.MinExp = true, p.MaxExp, p.MinExp
	case q.HasNonzero:
		out.HasNonzero, out.MaxExp, out.MinExp = true, q.MaxExp, q.MinExp
	}
	return out
}

// Add folds one value into the profile. Non-finite values count toward N
// and set the NonFinite poison flag instead of entering the running
// sums, which would silently turn Cond into garbage.
func (p Profile) Add(x float64) Profile {
	p.observe(x)
	return p
}

// observe is the in-place sampling step shared by Add and the ProfileOf
// batch loop; keeping it pointer-receiver lets the hot profiling pass
// skip the two ~90-byte Profile copies per element that the value-
// semantics Add pays.
func (p *Profile) observe(x float64) {
	p.N++
	if x == 0 {
		return
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		p.NonFinite = true
		return
	}
	p.Sum = p.Sum.AddFloat64(x)
	p.SumAbs = p.SumAbs.AddFloat64(math.Abs(x))
	e := fpu.Exponent(x)
	if !p.HasNonzero {
		p.HasNonzero = true
		p.MaxExp, p.MinExp = e, e
	} else {
		if e > p.MaxExp {
			p.MaxExp = e
		}
		if e < p.MinExp {
			p.MinExp = e
		}
	}
	if x > 0 {
		p.Pos++
	} else {
		p.Neg++
	}
}

// ProfileOf profiles a slice in one streaming pass. The loop mutates one
// local profile in place (see observe), so it is bit-identical to — and
// markedly faster than — folding Profile.Add over the slice.
func ProfileOf(xs []float64) Profile {
	var p Profile
	for _, x := range xs {
		p.observe(x)
	}
	return p
}

// ProfileOfParallel profiles xs on the parallel engine: fixed chunks are
// profiled independently (each with the same streaming pass ProfileOf
// uses) and combined with Profile.Merge over the engine's fixed balanced
// tree. The result is bitwise-identical across worker counts. It is not
// guaranteed bit-identical to the single-pass ProfileOf — the composite-
// precision Sum/SumAbs fields can differ below ~2^-104 relative — but
// every derived quantity (Cond, DynRange, SameSign, counts) agrees at
// the resolution selection depends on.
func ProfileOfParallel(xs []float64, cfg parallel.Config) Profile {
	p, ok := parallel.MapReduce(len(xs), cfg,
		func(lo, hi int) Profile { return ProfileOf(xs[lo:hi]) },
		Profile.Merge)
	if !ok {
		return Profile{}
	}
	return p
}

// ProfileOp is a reduce.Op over profiles, for computing a global profile
// with one mpirt AllReduce before the numeric reduction.
type ProfileOp struct{}

// Name implements reduce.Op.
func (ProfileOp) Name() string { return "profile" }

// Leaf lifts a single value into a profile.
func (ProfileOp) Leaf(x float64) reduce.State {
	var p Profile
	return p.Add(x)
}

// Merge combines two profile states.
func (ProfileOp) Merge(a, b reduce.State) reduce.State {
	return a.(Profile).Merge(b.(Profile))
}

// Finalize returns the profiled condition number (the headline scalar);
// callers that need the full profile should keep the state instead.
func (ProfileOp) Finalize(s reduce.State) float64 { return s.(Profile).Cond() }
