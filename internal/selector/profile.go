// Package selector implements the paper's proposed contribution: an
// intelligent runtime that profiles the mathematical properties of the
// floating-point values to be reduced (n, condition number, dynamic
// range, sign uniformity) and selects the cheapest reduction algorithm
// that achieves an application-specified reproducibility target
// (Sections V-C/V-D and Fig 12).
//
// Two policies are provided: an analytic HeuristicPolicy derived from
// error-bound shapes, and a CalibratedPolicy backed by measured
// variability over a parameter-space sweep (the grid package). Both
// are deterministic functions of the profile, so every rank of a
// distributed reduction reaches the same decision without extra
// coordination beyond sharing the profile.
//
// The serving path is speculative: FusedProfileSum computes the profile
// and the two cheapest candidate sums (ST and Neumaier) in one memory
// pass, so when the policy settles on either, the answer is already in
// hand and the data is never read twice (see fused.go). An optional
// quantized DecisionCache memoizes policy outcomes so steady-state
// traffic skips policy evaluation entirely (see cache.go).
package selector

import (
	"fmt"
	"math"

	"repro/internal/fpu"
	"repro/internal/parallel"
	"repro/internal/reduce"
)

// CSum is a compensated running sum: an unevaluated pair (S, C) whose
// value is S + C, maintained with Neumaier's recurrence (the correction
// of every addition is captured exactly via TwoSum and accumulated in
// C). The pair resolves cancellation far below the resolution of a
// plain float64 sum — the relative error of Float64() is O((n·u)²)
// times the absolute-value sum, which distinguishes condition numbers
// well beyond the 10^17 saturation point of the selection policies.
//
// CSum is the same state as sum.NState, and AddFloat64/Add are
// bit-compatible with the Neumaier fold and merge operators: a profile
// accumulated over a value set carries, for free, exactly the bits a
// Neumaier summation of that set would produce. The fused speculative
// engine (fused.go) is built on that identity.
type CSum struct{ S, C float64 }

// Float64 rounds the pair to the nearest float64 (the Neumaier
// finalization S + C).
func (a CSum) Float64() float64 { return a.S + a.C }

// IsNaN reports whether either component is NaN.
func (a CSum) IsNaN() bool { return math.IsNaN(a.S) || math.IsNaN(a.C) }

// Finite reports whether both components are finite (no intermediate
// overflow poisoned the pair; overflow is sticky under AddFloat64/Add).
func (a CSum) Finite() bool {
	return !math.IsNaN(a.S) && !math.IsInf(a.S, 0) &&
		!math.IsNaN(a.C) && !math.IsInf(a.C, 0)
}

// AddFloat64 folds one value into the pair. The residual is captured
// with the branch-free TwoSum, which equals Neumaier's branched
// residual bit-for-bit (both are the exact representable error of the
// same addition), so a chain of AddFloat64 calls is bitwise-identical
// to kernel.Neumaier / streaming sum.NeumaierAcc over the same values.
func (a CSum) AddFloat64(x float64) CSum {
	s, e := fpu.TwoSum(a.S, x)
	return CSum{S: s, C: a.C + e}
}

// Add merges two pairs: an exact TwoSum of the partial sums, the
// corrections added plainly — exactly sum.NeumaierMonoid.Merge, so
// tree-merged profiles stay bit-compatible with the parallel engine's
// Neumaier reduction.
func (a CSum) Add(b CSum) CSum {
	s, e := fpu.TwoSum(a.S, b.S)
	return CSum{S: s, C: a.C + b.C + e}
}

// Profile summarizes the runtime-estimable properties of a value set.
// Profiles are mergeable, so a global profile can be computed with one
// cheap AllReduce before the real reduction.
type Profile struct {
	// N is the number of values (zeros included).
	N int64
	// Sum is the running sum as a compensated (Neumaier) pair —
	// accurate enough to detect near-total cancellation, and
	// bit-identical to what a Neumaier summation of the same values
	// would hold (the fused engine returns it directly when the policy
	// selects Neumaier).
	Sum CSum
	// SumAbs is the running sum of |x|. The terms never cancel, so S is
	// accumulated plainly (n·u relative accuracy is ample for condition
	// estimation); C is populated only by Merge's exact combination.
	SumAbs CSum
	// MaxExp and MinExp are the extreme binary exponents of the nonzero
	// values; valid only when HasNonzero.
	MaxExp, MinExp int
	HasNonzero     bool
	// Pos, Neg count strictly positive and negative values.
	Pos, Neg int64
	// NonFinite is the poison flag (mirroring superacc.Acc): a NaN or
	// ±Inf was profiled. Such values never enter Sum/SumAbs or the
	// exponent extremes — they would silently corrupt the compensated
	// arithmetic — and Merge propagates the flag, so a poisoned shard
	// poisons the global profile. Cond reports +Inf for poisoned
	// profiles.
	NonFinite bool
}

// Cond estimates the sum condition number k = sum|x| / |sum x| from the
// profile. All-zero or empty profiles return 1; profiles whose sum
// cancels below compensated-pair resolution, and profiles poisoned by
// non-finite values, return +Inf (the worst-conditioned answer — the
// selector cannot promise any finite variability for such data). When
// SumAbs overflowed (inputs near the top of the binary64 range) the
// estimate can be NaN; the policies treat NaN like +Inf.
func (p Profile) Cond() float64 {
	if p.NonFinite {
		return math.Inf(1)
	}
	abs := p.SumAbs.Float64()
	if abs == 0 {
		return 1
	}
	s := p.Sum.Float64()
	if s == 0 {
		return math.Inf(1)
	}
	return abs / math.Abs(s)
}

// DynRange returns the binary dynamic range of the profiled values.
func (p Profile) DynRange() int {
	if !p.HasNonzero {
		return 0
	}
	return p.MaxExp - p.MinExp
}

// SameSign reports whether every nonzero value shares one sign (k = 1).
func (p Profile) SameSign() bool { return p.Pos == 0 || p.Neg == 0 }

// String renders the profile's headline numbers.
func (p Profile) String() string {
	if p.NonFinite {
		return fmt.Sprintf("profile{n=%d non-finite}", p.N)
	}
	return fmt.Sprintf("profile{n=%d k=%.3g dr=%d sameSign=%v}",
		p.N, p.Cond(), p.DynRange(), p.SameSign())
}

// Merge combines two profiles; the result describes the union of the
// two value sets.
//
// Merging with an empty profile (zero observations: N == 0 and no
// poison flag — every constructor counts each observed value in N) is
// an exact identity, returned without touching the compensated pairs:
// the general path's TwoSum against a zero pair is value-preserving
// but not bit-preserving (IEEE addition turns a -0 partial into +0),
// and the identity must keep the Σx pair bit-correct so fused
// speculative Neumaier results stay independent of how many empty
// shards a reduction tree happens to contain.
func (p Profile) Merge(q Profile) Profile {
	if q.N == 0 && !q.NonFinite {
		return p
	}
	if p.N == 0 && !p.NonFinite {
		return q
	}
	out := Profile{
		N:         p.N + q.N,
		Sum:       p.Sum.Add(q.Sum),
		SumAbs:    p.SumAbs.Add(q.SumAbs),
		Pos:       p.Pos + q.Pos,
		Neg:       p.Neg + q.Neg,
		NonFinite: p.NonFinite || q.NonFinite,
	}
	switch {
	case p.HasNonzero && q.HasNonzero:
		out.HasNonzero = true
		out.MaxExp = max(p.MaxExp, q.MaxExp)
		out.MinExp = min(p.MinExp, q.MinExp)
	case p.HasNonzero:
		out.HasNonzero, out.MaxExp, out.MinExp = true, p.MaxExp, p.MinExp
	case q.HasNonzero:
		out.HasNonzero, out.MaxExp, out.MinExp = true, q.MaxExp, q.MinExp
	}
	return out
}

// Add folds one value into the profile. Non-finite values count toward N
// and set the NonFinite poison flag instead of entering the running
// sums, which would silently turn Cond into garbage.
func (p Profile) Add(x float64) Profile {
	p.observe(x)
	return p
}

// observe is the in-place sampling step shared by Add and the ProfileOf
// batch loop; keeping it pointer-receiver lets the hot profiling pass
// skip the two ~90-byte Profile copies per element that the value-
// semantics Add pays. The fused kernel (kernel.FusedProfileSum)
// replicates this step exactly — the equivalence is pinned by tests.
func (p *Profile) observe(x float64) {
	p.N++
	if x == 0 {
		return
	}
	if math.IsNaN(x) || math.IsInf(x, 0) {
		p.NonFinite = true
		return
	}
	p.Sum = p.Sum.AddFloat64(x)
	p.SumAbs.S += math.Abs(x)
	e := fpu.FiniteExponent(x)
	if !p.HasNonzero {
		p.HasNonzero = true
		p.MaxExp, p.MinExp = e, e
	} else {
		if e > p.MaxExp {
			p.MaxExp = e
		}
		if e < p.MinExp {
			p.MinExp = e
		}
	}
	if x > 0 {
		p.Pos++
	} else {
		p.Neg++
	}
}

// ProfileOf profiles a slice in one streaming pass. The loop mutates one
// local profile in place (see observe), so it is bit-identical to — and
// markedly faster than — folding Profile.Add over the slice.
func ProfileOf(xs []float64) Profile {
	var p Profile
	for _, x := range xs {
		p.observe(x)
	}
	return p
}

// ProfileOfParallel profiles xs on the parallel engine: fixed chunks are
// profiled independently (each with the same streaming pass ProfileOf
// uses) and combined with Profile.Merge over the engine's fixed balanced
// tree. The result is bitwise-identical across worker counts. It is not
// guaranteed bit-identical to the single-pass ProfileOf — the
// compensated Sum/SumAbs pairs can differ in their final bits under the
// different combination order — but every derived quantity (Cond,
// DynRange, SameSign, counts) agrees at the resolution selection
// depends on.
func ProfileOfParallel(xs []float64, cfg parallel.Config) Profile {
	p, ok := parallel.MapReduce(len(xs), cfg,
		func(lo, hi int) Profile { return ProfileOf(xs[lo:hi]) },
		Profile.Merge)
	if !ok {
		return Profile{}
	}
	return p
}

// ProfileOp is a reduce.Op over profiles, for computing a global profile
// with one mpirt AllReduce before the numeric reduction.
type ProfileOp struct{}

// Name implements reduce.Op.
func (ProfileOp) Name() string { return "profile" }

// Leaf lifts a single value into a profile.
func (ProfileOp) Leaf(x float64) reduce.State {
	var p Profile
	return p.Add(x)
}

// Merge combines two profile states.
func (ProfileOp) Merge(a, b reduce.State) reduce.State {
	return a.(Profile).Merge(b.(Profile))
}

// Finalize returns the profiled condition number — reduce.Op constrains
// Finalize to a single scalar, and k is the headline one. The full
// merged profile is NOT lost: recover it with ProfileOp.Profile (or a
// direct type assertion) before finalizing, which is what the policy
// needs (AdaptiveReduce does exactly this with its AllReduce result).
func (ProfileOp) Finalize(s reduce.State) float64 { return s.(Profile).Cond() }

// Profile recovers the complete merged Profile from a ProfileOp
// reduction state, so tree-reduced profiling feeds the policy with
// every field (n, dynamic range, sign counts, poison flag) rather than
// the lone condition number Finalize can return.
func (ProfileOp) Profile(s reduce.State) Profile { return s.(Profile) }
