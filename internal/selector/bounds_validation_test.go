package selector

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/sum"
	"repro/internal/sum32"
	"repro/internal/tree"
)

// Differential validation of every reported bound against bigref
// ground truth (issue 6, satellite 4): a fig12-style parameter grid
// plus adversarial generators (cancellation-heavy, denormal-heavy,
// alternating-sign), each summed by every registered algorithm, with
// deterministic bounds required to hold always and probabilistic
// bounds at most at the stated λ failure rate. Everything is seeded,
// so the test is deterministic — a pass pins the estimators, not a
// lucky draw.

// boundChecker accumulates deterministic failures (hard errors) and
// probabilistic violations (rate-checked at the end).
type boundChecker struct {
	t          *testing.T
	probTotal  int // bound applications (union-bound weight)
	probViol   int
	worstRatio float64
}

func (c *boundChecker) check(ctx string, err float64, b Bound, weight int) {
	c.t.Helper()
	if math.IsNaN(b.Det) || math.IsNaN(b.Prob) || b.Det < 0 || b.Prob < 0 {
		c.t.Errorf("%s: malformed bound %+v", ctx, b)
		return
	}
	if b.Prob > b.Det {
		c.t.Errorf("%s: probabilistic bound %g above deterministic %g", ctx, b.Prob, b.Det)
	}
	if err > b.Det {
		c.t.Errorf("%s: deterministic bound VIOLATED: err %g > det %g", ctx, err, b.Det)
	}
	c.probTotal += weight
	if err > b.Prob {
		c.probViol++
		c.t.Logf("%s: probabilistic miss: err %g > prob %g (allowed at rate)", ctx, err, b.Prob)
	}
	if b.Prob > 0 && err/b.Prob > c.worstRatio {
		c.worstRatio = err / b.Prob
	}
}

func (c *boundChecker) finish(lambda float64) {
	c.t.Helper()
	allowed := int(math.Ceil(FailureProb(lambda) * float64(c.probTotal)))
	if c.probViol > allowed {
		c.t.Errorf("probabilistic bounds violated %d times over %d applications; stated rate allows %d",
			c.probViol, c.probTotal, allowed)
	}
	c.t.Logf("prob checks: %d violations / %d applications (allowed %d), worst err/prob ratio %.3g",
		c.probViol, c.probTotal, allowed, c.worstRatio)
}

// validationSets returns the named float64 operand sets: the fig12-ish
// grid plus the adversarial families.
func validationSets() map[string][]float64 {
	sets := make(map[string][]float64)
	for _, n := range []int{256, 1024, 4096} {
		for _, k := range []float64{1, 1e4, 1e8} {
			for _, dr := range []int{0, 16, 32} {
				spec := gen.Spec{N: n, Cond: k, DynRange: dr, Seed: uint64(n)*1000 + uint64(dr)}
				sets[fmt.Sprintf("grid/n=%d,k=%g,dr=%d", n, k, dr)] = spec.Generate()
			}
		}
	}
	// Cancellation-heavy: near-total and exact cancellation.
	sets["adv/cancel-1e14"] = gen.Spec{N: 2048, Cond: 1e14, DynRange: 8, Seed: 11}.Generate()
	sets["adv/cancel-exact"] = gen.Spec{N: 2048, Cond: math.Inf(1), DynRange: 20, Seed: 12}.Generate()
	// Denormal-heavy: random mantissas pinned deep in the subnormal
	// range (gen.Spec caps BaseExp at -1000, so build directly).
	rng := fpu.NewRNG(13)
	den := make([]float64, 2048)
	for i := range den {
		den[i] = math.Ldexp(1+rng.Float64(), -1070+rng.Intn(12))
		if rng.Intn(2) == 0 {
			den[i] = -den[i]
		}
	}
	sets["adv/denormal"] = den
	// Alternating-sign: inexactly cancelling neighbors of similar
	// magnitude — the roundoff-dominated regime.
	alt := make([]float64, 2048)
	for i := range alt {
		alt[i] = 1 + rng.Float64()
		if i%2 == 1 {
			alt[i] = -alt[i]
		}
	}
	sets["adv/alternating"] = alt
	return sets
}

// TestBoundsDifferentialSerial: every algorithm's serial one-shot sum
// stays within its serial-plan bounds on every validation set.
func TestBoundsDifferentialSerial(t *testing.T) {
	c := &boundChecker{t: t}
	for name, xs := range validationSets() {
		p := ProfileOf(xs)
		b := ComputeBounds(p, 0)
		if !b.Conclusive {
			t.Errorf("%s: bounds inconclusive on finite data", name)
			continue
		}
		ref := bigref.Sum(xs)
		for _, alg := range sum.Algorithms {
			err := bigref.Err(alg.Sum(xs), ref)
			c.check(name+"/"+alg.String(), err, b.For(alg), 1)
		}
	}
	c.finish(DefaultLambda)
}

// TestBoundsDifferentialTrees: balanced-tree execution (the grid
// methodology: many random balanced trees per cell) stays within the
// balanced-plan bounds — the plan ProbabilisticPolicy uses for
// tree-imposed collectives. The per-cell maximum observed error over
// all trials is checked, with the probabilistic rate union-bounded by
// the trial count.
func TestBoundsDifferentialTrees(t *testing.T) {
	const trials = 40
	c := &boundChecker{t: t}
	cfg := grid.Config{
		Algorithms: sum.Algorithms,
		Trials:     trials,
		Shape:      tree.Balanced,
		Seed:       61,
	}
	i := 0
	for _, k := range []float64{1, 1e4, 1e8} {
		for _, dr := range []int{0, 16, 32} {
			cell := grid.CellSpec{N: 4096, Cond: k, DynRange: dr}
			seed := fpu.MixSeed(cfg.Seed, uint64(i))
			res := grid.EvalCell(cell, cfg, seed)
			xs := gen.Spec{N: cell.N, Cond: cell.Cond, DynRange: cell.DynRange, Seed: seed}.Generate()
			b := ComputeBoundsPlan(ProfileOf(xs), 0, BalancedPlan)
			for _, alg := range sum.Algorithms {
				ctx := fmt.Sprintf("tree/%v/%v", cell, alg)
				c.check(ctx, res.MaxErr[alg], b.For(alg), trials)
			}
			i++
		}
	}
	c.finish(DefaultLambda)
}

// TestBoundsDifferentialSum32: the precision-aware regime — float32
// data, bounds evaluated at u = 2^-24 over the exactly-embedded
// float64 profile, validated against sum32's float32 accumulators.
func TestBoundsDifferentialSum32(t *testing.T) {
	c := &boundChecker{t: t}
	for _, k := range []float64{1, 1e3} {
		for _, dr := range []int{0, 12} {
			spec := gen.Spec{N: 4096, Cond: k, DynRange: dr, Seed: 71 + uint64(dr)}
			xs32 := make([]float32, 0, spec.N)
			xs64 := make([]float64, 0, spec.N)
			for _, x := range spec.Generate() {
				v := float32(x)
				xs32 = append(xs32, v)
				xs64 = append(xs64, float64(v)) // exact embedding
			}
			name := fmt.Sprintf("sum32/k=%g,dr=%d", k, dr)
			p := ProfileOf(xs64)
			ref := bigref.Sum(xs64)
			b32 := ComputeBoundsU(p, 0, 0x1p-24, SerialPlan)
			if !b32.Conclusive {
				t.Fatalf("%s: float32-regime bounds inconclusive", name)
			}
			// Naive float32 accumulation is the u32 serial chain.
			c.check(name+"/naive",
				bigref.Err(float64(sum32.Naive(xs32)), ref),
				b32.For(sum.StandardAlg), 1)
			// Kahan entirely in float32 is the u32 compensated bound.
			c.check(name+"/kahan32",
				bigref.Err(float64(sum32.Kahan32(xs32)), ref),
				b32.For(sum.KahanAlg), 1)
			// Wide (float64 accumulator, one final float32 rounding):
			// the float64 serial bound plus the final rounding's
			// u32·|s| — the "critical-section higher precision" claim
			// in bound form.
			b64 := ComputeBounds(p, 0)
			wide := b64.For(sum.StandardAlg)
			final := 0x1p-24 * math.Abs(p.Sum.Float64())
			c.check(name+"/wide",
				bigref.Err(float64(sum32.Wide(xs32)), ref),
				Bound{Det: wide.Det + final, Prob: wide.Prob + final}, 1)
		}
	}
	c.finish(DefaultLambda)
}
