package selector

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/grid"
	"repro/internal/sum"
)

// Fitted selection surfaces.
//
// A CalibratedPolicy answers every Select with a nearest-neighbor scan
// over its calibration cells plus a candidate sort — microseconds and a
// handful of allocations per decision. This file compiles the same
// measurements once, at load time, into a dense selection surface over
// the quantized profile axes the decision cache already uses, so a
// serve-time pick is one array index and a short ladder walk: a handful
// of comparisons, zero allocations, nanoseconds (the cuMat pattern of
// measuring piecewise selection boundaries in log-log space once per
// device, applied to the summation ladder).
//
// The fit is piecewise-linear along the condition axis: within the
// calibration plane nearest to a bucket in (log2 n, dynamic range),
// each algorithm's measured relative variability is interpolated
// log-linearly in log10 k between the bracketing calibration knots
// (clamped flat beyond the first and last knot). The level set
// safety·rel(log2 n, log10 k) = tolerance is therefore a
// piecewise-linear crossover boundary per algorithm, and tightening the
// tolerance sweeps the pick frontier exactly as the paper's Fig 12
// does. Interpolation involving a reproducible 0 or a saturated +Inf
// knot takes the conservative max of the two endpoints, so the surface
// never reports a smaller variability than both surrounding
// measurements.
//
// Extrapolation is pinned to clamping on every axis, mirroring what the
// scan's nearest-neighbor metric resolves to at the table extremes:
// n below the smallest (or above the largest) calibrated size uses the
// edge plane, condition numbers beyond the calibrated knots use the
// edge knot (condBucket already saturates k >= 1e17 into one sentinel
// bucket), and dynamic ranges outside the calibrated span use the edge
// plane. TestSurfaceBoundary* pin this agreement cell by cell.

// CostSample is one measured execution cost: the wall-clock ns/op of
// summing an n-element benign slice with one algorithm under one engine
// configuration (Workers == 0 means the serial streaming path;
// LaneWidth <= 1 means scalar folds). CostSweep produces them on the
// local host; FitSurface uses them to order each size bucket's ladder
// walk by measured cost instead of the static CostRank assumption.
type CostSample struct {
	Alg       sum.Algorithm
	N         int
	Workers   int
	LaneWidth int
	NsPerOp   float64
}

// surfaceKBuckets spans condBucket's full range: quarter-decade buckets
// 0..68 plus the saturated kInfBucket sentinel.
const surfaceKBuckets = int(kInfBucket) + 1

// CalibratedSurfacePolicy is a Policy backed by a fitted selection
// surface: per (size, condition, dynamic-range) bucket it stores each
// candidate algorithm's predicted relative variability (already
// safety-scaled), and per size bucket the measured-cost walk order.
// Select is a pure array lookup plus at most one comparison per ladder
// rung — no scan, no sort, no allocation — and is safe for concurrent
// use (the surface is immutable after FitSurface).
//
// An empty surface (no usable calibration cells) degrades to the
// analytic HeuristicPolicy, the same fallback the scan uses when its
// table is degenerate.
type CalibratedSurfacePolicy struct {
	safety float64
	// Bucket envelope: nq = bits.Len64(n) in [nqLo, nqHi], drq =
	// ceil(dr/4) in [drLo, drHi]; queries outside clamp to the edge.
	nqLo, nqHi int
	drLo, drHi int
	nDR        int
	// algs is the candidate set (every algorithm with at least one
	// measurement), in CostRank order.
	algs []sum.Algorithm
	// order[nqi][j] indexes algs: the walk order of size bucket nqi,
	// measured-cost ascending when cost samples cover the bucket,
	// CostRank (identity) otherwise.
	order [][]uint8
	// pred[((nqi*surfaceKBuckets)+kq)*nDR+dri)*len(algs)+ai] is the
	// safety-scaled predicted relative variability of algs[ai] in that
	// bucket.
	pred []float64
}

// FitSurface compiles calibration measurements into a selection
// surface. cells is a grid sweep (e.g. CalibratedPolicy.Cells or a
// loaded Calibration's); costs optionally carries CostSweep timings
// that re-order each size bucket's ladder walk by measured cost (nil
// keeps the static CostRank order); safety multiplies measured
// variability before tolerance comparison exactly as in
// NewCalibratedPolicy (<= 0 selects the default 4).
//
// Degenerate input degrades, never corrupts: cells with a non-positive
// size are skipped, algorithms missing from a plane (an engine that
// failed to calibrate) predict +Inf there so the walk escalates past
// them, a measured NaN poisons its knot to +Inf (a failed engine must
// not be extrapolated over), non-finite cost timings are ignored, and
// a sweep with no usable cell at all yields an empty surface that
// serves through the heuristic fallback.
func FitSurface(cells []grid.CellResult, costs []CostSample, safety float64) *CalibratedSurfacePolicy {
	if safety <= 0 {
		safety = 4
	}
	sp := &CalibratedSurfacePolicy{safety: safety}
	planes := buildPlanes(cells)
	if len(planes) == 0 {
		return sp
	}
	sp.algs = candidateAlgs(cells)

	// Bucket envelope from the calibrated planes.
	sp.nqLo, sp.nqHi = math.MaxInt, 0
	sp.drLo, sp.drHi = math.MaxInt, 0
	for _, pl := range planes {
		nq := bits.Len64(uint64(pl.n))
		drq := (pl.dr + 3) / 4
		sp.nqLo, sp.nqHi = min(sp.nqLo, nq), max(sp.nqHi, nq)
		sp.drLo, sp.drHi = min(sp.drLo, drq), max(sp.drHi, drq)
	}
	nN := sp.nqHi - sp.nqLo + 1
	sp.nDR = sp.drHi - sp.drLo + 1
	nalg := len(sp.algs)
	sp.pred = make([]float64, nN*surfaceKBuckets*sp.nDR*nalg)

	for nqi := 0; nqi < nN; nqi++ {
		for dri := 0; dri < sp.nDR; dri++ {
			// Plane choice is k-independent: nearest in the scan's
			// (log2 n, dr/8) metric. The n coordinate is the bucket's
			// log2 center — bucket nq covers [2^(nq-1), 2^nq), so its
			// center is nq - 0.5 (a power-of-two plane n = 2^(nq-1)
			// lands in bucket nq and wins its own bucket).
			pl := nearestPlane(planes, float64(sp.nqLo+nqi)-0.5, float64(4*(sp.drLo+dri))/8)
			for kq := 0; kq < surfaceKBuckets; kq++ {
				// Bucket-edge condition coordinate: quarter-decade upper
				// edge, saturating at clampLog10K's cap of 17 (the
				// sentinel bucket shares the cap).
				x := math.Min(float64(kq)/4, 17)
				base := (((nqi*surfaceKBuckets)+kq)*sp.nDR + dri) * nalg
				for ai, alg := range sp.algs {
					sp.pred[base+ai] = safety * pl.interp(alg, x)
				}
			}
		}
	}
	sp.order = walkOrders(sp.algs, costs, sp.nqLo, sp.nqHi)
	return sp
}

// Select implements Policy: index the bucket, walk the size bucket's
// cost order, return the first algorithm whose fitted prediction meets
// the requirement. Mirrors CalibratedPolicy.Select's contract,
// including the escalation to the cheapest reproducible rung when no
// fitted column qualifies and the heuristic fallback on an empty
// surface.
func (sp *CalibratedSurfacePolicy) Select(p Profile, req Requirement) (sum.Algorithm, float64) {
	if sp == nil || len(sp.pred) == 0 {
		return NewHeuristicPolicy().Select(p, req)
	}
	nqi := clampInt(bits.Len64(uint64(max64(p.N, 1))), sp.nqLo, sp.nqHi) - sp.nqLo
	kq := int(condBucket(p.Cond()))
	dri := clampInt((p.DynRange()+3)/4, sp.drLo, sp.drHi) - sp.drLo
	base := (((nqi*surfaceKBuckets)+kq)*sp.nDR + dri) * len(sp.algs)
	for _, ai := range sp.order[nqi] {
		if pr := sp.pred[base+int(ai)]; pr <= req.Tolerance {
			// Tolerance 0 demands bitwise reproducibility, which only
			// an algorithm's construction can certify: a measured
			// spread of exactly 0 over a finite sweep (common for CP
			// on benign cells) is not that guarantee, and the
			// measured-cost walk order may legitimately visit such an
			// algorithm before the reproducible rungs.
			if req.Tolerance == 0 && !sp.algs[ai].Reproducible() {
				continue
			}
			return sp.algs[ai], pr
		}
	}
	return sum.CheapestReproducible(), 0
}

// Empty reports whether the fit found no usable calibration cell (the
// policy then serves through the heuristic fallback).
func (sp *CalibratedSurfacePolicy) Empty() bool { return sp == nil || len(sp.pred) == 0 }

// Algorithms returns the candidate set the surface was fitted over, in
// CostRank order.
func (sp *CalibratedSurfacePolicy) Algorithms() []sum.Algorithm {
	return append([]sum.Algorithm(nil), sp.algs...)
}

// WalkOrder returns the fitted walk order for an n-element reduction —
// measured-cost ascending where the cost sweep covered the size bucket,
// CostRank otherwise. For reports and tests.
func (sp *CalibratedSurfacePolicy) WalkOrder(n int64) []sum.Algorithm {
	if sp.Empty() {
		return nil
	}
	nqi := clampInt(bits.Len64(uint64(max64(n, 1))), sp.nqLo, sp.nqHi) - sp.nqLo
	out := make([]sum.Algorithm, len(sp.order[nqi]))
	for j, ai := range sp.order[nqi] {
		out[j] = sp.algs[ai]
	}
	return out
}

// plane is one calibrated (n, dr) slice: the per-algorithm variability
// knots along the condition axis, sorted by clampLog10K(measured k).
type plane struct {
	n  int
	dr int
	// xs are the knot coordinates; rel[alg][i] pairs with xs[i]
	// (math.NaN marks an algorithm missing at that knot).
	xs  []float64
	rel map[sum.Algorithm][]float64
}

// interp evaluates one algorithm's piecewise-log-linear variability fit
// at condition coordinate x (clamped to the knot span). Knots where the
// algorithm is unmeasured or NaN are skipped; no knot at all predicts
// +Inf so the ladder walk escalates past the algorithm.
func (pl *plane) interp(alg sum.Algorithm, x float64) float64 {
	rel, ok := pl.rel[alg]
	if !ok {
		return math.Inf(1)
	}
	// Knots are sorted ascending by sortKnots: lo ends as the last
	// usable knot at or below x, hi as the first at or above.
	lo, hi := -1, -1
	for i, v := range rel {
		if math.IsNaN(v) {
			continue
		}
		if pl.xs[i] <= x {
			lo = i
		}
		if hi < 0 && pl.xs[i] >= x {
			hi = i
		}
	}
	if lo < 0 && hi < 0 {
		return math.Inf(1)
	}
	if lo < 0 {
		return rel[hi] // clamped below the span
	}
	if hi < 0 {
		return rel[lo] // clamped above the span
	}
	a, b := rel[lo], rel[hi]
	xa, xb := pl.xs[lo], pl.xs[hi]
	if xa == xb || a == b {
		return math.Max(a, b)
	}
	if a <= 0 || b <= 0 || math.IsInf(a, 0) || math.IsInf(b, 0) {
		// A reproducible 0 or a saturated +Inf endpoint admits no
		// log-linear segment; the conservative upper envelope never
		// under-reports variability between the knots.
		return math.Max(a, b)
	}
	t := (x - xa) / (xb - xa)
	return math.Pow(10, (1-t)*math.Log10(a)+t*math.Log10(b))
}

// buildPlanes groups usable calibration cells into (n, measured dr)
// planes with condition-sorted knots.
func buildPlanes(cells []grid.CellResult) []*plane {
	type key struct{ n, dr int }
	byKey := map[key]*plane{}
	var keys []key
	for _, c := range cells {
		if c.Spec.N < 1 || len(c.RelStdDev) == 0 {
			continue // unusable: no size or no measurements at all
		}
		k := key{c.Spec.N, c.MeasuredDR}
		pl, ok := byKey[k]
		if !ok {
			pl = &plane{n: k.n, dr: k.dr, rel: map[sum.Algorithm][]float64{}}
			byKey[k] = pl
			keys = append(keys, k)
		}
		pl.xs = append(pl.xs, clampLog10K(c.MeasuredK))
		for _, alg := range sum.Algorithms {
			rel, measured := c.RelStdDev[alg]
			if !measured {
				continue
			}
			if math.IsNaN(rel) {
				// A measured NaN is a failed engine, not a missing
				// measurement: poison the knot so the fit escalates past
				// this algorithm near it, instead of extrapolating its
				// healthy knots over the failure.
				rel = math.Inf(1)
			}
			kn := pl.rel[alg]
			for len(kn) < len(pl.xs)-1 {
				kn = append(kn, math.NaN()) // backfill knots this alg missed
			}
			pl.rel[alg] = append(kn, rel)
		}
		// Algorithms absent from this cell fall behind; pad lazily so
		// every knot slice stays index-aligned with xs.
		for alg, kn := range pl.rel {
			for len(kn) < len(pl.xs) {
				kn = append(kn, math.NaN())
			}
			pl.rel[alg] = kn
		}
	}
	out := make([]*plane, 0, len(keys))
	for _, k := range keys {
		pl := byKey[k]
		pl.sortKnots()
		out = append(out, pl)
	}
	// Deterministic plane order (ties in nearestPlane break toward the
	// first), independent of input cell order.
	sort.Slice(out, func(i, j int) bool {
		if out[i].n != out[j].n {
			return out[i].n < out[j].n
		}
		return out[i].dr < out[j].dr
	})
	return out
}

// sortKnots orders the plane's knots by condition coordinate, keeping
// every algorithm's slice aligned.
func (pl *plane) sortKnots() {
	idx := make([]int, len(pl.xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return pl.xs[idx[a]] < pl.xs[idx[b]] })
	permute := func(s []float64) []float64 {
		out := make([]float64, len(s))
		for i, j := range idx {
			out[i] = s[j]
		}
		return out
	}
	pl.xs = permute(pl.xs)
	for alg, kn := range pl.rel {
		pl.rel[alg] = permute(kn)
	}
}

// nearestPlane picks the plane closest to (log2 n, dr/8) — the same
// axis scaling CalibratedPolicy.nearest uses, with the condition axis
// handled by in-plane interpolation instead of distance.
func nearestPlane(planes []*plane, pn, pdr float64) *plane {
	best, bestDist := planes[0], math.Inf(1)
	for _, pl := range planes {
		dn := math.Log2(float64(pl.n)) - pn
		ddr := float64(pl.dr)/8 - pdr
		if d := dn*dn + ddr*ddr; d < bestDist {
			best, bestDist = pl, d
		}
	}
	return best
}

// candidateAlgs collects every algorithm with at least one measurement,
// in CostRank order (the scan's sort, applied once at fit time).
func candidateAlgs(cells []grid.CellResult) []sum.Algorithm {
	seen := map[sum.Algorithm]bool{}
	for _, c := range cells {
		for alg := range c.RelStdDev {
			seen[alg] = true
		}
	}
	var algs []sum.Algorithm
	for _, alg := range sum.Algorithms { // already cost-ordered
		if seen[alg] {
			algs = append(algs, alg)
		}
	}
	return algs
}

// walkOrders derives the per-size-bucket walk order from measured cost
// samples: within a bucket, algorithms sort by their cheapest measured
// ns/op across engine configurations, unmeasured algorithms keeping
// their CostRank position at the end. Buckets without any sample
// inherit the nearest measured bucket; with no samples at all every
// bucket keeps the identity (CostRank) order. Non-finite or
// non-positive timings are ignored — a failed measurement never
// corrupts the order.
func walkOrders(algs []sum.Algorithm, costs []CostSample, nqLo, nqHi int) [][]uint8 {
	nN := nqHi - nqLo + 1
	identity := make([]uint8, len(algs))
	for i := range identity {
		identity[i] = uint8(i)
	}
	orders := make([][]uint8, nN)
	algIdx := map[sum.Algorithm]int{}
	for i, a := range algs {
		algIdx[a] = i
	}
	// best[nqi][ai] is the cheapest usable timing seen for that bucket.
	best := make([]map[int]float64, nN)
	covered := make([]bool, nN)
	for _, cs := range costs {
		if cs.N < 1 || !(cs.NsPerOp > 0) || math.IsInf(cs.NsPerOp, 0) {
			continue
		}
		ai, ok := algIdx[cs.Alg]
		if !ok {
			continue
		}
		nqi := clampInt(bits.Len64(uint64(cs.N)), nqLo, nqHi) - nqLo
		if best[nqi] == nil {
			best[nqi] = map[int]float64{}
		}
		if v, ok := best[nqi][ai]; !ok || cs.NsPerOp < v {
			best[nqi][ai] = cs.NsPerOp
		}
		covered[nqi] = true
	}
	for nqi := 0; nqi < nN; nqi++ {
		src := nqi
		if !covered[src] {
			// Inherit the nearest covered bucket (ties toward smaller n).
			bestD := math.MaxInt
			found := -1
			for j := 0; j < nN; j++ {
				if covered[j] {
					if d := absInt(j - nqi); d < bestD {
						bestD, found = d, j
					}
				}
			}
			if found < 0 {
				orders[nqi] = identity
				continue
			}
			src = found
		}
		ord := append([]uint8(nil), identity...)
		costOf := func(ai uint8) float64 {
			if v, ok := best[src][int(ai)]; ok {
				return v
			}
			return math.Inf(1) // unmeasured: keep CostRank position last
		}
		sort.SliceStable(ord, func(a, b int) bool { return costOf(ord[a]) < costOf(ord[b]) })
		orders[nqi] = ord
	}
	return orders
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
