package selector

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/sum"
)

// Boundary audit for the CalibratedPolicy nearest-cell lookup,
// mirroring the cache-boundary audit of PR 6: the scan's extrapolation
// semantics at and beyond the table extremes are clamping — a profile
// outside the calibrated envelope resolves to the nearest edge cell,
// never to a phantom extrapolated value and never to "no neighbor" as
// long as one cell has finite coordinates. These tests pin that
// contract (the surface fit mirrors it, see TestSurfaceBoundaryExtremes).

// edgeProfile generates a live profile roughly at (n, k, dr).
func edgeProfile(n int, k float64, dr int, seed uint64) Profile {
	return ProfileOf(gen.Spec{N: n, Cond: k, DynRange: dr, Seed: seed}.Generate())
}

// TestNearestClampsBelowSmallestN pins the low-n extreme: any profile
// smaller than the smallest calibrated size resolves to a smallest-size
// cell (same k/dr plane), including the single-element floor.
func TestNearestClampsBelowSmallestN(t *testing.T) {
	cp := syntheticTable()
	for _, n := range []int{2, 16, 100, 1023} {
		p := edgeProfile(n, 1, 0, 1000+uint64(n))
		cell, ok := cp.nearest(p)
		if !ok {
			t.Fatalf("n=%d: no neighbor from a populated table", n)
		}
		if cell.Spec.N != 1<<10 {
			t.Errorf("n=%d resolved to calibrated n=%d, want the smallest calibrated size %d", n, cell.Spec.N, 1<<10)
		}
	}
	p := ProfileOf([]float64{2.5})
	if cell, ok := cp.nearest(p); !ok || cell.Spec.N != 1<<10 {
		t.Errorf("single-element profile resolved to (%v, ok=%v), want smallest-n cell", cell.Spec, ok)
	}
}

// TestNearestClampsAboveLargestN pins the high-n extreme symmetrically.
func TestNearestClampsAboveLargestN(t *testing.T) {
	cp := syntheticTable()
	for _, n := range []int{1 << 19, 1 << 22} {
		p := edgeProfile(n, 1, 0, 2000+uint64(n))
		cell, ok := cp.nearest(p)
		if !ok {
			t.Fatalf("n=%d: no neighbor from a populated table", n)
		}
		if cell.Spec.N != 1<<18 {
			t.Errorf("n=%d resolved to calibrated n=%d, want the largest calibrated size %d", n, cell.Spec.N, 1<<18)
		}
	}
}

// TestNearestClampsConditionAxis pins the k extremes: conditions past
// the last calibrated decade resolve to the highest-k column, and both
// a condition past the 1e17 saturation point and a NaN condition
// estimate (overflowed profile) behave identically to the saturated
// column rather than poisoning the distance metric.
func TestNearestClampsConditionAxis(t *testing.T) {
	cp := syntheticTable()
	for _, k := range []float64{1e10, 1e16, 1e30} {
		p := edgeProfile(1<<14, k, 8, 3000)
		cell, ok := cp.nearest(p)
		if !ok {
			t.Fatalf("k=%.3g: no neighbor", k)
		}
		if cell.MeasuredK != 1e8 {
			t.Errorf("k=%.3g resolved to calibrated k=%.3g, want the highest calibrated decade 1e8", k, cell.MeasuredK)
		}
		if cell.Spec.N != 1<<14 {
			t.Errorf("k=%.3g wandered to n=%d, want the profile's own size plane", k, cell.Spec.N)
		}
	}

	// A poisoned profile (Inf sum) has Cond = Inf and clamps the same way.
	xs := gen.Spec{N: 1 << 14, Cond: 1, DynRange: 8, Seed: 3100}.Generate()
	xs[0] = math.Inf(1)
	p := ProfileOf(xs)
	if cell, ok := cp.nearest(p); !ok || cell.MeasuredK != 1e8 {
		t.Errorf("non-finite profile resolved to (k=%.3g, ok=%v), want saturated k column", cell.MeasuredK, ok)
	}
}

// TestNearestClampsDynRangeAxis pins the dr extreme: dynamic ranges
// beyond the calibrated span resolve to the widest calibrated plane.
func TestNearestClampsDynRangeAxis(t *testing.T) {
	cp := syntheticTable()
	p := edgeProfile(1<<14, 1e4, 60, 4000)
	cell, ok := cp.nearest(p)
	if !ok {
		t.Fatal("no neighbor")
	}
	if cell.MeasuredDR != 32 {
		t.Errorf("dr=60 resolved to calibrated dr=%d, want the widest calibrated span 32", cell.MeasuredDR)
	}
}

// TestNearestDegenerateTable pins the no-neighbor paths: an empty table
// reports no neighbor (Select then falls back to the heuristic), and a
// table whose every cell has NaN coordinates on a non-clamped axis does
// the same instead of returning an arbitrary cell.
func TestNearestDegenerateTable(t *testing.T) {
	p := edgeProfile(1024, 1e4, 8, 5000)

	empty := NewCalibratedPolicy(nil, 4)
	if _, ok := empty.nearest(p); ok {
		t.Error("empty table produced a neighbor")
	}
	wantAlg, _ := NewHeuristicPolicy().Select(p, Requirement{Tolerance: 1e-12})
	if alg, _ := empty.Select(p, Requirement{Tolerance: 1e-12}); alg != wantAlg {
		t.Errorf("empty table selected %v, want heuristic fallback %v", alg, wantAlg)
	}

	poisoned := NewCalibratedPolicy([]grid.CellResult{{
		Spec:      grid.CellSpec{N: 0, Cond: 1, DynRange: 0}, // log2(0) = -Inf: NaN distance
		MeasuredK: 1,
		RelStdDev: map[sum.Algorithm]float64{sum.StandardAlg: 1e-16},
	}}, 4)
	if _, ok := poisoned.nearest(p); ok {
		t.Error("table with NaN-coordinate cells produced a neighbor")
	}
}

// TestNearestExactOnGridPoints is the interior control for the clamp
// tests: profiles at calibrated coordinates resolve to their own cell
// on every axis simultaneously.
func TestNearestExactOnGridPoints(t *testing.T) {
	cp := syntheticTable()
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		for _, ki := range []int{0, 4, 8} {
			for _, dr := range []int{0, 16, 32} {
				k := math.Pow(10, float64(ki))
				p := edgeProfile(n, k, dr, 6000+uint64(n+ki+dr))
				cell, ok := cp.nearest(p)
				if !ok {
					t.Fatalf("n=%d k=%.3g dr=%d: no neighbor", n, k, dr)
				}
				if cell.Spec.N != n || cell.MeasuredK != k {
					t.Errorf("profile at grid point (n=%d k=%.3g dr=%d) resolved to (n=%d k=%.3g dr=%d)",
						n, k, dr, cell.Spec.N, cell.MeasuredK, cell.MeasuredDR)
				}
			}
		}
	}
}
