package selector

import (
	"math"
	"testing"

	"repro/internal/fpu"
	"repro/internal/sum"
)

// Degenerate-profile audit of HeuristicPolicy.Predict and the γ_n-style
// bound shapes (issue 6, satellite 1): n ∈ {0, 1}, all-zero inputs
// (Σ|x| = 0, condition number 0/0), and n large enough that n·u ≥ 1
// turns the raw γ_n formula negative. The intended behavior pinned
// here:
//
//   - at most one observation, or an all-zero set: exactly one result
//     is reachable under every algorithm and tree, so the predicted
//     variability is exactly 0 for every operator;
//   - poisoned (NonFinite) profiles: every non-reproducible prediction
//     is +Inf (Cond is +Inf) and selection escalates to a reproducible
//     rung;
//   - γ_m: 0 for m ≤ 0, +Inf once m·u ≥ 1, never negative or NaN.

// degenerateProfiles returns the audit matrix: name → profile expected
// to predict 0 for every algorithm.
func degenerateProfiles() map[string]Profile {
	return map[string]Profile{
		"empty":          {},
		"single":         ProfileOf([]float64{3.5}),
		"single-neg":     ProfileOf([]float64{-1e-300}),
		"all-zero":       ProfileOf([]float64{0, 0, 0}),
		"all-signed-0":   ProfileOf([]float64{0, math.Copysign(0, -1), 0}),
		"n0-constructed": {N: 0},
	}
}

// TestPredictDegenerateProfilesZero: the full (degenerate profile ×
// algorithm) table predicts exactly 0 — no c·u·k floor manufactured
// out of Cond's empty-set convention k = 1.
func TestPredictDegenerateProfilesZero(t *testing.T) {
	hp := NewHeuristicPolicy()
	for name, p := range degenerateProfiles() {
		for _, alg := range sum.Algorithms {
			if got := hp.Predict(alg, p); got != 0 {
				t.Errorf("%s: Predict(%v) = %g, want 0", name, alg, got)
			}
		}
	}
}

// TestSelectDegenerateProfilesPicksCheapest: a zero prediction meets
// every tolerance, so degenerate profiles always select the ladder's
// first rung — even at tolerance 0.
func TestSelectDegenerateProfilesPicksCheapest(t *testing.T) {
	hp := NewHeuristicPolicy()
	for name, p := range degenerateProfiles() {
		for _, tol := range []float64{0, 1e-15, 1e-6} {
			alg, pred := hp.Select(p, Requirement{Tolerance: tol})
			if alg != sum.SelectionLadder[0] || pred != 0 {
				t.Errorf("%s tol=%g: selected %v pred=%g, want %v pred=0",
					name, tol, alg, pred, sum.SelectionLadder[0])
			}
		}
	}
}

// TestPredictPoisonedProfiles: non-finite data keeps the general path —
// infinite predictions for every non-reproducible operator, 0 for the
// reproducible rungs, and selection escalates to a reproducible rung at
// any finite tolerance.
func TestPredictPoisonedProfiles(t *testing.T) {
	hp := NewHeuristicPolicy()
	poisoned := map[string]Profile{
		"nan":       ProfileOf([]float64{1, math.NaN(), 2}),
		"inf":       ProfileOf([]float64{math.Inf(1)}),
		"poison-n0": {NonFinite: true},
		"poison-n1": {N: 1, NonFinite: true},
	}
	for name, p := range poisoned {
		for _, alg := range sum.Algorithms {
			got := hp.Predict(alg, p)
			if alg.Reproducible() {
				if got != 0 {
					t.Errorf("%s: Predict(%v) = %g, want 0 (reproducible)", name, alg, got)
				}
			} else if !math.IsInf(got, 1) {
				t.Errorf("%s: Predict(%v) = %g, want +Inf", name, alg, got)
			}
		}
		alg, pred := hp.Select(p, Requirement{Tolerance: 1e-6})
		if !alg.Reproducible() || pred != 0 {
			t.Errorf("%s: selected %v pred=%g, want reproducible pred=0", name, alg, pred)
		}
	}
}

// TestGammaShape pins γ_m(u) across its domain: zero below one
// rounding, the textbook value in the classical regime, +Inf (never
// negative, never NaN) once m·u ≥ 1.
func TestGammaShape(t *testing.T) {
	u := fpu.UnitRoundoff
	if got := Gamma(0, u); got != 0 {
		t.Errorf("Gamma(0) = %g, want 0", got)
	}
	if got := Gamma(-5, u); got != 0 {
		t.Errorf("Gamma(-5) = %g, want 0", got)
	}
	if got, want := Gamma(1, u), u/(1-u); got != want {
		t.Errorf("Gamma(1) = %g, want %g", got, want)
	}
	if got := Gamma(1000, u); got <= 1000*u*(1-1e-12) || got >= 2*1000*u {
		t.Errorf("Gamma(1000) = %g out of classical range", got)
	}
	// Exactly at and beyond the m·u = 1 wall: the raw formula divides
	// by zero, then turns negative. Gamma must pin +Inf instead.
	for _, m := range []float64{1 / u, 1/u + 1, 2 / u, 0x1p60, math.Inf(1)} {
		if got := Gamma(m, u); !math.IsInf(got, 1) {
			t.Errorf("Gamma(%g) = %g, want +Inf", m, got)
		}
	}
	// Monotone in m over the classical regime.
	prev := 0.0
	for m := 1.0; m < 1e12; m *= 10 {
		g := Gamma(m, u)
		if g < prev || math.IsNaN(g) {
			t.Fatalf("Gamma not monotone at m=%g: %g < %g", m, g, prev)
		}
		prev = g
	}
}

// TestBoundsDegenerateProfiles: the bound estimators agree with the
// pinned degenerate semantics — zero bounds for ≤1-observation and
// all-zero profiles (except the prerounding engines' dropped-residual
// terms on a lone operand), +Inf and Conclusive=false on poisoned
// profiles.
func TestBoundsDegenerateProfiles(t *testing.T) {
	for name, p := range degenerateProfiles() {
		b := ComputeBounds(p, 0)
		if !b.Conclusive {
			t.Errorf("%s: bounds inconclusive", name)
		}
		for _, alg := range sum.Algorithms {
			bd := b.For(alg)
			isLoneOperand := p.N == 1 && p.SumAbs.Float64() > 0
			if isLoneOperand && (alg == sum.BinnedAlg || alg == sum.PreroundedAlg) {
				// The prerounding engines may drop residual bits even
				// of a single operand; their bounds must stay finite
				// and tiny relative to the operand.
				if bd.Det < 0 || bd.Det > 0x1p-20*p.SumAbs.Float64() {
					t.Errorf("%s: %v bound %g out of range", name, alg, bd.Det)
				}
				continue
			}
			if bd.Det != 0 || bd.Prob != 0 {
				t.Errorf("%s: %v bound %+v, want exactly 0", name, alg, bd)
			}
			if rel := b.Rel(alg); rel.Det != 0 || rel.Prob != 0 {
				t.Errorf("%s: %v relative bound %+v, want exactly 0", name, alg, rel)
			}
		}
	}

	poisoned := ProfileOf([]float64{1, math.Inf(-1)})
	b := ComputeBounds(poisoned, 0)
	if b.Conclusive {
		t.Error("poisoned profile: bounds marked conclusive")
	}
	for _, alg := range sum.Algorithms {
		if bd := b.For(alg); !math.IsInf(bd.Det, 1) || !math.IsInf(bd.Prob, 1) {
			t.Errorf("poisoned: %v bound %+v, want +Inf", alg, bd)
		}
	}
}

// TestBoundsHugeN: once n·u ≥ 1 the γ-based deterministic bounds are
// vacuous (+Inf) — never negative, never NaN — and the probabilistic
// policy escalates to a reproducible rung rather than diverging.
func TestBoundsHugeN(t *testing.T) {
	p := Profile{
		N:          int64(1) << 60, // n·u = 2^60·2^-53 = 128 ≥ 1
		HasNonzero: true,
		MaxExp:     0,
		MinExp:     0,
		Pos:        int64(1) << 60,
		Sum:        CSum{S: 1e10},
		SumAbs:     CSum{S: 1e10},
	}
	b := ComputeBounds(p, 0)
	if !b.Conclusive {
		t.Fatal("huge-n bounds inconclusive")
	}
	for _, alg := range sum.Algorithms {
		bd := b.For(alg)
		if math.IsNaN(bd.Det) || math.IsNaN(bd.Prob) || bd.Det < 0 || bd.Prob < 0 {
			t.Errorf("huge n: %v bound %+v is NaN/negative", alg, bd)
		}
	}
	if st := b.For(sum.StandardAlg); !math.IsInf(st.Det, 1) {
		t.Errorf("huge n: ST deterministic bound %g, want +Inf (vacuous)", st.Det)
	}

	pp := NewProbabilisticPolicy(0)
	alg, pred := pp.Select(p, Requirement{Tolerance: 1e-9})
	if !alg.Reproducible() || pred != 0 {
		t.Errorf("huge n: probabilistic policy picked %v pred=%g, want reproducible", alg, pred)
	}
}

// TestProbabilisticPolicyDegenerate: the bound-driven policy inherits
// the degenerate semantics — cheapest rung for ≤1-observation and
// all-zero profiles, fallback escalation for poisoned ones.
func TestProbabilisticPolicyDegenerate(t *testing.T) {
	pp := NewProbabilisticPolicy(0)
	for name, p := range degenerateProfiles() {
		alg, pred := pp.Select(p, Requirement{Tolerance: 0})
		if alg != sum.SelectionLadder[0] || pred != 0 {
			t.Errorf("%s: picked %v pred=%g, want %v pred=0",
				name, alg, pred, sum.SelectionLadder[0])
		}
	}
	alg, pred := pp.Select(ProfileOf([]float64{math.NaN()}), Requirement{Tolerance: 1e-6})
	if !alg.Reproducible() || pred != 0 {
		t.Errorf("poisoned: picked %v pred=%g, want reproducible pred=0", alg, pred)
	}
}
