package selector

import (
	"testing"

	"repro/internal/gen"
)

// BenchmarkCalibrationSurface measures the serve-time selection ladder
// end to end at the Decide level (profile in hand, bounds included):
// the analytic heuristic, the calibrated nearest-neighbor table scan,
// the fitted surface serving the same calibration on a cold cache miss,
// and a warm cache hit over the surface — plus the one-time fit cost.
// The acceptance bar for this PR: decide=surface at least 5x faster
// than decide=calibscan, with zero allocations.
func BenchmarkCalibrationSurface(b *testing.B) {
	scan := syntheticTable()
	cells := scan.Cells()
	surface := FitSurface(cells, nil, 4)
	xs := gen.Spec{N: 100000, Cond: 1e8, DynRange: 24, Seed: 91}.Generate()
	prof := ProfileOf(xs)
	var sink Decision

	b.Run("decide=heuristic", func(b *testing.B) {
		s := New(1e-12)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = s.Decide(prof)
		}
	})
	b.Run("decide=calibscan", func(b *testing.B) {
		s := New(1e-12)
		s.Policy = scan
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = s.Decide(prof)
		}
	})
	b.Run("decide=surface", func(b *testing.B) {
		s := New(1e-12)
		s.Policy = surface
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = s.Decide(prof)
		}
	})
	b.Run("decide=cachehit", func(b *testing.B) {
		s := New(1e-12)
		s.Policy = surface
		s.Cache = NewDecisionCache(CacheConfig{})
		s.Decide(prof) // warm the bucket
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = s.Decide(prof)
		}
		b.StopTimer()
		b.ReportMetric(s.Cache.Stats().HitRate(), "hit-rate")
	})
	b.Run("fit", func(b *testing.B) {
		var sp *CalibratedSurfacePolicy
		for i := 0; i < b.N; i++ {
			sp = FitSurface(cells, nil, 4)
		}
		b.ReportMetric(float64(len(cells)), "cells")
		_ = sp
	})
	_ = sink
}
