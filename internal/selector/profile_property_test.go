package selector

import (
	"math"
	"testing"

	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/reduce"
	"repro/internal/sum"
)

// discreteEqual compares the exactly-mergeable profile fields: counts,
// exponent extremes, and flags. The compensated pairs are combined in
// different orders by different merge trees and may differ in their
// final bits; condEqual covers them at the resolution selection uses.
func discreteEqual(a, b Profile) bool {
	return a.N == b.N && a.Pos == b.Pos && a.Neg == b.Neg &&
		a.HasNonzero == b.HasNonzero && a.NonFinite == b.NonFinite &&
		(!a.HasNonzero || (a.MaxExp == b.MaxExp && a.MinExp == b.MinExp))
}

// condEqual compares condition estimates to far tighter than any
// selection threshold (the policies bucket k by decades).
func condEqual(a, b Profile) bool {
	ka, kb := a.Cond(), b.Cond()
	if math.IsInf(ka, 1) || math.IsInf(kb, 1) || math.IsNaN(ka) || math.IsNaN(kb) {
		return math.IsInf(ka, 1) == math.IsInf(kb, 1) &&
			math.IsNaN(ka) == math.IsNaN(kb)
	}
	return math.Abs(ka-kb) <= 1e-9*math.Abs(kb)
}

// propertySegments builds adversarial segment pools: ordinary data,
// empty segments, single elements, zeros, and NaN/Inf-poisoned runs.
func propertySegments() [][]float64 {
	return [][]float64{
		gen.Spec{N: 513, Cond: 1e4, DynRange: 24, Seed: 70}.Generate(),
		nil,
		{2.5},
		{0, 0, math.Copysign(0, -1)},
		gen.Spec{N: 64, Cond: math.Inf(1), DynRange: 16, Seed: 71}.Generate(),
		{1.5, math.NaN(), -8},
		{math.Inf(1)},
		gen.Spec{N: 200, Cond: 1, DynRange: 40, Seed: 72}.Generate(),
		{-0x1p-1070, 0x1p-1040}, // subnormals
	}
}

// TestProfileMergeAssociativityProperty: for every triple of segments,
// (a⊕b)⊕c and a⊕(b⊕c) agree exactly on the discrete fields and to
// rounding resolution on the condition estimate, and both agree with
// the single-pass profile of the concatenation. This is the property
// that makes tree-order profile merging (AllReduce, the parallel
// engine) sound regardless of bracketing.
func TestProfileMergeAssociativityProperty(t *testing.T) {
	segs := propertySegments()
	for i, sa := range segs {
		for j, sb := range segs {
			for k, sc := range segs {
				a, b, c := ProfileOf(sa), ProfileOf(sb), ProfileOf(sc)
				left := a.Merge(b).Merge(c)
				right := a.Merge(b.Merge(c))
				if !discreteEqual(left, right) {
					t.Fatalf("(%d,%d,%d): bracketing changed discrete fields:\n%+v\n%+v",
						i, j, k, left, right)
				}
				if !condEqual(left, right) {
					t.Fatalf("(%d,%d,%d): bracketing changed Cond: %g vs %g",
						i, j, k, left.Cond(), right.Cond())
				}
				var whole []float64
				whole = append(whole, sa...)
				whole = append(whole, sb...)
				whole = append(whole, sc...)
				w := ProfileOf(whole)
				if !discreteEqual(left, w) || !condEqual(left, w) {
					t.Fatalf("(%d,%d,%d): merged profile diverges from ProfileOf:\n%+v\n%+v",
						i, j, k, left, w)
				}
			}
		}
	}
}

// TestProfileMergeArbitrarySplits cuts one hostile sequence at every
// combination of two split points (covering empty and single-element
// parts) and checks three-way merges against the single pass.
func TestProfileMergeArbitrarySplits(t *testing.T) {
	xs := gen.Spec{N: 200, Cond: 1e6, DynRange: 32, Seed: 73}.Generate()
	xs[50] = 0
	xs[151] = math.Inf(-1)
	w := ProfileOf(xs)
	cuts := []int{0, 1, 2, 99, 100, 150, 151, 152, 199, 200}
	for _, i := range cuts {
		for _, j := range cuts {
			if j < i {
				continue
			}
			m := ProfileOf(xs[:i]).Merge(ProfileOf(xs[i:j])).Merge(ProfileOf(xs[j:]))
			if !discreteEqual(m, w) || !condEqual(m, w) {
				t.Fatalf("split (%d,%d) diverges:\n%+v\n%+v", i, j, m, w)
			}
		}
	}
}

// TestProfileOpTreeMergeMatchesProfileOf pins the reduce.Op view
// (satellite: ProfileOp.Finalize used to discard everything but Cond):
// a left-to-right Leaf/Merge fold is bit-identical to ProfileOf in the
// compensated Σx pair and exactly equal in every discrete field, the
// full profile is recoverable via ProfileOp.Profile, and balanced tree
// merges agree at selection resolution.
func TestProfileOpTreeMergeMatchesProfileOf(t *testing.T) {
	op := ProfileOp{}
	for name, xs := range fusedCases() {
		if len(xs) == 0 {
			continue
		}
		// Left-to-right fold, as reduce.Fold would run it.
		st := op.Leaf(xs[0])
		for _, x := range xs[1:] {
			st = op.Merge(st, op.Leaf(x))
		}
		serial := op.Profile(st)
		want := ProfileOf(xs)
		if !discreteEqual(serial, want) {
			t.Errorf("%s: ProfileOp fold discrete fields diverge:\n%+v\n%+v",
				name, serial, want)
		}
		if fbits(serial.Sum.S) != fbits(want.Sum.S) || fbits(serial.Sum.C) != fbits(want.Sum.C) {
			t.Errorf("%s: ProfileOp fold Σx pair not bit-identical to ProfileOf", name)
		}
		if fbits(serial.SumAbs.Float64()) != fbits(want.SumAbs.Float64()) &&
			!condEqual(serial, want) {
			t.Errorf("%s: ProfileOp fold Σ|x| diverges beyond rounding", name)
		}
		if got := op.Finalize(st); fbits(got) != fbits(serial.Cond()) &&
			!(math.IsNaN(got) && math.IsNaN(serial.Cond())) {
			t.Errorf("%s: Finalize %g != merged Cond %g", name, got, serial.Cond())
		}
		// Balanced tree merge of per-element leaves.
		states := make([]reduce.State, len(xs))
		for i, x := range xs {
			states[i] = op.Leaf(x)
		}
		for len(states) > 1 {
			var next []reduce.State
			for i := 0; i+1 < len(states); i += 2 {
				next = append(next, op.Merge(states[i], states[i+1]))
			}
			if len(states)%2 == 1 {
				next = append(next, states[len(states)-1])
			}
			states = next
		}
		treed := op.Profile(states[0])
		if !discreteEqual(treed, want) || !condEqual(treed, want) {
			t.Errorf("%s: balanced ProfileOp tree diverges from ProfileOf:\n%+v\n%+v",
				name, treed, want)
		}
	}
}

// TestCSumMatchesNeumaierState pins the representation identity the
// fused engine is built on: CSum.AddFloat64 chains and CSum.Add merges
// are bit-compatible with the sum package's Neumaier fold and monoid.
func TestCSumMatchesNeumaierState(t *testing.T) {
	xs := gen.Spec{N: 1000, Cond: 1e8, DynRange: 32, Seed: 74}.Generate()
	var c CSum
	acc := sum.NeumaierAlg.NewAccumulator()
	for _, x := range xs {
		c = c.AddFloat64(x)
		acc.Add(x)
	}
	if fbits(c.Float64()) != fbits(acc.Sum()) {
		t.Errorf("CSum chain %x != Neumaier accumulator %x",
			fbits(c.Float64()), fbits(acc.Sum()))
	}
	a := ProfileOf(xs[:333]).Sum
	b := ProfileOf(xs[333:]).Sum
	m := sum.NeumaierMonoid{}.Merge(sum.NState{S: a.S, C: a.C}, sum.NState{S: b.S, C: b.C})
	got := a.Add(b)
	if fbits(got.S) != fbits(m.S) || fbits(got.C) != fbits(m.C) {
		t.Error("CSum.Add != NeumaierMonoid.Merge")
	}
}

// Edge-case tests for CalibratedPolicy.nearest and clampLog10K
// (satellite: quantization must never let the cache pick what the
// legacy path couldn't).

func TestClampLog10KEdges(t *testing.T) {
	cases := []struct{ k, want float64 }{
		{0, 0},
		{-5, 0},
		{0.5, 0},
		{1, 0},
		{100, 2},
		{1e17, 17},
		{2e17, 17},
		{math.Inf(1), 17},
		{math.NaN(), 17},
	}
	for _, c := range cases {
		if got := clampLog10K(c.k); got != c.want {
			t.Errorf("clampLog10K(%g) = %g, want %g", c.k, got, c.want)
		}
	}
}

// TestCalibratedNearestEdgeCases drives nearest/Select through the
// degenerate corners: empty table, out-of-range and non-finite k, k=0
// data (all zeros), negative measured dynamic range, and cells whose
// coordinates make every distance NaN.
func TestCalibratedNearestEdgeCases(t *testing.T) {
	if _, ok := (&CalibratedPolicy{}).nearest(Profile{}); ok {
		t.Error("empty table claimed a neighbor")
	}
	cells := []grid.CellResult{{
		Spec:      grid.CellSpec{N: 512, Cond: 1, DynRange: 0},
		MeasuredK: 1, MeasuredDR: 0,
		RelStdDev: map[sum.Algorithm]float64{sum.StandardAlg: 1e-16},
	}, {
		Spec:      grid.CellSpec{N: 512, Cond: 1e8, DynRange: 16},
		MeasuredK: 1e8, MeasuredDR: -3, // negative dr: still a finite coordinate
		RelStdDev: map[sum.Algorithm]float64{sum.CompositeAlg: 1e-17},
	}}
	pol := NewCalibratedPolicy(cells, 1)
	req := Requirement{Tolerance: 1e-9}

	// k far beyond the table (full cancellation): must select, not panic,
	// and not hand back something cheaper than the nearest hostile cell.
	hostile := ProfileOf(gen.SumZeroSeries(512, 16, 75))
	if alg, _ := pol.Select(hostile, req); !alg.Valid() {
		t.Errorf("out-of-range k selected invalid %v", alg)
	}
	// k == 1 lower edge: all-zero data.
	if alg, _ := pol.Select(ProfileOf(make([]float64, 64)), req); !alg.Valid() {
		t.Errorf("all-zero profile selected invalid %v", alg)
	}
	// NaN condition estimate (overflowed Σ|x|): pre-fix this panicked
	// with an out-of-range index when every distance went NaN.
	nanProf := Profile{N: 4, HasNonzero: true, Pos: 4,
		SumAbs: CSum{S: math.Inf(1)}, Sum: CSum{S: math.Inf(1)}}
	if alg, _ := pol.Select(nanProf, req); !alg.Valid() {
		t.Errorf("NaN-cond profile selected invalid %v", alg)
	}
	// Degenerate cells (negative N makes log2 NaN): every distance is
	// NaN, nearest must decline, Select must fall back to the heuristic.
	bad := NewCalibratedPolicy([]grid.CellResult{{
		Spec: grid.CellSpec{N: -1}, MeasuredK: 1,
		RelStdDev: map[sum.Algorithm]float64{sum.StandardAlg: 0},
	}}, 1)
	p := ProfileOf([]float64{1, 2, 3})
	if _, ok := bad.nearest(p); ok {
		t.Error("all-NaN distances still claimed a neighbor")
	}
	if alg, _ := bad.Select(p, req); !alg.Valid() {
		t.Errorf("degenerate table selected invalid %v", alg)
	}
}

// TestFiniteExponentMatchesExponent pins the fast exponent decode used
// by the profiling loops against fpu.Exponent over normals, subnormals,
// and range extremes.
func TestFiniteExponentMatchesExponent(t *testing.T) {
	vals := []float64{1, -1, 0.5, 1.5, -3.75, 1e300, -1e-300,
		math.MaxFloat64, math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		0x1p-1022, 0x1.fffffffffffffp-1023, -0x1p-1040}
	r := fpu.NewRNG(76)
	for i := 0; i < 1000; i++ {
		vals = append(vals, math.Ldexp(1+r.Float64(), int(r.Uint64()%2100)-1060))
	}
	for _, v := range vals {
		if got, want := fpu.FiniteExponent(v), fpu.Exponent(v); got != want {
			t.Fatalf("FiniteExponent(%g) = %d, want %d", v, got, want)
		}
	}
}
