package selector

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/sum"
)

// benchSelector builds a selector whose policy lands on the requested
// fast-path algorithm for the benign benchmark data: the analytic
// policy picks ST at loose tolerance; Neumaier is forced Static (the
// heuristic never selects it on its own).
func benchSelector(alg sum.Algorithm) *Selector {
	s := New(1e-9)
	if alg == sum.NeumaierAlg {
		s = New(0)
		s.Policy = Static{Alg: alg}
	}
	return s
}

// BenchmarkSelectSum compares the legacy two-pass select-then-sum
// route against the fused single-pass engine, with and without the
// decision cache, on the ST and Neumaier fast paths (the regimes where
// fusion removes the entire second data pass).
func BenchmarkSelectSum(b *testing.B) {
	for _, n := range []int{10000, 100000, 1000000} {
		xs := gen.Spec{N: n, Cond: 1, DynRange: 8, Seed: 90}.Generate()
		for _, alg := range []sum.Algorithm{sum.StandardAlg, sum.NeumaierAlg} {
			s := benchSelector(alg)
			if a, _ := s.Choose(xs); a != alg {
				b.Fatalf("fixture selects %v, want %v", a, alg)
			}
			var sink float64
			b.Run(fmt.Sprintf("twopass/%s/n=%d", alg, n), func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				for i := 0; i < b.N; i++ {
					prof := ProfileOf(xs)
					a, _ := s.Policy.Select(prof, s.Req)
					sink = a.Sum(xs)
				}
			})
			b.Run(fmt.Sprintf("fused/%s/n=%d", alg, n), func(b *testing.B) {
				b.SetBytes(int64(8 * n))
				for i := 0; i < b.N; i++ {
					sink, _ = s.SelectAndSum(xs)
				}
			})
			b.Run(fmt.Sprintf("fusedcache/%s/n=%d", alg, n), func(b *testing.B) {
				c := benchSelector(alg)
				c.Cache = NewDecisionCache(CacheConfig{})
				c.SelectAndSum(xs) // warm the bucket
				b.SetBytes(int64(8 * n))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sink, _ = c.SelectAndSum(xs)
				}
				b.StopTimer()
				b.ReportMetric(c.Cache.Stats().HitRate(), "hit-rate")
			})
			_ = sink
		}
	}
}

// syntheticTable fabricates a plausibly-sized calibration table (the
// shape a grid.Sweep over a 3x9x5 envelope would produce) so the Decide
// benchmark measures the nearest-neighbor scan the cache memoizes
// without paying for an offline sweep at bench time.
func syntheticTable() *CalibratedPolicy {
	var cells []grid.CellResult
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		for ki := 0; ki <= 8; ki++ {
			for _, dr := range []int{0, 8, 16, 24, 32} {
				k := math.Pow(10, float64(ki))
				cells = append(cells, grid.CellResult{
					Spec:       grid.CellSpec{N: n, Cond: k, DynRange: dr},
					MeasuredK:  k,
					MeasuredDR: dr,
					RelStdDev: map[sum.Algorithm]float64{
						sum.StandardAlg:   1e-16 * k,
						sum.KahanAlg:      1e-18 * k,
						sum.CompositeAlg:  1e-24 * k,
						sum.PreroundedAlg: 0,
					},
				})
			}
		}
	}
	return NewCalibratedPolicy(cells, 4)
}

// BenchmarkDecide isolates the selection step: the analytic heuristic
// (cheap by construction), a measurement-backed calibrated policy (a
// 135-cell nearest-neighbor scan plus candidate sort), and a warm cache
// hit over that same calibrated policy — the memoization the cache
// exists to provide.
func BenchmarkDecide(b *testing.B) {
	xs := gen.Spec{N: 100000, Cond: 1e8, DynRange: 24, Seed: 91}.Generate()
	prof := ProfileOf(xs)
	var sink Decision
	b.Run("heuristic", func(b *testing.B) {
		s := New(1e-12)
		for i := 0; i < b.N; i++ {
			sink = s.Decide(prof)
		}
	})
	b.Run("calibrated", func(b *testing.B) {
		s := New(1e-12)
		s.Policy = syntheticTable()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = s.Decide(prof)
		}
	})
	b.Run("cached", func(b *testing.B) {
		s := New(1e-12)
		s.Policy = syntheticTable()
		s.Cache = NewDecisionCache(CacheConfig{})
		s.Decide(prof) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sink = s.Decide(prof)
		}
		b.StopTimer()
		b.ReportMetric(s.Cache.Stats().HitRate(), "hit-rate")
	})
	_ = sink
}
