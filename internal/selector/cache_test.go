package selector

import (
	"math"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/sum"
)

// TestCacheHitMissSameDecision: a hit must return the exact Decision
// the miss computed — memoization is invisible to the caller.
func TestCacheHitMissSameDecision(t *testing.T) {
	xs := gen.Spec{N: 4096, Cond: 1e5, DynRange: 16, Seed: 40}.Generate()
	p := ProfileOf(xs)
	for _, tol := range []float64{1e-6, 1e-12, 0} {
		s := New(tol)
		s.Cache = NewDecisionCache(CacheConfig{})
		d1 := s.Decide(p)
		d2 := s.Decide(p)
		if d1 != d2 {
			t.Errorf("tol=%g: miss %+v != hit %+v", tol, d1, d2)
		}
		st := s.Cache.Stats()
		if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
			t.Errorf("tol=%g: stats %+v, want 1 hit / 1 miss / 1 entry", tol, st)
		}
		if st.HitRate() != 0.5 {
			t.Errorf("tol=%g: hit rate %g", tol, st.HitRate())
		}
	}
}

// TestCacheHitMissPinNewRanks pins memoization under the re-ranked
// cost ladder (BN directly after the plain loops): a zero-tolerance
// request must decide the cheapest reproducible rung — BN, not PR —
// and the hit must return that exact Decision. A loose request keeps
// the plain fast path: cheapening the reproducible rung must never
// steal selections ST already satisfies.
func TestCacheHitMissPinNewRanks(t *testing.T) {
	xs := gen.Spec{N: 1 << 14, Cond: 1e8, DynRange: 24, Seed: 46}.Generate()
	p := ProfileOf(xs)
	s := New(0)
	s.Cache = NewDecisionCache(CacheConfig{})
	miss := s.Decide(p)
	hit := s.Decide(p)
	if miss != hit {
		t.Fatalf("hit decision differs from miss: %+v vs %+v", hit, miss)
	}
	if miss.Alg != sum.BinnedAlg {
		t.Errorf("tol=0 decided %v, want BN (cheapest reproducible rung)", miss.Alg)
	}
	if st := s.Cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v, want 1 hit / 1 miss", st)
	}
	loose := New(1e-6)
	loose.Cache = NewDecisionCache(CacheConfig{})
	easy := ProfileOf(gen.Spec{N: 4096, Cond: 1, DynRange: 4, Seed: 47}.Generate())
	d1 := loose.Decide(easy)
	d2 := loose.Decide(easy)
	if d1 != d2 {
		t.Fatalf("loose hit differs from miss: %+v vs %+v", d2, d1)
	}
	if d1.Alg.CostRank() > sum.BinnedAlg.CostRank() {
		t.Errorf("easy cell escalated past BN: %v", d1.Alg)
	}
}

// TestCacheOrderIndependence: decisions are pure functions of the
// bucket, never "whichever profile arrived first" — two profiles
// sharing a bucket get the same decision regardless of which one warmed
// the cache.
func TestCacheOrderIndependence(t *testing.T) {
	// Same bucket: k differs by well under a quarter-decade, same n and
	// dr magnitudes.
	a := ProfileOf(gen.Spec{N: 4000, Cond: 1.1e5, DynRange: 16, Seed: 41}.Generate())
	b := ProfileOf(gen.Spec{N: 4001, Cond: 1.3e5, DynRange: 16, Seed: 42}.Generate())
	req := Requirement{Tolerance: 1e-12}
	if quantize(a, req) != quantize(b, req) {
		t.Skip("fixture profiles no longer share a bucket")
	}
	s1 := New(req.Tolerance)
	s1.Cache = NewDecisionCache(CacheConfig{})
	d1a, d1b := s1.Decide(a), s1.Decide(b)
	s2 := New(req.Tolerance)
	s2.Cache = NewDecisionCache(CacheConfig{})
	d2b, d2a := s2.Decide(b), s2.Decide(a)
	if d1a != d2a || d1b != d2b || d1a != d1b {
		t.Errorf("order-dependent decisions: %+v/%+v vs %+v/%+v", d1a, d1b, d2a, d2b)
	}
}

// TestCacheConservatism: under the monotone analytic policy the cached
// decision (computed at the bucket's upper edges) never picks a cheaper
// algorithm than the exact-profile policy call would.
func TestCacheConservatism(t *testing.T) {
	conds := []float64{1, 10, 1e3, 1e5, 1e8, 1e12, math.Inf(1)}
	tols := []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15, 0}
	for i, k := range conds {
		xs := gen.Spec{N: 3000 + 17*i, Cond: k, DynRange: 8 * (i%4 + 1),
			Seed: uint64(43 + i)}.Generate()
		p := ProfileOf(xs)
		for _, tol := range tols {
			s := New(tol)
			s.Cache = NewDecisionCache(CacheConfig{})
			cached := s.Decide(p)
			direct := decide(s.Policy, p, s.Req)
			if cached.Alg.CostRank() < direct.Alg.CostRank() {
				t.Errorf("k=%g tol=%g: cache cheapened %v to %v",
					k, tol, direct.Alg, cached.Alg)
			}
		}
	}
}

// TestCacheQuantizeBuckets sanity-checks the key axes: tolerance exact,
// condition in quarter-decades with a saturation sentinel, n by
// power-of-two magnitude, dynamic range in 4-octave steps.
func TestCacheQuantizeBuckets(t *testing.T) {
	base := Profile{N: 1000, HasNonzero: true, MaxExp: 0, MinExp: -10,
		Pos: 1000, SumAbs: CSum{S: 1}, Sum: CSum{S: 1e-3}}
	req := Requirement{Tolerance: 1e-9}
	k0 := quantize(base, req)
	if k0.nq != 10 || k0.drq != 3 || k0.kq != 12 {
		t.Errorf("base key %+v", k0)
	}
	inf := base
	inf.Sum = CSum{}
	if q := quantize(inf, req); q.kq != kInfBucket {
		t.Errorf("cancelled profile key %+v, want sentinel", q)
	}
	nan := base
	nan.Sum, nan.SumAbs = CSum{S: math.Inf(1)}, CSum{S: math.Inf(1)}
	if q := quantize(nan, req); q.kq != kInfBucket {
		t.Errorf("NaN-cond profile key %+v, want sentinel", q)
	}
	otherTol := quantize(base, Requirement{Tolerance: 1e-10})
	if otherTol == k0 {
		t.Error("tolerance not part of the key")
	}
	// Representative stays in (or conservatively above) its bucket and
	// is finite-safe for the tuner even at extreme dynamic range.
	for _, key := range []cacheKey{k0, quantize(inf, req),
		{tol: k0.tol, kq: 68, nq: 62, drq: 600}} {
		rp, rreq := representative(key)
		if rreq.Tolerance != req.Tolerance {
			t.Errorf("representative lost the tolerance")
		}
		if rp.N < 1 || !rp.HasNonzero {
			t.Errorf("degenerate representative %+v", rp)
		}
		cfg := TunePR(rp, rreq) // must not overflow or panic
		if cfg.F < 1 || cfg.F > 8 {
			t.Errorf("representative tuned to invalid F=%d", cfg.F)
		}
	}
}

// TestCacheLRUEviction: capacity bounds the table and evicted buckets
// are recomputed (identically) on return.
func TestCacheLRUEviction(t *testing.T) {
	s := New(1e-9)
	s.Cache = NewDecisionCache(CacheConfig{Capacity: 2})
	profiles := []Profile{
		{N: 10, HasNonzero: true, Pos: 10, SumAbs: CSum{S: 1}, Sum: CSum{S: 1}},
		{N: 10000, HasNonzero: true, Pos: 10000, SumAbs: CSum{S: 1}, Sum: CSum{S: 1e-4}},
		{N: 10, HasNonzero: true, MaxExp: 0, MinExp: -30, Pos: 10,
			SumAbs: CSum{S: 1}, Sum: CSum{S: 1e-9}},
	}
	first := s.Decide(profiles[0])
	s.Decide(profiles[1])
	s.Decide(profiles[2]) // evicts profiles[0]'s bucket
	if st := s.Cache.Stats(); st.Entries != 2 || st.Misses != 3 {
		t.Fatalf("stats after overflow: %+v", st)
	}
	again := s.Decide(profiles[0]) // miss again, same decision
	st := s.Cache.Stats()
	if st.Misses != 4 || st.Hits != 0 {
		t.Errorf("evicted bucket was not recomputed: %+v", st)
	}
	if first != again {
		t.Errorf("recomputed decision differs: %+v vs %+v", first, again)
	}
	// Recency: re-inserting profiles[0] evicted the then-LRU
	// profiles[1]; profiles[2] (more recent) must have been retained.
	s.Decide(profiles[2])
	if st := s.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("expected a hit on the retained bucket: %+v", st)
	}
}

// TestCacheNonFiniteBypass: poisoned profiles never touch the cache.
func TestCacheNonFiniteBypass(t *testing.T) {
	s := New(1e-9)
	s.Cache = NewDecisionCache(CacheConfig{})
	var p Profile
	p = p.Add(1)
	p = p.Add(math.NaN())
	d := s.Decide(p)
	if !d.Alg.Valid() {
		t.Errorf("poisoned decision invalid: %+v", d)
	}
	if st := s.Cache.Stats(); st.Hits+st.Misses != 0 || st.Entries != 0 {
		t.Errorf("poisoned profile touched the cache: %+v", st)
	}
}

// TestCacheHitAllocs: the steady-state hit path is allocation-free.
func TestCacheHitAllocs(t *testing.T) {
	xs := gen.Spec{N: 4096, Cond: 1e5, DynRange: 16, Seed: 44}.Generate()
	p := ProfileOf(xs)
	s := New(1e-12)
	s.Cache = NewDecisionCache(CacheConfig{Shards: 4})
	s.Decide(p) // warm
	var sink Decision
	if n := testing.AllocsPerRun(100, func() {
		sink = s.Decide(p)
	}); n != 0 {
		t.Errorf("cache hit allocates %v per run", n)
	}
	_ = sink
	// And end-to-end: warm fused serving with a cache on the fast path.
	easy := gen.Spec{N: 4096, Cond: 1, DynRange: 4, Seed: 45}.Generate()
	st := New(1e-9)
	st.Cache = NewDecisionCache(CacheConfig{})
	st.SelectAndSum(easy) // warm
	var v float64
	if n := testing.AllocsPerRun(100, func() {
		v, _ = st.SelectAndSum(easy)
	}); n != 0 {
		t.Errorf("cached fused serving allocates %v per run", n)
	}
	_ = v
}

// TestCacheConcurrent hammers one sharded cache from many goroutines
// (the race detector pass covers the locking) and checks decisions stay
// identical to the single-threaded answers.
func TestCacheConcurrent(t *testing.T) {
	profiles := make([]Profile, 16)
	want := make([]Decision, len(profiles))
	ref := New(1e-12)
	for i := range profiles {
		profiles[i] = ProfileOf(gen.Spec{N: 500 + 300*i,
			Cond: math.Pow(10, float64(i%9)), DynRange: 4 * (i % 6),
			Seed: uint64(50 + i)}.Generate())
		want[i] = ref.Decide(profiles[i])
	}
	s := New(1e-12)
	s.Cache = NewDecisionCache(CacheConfig{Capacity: 64, Shards: 4})
	var wg sync.WaitGroup
	errc := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				i := (g + iter) % len(profiles)
				d := s.Decide(profiles[i])
				// Cached decisions may be conservatively stronger than the
				// direct ones, but must at least be valid and never cheaper.
				if !d.Alg.Valid() || d.Alg.CostRank() < want[i].Alg.CostRank() {
					select {
					case errc <- d.Alg.String():
					default:
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for e := range errc {
		t.Errorf("concurrent decision invalid or cheapened: %s", e)
	}
	if st := s.Cache.Stats(); st.Hits == 0 || st.Entries == 0 {
		t.Errorf("no cache traffic recorded: %+v", st)
	}
}

// TestCachedSumBitsUnaffected: attaching a cache must not change the
// bits a given selection produces — only potentially which algorithm is
// selected — and repeated cached serving is self-consistent.
func TestCachedSumBitsUnaffected(t *testing.T) {
	for name, xs := range fusedCases() {
		for _, tol := range []float64{1e-6, 1e-12, 0} {
			cached := New(tol)
			cached.Cache = NewDecisionCache(CacheConfig{})
			v1, sel1 := cached.SelectAndSum(xs)
			v2, sel2 := cached.SelectAndSum(xs) // hit path
			if fbits(v1) != fbits(v2) || sel1.Alg != sel2.Alg {
				t.Errorf("%s tol=%g: hit changed the result: %x/%v vs %x/%v",
					name, tol, fbits(v1), sel1.Alg, fbits(v2), sel2.Alg)
			}
			// The cached selection, run uncached through a Static policy,
			// reproduces the same bits: the cache influences selection
			// only, never execution.
			if sel1.Alg != sum.PreroundedAlg && !sel1.NonFinite {
				plain := New(tol)
				plain.Policy = Static{Alg: sel1.Alg}
				v3, _ := plain.SelectAndSum(xs)
				if fbits(v1) != fbits(v3) {
					t.Errorf("%s tol=%g: cached bits %x != forced-%v bits %x",
						name, tol, fbits(v1), sel1.Alg, fbits(v3))
				}
			}
		}
	}
}
