package selector

import (
	"math"
	"testing"

	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/mpirt"
	"repro/internal/parallel"
	"repro/internal/sum"
	"repro/internal/tree"
)

func TestProfileBasics(t *testing.T) {
	xs := []float64{1, 2, -4, 0, 256}
	p := ProfileOf(xs)
	if p.N != 5 {
		t.Errorf("N = %d", p.N)
	}
	if got := p.Sum.Float64(); got != 255 {
		t.Errorf("sum = %g", got)
	}
	if got := p.SumAbs.Float64(); got != 263 {
		t.Errorf("sumabs = %g", got)
	}
	if p.DynRange() != 8 {
		t.Errorf("dr = %d, want 8", p.DynRange())
	}
	if p.SameSign() {
		t.Error("mixed signs not detected")
	}
	if k := p.Cond(); math.Abs(k-263.0/255.0) > 1e-12 {
		t.Errorf("k = %g", k)
	}
}

func TestProfileMatchesMetrics(t *testing.T) {
	for _, spec := range []gen.Spec{
		{N: 1000, Cond: 1, DynRange: 16, Seed: 1},
		{N: 1000, Cond: 1e5, DynRange: 8, Seed: 2},
		{N: 1000, Cond: math.Inf(1), DynRange: 32, Seed: 3},
	} {
		xs := spec.Generate()
		p := ProfileOf(xs)
		if got, want := p.DynRange(), metrics.DynRange(xs); got != want {
			t.Errorf("%v: profile dr %d != metrics %d", spec, got, want)
		}
		pk, mk := p.Cond(), metrics.CondNumber(xs)
		switch {
		case math.IsInf(mk, 1):
			if !math.IsInf(pk, 1) {
				t.Errorf("%v: profile missed full cancellation: k=%g", spec, pk)
			}
		default:
			if math.Abs(math.Log10(pk)-math.Log10(mk)) > 0.01 {
				t.Errorf("%v: profile k %g vs exact %g", spec, pk, mk)
			}
		}
	}
}

func TestProfileMergeEquivalence(t *testing.T) {
	xs := gen.Spec{N: 999, Cond: 1e3, DynRange: 24, Seed: 4}.Generate()
	whole := ProfileOf(xs)
	merged := ProfileOf(xs[:300]).Merge(ProfileOf(xs[300:]))
	if whole.N != merged.N || whole.Pos != merged.Pos || whole.Neg != merged.Neg {
		t.Error("counts differ after merge")
	}
	if whole.DynRange() != merged.DynRange() {
		t.Error("dynamic range differs after merge")
	}
	if math.Abs(whole.Cond()-merged.Cond()) > 1e-6*whole.Cond() {
		t.Errorf("condition estimate differs: %g vs %g", whole.Cond(), merged.Cond())
	}
}

func TestProfileEmptyAndZeros(t *testing.T) {
	var p Profile
	if p.Cond() != 1 || p.DynRange() != 0 || !p.SameSign() {
		t.Error("empty profile defaults wrong")
	}
	z := ProfileOf([]float64{0, 0})
	if z.N != 2 || z.Cond() != 1 || z.HasNonzero {
		t.Error("zero-only profile wrong")
	}
	e := (Profile{}).Merge(ProfileOf([]float64{3}))
	if e.N != 1 || !e.HasNonzero {
		t.Error("merge with empty lost data")
	}
}

func TestHeuristicLadder(t *testing.T) {
	hp := NewHeuristicPolicy()
	p := ProfileOf(gen.Spec{N: 4096, Cond: 1e4, DynRange: 16, Seed: 5}.Generate())
	st := hp.Predict(sum.StandardAlg, p)
	k := hp.Predict(sum.KahanAlg, p)
	cp := hp.Predict(sum.CompositeAlg, p)
	pr := hp.Predict(sum.PreroundedAlg, p)
	if !(st > k && k > cp && cp > pr) {
		t.Errorf("prediction ladder violated: ST=%g K=%g CP=%g PR=%g", st, k, cp, pr)
	}
	if pr != 0 {
		t.Errorf("PR prediction must be 0, got %g", pr)
	}
}

func TestHeuristicSelectionByTolerance(t *testing.T) {
	s := New(0)
	// Well-conditioned data with a loose tolerance: cheapest wins.
	easy := gen.Spec{N: 1024, Cond: 1, DynRange: 4, Seed: 6}.Generate()
	s.Req.Tolerance = 1e-9
	if alg, _ := s.Choose(easy); alg != sum.StandardAlg {
		t.Errorf("easy data should pick ST, got %v", alg)
	}
	// Same data, bitwise requirement: the cheapest reproducible rung,
	// now BN.
	s.Req.Tolerance = 0
	if alg, _ := s.Choose(easy); alg != sum.BinnedAlg {
		t.Errorf("t=0 should pick BN, got %v", alg)
	}
	// Fully cancelling data: predictions blow up to Inf -> the
	// reproducible rung for any finite tolerance.
	zero := gen.SumZeroSeries(1024, 16, 7)
	s.Req.Tolerance = 1e-6
	if alg, _ := s.Choose(zero); alg != sum.BinnedAlg {
		t.Errorf("k=inf should pick BN, got %v", alg)
	}
}

func TestSelectionMonotoneInTolerance(t *testing.T) {
	s := New(0)
	xs := gen.Spec{N: 8192, Cond: 1e5, DynRange: 16, Seed: 8}.Generate()
	prevRank := -1
	for _, tol := range []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15, 0} {
		s.Req.Tolerance = tol
		alg, _ := s.Choose(xs)
		if r := alg.CostRank(); r < prevRank {
			t.Errorf("tightening tolerance to %g cheapened the algorithm to %v", tol, alg)
		} else {
			prevRank = r
		}
	}
}

func TestSelectorSumUsesChoice(t *testing.T) {
	s := New(1e-9)
	xs := gen.Spec{N: 512, Cond: 1, DynRange: 2, Seed: 9}.Generate()
	got, alg := s.Sum(xs)
	if alg != sum.StandardAlg {
		t.Errorf("alg = %v", alg)
	}
	if got != sum.Standard(xs) {
		t.Errorf("sum %g != ST sum", got)
	}
}

func TestReduceTreeRespectsChoice(t *testing.T) {
	s := New(0) // bitwise: a reproducible rung
	xs := gen.SumZeroSeries(2048, 24, 10)
	r := fpu.NewRNG(11)
	vals := map[float64]bool{}
	for i := 0; i < 10; i++ {
		v, alg := s.ReduceTree(tree.NewPlan(tree.Random, len(xs), r), xs)
		if !alg.Reproducible() {
			t.Fatalf("alg = %v", alg)
		}
		vals[v] = true
	}
	if len(vals) != 1 {
		t.Errorf("bitwise selection produced %d distinct results", len(vals))
	}
}

func TestCalibratedPolicySelects(t *testing.T) {
	pol := Calibrate(CalibrationConfig{
		Ns:     []int{512},
		Ks:     []float64{1, 1e4, 1e8},
		DRs:    []int{0, 16},
		Trials: 20,
		Seed:   12,
	})
	if len(pol.Cells()) != 6 {
		t.Fatalf("calibration table size %d", len(pol.Cells()))
	}
	// Easy profile, loose tolerance: cheap algorithm.
	easy := ProfileOf(gen.Spec{N: 512, Cond: 1, DynRange: 0, Seed: 13}.Generate())
	alg, _ := pol.Select(easy, Requirement{Tolerance: 1e-9})
	if alg.CostRank() > sum.KahanAlg.CostRank() {
		t.Errorf("easy profile chose %v", alg)
	}
	// Hard profile, tight tolerance: expensive algorithm.
	hard := ProfileOf(gen.Spec{N: 512, Cond: 1e8, DynRange: 16, Seed: 14}.Generate())
	algH, _ := pol.Select(hard, Requirement{Tolerance: 1e-14})
	if algH.CostRank() < sum.CompositeAlg.CostRank() {
		t.Errorf("hard profile chose %v", algH)
	}
	// Tolerance 0 must always yield a bitwise-reproducible choice.
	algZ, pred := pol.Select(hard, Requirement{Tolerance: 0})
	if pred != 0 {
		t.Errorf("t=0 prediction %g", pred)
	}
	if algZ != sum.PreroundedAlg && algZ != sum.CompositeAlg {
		t.Errorf("t=0 chose %v", algZ)
	}
}

func TestCalibratedFallsBackWhenEmpty(t *testing.T) {
	pol := NewCalibratedPolicy(nil, 0)
	p := ProfileOf([]float64{1, 2, 3})
	alg, _ := pol.Select(p, Requirement{Tolerance: 1e-9})
	if !alg.Valid() {
		t.Error("fallback selection invalid")
	}
}

func TestAdaptiveReduceAgreementAndResult(t *testing.T) {
	xs := gen.Spec{N: 8192, Cond: 1, DynRange: 8, Seed: 15}.Generate()
	const ranks = 8
	per := len(xs) / ranks
	s := New(1e-9)
	w := mpirt.NewWorld(ranks, mpirt.Config{})
	algs := make([]sum.Algorithm, ranks)
	var got float64
	err := w.Run(func(r *mpirt.Rank) {
		lo, hi := r.ID*per, (r.ID+1)*per
		v, alg, ok := AdaptiveReduce(r, 0, xs[lo:hi], s, mpirt.Binomial, mpirt.FixedOrder)
		algs[r.ID] = alg
		if ok {
			got = v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < ranks; i++ {
		if algs[i] != algs[0] {
			t.Fatalf("ranks disagreed on algorithm: %v vs %v", algs[i], algs[0])
		}
	}
	if algs[0] != sum.StandardAlg {
		t.Errorf("well-conditioned data chose %v", algs[0])
	}
	ref := metrics.AbsSum(xs) // same-sign data: sum == abssum
	if math.Abs(got-ref) > 1e-6*ref {
		t.Errorf("adaptive sum %g vs %g", got, ref)
	}
}

func TestAdaptiveReduceBitwiseUnderNondeterminism(t *testing.T) {
	xs := gen.SumZeroSeries(4096, 24, 16)
	const ranks = 16
	per := len(xs) / ranks
	s := New(0)
	results := map[float64]bool{}
	for trial := 0; trial < 5; trial++ {
		w := mpirt.NewWorld(ranks, mpirt.Config{Jitter: 100000, Seed: uint64(trial)})
		var got float64
		err := w.Run(func(r *mpirt.Rank) {
			lo, hi := r.ID*per, (r.ID+1)*per
			if v, alg, ok := AdaptiveReduce(r, 0, xs[lo:hi], s, mpirt.Binomial, mpirt.ArrivalOrder); ok {
				if !alg.Reproducible() {
					panic("t=0 must select a reproducible algorithm")
				}
				got = v
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		results[got] = true
	}
	if len(results) != 1 {
		t.Errorf("adaptive t=0 reduce produced %d distinct results", len(results))
	}
}

func TestHeuristicPredictAllAlgorithms(t *testing.T) {
	hp := NewHeuristicPolicy()
	p := ProfileOf(gen.Spec{N: 4096, Cond: 100, DynRange: 8, Seed: 60}.Generate())
	// Pairwise must predict less variability than serial ST.
	if hp.Predict(sum.PairwiseAlg, p) >= hp.Predict(sum.StandardAlg, p) {
		t.Error("pairwise should beat ST")
	}
	// Neumaier matches Kahan at first order.
	if hp.Predict(sum.NeumaierAlg, p) != hp.Predict(sum.KahanAlg, p) {
		t.Error("Neumaier prediction should match Kahan")
	}
	// Unknown algorithm predicts +Inf.
	if !math.IsInf(hp.Predict(sum.Algorithm(99), p), 1) {
		t.Error("invalid algorithm should predict Inf")
	}
	// An empty reduction admits exactly one result: variability 0
	// (the degenerate-profile table tests in policy_degenerate_test.go
	// pin the full n ∈ {0,1} / all-zero matrix).
	var empty Profile
	if v := hp.Predict(sum.StandardAlg, empty); v != 0 {
		t.Errorf("empty profile prediction %g, want 0", v)
	}
}

func TestReduceTreeWithAllAlgorithms(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	p := tree.IdentityPlan(tree.Balanced)
	for _, alg := range sum.Algorithms {
		if got := ReduceTreeWith(alg, p, xs); got != 15 {
			t.Errorf("%v tree reduce = %g", alg, got)
		}
	}
}

func TestProfileNonFinitePoison(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var p Profile
		p = p.Add(1.5)
		p = p.Add(bad)
		p = p.Add(-2.25)
		if !p.NonFinite {
			t.Errorf("Add(%v) did not poison the profile", bad)
		}
		if p.N != 3 {
			t.Errorf("poisoned profile lost the count: N=%d", p.N)
		}
		if !math.IsInf(p.Cond(), 1) {
			t.Errorf("poisoned Cond() = %g, want +Inf", p.Cond())
		}
		if p.Sum.IsNaN() || p.SumAbs.IsNaN() {
			t.Errorf("non-finite value leaked into the dd sums: %v / %v", p.Sum, p.SumAbs)
		}
	}
}

func TestProfileNonFiniteMergePropagates(t *testing.T) {
	clean := ProfileOf([]float64{1, 2, 3})
	var dirty Profile
	dirty = dirty.Add(math.NaN())
	for _, merged := range []Profile{clean.Merge(dirty), dirty.Merge(clean)} {
		if !merged.NonFinite {
			t.Error("Merge dropped the poison flag")
		}
		if !math.IsInf(merged.Cond(), 1) {
			t.Errorf("merged poisoned Cond() = %g", merged.Cond())
		}
	}
	if clean.Merge(clean).NonFinite {
		t.Error("clean merge spuriously poisoned")
	}
}

func TestProfileOfDetectsNonFinite(t *testing.T) {
	p := ProfileOf([]float64{1, math.Inf(-1), 2})
	if !p.NonFinite {
		t.Fatal("ProfileOf missed an infinity")
	}
	if s := p.String(); s == "" {
		t.Error("empty poisoned String")
	}
}

func TestProfileOfParallelWorkerStability(t *testing.T) {
	xs := gen.Spec{N: 50000, Cond: 1e6, DynRange: 24, Seed: 9}.Generate()
	cfg := parallel.Config{ChunkSize: 1 << 10, Workers: 1}
	ref := ProfileOfParallel(xs, cfg)
	for w := 2; w <= 8; w++ {
		cfg.Workers = w
		p := ProfileOfParallel(xs, cfg)
		if p != ref {
			t.Errorf("workers=%d profile %+v != workers=1 profile %+v", w, p, ref)
		}
	}
	// The chunked profile must agree with the single-pass profile on the
	// exactly-representable fields (the dd sums may differ in the last
	// few bits of the tail; the headline condition number must agree to
	// rounding).
	single := ProfileOf(xs)
	if ref.N != single.N || ref.Pos != single.Pos || ref.Neg != single.Neg ||
		ref.MinExp != single.MinExp || ref.MaxExp != single.MaxExp {
		t.Errorf("chunked profile counts diverge: %+v vs %+v", ref, single)
	}
	if k1, k2 := ref.Cond(), single.Cond(); math.Abs(k1-k2) > 1e-9*k2 {
		t.Errorf("chunked Cond %g vs single-pass %g", k1, k2)
	}
}

func TestProfileOfParallelNonFinite(t *testing.T) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 1
	}
	xs[7777] = math.Inf(-1)
	p := ProfileOfParallel(xs, parallel.Config{ChunkSize: 512, Workers: 4})
	if !p.NonFinite || !math.IsInf(p.Cond(), 1) {
		t.Errorf("parallel profile missed non-finite poison: %+v", p)
	}
}
