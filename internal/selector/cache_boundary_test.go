package selector

import (
	"math"
	"math/bits"
	"testing"
)

// Boundary-value audit of the DecisionCache quantization (issue 6,
// satellite 2): exact quarter-decade condition edges, exact 4-octave
// dynamic-range edges, exact power-of-two size edges, the >1e17
// sentinel, and tolerances sitting exactly on decade edges. The
// load-bearing invariants are (a) hit decision == miss decision and
// (b) the bucket's canonical representative dominates every profile
// the bucket admits, so memoized decisions are never cheaper than the
// exact-profile policy call.

// profileWithCond builds a unit-scale profile whose computed Cond is
// exactly 1/s for the given Sum component s (SumAbs = 1), mirroring
// the representative's construction.
func profileWithCond(n int64, s float64, minExp int) Profile {
	return Profile{
		N:          n,
		HasNonzero: true,
		MaxExp:     0,
		MinExp:     minExp,
		Pos:        n,
		Sum:        CSum{S: s},
		SumAbs:     CSum{S: 1},
	}
}

// TestCondBucketBoundaries pins the quarter-decade bucket mapping at
// its exact edges, including the 1e17 sentinel.
func TestCondBucketBoundaries(t *testing.T) {
	cases := []struct {
		k    float64
		want int16
	}{
		{0, 0},   // clamped below 1
		{0.5, 0}, // clamped below 1
		{1, 0},   // exact lower edge
		{math.Nextafter(1, 2), 1},
		{math.Pow(10, 0.25), 1}, // exact quarter-decade edge
		{math.Pow(10, 0.5), 2},  // exact half-decade edge
		{10, 4},                 // exact decade edge
		// One ulp above the edge STILL buckets at the edge: Log10
		// rounds 1+7.7e-17 back to 1.0. Buckets therefore admit
		// condition numbers slightly beyond their ideal upper edge —
		// the slack the representative's supremum walk must (and does)
		// cover; see TestRepresentativeDominatesCondBucket.
		{math.Nextafter(10, 20), 4},
		{10.00000000001, 5},
		{1e8, 32},
		{1e17, 68}, // exact saturation edge stays in the last finite bucket
		{math.Nextafter(1e17, math.Inf(1)), kInfBucket},
		{math.Inf(1), kInfBucket},
		{math.NaN(), kInfBucket},
	}
	for _, c := range cases {
		if got := condBucket(c.k); got != c.want {
			t.Errorf("condBucket(%g) = %d, want %d", c.k, got, c.want)
		}
	}
}

// TestQuantizeDynRangeBoundaries: dynamic ranges exactly on 4-octave
// edges bucket with their edge, and the representative always spans at
// least the profiled range.
func TestQuantizeDynRangeBoundaries(t *testing.T) {
	cases := []struct {
		dr   int
		want int16
	}{
		{0, 0}, {1, 1}, {3, 1},
		{4, 1}, // exact 4-octave edge: still the first bucket
		{5, 2}, {7, 2},
		{8, 2}, // next exact edge
		{9, 3},
	}
	for _, c := range cases {
		p := profileWithCond(100, 1, -c.dr)
		key := quantize(p, Requirement{Tolerance: 1e-12})
		if key.drq != c.want {
			t.Errorf("dr=%d: drq = %d, want %d", c.dr, key.drq, c.want)
		}
		rep, _ := representative(key)
		if rep.DynRange() < p.DynRange() {
			t.Errorf("dr=%d: representative range %d < profile range %d",
				c.dr, rep.DynRange(), p.DynRange())
		}
	}
}

// TestQuantizeSizeBoundaries: counts exactly at powers of two bucket
// conservatively — the representative's n is never below the
// profile's, including the MaxInt64 extreme.
func TestQuantizeSizeBoundaries(t *testing.T) {
	var ns []int64
	for _, m := range []uint{1, 2, 10, 20, 40, 62} {
		ns = append(ns, int64(1)<<m-1, int64(1)<<m, int64(1)<<m+1)
	}
	ns = append(ns, 0, 1, math.MaxInt64-1, math.MaxInt64)
	for _, n := range ns {
		p := profileWithCond(n, 1e-4, -8)
		key := quantize(p, Requirement{Tolerance: 1e-12})
		if want := int16(bits.Len64(uint64(n))); key.nq != want {
			t.Errorf("n=%d: nq = %d, want %d", n, key.nq, want)
		}
		rep, _ := representative(key)
		if rep.N < n {
			t.Errorf("n=%d: representative n=%d is smaller (not conservative)", n, rep.N)
		}
	}
}

// TestRepresentativeDominatesCondBucket is the regression test for the
// quarter-decade edge bug: the representative's computed condition
// number must be at least the largest computed condition number its
// bucket admits. Before the ulp-walk fix, double rounding in 1/(1/k')
// left the representative up to ~50 ulps short right at the edges.
func TestRepresentativeDominatesCondBucket(t *testing.T) {
	for kq := int16(0); kq <= 68; kq++ {
		key := cacheKey{tol: math.Float64bits(1e-12), kq: kq, nq: 12, drq: 2}
		rep, _ := representative(key)
		repCond := rep.Cond()
		if got := condBucket(repCond); got != kq {
			t.Errorf("kq=%d: representative re-buckets to %d", kq, got)
		}
		// Walk to the bucket's computed-Cond supremum independently.
		s := rep.Sum.S
		for {
			next := math.Nextafter(s, 0)
			if next == 0 || condBucket(1/next) > kq {
				break
			}
			s = next
		}
		if maxCond := profileWithCond(1000, s, -8).Cond(); repCond < maxCond {
			t.Errorf("kq=%d: representative Cond %v < in-bucket max %v",
				kq, repCond, maxCond)
		}
	}
	// Sentinel bucket: Cond must be exactly +Inf, dominating everything.
	rep, _ := representative(cacheKey{kq: kInfBucket, nq: 12, drq: 2})
	if !math.IsInf(rep.Cond(), 1) {
		t.Errorf("sentinel representative Cond = %v, want +Inf", rep.Cond())
	}
}

// TestRepresentativeSelfConsistent: re-quantizing a bucket's
// representative lands back in the same bucket (for occupied buckets,
// nq >= 1 — an empty-profile bucket's representative holds one value).
func TestRepresentativeSelfConsistent(t *testing.T) {
	for _, kq := range []int16{0, 1, 2, 4, 17, 40, 68, kInfBucket} {
		for _, nq := range []int16{1, 12, 40, 63} {
			for _, drq := range []int16{0, 1, 8} {
				key := cacheKey{tol: math.Float64bits(2.5e-13), kq: kq, nq: nq, drq: drq}
				rep, req := representative(key)
				if got := quantize(rep, req); got != key {
					t.Errorf("key %+v re-quantizes to %+v", key, got)
				}
			}
		}
	}
}

// TestToleranceExactKeying: tolerance is keyed by its bits — decade
// edges and neighbors one ulp apart are distinct buckets, so no
// requirement ever sees a decision memoized for a different one.
func TestToleranceExactKeying(t *testing.T) {
	p := profileWithCond(4096, 1e-5, -16)
	tol := 1e-13 // a fig12-style decade edge
	k1 := quantize(p, Requirement{Tolerance: tol})
	k2 := quantize(p, Requirement{Tolerance: math.Nextafter(tol, 1)})
	k3 := quantize(p, Requirement{Tolerance: tol})
	if k1 == k2 {
		t.Errorf("tolerances one ulp apart share a bucket: %+v", k1)
	}
	if k1 != k3 {
		t.Errorf("equal tolerances got distinct buckets: %+v vs %+v", k1, k3)
	}
}

// boundaryProfiles spans the audit surface: condition numbers exactly
// on quarter-decade edges (constructed through the same arithmetic the
// representative uses), dynamic ranges on 4-octave edges, counts on
// power-of-two edges.
func boundaryProfiles() []Profile {
	var ps []Profile
	for _, kq := range []int16{0, 1, 4, 20, 68} {
		s := 0.0
		if kq != kInfBucket {
			s = 1 / math.Pow(10, float64(kq)/4)
		}
		for _, n := range []int64{1, 2, 4095, 4096, 4097, 1 << 20} {
			for _, dr := range []int{0, 4, 5, 8} {
				ps = append(ps, profileWithCond(n, s, -dr))
			}
		}
	}
	return ps
}

// TestCacheBoundaryHitMissIdentical: on every boundary profile, the
// cached (hit) decision — algorithm, prediction, PR tuning, and the
// full Bounds payload — equals the miss decision that populated it.
func TestCacheBoundaryHitMissIdentical(t *testing.T) {
	for _, tol := range []float64{0, 1e-13, 2.5e-13, 1e-6} {
		for _, p := range boundaryProfiles() {
			s := New(tol)
			s.Cache = NewDecisionCache(CacheConfig{})
			d1 := s.Decide(p)
			d2 := s.Decide(p)
			if d1 != d2 {
				t.Fatalf("tol=%g profile %v: miss %+v != hit %+v", tol, p, d1, d2)
			}
			if st := s.Cache.Stats(); st.Hits != 1 || st.Misses != 1 {
				t.Fatalf("tol=%g profile %v: stats %+v, want 1 hit / 1 miss", tol, p, st)
			}
		}
	}
}

// TestCacheNeverCheaperAtBoundaries: under the monotone
// HeuristicPolicy, the memoized decision never picks a cheaper
// algorithm than the exact-profile policy call — exactly the
// documented conservatism claim, exercised where it's hardest (bucket
// edges).
func TestCacheNeverCheaperAtBoundaries(t *testing.T) {
	for _, tol := range []float64{0, 5e-14, 1.5e-13, 2.5e-13, 1e-12, 1e-9, 1e-6} {
		for _, p := range boundaryProfiles() {
			s := New(tol)
			s.Cache = NewDecisionCache(CacheConfig{})
			cached := s.Decide(p)
			direct, _ := s.Policy.Select(p, Requirement{Tolerance: tol})
			if cached.Alg.CostRank() < direct.CostRank() {
				t.Errorf("tol=%g profile %v: cached %v cheaper than direct %v",
					tol, p, cached.Alg, direct)
			}
		}
	}
}

// TestCacheBoundaryProfilesBucketDistinctly: neighbors across an exact
// edge land in different buckets (no silent aliasing of, e.g., dr=4
// with dr=5, or n=4096 with n=4097).
func TestCacheBoundaryProfilesBucketDistinctly(t *testing.T) {
	req := Requirement{Tolerance: 1e-12}
	a := quantize(profileWithCond(4096, 1e-4, -4), req)
	b := quantize(profileWithCond(4095, 1e-4, -4), req)
	if a == b {
		t.Errorf("n=4095 and n=4096 share bucket %+v", a)
	}
	c := quantize(profileWithCond(4096, 1e-4, -5), req)
	if a == c {
		t.Errorf("dr=4 and dr=5 share bucket %+v", a)
	}
}
