package selector

import (
	"math"
	"testing"

	"repro/internal/gen"
)

// TestProfileOfMatchesAddFold pins the in-place batch profiling loop
// against folding the value-semantics Profile.Add — every field,
// including the composite-precision sums, must be identical.
func TestProfileOfMatchesAddFold(t *testing.T) {
	sets := map[string][]float64{
		"benign":    gen.Spec{N: 1000, Cond: 1, DynRange: 8, Seed: 1}.Generate(),
		"illcond":   gen.Spec{N: 1001, Cond: 1e8, DynRange: 24, Seed: 2}.Generate(),
		"zeros":     {0, 0, 1, -2, 0, 3},
		"poisoned":  {1, math.NaN(), 2, math.Inf(1)},
		"empty":     nil,
		"subnormal": {0x1p-1074, -0x1p-1050, 0x1p-1022},
	}
	for name, xs := range sets {
		batch := ProfileOf(xs)
		var folded Profile
		for _, x := range xs {
			folded = folded.Add(x)
		}
		if batch != folded {
			t.Errorf("%s: ProfileOf = %+v, Add fold = %+v", name, batch, folded)
		}
	}
}
