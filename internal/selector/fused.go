package selector

import (
	"repro/internal/kernel"
	"repro/internal/parallel"
	"repro/internal/sum"
)

// Fused speculative serving path.
//
// The legacy Selector.Sum reads the data twice: ProfileOf(xs) to build
// the selection profile, then alg.Sum(xs) once the policy has chosen —
// 2x memory traffic even when the choice is the cheapest algorithm.
// The fused path folds the profile AND the two cheapest candidate
// answers (ST's plain sum and Neumaier's compensated pair — the
// profile's Σx accumulator is that pair) in one pass over xs
// (kernel.FusedProfileSum), then consults the policy. When the policy
// picks ST or Neumaier the answer is already in hand and the data is
// never read again; only escalations to PW/K/CP/PR pay a second pass.
// Every fast-path result is bitwise-identical to what the legacy
// two-pass route computes, pinned by equivalence tests.

// FusedPass is the outcome of one fused profile+sum pass: the complete
// selection profile plus the speculative plain-sum shadow. The Neumaier
// speculation needs no extra field — it IS Profile.Sum.
type FusedPass struct {
	Profile Profile
	// ST is the plain left-to-right (or, for the parallel variant,
	// chunk-tree) sum of all elements including zeros and non-finite
	// values — exactly what sum.Standard / parallel.Sum(StandardAlg)
	// would return.
	ST float64
}

// passOf rebuilds the selector-level view of a kernel accumulator. The
// field mapping is 1:1; the kernel type exists only so the hot loop
// lives with its peer kernels and stays free of selector dependencies.
func passOf(a kernel.FusedAcc) FusedPass {
	return FusedPass{
		Profile: Profile{
			N:          a.N,
			Sum:        CSum{S: a.SumS, C: a.SumC},
			SumAbs:     CSum{S: a.AbsS, C: a.AbsC},
			MaxExp:     a.MaxExp,
			MinExp:     a.MinExp,
			HasNonzero: a.HasNonzero,
			Pos:        a.Pos,
			Neg:        a.Neg,
			NonFinite:  a.NonFinite,
		},
		ST: a.ST,
	}
}

// FusedProfileSum profiles xs and computes both speculative sums in a
// single serial pass. The profile is bit-identical to ProfileOf(xs) and
// the ST shadow to sum.Standard(xs).
func FusedProfileSum(xs []float64) FusedPass {
	return passOf(kernel.FusedProfileSum(xs))
}

// FusedProfileSumParallel is the engine variant: per-chunk fused folds
// combined with kernel.FusedAcc.Merge over the engine's fixed balanced
// tree. The profile matches ProfileOfParallel(xs, cfg) and the
// speculative sums match parallel.Sum(StandardAlg/NeumaierAlg, xs, cfg)
// bit-for-bit at any worker count — provided cfg.LaneWidth <= 1 (lane
// plans change the chunk-fold bits; callers must fall back to the
// two-pass route for wider lanes, as core.Runtime does).
func FusedProfileSumParallel(xs []float64, cfg parallel.Config) FusedPass {
	a, ok := parallel.MapReduce(len(xs), cfg,
		func(lo, hi int) kernel.FusedAcc { return kernel.FusedProfileSum(xs[lo:hi]) },
		kernel.FusedAcc.Merge)
	if !ok {
		return FusedPass{}
	}
	return passOf(a)
}

// SpecSum returns the already-computed sum for alg, if this pass holds
// one:
//
//   - StandardAlg: always available — the ST shadow folds every element
//     (non-finite included) exactly as sum.Standard does.
//   - NeumaierAlg: available when no non-finite value was profiled (a
//     real Neumaier fold would have absorbed it; the profile pair
//     skipped it) and the pair itself stayed finite (on an intermediate
//     overflow the branch-free TwoSum residual and Neumaier's branched
//     residual can diverge; overflow is sticky, so a finite final pair
//     proves every intermediate step was finite and the equality exact).
//
// All other algorithms return ok=false: the caller escalates to a real
// second-pass fold.
func (fp FusedPass) SpecSum(alg sum.Algorithm) (float64, bool) {
	switch alg {
	case sum.StandardAlg:
		return fp.ST, true
	case sum.NeumaierAlg:
		if fp.Profile.NonFinite || !fp.Profile.Sum.Finite() {
			return 0, false
		}
		return fp.Profile.Sum.Float64(), true
	}
	return 0, false
}

// Decision is one memoizable selection outcome: the chosen algorithm,
// its predicted variability, the Hallman–Ipsen forward-error bound
// estimates for the profile it was made from, and — when the choice is
// PR — the tuned prerounding configuration. It is a pure function of
// (policy, profile, requirement), which is what makes the decision
// cache sound; cached decisions carry the bounds of the bucket's
// conservative representative, so a hit and a miss report identical
// (and never optimistic) bounds.
type Decision struct {
	Alg       sum.Algorithm
	Predicted float64
	// Bounds are the per-algorithm forward-error bound estimates
	// computed from the same profile the decision was made from (the
	// bucket representative on cached paths) — no extra data pass.
	Bounds Bounds
	// PR is the TunePR configuration; meaningful only when TunedPR.
	PR      sum.PRConfig
	TunedPR bool
}

// decide evaluates the policy (and, for PR selections, the tuner)
// directly, with no cache involved.
func decide(pol Policy, p Profile, req Requirement) Decision {
	alg, pred := pol.Select(p, req)
	d := Decision{Alg: alg, Predicted: pred, Bounds: boundsFor(pol, p)}
	if alg == sum.PreroundedAlg {
		d.PR = TunePR(p, req)
		d.TunedPR = true
	}
	return d
}

// Decide maps a profile to a selection decision under the selector's
// policy and requirement, going through the decision cache when one is
// attached. Poisoned (NonFinite) profiles always bypass the cache: they
// quantize onto the same bucket as merely ill-conditioned data but must
// keep the legacy poisoned-path behavior exactly.
func (s *Selector) Decide(p Profile) Decision {
	if s.Cache != nil && !p.NonFinite {
		return s.Cache.decide(s.Policy, p, s.Req)
	}
	return decide(s.Policy, p, s.Req)
}

// Selection describes one fused select-and-sum call, for reporting.
type Selection struct {
	Profile   Profile
	Alg       sum.Algorithm
	Predicted float64
	// Bounds are the decision's forward-error bound estimates (the
	// bucket representative's on cached paths; inconclusive on the
	// poisoned fallback).
	Bounds Bounds
	// PR is the tuned prerounding configuration when Alg is PR.
	PR *sum.PRConfig
	// Fast reports that the returned sum came out of the speculative
	// pass — the data was read exactly once.
	Fast bool
	// NonFinite reports the poisoned-input fallback: the profile saw
	// NaN/±Inf, selection was skipped, and the ST sum (which absorbs
	// non-finite values with IEEE semantics) was returned.
	NonFinite bool
}

// SelectAndSum is the fused serving call: one pass to profile and
// speculate, a policy consult (cache-aware), and — only if the policy
// escalates past ST/Neumaier — a second pass with the selected
// operator. PR escalations run with the TunePR-sized configuration,
// like core.Runtime.Sum. Poisoned inputs fall back to the ST shadow,
// which equals sum.Standard(xs) bit-for-bit.
func (s *Selector) SelectAndSum(xs []float64) (float64, Selection) {
	fp := FusedProfileSum(xs)
	prof := fp.Profile
	if prof.NonFinite {
		return fp.ST, Selection{
			Profile: prof, Alg: sum.StandardAlg, Fast: true, NonFinite: true,
			Bounds: boundsFor(s.Policy, prof),
		}
	}
	d := s.Decide(prof)
	sel := Selection{Profile: prof, Alg: d.Alg, Predicted: d.Predicted, Bounds: d.Bounds}
	if v, ok := fp.SpecSum(d.Alg); ok {
		sel.Fast = true
		return v, sel
	}
	if d.Alg == sum.PreroundedAlg {
		cfg := d.PR
		sel.PR = &cfg
		return sum.PreroundedWith(cfg, xs), sel
	}
	return d.Alg.Sum(xs), sel
}

// SelectAndSumParallel is SelectAndSum on the parallel engine: fused
// per-chunk folds, the same decision step, and parallel escalation.
// ok=false means the engine cannot serve this configuration fused
// (cfg.LaneWidth > 1 — lane plans change which bits the chunk folds
// produce) and the caller should take the legacy two-pass route.
// Poisoned inputs fall back to one serial ST pass — the same bits the
// legacy parallel route's non-finite fallback produces.
func (s *Selector) SelectAndSumParallel(xs []float64, cfg parallel.Config) (float64, Selection, bool) {
	if cfg.LaneWidth > 1 {
		return 0, Selection{}, false
	}
	fp := FusedProfileSumParallel(xs, cfg)
	prof := fp.Profile
	if prof.NonFinite {
		return sum.Standard(xs), Selection{
			Profile: prof, Alg: sum.StandardAlg, NonFinite: true,
			Bounds: boundsFor(s.Policy, prof),
		}, true
	}
	d := s.Decide(prof)
	sel := Selection{Profile: prof, Alg: d.Alg, Predicted: d.Predicted, Bounds: d.Bounds}
	if v, ok := fp.SpecSum(d.Alg); ok {
		sel.Fast = true
		return v, sel, true
	}
	if d.Alg == sum.PreroundedAlg {
		prCfg := d.PR
		sel.PR = &prCfg
		return parallel.SumPR(prCfg, xs, cfg), sel, true
	}
	return parallel.Sum(d.Alg, xs, cfg), sel, true
}
