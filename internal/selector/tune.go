package selector

import (
	"math"

	"repro/internal/sum"
)

// TunePR sizes the prerounded operator for a profile and tolerance —
// the paper's Section III-C "precision tuning" idea applied to the one
// algorithm with a precision knob. PR drops everything more than F*W
// bits below the largest operand's bin, so fewer folds are cheaper but
// coarser; TunePR returns the cheapest configuration whose modeled
// relative error stays within the tolerance (bitwise reproducibility is
// preserved by every configuration — only accuracy varies).
//
// The error model: each operand loses at most 2^(maxExp - (F-1)*W + 1)
// to the dropped residual, so the total absolute loss is bounded by
// n times that, and the relative loss is that over |sum| = sumAbs/k.
// The bin width W is lowered from the default only when the operand
// count exceeds the exactness capacity 2^(52-W).
func TunePR(p Profile, req Requirement) sum.PRConfig {
	cfg := sum.DefaultPRConfig()
	// Capacity first: shrink W until n fits (wider capacity, narrower
	// bins, more folds needed for the same accuracy).
	n := p.N
	if n < 1 {
		n = 1
	}
	for cfg.W > 8 && n > cfg.Capacity() {
		cfg.W--
	}
	if !p.HasNonzero {
		cfg.F = 1
		return cfg
	}
	tol := req.Tolerance
	if tol <= 0 {
		// Bitwise demanded: accuracy is capped by what maxFold buys.
		cfg.F = 4
		return cfg
	}
	k := p.Cond()
	sumAbs := p.SumAbs.Float64()
	maxAbs := math.Ldexp(1, p.MaxExp+1)
	for f := 1; f <= 8; f++ {
		// Relative dropped-residual bound for F = f.
		dropped := float64(n) * math.Ldexp(maxAbs, -(f-1)*cfg.W+1)
		rel := dropped * k / sumAbs
		if math.IsInf(k, 1) {
			rel = math.Inf(1) // zero sums: only absolute accuracy exists
		}
		if rel <= tol || f == 8 {
			cfg.F = f
			if cfg.F > 8 {
				cfg.F = 8
			}
			break
		}
	}
	if cfg.F < 1 || cfg.F > 8 {
		cfg.F = 4
	}
	return cfg
}
