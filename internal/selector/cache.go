package selector

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// DecisionCache memoizes selection decisions keyed by a quantized
// profile, so steady-state traffic whose data keeps the same rough
// shape (n, condition number, dynamic range) skips policy evaluation —
// the table scan of a CalibratedPolicy, or HeuristicPolicy's log/sqrt
// chain — entirely.
//
// Soundness rests on one rule: a cached decision is NEVER the answer
// the policy gave "some earlier profile that happened to land in this
// bucket". On a miss the cache evaluates the policy on the bucket's
// canonical representative — a synthetic profile pinned to the bucket's
// conservative (upper) edges: largest n, largest condition number,
// widest dynamic range, worst maxAbs/sumAbs ratio the bucket admits.
// The memoized decision is therefore a pure function of the bucket, so
// a hit and a miss return identical decisions and results are
// independent of request order, concurrency, and cache capacity.
// Under the monotone HeuristicPolicy the representative's decision is
// also conservative for every profile in the bucket: it never selects
// a cheaper algorithm than the exact profile would.
//
// What is quantized (see quantize): tolerance exactly (its bits are the
// key), condition number in quarter-decades of clampLog10K (with one
// sentinel bucket for k ≥ 10^17/Inf/NaN), n in powers of two, dynamic
// range in 4-octave steps. What is NOT affected: execution bits. The
// decision (algorithm + PR configuration) fully determines the
// arithmetic; the cache only changes how the decision is obtained, so
// a given Selector configuration produces identical bits with a cold
// cache, a warm cache, or a thrashing one. Attaching a cache is itself
// a configuration change, though: quantization may round a decision up
// to a more accurate algorithm than the exact-profile policy call.
//
// Poisoned (NonFinite) profiles never reach the cache (Selector.Decide
// bypasses it) — they would alias the ill-conditioned bucket while
// requiring different handling.
//
// The cache is safe for concurrent use. With CacheConfig.Shards > 1 the
// key space is split across independently locked shards so concurrent
// callers rarely contend. Hits cost one map probe and two list-pointer
// swaps under the shard lock, with zero heap allocations.
type DecisionCache struct {
	shards []cacheShard
	mask   uint64
}

// CacheConfig sizes a DecisionCache.
type CacheConfig struct {
	// Capacity is the total number of memoized decisions across all
	// shards; least-recently-used entries are evicted beyond it.
	// Defaults to 4096 (a few hundred KB; far more buckets than a
	// single workload's profiles usually span).
	Capacity int
	// Shards is the number of independently locked segments, rounded up
	// to a power of two. Defaults to 1; raise it when many goroutines
	// serve decisions concurrently.
	Shards int
}

// CacheStats is an observability snapshot of a DecisionCache.
type CacheStats struct {
	Hits, Misses int64
	// Entries is the number of decisions currently memoized.
	Entries int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any traffic.
func (cs CacheStats) HitRate() float64 {
	total := cs.Hits + cs.Misses
	if total == 0 {
		return 0
	}
	return float64(cs.Hits) / float64(total)
}

// cacheKey identifies one quantization bucket. All fields are
// comparable scalars, so the key hashes and compares without
// allocating.
type cacheKey struct {
	// tol is math.Float64bits of the requirement's tolerance — exact,
	// never bucketed: two requirements are the same key only when they
	// are the same tolerance.
	tol uint64
	// kq is the condition bucket: ceil(4·clampLog10K(k)) in 0..68, or
	// kInfBucket for k ≥ 10^17, +Inf, or NaN.
	kq int16
	// nq is the size bucket: bits.Len64(n), i.e. n's power-of-two
	// magnitude.
	nq int16
	// drq is the dynamic-range bucket: ceil(dr/4).
	drq int16
}

// kInfBucket is the saturated condition bucket (clampLog10K == 17 edge
// and beyond, including NaN estimates from an overflowed Σ|x|).
const kInfBucket int16 = 69

// condBucket maps a condition number onto its quarter-decade bucket.
// quantize and representative must share this exact rounding: the
// conservative-representative guarantee is stated in terms of the
// bucket this function computes.
func condBucket(k float64) int16 {
	if math.IsNaN(k) || k > 1e17 {
		return kInfBucket
	}
	return int16(math.Ceil(clampLog10K(k) * 4))
}

// quantize maps a (profile, requirement) onto its bucket.
func quantize(p Profile, req Requirement) cacheKey {
	return cacheKey{
		tol: math.Float64bits(req.Tolerance),
		kq:  condBucket(p.Cond()),
		nq:  int16(bits.Len64(uint64(p.N))),
		drq: int16((p.DynRange() + 3) / 4),
	}
}

// representative synthesizes the bucket's canonical profile, pinned to
// the conservative edge of every quantized axis:
//
//   - n: the bucket's upper edge 2^nq - 1 (predictions grow with n;
//     the nq = 63 bucket pins MaxInt64, the largest count a profile
//     can hold);
//   - k: Sum = 1/k' against SumAbs = 1 with k' at the bucket's upper
//     edge 10^(kq/4), then nudged ulp-by-ulp to the largest computed
//     condition number the bucket admits — the double rounding in
//     1/(1/k') and Log10's own rounding otherwise leave the
//     representative's Cond tens of ulps below in-bucket profiles at
//     quarter-decade edges, quietly breaking conservatism right on the
//     boundary; the sentinel bucket uses Sum = 0, making Cond exactly
//     +Inf;
//   - dr: MaxExp = 0, MinExp = -4·drq (the widest range the bucket
//     admits), which also pins TunePR's maxAbs/sumAbs ratio at its
//     worst case 2 — real data in the bucket never has a larger ratio,
//     so the memoized PR configuration is at least as accurate as the
//     exact-profile tuning.
//
// Keeping the representative at unit scale (SumAbs = 1, MaxExp = 0)
// also keeps TunePR's ldexp arithmetic far from overflow for any
// representable dynamic range.
func representative(key cacheKey) (Profile, Requirement) {
	req := Requirement{Tolerance: math.Float64frombits(key.tol)}
	n := int64(1)
	switch {
	case key.nq >= 63:
		n = math.MaxInt64 // bits.Len64 of a count never exceeds 63
	case key.nq > 0:
		n = int64(1)<<key.nq - 1
	}
	p := Profile{
		N:          n,
		HasNonzero: true,
		MaxExp:     0,
		MinExp:     -4 * int(key.drq),
		Pos:        n,
		SumAbs:     CSum{S: 1},
	}
	if key.kq != kInfBucket {
		s := 1 / math.Pow(10, float64(key.kq)/4)
		// Walk |Sum| down to the bucket's computed-Cond supremum: the
		// largest 1/s that condBucket still maps into this bucket. The
		// loop terminates because shrinking s grows 1/s monotonically
		// toward +Inf (bucket kInfBucket); measured walks are under
		// fifty ulps.
		for {
			next := math.Nextafter(s, 0)
			if next == 0 || condBucket(1/next) > key.kq {
				break
			}
			s = next
		}
		p.Sum = CSum{S: s}
	}
	return p, req
}

// hash mixes the key with a splitmix64 finalizer; the shard index takes
// the low bits.
func (k cacheKey) hash() uint64 {
	h := k.tol
	h ^= uint64(uint16(k.kq)) | uint64(uint16(k.nq))<<16 | uint64(uint16(k.drq))<<32
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// cacheEntry is one memoized decision in a shard's slab, linked into
// the shard's recency list by slab index (no per-entry allocations).
type cacheEntry struct {
	key        cacheKey
	d          Decision
	prev, next int32
}

const nilIdx int32 = -1

// cacheShard is one independently locked segment: a map from key to
// slab index plus an intrusive LRU list over the slab. The counters
// are atomics so Stats reads them without touching mu — observability
// never contends with decision traffic.
type cacheShard struct {
	mu         sync.Mutex
	idx        map[cacheKey]int32
	ents       []cacheEntry
	cap        int
	head, tail int32

	hits    atomic.Int64
	misses  atomic.Int64
	entries atomic.Int64
}

// NewDecisionCache returns an empty cache; zero-value config fields take
// their defaults.
func NewDecisionCache(cfg CacheConfig) *DecisionCache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 4096
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	nShards := 1
	for nShards < cfg.Shards {
		nShards <<= 1
	}
	perShard := (cfg.Capacity + nShards - 1) / nShards
	if perShard < 1 {
		perShard = 1
	}
	dc := &DecisionCache{
		shards: make([]cacheShard, nShards),
		mask:   uint64(nShards - 1),
	}
	for i := range dc.shards {
		sh := &dc.shards[i]
		sh.idx = make(map[cacheKey]int32, perShard)
		sh.ents = make([]cacheEntry, 0, perShard)
		sh.cap = perShard
		sh.head, sh.tail = nilIdx, nilIdx
	}
	return dc
}

// decide returns the bucket's memoized decision, computing and
// inserting it on a miss. The policy runs outside the shard lock;
// concurrent misses on one bucket may both evaluate it, but they
// evaluate the same pure function of the same representative, so the
// race is benign and the stored decision identical either way.
func (dc *DecisionCache) decide(pol Policy, p Profile, req Requirement) Decision {
	key := quantize(p, req)
	sh := &dc.shards[key.hash()&dc.mask]
	sh.mu.Lock()
	if i, ok := sh.idx[key]; ok {
		sh.touch(i)
		d := sh.ents[i].d
		sh.mu.Unlock()
		sh.hits.Add(1)
		return d
	}
	sh.mu.Unlock()
	sh.misses.Add(1)

	rp, rreq := representative(key)
	d := decide(pol, rp, rreq)

	sh.mu.Lock()
	sh.insert(key, d)
	sh.mu.Unlock()
	return d
}

// Stats sums the shard counters. The counters are atomics, so Stats
// never blocks (or is blocked by) concurrent decide traffic; the
// snapshot is per-counter consistent, not globally atomic, but
// Hits+Misses never undercounts completed decide calls.
func (dc *DecisionCache) Stats() CacheStats {
	var cs CacheStats
	for i := range dc.shards {
		sh := &dc.shards[i]
		cs.Hits += sh.hits.Load()
		cs.Misses += sh.misses.Load()
		cs.Entries += sh.entries.Load()
	}
	return cs
}

// touch moves entry i to the recency head. Caller holds mu.
func (sh *cacheShard) touch(i int32) {
	if sh.head == i {
		return
	}
	e := &sh.ents[i]
	if e.prev != nilIdx {
		sh.ents[e.prev].next = e.next
	}
	if e.next != nilIdx {
		sh.ents[e.next].prev = e.prev
	}
	if sh.tail == i {
		sh.tail = e.prev
	}
	e.prev = nilIdx
	e.next = sh.head
	if sh.head != nilIdx {
		sh.ents[sh.head].prev = i
	}
	sh.head = i
	if sh.tail == nilIdx {
		sh.tail = i
	}
}

// insert memoizes (key, d), evicting the least-recently-used entry at
// capacity. A concurrent miss may have inserted the key already; the
// stored decision is identical, so the entry is just refreshed. Caller
// holds mu.
func (sh *cacheShard) insert(key cacheKey, d Decision) {
	if i, ok := sh.idx[key]; ok {
		sh.ents[i].d = d
		sh.touch(i)
		return
	}
	var i int32
	if len(sh.ents) < sh.cap {
		i = int32(len(sh.ents))
		sh.ents = append(sh.ents, cacheEntry{prev: nilIdx, next: nilIdx})
		sh.entries.Add(1)
	} else {
		// Reuse the LRU slot.
		i = sh.tail
		delete(sh.idx, sh.ents[i].key)
		sh.touch(i) // unlink from tail, relink at head
	}
	e := &sh.ents[i]
	e.key, e.d = key, d
	sh.idx[key] = i
	if sh.head != i {
		// Fresh slab slot: link at head.
		e.prev, e.next = nilIdx, sh.head
		if sh.head != nilIdx {
			sh.ents[sh.head].prev = i
		}
		sh.head = i
		if sh.tail == nilIdx {
			sh.tail = i
		}
	}
}
