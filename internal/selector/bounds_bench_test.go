package selector

import (
	"fmt"
	"testing"

	"repro/internal/gen"
	"repro/internal/sum"
)

// benchBoundsProfiles spans the regimes the estimators branch on:
// benign, cancelling, and wide dynamic range.
func benchBoundsProfiles() map[string]Profile {
	out := map[string]Profile{}
	for name, spec := range map[string]gen.Spec{
		"benign": {N: 1 << 16, Cond: 1, DynRange: 8, Seed: 91},
		"cancel": {N: 1 << 16, Cond: 1e8, DynRange: 16, Seed: 92},
		"wide":   {N: 1 << 16, Cond: 1e3, DynRange: 40, Seed: 93},
	} {
		out[name] = ProfileOf(spec.Generate())
	}
	return out
}

// BenchmarkBounds measures the cost of evaluating the full bound
// estimator set from an existing profile — the price the fused path
// pays to surface bounds without a second data pass.
func BenchmarkBounds(b *testing.B) {
	for name, p := range benchBoundsProfiles() {
		for _, plan := range []BoundPlan{SerialPlan, BalancedPlan} {
			b.Run(fmt.Sprintf("%s/%v", name, plan), func(b *testing.B) {
				var sink Bounds
				for i := 0; i < b.N; i++ {
					sink = ComputeBoundsPlan(p, 0, plan)
				}
				_ = sink
			})
		}
	}
}

// BenchmarkBoundsPolicyDecide compares the per-call decision cost of
// the three selection policies at a fig12-style tolerance, reporting
// each policy's pick cost rank so the bench artifact records the
// cost-of-decision vs cost-of-pick trade (cheaper decisions are no
// good if they force costlier algorithms).
func BenchmarkBoundsPolicyDecide(b *testing.B) {
	profiles := benchBoundsProfiles()
	calib := Calibrate(CalibrationConfig{
		Ns: []int{1 << 12}, Ks: []float64{1, 1e4, 1e8}, DRs: []int{0, 16, 32},
		Trials: 10, Seed: 94,
	})
	policies := []struct {
		name string
		pol  Policy
	}{
		{"prob", ProbabilisticPolicy{Plan: BalancedPlan}},
		{"calib", calib},
		{"heur", NewHeuristicPolicy()},
	}
	req := Requirement{Tolerance: 2.5e-13}
	for name, p := range profiles {
		for _, pc := range policies {
			b.Run(fmt.Sprintf("%s/%s", pc.name, name), func(b *testing.B) {
				var alg sum.Algorithm
				for i := 0; i < b.N; i++ {
					alg, _ = pc.pol.Select(p, req)
				}
				b.ReportMetric(float64(alg.CostRank()), "pick-rank")
			})
		}
	}
}
