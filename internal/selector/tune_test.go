package selector

import (
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/gen"
	"repro/internal/sum"
)

func TestTunePRFoldsScaleWithTolerance(t *testing.T) {
	p := ProfileOf(gen.Spec{N: 4096, Cond: 100, DynRange: 16, Seed: 1}.Generate())
	prevF := 0
	for _, tol := range []float64{1e-3, 1e-9, 1e-15, 1e-25} {
		cfg := TunePR(p, Requirement{Tolerance: tol})
		if err := cfg.Validate(); err != nil {
			t.Fatalf("tol %g: invalid config %v", tol, err)
		}
		if cfg.F < prevF {
			t.Errorf("tightening tolerance reduced folds: %d -> %d at %g", prevF, cfg.F, tol)
		}
		prevF = cfg.F
	}
	// Loose tolerance should not need the full fold budget.
	loose := TunePR(p, Requirement{Tolerance: 1e-3})
	tight := TunePR(p, Requirement{Tolerance: 1e-25})
	if loose.F >= tight.F {
		t.Errorf("no tuning effect: loose F=%d, tight F=%d", loose.F, tight.F)
	}
}

func TestTunePRCapacity(t *testing.T) {
	// A profile bigger than the default capacity must narrow W.
	p := Profile{N: 1 << 28}
	p.HasNonzero = true
	cfg := TunePR(p, Requirement{Tolerance: 1e-12})
	if cfg.Capacity() < 1<<28 {
		t.Errorf("tuned capacity %d below n", cfg.Capacity())
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTunePREdgeProfiles(t *testing.T) {
	var empty Profile
	cfg := TunePR(empty, Requirement{Tolerance: 1e-12})
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.F != 1 {
		t.Errorf("empty profile F = %d, want minimal", cfg.F)
	}
	// Bitwise tolerance gets the default accuracy budget.
	p := ProfileOf([]float64{1, 2, 3})
	if cfg := TunePR(p, Requirement{Tolerance: 0}); cfg.F != 4 {
		t.Errorf("t=0 F = %d, want 4", cfg.F)
	}
	// Fully cancelling profiles saturate at the fold cap.
	z := ProfileOf(gen.SumZeroSeries(256, 16, 3))
	if cfg := TunePR(z, Requirement{Tolerance: 1e-9}); cfg.F != 8 {
		t.Errorf("k=inf F = %d, want 8 (best effort)", cfg.F)
	}
}

func TestTunedConfigMeetsToleranceEmpirically(t *testing.T) {
	// The tuned configuration's actual error must respect the modeled
	// tolerance on generated data.
	for _, tol := range []float64{1e-6, 1e-10, 1e-14} {
		xs := gen.Spec{N: 4096, Cond: 1e3, DynRange: 24, Seed: 7}.Generate()
		p := ProfileOf(xs)
		cfg := TunePR(p, Requirement{Tolerance: tol})
		got := sum.PreroundedWith(cfg, xs)
		exact := bigref.SumFloat64(xs)
		rel := math.Abs(got-exact) / math.Abs(exact)
		if rel > tol {
			t.Errorf("tol %g: tuned config F=%d gave rel err %g", tol, cfg.F, rel)
		}
	}
}
