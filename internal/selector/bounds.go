package selector

import (
	"fmt"
	"math"

	"repro/internal/fpu"
	"repro/internal/sum"
)

// Forward-error bound estimators after Hallman & Ipsen
// (arXiv:2107.01604; precision-aware follow-up arXiv:2203.15928).
//
// The paper's Fig 2 point is that deterministic worst-case bounds
// overestimate real summation error so badly that they force needlessly
// expensive algorithm picks. Hallman–Ipsen model each rounding as a
// mean-independent random variable bounded by the unit roundoff u and
// obtain, via martingale concentration, bounds tighter by ~sqrt(h)
// (h = length of the longest accumulation chain) that hold with
// probability at least 1 - 2*exp(-λ²/2) for a chosen confidence
// parameter λ. Both families are computable from quantities the
// one-pass Profile already collects — n, Σ|x|, the extreme binary
// exponents, and the compensated Σx pair — so the estimates surface in
// every Report without touching the data again.
//
// All bounds here are ABSOLUTE forward-error bounds |ŝ - s| on a
// single execution; the run-to-run variability the selection policies
// contract on is bounded by the spread of results around the true sum,
// so the relative bound (Bounds.Rel) is also a valid variability
// prediction, with reproducible algorithms pinned to exactly 0.
//
// Every deterministic bound is a theorem (Higham ASNA §4; Neumaier
// 1974; the binned/prerounded dropped-residual models of their
// packages), evaluated with guarded profile estimates so that the
// profile's own O(n·u) accumulation error cannot push the reported
// bound below the truth; the differential-validation tests check them
// against bigref ground truth across the fig12 grid and adversarial
// generators — deterministic bounds are never violated, probabilistic
// bounds are violated at most at the stated failure rate.

// DefaultLambda is the confidence parameter used when the policy does
// not specify one: failure probability 2*exp(-8) ≈ 6.7e-4 per bound.
const DefaultLambda = 4.0

// FailureProb returns the probabilistic bounds' nominal failure
// probability 2*exp(-λ²/2), capped at 1.
func FailureProb(lambda float64) float64 {
	p := 2 * math.Exp(-lambda*lambda/2)
	if p > 1 {
		return 1
	}
	return p
}

// Gamma returns Higham's rounding-accumulation factor
// γ_m(u) = m·u / (1 - m·u) for m accumulated roundings at unit
// roundoff u. The raw formula turns negative (then explodes) once
// m·u >= 1; the classical bounds are vacuous there, so Gamma pins the
// intended reading: +Inf for m·u >= 1, 0 for m <= 0.
func Gamma(m, u float64) float64 {
	if m <= 0 {
		return 0
	}
	mu := m * u
	if mu >= 1 {
		return math.Inf(1)
	}
	return mu / (1 - mu)
}

// BoundPlan names the summation plan whose accumulation-chain height
// the ST bound models. Compensated and reproducible algorithms have
// plan-independent bounds; only the plain sum's error grows with the
// chain it is folded along.
type BoundPlan uint8

const (
	// SerialPlan models the serial left-to-right fold the fused
	// serving path (Selector.Sum, SelectAndSum) executes: chain height
	// n-1. The zero value, so the default.
	SerialPlan BoundPlan = iota
	// BalancedPlan models execution on a balanced reduction tree
	// (grid sweeps, tree-imposed collectives): chain height ⌈log2 n⌉.
	BalancedPlan
)

// String names the plan.
func (pl BoundPlan) String() string {
	if pl == BalancedPlan {
		return "balanced"
	}
	return "serial"
}

// Bound is one algorithm's absolute forward-error bound pair: Det
// always holds; Prob holds with probability at least 1-FailureProb.
type Bound struct {
	Det, Prob float64
}

// boundAlgs sizes the per-algorithm bound table (> the number of
// registered algorithms; indexed by sum.Algorithm).
const boundAlgs = 8

// Bounds holds per-algorithm forward-error bound estimates for one
// profile, evaluated at confidence λ and unit roundoff U. The zero
// value is not meaningful; construct with ComputeBounds (or the
// plan/precision-aware variants).
type Bounds struct {
	// Lambda is the confidence parameter; FailProb the corresponding
	// nominal failure probability 2*exp(-λ²/2) of each Prob bound.
	Lambda   float64
	FailProb float64
	// U is the unit roundoff the bounds were evaluated at
	// (fpu.UnitRoundoff for float64; 2^-24 for the float32 regime).
	U float64
	// Plan is the summation plan the ST bound models.
	Plan BoundPlan
	// N, AbsSum, Sum echo the guarded profile quantities the bounds
	// were computed from (AbsSum is inflated by the profile's own
	// worst-case accumulation error; Sum is the compensated estimate).
	N      int64
	AbsSum float64
	Sum    float64
	// Conclusive is false when the profile was poisoned by non-finite
	// values or the estimates are NaN; every bound is then +Inf and
	// policies must fall back to a non-bound route.
	Conclusive bool
	// ByAlg is the bound table indexed by sum.Algorithm. Use For.
	ByAlg [boundAlgs]Bound
}

// ComputeBounds evaluates the float64 bound estimators for the serial
// serving plan at confidence lambda (<= 0 selects DefaultLambda).
func ComputeBounds(p Profile, lambda float64) Bounds {
	return ComputeBoundsPlan(p, lambda, SerialPlan)
}

// ComputeBoundsPlan is ComputeBounds with an explicit execution plan
// for the plain-sum chain height.
func ComputeBoundsPlan(p Profile, lambda float64, plan BoundPlan) Bounds {
	return ComputeBoundsU(p, lambda, fpu.UnitRoundoff, plan)
}

// ComputeBoundsU evaluates the bound estimators at an arbitrary unit
// roundoff u — the precision-aware form (arXiv:2203.15928). Pass
// u = 0x1p-24 for float32 accumulation over a profile of the exactly
// embedded float32 values (the sum32 regime); the dropped-residual
// models of the float64-specific reproducible engines (BN, PR) are
// only meaningful at u = fpu.UnitRoundoff.
func ComputeBoundsU(p Profile, lambda float64, u float64, plan BoundPlan) Bounds {
	if lambda <= 0 {
		lambda = DefaultLambda
	}
	b := Bounds{
		Lambda:   lambda,
		FailProb: FailureProb(lambda),
		U:        u,
		Plan:     plan,
		N:        p.N,
	}
	n := float64(p.N)
	gN := Gamma(n, u)
	// Guard the plainly accumulated Σ|x| against its own worst-case
	// accumulation error so the reported bounds can never dip below
	// what exact profile quantities would give.
	abs := p.SumAbs.Float64() * (1 + gN)
	s := math.Abs(p.Sum.Float64())
	b.AbsSum, b.Sum = abs, s
	switch {
	case p.NonFinite || math.IsNaN(abs) || math.IsNaN(s):
		for i := range b.ByAlg {
			b.ByAlg[i] = Bound{Det: math.Inf(1), Prob: math.Inf(1)}
		}
		return b
	case p.N <= 1 || abs == 0:
		// A single operand is returned by every rounding-error-free
		// fold exactly, and an all-zero (or empty) set sums to zero
		// under every algorithm; only the windowed prerounding engine
		// can still drop residual bits of a lone operand (the binned
		// engine's deposit is exact, so its bound is zero here too).
		b.Conclusive = true
		if p.N == 1 && abs > 0 {
			maxAbs := math.Ldexp(1, p.MaxExp+1)
			b.ByAlg[sum.PreroundedAlg] = prBound(1, maxAbs, 0)
		}
		return b
	}
	b.Conclusive = true
	// Chain heights. Under the serial serving plan the plain sum folds
	// along the full n-1 chain and the pairwise operator along its
	// blocked-recursion chain (sum.PairwiseChainHeight — the 64-wide
	// serial base case makes it much longer than the ideal ⌈log2 n⌉).
	// Under a balanced execution tree both collapse to the tree height.
	hBal := math.Ceil(math.Log2(n))
	hST := n - 1
	var hPW float64
	if p.N <= 1<<40 {
		hPW = float64(sum.PairwiseChainHeight(int(p.N)))
	} else {
		// Upper bound on the same height (base chain ≤ 63 plus one
		// per level), safe from int conversion at extreme counts.
		hPW = 63 + math.Ceil(math.Log2(n/64))
	}
	if plan == BalancedPlan {
		hST = hBal
		hPW = hBal
	}
	// maxAbs bounds the largest operand magnitude from the profile's
	// extreme exponent; sqrt(abs*maxAbs) bounds the operand 2-norm
	// (Hallman–Ipsen state their probabilistic first-order terms in
	// ‖x‖₂, which the profile does not carry directly).
	maxAbs := math.Ldexp(1, p.MaxExp+1)
	l2 := math.Sqrt(abs * maxAbs)
	if l2 > abs {
		l2 = abs
	}

	// ST / PW — plain recursive summation along a chain of height h.
	// Deterministic: γ_h·Σ|x| (Higham §4.2), rigorous for any data and
	// any accumulation order of that height.
	//
	// Probabilistic: the λ-confidence rms partial-sum estimate. Each
	// rounding contributes an independent mean-zero error of rms
	// u/(2√3) relative to its partial sum (H–I's mean-independence
	// model with the uniform-rounding variance rather than the
	// worst-case magnitude u), and the intermediate sums decompose
	// into a coherent drift toward Σx plus a sign-mixing random walk
	// at the operand 2-norm scale:
	//
	//	serial chain:  Σᵢ sᵢ²     ≈ n·S²/3        + (n/2)·‖x‖₂²
	//	balanced tree: Σ s_node²  ≈ 2·S²          + h·‖x‖₂²
	//	blocked PW:    block serial chains + the split tree above them
	//
	// so the estimate is λ·(u/2√3)·sqrt(coh + walk). Unlike the
	// worst-case γ-shape it sees cancellation (S ≪ Σ|x| shrinks the
	// coherent term), which is what lets the probabilistic policy
	// match a measured calibration table without a sweep. It is an
	// estimator, not a rigorous bound: it assumes sign-mixed operand
	// order (an adversarially sign-sorted input concentrates its
	// partial sums beyond the walk term). The differential validation
	// suite pins its violation rate at ≤ the stated FailProb.
	bb := float64(sum.PairwiseBlock)
	stCoh, stWalk := n*s*s/3, n/2*l2*l2
	pwCoh, pwWalk := stCoh, stWalk
	if n > bb {
		pwCoh = 2*s*s + bb*bb/(3*n)*s*s
		pwWalk = (bb/2 + math.Log2(n/bb)) * l2 * l2
	}
	if plan == BalancedPlan {
		stCoh, stWalk = 2*s*s, hBal*l2*l2
		pwCoh, pwWalk = stCoh, stWalk
	}
	b.ByAlg[sum.StandardAlg] = chainBound(hST, stCoh+stWalk, abs, lambda, u)
	b.ByAlg[sum.PairwiseAlg] = chainBound(hPW, pwCoh+pwWalk, abs, lambda, u)

	// K — Kahan: componentwise backward error 2u + O(n·u²) per operand
	// (Higham Thm 4.8): deterministic (2u + 2γ_n²)·Σ|x|. The
	// probabilistic estimate follows the rms model: the compensation
	// cancels the chain's first-order drift, leaving the final
	// rounding at the |S| scale, a few effective residual roundings at
	// the ‖x‖₂ node scale (hence the factor-2 walk weight, sized on
	// the differential tree sweeps), and the concentrated second-order
	// term λu²√n·Σ|x|.
	kDet := (2*u+2*gN*gN)*abs + u*s
	kProb := math.Min(kDet, lambda*rmsU(u)*math.Sqrt(s*s+4*l2*l2)+lambda*u*u*math.Sqrt(n)*abs+u*s)
	b.ByAlg[sum.KahanAlg] = Bound{Det: kDet, Prob: kProb}

	// N / CP — Neumaier's pair and the double-double composite carry
	// every addition's error exactly and round once at the end:
	// deterministic u·|s| + 2γ_n²·Σ|x| (Neumaier 1974), probabilistic
	// second-order term concentrating as λ·u²·sqrt(n).
	nDet := u*s + 2*gN*gN*abs
	nProb := math.Min(nDet, u*s+2*lambda*u*u*math.Sqrt(n)*abs)
	b.ByAlg[sum.NeumaierAlg] = Bound{Det: nDet, Prob: nProb}
	b.ByAlg[sum.CompositeAlg] = Bound{Det: nDet, Prob: nProb}

	// BN — the full-range binned engine's deposit is fully exact (the
	// third fold's grid sits ≥ 2^12 below any in-window ulp, so no
	// residual is ever dropped; see internal/binned and DESIGN.md), and
	// Finalize returns the correctly-rounded exact sum. The only error
	// is that final rounding, u·|S|, padded by the same 2γ²·Σ|x| guard
	// the exactly-compensated operators carry for the profile's own
	// estimate of |S|.
	bn := u*s + 2*gN*gN*abs
	b.ByAlg[sum.BinnedAlg] = Bound{Det: bn, Prob: bn}

	// PR — the windowed prerounded operator's dropped-residual model
	// (selector.TunePR) at the default configuration; reproducibility
	// is bitwise regardless, only accuracy varies.
	b.ByAlg[sum.PreroundedAlg] = prBound(n, maxAbs, u*s)
	return b
}

// rmsU converts a worst-case unit roundoff into a conservative rms of
// one rounding: uniform in ±ulp(s)/2 with ulp(s) up to 2u·|s| (the
// partial sum sits anywhere in its binade, so the exponent-quantized
// ulp can be twice the relative roundoff), giving 2u/(2√3) = u/√3.
func rmsU(u float64) float64 { return u / math.Sqrt(3) }

// chainBound pairs the rigorous γ_h·Σ|x| deterministic bound of a
// plain accumulation chain of height h with the λ-confidence rms
// estimate over its modeled second moment of partial sums sumSq.
func chainBound(h, sumSq, abs, lambda, u float64) Bound {
	g := Gamma(h, u)
	det := g * abs
	prob := lambda * rmsU(u) * math.Sqrt(sumSq) * (1 + g)
	if prob > det {
		prob = det
	}
	return Bound{Det: det, Prob: prob}
}

// prBound is the prerounded operator's dropped-residual bound at the
// default configuration, plus the final-rounding term us.
func prBound(n, maxAbs, us float64) Bound {
	cfg := sum.DefaultPRConfig()
	dropped := n * math.Ldexp(maxAbs, -(cfg.F-1)*cfg.W+1)
	return Bound{Det: us + dropped, Prob: us + dropped}
}

// For returns the bound pair for alg (+Inf for unregistered values).
func (b Bounds) For(alg sum.Algorithm) Bound {
	if int(alg) >= boundAlgs || !alg.Valid() {
		return Bound{Det: math.Inf(1), Prob: math.Inf(1)}
	}
	return b.ByAlg[alg]
}

// Rel returns alg's bound pair relative to the profiled |Σx| — the
// same normalization the selection tolerance contracts on. A zero sum
// with nonzero operands yields +Inf (no finite relative accuracy can
// be promised); an all-zero or empty set yields 0.
func (b Bounds) Rel(alg sum.Algorithm) Bound {
	ab := b.For(alg)
	if b.AbsSum == 0 {
		return Bound{}
	}
	if b.Sum == 0 {
		return Bound{Det: math.Inf(1), Prob: math.Inf(1)}
	}
	return Bound{Det: ab.Det / b.Sum, Prob: ab.Prob / b.Sum}
}

// String renders the headline bounds.
func (b Bounds) String() string {
	if !b.Conclusive {
		return "bounds{inconclusive}"
	}
	return fmt.Sprintf("bounds{λ=%g p=%.2g ST det=%.3g prob=%.3g N det=%.3g prob=%.3g}",
		b.Lambda, b.FailProb,
		b.ByAlg[sum.StandardAlg].Det, b.ByAlg[sum.StandardAlg].Prob,
		b.ByAlg[sum.NeumaierAlg].Det, b.ByAlg[sum.NeumaierAlg].Prob)
}

// ProbabilisticPolicy selects the cheapest ladder algorithm whose
// λ-confidence relative error bound clears the tolerance — the
// Hallman–Ipsen replacement for both the worst-case heuristic (whose
// deterministic shapes overestimate by ~sqrt(n)) and the measured
// calibration table (whose sweeps cost minutes). Reproducible
// algorithms predict exactly 0 variability whatever their error bound,
// so the ladder walk always terminates.
//
// When the bounds are inconclusive — the profile was poisoned by
// non-finite values, or an overflowed Σ|x| turned the estimates NaN —
// the policy delegates to Fallback (the analytic HeuristicPolicy when
// nil), so the poisoned-path behavior of the serving stack is
// preserved exactly.
type ProbabilisticPolicy struct {
	// Lambda is the confidence parameter (<= 0 selects DefaultLambda):
	// each accepted bound holds with probability 1 - 2*exp(-λ²/2).
	Lambda float64
	// Plan is the summation plan the plain-sum bound models
	// (SerialPlan matches the fused serving path; BalancedPlan the
	// grid sweeps and tree-imposed collectives).
	Plan BoundPlan
	// Fallback handles inconclusive bounds; nil selects the analytic
	// HeuristicPolicy. A CalibratedPolicy is the measured alternative.
	Fallback Policy
}

// NewProbabilisticPolicy returns a ProbabilisticPolicy at the given
// confidence (<= 0 selects DefaultLambda) with the default serial plan
// and heuristic fallback.
func NewProbabilisticPolicy(lambda float64) ProbabilisticPolicy {
	return ProbabilisticPolicy{Lambda: lambda}
}

// lambda returns the effective confidence parameter.
func (pp ProbabilisticPolicy) lambda() float64 {
	if pp.Lambda <= 0 {
		return DefaultLambda
	}
	return pp.Lambda
}

// plan returns the effective bound plan.
func (pp ProbabilisticPolicy) plan() BoundPlan { return pp.Plan }

// Select implements Policy: the cheapest SelectionLadder algorithm
// whose bound-implied variability estimate meets the requirement, with
// the reproducible rungs predicting 0.
//
// The tolerance contract here is the one every policy in this package
// shares: a one-σ relative variability target (HeuristicPolicy's
// shapes are σ-scale estimates compared directly; CalibratedPolicy
// measures σ and applies its own safety factor). The probabilistic
// entries are λ-confidence levels — λ·σ under the rms model — so the
// policy divides by λ to recover the σ estimate; equivalently, it
// accepts when the λ-confidence bound stays within λ× the target.
// Comparing the λ-level itself against the tolerance would silently
// re-introduce a worst-case safety factor and make the policy
// systematically more conservative than a calibration table at the
// same tolerance.
func (pp ProbabilisticPolicy) Select(p Profile, req Requirement) (sum.Algorithm, float64) {
	b := ComputeBoundsPlan(p, pp.lambda(), pp.plan())
	if !b.Conclusive {
		fb := pp.Fallback
		if fb == nil {
			fb = NewHeuristicPolicy()
		}
		return fb.Select(p, req)
	}
	for _, alg := range sum.SelectionLadder {
		var pred float64
		if !alg.Reproducible() {
			pred = b.Rel(alg).Prob / b.Lambda
		}
		if pred <= req.Tolerance {
			return alg, pred
		}
	}
	return sum.CheapestReproducible(), 0
}

// boundsFor evaluates the bound estimators a decision should carry:
// at the policy's own confidence and plan when the policy is
// bound-driven, at the defaults otherwise.
func boundsFor(pol Policy, p Profile) Bounds {
	if pp, ok := pol.(ProbabilisticPolicy); ok {
		return ComputeBoundsPlan(p, pp.lambda(), pp.plan())
	}
	return ComputeBounds(p, 0)
}
