package selector

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
)

// Empty-merge identity audit (issue 6, satellite 3): merging a profile
// with an empty one (zero observations) must be an exact identity that
// keeps the compensated Σx pair bit-correct. The general merge path is
// value-preserving but not bit-preserving: IEEE addition and TwoSum
// against a zero pair turn a -0 component into +0, so without the
// identity short-circuit the number of empty shards in a reduction
// tree could perturb the bits of a fused speculative Neumaier result.

// bitsEqual compares two profiles field-by-field with float components
// compared by bit pattern (reflect.DeepEqual uses ==, which cannot see
// a -0/+0 flip).
func bitsEqual(a, b Profile) bool {
	return a.N == b.N &&
		math.Float64bits(a.Sum.S) == math.Float64bits(b.Sum.S) &&
		math.Float64bits(a.Sum.C) == math.Float64bits(b.Sum.C) &&
		math.Float64bits(a.SumAbs.S) == math.Float64bits(b.SumAbs.S) &&
		math.Float64bits(a.SumAbs.C) == math.Float64bits(b.SumAbs.C) &&
		a.MaxExp == b.MaxExp && a.MinExp == b.MinExp &&
		a.HasNonzero == b.HasNonzero &&
		a.Pos == b.Pos && a.Neg == b.Neg &&
		a.NonFinite == b.NonFinite
}

// mergeCorpus returns profiles spanning the merge surface, including
// hand-built states with -0 components that no streaming fold produces
// but the exported Profile type admits (persisted or foreign states).
func mergeCorpus(t *testing.T) map[string]Profile {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	corpus := map[string]Profile{
		"empty":        {},
		"single":       ProfileOf([]float64{math.Pi}),
		"zeros-only":   ProfileOf([]float64{0, 0}),
		"cancelling":   ProfileOf([]float64{1e16, 1, -1e16}),
		"poisoned":     ProfileOf([]float64{math.NaN()}),
		"poisoned-n0":  {NonFinite: true},
		"neg-zero-s":   {N: 2, Sum: CSum{S: math.Copysign(0, -1)}, SumAbs: CSum{S: 2}, HasNonzero: true, Pos: 1, Neg: 1},
		"neg-zero-c":   {N: 2, Sum: CSum{S: 1, C: math.Copysign(0, -1)}, SumAbs: CSum{S: 3}, HasNonzero: true, Pos: 1, Neg: 1},
		"neg-zero-abs": {N: 1, SumAbs: CSum{C: math.Copysign(0, -1)}, Pos: 1},
	}
	for i := 0; i < 8; i++ {
		xs := gen.Spec{
			N:        1 + rng.Intn(2000),
			Cond:     math.Pow(10, float64(rng.Intn(12))),
			DynRange: rng.Intn(40),
			Seed:     uint64(100 + i),
		}.Generate()
		corpus[string(rune('a'+i))+"-random"] = ProfileOf(xs)
	}
	return corpus
}

// TestMergeEmptyIdentity: p.Merge(empty) and empty.Merge(p) return p
// bit-for-bit, for every profile in the corpus, against both the
// zero-value empty profile and a zeros-only profile... the latter has
// observations (N > 0) and must NOT short-circuit, but still preserves
// the other side's derived quantities.
func TestMergeEmptyIdentity(t *testing.T) {
	var empty Profile
	for name, p := range mergeCorpus(t) {
		if got := p.Merge(empty); !bitsEqual(got, p) {
			t.Errorf("%s: p.Merge(empty) = %+v, want %+v", name, got, p)
		}
		if got := empty.Merge(p); !bitsEqual(got, p) {
			t.Errorf("%s: empty.Merge(p) = %+v, want %+v", name, got, p)
		}
	}
	if got := empty.Merge(empty); !bitsEqual(got, empty) {
		t.Errorf("empty.Merge(empty) = %+v, want zero value", got)
	}
}

// TestMergeEmptyShardsInvariant: folding empty shards into a merge
// tree at any position leaves the final profile bit-identical — the
// property the identity short-circuit exists to guarantee.
func TestMergeEmptyShardsInvariant(t *testing.T) {
	xs := gen.Spec{N: 4096, Cond: 1e8, DynRange: 24, Seed: 7}.Generate()
	chunk := 512
	var parts []Profile
	for lo := 0; lo < len(xs); lo += chunk {
		parts = append(parts, ProfileOf(xs[lo:lo+chunk]))
	}
	fold := func(ps []Profile) Profile {
		var acc Profile
		for _, p := range ps {
			acc = acc.Merge(p)
		}
		return acc
	}
	want := fold(parts)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		withEmpties := make([]Profile, 0, 2*len(parts))
		for _, p := range parts {
			for rng.Intn(3) == 0 {
				withEmpties = append(withEmpties, Profile{})
			}
			withEmpties = append(withEmpties, p)
		}
		withEmpties = append(withEmpties, Profile{})
		if got := fold(withEmpties); !bitsEqual(got, want) {
			t.Fatalf("trial %d: empty shards perturbed the merge: %+v vs %+v",
				trial, got, want)
		}
	}
}

// TestMergeEmptyPoisonPropagates: the short-circuit must not swallow
// the poison flag — a poisoned zero-observation profile (NonFinite set,
// N == 0 is not constructible by observation but is by merge surface)
// still poisons the result.
func TestMergeEmptyPoisonPropagates(t *testing.T) {
	p := ProfileOf([]float64{1, 2, 3})
	poison := Profile{NonFinite: true}
	if got := p.Merge(poison); !got.NonFinite || got.N != p.N {
		t.Errorf("p.Merge(poison) = %+v, want poisoned with N=%d", got, p.N)
	}
	if got := poison.Merge(p); !got.NonFinite || got.N != p.N {
		t.Errorf("poison.Merge(p) = %+v, want poisoned with N=%d", got, p.N)
	}
}
