package selector

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/grid"
	"repro/internal/sum"
)

// Calibration persistence: a CalibratedPolicy's sweep is expensive, so
// deployments run it once and ship the table. The format is CSV with
// one row per (cell, algorithm):
//
//	n,cond,dr,measured_k,measured_dr,alg,stddev,rel_stddev,max_err,distinct

// SaveCells writes a calibration table.
func SaveCells(w io.Writer, cells []grid.CellResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"n", "cond", "dr", "measured_k", "measured_dr",
		"alg", "stddev", "rel_stddev", "max_err", "distinct",
	}); err != nil {
		return err
	}
	for _, c := range cells {
		for _, alg := range sum.Algorithms {
			sd, ok := c.StdDev[alg]
			if !ok {
				continue
			}
			rec := []string{
				strconv.Itoa(c.Spec.N),
				formatFloat(c.Spec.Cond),
				strconv.Itoa(c.Spec.DynRange),
				formatFloat(c.MeasuredK),
				strconv.Itoa(c.MeasuredDR),
				alg.String(),
				formatFloat(sd),
				formatFloat(c.RelStdDev[alg]),
				formatFloat(c.MaxErr[alg]),
				strconv.Itoa(c.Distinct[alg]),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCells reads a calibration table written by SaveCells.
func LoadCells(r io.Reader) ([]grid.CellResult, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("selector: empty calibration table")
	}
	var out []grid.CellResult
	index := map[grid.CellSpec]int{}
	for i, row := range rows {
		if i == 0 {
			continue // header
		}
		if len(row) != 10 {
			return nil, fmt.Errorf("selector: row %d has %d fields, want 10", i, len(row))
		}
		n, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		cond, err := parseFloat(row[1])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		dr, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		spec := grid.CellSpec{N: n, Cond: cond, DynRange: dr}
		idx, ok := index[spec]
		if !ok {
			mk, err := parseFloat(row[3])
			if err != nil {
				return nil, fmt.Errorf("selector: row %d: %w", i, err)
			}
			mdr, err := strconv.Atoi(row[4])
			if err != nil {
				return nil, fmt.Errorf("selector: row %d: %w", i, err)
			}
			out = append(out, grid.CellResult{
				Spec:       spec,
				MeasuredK:  mk,
				MeasuredDR: mdr,
				StdDev:     map[sum.Algorithm]float64{},
				RelStdDev:  map[sum.Algorithm]float64{},
				MaxErr:     map[sum.Algorithm]float64{},
				Distinct:   map[sum.Algorithm]int{},
			})
			idx = len(out) - 1
			index[spec] = idx
		}
		alg, err := sum.ParseAlgorithm(row[5])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		sd, err := parseFloat(row[6])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		rel, err := parseFloat(row[7])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		maxErr, err := parseFloat(row[8])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		distinct, err := strconv.Atoi(row[9])
		if err != nil {
			return nil, fmt.Errorf("selector: row %d: %w", i, err)
		}
		cell := &out[idx]
		cell.StdDev[alg] = sd
		cell.RelStdDev[alg] = rel
		cell.MaxErr[alg] = maxErr
		cell.Distinct[alg] = distinct
	}
	return out, nil
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func parseFloat(s string) (float64, error) {
	if s == "inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}
