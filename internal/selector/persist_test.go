package selector

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/sum"
	"repro/internal/tree"
)

func TestSaveLoadCellsRoundTrip(t *testing.T) {
	pol := Calibrate(CalibrationConfig{
		Ns:     []int{256},
		Ks:     []float64{1, 1e4, math.Inf(1)},
		DRs:    []int{0, 16},
		Trials: 10,
		Shape:  tree.Balanced,
		Seed:   1,
	})
	var buf bytes.Buffer
	if err := SaveCells(&buf, pol.Cells()); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCells(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(pol.Cells()) {
		t.Fatalf("loaded %d cells, want %d", len(loaded), len(pol.Cells()))
	}
	for i, want := range pol.Cells() {
		got := loaded[i]
		if got.Spec != want.Spec {
			t.Errorf("cell %d spec %v != %v", i, got.Spec, want.Spec)
		}
		if got.MeasuredDR != want.MeasuredDR {
			t.Errorf("cell %d measured dr", i)
		}
		if !sameFloat(got.MeasuredK, want.MeasuredK) {
			t.Errorf("cell %d measured k: %g vs %g", i, got.MeasuredK, want.MeasuredK)
		}
		for _, alg := range sum.PaperAlgorithms {
			if !sameFloat(got.StdDev[alg], want.StdDev[alg]) ||
				!sameFloat(got.RelStdDev[alg], want.RelStdDev[alg]) ||
				!sameFloat(got.MaxErr[alg], want.MaxErr[alg]) ||
				got.Distinct[alg] != want.Distinct[alg] {
				t.Errorf("cell %d alg %v metrics differ", i, alg)
			}
		}
	}
	// A policy rebuilt from the loaded table must make identical
	// decisions.
	rebuilt := NewCalibratedPolicy(loaded, 4)
	p := ProfileOf(gen.Spec{N: 256, Cond: 1e4, DynRange: 16, Seed: 9}.Generate())
	for _, tol := range []float64{1e-9, 1e-13, 0} {
		a1, _ := pol.Select(p, Requirement{Tolerance: tol})
		a2, _ := rebuilt.Select(p, Requirement{Tolerance: tol})
		if a1 != a2 {
			t.Errorf("tol %g: decisions differ: %v vs %v", tol, a1, a2)
		}
	}
}

func sameFloat(a, b float64) bool {
	return a == b || (math.IsInf(a, 1) && math.IsInf(b, 1)) || (math.IsNaN(a) && math.IsNaN(b))
}

func TestLoadCellsRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"n,cond\n1,2,3\n",
		"h1,h2,h3,h4,h5,h6,h7,h8,h9,h10\nx,1,0,1,0,ST,0,0,0,1\n",
		"h1,h2,h3,h4,h5,h6,h7,h8,h9,h10\n1,1,0,1,0,NOPE,0,0,0,1\n",
	}
	for i, c := range cases {
		if _, err := LoadCells(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}
