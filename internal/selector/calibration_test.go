package selector

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/sum"
)

// quickHarness is a seconds-scale calibration for tests (and the model
// for cmd/calibrate -quick).
func quickHarness() HarnessConfig {
	return HarnessConfig{
		Accuracy: CalibrationConfig{
			Ns:     []int{256, 1024},
			Ks:     []float64{1, 1e4, 1e8},
			DRs:    []int{0, 16},
			Trials: 8,
			Seed:   11,
		},
		Cost: CostSweepConfig{
			Algorithms: []sum.Algorithm{sum.StandardAlg, sum.BinnedAlg},
			Ns:         []int{256},
			Workers:    []int{0},
			LaneWidths: []int{1},
			MinTime:    100 * time.Microsecond,
			Reps:       1,
		},
		Host: "test-host",
	}
}

// awkwardCalibration hand-builds an artifact whose floats exercise every
// encoding edge: NaN, both infinities, negative zero, and subnormals.
func awkwardCalibration() *Calibration {
	return &Calibration{
		Host:       "host with spaces and trailing  ",
		Safety:     4,
		Seed:       123456789,
		Trials:     50,
		Shape:      2,
		TrialBlock: 32,
		Cells: []grid.CellResult{
			{
				Spec:       grid.CellSpec{N: 1024, Cond: math.Inf(1), DynRange: 16},
				MeasuredK:  math.NaN(),
				MeasuredDR: 12,
				StdDev:     map[sum.Algorithm]float64{sum.StandardAlg: 5e-324, sum.BinnedAlg: math.Copysign(0, -1)},
				RelStdDev:  map[sum.Algorithm]float64{sum.StandardAlg: math.Inf(1), sum.BinnedAlg: 0},
				MaxErr:     map[sum.Algorithm]float64{sum.StandardAlg: math.Inf(-1), sum.BinnedAlg: math.NaN()},
				Distinct:   map[sum.Algorithm]int{sum.StandardAlg: 50, sum.BinnedAlg: 1},
			},
		},
		Costs: []CostSample{
			{Alg: sum.KahanAlg, N: 4096, Workers: 8, LaneWidth: 4, NsPerOp: 1234.5678901234},
		},
	}
}

// TestCalibrationRoundTripBytes pins the canonical encoding: encode →
// decode → re-encode must be byte-identical, for a real measured
// artifact and for one built from every awkward float the format must
// carry.
func TestCalibrationRoundTripBytes(t *testing.T) {
	for _, tc := range []struct {
		name string
		cal  *Calibration
	}{
		{"measured", RunCalibration(quickHarness())},
		{"awkward floats", awkwardCalibration()},
		{"empty", &Calibration{Host: "", Safety: 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var first bytes.Buffer
			if err := SaveCalibration(&first, tc.cal); err != nil {
				t.Fatalf("save: %v", err)
			}
			loaded, err := LoadCalibration(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			var second bytes.Buffer
			if err := SaveCalibration(&second, loaded); err != nil {
				t.Fatalf("re-save: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("re-encode differs from original encode:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
			}
		})
	}
}

// TestCalibrationRejectsBadArtifacts pins the failure modes: an unknown
// version line fails before any content parse, and a truncation at any
// line boundary is detected (every declared count must be present, down
// to the end marker).
func TestCalibrationRejectsBadArtifacts(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCalibration(&buf, awkwardCalibration()); err != nil {
		t.Fatalf("save: %v", err)
	}
	full := buf.String()

	t.Run("unknown version", func(t *testing.T) {
		doctored := strings.Replace(full, "reprocal v1", "reprocal v99", 1)
		if _, err := LoadCalibration(strings.NewReader(doctored)); err == nil {
			t.Error("v99 artifact loaded, want version rejection")
		} else if !strings.Contains(err.Error(), "unsupported") {
			t.Errorf("v99 artifact error %q does not name the version problem", err)
		}
	})

	t.Run("foreign file", func(t *testing.T) {
		if _, err := LoadCalibration(strings.NewReader("n,cond,dr\n1024,1,0\n")); err == nil {
			t.Error("CSV table loaded as a calibration artifact, want rejection")
		}
	})

	t.Run("empty file", func(t *testing.T) {
		if _, err := LoadCalibration(strings.NewReader("")); err == nil {
			t.Error("empty file loaded, want truncation error")
		}
	})

	t.Run("truncated at every line", func(t *testing.T) {
		lines := strings.SplitAfter(full, "\n")
		for cut := 1; cut < len(lines); cut++ {
			prefix := strings.Join(lines[:cut], "")
			if strings.HasSuffix(prefix, "end reprocal\n") {
				continue
			}
			if _, err := LoadCalibration(strings.NewReader(prefix)); err == nil {
				t.Errorf("artifact truncated after %d lines loaded without error", cut)
			}
		}
	})

	t.Run("corrupt count", func(t *testing.T) {
		doctored := strings.Replace(full, "cells 1", "cells 7", 1)
		if _, err := LoadCalibration(strings.NewReader(doctored)); err == nil {
			t.Error("artifact claiming more cells than present loaded, want truncation error")
		}
	})
}

// TestCalibrationLoadedSurfaceMatchesInMemory is the hit==miss pin for
// persistence: across the fig12 audit grid, the surface fitted from a
// saved-then-loaded artifact must make exactly the decisions of the
// surface fitted from the in-memory measurement.
func TestCalibrationLoadedSurfaceMatchesInMemory(t *testing.T) {
	cal := RunCalibration(quickHarness())
	var buf bytes.Buffer
	if err := SaveCalibration(&buf, cal); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := LoadCalibration(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	mem, disk := cal.SurfacePolicy(), loaded.SurfacePolicy()
	for _, tol := range fig12Thresholds {
		req := Requirement{Tolerance: tol}
		for _, p := range auditProfiles() {
			memAlg, memPred := mem.Select(p, req)
			diskAlg, diskPred := disk.Select(p, req)
			if memAlg != diskAlg || math.Float64bits(memPred) != math.Float64bits(diskPred) {
				t.Fatalf("tol %.3g n=%d k=%.3g dr=%d: loaded surface %v/%x, in-memory %v/%x",
					tol, p.N, p.Cond(), p.DynRange(),
					diskAlg, math.Float64bits(diskPred), memAlg, math.Float64bits(memPred))
			}
		}
	}
}

// TestCheckCalibration verifies the drift probe in both directions: a
// fresh artifact re-probes clean (the sweep is deterministic given the
// stored seeds), and an artificially perturbed accuracy cell is
// flagged. Cost probes use a huge factor so scheduler noise cannot make
// the fresh-pass half flaky.
func TestCheckCalibration(t *testing.T) {
	cal := RunCalibration(quickHarness())

	check := CheckCalibration(cal, 3, 1e9)
	if len(check.AccuracyDrift) > 0 {
		t.Errorf("fresh artifact flagged accuracy drift: %v", check.AccuracyDrift)
	}
	if check.AccuracyProbes == 0 || check.CostProbes == 0 {
		t.Errorf("probe counts %d/%d, want both nonzero", check.AccuracyProbes, check.CostProbes)
	}
	if check.Drifted() && len(check.CostDrift) == 0 {
		t.Error("Drifted() true without any drift lines")
	}

	// Perturb the first probed cell's ST measurement: the re-run must
	// disagree bitwise and flag it.
	perturbed := *cal
	perturbed.Cells = append([]grid.CellResult(nil), cal.Cells...)
	target := perturbed.Cells[0]
	rel := map[sum.Algorithm]float64{}
	for alg, v := range target.RelStdDev {
		rel[alg] = v
	}
	rel[sum.StandardAlg] = rel[sum.StandardAlg]*2 + 1e-30
	target.RelStdDev = rel
	perturbed.Cells[0] = target
	check = CheckCalibration(&perturbed, 3, 1e9)
	if len(check.AccuracyDrift) == 0 {
		t.Error("perturbed artifact not flagged by accuracy probes")
	}
	if !check.Drifted() {
		t.Error("Drifted() false on perturbed artifact")
	}
}

// TestCompareCalibrations pins the diff used by benchjson -compare:
// identical artifacts produce no deltas, a perturbed cell produces an
// accuracy delta with the right magnitude, a perturbed cost sample a
// cost delta, and envelope changes land in Added/Removed without
// gating.
func TestCompareCalibrations(t *testing.T) {
	base := RunCalibration(quickHarness())

	if cmp := CompareCalibrations(base, base); len(cmp.Deltas) != 0 || cmp.Exceeds(0) {
		t.Errorf("self-comparison produced deltas: %+v", cmp.Deltas)
	}

	// Perturb the first cell whose ST measurement is nonzero and finite
	// (a 1.5x change of an exact 0 is still 0).
	ci := -1
	for i, c := range base.Cells {
		if v := c.RelStdDev[sum.StandardAlg]; v > 0 && !math.IsInf(v, 0) {
			ci = i
			break
		}
	}
	if ci < 0 {
		t.Fatal("no cell with nonzero finite ST variability to perturb")
	}
	mod := *base
	mod.Cells = append([]grid.CellResult(nil), base.Cells...)
	cell := mod.Cells[ci]
	rel := map[sum.Algorithm]float64{}
	for alg, v := range cell.RelStdDev {
		rel[alg] = v
	}
	rel[sum.StandardAlg] = rel[sum.StandardAlg] * 1.5
	cell.RelStdDev = rel
	mod.Cells[ci] = cell
	cmp := CompareCalibrations(base, &mod)
	if cmp.MaxAccuracyPct < 49 || cmp.MaxAccuracyPct > 51 {
		t.Errorf("1.5x accuracy perturbation reported %.2f%%, want ~50%%", cmp.MaxAccuracyPct)
	}
	if !cmp.Exceeds(10) || cmp.Exceeds(60) {
		t.Errorf("threshold gating wrong for 50%% drift: exceeds(10)=%v exceeds(60)=%v", cmp.Exceeds(10), cmp.Exceeds(60))
	}

	mod2 := *base
	mod2.Costs = append([]CostSample(nil), base.Costs...)
	if len(mod2.Costs) == 0 {
		t.Fatal("quick harness produced no cost samples")
	}
	mod2.Costs[0].NsPerOp *= 3
	cmp = CompareCalibrations(base, &mod2)
	if cmp.MaxCostPct < 199 || cmp.MaxCostPct > 201 {
		t.Errorf("3x cost perturbation reported %.2f%%, want ~200%%", cmp.MaxCostPct)
	}

	mod3 := *base
	mod3.Cells = base.Cells[1:]
	cmp = CompareCalibrations(base, &mod3)
	if len(cmp.Removed) == 0 {
		t.Error("dropped cell not reported in Removed")
	}
	if cmp.Exceeds(0) {
		t.Error("envelope change alone must not gate")
	}
}

// TestCostSweep pins the sweep's degenerate-input contract: every
// emitted sample is finite and positive, serial rows are scalar-only,
// and an invalid lane width (a panicking engine combination) is dropped
// instead of emitted or propagated.
func TestCostSweep(t *testing.T) {
	samples := CostSweep(CostSweepConfig{
		Algorithms: []sum.Algorithm{sum.StandardAlg, sum.BinnedAlg},
		Ns:         []int{128},
		Workers:    []int{0, 2},
		LaneWidths: []int{1, 3}, // 3 is invalid: parallel.Sum panics on it
		MinTime:    50 * time.Microsecond,
		Reps:       1,
	})
	if len(samples) == 0 {
		t.Fatal("no cost samples")
	}
	laneSeen := map[int]bool{}
	for _, s := range samples {
		if !(s.NsPerOp > 0) || math.IsInf(s.NsPerOp, 0) {
			t.Errorf("unusable sample emitted: %+v", s)
		}
		if s.Workers == 0 && s.LaneWidth != 1 {
			t.Errorf("serial sample with lane width %d: %+v", s.LaneWidth, s)
		}
		laneSeen[s.LaneWidth] = true
	}
	if laneSeen[3] {
		t.Error("invalid lane width 3 produced samples, want dropped")
	}
	if !laneSeen[1] {
		t.Error("valid lane width 1 produced no samples")
	}

	// The real samples must feed the fit cleanly end to end.
	p := ProfileOf(gen.Spec{N: 1024, Cond: 1e4, DynRange: 8, Seed: 900}.Generate())
	surface := FitSurface(syntheticTable().Cells(), samples, 4)
	if alg, pred := surface.Select(p, Requirement{Tolerance: 1e-9}); pred > 1e-9 {
		t.Errorf("surface with measured costs returned %v at pred %.3g above tolerance", alg, pred)
	}
}
