package selector

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/parallel"
	"repro/internal/sum"
)

func fbits(v float64) uint64 { return math.Float64bits(v) }

// fusedCases spans the generator corners plus the fused loop's
// special-cased inputs: zeros (both signs), subnormals, poison, empty.
func fusedCases() map[string][]float64 {
	cases := map[string][]float64{
		"empty":  nil,
		"single": {3.25},
		"zeros":  {0, math.Copysign(0, -1), 0},
	}
	for name, spec := range map[string]gen.Spec{
		"benign":    {N: 5000, Cond: 1, DynRange: 8, Seed: 21},
		"illcond":   {N: 5000, Cond: 1e8, DynRange: 24, Seed: 22},
		"sumzero":   {N: 5000, Cond: math.Inf(1), DynRange: 32, Seed: 23},
		"widerange": {N: 4097, Cond: 1e4, DynRange: 40, Seed: 24},
	} {
		cases[name] = spec.Generate()
	}
	sub := make([]float64, 999)
	for i := range sub {
		sub[i] = math.Ldexp(float64(i%5+1), -1070-i%4)
	}
	cases["subnormal"] = sub
	poisoned := gen.Spec{N: 1000, Cond: 1, DynRange: 4, Seed: 25}.Generate()
	poisoned[500] = math.Inf(-1)
	cases["poisoned"] = poisoned
	nan := gen.Spec{N: 1000, Cond: 1, DynRange: 4, Seed: 26}.Generate()
	nan[7] = math.NaN()
	cases["nan"] = nan
	return cases
}

// TestFusedPassMatchesProfileOf pins the fused pass's profile
// bit-identical (struct equality, compensated pairs included) to the
// legacy ProfileOf, and its speculative sums to the serial operators.
func TestFusedPassMatchesProfileOf(t *testing.T) {
	for name, xs := range fusedCases() {
		fp := FusedProfileSum(xs)
		if fp.Profile != ProfileOf(xs) {
			t.Errorf("%s: fused profile %+v != ProfileOf %+v", name, fp.Profile, ProfileOf(xs))
		}
		if fbits(fp.ST) != fbits(sum.Standard(xs)) {
			t.Errorf("%s: fused ST != sum.Standard", name)
		}
	}
}

// TestFusedSpecSum pins the speculation protocol: ST always served,
// Neumaier served bit-identical to sum.Neumaier on clean data and
// refused on poisoned or overflowed accumulations, everything else
// escalated.
func TestFusedSpecSum(t *testing.T) {
	for name, xs := range fusedCases() {
		fp := FusedProfileSum(xs)
		v, ok := fp.SpecSum(sum.StandardAlg)
		if !ok || fbits(v) != fbits(sum.Standard(xs)) {
			t.Errorf("%s: ST speculation wrong (ok=%v)", name, ok)
		}
		v, ok = fp.SpecSum(sum.NeumaierAlg)
		if fp.Profile.NonFinite {
			if ok {
				t.Errorf("%s: Neumaier speculation served on poisoned data", name)
			}
		} else if !ok || fbits(v) != fbits(sum.Neumaier(xs)) {
			t.Errorf("%s: Neumaier speculation wrong (ok=%v, %x vs %x)",
				name, ok, fbits(v), fbits(sum.Neumaier(xs)))
		}
		for _, alg := range []sum.Algorithm{sum.PairwiseAlg, sum.KahanAlg,
			sum.CompositeAlg, sum.PreroundedAlg} {
			if _, ok := fp.SpecSum(alg); ok {
				t.Errorf("%s: speculation claimed to hold %v", name, alg)
			}
		}
	}
	// Intermediate overflow: the pair goes non-finite while no input is,
	// and speculation must refuse rather than return bits that can
	// diverge from the branched recurrence.
	over := []float64{1e308, 1e308, -1e308}
	fp := FusedProfileSum(over)
	if fp.Profile.NonFinite {
		t.Fatal("overflowed accumulator must not set the input poison flag")
	}
	if _, ok := fp.SpecSum(sum.NeumaierAlg); ok {
		t.Error("Neumaier speculation served past an intermediate overflow")
	}
}

// TestSelectorSumFusedEquivalence pins the rewired Selector.Sum
// bit-identical to the legacy two-pass route (profile, policy, then
// alg.Sum) for every tolerance regime, including escalations.
func TestSelectorSumFusedEquivalence(t *testing.T) {
	for name, xs := range fusedCases() {
		for _, tol := range []float64{1e-6, 1e-9, 1e-12, 1e-15, 0} {
			s := New(tol)
			got, alg := s.Sum(xs)
			wantAlg, _ := s.Policy.Select(ProfileOf(xs), s.Req)
			if alg != wantAlg {
				t.Errorf("%s tol=%g: fused chose %v, legacy %v", name, tol, alg, wantAlg)
				continue
			}
			if want := wantAlg.Sum(xs); fbits(got) != fbits(want) {
				t.Errorf("%s tol=%g (%v): fused %x != legacy %x",
					name, tol, alg, fbits(got), fbits(want))
			}
		}
	}
}

// TestSelectorSumStaticAlgorithms forces every algorithm through the
// fused route with a Static policy and pins the result against the
// algorithm's own serial operator — fast paths and escalations alike.
func TestSelectorSumStaticAlgorithms(t *testing.T) {
	for name, xs := range fusedCases() {
		for _, alg := range sum.Algorithms {
			s := New(0)
			s.Policy = Static{Alg: alg}
			got, chosen := s.Sum(xs)
			if chosen != alg {
				t.Fatalf("%s: Static policy ignored: %v", name, chosen)
			}
			if want := alg.Sum(xs); fbits(got) != fbits(want) {
				t.Errorf("%s %v: fused %x != serial %x", name, alg, fbits(got), fbits(want))
			}
		}
	}
}

// TestSelectAndSumEquivalence pins the serving call against the legacy
// core-style route: poisoned inputs fall back to sum.Standard, PR
// selections run the TunePR configuration, everything else alg.Sum.
func TestSelectAndSumEquivalence(t *testing.T) {
	for name, xs := range fusedCases() {
		for _, tol := range []float64{1e-6, 1e-12, 0} {
			s := New(tol)
			got, sel := s.SelectAndSum(xs)
			prof := ProfileOf(xs)
			if sel.Profile != prof {
				t.Errorf("%s tol=%g: selection profile diverges", name, tol)
			}
			var want float64
			switch {
			case prof.NonFinite:
				want = sum.Standard(xs)
				if !sel.NonFinite || sel.Alg != sum.StandardAlg || !sel.Fast {
					t.Errorf("%s tol=%g: poisoned selection %+v", name, tol, sel)
				}
			default:
				alg, _ := s.Policy.Select(prof, s.Req)
				if alg != sel.Alg {
					t.Errorf("%s tol=%g: chose %v, legacy %v", name, tol, sel.Alg, alg)
					continue
				}
				if alg == sum.PreroundedAlg {
					cfg := TunePR(prof, s.Req)
					if sel.PR == nil || *sel.PR != cfg {
						t.Errorf("%s tol=%g: PR config %+v, want %+v", name, tol, sel.PR, cfg)
					}
					want = sum.PreroundedWith(cfg, xs)
				} else {
					want = alg.Sum(xs)
				}
				if wantFast := alg == sum.StandardAlg || alg == sum.NeumaierAlg; sel.Fast != wantFast {
					t.Errorf("%s tol=%g (%v): Fast=%v", name, tol, alg, sel.Fast)
				}
			}
			if fbits(got) != fbits(want) {
				t.Errorf("%s tol=%g (%v): %x != %x", name, tol, sel.Alg, fbits(got), fbits(want))
			}
		}
	}
}

// TestSelectAndSumParallelEquivalence pins the engine variant against
// the legacy two-pass parallel route at several worker counts: same
// profile bits, same selection, same sum bits. Worker count must not
// change any of it.
func TestSelectAndSumParallelEquivalence(t *testing.T) {
	for name, xs := range fusedCases() {
		for _, workers := range []int{1, 2, 4, 7} {
			cfg := parallel.Config{Workers: workers, ChunkSize: 1 << 9}
			for _, tol := range []float64{1e-6, 1e-12, 0} {
				s := New(tol)
				got, sel, ok := s.SelectAndSumParallel(xs, cfg)
				if !ok {
					t.Fatalf("%s w=%d: engine refused lane width 1", name, workers)
				}
				prof := ProfileOfParallel(xs, cfg)
				if sel.Profile != prof {
					t.Errorf("%s w=%d tol=%g: profile diverges from ProfileOfParallel",
						name, workers, tol)
				}
				var want float64
				switch {
				case prof.NonFinite:
					want = sum.Standard(xs) // legacy engine fallback is the serial ST pass
				default:
					alg, _ := s.Policy.Select(prof, s.Req)
					if alg != sel.Alg {
						t.Errorf("%s w=%d tol=%g: chose %v, legacy %v",
							name, workers, tol, sel.Alg, alg)
						continue
					}
					if alg == sum.PreroundedAlg {
						want = parallel.SumPR(TunePR(prof, s.Req), xs, cfg)
					} else {
						want = parallel.Sum(alg, xs, cfg)
					}
				}
				if fbits(got) != fbits(want) {
					t.Errorf("%s w=%d tol=%g (%v): %x != %x",
						name, workers, tol, sel.Alg, fbits(got), fbits(want))
				}
			}
			// Forced Neumaier exercises the compensated-pair fast path on
			// the engine.
			s := New(0)
			s.Policy = Static{Alg: sum.NeumaierAlg}
			got, sel, ok := s.SelectAndSumParallel(xs, cfg)
			if !ok {
				t.Fatal("engine refused")
			}
			if !sel.Profile.NonFinite {
				if want := parallel.Sum(sum.NeumaierAlg, xs, cfg); fbits(got) != fbits(want) {
					t.Errorf("%s w=%d: engine Neumaier fast path %x != parallel.Sum %x",
						name, workers, fbits(got), fbits(want))
				}
			}
		}
	}
}

// TestSelectAndSumParallelLaneFallback: lane plans are not fused; the
// engine variant must decline so callers take the legacy route.
func TestSelectAndSumParallelLaneFallback(t *testing.T) {
	xs := gen.Spec{N: 4096, Cond: 1, DynRange: 4, Seed: 31}.Generate()
	s := New(1e-9)
	if _, _, ok := s.SelectAndSumParallel(xs, parallel.Config{LaneWidth: 2}); ok {
		t.Error("fused engine served a lane-width-2 plan")
	}
}

// TestFusedFastPathAllocs pins the speculative serving calls as
// allocation-free on the ST and Neumaier fast paths — the acceptance
// bar for the steady-state serving loop.
func TestFusedFastPathAllocs(t *testing.T) {
	xs := gen.Spec{N: 4096, Cond: 1, DynRange: 4, Seed: 32}.Generate()
	var sink float64
	st := New(1e-9) // analytic policy picks ST for this data
	if a, _ := st.Choose(xs); a != sum.StandardAlg {
		t.Fatal("fixture no longer selects ST")
	}
	if n := testing.AllocsPerRun(100, func() {
		sink, _ = st.SelectAndSum(xs)
	}); n != 0 {
		t.Errorf("ST fast path allocates %v per run", n)
	}
	nm := New(0)
	nm.Policy = Static{Alg: sum.NeumaierAlg}
	if n := testing.AllocsPerRun(100, func() {
		sink, _ = nm.SelectAndSum(xs)
	}); n != 0 {
		t.Errorf("Neumaier fast path allocates %v per run", n)
	}
	_ = sink
}
