package selector

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"

	"repro/internal/fpu"
	"repro/internal/grid"
	"repro/internal/sum"
	"repro/internal/tree"
)

// Versioned calibration artifact: everything cmd/calibrate measures on
// a host — the accuracy sweep cells, the engine cost samples, and the
// sweep parameters needed to re-derive any cell deterministically — in
// one canonically encoded file the runtime loads at startup.
//
// The encoding is line-oriented text with every float64 written as the
// 16-digit lowercase hex of its IEEE-754 bit pattern, so encode →
// decode → re-encode is byte-identical for every value including -0,
// NaN payloads, and infinities (the CSV layer's shortest-decimal
// formatting cannot promise that). Cells keep their sweep order — the
// index is the per-cell seed stream (fpu.MixSeed(seed, index)), which
// is what lets CheckCalibration re-run a probe cell and expect a
// bitwise-identical answer. Algorithms within a cell are written in
// sum.Algorithms order; a file is rejected unless the leading version
// line matches exactly and every declared count is fully present, so a
// truncated or foreign file fails loudly instead of loading partially.

// calibrationVersion is the leading line of every artifact.
const calibrationVersion = "reprocal v1"

// defaultTrialBlock mirrors grid.Config's TrialBlock default; the
// harness pins it explicitly because it is part of the experiment
// definition (block boundaries seed the plan streams).
const defaultTrialBlock = 32

// Calibration is a host calibration artifact: the measured accuracy
// surface and engine costs plus the sweep parameters that reproduce
// them.
type Calibration struct {
	// Host labels the machine the calibration was measured on.
	Host string
	// Safety multiplies measured variability at selection time.
	Safety float64
	// Seed, Trials, Shape, TrialBlock reproduce the accuracy sweep:
	// cell i re-evaluates with fpu.MixSeed(Seed, i). Seed also derives
	// the cost sweep's timing data.
	Seed       uint64
	Trials     int
	Shape      tree.Shape
	TrialBlock int
	// Cells is the accuracy sweep in sweep order.
	Cells []grid.CellResult
	// Costs are the engine cost samples.
	Costs []CostSample
}

// SurfacePolicy fits the artifact into a serve-time selection surface.
func (cal *Calibration) SurfacePolicy() *CalibratedSurfacePolicy {
	return FitSurface(cal.Cells, cal.Costs, cal.Safety)
}

// ScanPolicy wraps the artifact's cells as the nearest-neighbor scan
// policy (the surface's reference semantics).
func (cal *Calibration) ScanPolicy() *CalibratedPolicy {
	return NewCalibratedPolicy(cal.Cells, cal.Safety)
}

// cellAlgs lists the algorithms measured in a cell, in sum.Algorithms
// (cost) order — the canonical iteration for encoding and comparison.
func cellAlgs(c grid.CellResult) []sum.Algorithm {
	var algs []sum.Algorithm
	for _, alg := range sum.Algorithms {
		if _, ok := c.RelStdDev[alg]; ok {
			algs = append(algs, alg)
		}
	}
	return algs
}

// calAlgorithms is the union of algorithms measured across the
// artifact's cells, in sum.Algorithms order — the sweep's algorithm
// list, reconstructed for deterministic re-evaluation.
func (cal *Calibration) calAlgorithms() []sum.Algorithm {
	seen := map[sum.Algorithm]bool{}
	for _, c := range cal.Cells {
		for alg := range c.RelStdDev {
			seen[alg] = true
		}
	}
	var algs []sum.Algorithm
	for _, alg := range sum.Algorithms {
		if seen[alg] {
			algs = append(algs, alg)
		}
	}
	return algs
}

// hexFloat encodes a float64 as the canonical 16-digit lowercase hex of
// its bit pattern — bitwise stable for every value.
func hexFloat(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

func parseHexFloat(s string) (float64, error) {
	bits, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(bits), nil
}

// SaveCalibration writes the canonical encoding of cal. Encoding the
// result of LoadCalibration reproduces the input byte for byte.
func SaveCalibration(w io.Writer, cal *Calibration) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\n", calibrationVersion)
	fmt.Fprintf(bw, "host %s\n", cal.Host)
	fmt.Fprintf(bw, "safety %s\n", hexFloat(cal.Safety))
	fmt.Fprintf(bw, "sweep seed=%d trials=%d shape=%d trialblock=%d\n",
		cal.Seed, cal.Trials, cal.Shape, cal.TrialBlock)
	fmt.Fprintf(bw, "cells %d\n", len(cal.Cells))
	for _, c := range cal.Cells {
		algs := cellAlgs(c)
		fmt.Fprintf(bw, "cell n=%d cond=%s dr=%d mk=%s mdr=%d algs=%d\n",
			c.Spec.N, hexFloat(c.Spec.Cond), c.Spec.DynRange,
			hexFloat(c.MeasuredK), c.MeasuredDR, len(algs))
		for _, alg := range algs {
			fmt.Fprintf(bw, "alg %s std=%s rel=%s max=%s distinct=%d\n",
				alg, hexFloat(c.StdDev[alg]), hexFloat(c.RelStdDev[alg]),
				hexFloat(c.MaxErr[alg]), c.Distinct[alg])
		}
	}
	fmt.Fprintf(bw, "costs %d\n", len(cal.Costs))
	for _, cs := range cal.Costs {
		fmt.Fprintf(bw, "cost alg=%s n=%d workers=%d lanes=%d ns=%s\n",
			cs.Alg, cs.N, cs.Workers, cs.LaneWidth, hexFloat(cs.NsPerOp))
	}
	fmt.Fprint(bw, "end reprocal\n")
	return bw.Flush()
}

// calReader threads line-numbered reads through the decoder so every
// error names the offending line.
type calReader struct {
	sc   *bufio.Scanner
	line int
}

func (cr *calReader) next(what string) (string, error) {
	if !cr.sc.Scan() {
		if err := cr.sc.Err(); err != nil {
			return "", fmt.Errorf("selector: calibration line %d: %w", cr.line+1, err)
		}
		return "", fmt.Errorf("selector: truncated calibration artifact: missing %s after line %d", what, cr.line)
	}
	cr.line++
	return cr.sc.Text(), nil
}

func (cr *calReader) errf(format string, args ...any) error {
	return fmt.Errorf("selector: calibration line %d: %s", cr.line, fmt.Sprintf(format, args...))
}

// LoadCalibration decodes an artifact written by SaveCalibration. A
// file whose version line is unknown is rejected before any content is
// parsed; a file that ends before every declared cell, algorithm row,
// and cost sample is present is rejected as truncated.
func LoadCalibration(r io.Reader) (*Calibration, error) {
	cr := &calReader{sc: bufio.NewScanner(r)}
	cr.sc.Buffer(make([]byte, 0, 1<<16), 1<<20)

	version, err := cr.next("version header")
	if err != nil {
		return nil, err
	}
	if version != calibrationVersion {
		return nil, fmt.Errorf("selector: unsupported calibration artifact %q (want %q)", version, calibrationVersion)
	}
	cal := &Calibration{}

	line, err := cr.next("host line")
	if err != nil {
		return nil, err
	}
	switch {
	case len(line) >= 5 && line[:5] == "host ":
		cal.Host = line[5:] // verbatim, spaces included
	default:
		return nil, cr.errf("malformed host line %q", line)
	}

	line, err = cr.next("safety line")
	if err != nil {
		return nil, err
	}
	var hex string
	if _, err := fmt.Sscanf(line, "safety %s", &hex); err != nil {
		return nil, cr.errf("malformed safety line %q", line)
	}
	if cal.Safety, err = parseHexFloat(hex); err != nil {
		return nil, cr.errf("bad safety value: %v", err)
	}

	line, err = cr.next("sweep line")
	if err != nil {
		return nil, err
	}
	var shape int
	if _, err := fmt.Sscanf(line, "sweep seed=%d trials=%d shape=%d trialblock=%d",
		&cal.Seed, &cal.Trials, &shape, &cal.TrialBlock); err != nil {
		return nil, cr.errf("malformed sweep line %q", line)
	}
	cal.Shape = tree.Shape(shape)

	line, err = cr.next("cells header")
	if err != nil {
		return nil, err
	}
	var nCells int
	if _, err := fmt.Sscanf(line, "cells %d", &nCells); err != nil {
		return nil, cr.errf("malformed cells header %q", line)
	}
	for ci := 0; ci < nCells; ci++ {
		line, err = cr.next(fmt.Sprintf("cell %d of %d", ci+1, nCells))
		if err != nil {
			return nil, err
		}
		var condHex, mkHex string
		var nAlgs int
		c := grid.CellResult{
			StdDev:    map[sum.Algorithm]float64{},
			RelStdDev: map[sum.Algorithm]float64{},
			MaxErr:    map[sum.Algorithm]float64{},
			Distinct:  map[sum.Algorithm]int{},
		}
		if _, err := fmt.Sscanf(line, "cell n=%d cond=%s dr=%d mk=%s mdr=%d algs=%d",
			&c.Spec.N, &condHex, &c.Spec.DynRange, &mkHex, &c.MeasuredDR, &nAlgs); err != nil {
			return nil, cr.errf("malformed cell line %q", line)
		}
		if c.Spec.Cond, err = parseHexFloat(condHex); err != nil {
			return nil, cr.errf("bad cond value: %v", err)
		}
		if c.MeasuredK, err = parseHexFloat(mkHex); err != nil {
			return nil, cr.errf("bad measured-k value: %v", err)
		}
		for ai := 0; ai < nAlgs; ai++ {
			line, err = cr.next(fmt.Sprintf("algorithm %d of %d in cell %d", ai+1, nAlgs, ci+1))
			if err != nil {
				return nil, err
			}
			var name, stdHex, relHex, maxHex string
			var distinct int
			if _, err := fmt.Sscanf(line, "alg %s std=%s rel=%s max=%s distinct=%d",
				&name, &stdHex, &relHex, &maxHex, &distinct); err != nil {
				return nil, cr.errf("malformed alg line %q", line)
			}
			alg, err := sum.ParseAlgorithm(name)
			if err != nil {
				return nil, cr.errf("%v", err)
			}
			if c.StdDev[alg], err = parseHexFloat(stdHex); err != nil {
				return nil, cr.errf("bad std value: %v", err)
			}
			if c.RelStdDev[alg], err = parseHexFloat(relHex); err != nil {
				return nil, cr.errf("bad rel value: %v", err)
			}
			if c.MaxErr[alg], err = parseHexFloat(maxHex); err != nil {
				return nil, cr.errf("bad max value: %v", err)
			}
			c.Distinct[alg] = distinct
		}
		cal.Cells = append(cal.Cells, c)
	}

	line, err = cr.next("costs header")
	if err != nil {
		return nil, err
	}
	var nCosts int
	if _, err := fmt.Sscanf(line, "costs %d", &nCosts); err != nil {
		return nil, cr.errf("malformed costs header %q", line)
	}
	for i := 0; i < nCosts; i++ {
		line, err = cr.next(fmt.Sprintf("cost sample %d of %d", i+1, nCosts))
		if err != nil {
			return nil, err
		}
		var name, nsHex string
		var cs CostSample
		if _, err := fmt.Sscanf(line, "cost alg=%s n=%d workers=%d lanes=%d ns=%s",
			&name, &cs.N, &cs.Workers, &cs.LaneWidth, &nsHex); err != nil {
			return nil, cr.errf("malformed cost line %q", line)
		}
		alg, err := sum.ParseAlgorithm(name)
		if err != nil {
			return nil, cr.errf("%v", err)
		}
		cs.Alg = alg
		if cs.NsPerOp, err = parseHexFloat(nsHex); err != nil {
			return nil, cr.errf("bad ns value: %v", err)
		}
		cal.Costs = append(cal.Costs, cs)
	}

	line, err = cr.next("end marker")
	if err != nil {
		return nil, err
	}
	if line != "end reprocal" {
		return nil, cr.errf("expected end marker, got %q", line)
	}
	return cal, nil
}

// HarnessConfig drives RunCalibration: the accuracy sweep envelope and
// the engine cost sweep, measured together into one artifact.
type HarnessConfig struct {
	Accuracy CalibrationConfig
	Cost     CostSweepConfig
	Host     string
}

// RunCalibration measures the host — the accuracy sweep across the
// configured envelope plus the engine cost sweep — and packages the
// results as a Calibration artifact. The accuracy sweep defaults to the
// full selection ladder (a calibration must know the reproducible rungs
// too); the cost sweep reuses the accuracy seed so CheckCalibration can
// regenerate its timing data.
func RunCalibration(cfg HarnessConfig) *Calibration {
	acc := cfg.Accuracy
	if len(acc.Algorithms) == 0 {
		acc.Algorithms = sum.SelectionLadder
	}
	acc = acc.withDefaults()
	var specs []grid.CellSpec
	for _, n := range acc.Ns {
		specs = append(specs, grid.KDRGrid(n, acc.Ks, acc.DRs)...)
	}
	cells := grid.Sweep(specs, grid.Config{
		Algorithms: acc.Algorithms,
		Trials:     acc.Trials,
		Shape:      acc.Shape,
		Seed:       acc.Seed,
		TrialBlock: defaultTrialBlock,
	})
	cost := cfg.Cost
	cost.Seed = acc.Seed
	if len(cost.Algorithms) == 0 {
		cost.Algorithms = acc.Algorithms
	}
	return &Calibration{
		Host:       cfg.Host,
		Safety:     acc.Safety,
		Seed:       acc.Seed,
		Trials:     acc.Trials,
		Shape:      acc.Shape,
		TrialBlock: defaultTrialBlock,
		Cells:      cells,
		Costs:      CostSweep(cost),
	}
}

// CalCheck is the result of a drift probe: which cells and cost samples
// were re-measured and which of them disagree with the artifact.
type CalCheck struct {
	// AccuracyProbes and CostProbes count the re-measurements taken.
	AccuracyProbes, CostProbes int
	// AccuracyDrift lists probe cells whose re-run no longer matches the
	// stored measurement bitwise (the sweep is deterministic, so any
	// difference means the engine's behavior changed since calibration).
	AccuracyDrift []string
	// CostDrift lists cost samples whose fresh timing is off by more
	// than the configured factor in either direction.
	CostDrift []string
}

// Drifted reports whether any probe flagged the artifact.
func (c CalCheck) Drifted() bool {
	return len(c.AccuracyDrift) > 0 || len(c.CostDrift) > 0
}

// CheckCalibration re-measures a cheap probe subset of the artifact —
// a few accuracy cells re-evaluated with their original seeds, a few
// cost samples re-timed — and reports drift. Accuracy probes expect
// bitwise equality (grid evaluation is deterministic given the seed;
// any mismatch means the engines changed or the artifact was edited);
// cost probes tolerate up to costFactor× in either direction before
// flagging, so scheduler noise does not trigger recalibration.
// probes <= 0 selects 3 of each; costFactor <= 1 selects 4.
func CheckCalibration(cal *Calibration, probes int, costFactor float64) CalCheck {
	if probes <= 0 {
		probes = 3
	}
	if costFactor <= 1 {
		costFactor = 4
	}
	var check CalCheck
	algs := cal.calAlgorithms()
	gcfg := grid.Config{
		Algorithms: algs,
		Trials:     cal.Trials,
		Shape:      cal.Shape,
		TrialBlock: cal.TrialBlock,
	}
	for _, i := range probeIndices(len(cal.Cells), probes) {
		stored := cal.Cells[i]
		fresh := grid.EvalCell(stored.Spec, gcfg, fpu.MixSeed(cal.Seed, uint64(i)))
		check.AccuracyProbes++
		for _, alg := range cellAlgs(stored) {
			sb := math.Float64bits(stored.RelStdDev[alg])
			fb := math.Float64bits(fresh.RelStdDev[alg])
			if sb != fb {
				check.AccuracyDrift = append(check.AccuracyDrift, fmt.Sprintf(
					"cell %d (n=%d k=%.3g dr=%d) %s: stored rel %.6g, fresh %.6g",
					i, stored.Spec.N, stored.Spec.Cond, stored.Spec.DynRange,
					alg, stored.RelStdDev[alg], fresh.RelStdDev[alg]))
			}
		}
	}
	for _, i := range probeIndices(len(cal.Costs), probes) {
		cs := cal.Costs[i]
		xs := benignData(cs.N, fpu.MixSeed(cal.Seed, uint64(cs.N)))
		fresh, ok := measureCost(cs.Alg, xs, cs.Workers, cs.LaneWidth, time.Millisecond, 3)
		check.CostProbes++
		if !ok {
			check.CostDrift = append(check.CostDrift, fmt.Sprintf(
				"cost %s n=%d workers=%d lanes=%d: engine no longer measurable",
				cs.Alg, cs.N, cs.Workers, cs.LaneWidth))
			continue
		}
		if fresh > cs.NsPerOp*costFactor || cs.NsPerOp > fresh*costFactor {
			check.CostDrift = append(check.CostDrift, fmt.Sprintf(
				"cost %s n=%d workers=%d lanes=%d: stored %.4g ns/op, fresh %.4g ns/op (beyond %gx)",
				cs.Alg, cs.N, cs.Workers, cs.LaneWidth, cs.NsPerOp, fresh, costFactor))
		}
	}
	return check
}

// probeIndices spreads count probe indices evenly across n entries
// (first, last, and evenly between), deduplicated in order.
func probeIndices(n, count int) []int {
	if n <= 0 || count <= 0 {
		return nil
	}
	if count > n {
		count = n
	}
	var out []int
	seen := map[int]bool{}
	for j := 0; j < count; j++ {
		i := 0
		if count > 1 {
			i = j * (n - 1) / (count - 1)
		}
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// CalDelta is one matched quantity that differs between two artifacts.
type CalDelta struct {
	Line string  // human-readable description
	Pct  float64 // relative change in percent (|new-old| / |old| · 100)
}

// CalComparison is the result of CompareCalibrations: matched deltas,
// envelope changes, and the largest drift seen on each axis.
type CalComparison struct {
	Deltas []CalDelta
	// Added and Removed list cells or cost samples present in only one
	// artifact (an envelope change, reported but not gated).
	Added, Removed []string
	// MaxAccuracyPct and MaxCostPct are the largest matched deltas.
	MaxAccuracyPct, MaxCostPct float64
}

// Exceeds reports whether any matched delta passes the threshold (in
// percent).
func (c CalComparison) Exceeds(thresholdPct float64) bool {
	return c.MaxAccuracyPct > thresholdPct || c.MaxCostPct > thresholdPct
}

// pctDelta is the relative change from old to new in percent. Equal
// values (including bitwise-equal NaNs and infinities) are 0; a change
// from or to zero, NaN, or infinity is +Inf — always beyond threshold.
func pctDelta(old, new float64) float64 {
	if math.Float64bits(old) == math.Float64bits(new) {
		return 0
	}
	if old == 0 || math.IsNaN(old) || math.IsInf(old, 0) ||
		math.IsNaN(new) || math.IsInf(new, 0) {
		return math.Inf(1)
	}
	return math.Abs(new-old) / math.Abs(old) * 100
}

// CompareCalibrations diffs two artifacts cell by cell: accuracy cells
// match on their spec, cost samples on (algorithm, n, workers, lanes).
// Matched quantities report their relative change; entries present in
// only one artifact are listed as envelope changes.
func CompareCalibrations(old, new *Calibration) CalComparison {
	var cmp CalComparison
	oldCells := map[grid.CellSpec]grid.CellResult{}
	for _, c := range old.Cells {
		oldCells[c.Spec] = c
	}
	newSpecs := map[grid.CellSpec]bool{}
	for _, nc := range new.Cells {
		newSpecs[nc.Spec] = true
		oc, ok := oldCells[nc.Spec]
		if !ok {
			cmp.Added = append(cmp.Added, fmt.Sprintf("cell n=%d k=%.3g dr=%d", nc.Spec.N, nc.Spec.Cond, nc.Spec.DynRange))
			continue
		}
		for _, alg := range cellAlgs(nc) {
			orel, ok := oc.RelStdDev[alg]
			if !ok {
				cmp.Added = append(cmp.Added, fmt.Sprintf("cell n=%d k=%.3g dr=%d alg %s", nc.Spec.N, nc.Spec.Cond, nc.Spec.DynRange, alg))
				continue
			}
			nrel := nc.RelStdDev[alg]
			if pct := pctDelta(orel, nrel); pct > 0 {
				cmp.Deltas = append(cmp.Deltas, CalDelta{
					Line: fmt.Sprintf("cell n=%d k=%.3g dr=%d %s: rel %.6g -> %.6g (%+.1f%%)",
						nc.Spec.N, nc.Spec.Cond, nc.Spec.DynRange, alg, orel, nrel, pct),
					Pct: pct,
				})
				cmp.MaxAccuracyPct = math.Max(cmp.MaxAccuracyPct, pct)
			}
		}
		for _, alg := range cellAlgs(oc) {
			if _, ok := nc.RelStdDev[alg]; !ok {
				cmp.Removed = append(cmp.Removed, fmt.Sprintf("cell n=%d k=%.3g dr=%d alg %s", oc.Spec.N, oc.Spec.Cond, oc.Spec.DynRange, alg))
			}
		}
	}
	for _, oc := range old.Cells {
		if !newSpecs[oc.Spec] {
			cmp.Removed = append(cmp.Removed, fmt.Sprintf("cell n=%d k=%.3g dr=%d", oc.Spec.N, oc.Spec.Cond, oc.Spec.DynRange))
		}
	}

	type costKey struct {
		alg              sum.Algorithm
		n, workers, lane int
	}
	oldCosts := map[costKey]float64{}
	for _, cs := range old.Costs {
		oldCosts[costKey{cs.Alg, cs.N, cs.Workers, cs.LaneWidth}] = cs.NsPerOp
	}
	newCosts := map[costKey]bool{}
	for _, cs := range new.Costs {
		k := costKey{cs.Alg, cs.N, cs.Workers, cs.LaneWidth}
		newCosts[k] = true
		ons, ok := oldCosts[k]
		if !ok {
			cmp.Added = append(cmp.Added, fmt.Sprintf("cost %s n=%d workers=%d lanes=%d", cs.Alg, cs.N, cs.Workers, cs.LaneWidth))
			continue
		}
		if pct := pctDelta(ons, cs.NsPerOp); pct > 0 {
			cmp.Deltas = append(cmp.Deltas, CalDelta{
				Line: fmt.Sprintf("cost %s n=%d workers=%d lanes=%d: %.4g -> %.4g ns/op (%+.1f%%)",
					cs.Alg, cs.N, cs.Workers, cs.LaneWidth, ons, cs.NsPerOp, pct),
				Pct: pct,
			})
			cmp.MaxCostPct = math.Max(cmp.MaxCostPct, pct)
		}
	}
	for _, cs := range old.Costs {
		if !newCosts[costKey{cs.Alg, cs.N, cs.Workers, cs.LaneWidth}] {
			cmp.Removed = append(cmp.Removed, fmt.Sprintf("cost %s n=%d workers=%d lanes=%d", cs.Alg, cs.N, cs.Workers, cs.LaneWidth))
		}
	}
	return cmp
}
