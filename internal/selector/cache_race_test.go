package selector

import (
	"sync"
	"testing"

	"repro/internal/gen"
)

// TestCacheConcurrentDecideStats hammers Decide and Stats from many
// goroutines at once. Under -race this proves the stats counters are
// safely readable while decisions are being served (they are atomics;
// Stats never takes a shard lock); in every mode it pins the exact
// accounting contract: Hits+Misses equals the number of Decide calls,
// every goroutine sees the identical Decision per profile, and Entries
// equals the number of distinct buckets touched.
func TestCacheConcurrentDecideStats(t *testing.T) {
	const (
		goroutines = 8
		iters      = 2000
	)
	// A handful of profiles spanning distinct buckets (different n
	// decades and condition regimes), well under capacity — so after
	// the serial warmup every concurrent Decide is a hit.
	var profiles []Profile
	for i, spec := range []gen.Spec{
		{N: 512, Cond: 1e3, DynRange: 8, Seed: 1},
		{N: 4096, Cond: 1e8, DynRange: 16, Seed: 2},
		{N: 32768, Cond: 1e12, DynRange: 24, Seed: 3},
		{N: 8192, Cond: 1e15, DynRange: 40, Seed: 4},
	} {
		p := ProfileOf(spec.Generate())
		if p.NonFinite {
			t.Fatalf("profile %d poisoned; specs must stay finite", i)
		}
		profiles = append(profiles, p)
	}

	s := New(1e-12)
	s.Cache = NewDecisionCache(CacheConfig{Capacity: 256, Shards: 4})
	want := make([]Decision, len(profiles))
	for i, p := range profiles {
		want[i] = s.Decide(p) // serial warmup: one miss per bucket
	}
	base := s.Cache.Stats()
	if base.Misses != int64(len(profiles)) || base.Entries != int64(len(profiles)) {
		t.Fatalf("warmup stats %+v, want %d misses/entries", base, len(profiles))
	}

	var decideWG, statsWG sync.WaitGroup
	stop := make(chan struct{})
	// Stats hammer: concurrent snapshots must stay monotone in
	// Hits+Misses, and Entries must hold steady (the key set is fixed
	// and under capacity).
	statsWG.Add(1)
	go func() {
		defer statsWG.Done()
		var lastTotal int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Cache.Stats()
			total := st.Hits + st.Misses
			if total < lastTotal {
				t.Errorf("Stats went backwards: %d after %d", total, lastTotal)
				return
			}
			lastTotal = total
			if st.Entries != int64(len(profiles)) {
				t.Errorf("Entries drifted to %d mid-hammer, want %d", st.Entries, len(profiles))
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		decideWG.Add(1)
		go func(g int) {
			defer decideWG.Done()
			for i := 0; i < iters; i++ {
				pi := (g + i) % len(profiles)
				if d := s.Decide(profiles[pi]); d != want[pi] {
					t.Errorf("goroutine %d: decision diverged under concurrency", g)
					return
				}
			}
		}(g)
	}
	decideWG.Wait() // Stats ran concurrently the whole time
	close(stop)
	statsWG.Wait()

	st := s.Cache.Stats()
	wantCalls := base.Hits + base.Misses + goroutines*iters
	if st.Hits+st.Misses != wantCalls {
		t.Fatalf("hits %d + misses %d = %d, want exactly %d Decide calls",
			st.Hits, st.Misses, st.Hits+st.Misses, wantCalls)
	}
	if st.Misses != base.Misses {
		t.Fatalf("misses grew to %d under a fully warmed cache, want %d", st.Misses, base.Misses)
	}
	if st.Entries != int64(len(profiles)) {
		t.Fatalf("entries %d, want %d", st.Entries, len(profiles))
	}
}
