package selector

import (
	"math"
	"runtime"
	"time"

	"repro/internal/fpu"
	"repro/internal/parallel"
	"repro/internal/sum"
)

// Host cost sweep: measure what each ladder rung actually costs on this
// machine, per engine configuration, so the fitted surface can walk the
// ladder in measured-cost order instead of trusting the static
// CostRank. The sweep is a miniature of the benchmark harness — an
// iteration-scaled timing window per configuration, best-of-reps — but
// runs in-process so cmd/calibrate can fold the samples straight into
// the persisted artifact.

// CostSweepConfig tunes the host cost sweep.
type CostSweepConfig struct {
	// Algorithms to time (default sum.SelectionLadder).
	Algorithms []sum.Algorithm
	// Ns are the slice sizes to time (default 256, 4Ki, 64Ki, 1Mi).
	Ns []int
	// Workers are the engine worker counts; 0 means the serial
	// streaming path (alg.Sum), > 0 the parallel engine (default
	// {0, GOMAXPROCS}).
	Workers []int
	// LaneWidths are the kernel lane widths to time on the parallel
	// engine (default {1, 4}); the serial path is always scalar.
	LaneWidths []int
	// MinTime is the per-measurement timing window (default 1ms);
	// Reps takes the best of this many windows (default 3).
	MinTime time.Duration
	Reps    int
	// Seed generates the benign timing data.
	Seed uint64
}

func (c CostSweepConfig) withDefaults() CostSweepConfig {
	if len(c.Algorithms) == 0 {
		c.Algorithms = sum.SelectionLadder
	}
	if len(c.Ns) == 0 {
		c.Ns = []int{1 << 8, 1 << 12, 1 << 16, 1 << 20}
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{0, runtime.GOMAXPROCS(0)}
	}
	if len(c.LaneWidths) == 0 {
		c.LaneWidths = []int{1, 4}
	}
	if c.MinTime <= 0 {
		c.MinTime = time.Millisecond
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	return c
}

// CostSweep times every algorithm × engine configuration × size on the
// local host and returns the usable samples. A configuration that
// panics (an engine rejecting the combination) or times out with a
// non-finite or non-positive reading is dropped rather than emitted —
// degenerate engines shrink the sample set, they never corrupt it.
func CostSweep(cfg CostSweepConfig) []CostSample {
	cfg = cfg.withDefaults()
	var out []CostSample
	for _, n := range cfg.Ns {
		if n < 1 {
			continue
		}
		xs := benignData(n, fpu.MixSeed(cfg.Seed, uint64(n)))
		for _, alg := range cfg.Algorithms {
			for _, workers := range cfg.Workers {
				lanes := cfg.LaneWidths
				if workers <= 0 {
					lanes = []int{1} // serial path is scalar-only
				}
				for _, lw := range lanes {
					ns, ok := measureCost(alg, xs, workers, lw, cfg.MinTime, cfg.Reps)
					if !ok {
						continue
					}
					out = append(out, CostSample{
						Alg: alg, N: n, Workers: workers, LaneWidth: lw, NsPerOp: ns,
					})
				}
			}
		}
	}
	return out
}

// costSink defeats dead-code elimination of the timed folds.
var costSink float64

// measureCost times one (algorithm, engine configuration) on xs:
// best-of-reps over iteration-scaled windows of at least minTime.
// Returns ok=false when the engine panics on the combination or the
// reading is unusable.
func measureCost(alg sum.Algorithm, xs []float64, workers, laneWidth int, minTime time.Duration, reps int) (ns float64, ok bool) {
	defer func() {
		if recover() != nil {
			ns, ok = 0, false
		}
	}()
	run := func() float64 { return alg.Sum(xs) }
	if workers > 0 {
		pcfg := parallel.Config{Workers: workers, LaneWidth: laneWidth}
		run = func() float64 { return parallel.Sum(alg, xs, pcfg) }
	}
	best := math.Inf(1)
	iters := 1
	for r := 0; r < reps; r++ {
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				costSink = run()
			}
			elapsed := time.Since(start)
			if elapsed >= minTime {
				if v := float64(elapsed.Nanoseconds()) / float64(iters); v < best {
					best = v
				}
				break
			}
			// Scale the iteration count toward the window, with slack so
			// the next attempt overshoots rather than loops.
			if elapsed <= 0 {
				iters *= 100
			} else {
				iters = int(float64(iters)*float64(minTime)/float64(elapsed)*1.2) + 1
			}
		}
	}
	if math.IsInf(best, 0) || math.IsNaN(best) || best <= 0 {
		return 0, false
	}
	return best, true
}

// benignData generates well-conditioned positive timing data — cost
// measurement wants the common path, not cancellation stress.
func benignData(n int, seed uint64) []float64 {
	rng := fpu.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 0.5 + rng.Float64()
	}
	return xs
}
