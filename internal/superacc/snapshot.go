package superacc

import "fmt"

// Limbs is the length of an Acc's base-2^32 digit array (the full
// binary64 bit span plus 64 headroom bits), exported so serializers can
// carry the array without reflecting over private fields.
const Limbs = numLimbs

// MaxPending is the exclusive upper bound on a live Acc's
// pending-deposit counter: a carry pass runs whenever pending reaches
// normalizeEvery, so every accumulator observable through the public
// API holds pending in [0, MaxPending). Serializers use it to reject
// counters no real accumulator can carry.
const MaxPending = normalizeEvery

// Snapshot is the complete serializable content of an Acc, with every
// field exported — the stable accessor pair Snapshot/Restore keeps
// external encodings off the private in-memory layout.
//
// A restored accumulator is field-for-field the accumulator that was
// snapshotted — including the carry-pass counter Pending and the
// non-finite poison flag — so it resumes depositing, merging, and
// rounding bitwise-identically to the never-serialized original.
type Snapshot struct {
	// Limbs[i] carries weight 2^(32i - 1074); between carry passes
	// digits may stray outside [0, 2^32), and the top limb holds the
	// sign.
	Limbs [Limbs]int64
	// Pending counts deposits since the last carry pass.
	Pending int64
	// NaN reports the accumulator is poisoned (a NaN or ±Inf was
	// deposited); Float64 returns NaN from then on.
	NaN bool
}

// Snapshot returns the complete accumulator content. It does not modify
// a (in particular, it does not normalize).
func (a *Acc) Snapshot() Snapshot {
	s := Snapshot{Pending: int64(a.pending), NaN: a.nan}
	s.Limbs = a.limbs
	return s
}

// Validate checks the invariants every API-produced accumulator
// satisfies: a pending count inside the carry budget and limb
// magnitudes within the carry schedule's bound — a normalized digit
// (< 2^32) plus at most 2^33 per pending deposit (two 32-bit chunks
// can land in one limb per call). Accepting exactly this envelope
// admits every live accumulator while guaranteeing the remaining
// deposit budget (MaxPending - Pending more deposits) cannot overflow
// an int64 limb: 2^32 + MaxPending·2^33 < 2^63. Restore rejects
// snapshots that violate it.
func (s *Snapshot) Validate() error {
	if s.Pending < 0 || s.Pending >= MaxPending {
		return fmt.Errorf("superacc: pending-deposit count %d outside [0, %d)", s.Pending, int64(MaxPending))
	}
	bound := int64(1)<<limbBits + s.Pending*(1<<(limbBits+1))
	for i, v := range s.Limbs {
		if v > bound || v < -bound {
			return fmt.Errorf("superacc: limb %d magnitude %d exceeds the carry-schedule bound %d", i, v, bound)
		}
	}
	return nil
}

// Restore reconstructs the snapshotted Acc. The result is
// field-for-field the snapshotted accumulator, so its subsequent
// deposits, merges, and Float64 roundings are bitwise-identical to the
// original's. Invalid snapshots (see Validate) are rejected.
func Restore(s Snapshot) (Acc, error) {
	if err := s.Validate(); err != nil {
		return Acc{}, err
	}
	a := Acc{pending: int(s.Pending), nan: s.NaN}
	a.limbs = s.Limbs
	return a, nil
}
