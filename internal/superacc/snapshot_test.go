package superacc

import (
	"math"
	"testing"
)

// compareAccs asserts two accumulators are field-for-field identical
// and round to the same bits.
func compareAccs(t *testing.T, label string, a, b *Acc) {
	t.Helper()
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := range sa.Limbs {
		if sa.Limbs[i] != sb.Limbs[i] {
			t.Fatalf("%s: limb %d differs: %d vs %d", label, i, sa.Limbs[i], sb.Limbs[i])
		}
	}
	if sa.Pending != sb.Pending || sa.NaN != sb.NaN {
		t.Fatalf("%s: bookkeeping differs: pending %d/%d nan %v/%v",
			label, sa.Pending, sb.Pending, sa.NaN, sb.NaN)
	}
	if math.Float64bits(a.Float64()) != math.Float64bits(b.Float64()) {
		t.Fatalf("%s: Float64 bits differ", label)
	}
}

// TestSuperaccSnapshotRestoreTwin pins the satellite contract for the
// superaccumulator: a restored accumulator's subsequent deposits,
// scaled deposits, and merges stay bitwise-identical to the
// never-serialized twin.
func TestSuperaccSnapshotRestoreTwin(t *testing.T) {
	ops := []float64{
		1, -1.5, 0x1p-1074, -0x1p-1000, math.Copysign(0, -1),
		0x1.fffffffffffffp1023, -0x1p1000, 3.14e-300, -2.71e300, 1e-16,
	}
	var twin Acc
	for i := 0; i < 500; i++ {
		twin.Add(ops[i%len(ops)])
	}
	twin.AddLdexp(0x1.8p50, 512) // top-window scaled deposit

	restored, err := Restore(twin.Snapshot())
	if err != nil {
		t.Fatalf("Restore rejected a live snapshot: %v", err)
	}
	compareAccs(t, "immediately after restore", &twin, &restored)

	for _, x := range ops {
		twin.Add(x)
		restored.Add(x)
	}
	twin.AddLdexp(-0x1p40, 512)
	restored.AddLdexp(-0x1p40, 512)
	compareAccs(t, "after further deposits", &twin, &restored)

	var other Acc
	other.AddSlice([]float64{1e300, -1e-300, 42})
	twin.Merge(&other)
	restored.Merge(&other)
	compareAccs(t, "after merge", &twin, &restored)

	// Float64 does not disturb the twin relationship (it normalizes).
	_ = twin.Float64()
	_ = restored.Float64()
	compareAccs(t, "after rounding", &twin, &restored)

	twin.Add(math.Inf(1))
	restored.Add(math.Inf(1))
	if !math.IsNaN(twin.Float64()) || !math.IsNaN(restored.Float64()) {
		t.Fatal("poison did not propagate to both twins")
	}
}

// TestSuperaccRestoreRejectsInvalid pins the validation envelope.
func TestSuperaccRestoreRejectsInvalid(t *testing.T) {
	var a Acc
	a.Add(1)
	good := a.Snapshot()
	if _, err := Restore(good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Snapshot)
	}{
		{"negative pending", func(s *Snapshot) { s.Pending = -1 }},
		{"pending at carry bound", func(s *Snapshot) { s.Pending = MaxPending }},
		{"limb beyond schedule bound", func(s *Snapshot) { s.Limbs[3] = 1 << 62 }},
		{"negative limb beyond bound", func(s *Snapshot) { s.Limbs[7] = -(1 << 62) }},
	}
	for _, tc := range cases {
		s := good
		tc.mut(&s)
		if _, err := Restore(s); err == nil {
			t.Errorf("%s: Restore accepted an invalid snapshot", tc.name)
		}
	}

	// The envelope must admit the carry-schedule worst case: a limb at
	// the exact bound for its pending count.
	edge := good
	edge.Pending = 5
	edge.Limbs[10] = 1<<32 + 5*(1<<33)
	if _, err := Restore(edge); err != nil {
		t.Errorf("Restore rejected a limb at the carry-schedule bound: %v", err)
	}
}
