// Package superacc implements an exact fixed-point superaccumulator
// (a Kulisch-style long accumulator) for float64 summation.
//
// The accumulator is a base-2^32 digit array spanning the entire binary64
// range (bit weights 2^-1074 through 2^1087, leaving 64 bits of headroom),
// so every float64 deposits exactly and the accumulated value is the
// mathematically exact sum regardless of the order of deposits. It is
// used as the order-independent reference oracle for all reproducibility
// experiments (the paper used GNU MPFR quad-double; this is strictly
// stronger for sums of float64).
package superacc

import (
	"math"
	"math/big"
)

const (
	limbBits = 32
	// Lowest represented bit weight is 2^bias (the smallest subnormal).
	bias = -1074
	// Total bit span: |bias| + 1024 (max exponent) + 64 headroom bits,
	// rounded up to whole limbs.
	numLimbs = (1074 + 1024 + 64 + limbBits - 1) / limbBits
	// After this many unnormalized deposits a carry pass runs to keep
	// each int64 limb from overflowing (each deposit moves < 2^33 per
	// limb: two 32-bit chunks can land in one limb across calls).
	normalizeEvery = 1 << 29
)

// Acc is an exact superaccumulator. The zero value is an accumulator
// holding zero, ready to use.
type Acc struct {
	// limbs[i] carries weight 2^(32*i + bias). Between normalizations
	// digits may stray outside [0, 2^32); the top limb holds the sign.
	limbs   [numLimbs]int64
	pending int  // deposits since the last carry pass
	nan     bool // a NaN or Inf was deposited; the sum is poisoned
}

// New returns an empty accumulator.
func New() *Acc { return &Acc{} }

// Reset restores a to zero.
func (a *Acc) Reset() { *a = Acc{} }

// Add deposits x exactly. NaN or ±Inf poisons the accumulator: Float64
// will return NaN from then on.
func (a *Acc) Add(x float64) {
	if !a.deposit(x) {
		return
	}
	a.pending++
	if a.pending >= normalizeEvery {
		a.normalize()
	}
}

// AddLdexp deposits x·2^e2 exactly, even when the scaled value exceeds
// the float64 range (it lands in the accumulator's 64 headroom bits).
// This is how the binned engine's 2^-512-scaled top bins are folded in
// at their true weight. NaN or ±Inf x poisons the accumulator; a scaled
// value that would fall outside the represented bit span panics (only
// reachable beyond ~2^50 maximum-magnitude operands).
func (a *Acc) AddLdexp(x float64, e2 int) {
	if x == 0 {
		return
	}
	bits := math.Float64bits(x)
	neg := bits>>63 == 1
	expField := int(bits >> 52 & 0x7ff)
	mant := bits & (1<<52 - 1)
	var pos int
	switch expField {
	case 0x7ff:
		a.nan = true
		return
	case 0:
		pos = e2
	default:
		mant |= 1 << 52
		pos = expField - 1023 - 52 - bias + e2
	}
	if pos < 0 || pos/limbBits+2 >= numLimbs {
		panic("superacc: AddLdexp position out of range")
	}
	limb := pos / limbBits
	shift := uint(pos % limbBits)
	lo := int64((mant << shift) & 0xffffffff)
	mid := int64((mant >> (32 - shift)) & 0xffffffff)
	hi := int64(mant >> (64 - shift) & 0xffffffff)
	if shift == 0 {
		mid = int64(mant >> 32)
		hi = 0
	}
	if neg {
		a.limbs[limb] -= lo
		a.limbs[limb+1] -= mid
		a.limbs[limb+2] -= hi
	} else {
		a.limbs[limb] += lo
		a.limbs[limb+1] += mid
		a.limbs[limb+2] += hi
	}
	a.pending++
	if a.pending >= normalizeEvery {
		a.normalize()
	}
}

// deposit performs the limb work of Add without the carry bookkeeping;
// it reports whether x actually landed in the limbs (zeros contribute
// nothing; non-finite values only set the poison flag).
func (a *Acc) deposit(x float64) bool {
	if x == 0 {
		return false
	}
	bits := math.Float64bits(x)
	neg := bits>>63 == 1
	expField := int(bits >> 52 & 0x7ff)
	mant := bits & (1<<52 - 1)
	var pos int // absolute bit position of the mantissa LSB, relative to bias
	switch expField {
	case 0x7ff:
		a.nan = true
		return false
	case 0:
		// Subnormal: value = mant * 2^bias.
		pos = 0
	default:
		mant |= 1 << 52
		// value = mant * 2^(expField-1023-52); position relative to bias.
		pos = expField - 1023 - 52 - bias
	}
	limb := pos / limbBits
	shift := uint(pos % limbBits)
	// mant has <= 53 bits; shifted left by < 32 it spans <= 85 bits,
	// i.e. up to three 32-bit chunks.
	lo := int64((mant << shift) & 0xffffffff)
	mid := int64((mant >> (32 - shift)) & 0xffffffff)
	hi := int64(mant >> (64 - shift) & 0xffffffff)
	if shift == 0 {
		mid = int64(mant >> 32)
		hi = 0
	}
	if neg {
		a.limbs[limb] -= lo
		a.limbs[limb+1] -= mid
		a.limbs[limb+2] -= hi
	} else {
		a.limbs[limb] += lo
		a.limbs[limb+1] += mid
		a.limbs[limb+2] += hi
	}
	return true
}

// AddSlice deposits every element of xs with the batch kernel: the
// pending-deposit counter and the carry-pass check are hoisted out of
// the element loop and run once per batch. Every deposit is exact, so
// the accumulated value is bit-identical to element-wise Add.
func (a *Acc) AddSlice(xs []float64) {
	for len(xs) > 0 {
		batch := xs
		// Cap each batch at the remaining carry budget so limb magnitudes
		// stay in range even without per-element checks.
		if budget := normalizeEvery - a.pending; len(batch) > budget {
			batch = xs[:budget]
		}
		n := 0
		for _, x := range batch {
			if a.deposit(x) {
				n++
			}
		}
		a.pending += n
		if a.pending >= normalizeEvery {
			a.normalize()
		}
		xs = xs[len(batch):]
	}
}

// Merge adds the contents of b into a, exactly. b is left unchanged.
func (a *Acc) Merge(b *Acc) {
	if b.nan {
		a.nan = true
	}
	// Halve both pending budgets so limb magnitudes stay in range.
	a.normalize()
	bb := *b // copy so normalize doesn't mutate the argument
	bb.normalize()
	for i := range a.limbs {
		a.limbs[i] += bb.limbs[i]
	}
	a.pending = 2
	if a.pending >= normalizeEvery {
		a.normalize()
	}
}

// normalize runs a carry pass leaving each limb in [0, 2^32) except the
// top limb, which absorbs the sign.
func (a *Acc) normalize() {
	var carry int64
	for i := 0; i < numLimbs-1; i++ {
		v := a.limbs[i] + carry
		d := v & 0xffffffff // digit in [0, 2^32)
		carry = (v - d) >> limbBits
		a.limbs[i] = d
	}
	a.limbs[numLimbs-1] += carry
	a.pending = 0
}

// Sign returns -1, 0, or +1 according to the sign of the exact sum.
// NaN-poisoned accumulators return 0.
func (a *Acc) Sign() int {
	if a.nan {
		return 0
	}
	a.normalize()
	top := a.limbs[numLimbs-1]
	if top < 0 {
		return -1
	}
	if top > 0 {
		return 1
	}
	for i := numLimbs - 2; i >= 0; i-- {
		if a.limbs[i] != 0 {
			return 1
		}
	}
	return 0
}

// IsZero reports whether the exact sum is zero.
func (a *Acc) IsZero() bool { return !a.nan && a.Sign() == 0 }

// Float64 rounds the exact sum to the nearest float64 (ties to even).
func (a *Acc) Float64() float64 {
	if a.nan {
		return math.NaN()
	}
	a.normalize()
	neg := a.limbs[numLimbs-1] < 0
	limbs := a.limbs
	if neg {
		// Two's-complement negate the digit array.
		var borrow int64
		for i := 0; i < numLimbs; i++ {
			v := -limbs[i] - borrow
			d := v & 0xffffffff
			borrow = (d - v) >> limbBits
			limbs[i] = d
		}
		// borrow ends folded into the (conceptually infinite) sign bits.
		limbs[numLimbs-1] &= 0xffffffff
	}
	// Locate the highest set bit.
	h := -1
	for i := numLimbs - 1; i >= 0; i-- {
		if limbs[i] != 0 {
			h = i
			break
		}
	}
	if h < 0 {
		return 0
	}
	top := uint64(limbs[h])
	bl := bits64Len(top)
	T := h*limbBits + bl - 1 // absolute position of the leading bit
	if T <= 52 {
		// The whole value sits in the subnormal/lowest-normal grid and
		// is exactly representable: assemble <= 53 bits directly.
		v := uint64(limbs[0])
		if numLimbs > 1 {
			v |= uint64(limbs[1]) << 32
		}
		f := math.Ldexp(float64(v), bias)
		if neg {
			f = -f
		}
		return f
	}
	e := T + bias // floor(log2 |sum|)
	if e > 1023 {
		if neg {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	// Extract the 54 bits at positions T..T-53 (53 mantissa + round bit)
	// and a sticky bit for everything below.
	mant := extractBits(&limbs, T-53, 54)
	sticky := false
	for p := 0; p < T-53; p += limbBits {
		i := p / limbBits
		v := uint64(limbs[i])
		// Mask off bits at or above position T-53 within this limb.
		hiBit := T - 53 - i*limbBits
		if hiBit < limbBits {
			v &= (1 << uint(hiBit)) - 1
		}
		if v != 0 {
			sticky = true
			break
		}
	}
	round := mant & 1
	mant >>= 1 // now the 53-bit significand
	if round == 1 && (sticky || mant&1 == 1) {
		mant++
		if mant == 1<<53 {
			mant >>= 1
			e++
			if e > 1023 {
				if neg {
					return math.Inf(-1)
				}
				return math.Inf(1)
			}
		}
	}
	f := math.Ldexp(float64(mant), e-52)
	if neg {
		f = -f
	}
	return f
}

// extractBits reads n (<= 63) bits starting at absolute bit position lo
// from the normalized digit array.
func extractBits(limbs *[numLimbs]int64, lo, n int) uint64 {
	var out uint64
	for k := 0; k < n; {
		p := lo + k
		i := p / limbBits
		s := uint(p % limbBits)
		if i >= numLimbs {
			break
		}
		chunk := uint64(limbs[i]) >> s
		take := limbBits - int(s)
		if take > n-k {
			take = n - k
		}
		out |= (chunk & ((1 << uint(take)) - 1)) << uint(k)
		k += take
	}
	return out
}

func bits64Len(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// BigFloat returns the exact sum as a big.Float with prec bits of
// precision (use >= 2200 for a guaranteed-exact conversion).
func (a *Acc) BigFloat(prec uint) *big.Float {
	if a.nan {
		return nil
	}
	a.normalize()
	neg := a.limbs[numLimbs-1] < 0
	limbs := a.limbs
	if neg {
		var borrow int64
		for i := 0; i < numLimbs; i++ {
			v := -limbs[i] - borrow
			d := v & 0xffffffff
			borrow = (d - v) >> limbBits
			limbs[i] = d
		}
		limbs[numLimbs-1] &= 0xffffffff
	}
	z := new(big.Int)
	for i := numLimbs - 1; i >= 0; i-- {
		z.Lsh(z, limbBits)
		z.Add(z, big.NewInt(limbs[i]))
	}
	f := new(big.Float).SetPrec(prec).SetInt(z)
	f.SetMantExp(f, bias) // f = integer digits scaled by 2^bias
	if neg {
		f.Neg(f)
	}
	return f
}

// Sum computes the exact, correctly rounded sum of xs in one call.
func Sum(xs []float64) float64 {
	var a Acc
	a.AddSlice(xs)
	return a.Float64()
}
