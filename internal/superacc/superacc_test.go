package superacc

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/fpu"
)

// refSum computes the correctly rounded sum via big.Float at high precision.
func refSum(xs []float64) float64 {
	acc := new(big.Float).SetPrec(2200)
	for _, x := range xs {
		acc.Add(acc, new(big.Float).SetPrec(2200).SetFloat64(x))
	}
	f, _ := acc.Float64()
	return f
}

func TestSingleValues(t *testing.T) {
	cases := []float64{
		0, 1, -1, 0.5, math.Pi, 1e300, -1e300, 1e-300,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, -math.MaxFloat64,
		0x1p-1022,               // smallest normal
		0x1.fffffffffffffp-1023, // largest subnormal
		1.5e-310,                // subnormal
		6755399441055744.0,      // 1.5*2^52
		-0x1.0000000000001p+0,   // 1+ulp
	}
	for _, x := range cases {
		var a Acc
		a.Add(x)
		if got := a.Float64(); got != x && !(math.IsNaN(got) && math.IsNaN(x)) {
			t.Errorf("roundtrip(%g) = %g (bits %x vs %x)", x, got,
				math.Float64bits(got), math.Float64bits(x))
		}
	}
}

func TestExactCancellation(t *testing.T) {
	var a Acc
	a.Add(1e9)
	a.Add(1e-9)
	a.Add(-1e9)
	if got := a.Float64(); got != 1e-9 {
		t.Errorf("1e9 + 1e-9 - 1e9 = %g, want 1e-9", got)
	}
}

func TestOrderIndependenceExhaustive(t *testing.T) {
	xs := []float64{1e9, -1e9, 1e-9, 3.14, -2.5e8, 0x1p-1050}
	perms := permute(len(xs))
	var want float64
	for pi, p := range perms {
		var a Acc
		for _, i := range p {
			a.Add(xs[i])
		}
		got := a.Float64()
		if pi == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("perm %d: sum %g != %g", pi, got, want)
		}
	}
	if want != refSum(xs) {
		t.Errorf("exact sum %g != reference %g", want, refSum(xs))
	}
}

func permute(n int) [][]int {
	if n == 1 {
		return [][]int{{0}}
	}
	sub := permute(n - 1)
	var out [][]int
	for _, p := range sub {
		for i := 0; i <= len(p); i++ {
			q := make([]int, 0, n)
			q = append(q, p[:i]...)
			q = append(q, n-1)
			q = append(q, p[i:]...)
			out = append(out, q)
		}
	}
	return out
}

func TestAgainstBigFloatProperty(t *testing.T) {
	rng := fpu.NewRNG(1234)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		r := fpu.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			// Wide dynamic range, mixed signs.
			e := r.Intn(600) - 300
			xs[i] = math.Ldexp(r.Float64()*2-1, e)
		}
		got := Sum(xs)
		want := refSum(xs)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Logf("sum mismatch: %g vs %g (n=%d seed=%d)", got, want, n, seed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSubnormalResults(t *testing.T) {
	// Sum lands exactly in the subnormal range.
	xs := []float64{0x1p-1060, 0x1p-1060, -0x1p-1061}
	got := Sum(xs)
	want := 0x1.8p-1060
	if got != want {
		t.Errorf("subnormal sum = %g, want %g", got, want)
	}
}

func TestRoundingTiesToEven(t *testing.T) {
	// 1 + 2^-53 is exactly halfway between 1 and 1+2^-52: must round to 1.
	got := Sum([]float64{1, 0x1p-53})
	if got != 1 {
		t.Errorf("tie not rounded to even: %g (bits %x)", got, math.Float64bits(got))
	}
	// 1 + 2^-53 + 2^-100: sticky bit set, must round up.
	got = Sum([]float64{1, 0x1p-53, 0x1p-100})
	if got != 1+0x1p-52 {
		t.Errorf("sticky rounding failed: %g", got)
	}
	// (1+2^-52) + 2^-53: halfway, mantissa odd, rounds up to 1+2^-51.
	got = Sum([]float64{1 + 0x1p-52, 0x1p-53})
	if got != 1+0x1p-51 {
		t.Errorf("ties-to-even up case failed: %g", got)
	}
}

func TestNegativeSums(t *testing.T) {
	xs := []float64{-1.5, -2.25, 0.75}
	if got := Sum(xs); got != -3.0 {
		t.Errorf("negative sum = %g, want -3", got)
	}
}

func TestOverflowToInf(t *testing.T) {
	var a Acc
	for i := 0; i < 4; i++ {
		a.Add(math.MaxFloat64)
	}
	if got := a.Float64(); !math.IsInf(got, 1) {
		t.Errorf("4*MaxFloat64 should be +Inf, got %g", got)
	}
	a.Reset()
	for i := 0; i < 4; i++ {
		a.Add(-math.MaxFloat64)
	}
	if got := a.Float64(); !math.IsInf(got, -1) {
		t.Errorf("-4*MaxFloat64 should be -Inf, got %g", got)
	}
}

func TestNaNPoisons(t *testing.T) {
	var a Acc
	a.Add(1)
	a.Add(math.NaN())
	if !math.IsNaN(a.Float64()) {
		t.Error("NaN did not poison the accumulator")
	}
	a.Reset()
	a.Add(math.Inf(1))
	if !math.IsNaN(a.Float64()) {
		t.Error("Inf should poison (exact sum undefined)")
	}
}

func TestMerge(t *testing.T) {
	r := fpu.NewRNG(77)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(100)-50)
	}
	var whole Acc
	whole.AddSlice(xs)
	var left, right Acc
	left.AddSlice(xs[:400])
	right.AddSlice(xs[400:])
	left.Merge(&right)
	if got, want := left.Float64(), whole.Float64(); got != want {
		t.Errorf("merged sum %g != whole sum %g", got, want)
	}
	// Merge must not mutate its argument.
	var rcheck Acc
	rcheck.AddSlice(xs[400:])
	if right.Float64() != rcheck.Float64() {
		t.Error("Merge mutated its argument")
	}
}

func TestSignAndIsZero(t *testing.T) {
	var a Acc
	if a.Sign() != 0 || !a.IsZero() {
		t.Error("empty accumulator should be zero")
	}
	a.Add(3)
	a.Add(-3)
	if !a.IsZero() {
		t.Error("3-3 should be exactly zero")
	}
	a.Add(-1e-300)
	if a.Sign() != -1 {
		t.Error("sign should be negative")
	}
	a.Add(2e-300)
	if a.Sign() != 1 {
		t.Error("sign should be positive")
	}
}

func TestManyDepositsNormalization(t *testing.T) {
	// Enough same-limb deposits to exercise intermediate carries.
	var a Acc
	n := 1 << 16
	for i := 0; i < n; i++ {
		a.Add(1.0)
		a.Add(0x1p-40)
	}
	want := float64(n) + float64(n)*0x1p-40
	if got := a.Float64(); got != want {
		t.Errorf("repeated deposits: %g, want %g", got, want)
	}
}

func TestBigFloatAgrees(t *testing.T) {
	xs := []float64{1e9, -1e9, 1e-9, math.Pi, -1e-20}
	var a Acc
	a.AddSlice(xs)
	bf := a.BigFloat(2200)
	f64, _ := bf.Float64()
	if f64 != a.Float64() {
		t.Errorf("BigFloat %g disagrees with Float64 %g", f64, a.Float64())
	}
}

func TestSumZeroSeries(t *testing.T) {
	// Construct an exactly-cancelling set and shuffle it many times.
	r := fpu.NewRNG(99)
	base := make([]float64, 0, 2000)
	for i := 0; i < 1000; i++ {
		v := math.Ldexp(r.Float64()+0.5, r.Intn(64)-32)
		base = append(base, v, -v)
	}
	for trial := 0; trial < 20; trial++ {
		r.Shuffle(base)
		if got := Sum(base); got != 0 {
			t.Fatalf("trial %d: exact-zero set summed to %g", trial, got)
		}
	}
}
