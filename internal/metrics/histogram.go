package metrics

import "math"

// Histogram bins the log10 magnitudes of a sample — the natural view of
// error distributions that span decades (Fig 2's x-axis).
type Histogram struct {
	// LogLo/LogHi bound the binned range in log10 units.
	LogLo, LogHi float64
	Counts       []int
	// Zeros counts exact zeros (unrepresentable on a log axis).
	Zeros int
}

// LogHistogram builds a histogram of log10|x| with the given number of
// bins spanning the sample's nonzero magnitude range. Returns a
// zero-bin histogram for all-zero or empty samples.
func LogHistogram(sample []float64, bins int) Histogram {
	if bins < 1 {
		bins = 10
	}
	h := Histogram{}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range sample {
		a := math.Abs(v)
		if a == 0 || math.IsInf(a, 0) || math.IsNaN(a) {
			continue
		}
		lo = math.Min(lo, a)
		hi = math.Max(hi, a)
	}
	for _, v := range sample {
		if v == 0 {
			h.Zeros++
		}
	}
	if math.IsInf(lo, 1) {
		return h
	}
	h.LogLo = math.Log10(lo)
	h.LogHi = math.Log10(hi)
	if h.LogHi <= h.LogLo {
		h.LogHi = h.LogLo + 1
	}
	h.Counts = make([]int, bins)
	span := h.LogHi - h.LogLo
	for _, v := range sample {
		a := math.Abs(v)
		if a == 0 || math.IsInf(a, 0) || math.IsNaN(a) {
			continue
		}
		idx := int((math.Log10(a) - h.LogLo) / span * float64(bins))
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Counts[idx]++
	}
	return h
}

// Total returns the number of binned (nonzero finite) observations.
func (h Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter returns the magnitude at the center of bin i.
func (h Histogram) BinCenter(i int) float64 {
	if len(h.Counts) == 0 {
		return 0
	}
	span := h.LogHi - h.LogLo
	frac := (float64(i) + 0.5) / float64(len(h.Counts))
	return math.Pow(10, h.LogLo+frac*span)
}
