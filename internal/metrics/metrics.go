// Package metrics computes the quantities the paper uses to characterize
// operand sets and result distributions: the sum condition number, the
// dynamic range, worst-case error bounds (analytic and statistical), and
// the descriptive statistics (standard deviation, boxplot five-number
// summaries) behind every figure.
package metrics

import (
	"math"
	"sort"

	"repro/internal/fpu"
	"repro/internal/superacc"
)

// CondNumber returns the sum condition number k = sum|x| / |sum x|,
// computed exactly (both reductions use the exact superaccumulator).
// Sets whose exact sum is zero have k = +Inf, matching the paper's
// "condition number infinity means the sum of all the values is 0".
func CondNumber(xs []float64) float64 {
	var num, den superacc.Acc
	for _, x := range xs {
		num.Add(math.Abs(x))
		den.Add(x)
	}
	n := num.Float64()
	if den.IsZero() {
		if n == 0 {
			return 1 // empty or all-zero set: perfectly conditioned
		}
		return math.Inf(1)
	}
	return n / math.Abs(den.Float64())
}

// DynRange returns the binary dynamic range of xs: the difference
// between the largest and smallest binary exponent among the nonzero
// values. Zero means all nonzero values share one exponent. The paper
// quotes dynamic ranges in decimal digits in Table I; see
// DecimalDynRange for that convention (1 decimal ≈ 3.32 binary).
func DynRange(xs []float64) int {
	lo, hi, any := 0, 0, false
	for _, x := range xs {
		if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		e := fpu.Exponent(x)
		if !any {
			lo, hi, any = e, e, true
			continue
		}
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if !any {
		return 0
	}
	return hi - lo
}

// DecimalDynRange returns the dynamic range in decimal exponent digits,
// the convention of the paper's Table I.
func DecimalDynRange(xs []float64) int {
	lo, hi, any := 0, 0, false
	for _, x := range xs {
		if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		e := int(math.Floor(math.Log10(math.Abs(x))))
		if !any {
			lo, hi, any = e, e, true
			continue
		}
		if e < lo {
			lo = e
		}
		if e > hi {
			hi = e
		}
	}
	if !any {
		return 0
	}
	return hi - lo
}

// AbsSum returns sum(|x|) computed exactly and rounded once.
func AbsSum(xs []float64) float64 {
	var a superacc.Acc
	for _, x := range xs {
		a.Add(math.Abs(x))
	}
	return a.Float64()
}

// MaxAbs returns max(|x|).
func MaxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AnalyticBound returns the deterministic worst-case absolute error
// bound for summing xs in any order: n * u * sum|x| (Higham), the bound
// Fig 2 shows to be a gross overestimate.
func AnalyticBound(xs []float64) float64 {
	n := float64(len(xs))
	return n * fpu.UnitRoundoff * AbsSum(xs)
}

// StatisticalBound returns the probabilistic ("statistical worst-case")
// error bound sqrt(n) * u * sum|x|, the shape of Higham's probabilistic
// analysis under random rounding; Fig 2's second reference line.
func StatisticalBound(xs []float64) float64 {
	n := float64(len(xs))
	return math.Sqrt(n) * fpu.UnitRoundoff * AbsSum(xs)
}

// Stats is a descriptive summary of a sample.
type Stats struct {
	N                int
	Mean, StdDev     float64
	Min, Max         float64
	Median           float64
	Q1, Q3           float64 // quartiles
	WhiskLo, WhiskHi float64 // Tukey whiskers (1.5*IQR fences clamped to data)
	Outliers         []float64
}

// Spread returns Max - Min.
func (s Stats) Spread() float64 { return s.Max - s.Min }

// IQR returns the interquartile range.
func (s Stats) IQR() float64 { return s.Q3 - s.Q1 }

// Describe computes descriptive statistics of sample (boxplot-ready).
// An empty sample returns the zero Stats.
func Describe(sample []float64) Stats {
	n := len(sample)
	if n == 0 {
		return Stats{}
	}
	sorted := make([]float64, n)
	copy(sorted, sample)
	sort.Float64s(sorted)
	var st Stats
	st.N = n
	st.Min, st.Max = sorted[0], sorted[n-1]
	// Mean and variance via exact accumulation of the moments.
	var sum1, sum2 superacc.Acc
	for _, v := range sorted {
		sum1.Add(v)
		sum2.Add(v * v)
	}
	mean := sum1.Float64() / float64(n)
	st.Mean = mean
	if n > 1 {
		// Var = (sum2 - n*mean^2) / (n-1), guarded against tiny negatives.
		v := (sum2.Float64() - float64(n)*mean*mean) / float64(n-1)
		if v > 0 {
			st.StdDev = math.Sqrt(v)
		}
	}
	fillOrderStats(&st, sorted)
	return st
}

// fillOrderStats fills the order statistics of st — median, quartiles,
// Tukey whiskers, and outliers — from a sorted non-empty sample.
func fillOrderStats(st *Stats, sorted []float64) {
	st.Median = quantile(sorted, 0.5)
	st.Q1 = quantile(sorted, 0.25)
	st.Q3 = quantile(sorted, 0.75)
	fenceLo := st.Q1 - 1.5*st.IQR()
	fenceHi := st.Q3 + 1.5*st.IQR()
	st.WhiskLo, st.WhiskHi = st.Median, st.Median
	first := true
	for _, v := range sorted {
		if v < fenceLo || v > fenceHi {
			st.Outliers = append(st.Outliers, v)
			continue
		}
		if first {
			st.WhiskLo = v
			first = false
		}
		st.WhiskHi = v
	}
}

// quantile interpolates the q-quantile of a sorted sample (type 7).
func quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Errors maps computed sums to absolute errors against a reference.
func Errors(sums []float64, reference float64) []float64 {
	out := make([]float64, len(sums))
	for i, s := range sums {
		out[i] = math.Abs(s - reference)
	}
	return out
}

// ErrorStats is shorthand for Describe(Errors(sums, ref)).
func ErrorStats(sums []float64, reference float64) Stats {
	return Describe(Errors(sums, reference))
}

// DistinctValues returns the number of distinct float64 bit patterns in
// sums — 1 means bitwise reproducible across the sample.
func DistinctValues(sums []float64) int {
	seen := make(map[uint64]struct{}, len(sums))
	for _, s := range sums {
		seen[math.Float64bits(s)] = struct{}{}
	}
	return len(seen)
}
