package metrics

import (
	"math"
	"testing"

	"repro/internal/fpu"
)

func streamSample(n int, seed uint64) []float64 {
	r := fpu.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 100 + math.Ldexp(r.Float64()-0.5, r.Intn(20)-30)
	}
	// A few exact repeats so Distinct < n.
	for i := 5; i < n; i += 7 {
		xs[i] = xs[i-5]
	}
	return xs
}

func TestErrorStreamMatchesBatchStats(t *testing.T) {
	const ref = 100.0
	sums := streamSample(500, 3)
	s := NewErrorStream(ref, len(sums))
	for _, v := range sums {
		s.Observe(v)
	}
	batch := ErrorStats(sums, ref)
	if s.N() != batch.N {
		t.Fatalf("N %d != %d", s.N(), batch.N)
	}
	// Min and max are exact; Welford moments agree with the exact
	// superaccumulator moments to tight relative tolerance.
	if s.Min() != batch.Min || s.Max() != batch.Max {
		t.Errorf("min/max: stream (%g, %g) vs batch (%g, %g)", s.Min(), s.Max(), batch.Min, batch.Max)
	}
	if rel := math.Abs(s.Mean()-batch.Mean) / batch.Mean; rel > 1e-12 {
		t.Errorf("mean off by %g relative", rel)
	}
	if rel := math.Abs(s.StdDev()-batch.StdDev) / batch.StdDev; rel > 1e-9 {
		t.Errorf("stddev off by %g relative", rel)
	}
	if s.Distinct() != DistinctValues(sums) {
		t.Errorf("distinct %d != %d", s.Distinct(), DistinctValues(sums))
	}
}

func TestErrorStreamMergeDeterministicAndAccurate(t *testing.T) {
	const ref = 100.0
	sums := streamSample(300, 9)
	merged := func() *ErrorStream {
		var blocks []*ErrorStream
		for lo := 0; lo < len(sums); lo += 64 {
			hi := lo + 64
			if hi > len(sums) {
				hi = len(sums)
			}
			b := NewErrorStream(ref, hi-lo)
			for _, v := range sums[lo:hi] {
				b.Observe(v)
			}
			blocks = append(blocks, b)
		}
		agg := blocks[0]
		for _, b := range blocks[1:] {
			agg.Merge(b)
		}
		return agg
	}
	a, b := merged(), merged()
	// Fixed block boundaries + fixed merge order => bitwise repeatable.
	if math.Float64bits(a.Mean()) != math.Float64bits(b.Mean()) ||
		math.Float64bits(a.StdDev()) != math.Float64bits(b.StdDev()) {
		t.Error("blockwise merge not bitwise repeatable")
	}
	// And close to the single-stream result.
	single := NewErrorStream(ref, len(sums))
	for _, v := range sums {
		single.Observe(v)
	}
	if a.N() != single.N() || a.Distinct() != single.Distinct() {
		t.Errorf("merge lost observations: N %d/%d distinct %d/%d",
			a.N(), single.N(), a.Distinct(), single.Distinct())
	}
	if a.Min() != single.Min() || a.Max() != single.Max() {
		t.Error("merge min/max mismatch")
	}
	if rel := math.Abs(a.StdDev()-single.StdDev()) / single.StdDev(); rel > 1e-9 {
		t.Errorf("merged stddev off by %g relative", rel)
	}
	// Merging an empty stream is the identity.
	before := a.StdDev()
	a.Merge(NewErrorStream(ref, 0))
	if a.StdDev() != before {
		t.Error("merging empty stream changed moments")
	}
}

func TestErrorStreamEdgeCases(t *testing.T) {
	s := NewErrorStream(1, 0)
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Distinct() != 0 {
		t.Error("empty stream should report zeros")
	}
	s.Observe(1) // exact hit: error 0
	if s.StdDev() != 0 || s.Max() != 0 || s.Distinct() != 1 {
		t.Errorf("single exact observation: sd=%g max=%g distinct=%d", s.StdDev(), s.Max(), s.Distinct())
	}
	st := s.Stats()
	if st.N != 1 || st.Max != 0 {
		t.Errorf("Stats: %+v", st)
	}
}

func TestErrorStreamDescribeQuantiles(t *testing.T) {
	const ref = 0.0
	sums := streamSample(101, 17)
	s := NewErrorStream(ref, len(sums))
	errs := make([]float64, 0, len(sums))
	for _, v := range sums {
		errs = append(errs, s.Observe(v))
	}
	got := s.Describe(errs)
	want := ErrorStats(sums, ref)
	if got.Median != want.Median || got.Q1 != want.Q1 || got.Q3 != want.Q3 ||
		got.WhiskLo != want.WhiskLo || got.WhiskHi != want.WhiskHi ||
		len(got.Outliers) != len(want.Outliers) {
		t.Errorf("order statistics diverge: got %+v want %+v", got, want)
	}
}

func TestErrorStreamSteadyStateZeroAllocs(t *testing.T) {
	s := NewErrorStream(10, 4)
	vals := []float64{10.5, 9.25, 10.125, 11}
	for _, v := range vals {
		s.Observe(v)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, v := range vals {
			s.Observe(v)
		}
	})
	if allocs != 0 {
		t.Errorf("%g allocs per steady-state observation batch, want 0", allocs)
	}
}
