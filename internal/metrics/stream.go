package metrics

import (
	"math"
	"sort"
)

// ErrorStream accumulates the error statistics of computed sums against
// a fixed reference, one observation at a time: Welford mean/variance,
// running min/max, and the set of distinct result bit patterns. It is
// the streaming replacement for materializing a per-algorithm sums
// slice and calling ErrorStats on it — the fused sweep engine keeps one
// ErrorStream per algorithm lane and never builds the slice.
//
// Observing a value already seen costs no allocations, so the fused
// trial loop's steady state stays allocation-free; only genuinely new
// bit patterns may grow the distinct set.
type ErrorStream struct {
	ref      float64
	n        int
	mean, m2 float64
	min, max float64
	distinct map[uint64]struct{}
}

// NewErrorStream returns a stream measuring errors against reference.
// sizeHint, when positive, pre-sizes the distinct-bits set (pass the
// expected trial count to avoid rehashing mid-sweep).
func NewErrorStream(reference float64, sizeHint int) *ErrorStream {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &ErrorStream{
		ref:      reference,
		min:      math.Inf(1),
		max:      math.Inf(-1),
		distinct: make(map[uint64]struct{}, sizeHint),
	}
}

// Observe folds one computed sum into the stream and returns the
// absolute error it contributed.
func (s *ErrorStream) Observe(sum float64) float64 {
	e := math.Abs(sum - s.ref)
	s.n++
	delta := e - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (e - s.mean)
	if e < s.min {
		s.min = e
	}
	if e > s.max {
		s.max = e
	}
	s.distinct[math.Float64bits(sum)] = struct{}{}
	return e
}

// N returns the number of observations.
func (s *ErrorStream) N() int { return s.n }

// Mean returns the running mean absolute error.
func (s *ErrorStream) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// StdDev returns the sample standard deviation (n-1 divisor) of the
// absolute errors, 0 for fewer than two observations.
func (s *ErrorStream) StdDev() float64 {
	if s.n < 2 || s.m2 <= 0 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Min returns the smallest error observed (0 when empty).
func (s *ErrorStream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest error observed (0 when empty).
func (s *ErrorStream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Distinct returns the number of distinct sum bit patterns observed —
// 1 means bitwise reproducible across the sample.
func (s *ErrorStream) Distinct() int { return len(s.distinct) }

// Merge folds stream o into s (Chan et al. parallel moment
// combination). Both streams must measure against the same reference.
// Merging the per-block streams of a sweep in a fixed block order makes
// the combined statistics bitwise-stable at any worker count.
func (s *ErrorStream) Merge(o *ErrorStream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.n, s.mean, s.m2, s.min, s.max = o.n, o.mean, o.m2, o.min, o.max
	} else {
		na, nb := float64(s.n), float64(o.n)
		tot := na + nb
		delta := o.mean - s.mean
		s.mean += delta * nb / tot
		s.m2 += o.m2 + delta*delta*na*nb/tot
		s.n += o.n
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	for bits := range o.distinct {
		s.distinct[bits] = struct{}{}
	}
}

// Stats returns the moment statistics of the stream as a Stats value;
// the order statistics (median, quartiles, whiskers, outliers) are left
// zero — use Describe with the retained error sample to fill them.
func (s *ErrorStream) Stats() Stats {
	return Stats{
		N:      s.n,
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		Max:    s.Max(),
	}
}

// Describe returns the stream's moment statistics combined with the
// order statistics of errs, which must be the sample of errors the
// stream observed (as returned by Observe). errs is sorted in place —
// no copy is taken, unlike Describe(Errors(sums, ref)).
func (s *ErrorStream) Describe(errs []float64) Stats {
	st := s.Stats()
	if len(errs) == 0 {
		return st
	}
	sort.Float64s(errs)
	fillOrderStats(&st, errs)
	return st
}
