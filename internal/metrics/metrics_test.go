package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fpu"
)

func TestCondNumberSameSign(t *testing.T) {
	if k := CondNumber([]float64{1, 2, 3}); k != 1 {
		t.Errorf("same-sign k = %g, want 1", k)
	}
	if k := CondNumber([]float64{-1, -2, -3}); k != 1 {
		t.Errorf("negative same-sign k = %g, want 1", k)
	}
}

func TestCondNumberZeroSum(t *testing.T) {
	if k := CondNumber([]float64{1e9, -1e9, 3.5, -3.5}); !math.IsInf(k, 1) {
		t.Errorf("zero-sum k = %g, want +Inf", k)
	}
}

func TestCondNumberKnownValue(t *testing.T) {
	// sum|x| = 1000, sum x = 1 -> k = 1000.
	xs := []float64{500.5, -499.5}
	if k := CondNumber(xs); k != 1000 {
		t.Errorf("k = %g, want 1000", k)
	}
}

func TestCondNumberEmptyAndZeros(t *testing.T) {
	if k := CondNumber(nil); k != 1 {
		t.Errorf("empty k = %g", k)
	}
	if k := CondNumber([]float64{0, 0}); k != 1 {
		t.Errorf("all-zero k = %g", k)
	}
}

func TestCondNumberAtLeastOne(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := fpu.NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(60)-30)
		}
		return CondNumber(xs) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDynRange(t *testing.T) {
	if dr := DynRange([]float64{1, 1.5, 1.9}); dr != 0 {
		t.Errorf("same-exponent dr = %d, want 0", dr)
	}
	if dr := DynRange([]float64{1, 256}); dr != 8 {
		t.Errorf("dr = %d, want 8", dr)
	}
	if dr := DynRange([]float64{-1, 0, 65536}); dr != 16 {
		t.Errorf("dr with zero/mixed = %d, want 16", dr)
	}
	if dr := DynRange(nil); dr != 0 {
		t.Errorf("empty dr = %d", dr)
	}
	if dr := DynRange([]float64{0, 0}); dr != 0 {
		t.Errorf("zeros dr = %d", dr)
	}
}

func TestDecimalDynRangeTableIExamples(t *testing.T) {
	// Rows of the paper's Table I with their stated dr values.
	cases := []struct {
		xs []float64
		dr int
	}{
		{[]float64{1.23e32, 1.35e32, 2.37e32, 3.54e32}, 0},
		{[]float64{1.23e-32, 1.35e-32, 2.37e-32, 3.54e-32}, 0},
		{[]float64{-1.23e16, -1.35e16, -2.37e16, -3.54e16}, 0},
		{[]float64{2.37e16, 3.41e8, 4.32e8, 8.14e16}, 8},
		{[]float64{3.14e32, 1.59e16, 2.65e18, 3.58e24}, 16},
		{[]float64{3.14e8, 1.59e8, -3.14e8, -1.59e8}, 0},
		{[]float64{3.14e4, 1.59e-4, -3.14e4, -1.59e-4}, 8},
		{[]float64{3.14e8, 1.59e-8, -3.14e8, -1.59e-8}, 16},
	}
	for i, c := range cases {
		if got := DecimalDynRange(c.xs); got != c.dr {
			t.Errorf("row %d: decimal dr = %d, want %d", i, got, c.dr)
		}
	}
}

func TestBoundsOrdering(t *testing.T) {
	r := fpu.NewRNG(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()*2000 - 1000
	}
	ab := AnalyticBound(xs)
	sb := StatisticalBound(xs)
	if !(sb < ab) {
		t.Errorf("statistical bound %g should be below analytic %g", sb, ab)
	}
	if ab <= 0 || sb <= 0 {
		t.Error("bounds must be positive for nonzero data")
	}
	// For n = 10000 the ratio is sqrt(n) = 100.
	if ratio := ab / sb; math.Abs(ratio-100) > 1e-9 {
		t.Errorf("bound ratio = %g, want 100", ratio)
	}
}

func TestDescribeKnownSample(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("basic stats wrong: %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles: Q1=%g Q3=%g", s.Q1, s.Q3)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("stddev = %g, want %g", s.StdDev, math.Sqrt(2.5))
	}
	if s.Spread() != 4 || s.IQR() != 2 {
		t.Errorf("spread/IQR wrong: %g %g", s.Spread(), s.IQR())
	}
}

func TestDescribeOutliers(t *testing.T) {
	s := Describe([]float64{1, 2, 2, 3, 3, 3, 4, 4, 100})
	if len(s.Outliers) != 1 || s.Outliers[0] != 100 {
		t.Errorf("outliers = %v, want [100]", s.Outliers)
	}
	if s.WhiskHi != 4 {
		t.Errorf("upper whisker = %g, want 4", s.WhiskHi)
	}
}

func TestDescribeEdge(t *testing.T) {
	if s := Describe(nil); s.N != 0 {
		t.Error("empty sample should be zero Stats")
	}
	s := Describe([]float64{7})
	if s.Median != 7 || s.StdDev != 0 || s.Min != 7 || s.Max != 7 {
		t.Errorf("single sample: %+v", s)
	}
}

func TestDescribeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Describe(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Describe mutated its input")
	}
}

func TestErrorsAndDistinct(t *testing.T) {
	errs := Errors([]float64{1, 2, 4}, 2)
	if errs[0] != 1 || errs[1] != 0 || errs[2] != 2 {
		t.Errorf("Errors = %v", errs)
	}
	if DistinctValues([]float64{1, 1, 1}) != 1 {
		t.Error("distinct of identical should be 1")
	}
	if DistinctValues([]float64{1, -1, 2}) != 3 {
		t.Error("distinct count wrong")
	}
	// +0 and -0 have different bit patterns: document that behavior.
	if DistinctValues([]float64{0, math.Copysign(0, -1)}) != 2 {
		t.Error("signed zeros should count as distinct bit patterns")
	}
}

func TestMaxAbsAndAbsSum(t *testing.T) {
	xs := []float64{-5, 3, 4}
	if MaxAbs(xs) != 5 {
		t.Errorf("MaxAbs = %g", MaxAbs(xs))
	}
	if AbsSum(xs) != 12 {
		t.Errorf("AbsSum = %g", AbsSum(xs))
	}
}

func TestStdDevExactOnConstantSample(t *testing.T) {
	s := Describe([]float64{3.7, 3.7, 3.7, 3.7})
	if s.StdDev != 0 {
		t.Errorf("constant sample stddev = %g, want exactly 0", s.StdDev)
	}
}

func TestLogHistogramBasics(t *testing.T) {
	sample := []float64{1e-10, 2e-10, 1e-5, 0, 0, -1e-2}
	h := LogHistogram(sample, 8)
	if h.Zeros != 2 {
		t.Errorf("zeros = %d", h.Zeros)
	}
	if h.Total() != 4 {
		t.Errorf("binned = %d", h.Total())
	}
	if h.LogLo > -10+1e-9 || h.LogHi < -2-1e-9 {
		t.Errorf("range [%g, %g]", h.LogLo, h.LogHi)
	}
	// Bin centers must be monotone increasing magnitudes.
	prev := 0.0
	for i := range h.Counts {
		c := h.BinCenter(i)
		if c <= prev {
			t.Errorf("bin centers not increasing at %d", i)
		}
		prev = c
	}
}

func TestLogHistogramEdge(t *testing.T) {
	if h := LogHistogram(nil, 5); h.Total() != 0 || h.Zeros != 0 {
		t.Error("empty sample")
	}
	if h := LogHistogram([]float64{0, 0}, 5); h.Total() != 0 || h.Zeros != 2 {
		t.Error("all-zero sample")
	}
	// Single value: degenerate range widened to one decade.
	h := LogHistogram([]float64{3.0}, 5)
	if h.Total() != 1 {
		t.Error("single value lost")
	}
	// Invalid bins fall back to a default.
	if h := LogHistogram([]float64{1, 10}, 0); len(h.Counts) == 0 {
		t.Error("bins fallback failed")
	}
}
