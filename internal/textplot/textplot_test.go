package textplot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestHeatmapBasic(t *testing.T) {
	out := Heatmap("title",
		[]string{"r1", "r2"},
		[]string{"c1", "c2", "c3"},
		[][]float64{{0, 1e-15, 1e-10}, {1e-12, math.Inf(1), math.NaN()}})
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "r1") || !strings.Contains(out, "c3") {
		t.Error("missing labels")
	}
	if !strings.Contains(out, "!") {
		t.Error("Inf cell not marked")
	}
	if !strings.Contains(out, "?") {
		t.Error("NaN cell not marked")
	}
	if !strings.Contains(out, "shade scale") {
		t.Error("missing legend")
	}
	// Larger values must shade darker than smaller ones.
	r1 := lineContaining(out, "r1")
	i10 := strings.IndexByte(shades, shadeAt(r1, 2))
	i15 := strings.IndexByte(shades, shadeAt(r1, 1))
	if i10 <= i15 {
		t.Errorf("1e-10 (%d) should be darker than 1e-15 (%d): %q", i10, i15, r1)
	}
}

// shadeAt slices the fixed-width cell layout: after '|' each cell is a
// space followed by wCol=3 shade characters.
func shadeAt(row string, cell int) byte {
	rest := strings.SplitN(row, "|", 2)[1]
	return rest[cell*4+1]
}

func lineContaining(s, sub string) string {
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			return l
		}
	}
	return ""
}

func TestBoxplotRendersAll(t *testing.T) {
	stats := []metrics.Stats{
		metrics.Describe([]float64{1e-12, 2e-12, 3e-12, 4e-12, 1e-9}),
		metrics.Describe([]float64{0, 0, 0}),
		{},
	}
	out := Boxplot("errors", []string{"ST", "PR", "none"}, stats, 60)
	if !strings.Contains(out, "ST") || !strings.Contains(out, "PR") {
		t.Error("missing labels")
	}
	if !strings.Contains(out, "|") {
		t.Error("missing median marker")
	}
	if !strings.Contains(out, "log10 axis") {
		t.Error("missing axis legend")
	}
	if strings.Count(out, "\n") < 4 {
		t.Error("too few lines")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("times", []string{"ST", "K", "CP", "PR"}, []float64{1, 2, 3, 6}, 30)
	lines := strings.Split(strings.TrimSpace(out), "\n")[1:]
	prev := -1
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n < prev {
			t.Errorf("bars not monotone: %q", out)
		}
		prev = n
	}
	if !strings.Contains(lines[3], strings.Repeat("#", 30)) {
		t.Error("max bar should reach full width")
	}
}

func TestBarChartZeros(t *testing.T) {
	out := BarChart("empty", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "a") {
		t.Error("label missing for zero bar")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"alg", "time"}, [][]string{{"ST", "1.0"}, {"PR", "6.5"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator width mismatch")
	}
	if !strings.HasPrefix(lines[2], "ST ") {
		t.Errorf("row misaligned: %q", lines[2])
	}
}

func TestHistogramRendering(t *testing.T) {
	h := metrics.LogHistogram([]float64{1e-10, 1e-10, 1e-5, 0}, 6)
	out := Histogram("errors", h, map[string]float64{"bound": 1e-3}, 20)
	if !strings.Contains(out, "errors") || !strings.Contains(out, "#") {
		t.Error("histogram missing content")
	}
	if !strings.Contains(out, "bound") {
		t.Error("marker missing")
	}
	if !strings.Contains(out, "0 |") {
		t.Error("zero row missing")
	}
	empty := Histogram("none", metrics.Histogram{}, nil, 20)
	if !strings.Contains(empty, "no nonzero") {
		t.Error("empty case not handled")
	}
}
