// Package textplot renders the repository's experiment results as
// terminal graphics: horizontal boxplots on a log scale (Figs 6, 7),
// shaded heatmaps (Figs 9–12), bar charts (Figs 3, 5), and aligned
// tables. Output is plain ASCII so it survives logs and CI transcripts.
package textplot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
)

// shades orders heatmap glyphs from lightest to darkest.
const shades = " .:-=+*#%@"

// Heatmap renders a rows×cols matrix of non-negative values on a
// logarithmic shade scale. Rows are printed top-first with their labels;
// +Inf cells print as '!', NaN as '?'. A legend maps shades to decades.
func Heatmap(title string, rowLabels, colLabels []string, cells [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range cells {
		for _, v := range row {
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
	}
	logSpan := 1.0
	if hi > lo {
		logSpan = math.Log10(hi) - math.Log10(lo)
	}
	wLabel := maxLen(rowLabels)
	wCol := maxLen(colLabels)
	if wCol < 3 {
		wCol = 3
	}
	for i, row := range cells {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%*s |", wLabel, label)
		for _, v := range row {
			fmt.Fprintf(&b, " %*s", wCol, strings.Repeat(string(shadeOf(v, lo, logSpan)), 3))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s +", wLabel, "")
	for range cells[0] {
		fmt.Fprintf(&b, "-%s", strings.Repeat("-", wCol))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%*s  ", wLabel, "")
	for j := range cells[0] {
		label := ""
		if j < len(colLabels) {
			label = colLabels[j]
		}
		fmt.Fprintf(&b, " %*s", wCol, label)
	}
	b.WriteByte('\n')
	if !math.IsInf(lo, 1) {
		fmt.Fprintf(&b, "shade scale: ' '=0, '.'≈%.1e … '@'≈%.1e, '!'=∞\n", lo, hi)
	}
	return b.String()
}

func shadeOf(v, lo, logSpan float64) byte {
	switch {
	case math.IsNaN(v):
		return '?'
	case math.IsInf(v, 1):
		return '!'
	case v <= 0:
		return shades[0]
	}
	frac := (math.Log10(v) - math.Log10(lo)) / logSpan
	idx := 1 + int(frac*float64(len(shades)-2)+0.5)
	if idx < 1 {
		idx = 1
	}
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}

// Boxplot renders horizontal boxplots of the labelled samples on a
// shared log10 axis (absolute values; zeros pin to the axis floor).
func Boxplot(title string, labels []string, stats []metrics.Stats, width int) string {
	if width < 20 {
		width = 60
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range stats {
		if s.N == 0 {
			continue
		}
		for _, v := range []float64{s.Min, s.Max} {
			if a := math.Abs(v); a > 0 {
				lo = math.Min(lo, a)
				hi = math.Max(hi, a)
			}
		}
	}
	if math.IsInf(lo, 1) { // all zero
		lo, hi = 1e-18, 1
	}
	if hi <= lo {
		hi = lo * 10
	}
	lo = lo / 2 // margin so the minimum is visible
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	span := logHi - logLo
	pos := func(v float64) int {
		a := math.Abs(v)
		if a <= lo {
			return 0
		}
		p := int((math.Log10(a) - logLo) / span * float64(width-1))
		if p >= width {
			p = width - 1
		}
		return p
	}
	wLabel := maxLen(labels)
	for i, s := range stats {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		line := []byte(strings.Repeat(" ", width))
		if s.N > 0 {
			for p := pos(s.WhiskLo); p <= pos(s.WhiskHi); p++ {
				line[p] = '-'
			}
			for p := pos(s.Q1); p <= pos(s.Q3); p++ {
				line[p] = '='
			}
			line[pos(s.Median)] = '|'
			for _, o := range s.Outliers {
				line[pos(o)] = 'o'
			}
		}
		fmt.Fprintf(&b, "%*s [%s] med=%.3e sd=%.3e\n", wLabel, label, line, s.Median, s.StdDev)
	}
	fmt.Fprintf(&b, "%*s  log10 axis: %.1e .. %.1e\n", wLabel, "", lo, hi)
	return b.String()
}

// BarChart renders labelled values as horizontal bars scaled to the
// maximum value.
func BarChart(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	wLabel := maxLen(labels)
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		n := 0
		if maxV > 0 {
			n = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%*s |%s %.4g\n", wLabel, label, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Histogram renders a metrics.Histogram as vertical magnitude bins with
// horizontal count bars, plus markers the caller supplies (e.g. bound
// lines) positioned by magnitude.
func Histogram(title string, h metrics.Histogram, markers map[string]float64, width int) string {
	if width < 10 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(h.Counts) == 0 {
		fmt.Fprintf(&b, "(no nonzero observations; %d zeros)\n", h.Zeros)
		return b.String()
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if h.Zeros > 0 {
		fmt.Fprintf(&b, "%9s |%s %d\n", "0", strings.Repeat("#", scaleBar(h.Zeros, maxC, width)), h.Zeros)
	}
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "%9.1e |%s %d\n", h.BinCenter(i), strings.Repeat("#", scaleBar(c, maxC, width)), c)
	}
	// Stable marker order: sort names.
	names := make([]string, 0, len(markers))
	for name := range markers {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%9.1e ^ %s\n", markers[name], name)
	}
	return b.String()
}

func scaleBar(c, maxC, width int) int {
	if maxC == 0 {
		return 0
	}
	n := c * width / maxC
	if c > 0 && n == 0 {
		n = 1
	}
	return n
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Table renders rows under a header with aligned columns.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func maxLen(ss []string) int {
	m := 0
	for _, s := range ss {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}
