// Package nbody is a miniature N-body simulation substrate — the
// paper's motivating application class ("N-body simulations involve
// reductions of floating-point values that are ill-conditioned; both k
// and dr can frequently be very large", §V-A). It exists to demonstrate
// the end-to-end consequence the paper warns about: when the per-step
// force reductions run over nondeterministic reduction trees, entire
// *trajectories* diverge between reruns of the same initial conditions;
// with a reproducible reduction operator they are bitwise identical.
//
// The dynamics are softened gravity integrated with leapfrog
// (kick-drift-kick). The force on each body is assembled by *reducing*
// its pairwise interaction terms with a pluggable summation algorithm
// over a per-step reduction tree — exactly where an exascale code would
// use a collective.
package nbody

import (
	"math"

	"repro/internal/fpu"
	"repro/internal/selector"
	"repro/internal/sum"
	"repro/internal/tree"
)

// Body is a point mass in 2D.
type Body struct {
	X, Y   float64
	VX, VY float64
	M      float64
}

// System is a set of bodies plus the reduction policy used for force
// assembly.
type System struct {
	Bodies []Body
	// Softening avoids the singularity at zero distance.
	Softening float64
	// Alg sums each body's force terms.
	Alg sum.Algorithm
	// PlanSource returns the reduction plan for one force assembly of
	// n terms; a nondeterministic runtime returns a different plan per
	// call, a reproducible one may return anything (the PR operator is
	// insensitive to it).
	PlanSource func(n int) tree.Plan

	// scratch buffers reused across steps.
	fxTerms, fyTerms []float64
}

// NewSystem builds a system with the given bodies (copied).
func NewSystem(bodies []Body, alg sum.Algorithm, plans func(n int) tree.Plan) *System {
	s := &System{
		Bodies:     append([]Body(nil), bodies...),
		Softening:  1e-3,
		Alg:        alg,
		PlanSource: plans,
	}
	return s
}

// Cluster generates a random cluster: a few heavy cores surrounded by a
// light swarm — force sets with large k and dr.
func Cluster(n int, seed uint64) []Body {
	r := fpu.NewRNG(seed ^ 0xb0d1e5)
	bodies := make([]Body, 0, n)
	cores := 4
	if cores > n {
		cores = n
	}
	for i := 0; i < cores; i++ {
		ang := 2 * math.Pi * float64(i) / float64(cores)
		bodies = append(bodies, Body{
			X: 0.01 * math.Cos(ang), Y: 0.01 * math.Sin(ang), M: 10,
		})
	}
	for len(bodies) < n {
		bodies = append(bodies, Body{
			X: (r.Float64() - 0.5) * 20,
			Y: (r.Float64() - 0.5) * 20,
			M: 1e-3 * (r.Float64() + 0.1),
		})
	}
	return bodies
}

// forceOn assembles the force on body i by reducing its pairwise terms
// with the system's algorithm over a fresh plan.
func (s *System) forceOn(i int) (fx, fy float64) {
	n := len(s.Bodies) - 1
	if cap(s.fxTerms) < n {
		s.fxTerms = make([]float64, n)
		s.fyTerms = make([]float64, n)
	}
	fxs := s.fxTerms[:0]
	fys := s.fyTerms[:0]
	bi := s.Bodies[i]
	eps2 := s.Softening * s.Softening
	for j, bj := range s.Bodies {
		if j == i {
			continue
		}
		dx, dy := bj.X-bi.X, bj.Y-bi.Y
		r2 := dx*dx + dy*dy + eps2
		inv := 1 / (r2 * math.Sqrt(r2))
		f := bi.M * bj.M * inv
		fxs = append(fxs, f*dx)
		fys = append(fys, f*dy)
	}
	fx = selector.ReduceTreeWith(s.Alg, s.PlanSource(len(fxs)), fxs)
	fy = selector.ReduceTreeWith(s.Alg, s.PlanSource(len(fys)), fys)
	return fx, fy
}

// Step advances the system by dt with one leapfrog step.
func (s *System) Step(dt float64) {
	n := len(s.Bodies)
	fx := make([]float64, n)
	fy := make([]float64, n)
	for i := range s.Bodies {
		fx[i], fy[i] = s.forceOn(i)
	}
	// Kick + drift.
	for i := range s.Bodies {
		b := &s.Bodies[i]
		b.VX += dt * fx[i] / b.M
		b.VY += dt * fy[i] / b.M
		b.X += dt * b.VX
		b.Y += dt * b.VY
	}
}

// Run advances steps leapfrog steps.
func (s *System) Run(steps int, dt float64) {
	for i := 0; i < steps; i++ {
		s.Step(dt)
	}
}

// Fingerprint reduces the full phase-space state to one exact scalar
// for bitwise trajectory comparison (superaccumulator-backed, so the
// fingerprint itself cannot introduce order sensitivity).
func (s *System) Fingerprint() float64 {
	vals := make([]float64, 0, 4*len(s.Bodies))
	for _, b := range s.Bodies {
		vals = append(vals, b.X, b.Y, b.VX, b.VY)
	}
	return sum.Prerounded(vals)
}

// MaxDivergence returns the largest per-coordinate position difference
// between two systems' bodies.
func MaxDivergence(a, b *System) float64 {
	m := 0.0
	for i := range a.Bodies {
		if d := math.Abs(a.Bodies[i].X - b.Bodies[i].X); d > m {
			m = d
		}
		if d := math.Abs(a.Bodies[i].Y - b.Bodies[i].Y); d > m {
			m = d
		}
	}
	return m
}
