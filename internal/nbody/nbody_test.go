package nbody

import (
	"math"
	"testing"

	"repro/internal/fpu"
	"repro/internal/sum"
	"repro/internal/tree"
)

// fixedPlans always returns the identity balanced plan (a deterministic
// runtime).
func fixedPlans(n int) tree.Plan { return tree.IdentityPlan(tree.Balanced) }

// randomPlans simulates a nondeterministic runtime: every call gets a
// different shape and leaf assignment.
func randomPlans(seed uint64) func(n int) tree.Plan {
	r := fpu.NewRNG(seed)
	return func(n int) tree.Plan { return tree.NewPlan(tree.Random, n, r) }
}

func TestTwoBodySymmetry(t *testing.T) {
	bodies := []Body{
		{X: -1, M: 1},
		{X: 1, M: 1},
	}
	s := NewSystem(bodies, sum.CompositeAlg, fixedPlans)
	fx0, fy0 := s.forceOn(0)
	fx1, fy1 := s.forceOn(1)
	if fx0 <= 0 || fx1 >= 0 {
		t.Errorf("attraction signs wrong: %g %g", fx0, fx1)
	}
	if fx0 != -fx1 || fy0 != 0 || fy1 != 0 {
		t.Errorf("Newton's third law violated: (%g,%g) vs (%g,%g)", fx0, fy0, fx1, fy1)
	}
}

func TestDeterministicRuntimeIsReproducible(t *testing.T) {
	// With a fixed plan every algorithm reruns identically.
	for _, alg := range []sum.Algorithm{sum.StandardAlg, sum.PreroundedAlg} {
		a := NewSystem(Cluster(60, 1), alg, fixedPlans)
		b := NewSystem(Cluster(60, 1), alg, fixedPlans)
		a.Run(20, 1e-3)
		b.Run(20, 1e-3)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%v: fixed-plan reruns diverged", alg)
		}
	}
}

func TestNondeterministicTreesDivergeSTButNotPR(t *testing.T) {
	run := func(alg sum.Algorithm, seed uint64) *System {
		s := NewSystem(Cluster(80, 2), alg, randomPlans(seed))
		s.Run(40, 1e-3)
		return s
	}
	// ST: two runs with different per-step trees drift apart.
	st1, st2 := run(sum.StandardAlg, 100), run(sum.StandardAlg, 200)
	if st1.Fingerprint() == st2.Fingerprint() {
		t.Error("ST trajectories identical despite nondeterministic trees (unexpected)")
	}
	if MaxDivergence(st1, st2) == 0 {
		t.Error("no positional divergence for ST")
	}
	// PR: same nondeterministic trees, bitwise identical trajectories.
	pr1, pr2 := run(sum.PreroundedAlg, 100), run(sum.PreroundedAlg, 200)
	if pr1.Fingerprint() != pr2.Fingerprint() {
		t.Error("PR trajectories diverged")
	}
	if MaxDivergence(pr1, pr2) != 0 {
		t.Errorf("PR positional divergence %g, want 0", MaxDivergence(pr1, pr2))
	}
}

func TestEnergyScaleSanity(t *testing.T) {
	// Leapfrog with small dt should not blow up over a short run.
	s := NewSystem(Cluster(50, 3), sum.CompositeAlg, fixedPlans)
	s.Run(100, 1e-4)
	for i, b := range s.Bodies {
		if math.IsNaN(b.X) || math.IsInf(b.X, 0) || math.Abs(b.X) > 1e6 {
			t.Fatalf("body %d escaped to %g", i, b.X)
		}
	}
}

func TestClusterProperties(t *testing.T) {
	bodies := Cluster(100, 4)
	if len(bodies) != 100 {
		t.Fatalf("len = %d", len(bodies))
	}
	heavy := 0
	for _, b := range bodies {
		if b.M >= 10 {
			heavy++
		}
	}
	if heavy != 4 {
		t.Errorf("heavy cores = %d, want 4", heavy)
	}
	// Small n edge case.
	if got := Cluster(2, 5); len(got) != 2 {
		t.Errorf("Cluster(2) len = %d", len(got))
	}
}

func TestForceTermsAreIllConditioned(t *testing.T) {
	// The motivating claim: the force-term sets have large k and dr.
	// Body 0 is a heavy core at angle 0; the symmetric cores above and
	// below pull it in opposite y directions with near-equal magnitude,
	// so its y-force terms nearly cancel.
	s := NewSystem(Cluster(200, 6), sum.StandardAlg, fixedPlans)
	bi := s.Bodies[0]
	eps2 := s.Softening * s.Softening
	var terms []float64
	for j, bj := range s.Bodies {
		if j == 0 {
			continue
		}
		dx, dy := bj.X-bi.X, bj.Y-bi.Y
		r2 := dx*dx + dy*dy + eps2
		terms = append(terms, bi.M*bj.M*dy/(r2*math.Sqrt(r2)))
	}
	var sumAbs, sumRaw float64
	for _, v := range terms {
		sumAbs += math.Abs(v)
		sumRaw += v
	}
	k := sumAbs / math.Abs(sumRaw)
	if k < 10 {
		t.Errorf("force terms k = %g; expected ill-conditioned", k)
	}
}
