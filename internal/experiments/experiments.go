// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver returns a typed result that renders
// itself as text (and CSV where tabular), so the cmd/redbench tool and
// the root-level benchmarks can regenerate every artifact.
//
// Every driver accepts a Config whose Scale selects between Quick
// (seconds; used by `go test` to assert the qualitative shape of each
// result) and Full (minutes; the paper-scale parameters, adjusted where
// the original used cluster-months of compute — noted per driver).
package experiments

import "fmt"

// Scale selects experiment size.
type Scale int

const (
	// Quick runs a scaled-down experiment preserving the qualitative
	// shape (used in tests).
	Quick Scale = iota
	// Full runs at (or near) paper-scale parameters.
	Full
)

// String names the scale.
func (s Scale) String() string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// Config parameterizes a driver run.
type Config struct {
	Scale Scale
	Seed  uint64
}

// pick returns q at Quick scale and f at Full scale.
func (c Config) pick(q, f int) int {
	if c.Scale == Full {
		return f
	}
	return q
}

// Result is implemented by every experiment result: a human-readable
// rendering plus the experiment's identifier.
type Result interface {
	// ID returns the paper artifact this reproduces, e.g. "fig7".
	ID() string
	// String renders the result for the terminal.
	String() string
}

func fmtFloat(v float64) string { return fmt.Sprintf("%.6g", v) }
