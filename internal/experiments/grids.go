package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/grid"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

// GridAlgorithms are the algorithms shown in Figs 9–11 (the paper omits
// PR from the grids because CP and PR performed identically; we run PR
// anyway and report it alongside).
var GridAlgorithms = []sum.Algorithm{sum.StandardAlg, sum.KahanAlg, sum.CompositeAlg, sum.PreroundedAlg}

// GridResult is the shared result shape of the three grid figures: the
// axes, the cell results in row-major order (rows = first axis), and
// metadata naming the fixed parameter.
type GridResult struct {
	Fig       string
	RowName   string
	ColName   string
	RowLabels []string
	ColLabels []string
	Fixed     string
	Cells     []grid.CellResult // row-major
	Rows      int
	Cols      int
	Trials    int
}

// gridAxes returns the sweep axes, paper-flavored but scaled: the paper
// fixes n=1M and uses 1000 trees per cell on a cluster; the Full scale
// here uses n up to 2^16 and 200 trees (documented in EXPERIMENTS.md).
func gridKs(cfg Config) []float64 {
	if cfg.Scale == Full {
		return []float64{1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8}
	}
	return []float64{1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e8}
}

func gridDRs(cfg Config) []int {
	if cfg.Scale == Full {
		return []int{0, 8, 16, 24, 32, 40, 48}
	}
	return []int{0, 16, 32}
}

func gridNs(cfg Config) []int {
	if cfg.Scale == Full {
		return []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	}
	return []int{1 << 8, 1 << 10, 1 << 12}
}

// Fig9 sweeps (k, dr) at fixed n: rows = dr, cols = k.
func Fig9(cfg Config) GridResult {
	n := cfg.pick(1<<12, 1<<16)
	trials := cfg.pick(40, 200)
	ks, drs := gridKs(cfg), gridDRs(cfg)
	cells := grid.KDRGrid(n, ks, drs)
	results := grid.Sweep(cells, grid.Config{
		Algorithms: GridAlgorithms, Trials: trials, Shape: tree.Balanced, Seed: cfg.Seed ^ 0xF169,
	})
	return GridResult{
		Fig: "fig9", RowName: "dr", ColName: "k",
		RowLabels: intLabels(drs), ColLabels: kLabels(ks),
		Fixed: fmt.Sprintf("n=%d", n),
		Cells: results, Rows: len(drs), Cols: len(ks), Trials: trials,
	}
}

// Fig10 sweeps (n, dr) at fixed k = 1: rows = dr, cols = n.
func Fig10(cfg Config) GridResult {
	trials := cfg.pick(40, 200)
	ns, drs := gridNs(cfg), gridDRs(cfg)
	cells := grid.NDRGrid(ns, 1, drs)
	results := grid.Sweep(cells, grid.Config{
		Algorithms: GridAlgorithms, Trials: trials, Shape: tree.Balanced, Seed: cfg.Seed ^ 0xF1610,
	})
	return GridResult{
		Fig: "fig10", RowName: "dr", ColName: "n",
		RowLabels: intLabels(drs), ColLabels: intLabels(ns),
		Fixed: "k=1",
		Cells: results, Rows: len(drs), Cols: len(ns), Trials: trials,
	}
}

// Fig11 sweeps (n, k) at fixed dr = 16: rows = k, cols = n.
func Fig11(cfg Config) GridResult {
	trials := cfg.pick(40, 200)
	ns, ks := gridNs(cfg), gridKs(cfg)
	cells := grid.NKGrid(ns, ks, 16)
	results := grid.Sweep(cells, grid.Config{
		Algorithms: GridAlgorithms, Trials: trials, Shape: tree.Balanced, Seed: cfg.Seed ^ 0xF1611,
	})
	return GridResult{
		Fig: "fig11", RowName: "k", ColName: "n",
		RowLabels: kLabels(ks), ColLabels: intLabels(ns),
		Fixed: "dr=16",
		Cells: results, Rows: len(ks), Cols: len(ns), Trials: trials,
	}
}

// ID implements Result.
func (g GridResult) ID() string { return g.Fig }

// Cell returns the result at (row, col).
func (g GridResult) Cell(row, col int) grid.CellResult { return g.Cells[row*g.Cols+col] }

// Shading returns the matrix of relative error standard deviations for
// one algorithm — the quantity the paper's grids shade.
func (g GridResult) Shading(alg sum.Algorithm) [][]float64 {
	out := make([][]float64, g.Rows)
	for r := 0; r < g.Rows; r++ {
		out[r] = make([]float64, g.Cols)
		for c := 0; c < g.Cols; c++ {
			out[r][c] = g.Cell(r, c).RelStdDev[alg]
		}
	}
	return out
}

// MonotoneAlongCols reports whether, for alg, the shading is
// non-decreasing along each row (allowing a fractional tolerance for
// sampling noise: each step may dip by at most frac of the running max).
func (g GridResult) MonotoneAlongCols(alg sum.Algorithm, frac float64) bool {
	for r := 0; r < g.Rows; r++ {
		runMax := 0.0
		for c := 0; c < g.Cols; c++ {
			v := g.Cell(r, c).RelStdDev[alg]
			if math.IsInf(v, 1) || math.IsNaN(v) {
				continue
			}
			if v < runMax*(1-frac) {
				return false
			}
			if v > runMax {
				runMax = v
			}
		}
	}
	return true
}

// String renders one heatmap per algorithm.
func (g GridResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: relative stddev of error over %d trees per cell (%s; rows=%s, cols=%s)\n",
		strings.ToUpper(g.Fig[:1])+g.Fig[1:], g.Trials, g.Fixed, g.RowName, g.ColName)
	for _, alg := range GridAlgorithms {
		b.WriteString("\n")
		b.WriteString(textplot.Heatmap(alg.FullName(), g.RowLabels, g.ColLabels, g.Shading(alg)))
	}
	return b.String()
}

func intLabels(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("%d", v)
	}
	return out
}

func kLabels(ks []float64) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("1e%d", int(math.Round(math.Log10(k))))
	}
	return out
}
