package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBoundsExtClaims pins the experiment's headline claims at Quick
// scale: the probabilistic policy is never costlier than the
// calibrated table at equal tolerance, neither accumulates measured
// tolerance violations beyond the calibrated policy's own rate, the
// bound-driven decision is cheaper than a table lookup, and the
// float32-regime bounds cover the measured sum32 errors.
func TestBoundsExtClaims(t *testing.T) {
	res := BoundsExt(quick)
	if !res.ProbNeverCostlier {
		t.Errorf("probabilistic picks costlier than calibrated in %d comparisons", res.ProbCostlierPicks)
	}
	if res.ProbCheaperPicks == 0 {
		t.Error("probabilistic policy never cheaper than calibrated — bounds are not informative")
	}
	for ti := range res.Thresholds {
		if p, c := res.Violations["prob"][ti], res.Violations["calib"][ti]; p > c {
			t.Errorf("threshold %g: prob violations %d exceed calibrated's %d",
				res.Thresholds[ti], p, c)
		}
	}
	if res.DecideNs["prob"] >= res.DecideNs["calib"] {
		t.Errorf("bound evaluation (%.0f ns) not cheaper than table lookup (%.0f ns)",
			res.DecideNs["prob"], res.DecideNs["calib"])
	}
	if !res.Sum32.Holds {
		t.Errorf("float32-regime bounds violated: worst %v vs bounds %v", res.Sum32.WorstRel, res.Sum32.BoundRel)
	}
	for _, name := range []string{"naive", "kahan32", "wide"} {
		if res.Sum32.BoundRel[name] <= 0 {
			t.Errorf("sum32 %s bound not positive: %g", name, res.Sum32.BoundRel[name])
		}
	}
	if res.ID() != "ext-bounds" {
		t.Errorf("ID = %q", res.ID())
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, key := range []string{`"prob"`, `"calib"`, `"heur"`, `"kahan32"`} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("JSON missing %s: %.200s", key, blob)
		}
	}
	if s := res.String(); !strings.Contains(s, "never costlier") || !strings.Contains(s, "float32 regime") {
		t.Errorf("rendering missing sections:\n%s", s)
	}
}
