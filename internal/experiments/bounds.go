package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/selector"
	"repro/internal/sum"
	"repro/internal/sum32"
	"repro/internal/textplot"
	"repro/internal/tree"
)

// BoundsExtResult compares the three selection policies — the
// Hallman–Ipsen probabilistic-bound policy, the measured calibration
// table, and the analytic heuristic — on the Fig 12 question: given a
// variability tolerance, which algorithm do you run? For every
// (k, dr) cell and every Fig 12 threshold it records the cost rank of
// each policy's pick and whether the pick's measured relative
// variability actually violated the tolerance, plus the per-call
// decision cost of each policy. A float32 section evaluates the same
// bound machinery in the sum32 regime (u = 2^-24).
type BoundsExtResult struct {
	N, Trials, Cells int
	Thresholds       []float64
	// Policies in presentation order: prob, calib, heur.
	Policies []string
	// MeanRank[policy][ti] is the mean cost rank of the picks at
	// threshold ti (lower = cheaper).
	MeanRank map[string][]float64
	// Violations[policy][ti] counts picks whose measured relative
	// variability exceeded the threshold.
	Violations map[string][]int
	// DecideNs[policy] is the measured cost of one Select call.
	DecideNs map[string]float64
	// ProbNeverCostlier reports the acceptance claim: across every
	// (threshold, cell), the probabilistic pick's cost rank is at most
	// the calibrated pick's.
	ProbNeverCostlier bool
	// ProbCheaperPicks / EqualPicks break the comparison down.
	ProbCheaperPicks, EqualPicks, ProbCostlierPicks int
	Sum32                                           BoundsSum32
}

// BoundsSum32 is the float32-regime section: λ-confidence relative
// bounds at u = 2^-24 against the worst measured relative error of the
// sum32 accumulators over many summation orders.
type BoundsSum32 struct {
	N, Orders int
	// BoundRel[acc] is the probabilistic relative bound; WorstRel[acc]
	// the worst measured relative error.
	BoundRel map[string]float64
	WorstRel map[string]float64
	// Holds reports WorstRel <= BoundRel for every accumulator.
	Holds bool
}

// boundsPolicyNames orders the compared policies.
var boundsPolicyNames = []string{"prob", "calib", "heur"}

// BoundsExt runs the experiment.
func BoundsExt(cfg Config) BoundsExtResult {
	n := cfg.pick(1<<12, 1<<14)
	trials := cfg.pick(40, 100)
	ks, drs := gridKs(cfg), gridDRs(cfg)
	cells := grid.KDRGrid(n, ks, drs)
	gcfg := grid.Config{
		Algorithms: sum.SelectionLadder,
		Trials:     trials,
		Shape:      tree.Balanced,
		Seed:       cfg.Seed ^ 0xB0D5,
	}
	// The calibration table is the CalibratedPolicy's own offline
	// sweep: same envelope, independent seed (a real deployment would
	// not calibrate on its serving data).
	calib := selector.Calibrate(selector.CalibrationConfig{
		Ns: []int{n}, Ks: ks, DRs: drs,
		Trials: cfg.pick(20, 50),
		Seed:   cfg.Seed ^ 0xCA11B,
	})
	policies := map[string]selector.Policy{
		// Balanced plan: the grid's trees are the execution model.
		"prob":  selector.ProbabilisticPolicy{Plan: selector.BalancedPlan},
		"calib": calib,
		"heur":  selector.NewHeuristicPolicy(),
	}

	res := BoundsExtResult{
		N: n, Trials: trials, Cells: len(cells),
		Thresholds:        Fig12Thresholds,
		Policies:          boundsPolicyNames,
		MeanRank:          map[string][]float64{},
		Violations:        map[string][]int{},
		DecideNs:          map[string]float64{},
		ProbNeverCostlier: true,
	}
	for _, name := range boundsPolicyNames {
		res.MeanRank[name] = make([]float64, len(Fig12Thresholds))
		res.Violations[name] = make([]int, len(Fig12Thresholds))
	}

	var lastProfile selector.Profile
	for i, cell := range cells {
		seed := fpu.MixSeed(gcfg.Seed, uint64(i))
		measured := grid.EvalCell(cell, gcfg, seed)
		xs := gen.Spec{N: cell.N, Cond: cell.Cond, DynRange: cell.DynRange, Seed: seed}.Generate()
		p := selector.ProfileOf(xs)
		lastProfile = p
		for ti, tol := range Fig12Thresholds {
			req := selector.Requirement{Tolerance: tol}
			ranks := map[string]int{}
			for name, pol := range policies {
				alg, _ := pol.Select(p, req)
				ranks[name] = alg.CostRank()
				res.MeanRank[name][ti] += float64(alg.CostRank())
				if measured.RelStdDev[alg] > tol {
					res.Violations[name][ti]++
				}
			}
			switch {
			case ranks["prob"] < ranks["calib"]:
				res.ProbCheaperPicks++
			case ranks["prob"] == ranks["calib"]:
				res.EqualPicks++
			default:
				res.ProbCostlierPicks++
				res.ProbNeverCostlier = false
			}
		}
	}
	for _, name := range boundsPolicyNames {
		for ti := range Fig12Thresholds {
			res.MeanRank[name][ti] /= float64(len(cells))
		}
	}

	// Decision cost: one Select on a representative profile, amortized
	// over a fixed iteration count.
	req := selector.Requirement{Tolerance: Fig12Thresholds[len(Fig12Thresholds)/2]}
	const iters = 2000
	for name, pol := range policies {
		start := time.Now()
		for i := 0; i < iters; i++ {
			pol.Select(lastProfile, req)
		}
		res.DecideNs[name] = float64(time.Since(start).Nanoseconds()) / iters
	}

	res.Sum32 = boundsSum32(cfg)
	return res
}

// boundsSum32 evaluates the bound estimators at u = 2^-24 against the
// float32 accumulators: the data embeds exactly into float64, so the
// profile is exact and only the unit roundoff changes regime.
func boundsSum32(cfg Config) BoundsSum32 {
	n := cfg.pick(1<<12, 1<<15)
	orders := cfg.pick(30, 100)
	r := fpu.NewRNG(cfg.Seed ^ 0xB32)
	xs32 := make([]float32, n)
	xs64 := make([]float64, n)
	for i := range xs32 {
		v := float32(math.Ldexp(r.Float64()+0.5, r.Intn(12)-6))
		if r.Bool() {
			v = -v
		}
		xs32[i] = v
		xs64[i] = float64(v)
	}
	exact := float64(sum32.ExactTo32(xs32))
	p := selector.ProfileOf(xs64)
	b32 := selector.ComputeBoundsU(p, 0, 0x1p-24, selector.SerialPlan)
	b64 := selector.ComputeBounds(p, 0)
	out := BoundsSum32{
		N: n, Orders: orders,
		BoundRel: map[string]float64{
			"naive":   b32.Rel(sum.StandardAlg).Prob,
			"kahan32": b32.Rel(sum.KahanAlg).Prob,
			// Wide: float64 serial chain plus one final float32 rounding.
			"wide": b64.Rel(sum.StandardAlg).Prob + 0x1p-24,
		},
		WorstRel: map[string]float64{},
	}
	accs := map[string]func([]float32) float32{
		"naive": sum32.Naive, "kahan32": sum32.Kahan32, "wide": sum32.Wide,
	}
	work := append([]float32(nil), xs32...)
	rr := fpu.NewRNG(cfg.Seed ^ 0xB33)
	for o := 0; o < orders; o++ {
		for i := len(work) - 1; i > 0; i-- {
			j := rr.Intn(i + 1)
			work[i], work[j] = work[j], work[i]
		}
		for name, f := range accs {
			rel := math.Abs(float64(f(work))-exact) / math.Abs(exact)
			if rel > out.WorstRel[name] {
				out.WorstRel[name] = rel
			}
		}
	}
	out.Holds = true
	for name, worst := range out.WorstRel {
		if worst > out.BoundRel[name] {
			out.Holds = false
		}
	}
	return out
}

// ID implements Result.
func (BoundsExtResult) ID() string { return "ext-bounds" }

// String renders the policy comparison.
func (r BoundsExtResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ext-bounds: probabilistic vs calibrated vs heuristic selection (n=%d, %d cells, %d trees/cell)\n\n",
		r.N, r.Cells, r.Trials)
	header := []string{"threshold"}
	for _, pol := range r.Policies {
		header = append(header, pol+" rank", pol+" viol")
	}
	var rows [][]string
	for ti, th := range r.Thresholds {
		row := []string{fmt.Sprintf("%.2g", th)}
		for _, pol := range r.Policies {
			row = append(row,
				fmt.Sprintf("%.2f", r.MeanRank[pol][ti]),
				fmt.Sprintf("%d/%d", r.Violations[pol][ti], r.Cells))
		}
		rows = append(rows, row)
	}
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "\nprob vs calib picks: %d cheaper, %d equal, %d costlier (never costlier: %v)\n",
		r.ProbCheaperPicks, r.EqualPicks, r.ProbCostlierPicks, r.ProbNeverCostlier)
	fmt.Fprintf(&b, "decide cost: prob %.0f ns, calib %.0f ns, heur %.0f ns\n",
		r.DecideNs["prob"], r.DecideNs["calib"], r.DecideNs["heur"])
	fmt.Fprintf(&b, "\nfloat32 regime (n=%d, %d orders): bounds hold: %v\n",
		r.Sum32.N, r.Sum32.Orders, r.Sum32.Holds)
	for _, name := range []string{"naive", "kahan32", "wide"} {
		fmt.Fprintf(&b, "  %-8s worst rel err %.3g  vs  λ-bound %.3g\n",
			name, r.Sum32.WorstRel[name], r.Sum32.BoundRel[name])
	}
	return b.String()
}
