package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/interval"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/textplot"
)

// IntervalExtResult quantifies the paper's Section III-B verdict on
// interval arithmetic: reproducible by design (every order's enclosure
// contains the true sum), but (1) the enclosure width on ill-conditioned
// data overestimates the actual error by orders of magnitude — it tracks
// worst-case roundoff, not realized error — and (2) the slowdown is
// large.
type IntervalExtResult struct {
	N int
	// WellWidth/WellErr: enclosure width vs worst observed ST error
	// across orders, on well-conditioned data.
	WellWidth, WellErr float64
	// CancelWidth/CancelErr: the same on an exactly-cancelling set.
	CancelWidth, CancelErr float64
	// EnclosureHeld counts orders whose enclosure contained the exact
	// sum (must equal Orders).
	EnclosureHeld, Orders int
	// Slowdown is time(interval sum)/time(ST sum).
	Slowdown float64
}

// IntervalExt runs the experiment.
func IntervalExt(cfg Config) IntervalExtResult {
	n := cfg.pick(4096, 1<<17)
	orders := cfg.pick(20, 50)
	res := IntervalExtResult{N: n, Orders: orders}

	measure := func(xs []float64) (width, worstErr float64, held int) {
		exact := bigref.SumFloat64(xs)
		r := fpu.NewRNG(cfg.Seed ^ 0x1B)
		work := append([]float64(nil), xs...)
		for o := 0; o < orders; o++ {
			r.Shuffle(work)
			iv := interval.Sum(work)
			if iv.Contains(exact) {
				held++
			}
			if w := iv.Width(); w > width {
				width = w
			}
			if e := abs(sum.Standard(work) - exact); e > worstErr {
				worstErr = e
			}
		}
		return width, worstErr, held
	}

	well := gen.Spec{N: n, Cond: 1, DynRange: 8, Seed: cfg.Seed}.Generate()
	res.WellWidth, res.WellErr, res.EnclosureHeld = measure(well)
	cancel := gen.SumZeroSeries(n, 32, cfg.Seed+1)
	cw, ce, held2 := measure(cancel)
	res.CancelWidth, res.CancelErr = cw, ce
	res.EnclosureHeld += held2
	res.Orders *= 2

	// Slowdown: one timed pass each, warm.
	var sink float64
	sink = sum.Standard(well)
	t0 := time.Now()
	for i := 0; i < 10; i++ {
		sink += sum.Standard(well)
	}
	tST := time.Since(t0)
	_ = interval.Sum(well)
	t1 := time.Now()
	for i := 0; i < 10; i++ {
		sink += interval.Sum(well).Mid()
	}
	tIV := time.Since(t1)
	_ = sink
	if tST > 0 {
		res.Slowdown = float64(tIV) / float64(tST)
	}
	return res
}

// ID implements Result.
func (IntervalExtResult) ID() string { return "ext-interval" }

// WidthOverestimation returns enclosure width / worst realized error on
// the cancelling set (the uselessness factor).
func (r IntervalExtResult) WidthOverestimation() float64 {
	if r.CancelErr == 0 {
		return r.CancelWidth / metrics.MaxAbs([]float64{r.CancelErr, 1e-300})
	}
	return r.CancelWidth / r.CancelErr
}

// String renders the verdicts.
func (r IntervalExtResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper §III-B): interval summation, n=%d\n", r.N)
	b.WriteString(textplot.Table([]string{"quantity", "value"}, [][]string{
		{"enclosures containing exact sum", fmt.Sprintf("%d/%d", r.EnclosureHeld, r.Orders)},
		{"well-conditioned: width", fmtFloat(r.WellWidth)},
		{"well-conditioned: worst ST error", fmtFloat(r.WellErr)},
		{"cancelling: width", fmtFloat(r.CancelWidth)},
		{"cancelling: worst ST error", fmtFloat(r.CancelErr)},
		{"cancelling width / realized error", fmt.Sprintf("%.1fx", r.WidthOverestimation())},
		{"slowdown vs ST", fmt.Sprintf("%.1fx", r.Slowdown)},
	}))
	return b.String()
}
