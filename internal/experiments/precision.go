package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fpu"
	"repro/internal/sum32"
	"repro/internal/textplot"
)

// PrecisionExtResult quantifies the paper's Section III-C technique —
// higher-precision accumulation in the critical section (He & Ding) —
// at the float32/float64 pair: across many summation orders of one
// float32 data set, how many distinct results does each accumulator
// produce, and how far from the correctly rounded value do they stray?
type PrecisionExtResult struct {
	N, Orders int
	// Distinct[acc] counts distinct float32 results across orders.
	Distinct map[string]int
	// WorstErr[acc] is the worst |result - exact| in float32 ulps of
	// the exact result.
	WorstErrUlps map[string]float64
}

// PrecisionExt runs the experiment.
func PrecisionExt(cfg Config) PrecisionExtResult {
	n := cfg.pick(1<<15, 1<<19)
	orders := cfg.pick(30, 100)
	r := fpu.NewRNG(cfg.Seed ^ 0x32b17)
	xs := make([]float32, n)
	for i := range xs {
		v := float32(math.Ldexp(r.Float64()+0.5, r.Intn(12)-6))
		if r.Bool() {
			v = -v
		}
		xs[i] = v
	}
	exact := sum32.ExactTo32(xs)
	ulp := ulp32Of(exact)
	res := PrecisionExtResult{
		N:            n,
		Orders:       orders,
		Distinct:     map[string]int{},
		WorstErrUlps: map[string]float64{},
	}
	accs := map[string]func([]float32) float32{
		"naive float32":       sum32.Naive,
		"Kahan float32":       sum32.Kahan32,
		"float64 accumulator": sum32.Wide,
	}
	for name, f := range accs {
		seen := map[float32]bool{}
		worst := 0.0
		rr := fpu.NewRNG(cfg.Seed ^ 0x0dde5)
		work := append([]float32(nil), xs...)
		for o := 0; o < orders; o++ {
			for i := len(work) - 1; i > 0; i-- {
				j := rr.Intn(i + 1)
				work[i], work[j] = work[j], work[i]
			}
			v := f(work)
			seen[v] = true
			if e := math.Abs(float64(v-exact)) / float64(ulp); e > worst {
				worst = e
			}
		}
		res.Distinct[name] = len(seen)
		res.WorstErrUlps[name] = worst
	}
	return res
}

func ulp32Of(x float32) float32 {
	next := math.Nextafter32(x, float32(math.Inf(1)))
	if next == x {
		return 1
	}
	return next - x
}

// ID implements Result.
func (PrecisionExtResult) ID() string { return "ext-precision" }

// TechniqueWorks reports the Section III-C claim: the wide accumulator
// collapses the order-to-order variability the narrow ones exhibit.
func (r PrecisionExtResult) TechniqueWorks() bool {
	return r.Distinct["float64 accumulator"] == 1 &&
		r.Distinct["naive float32"] > 1 &&
		r.WorstErrUlps["float64 accumulator"] <= 1
}

// String renders the comparison.
func (r PrecisionExtResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper §III-C, He & Ding): float32 data, higher-precision critical section\n")
	fmt.Fprintf(&b, "%d values summed in %d random orders\n", r.N, r.Orders)
	var rows [][]string
	for _, name := range []string{"naive float32", "Kahan float32", "float64 accumulator"} {
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", r.Distinct[name]),
			fmt.Sprintf("%.1f", r.WorstErrUlps[name]),
		})
	}
	b.WriteString(textplot.Table([]string{"accumulator", "distinct results", "worst err (f32 ulps)"}, rows))
	fmt.Fprintf(&b, "wide accumulator curtails variability to one bitwise result: %v\n", r.TechniqueWorks())
	return b.String()
}
