package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fpu"
	"repro/internal/nbody"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

// NBodyExtResult answers the paper's opening question — "Can the
// scientific community trust simulations executed on next-generation
// exascale architectures?" — end to end: the same N-body initial
// conditions are integrated twice with per-step force reductions over
// *different* nondeterministic reduction trees, per algorithm. Under ST
// the trajectories drift apart; under the reproducible operator the two
// runs are bitwise identical despite the varying trees.
type NBodyExtResult struct {
	Bodies, Steps int
	// Divergence[alg] is the max positional difference between the two
	// runs after Steps steps; BitwiseEqual[alg] whether the full phase
	// space fingerprints match exactly.
	Divergence   map[sum.Algorithm]float64
	BitwiseEqual map[sum.Algorithm]bool
}

// NBodyExt runs the experiment.
func NBodyExt(cfg Config) NBodyExtResult {
	bodies := cfg.pick(80, 256)
	steps := cfg.pick(40, 200)
	res := NBodyExtResult{
		Bodies:       bodies,
		Steps:        steps,
		Divergence:   map[sum.Algorithm]float64{},
		BitwiseEqual: map[sum.Algorithm]bool{},
	}
	run := func(alg sum.Algorithm, planSeed uint64) *nbody.System {
		r := fpu.NewRNG(planSeed)
		s := nbody.NewSystem(nbody.Cluster(bodies, cfg.Seed), alg,
			func(n int) tree.Plan { return tree.NewPlan(tree.Random, n, r) })
		s.Run(steps, 1e-3)
		return s
	}
	for _, alg := range sum.PaperAlgorithms {
		a := run(alg, cfg.Seed+11)
		b := run(alg, cfg.Seed+22)
		res.Divergence[alg] = nbody.MaxDivergence(a, b)
		res.BitwiseEqual[alg] = a.Fingerprint() == b.Fingerprint()
	}
	return res
}

// ID implements Result.
func (NBodyExtResult) ID() string { return "ext-nbody" }

// TrustRestored reports the headline claim: ST reruns diverge, PR
// reruns are bitwise identical.
func (r NBodyExtResult) TrustRestored() bool {
	return r.Divergence[sum.StandardAlg] > 0 &&
		!r.BitwiseEqual[sum.StandardAlg] &&
		r.Divergence[sum.PreroundedAlg] == 0 &&
		r.BitwiseEqual[sum.PreroundedAlg]
}

// String renders the per-algorithm rerun comparison.
func (r NBodyExtResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper §I / §V-A): N-body reruns under nondeterministic reduction trees\n")
	fmt.Fprintf(&b, "%d bodies, %d leapfrog steps, same initial conditions, different per-step trees\n",
		r.Bodies, r.Steps)
	var rows [][]string
	for _, alg := range sum.PaperAlgorithms {
		rows = append(rows, []string{
			alg.String(),
			fmtFloat(r.Divergence[alg]),
			fmt.Sprintf("%v", r.BitwiseEqual[alg]),
		})
	}
	b.WriteString(textplot.Table([]string{"alg", "max positional divergence", "bitwise identical"}, rows))
	fmt.Fprintf(&b, "ST reruns diverge while PR reruns are bitwise identical: %v\n", r.TrustRestored())
	return b.String()
}
