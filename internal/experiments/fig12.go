package experiments

import (
	"fmt"
	"strings"

	"repro/internal/grid"
	"repro/internal/sum"
	"repro/internal/textplot"
)

// Fig12Thresholds are the error-variability thresholds of the paper's
// Fig 12, loosest to tightest.
var Fig12Thresholds = []float64{5e-13, 3e-13, 2.5e-13, 1.5e-13, 5e-14}

// Fig12Result reproduces Fig 12: for each variability threshold t, the
// (k, dr) grid is classified by the cheapest algorithm whose measured
// variability stays within t. Tightening t pushes the frontier of
// "needs a costlier algorithm" toward the easy (low-k, low-dr) corner.
type Fig12Result struct {
	Grid       GridResult
	Thresholds []float64
	// Classes[t][cell] is the chosen algorithm per cell (as int), -1
	// when nothing qualifies; cells are in the grid's row-major order.
	Classes [][]int
}

// Fig12 runs the experiment by classifying a Fig 9-style sweep at each
// threshold.
func Fig12(cfg Config) Fig12Result {
	g := Fig9(cfg)
	return Fig12Result{
		Grid:       g,
		Thresholds: Fig12Thresholds,
		Classes:    grid.Classify(g.Cells, Fig12Thresholds),
	}
}

// ID implements Result.
func (Fig12Result) ID() string { return "fig12" }

// CostRankAt returns the cost rank of the classification for threshold
// index ti at (row, col); "none qualifies" ranks above everything.
func (r Fig12Result) CostRankAt(ti, row, col int) int {
	c := r.Classes[ti][row*r.Grid.Cols+col]
	if c < 0 {
		return 1 << 30
	}
	return sum.Algorithm(c).CostRank()
}

// TighteningMonotone verifies that lowering the threshold never
// cheapens any cell's required algorithm.
func (r Fig12Result) TighteningMonotone() bool {
	for row := 0; row < r.Grid.Rows; row++ {
		for col := 0; col < r.Grid.Cols; col++ {
			prev := -1
			for ti := range r.Thresholds {
				rank := r.CostRankAt(ti, row, col)
				if rank < prev {
					return false
				}
				prev = rank
			}
		}
	}
	return true
}

// HardCellsNeedCostlier verifies that at every threshold, the hardest
// cell (max k, max dr) requires an algorithm at least as costly as the
// easiest cell (k=1, dr=0).
func (r Fig12Result) HardCellsNeedCostlier() bool {
	for ti := range r.Thresholds {
		easy := r.CostRankAt(ti, 0, 0)
		hard := r.CostRankAt(ti, r.Grid.Rows-1, r.Grid.Cols-1)
		if hard < easy {
			return false
		}
	}
	return true
}

// String renders one classification map per threshold.
func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12: cheapest acceptable algorithm per (k, dr) cell (%s)\n", r.Grid.Fixed)
	for ti, th := range r.Thresholds {
		fmt.Fprintf(&b, "\nthreshold t = %.2g:\n", th)
		var rows [][]string
		for row := 0; row < r.Grid.Rows; row++ {
			line := []string{r.Grid.RowLabels[row]}
			for col := 0; col < r.Grid.Cols; col++ {
				c := r.Classes[ti][row*r.Grid.Cols+col]
				if c < 0 {
					line = append(line, "-")
				} else {
					line = append(line, sum.Algorithm(c).String())
				}
			}
			rows = append(rows, line)
		}
		header := append([]string{r.Grid.RowName + `\` + r.Grid.ColName}, r.Grid.ColLabels...)
		b.WriteString(textplot.Table(header, rows))
	}
	fmt.Fprintf(&b, "\nmonotone under tightening: %v; hard cells need costlier: %v\n",
		r.TighteningMonotone(), r.HardCellsNeedCostlier())
	return b.String()
}
