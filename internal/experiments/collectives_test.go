package experiments

import (
	"strings"
	"testing"
)

// TestCollectivesExtClaims pins the experiment's headline claims at
// Quick scale: the bitwise pin holds over every topology, the bucketed
// selection table agrees with the exact model on at least 80% of the
// audit grid, and the crossovers move from latency-bound to
// bandwidth-bound schedules as messages grow.
func TestCollectivesExtClaims(t *testing.T) {
	res := CollectivesExt(quick)
	if !res.PinAgree {
		t.Error("cross-topology bitwise pin failed: some schedule diverged from single-rank BN bits")
	}
	if res.PinTopos != 7 {
		t.Errorf("pin covered %d topologies, want 7", res.PinTopos)
	}
	if agree := float64(res.GridAgree) / float64(res.GridCells); agree < 0.8 {
		t.Errorf("table/model agreement %.0f%% below 80%% (%d/%d)",
			agree*100, res.GridAgree, res.GridCells)
	}
	for i, ranks := range res.Ranks {
		bands := res.Bands[i]
		if len(bands) == 0 {
			t.Fatalf("ranks=%d: no crossover bands", ranks)
		}
		// Small messages must pick a latency-bound schedule, large ones a
		// bandwidth-bound one, at every multi-node rank count.
		if ranks >= 256 {
			if first := bands[0].Topo; first != "binomial" && first != "binary" && first != "flat" {
				t.Errorf("ranks=%d: smallest messages select %s, want a latency-bound tree", ranks, first)
			}
			last := bands[len(bands)-1].Topo
			if last != "rabenseifner" && last != "dtree" && last != "chain" {
				t.Errorf("ranks=%d: largest messages select %s, want a bandwidth-bound schedule", ranks, last)
			}
		}
	}
	if res.ID() != "ext-collectives" {
		t.Errorf("ID = %q", res.ID())
	}
	s := res.String()
	for _, want := range []string{"msg\\ranks", "bitwise pin", "grid cells agree"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}
