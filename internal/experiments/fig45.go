package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/mpirt"
	"repro/internal/sum"
	"repro/internal/textplot"
)

// Fig45Result reproduces Figs 4 and 5: wall-clock time of the
// local-sum + global-reduce pattern for the four algorithms, and the
// performance penalties of K/CP/PR relative to ST. The paper ran 20
// repetitions of a 10^6-element local reduction plus MPI_Reduce with
// custom operators on a 48-core node; we run the same pattern over the
// simulated communicator with goroutine ranks. Absolute times differ
// from the paper's hardware; the cost ladder ST < K < CP < PR is the
// reproduced artifact.
type Fig45Result struct {
	N, Ranks, Reps int
	// Times[alg] is the mean wall-clock duration of one full reduction.
	Times map[sum.Algorithm]time.Duration
	// Sums[alg] records the computed result (sanity: all near zero for
	// the sum-to-zero input series).
	Sums map[sum.Algorithm]float64
}

// Fig45 runs the timing experiment. Paper scale: n=10^6 per rank,
// 20 repetitions with a warmed cache.
func Fig45(cfg Config) Fig45Result {
	n := cfg.pick(1<<17, 1<<20)
	reps := cfg.pick(5, 20)
	const ranks = 8
	res := Fig45Result{
		N:     n,
		Ranks: ranks,
		Reps:  reps,
		Times: make(map[sum.Algorithm]time.Duration, len(sum.PaperAlgorithms)),
		Sums:  make(map[sum.Algorithm]float64, len(sum.PaperAlgorithms)),
	}
	// Per-rank chunks of a series that sums to zero exactly (dr=32),
	// generated once and reused with a warmed cache, as in the paper.
	chunks := make([][]float64, ranks)
	for i := range chunks {
		chunks[i] = gen.SumZeroSeries(n/ranks, 32, cfg.Seed+uint64(i))
	}
	for _, alg := range sum.PaperAlgorithms {
		// Warm-up pass (outside timing).
		runReduction(chunks, alg)
		start := time.Now()
		var last float64
		for rep := 0; rep < reps; rep++ {
			last = runReduction(chunks, alg)
		}
		res.Times[alg] = time.Since(start) / time.Duration(reps)
		res.Sums[alg] = last
	}
	return res
}

// runReduction executes one local-sum + global-reduce cycle: each rank
// accumulates its chunk with the algorithm's native streaming loop and
// the partial states merge up a binomial tree.
func runReduction(chunks [][]float64, alg sum.Algorithm) float64 {
	op := alg.Op()
	w := mpirt.NewWorld(len(chunks), mpirt.Config{})
	var out float64
	err := w.Run(func(r *mpirt.Rank) {
		local := alg.LocalState(chunks[r.ID])
		if st := r.Reduce(0, local, op, mpirt.Binomial, mpirt.FixedOrder); st != nil {
			out = op.Finalize(st)
		}
	})
	if err != nil {
		panic(err)
	}
	return out
}

// ID implements Result.
func (Fig45Result) ID() string { return "fig4+fig5" }

// Penalty returns time(alg)/time(ST) — Fig 5's quantity.
func (r Fig45Result) Penalty(alg sum.Algorithm) float64 {
	st := r.Times[sum.StandardAlg]
	if st == 0 {
		return 0
	}
	return float64(r.Times[alg]) / float64(st)
}

// LadderHolds reports whether the measured cost ordering matches the
// paper's ST <= K <= CP <= PR (with a fractional tolerance for timer
// noise, e.g. 0.15 allows 15% inversions).
func (r Fig45Result) LadderHolds(tolerance float64) bool {
	order := sum.PaperAlgorithms
	for i := 1; i < len(order); i++ {
		a, b := r.Times[order[i-1]], r.Times[order[i]]
		if float64(b) < float64(a)*(1-tolerance) {
			return false
		}
	}
	return true
}

// String renders Fig 4 (times) and Fig 5 (penalties).
func (r Fig45Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4: mean time to reduce %d terms over %d ranks (%d reps)\n", r.N, r.Ranks, r.Reps)
	labels := make([]string, 0, len(sum.PaperAlgorithms))
	times := make([]float64, 0, len(sum.PaperAlgorithms))
	for _, alg := range sum.PaperAlgorithms {
		labels = append(labels, alg.String())
		times = append(times, float64(r.Times[alg].Microseconds()))
	}
	b.WriteString(textplot.BarChart("time (us)", labels, times, 50))
	b.WriteString("\nFig 5: performance penalty vs ST\n")
	var rows [][]string
	for _, alg := range sum.PaperAlgorithms[1:] {
		rows = append(rows, []string{alg.String(), fmt.Sprintf("%.2fx", r.Penalty(alg))})
	}
	b.WriteString(textplot.Table([]string{"alg", "penalty"}, rows))
	return b.String()
}
