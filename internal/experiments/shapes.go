package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

// ShapesExtResult quantifies the paper's Section V-B conclusion: "to
// cope with intermittent faults and inconsistently available resources,
// we expect that the reduction trees employed by an exascale system
// will vary not only in terms of arrangement of data among their leaves
// but also in overall shape". It measures the error spread of each
// algorithm under three shape regimes — fixed balanced (the best case),
// fixed unbalanced (the worst fixed case), and fully random shapes
// (fault-reshaped trees) — all with permuted leaf assignments.
type ShapesExtResult struct {
	N, Trees int
	// Spread[shape][alg] is the max-min error spread.
	Spread map[tree.Shape]map[sum.Algorithm]float64
}

// shapesStudied lists the regimes in the order reported.
var shapesStudied = []tree.Shape{tree.Balanced, tree.Random, tree.Unbalanced}

// ShapesExt runs the comparison.
func ShapesExt(cfg Config) ShapesExtResult {
	n := cfg.pick(4096, 1<<16)
	trees := cfg.pick(60, 200)
	xs := gen.SumZeroSeries(n, 32, cfg.Seed^0x54a9e5)
	ref := bigref.SumFloat64(xs)
	res := ShapesExtResult{
		N:      n,
		Trees:  trees,
		Spread: map[tree.Shape]map[sum.Algorithm]float64{},
	}
	for _, shape := range shapesStudied {
		res.Spread[shape] = map[sum.Algorithm]float64{}
		for _, alg := range sum.PaperAlgorithms {
			sums := grid.AlgSpread(alg, shape, xs, trees, fpu.NewRNG(cfg.Seed^uint64(alg)<<3))
			res.Spread[shape][alg] = metrics.ErrorStats(sums, ref).Spread()
		}
	}
	return res
}

// ID implements Result.
func (ShapesExtResult) ID() string { return "ext-shapes" }

// ShapeVariabilityWorse reports the reproduced claims: for ST, shape
// degradation orders balanced <= unbalanced (the Fig 7 across-column
// effect), and PR's spread is exactly zero under every regime —
// including fully random fault-reshaped trees.
func (r ShapesExtResult) ShapeVariabilityWorse() bool {
	if r.Spread[tree.Unbalanced][sum.StandardAlg] < r.Spread[tree.Balanced][sum.StandardAlg] {
		return false
	}
	for _, shape := range shapesStudied {
		if r.Spread[shape][sum.PreroundedAlg] != 0 {
			return false
		}
	}
	return true
}

// String renders the regime table.
func (r ShapesExtResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper §V-B): error spread under shape regimes (fault-reshaped trees)\n")
	fmt.Fprintf(&b, "n=%d, %d trees per regime, sum-zero dr=32 data\n", r.N, r.Trees)
	header := []string{"alg"}
	for _, shape := range shapesStudied {
		header = append(header, shape.String())
	}
	var rows [][]string
	for _, alg := range sum.PaperAlgorithms {
		row := []string{alg.String()}
		for _, shape := range shapesStudied {
			row = append(row, fmtFloat(r.Spread[shape][alg]))
		}
		rows = append(rows, row)
	}
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "balanced <= unbalanced for ST and PR spread == 0 under all regimes: %v\n",
		r.ShapeVariabilityWorse())
	return b.String()
}
