package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/mpirt"
	"repro/internal/sum"
	"repro/internal/textplot"
)

// CollectivesResult is an extension experiment (not a paper figure): it
// exercises the runtime collective-algorithm selection the paper argues
// an intelligent reduction layer must perform. The cost model's
// selection table (oneCCL-style, keyed on log2 message size x log2
// ranks) is rendered with its crossover boundaries, the bucketed table
// is audited against the exact model on a grid, and the headline
// reproducibility claim is pinned in simulation: every schedule —
// binomial, binary, chain, flat, rabenseifner, reduce-scatter+allgather
// and double binary tree — finalizes a BN payload to the same bits as a
// single-rank summation, under arrival-order merging with jitter.
type CollectivesResult struct {
	Machine mpirt.Machine
	Table   string
	// Bands[i] lists, for Ranks[i] ranks, the contiguous message-size
	// ranges the table assigns to each topology, in ascending size order.
	Ranks []int
	Bands [][]CrossoverBand
	// Bucketed-table vs exact-model agreement over the audit grid.
	GridCells int
	GridAgree int
	// Bitwise pin of the simulated schedules.
	PinRanks, PinElems, PinTopos int
	PinAgree                     bool
}

// CrossoverBand is one contiguous message-size range a selection table
// maps to a single topology.
type CrossoverBand struct {
	Topo    string
	LoBytes uint64
	HiBytes uint64 // inclusive upper edge of the last bucket in the band
}

// CollectivesExt builds the default machine's selection table, extracts
// its per-rank-count crossovers, audits bucketing against the exact
// model, and runs the cross-topology bitwise pin in simulation.
func CollectivesExt(cfg Config) CollectivesResult {
	m := mpirt.DefaultMachine()
	table := mpirt.NewSelectionTable(m)
	res := CollectivesResult{
		Machine: m,
		Table:   table.String(),
		Ranks:   []int{16, 256, 4096, 65536},
	}
	for _, ranks := range res.Ranks {
		res.Bands = append(res.Bands, crossoverBands(table, ranks))
	}

	// Bucketed table vs exact model: the table quantizes both axes to
	// powers of two, so off-bucket points may disagree with the exact
	// model; count agreement over a mixed on/off-bucket grid.
	for _, ranks := range []int{16, 100, 256, 4096, 10000} {
		for _, msgBytes := range []int{512, 4096, 65536, 1 << 20, 8 << 20} {
			res.GridCells++
			if table.Pick(msgBytes, ranks) == m.BestTopology(ranks, msgBytes/8, mpirt.DefaultSegSize) {
				res.GridAgree++
			}
		}
	}

	// Bitwise pin: every topology, arrival-order with jitter, against
	// the single-rank BN reference.
	ranks := cfg.pick(48, 512)
	perRank := cfg.pick(6, 16)
	res.PinRanks, res.PinElems = ranks, ranks*perRank
	xs := make([]float64, res.PinElems)
	rng := newPinRNG(cfg.Seed)
	for i := range xs {
		xs[i] = rng()
	}
	want := math.Float64bits(sum.Binned(xs))
	op := sum.BinnedAlg.Op()
	res.PinAgree = true
	for _, topo := range mpirt.Topologies {
		res.PinTopos++
		w := mpirt.NewWorld(ranks, mpirt.Config{Jitter: 50 * time.Microsecond, Seed: cfg.Seed + uint64(topo)})
		var got uint64
		err := w.Run(func(r *mpirt.Rank) {
			if v, ok := r.ReduceSum(0, xs[r.ID*perRank:(r.ID+1)*perRank], op, topo, mpirt.ArrivalOrder); ok {
				got = math.Float64bits(v)
			}
		})
		if err != nil || got != want {
			res.PinAgree = false
		}
	}
	return res
}

// newPinRNG is a tiny splitmix64-based generator producing a wide
// dynamic range of signed summands, so the pin is not trivially exact
// in float64.
func newPinRNG(seed uint64) func() float64 {
	s := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	return func() float64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		v := math.Ldexp(float64(z%(1<<52))/(1<<52)+0.5, int(z>>52%40)-20)
		if z&(1<<60) != 0 {
			v = -v
		}
		return v
	}
}

// crossoverBands walks the table's message-size axis at a fixed rank
// count and compresses consecutive equal picks into bands.
func crossoverBands(t *mpirt.SelectionTable, ranks int) []CrossoverBand {
	var bands []CrossoverBand
	for lm := 3; lm <= 30; lm++ {
		topo := t.Pick(1<<lm, ranks).String()
		if len(bands) > 0 && bands[len(bands)-1].Topo == topo {
			bands[len(bands)-1].HiBytes = 1 << lm
			continue
		}
		bands = append(bands, CrossoverBand{Topo: topo, LoBytes: 1 << lm, HiBytes: 1 << lm})
	}
	return bands
}

// ID implements Result.
func (CollectivesResult) ID() string { return "ext-collectives" }

// String renders the selection table, the crossovers, and the pin.
func (r CollectivesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: runtime collective-algorithm selection (oneCCL-style size x ranks table)\n")
	fmt.Fprintf(&b, "machine: %d cores/node, intra %.3g, inter %.3g, recv %.3g, merge %.3g, elem %.3g\n\n",
		r.Machine.CoresPerNode, r.Machine.IntraLat, r.Machine.InterLat,
		r.Machine.RecvCost, r.Machine.MergeCost, r.Machine.ElemCost)
	b.WriteString(r.Table)
	b.WriteByte('\n')
	var rows [][]string
	for i, ranks := range r.Ranks {
		var parts []string
		for _, band := range r.Bands[i] {
			if band.LoBytes == band.HiBytes {
				parts = append(parts, fmt.Sprintf("%s@%s", band.Topo, byteLabel(band.LoBytes)))
			} else {
				parts = append(parts, fmt.Sprintf("%s %s-%s", band.Topo,
					byteLabel(band.LoBytes), byteLabel(band.HiBytes)))
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", ranks), strings.Join(parts, ", ")})
	}
	b.WriteString(textplot.Table([]string{"ranks", "selected algorithm by message size"}, rows))
	fmt.Fprintf(&b, "bucketed table vs exact model: %d/%d grid cells agree\n", r.GridAgree, r.GridCells)
	fmt.Fprintf(&b, "bitwise pin: %d topologies x arrival-order+jitter at %d ranks (%d elems) all equal single-rank BN bits: %v\n",
		r.PinTopos, r.PinRanks, r.PinElems, r.PinAgree)
	return b.String()
}

func byteLabel(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%dGB", v>>30)
	case v >= 1<<20:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dKB", v>>10)
	}
	return fmt.Sprintf("%dB", v)
}
