package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/textplot"
)

// Fig2Result reproduces Fig 2: the distribution of observed error
// magnitudes over many random summation orders of one uniform data set,
// against the analytic (n·u·Σ|x|) and statistical (√n·u·Σ|x|)
// worst-case bounds. The paper's point: both bounds overestimate the
// observed error by orders of magnitude, and reordering alone spreads
// the error across a wide range.
type Fig2Result struct {
	N, Orders        int
	Errors           metrics.Stats
	ErrorSample      []float64 // raw per-order errors (the plotted points)
	AnalyticBound    float64
	StatisticalBound float64
}

// Fig2 runs the experiment. Paper scale: 10,000 values in (-1000, 1000)
// summed in 10,000 distinct orders.
func Fig2(cfg Config) Fig2Result {
	n := cfg.pick(2000, 10000)
	orders := cfg.pick(200, 10000)
	xs := gen.Uniform(n, -1000, 1000, cfg.Seed)
	ref := bigref.SumFloat64(xs)
	r := fpu.NewRNG(cfg.Seed ^ 0xF162)
	stream := metrics.NewErrorStream(ref, orders)
	errs := make([]float64, orders)
	work := make([]float64, n)
	copy(work, xs)
	for i := range errs {
		r.Shuffle(work)
		errs[i] = stream.Observe(sum.Standard(work))
	}
	return Fig2Result{
		N:                n,
		Orders:           orders,
		Errors:           stream.Describe(append([]float64(nil), errs...)),
		ErrorSample:      errs,
		AnalyticBound:    metrics.AnalyticBound(xs),
		StatisticalBound: metrics.StatisticalBound(xs),
	}
}

// ID implements Result.
func (Fig2Result) ID() string { return "fig2" }

// OverestimationAnalytic returns how many times the analytic bound
// exceeds the worst observed error.
func (r Fig2Result) OverestimationAnalytic() float64 {
	if r.Errors.Max == 0 {
		return 0
	}
	return r.AnalyticBound / r.Errors.Max
}

// OverestimationStatistical is the same ratio for the statistical bound.
func (r Fig2Result) OverestimationStatistical() float64 {
	if r.Errors.Max == 0 {
		return 0
	}
	return r.StatisticalBound / r.Errors.Max
}

// ErrorSpreadRatio returns max/min over the nonzero observed errors —
// the width of the error range induced by reordering alone.
func (r Fig2Result) ErrorSpreadRatio() float64 {
	if r.Errors.Min > 0 {
		return r.Errors.Max / r.Errors.Min
	}
	return r.Errors.Max / (r.Errors.Q1 + 1e-300)
}

// String renders the comparison.
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: %d orders of %d uniform(-1000,1000) values\n", r.Orders, r.N)
	b.WriteString(textplot.Table(
		[]string{"quantity", "value"},
		[][]string{
			{"min observed error", fmtFloat(r.Errors.Min)},
			{"median observed error", fmtFloat(r.Errors.Median)},
			{"max observed error", fmtFloat(r.Errors.Max)},
			{"statistical bound sqrt(n)*u*sum|x|", fmtFloat(r.StatisticalBound)},
			{"analytic bound n*u*sum|x|", fmtFloat(r.AnalyticBound)},
			{"analytic overestimation", fmt.Sprintf("%.1fx", r.OverestimationAnalytic())},
			{"statistical overestimation", fmt.Sprintf("%.1fx", r.OverestimationStatistical())},
		}))
	if len(r.ErrorSample) > 0 {
		b.WriteString("\n")
		b.WriteString(textplot.Histogram(
			"distribution of observed error magnitudes (log bins)",
			metrics.LogHistogram(r.ErrorSample, 12),
			map[string]float64{
				"statistical bound": r.StatisticalBound,
				"analytic bound":    r.AnalyticBound,
			}, 40))
	}
	return b.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
