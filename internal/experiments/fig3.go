package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bigref"
	"repro/internal/cestac"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/textplot"
)

// Fig3Order is one summation order's instrumentation record: the
// cancellation counts at severities 1/2/4/8 decimal digits and the true
// error of the computed sum.
type Fig3Order struct {
	Counts [4]int
	Error  float64
}

// Fig3Result reproduces Fig 3: cancellation counts versus error
// magnitude across summation orders of one uniform [-1,1] set. The
// paper's claim — proven by counterexample — is that cancellation
// counts do not predict error.
type Fig3Result struct {
	N      int
	Orders []Fig3Order
	// RankCorrelation is Spearman's rho between total cancellations and
	// error magnitude across orders (weak => counts don't predict).
	RankCorrelation float64
	// InversionI/J index a witness pair: order I has strictly more
	// >=1-digit cancellations than order J but strictly less error
	// (the paper's "order 2 vs order 4" observation). -1 when no such
	// pair exists.
	InversionI, InversionJ int
}

// Fig3 runs the experiment. Paper scale: 1,000 uniform [-1,1] values,
// 100 orders, cancellations graded by CADNA (here: the cestac package).
func Fig3(cfg Config) Fig3Result {
	n := cfg.pick(400, 1000)
	orders := cfg.pick(40, 100)
	xs := gen.Uniform(n, -1, 1, cfg.Seed^0xF163)
	ref := bigref.SumFloat64(xs)
	r := fpu.NewRNG(cfg.Seed ^ 0x0D3)
	res := Fig3Result{N: n, InversionI: -1, InversionJ: -1}
	work := make([]float64, n)
	copy(work, xs)
	for o := 0; o < orders; o++ {
		r.Shuffle(work)
		ctx := cestac.NewCtx(cfg.Seed + uint64(o))
		v := ctx.SumStandard(work)
		res.Orders = append(res.Orders, Fig3Order{
			Counts: ctx.Counts(),
			Error:  math.Abs(v.Mean() - ref),
		})
	}
	res.RankCorrelation = spearman(res.Orders)
	res.InversionI, res.InversionJ = findInversion(res.Orders)
	return res
}

// findInversion locates a pair with more cancellations but less error.
// It maximizes the count ratio among qualifying pairs, mirroring the
// paper's "5x the cancellations, half the error" example.
func findInversion(orders []Fig3Order) (int, int) {
	bi, bj, bestRatio := -1, -1, 1.0
	for i := range orders {
		for j := range orders {
			ci, cj := orders[i].Counts[0], orders[j].Counts[0]
			if cj == 0 || ci <= cj {
				continue
			}
			if orders[i].Error < orders[j].Error {
				if ratio := float64(ci) / float64(cj); ratio > bestRatio {
					bi, bj, bestRatio = i, j, ratio
				}
			}
		}
	}
	return bi, bj
}

// spearman computes the rank correlation between total cancellations
// and error across orders.
func spearman(orders []Fig3Order) float64 {
	n := len(orders)
	if n < 2 {
		return 0
	}
	counts := make([]float64, n)
	errs := make([]float64, n)
	for i, o := range orders {
		counts[i] = float64(o.Counts[0])
		errs[i] = o.Error
	}
	rc, re := ranks(counts), ranks(errs)
	var mc, me float64
	for i := 0; i < n; i++ {
		mc += rc[i]
		me += re[i]
	}
	mc /= float64(n)
	me /= float64(n)
	var cov, vc, ve float64
	for i := 0; i < n; i++ {
		dc, de := rc[i]-mc, re[i]-me
		cov += dc * de
		vc += dc * dc
		ve += de * de
	}
	if vc == 0 || ve == 0 {
		return 0
	}
	return cov / math.Sqrt(vc*ve)
}

// ranks assigns average ranks (ties share the mean rank).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// ID implements Result.
func (Fig3Result) ID() string { return "fig3" }

// String renders per-order bars plus the headline statistics.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3: cancellations vs error over %d orders of %d uniform[-1,1] values\n",
		len(r.Orders), r.N)
	show := len(r.Orders)
	if show > 10 {
		show = 10
	}
	var rows [][]string
	for i := 0; i < show; i++ {
		o := r.Orders[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", o.Counts[0]),
			fmt.Sprintf("%d", o.Counts[1]),
			fmt.Sprintf("%d", o.Counts[2]),
			fmt.Sprintf("%d", o.Counts[3]),
			fmtFloat(o.Error),
		})
	}
	b.WriteString(textplot.Table(
		[]string{"order", ">=1 digit", ">=2", ">=4", ">=8", "error"}, rows))
	fmt.Fprintf(&b, "Spearman rank correlation (cancellations vs error): %.3f\n", r.RankCorrelation)
	if r.InversionI >= 0 {
		oi, oj := r.Orders[r.InversionI], r.Orders[r.InversionJ]
		fmt.Fprintf(&b,
			"counterexample: order %d has %.1fx the cancellations of order %d but %.2fx the error\n",
			r.InversionI+1, float64(oi.Counts[0])/float64(oj.Counts[0]),
			r.InversionJ+1, oi.Error/oj.Error)
	}
	return b.String()
}
