package experiments

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/sum"
)

var quick = Config{Scale: Quick, Seed: 1}

func TestTableI(t *testing.T) {
	res := TableI(quick)
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.AllMatch() {
		t.Errorf("Table I mismatch:\n%s", res)
	}
	if len(res.GenRows) != 9 {
		t.Fatalf("gen rows = %d", len(res.GenRows))
	}
	for _, g := range res.GenRows {
		if g.MeasuredDRBits != g.TargetDRBits {
			t.Errorf("generator dr %d != target %d", g.MeasuredDRBits, g.TargetDRBits)
		}
		switch {
		case math.IsInf(float64(g.TargetK), 1):
			if !math.IsInf(float64(g.MeasuredK), 1) {
				t.Errorf("generator k = %g, want inf", g.MeasuredK)
			}
		default:
			if g.MeasuredK < g.TargetK/3 || g.MeasuredK > g.TargetK*3 {
				t.Errorf("generator k = %g, target %g", g.MeasuredK, g.TargetK)
			}
		}
	}
	if !strings.Contains(res.String(), "Table I") {
		t.Error("String() missing header")
	}
}

func TestFig2BoundsDominateAndSpread(t *testing.T) {
	res := Fig2(quick)
	if res.Errors.N != res.Orders {
		t.Fatalf("error sample size %d", res.Errors.N)
	}
	// Both bounds must dominate every observed error, by a lot.
	if res.OverestimationAnalytic() < 10 {
		t.Errorf("analytic bound only %.1fx above max error", res.OverestimationAnalytic())
	}
	if res.OverestimationStatistical() < 1 {
		t.Errorf("statistical bound below max error: %.2fx", res.OverestimationStatistical())
	}
	if res.AnalyticBound <= res.StatisticalBound {
		t.Error("analytic bound should exceed statistical bound")
	}
	// Reordering alone must spread the error widely.
	if res.Errors.Max <= res.Errors.Min {
		t.Error("no error spread across orders")
	}
	if !strings.Contains(res.String(), "overestimation") {
		t.Error("String() incomplete")
	}
}

func TestFig3CancellationDoesNotPredictError(t *testing.T) {
	res := Fig3(quick)
	if len(res.Orders) == 0 {
		t.Fatal("no orders")
	}
	// Weak rank correlation: |rho| well below strong correlation.
	if math.Abs(res.RankCorrelation) > 0.6 {
		t.Errorf("cancellations unexpectedly predictive: rho = %.3f", res.RankCorrelation)
	}
	// A witness inversion should exist (more cancellations, less error).
	if res.InversionI < 0 {
		t.Error("no counterexample pair found")
	} else {
		oi, oj := res.Orders[res.InversionI], res.Orders[res.InversionJ]
		if oi.Counts[0] <= oj.Counts[0] || oi.Error >= oj.Error {
			t.Error("witness pair does not witness")
		}
	}
	// Severity counts must be cumulative in every order.
	for _, o := range res.Orders {
		if o.Counts[0] < o.Counts[1] || o.Counts[1] < o.Counts[2] || o.Counts[2] < o.Counts[3] {
			t.Errorf("non-cumulative counts %v", o.Counts)
		}
	}
	_ = res.String()
}

func TestFig45CostLadder(t *testing.T) {
	res := Fig45(quick)
	for _, alg := range sum.PaperAlgorithms {
		if res.Times[alg] <= 0 {
			t.Fatalf("no time recorded for %v", alg)
		}
		// The input sums to zero exactly; every algorithm's result must
		// be tiny relative to the data magnitude.
		if math.Abs(res.Sums[alg]) > 1 {
			t.Errorf("%v sum = %g, expected near zero", alg, res.Sums[alg])
		}
	}
	// Penalties are relative to ST.
	if p := res.Penalty(sum.StandardAlg); p != 1 {
		t.Errorf("ST penalty = %g", p)
	}
	// The ladder should hold with slack for scheduler noise; it is a
	// structural claim about the implementations, so a gross inversion
	// (e.g. PR cheaper than half of ST) is a bug.
	if !res.LadderHolds(0.5) {
		t.Errorf("cost ladder grossly violated: ST=%v K=%v CP=%v PR=%v",
			res.Times[sum.StandardAlg], res.Times[sum.KahanAlg],
			res.Times[sum.CompositeAlg], res.Times[sum.PreroundedAlg])
	}
	if !strings.Contains(res.String(), "penalty") {
		t.Error("String() incomplete")
	}
}

func TestFig6SensitivityLadder(t *testing.T) {
	res := Fig6(quick)
	if !res.SpreadLadderHolds() {
		t.Errorf("Fig 6 ladder violated: K=%g CP=%g PR=%g",
			res.Stats[sum.KahanAlg].Spread(),
			res.Stats[sum.CompositeAlg].Spread(),
			res.Stats[sum.PreroundedAlg].Spread())
	}
	for _, alg := range Fig6Algorithms {
		if len(res.Errors[alg]) != res.Trees {
			t.Errorf("%v series length %d", alg, len(res.Errors[alg]))
		}
	}
	_ = res.String()
}

func TestFig7AllLadders(t *testing.T) {
	res := Fig7(quick)
	if len(res.Panels) != 4 {
		t.Fatalf("panels = %d", len(res.Panels))
	}
	if !res.SpreadLadderHolds() {
		t.Error("within-panel spread ladder violated")
		t.Log(res.String())
	}
	if !res.ConcurrencyGrowthHolds() {
		t.Error("ST spread did not grow with concurrency")
		t.Log(res.String())
	}
	if !res.UnbalancedWorseHolds() {
		t.Error("unbalanced trees not worse than balanced for ST")
		t.Log(res.String())
	}
}

func TestFig9GridShape(t *testing.T) {
	res := Fig9(quick)
	if len(res.Cells) != res.Rows*res.Cols {
		t.Fatalf("cell count %d", len(res.Cells))
	}
	// ST shading must grow with k along every dr row (with slack).
	if !res.MonotoneAlongCols(sum.StandardAlg, 0.9) {
		t.Error("ST variability not increasing with k")
		t.Log(res.String())
	}
	// CP and PR columns must be (near-)reproducible everywhere the
	// paper's resolution claims: exact-zero stddev for PR.
	for _, c := range res.Cells {
		if c.RelStdDev[sum.PreroundedAlg] != 0 {
			t.Errorf("PR varied at %v", c.Spec)
		}
	}
	// Dark corner: the hardest cell must beat the easiest by orders of
	// magnitude for ST.
	easy := res.Cell(0, 0).RelStdDev[sum.StandardAlg]
	hard := res.Cell(res.Rows-1, res.Cols-1).RelStdDev[sum.StandardAlg]
	if !(hard > easy) {
		t.Errorf("hard cell (%g) not darker than easy cell (%g)", hard, easy)
	}
	if !strings.Contains(res.String(), "Fig9") {
		t.Error("String() incomplete")
	}
}

func TestFig10Fig11Shapes(t *testing.T) {
	f10 := Fig10(quick)
	if len(f10.Cells) != f10.Rows*f10.Cols {
		t.Fatal("fig10 cell count")
	}
	// k is fixed at 1: every measured cell must be well-conditioned.
	for _, c := range f10.Cells {
		if c.MeasuredK != 1 {
			t.Errorf("fig10 cell %v has k=%g", c.Spec, c.MeasuredK)
		}
	}
	f11 := Fig11(quick)
	if len(f11.Cells) != f11.Rows*f11.Cols {
		t.Fatal("fig11 cell count")
	}
	// Fig 11's lesson: k exerts stronger influence than dr. Compare the
	// ST variability growth across k (at fixed n) with fig10's growth
	// across dr (at fixed n): the k span must be larger.
	kSpan := f11.Cell(f11.Rows-1, 0).RelStdDev[sum.StandardAlg] /
		math.Max(f11.Cell(0, 0).RelStdDev[sum.StandardAlg], 1e-300)
	drSpan := f10.Cell(f10.Rows-1, 0).RelStdDev[sum.StandardAlg] /
		math.Max(f10.Cell(0, 0).RelStdDev[sum.StandardAlg], 1e-300)
	if kSpan <= drSpan {
		t.Errorf("k influence (%.3g) not stronger than dr influence (%.3g)", kSpan, drSpan)
	}
}

func TestFig12Progression(t *testing.T) {
	res := Fig12(quick)
	if len(res.Classes) != len(Fig12Thresholds) {
		t.Fatal("class count")
	}
	if !res.TighteningMonotone() {
		t.Error("tightening the threshold cheapened a cell")
		t.Log(res.String())
	}
	if !res.HardCellsNeedCostlier() {
		t.Error("hard cells do not need costlier algorithms")
		t.Log(res.String())
	}
	// The easiest cell at the loosest threshold should get a cheap
	// algorithm (ST or K).
	if rank := res.CostRankAt(0, 0, 0); rank > sum.KahanAlg.CostRank() {
		t.Errorf("easy cell at loose threshold ranked %d", rank)
	}
	_ = res.String()
}

func TestScaleAndIDs(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Error("scale names")
	}
	ids := map[string]bool{}
	for _, r := range []Result{
		TableIResult{}, Fig2Result{}, Fig3Result{}, Fig45Result{},
		Fig6Result{}, Fig7Result{}, GridResult{Fig: "fig9"}, Fig12Result{},
		TopoResult{}, IntervalExtResult{}, ShapesExtResult{}, NBodyExtResult{}, PrecisionExtResult{},
	} {
		if r.ID() == "" || ids[r.ID()] {
			t.Errorf("bad or duplicate ID %q", r.ID())
		}
		ids[r.ID()] = true
	}
}

func TestTopoExtGrowsWithScale(t *testing.T) {
	res := TopoExt(quick)
	if len(res.Advantage) != len(res.Ns) {
		t.Fatal("length mismatch")
	}
	if !res.GrowsWithScale() {
		t.Errorf("topology advantage not growing: %v", res.Advantage)
	}
	if res.Advantage[0] < 1 {
		t.Errorf("topology-aware tree should win even at n=%d: %.2f", res.Ns[0], res.Advantage[0])
	}
	if !strings.Contains(res.String(), "Balaji") {
		t.Error("String() incomplete")
	}
}

func TestIntervalExtClaims(t *testing.T) {
	res := IntervalExt(quick)
	// Reproducible by design: every enclosure contained the exact sum.
	if res.EnclosureHeld != res.Orders {
		t.Errorf("enclosure held %d/%d", res.EnclosureHeld, res.Orders)
	}
	// Useless tightness on cancelling data: width dwarfs realized error.
	if res.WidthOverestimation() < 100 {
		t.Errorf("interval width only %.1fx the realized error; expected gross overestimate",
			res.WidthOverestimation())
	}
	// Large slowdown.
	if res.Slowdown < 2 {
		t.Errorf("interval slowdown %.1fx; expected well above ST", res.Slowdown)
	}
	if !strings.Contains(res.String(), "III-B") {
		t.Error("String() incomplete")
	}
}

func TestShapesExtClaims(t *testing.T) {
	res := ShapesExt(quick)
	if !res.ShapeVariabilityWorse() {
		t.Errorf("shape-variation claim failed: %v", res.Spread)
	}
	// ST must actually vary under every regime.
	for shape, spreads := range res.Spread {
		if spreads[sum.StandardAlg] == 0 {
			t.Errorf("ST did not vary under %v", shape)
		}
	}
	_ = res.String()
}

func TestNBodyExtTrust(t *testing.T) {
	res := NBodyExt(quick)
	if !res.TrustRestored() {
		t.Errorf("N-body trust claim failed: div=%v bitwise=%v", res.Divergence, res.BitwiseEqual)
	}
	// CP must diverge no more than ST.
	if res.Divergence[sum.CompositeAlg] > res.Divergence[sum.StandardAlg] {
		t.Errorf("CP diverged more than ST: %g vs %g",
			res.Divergence[sum.CompositeAlg], res.Divergence[sum.StandardAlg])
	}
	if !strings.Contains(res.String(), "N-body") {
		t.Error("String() incomplete")
	}
}

func TestResultsAreJSONMarshalable(t *testing.T) {
	for _, r := range []Result{
		TableI(quick), Fig2(quick), Fig3(quick), Fig6(quick),
		TopoExt(quick), ShapesExt(quick),
	} {
		blob, err := json.Marshal(r)
		if err != nil {
			t.Errorf("%s: %v", r.ID(), err)
			continue
		}
		if len(blob) < 10 {
			t.Errorf("%s: suspiciously small JSON", r.ID())
		}
	}
	// Algorithm-keyed maps must use abbreviations.
	blob, err := json.Marshal(ShapesExt(quick))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"PR"`) || !strings.Contains(string(blob), `"balanced"`) {
		t.Errorf("JSON keys not readable: %.200s", blob)
	}
}

func TestPrecisionExtClaims(t *testing.T) {
	res := PrecisionExt(quick)
	if !res.TechniqueWorks() {
		t.Errorf("III-C technique claim failed: distinct=%v worst=%v",
			res.Distinct, res.WorstErrUlps)
	}
	// Kahan in float32 must not be worse than naive.
	if res.WorstErrUlps["Kahan float32"] > res.WorstErrUlps["naive float32"] {
		t.Errorf("Kahan32 worse than naive: %v", res.WorstErrUlps)
	}
	if !strings.Contains(res.String(), "III-C") {
		t.Error("String() incomplete")
	}
}
