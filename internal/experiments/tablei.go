package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/textplot"
)

// TableIResult reproduces the paper's Table I: the eleven sample sets
// with their stated (dr, k), the measured values, and a generator
// cross-check over the same (dr, k) grid at a larger n.
type TableIResult struct {
	Rows []TableIRowResult
	// GenRows cross-check the workload generator: one row per (k, dr)
	// combination of the table, generated at n=1024 and re-measured.
	GenRows []TableIGenRow
}

// K is a condition number that JSON-encodes +Inf as the string "inf"
// (JSON numbers cannot represent infinity).
type K float64

// MarshalJSON implements json.Marshaler.
func (k K) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(k), 1) {
		return []byte(`"inf"`), nil
	}
	return json.Marshal(float64(k))
}

// UnmarshalJSON implements json.Unmarshaler.
func (k *K) UnmarshalJSON(b []byte) error {
	if string(b) == `"inf"` {
		*k = K(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*k = K(f)
	return nil
}

// TableIRowResult is one verified literal row.
type TableIRowResult struct {
	Values          []float64
	StatedDR, GotDR int
	StatedK, GotK   K
	DRMatch, KMatch bool
}

// TableIGenRow is one generator cross-check row.
type TableIGenRow struct {
	TargetK        K
	TargetDRBits   int
	MeasuredK      K
	MeasuredDRBits int
}

// TableI verifies the literal Table I sample sets and cross-checks the
// generator at the same parameter points.
func TableI(cfg Config) TableIResult {
	var res TableIResult
	for _, row := range gen.TableI() {
		r := TableIRowResult{
			Values:   row.Values,
			StatedDR: row.DR,
			StatedK:  K(row.K),
			GotDR:    metrics.DecimalDynRange(row.Values),
			GotK:     K(metrics.CondNumber(row.Values)),
		}
		r.DRMatch = r.GotDR == r.StatedDR
		switch {
		case math.IsInf(float64(r.StatedK), 1):
			r.KMatch = math.IsInf(float64(r.GotK), 1)
		case r.StatedK == 1:
			r.KMatch = r.GotK == 1
		default:
			r.KMatch = r.GotK >= r.StatedK/3 && r.GotK <= r.StatedK*3
		}
		res.Rows = append(res.Rows, r)
	}
	n := cfg.pick(1024, 1<<16)
	for _, k := range []float64{1, 1000, math.Inf(1)} {
		// Table I quotes decimal dr in {0, 8, 16}: ~{0, 27, 53} bits.
		for _, drBits := range []int{0, 27, 53} {
			xs := gen.Spec{N: n, Cond: k, DynRange: drBits, Seed: cfg.Seed + uint64(drBits)}.Generate()
			res.GenRows = append(res.GenRows, TableIGenRow{
				TargetK:        K(k),
				TargetDRBits:   drBits,
				MeasuredK:      K(metrics.CondNumber(xs)),
				MeasuredDRBits: metrics.DynRange(xs),
			})
		}
	}
	return res
}

// ID implements Result.
func (TableIResult) ID() string { return "tableI" }

// AllMatch reports whether every literal row matched the paper's values.
func (r TableIResult) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.DRMatch || !row.KMatch {
			return false
		}
	}
	return true
}

// String renders both tables.
func (r TableIResult) String() string {
	var rows [][]string
	for i, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", row.StatedDR),
			fmt.Sprintf("%d", row.GotDR),
			fmtK(float64(row.StatedK)),
			fmtK(float64(row.GotK)),
			okMark(row.DRMatch && row.KMatch),
		})
	}
	var b strings.Builder
	b.WriteString("Table I: literal sample sets (dr decimal, k = sum|x|/|sum x|)\n")
	b.WriteString(textplot.Table(
		[]string{"row", "dr(paper)", "dr(meas)", "k(paper)", "k(meas)", "ok"}, rows))
	b.WriteString("\nGenerator cross-check (dr in binary bits):\n")
	var gens [][]string
	for _, g := range r.GenRows {
		gens = append(gens, []string{
			fmtK(float64(g.TargetK)), fmt.Sprintf("%d", g.TargetDRBits),
			fmtK(float64(g.MeasuredK)), fmt.Sprintf("%d", g.MeasuredDRBits),
		})
	}
	b.WriteString(textplot.Table([]string{"k target", "dr target", "k meas", "dr meas"}, gens))
	return b.String()
}

func fmtK(k float64) string {
	if math.IsInf(k, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.3g", k)
}

func okMark(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
