package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bigref"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

// Fig6Result reproduces Fig 6: the relative sensitivity of K, CP, and
// PR to the reduction tree, on a fixed operand set constructed to be
// especially prone to alignment error and cancellation. For each of
// many same-shape trees with permuted leaf assignments, the error of
// each algorithm's sum is recorded; progressively more expensive
// compensation yields progressively flatter error series.
type Fig6Result struct {
	N, Trees int
	// Errors[alg] is the per-tree error series.
	Errors map[sum.Algorithm][]float64
	// Stats[alg] summarizes the series.
	Stats map[sum.Algorithm]metrics.Stats
}

// Fig6Algorithms are the algorithms plotted by the figure.
var Fig6Algorithms = []sum.Algorithm{sum.KahanAlg, sum.CompositeAlg, sum.PreroundedAlg}

// Fig6 runs the experiment. The three algorithms walk every sampled
// tree in lockstep over one shared plan stream — the same tree sequence
// the per-algorithm replays used to draw independently, now permuted
// once per tree instead of once per tree per algorithm.
func Fig6(cfg Config) Fig6Result {
	n := cfg.pick(4096, 1<<17)
	trees := cfg.pick(50, 200)
	// Ill-conditioned, wide-range, exactly cancelling: prone to both
	// alignment error and loss of accuracy via cancellation.
	xs := gen.SumZeroSeries(n, 32, cfg.Seed^0xF166)
	ref := bigref.SumFloat64(xs)
	res := Fig6Result{
		N:      n,
		Trees:  trees,
		Errors: make(map[sum.Algorithm][]float64, len(Fig6Algorithms)),
		Stats:  make(map[sum.Algorithm]metrics.Stats, len(Fig6Algorithms)),
	}
	me := tree.NewMultiExecutor(grid.Lanes(Fig6Algorithms)...)
	out := make([]float64, me.Lanes())
	ps := tree.NewPlanSource(tree.Balanced, n, cfg.Seed^0x6A16)
	streams := make([]*metrics.ErrorStream, len(Fig6Algorithms))
	errs := make([][]float64, len(Fig6Algorithms))
	for ai := range streams {
		streams[ai] = metrics.NewErrorStream(ref, trees)
		errs[ai] = make([]float64, 0, trees)
	}
	for t := 0; t < trees; t++ {
		me.Run(ps.Next(), xs, out)
		for ai, s := range out {
			errs[ai] = append(errs[ai], streams[ai].Observe(s))
		}
	}
	for ai, alg := range Fig6Algorithms {
		res.Errors[alg] = errs[ai]
		res.Stats[alg] = streams[ai].Describe(append([]float64(nil), errs[ai]...))
	}
	return res
}

// ID implements Result.
func (Fig6Result) ID() string { return "fig6" }

// SpreadLadderHolds reports whether spread(K) >= spread(CP) >=
// spread(PR) and PR's spread is exactly zero.
func (r Fig6Result) SpreadLadderHolds() bool {
	k := r.Stats[sum.KahanAlg].Spread()
	cp := r.Stats[sum.CompositeAlg].Spread()
	pr := r.Stats[sum.PreroundedAlg].Spread()
	return k >= cp && cp >= pr && pr == 0
}

// String renders the three error series as boxplots (the figure's (a)
// zoom corresponds to the CP/PR rows' scale).
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 6: sensitivity to leaf assignment, %d trees over %d values (sum-zero, dr=32)\n",
		r.Trees, r.N)
	labels := make([]string, 0, len(Fig6Algorithms))
	stats := make([]metrics.Stats, 0, len(Fig6Algorithms))
	for _, alg := range Fig6Algorithms {
		labels = append(labels, alg.String())
		stats = append(stats, r.Stats[alg])
	}
	b.WriteString(textplot.Boxplot("error magnitude per tree", labels, stats, 60))
	fmt.Fprintf(&b, "spread ladder K >= CP >= PR == 0: %v\n", r.SpreadLadderHolds())
	return b.String()
}
