package experiments

import (
	"fmt"
	"strings"

	"repro/internal/mpirt"
	"repro/internal/textplot"
)

// TopoResult is an extension experiment (not a paper figure): it
// reproduces the Balaji & Kimpe result the paper's Section II-B cites
// as the reason deterministic reduction orders are untenable — a
// topology-aware reduction tree outperforms an order-enforcing
// reduction, and the advantage grows with the number of cores.
type TopoResult struct {
	Machine mpirt.Machine
	Ns      []int
	// Advantage[i] is the mean completion-time ratio
	// ordered / topology-aware at Ns[i] ranks (higher = aware wins by
	// more), averaged over placements.
	Advantage []float64
	Reps      int
}

// TopoExt runs the simulated-time comparison.
func TopoExt(cfg Config) TopoResult {
	ns := []int{64, 256, 1024}
	if cfg.Scale == Full {
		ns = []int{64, 256, 1024, 4096, 16384}
	}
	reps := cfg.pick(10, 30)
	m := mpirt.DefaultMachine()
	res := TopoResult{Machine: m, Ns: ns, Reps: reps}
	for _, n := range ns {
		total := 0.0
		for i := 0; i < reps; i++ {
			total += mpirt.TopologyAdvantage(m, n, cfg.Seed+uint64(n*997+i))
		}
		res.Advantage = append(res.Advantage, total/float64(reps))
	}
	return res
}

// ID implements Result.
func (TopoResult) ID() string { return "ext-topology" }

// GrowsWithScale reports whether the advantage is monotone in n.
func (r TopoResult) GrowsWithScale() bool {
	for i := 1; i < len(r.Advantage); i++ {
		if r.Advantage[i] <= r.Advantage[i-1] {
			return false
		}
	}
	return len(r.Advantage) > 0 && r.Advantage[0] >= 1
}

// String renders the scaling table.
func (r TopoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension (paper §II-B, Balaji & Kimpe): topology-aware vs order-enforcing reduction\n")
	fmt.Fprintf(&b, "machine: %d cores/node, intra %.3g, inter %.3g, recv %.3g, merge %.3g (%d placements each)\n",
		r.Machine.CoresPerNode, r.Machine.IntraLat, r.Machine.InterLat,
		r.Machine.RecvCost, r.Machine.MergeCost, r.Reps)
	var rows [][]string
	for i, n := range r.Ns {
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2fx", r.Advantage[i]),
		})
	}
	b.WriteString(textplot.Table([]string{"ranks", "aware advantage"}, rows))
	fmt.Fprintf(&b, "advantage grows with scale: %v\n", r.GrowsWithScale())
	return b.String()
}
