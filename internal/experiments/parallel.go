package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/parallel"
	"repro/internal/sum"
	"repro/internal/superacc"
)

// ParallelExtResult measures the deterministic chunked parallel engine:
// per-algorithm parallel-vs-sequential throughput on one hostile input,
// plus a determinism audit — the engine's entire value proposition is
// that, unlike the nondeterministic reduction trees of the paper's
// Section V-B, adding workers changes nothing but the wall clock.
type ParallelExtResult struct {
	N       int
	Workers []int
	Rows    []ParallelExtRow
	// ExactStable reports that the sharded exact sum matched the
	// superaccumulator oracle at every worker count.
	ExactStable bool
}

// ParallelExtRow is one algorithm's measurement.
type ParallelExtRow struct {
	Alg sum.Algorithm
	// SeqNS and ParNS are ns per full reduction, sequential plan vs the
	// engine at the largest worker count.
	SeqNS, ParNS float64
	// Speedup is SeqNS/ParNS (bounded by the host's core count).
	Speedup float64
	// BitwiseStable reports that every worker count produced bits
	// identical to the sequential execution of the same plan.
	BitwiseStable bool
}

// ID implements Result.
func (r ParallelExtResult) ID() string { return "ext-parallel" }

// AllBitwiseStable reports whether every algorithm (and the exact sum)
// was bitwise-identical across all tested worker counts.
func (r ParallelExtResult) AllBitwiseStable() bool {
	for _, row := range r.Rows {
		if !row.BitwiseStable {
			return false
		}
	}
	return r.ExactStable
}

// String renders the table.
func (r ParallelExtResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parallel engine: n=%d, workers %v (host-bound)\n", r.N, r.Workers)
	fmt.Fprintf(&b, "%-4s %12s %12s %8s %s\n", "alg", "seq ns/op", "par ns/op", "speedup", "bitwise-stable")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-4s %12.0f %12.0f %7.2fx %v\n",
			row.Alg, row.SeqNS, row.ParNS, row.Speedup, row.BitwiseStable)
	}
	fmt.Fprintf(&b, "exact (sharded superacc) stable: %v\n", r.ExactStable)
	b.WriteString("determinism contract: fixed chunks + fixed merge tree => identical bits at any worker count\n")
	return b.String()
}

// ParallelExt runs the experiment.
func ParallelExt(cfg Config) ParallelExtResult {
	n := cfg.pick(1<<18, 1<<21)
	reps := cfg.pick(3, 5)
	workers := []int{1, 2, 4, 8}
	res := ParallelExtResult{N: n, Workers: workers, ExactStable: true}
	xs := gen.SumZeroSeries(n, 32, cfg.Seed+0x9a7)

	for _, alg := range sum.PaperAlgorithms {
		pcfg := parallel.Config{}
		row := ParallelExtRow{Alg: alg, BitwiseStable: true}
		ref := parallel.SeqSum(alg, xs, pcfg)
		for _, w := range workers {
			pcfg.Workers = w
			if got := parallel.Sum(alg, xs, pcfg); math.Float64bits(got) != math.Float64bits(ref) {
				row.BitwiseStable = false
			}
		}
		row.SeqNS = timeNS(reps, func() { sink = parallel.SeqSum(alg, xs, parallel.Config{}) })
		row.ParNS = timeNS(reps, func() { sink = parallel.Sum(alg, xs, parallel.Config{Workers: workers[len(workers)-1]}) })
		if row.ParNS > 0 {
			row.Speedup = row.SeqNS / row.ParNS
		}
		res.Rows = append(res.Rows, row)
	}

	exactRef := superacc.Sum(xs)
	for _, w := range workers {
		got := parallel.ExactSum(xs, parallel.Config{Workers: w})
		if math.Float64bits(got) != math.Float64bits(exactRef) {
			res.ExactStable = false
		}
	}
	return res
}

// sink defeats dead-code elimination in the timing loops.
var sink float64

// timeNS times f over reps runs and returns the fastest ns per run (the
// usual minimum-of-reps estimator, robust to scheduling noise).
func timeNS(reps int, f func()) float64 {
	best := math.Inf(1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if d := float64(time.Since(t0).Nanoseconds()); d < best {
			best = d
		}
	}
	return best
}
