package experiments

import (
	"fmt"
	"strings"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/gen"
	"repro/internal/grid"
	"repro/internal/metrics"
	"repro/internal/sum"
	"repro/internal/textplot"
	"repro/internal/tree"
)

// Fig7Panel is one of the figure's eight subplots: a tree shape, a
// concurrency level, and the per-algorithm error distributions over
// trees with permuted leaf assignments.
type Fig7Panel struct {
	Shape tree.Shape
	N     int
	Stats map[sum.Algorithm]metrics.Stats
}

// Fig7Result reproduces Fig 7 (a–h): error boxplots of ST/K/CP/PR over
// 100 permuted reduction trees, for balanced and unbalanced shapes at
// a smaller (8K) and a higher (1M) level of concurrency, on sum-to-zero
// sets with dynamic range 32.
type Fig7Result struct {
	Trees  int
	Panels []Fig7Panel
}

// Fig7 runs the experiment. Paper scale: n in {8192, 2^20}, 100 trees
// per panel.
//
// Each panel samples one shared plan stream and walks every tree with
// all four algorithms in lockstep (the fused engine): the figure's
// question is how the same tree nondeterminism affects each algorithm,
// so giving every algorithm the identical trees is the cleaner design —
// and permutes each operand set once per tree instead of once per tree
// per algorithm.
func Fig7(cfg Config) Fig7Result {
	small := cfg.pick(2048, 8192)
	large := cfg.pick(1<<14, 1<<20)
	trees := cfg.pick(30, 100)
	res := Fig7Result{Trees: trees}
	me := tree.NewMultiExecutor(grid.Lanes(sum.PaperAlgorithms)...)
	out := make([]float64, me.Lanes())
	for _, shape := range []tree.Shape{tree.Balanced, tree.Unbalanced} {
		for _, n := range []int{small, large} {
			xs := gen.SumZeroSeries(n, 32, cfg.Seed+uint64(n))
			ref := bigref.SumFloat64(xs)
			panel := Fig7Panel{
				Shape: shape,
				N:     n,
				Stats: make(map[sum.Algorithm]metrics.Stats, len(sum.PaperAlgorithms)),
			}
			ps := tree.NewPlanSource(shape, n, fpu.MixSeed(cfg.Seed, 0xf17<<32|uint64(n)))
			streams := make([]*metrics.ErrorStream, len(sum.PaperAlgorithms))
			errs := make([][]float64, len(sum.PaperAlgorithms))
			for ai := range streams {
				streams[ai] = metrics.NewErrorStream(ref, trees)
				errs[ai] = make([]float64, 0, trees)
			}
			for t := 0; t < trees; t++ {
				me.Run(ps.Next(), xs, out)
				for ai, s := range out {
					errs[ai] = append(errs[ai], streams[ai].Observe(s))
				}
			}
			for ai, alg := range sum.PaperAlgorithms {
				panel.Stats[alg] = streams[ai].Describe(errs[ai])
			}
			res.Panels = append(res.Panels, panel)
		}
	}
	return res
}

// ID implements Result.
func (Fig7Result) ID() string { return "fig7" }

// panel returns the panel for (shape, size rank) — sizes are ordered
// small, large per shape.
func (r Fig7Result) panel(shape tree.Shape, largeN bool) *Fig7Panel {
	for i := range r.Panels {
		p := &r.Panels[i]
		if p.Shape != shape {
			continue
		}
		isLarge := p.N == r.maxN()
		if isLarge == largeN {
			return p
		}
	}
	return nil
}

func (r Fig7Result) maxN() int {
	m := 0
	for _, p := range r.Panels {
		if p.N > m {
			m = p.N
		}
	}
	return m
}

// SpreadLadderHolds verifies, for every panel, the paper's within-panel
// ordering: spread(ST) >= spread(K) >= spread(CP) >= spread(PR) == 0.
func (r Fig7Result) SpreadLadderHolds() bool {
	for _, p := range r.Panels {
		st := p.Stats[sum.StandardAlg].Spread()
		k := p.Stats[sum.KahanAlg].Spread()
		cp := p.Stats[sum.CompositeAlg].Spread()
		pr := p.Stats[sum.PreroundedAlg].Spread()
		if !(st >= k && k >= cp && cp >= pr && pr == 0) {
			return false
		}
	}
	return true
}

// ConcurrencyGrowthHolds verifies the across-row observation: for ST,
// the error spread at the higher concurrency exceeds the spread at the
// lower one (per shape).
func (r Fig7Result) ConcurrencyGrowthHolds() bool {
	for _, shape := range []tree.Shape{tree.Balanced, tree.Unbalanced} {
		lo, hi := r.panel(shape, false), r.panel(shape, true)
		if lo == nil || hi == nil {
			return false
		}
		if hi.Stats[sum.StandardAlg].Spread() < lo.Stats[sum.StandardAlg].Spread() {
			return false
		}
	}
	return true
}

// UnbalancedWorseHolds verifies the across-column observation: ST
// varies more under unbalanced trees than balanced ones at equal n.
func (r Fig7Result) UnbalancedWorseHolds() bool {
	for _, largeN := range []bool{false, true} {
		bal, unbal := r.panel(tree.Balanced, largeN), r.panel(tree.Unbalanced, largeN)
		if bal == nil || unbal == nil {
			return false
		}
		if unbal.Stats[sum.StandardAlg].Spread() < bal.Stats[sum.StandardAlg].Spread() {
			return false
		}
	}
	return true
}

// String renders all panels.
func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 7: error distributions over %d permuted trees (sum-zero, dr=32)\n", r.Trees)
	for _, p := range r.Panels {
		fmt.Fprintf(&b, "\n[%s, n=%d]\n", p.Shape, p.N)
		labels := make([]string, 0, len(sum.PaperAlgorithms))
		stats := make([]metrics.Stats, 0, len(sum.PaperAlgorithms))
		for _, alg := range sum.PaperAlgorithms {
			labels = append(labels, alg.String())
			stats = append(stats, p.Stats[alg])
		}
		b.WriteString(textplot.Boxplot("error", labels, stats, 60))
	}
	fmt.Fprintf(&b, "\nladders: within-panel %v, concurrency growth %v, unbalanced>balanced %v\n",
		r.SpreadLadderHolds(), r.ConcurrencyGrowthHolds(), r.UnbalancedWorseHolds())
	return b.String()
}
