// Package cestac implements a stochastic-arithmetic cancellation tracker
// in the style of CADNA/CESTAC, which the paper uses to count
// cancellations and grade their severity for Fig 3.
//
// Each tracked value carries three concurrent samples; every arithmetic
// operation randomly rounds each sample up or down (emulating the
// directed-rounding perturbation of the CESTAC method). The divergence
// of the samples estimates how many significant digits survive, and
// each addition that loses leading digits is recorded as a cancellation
// event whose severity is the number of decimal digits lost.
package cestac

import (
	"math"

	"repro/internal/fpu"
)

// samples is the number of concurrent perturbed executions (CESTAC
// classically uses 2 or 3; CADNA uses 3).
const samples = 3

// studentT95 is the two-sided 95% Student-t quantile for samples-1 = 2
// degrees of freedom, used in the significant-digit estimate.
const studentT95 = 4.303

// Value is a stochastically tracked float64.
type Value struct {
	s [samples]float64
}

// Ctx owns the random-rounding stream and the cancellation log of one
// instrumented computation.
type Ctx struct {
	rng *fpu.RNG
	// counts[d] is the number of additions that lost >= thresholds[d]
	// decimal digits.
	counts [len(Thresholds)]int
	total  int // total cancellation events (>= 1 digit lost)
	ops    int // instrumented additions
}

// Thresholds are the digit-loss severities reported by Fig 3's bars.
var Thresholds = [4]int{1, 2, 4, 8}

// NewCtx returns a context seeded for reproducible instrumentation.
func NewCtx(seed uint64) *Ctx {
	return &Ctx{rng: fpu.NewRNG(seed ^ 0xCE57AC)}
}

// FromFloat64 lifts an exact float64 into a tracked value.
func (c *Ctx) FromFloat64(x float64) Value {
	var v Value
	for i := range v.s {
		v.s[i] = x
	}
	return v
}

// randRound applies a random directed rounding to the already
// round-to-nearest result s whose exact residual is e: half the time the
// result is nudged to the representable neighbor in the residual's
// direction, emulating round-toward-±infinity.
func (c *Ctx) randRound(s, e float64) float64 {
	if e == 0 || !c.rng.Bool() {
		return s
	}
	if e > 0 {
		return fpu.NextUp(s)
	}
	return fpu.NextDown(s)
}

// Add returns a+b, randomly rounded per sample, recording a cancellation
// event if leading digits are lost.
func (c *Ctx) Add(a, b Value) Value {
	c.recordCancellation(a.s[0], b.s[0])
	var out Value
	for i := range out.s {
		s, e := fpu.TwoSum(a.s[i], b.s[i])
		out.s[i] = c.randRound(s, e)
	}
	c.ops++
	return out
}

// AddFloat64 folds an exact operand into a tracked value.
func (c *Ctx) AddFloat64(a Value, x float64) Value {
	return c.Add(a, c.FromFloat64(x))
}

// Sub returns a-b with stochastic rounding and cancellation tracking.
func (c *Ctx) Sub(a, b Value) Value {
	return c.Add(a, b.Neg())
}

// Neg returns -v (exact).
func (v Value) Neg() Value {
	var out Value
	for i := range out.s {
		out.s[i] = -v.s[i]
	}
	return out
}

// Mul returns a*b with stochastic rounding per sample (no cancellation
// can occur in a multiplication, so none is recorded).
func (c *Ctx) Mul(a, b Value) Value {
	var out Value
	for i := range out.s {
		p, e := fpu.TwoProd(a.s[i], b.s[i])
		out.s[i] = c.randRound(p, e)
	}
	c.ops++
	return out
}

// Div returns a/b with stochastic rounding per sample; the residual
// direction comes from the exact remainder a - q*b.
func (c *Ctx) Div(a, b Value) Value {
	var out Value
	for i := range out.s {
		q := a.s[i] / b.s[i]
		rem := math.FMA(-q, b.s[i], a.s[i])
		if b.s[i] < 0 {
			rem = -rem
		}
		out.s[i] = c.randRound(q, rem)
	}
	c.ops++
	return out
}

// recordCancellation detects loss of leading bits: the exponent of the
// sum falling below the larger operand exponent. Severity is converted
// to decimal digits (1 digit ~ log2(10) bits), CADNA's unit.
func (c *Ctx) recordCancellation(a, b float64) {
	if a == 0 || b == 0 || fpu.SameSign(a, b) {
		return
	}
	s := a + b
	opExp := fpu.Exponent(a)
	if e := fpu.Exponent(b); e > opExp {
		opExp = e
	}
	var lostBits int
	if s == 0 {
		lostBits = fpu.Precision
	} else {
		lostBits = opExp - fpu.Exponent(s)
	}
	if lostBits <= 0 {
		return
	}
	digits := int(float64(lostBits) / math.Log2(10))
	if digits < 1 {
		return
	}
	c.total++
	for i, th := range Thresholds {
		if digits >= th {
			c.counts[i]++
		}
	}
}

// Mean returns the average of the samples — the value estimate.
func (v Value) Mean() float64 {
	return (v.s[0] + v.s[1] + v.s[2]) / samples
}

// SignificantDigits estimates the number of reliable decimal digits in
// the value via the CESTAC Student-t formula. Exactly agreeing samples
// report the full 15.95 digits of binary64.
func (v Value) SignificantDigits() float64 {
	const maxDigits = 15.95 // log10(2^53)
	m := v.Mean()
	var variance float64
	for _, s := range v.s {
		d := s - m
		variance += d * d
	}
	variance /= samples - 1
	if variance == 0 {
		if m == 0 {
			return 0
		}
		return maxDigits
	}
	if m == 0 {
		return 0
	}
	digits := math.Log10(math.Abs(m) * math.Sqrt(samples) / (math.Sqrt(variance) * studentT95))
	if digits < 0 {
		return 0
	}
	if digits > maxDigits {
		return maxDigits
	}
	return digits
}

// Counts returns the number of cancellations at each severity in
// Thresholds (cumulative: an 8-digit loss also counts at 1, 2, and 4).
func (c *Ctx) Counts() [len(Thresholds)]int { return c.counts }

// Total returns the total number of cancellation events (>= 1 digit).
func (c *Ctx) Total() int { return c.total }

// Ops returns the number of instrumented additions.
func (c *Ctx) Ops() int { return c.ops }

// SumStandard reduces xs left-to-right under instrumentation and returns
// the tracked sum. This is the Fig 3 measurement kernel: one call per
// summation order, then Counts() vs the true error of Mean().
func (c *Ctx) SumStandard(xs []float64) Value {
	acc := c.FromFloat64(0)
	for _, x := range xs {
		acc = c.AddFloat64(acc, x)
	}
	return acc
}
