package cestac

import (
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/fpu"
)

func TestExactArithmeticKeepsAllDigits(t *testing.T) {
	c := NewCtx(1)
	v := c.AddFloat64(c.FromFloat64(1), 2) // 1+2 exact: no perturbation
	if v.Mean() != 3 {
		t.Errorf("mean = %g, want 3", v.Mean())
	}
	if d := v.SignificantDigits(); d < 15 {
		t.Errorf("exact op lost digits: %g", d)
	}
}

func TestPerturbationOnInexactOps(t *testing.T) {
	c := NewCtx(2)
	acc := c.FromFloat64(0)
	for i := 0; i < 10000; i++ {
		acc = c.AddFloat64(acc, 0.1)
	}
	// Samples should have diverged (0.1 is inexact).
	if acc.s[0] == acc.s[1] && acc.s[1] == acc.s[2] {
		t.Error("samples never diverged over 10000 inexact adds")
	}
	if math.Abs(acc.Mean()-1000) > 1e-6 {
		t.Errorf("mean %g too far from 1000", acc.Mean())
	}
	d := acc.SignificantDigits()
	if d < 8 || d > 15.95 {
		t.Errorf("significant digits %g outside plausible range", d)
	}
}

func TestCatastrophicCancellationDetected(t *testing.T) {
	c := NewCtx(3)
	a := c.FromFloat64(1.0000001e8)
	v := c.AddFloat64(a, -1e8) // loses ~8 leading decimal digits
	_ = v
	counts := c.Counts()
	if counts[0] < 1 {
		t.Fatal("cancellation not detected")
	}
	// ~7-8 digits lost: must register at severities 1, 2, 4.
	if counts[1] < 1 || counts[2] < 1 {
		t.Errorf("severity grading wrong: %v", counts)
	}
	if c.Total() != counts[0] {
		t.Errorf("total %d != >=1-digit count %d", c.Total(), counts[0])
	}
}

func TestExactZeroCancellationMaxSeverity(t *testing.T) {
	c := NewCtx(4)
	c.Add(c.FromFloat64(3.25), c.FromFloat64(-3.25))
	counts := c.Counts()
	for i := range counts {
		if counts[i] != 1 {
			t.Errorf("exact cancellation should register at every severity: %v", counts)
		}
	}
}

func TestSameSignNeverCancels(t *testing.T) {
	c := NewCtx(5)
	acc := c.FromFloat64(0)
	for i := 0; i < 1000; i++ {
		acc = c.AddFloat64(acc, float64(i)+0.5)
	}
	if c.Total() != 0 {
		t.Errorf("same-sign additions recorded %d cancellations", c.Total())
	}
	if c.Ops() != 1000 {
		t.Errorf("ops = %d", c.Ops())
	}
}

func TestCountsAreCumulative(t *testing.T) {
	c := NewCtx(6)
	// 2-digit loss: 1.01e4 - 1e4 = 100, exponents 13 vs 6 -> ~2 digits.
	c.Add(c.FromFloat64(1.01e4), c.FromFloat64(-1e4))
	counts := c.Counts()
	if counts[0] < counts[1] || counts[1] < counts[2] || counts[2] < counts[3] {
		t.Errorf("severity counts not monotone: %v", counts)
	}
	if counts[0] != 1 || counts[3] != 0 {
		t.Errorf("2-digit loss misgraded: %v", counts)
	}
}

func TestSignificantDigitsZeroMean(t *testing.T) {
	c := NewCtx(7)
	v := c.Add(c.FromFloat64(1), c.FromFloat64(-1))
	if d := v.SignificantDigits(); d != 0 {
		t.Errorf("zero with agreement: %g digits (want 0 by convention)", d)
	}
}

func TestSumStandardTracksTrueError(t *testing.T) {
	// The stochastic mean must stay close to the exact sum, and the
	// sample spread should roughly reflect the accumulated error.
	r := fpu.NewRNG(8)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Float64()*2 - 1
	}
	c := NewCtx(9)
	v := c.SumStandard(xs)
	exact := bigref.SumFloat64(xs)
	if math.Abs(v.Mean()-exact) > 1e-9 {
		t.Errorf("stochastic mean %g vs exact %g", v.Mean(), exact)
	}
	if c.Ops() != 2000 {
		t.Errorf("ops = %d", c.Ops())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	xs := []float64{0.1, -0.3, 0.7, -0.5, 0.2}
	a := NewCtx(42)
	b := NewCtx(42)
	va, vb := a.SumStandard(xs), b.SumStandard(xs)
	if va != vb {
		t.Error("same seed produced different stochastic values")
	}
	if a.Counts() != b.Counts() {
		t.Error("same seed produced different cancellation counts")
	}
}

func TestFig3StyleNonCorrelation(t *testing.T) {
	// Reproduce the paper's Section IV-B observation in miniature: for
	// uniform [-1,1] data, cancellation counts across orders do not
	// determine error magnitude. We check that the count is roughly
	// stable across shuffles while errors vary (so count cannot predict
	// error).
	r := fpu.NewRNG(10)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Float64()*2 - 1
	}
	exact := bigref.SumFloat64(xs)
	var counts []int
	var errs []float64
	for order := 0; order < 20; order++ {
		r.Shuffle(xs)
		c := NewCtx(uint64(order))
		v := c.SumStandard(xs)
		counts = append(counts, c.Total())
		errs = append(errs, math.Abs(v.Mean()-exact))
	}
	distinctErr := map[float64]bool{}
	for _, e := range errs {
		distinctErr[e] = true
	}
	if len(distinctErr) < 5 {
		t.Error("errors did not vary across orders")
	}
	totalCancels := 0
	for _, n := range counts {
		totalCancels += n
	}
	if totalCancels == 0 {
		t.Error("expected some cancellations across 20 orders of mixed-sign data")
	}
}

func TestSubMulDiv(t *testing.T) {
	c := NewCtx(20)
	a, b := c.FromFloat64(6), c.FromFloat64(3)
	if got := c.Sub(a, b).Mean(); got != 3 {
		t.Errorf("Sub = %g", got)
	}
	if got := c.Mul(a, b).Mean(); got != 18 {
		t.Errorf("Mul = %g", got)
	}
	if got := c.Div(a, b).Mean(); got != 2 {
		t.Errorf("Div = %g", got)
	}
	// Inexact ops must eventually perturb samples.
	x := c.FromFloat64(1)
	third := c.Div(x, c.FromFloat64(3))
	acc := c.FromFloat64(0)
	for i := 0; i < 1000; i++ {
		acc = c.Add(acc, third)
	}
	if acc.s[0] == acc.s[1] && acc.s[1] == acc.s[2] {
		t.Error("samples never diverged accumulating 1/3")
	}
	if d := acc.SignificantDigits(); d < 8 {
		t.Errorf("1000*(1/3): %g digits", d)
	}
}

func TestMulNoCancellationRecorded(t *testing.T) {
	c := NewCtx(21)
	c.Mul(c.FromFloat64(2), c.FromFloat64(-3))
	if c.Total() != 0 {
		t.Error("multiplication recorded a cancellation")
	}
}
