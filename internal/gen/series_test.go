package gen

import (
	"math"
	"testing"

	"repro/internal/bigref"
	"repro/internal/metrics"
	"repro/internal/sum"
)

func TestAlternatingHarmonicConverges(t *testing.T) {
	xs := AlternatingHarmonic(1 << 20)
	got := sum.Composite(xs)
	// Truncation error of the alternating series is below 1/n.
	if math.Abs(got-math.Ln2) > 1.0/float64(len(xs)) {
		t.Errorf("partial sum %g too far from ln2 %g", got, math.Ln2)
	}
	// Signs must alternate.
	if xs[0] < 0 || xs[1] > 0 {
		t.Error("sign pattern wrong")
	}
}

func TestBaselConverges(t *testing.T) {
	n := 1 << 20
	xs := Basel(n)
	got := sum.Composite(xs)
	limit := math.Pi * math.Pi / 6
	// Truncation error ~ 1/n.
	if math.Abs(got-limit) > 2.0/float64(n) {
		t.Errorf("partial sum %g too far from pi^2/6 %g", got, limit)
	}
	if k := metrics.CondNumber(xs); k != 1 {
		t.Errorf("Basel k = %g, want 1 (same sign)", k)
	}
}

func TestBaselOrderingEffect(t *testing.T) {
	// The textbook claim: ascending order is far more accurate than
	// descending for same-sign decaying terms under ST.
	xs := Basel(1 << 18)
	exact := bigref.SumFloat64(xs)
	ascErr := math.Abs(sum.SortedAscending(xs) - exact)
	descErr := math.Abs(sum.SortedDescending(xs) - exact)
	if ascErr > descErr {
		t.Errorf("ascending (%g) not better than descending (%g)", ascErr, descErr)
	}
}

func TestGeometricExact(t *testing.T) {
	xs := Geometric(30, 0.5)
	// Partial sum of ratio 1/2 from 1: 2 - 2^-29 exactly.
	want := 2 - math.Ldexp(1, -29)
	for _, alg := range sum.Algorithms {
		if got := alg.Sum(xs); got != want {
			t.Errorf("%v: %g, want %g", alg, got, want)
		}
	}
}

func TestRumpPolynomialTerms(t *testing.T) {
	xs, exact := RumpPolynomialTerms()
	if got := bigref.SumFloat64(xs); got != exact {
		t.Fatalf("constructed exact sum %g != declared %g", got, exact)
	}
	// Naive left-to-right happens to be exact here (powers of two), so
	// scramble: descending-magnitude order absorbs the survivor.
	if got := sum.SortedDescending(xs); got == exact {
		t.Log("descending coincidentally exact (acceptable)")
	}
	if got := sum.Composite(xs); got != exact {
		t.Errorf("CP lost the survivor: %g", got)
	}
	if got := sum.Expansion(xs); got != exact {
		t.Errorf("expansion lost the survivor: %g", got)
	}
}

func TestOscillatingDecayConditioning(t *testing.T) {
	xs := OscillatingDecay(4096, 30, 1)
	k := metrics.CondNumber(xs)
	if k < 1e6 {
		t.Errorf("carrier cancellation should make k large, got %g", k)
	}
	// Larger carrier, larger k.
	k2 := metrics.CondNumber(OscillatingDecay(4096, 45, 1))
	if k2 <= k {
		t.Errorf("k did not grow with carrier: %g vs %g", k2, k)
	}
	// Odd n keeps the carrier balanced.
	xsOdd := OscillatingDecay(4097, 30, 2)
	if kOdd := metrics.CondNumber(xsOdd); kOdd < 1e6 {
		t.Errorf("odd-n carrier unbalanced: k = %g", kOdd)
	}
}

func TestSeriesAlgorithmLadder(t *testing.T) {
	// On the oscillating-decay workload the compensated ladder shows.
	xs := OscillatingDecay(1<<16, 40, 3)
	exact := bigref.SumFloat64(xs)
	eST := math.Abs(sum.Standard(xs) - exact)
	eCP := math.Abs(sum.Composite(xs) - exact)
	ePR := math.Abs(sum.Prerounded(xs) - exact)
	if eCP > eST || ePR > eST {
		t.Errorf("ladder violated: ST=%g CP=%g PR=%g", eST, eCP, ePR)
	}
}
