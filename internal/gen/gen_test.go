package gen

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/superacc"
)

func TestSameSignSpec(t *testing.T) {
	for _, dr := range []int{0, 8, 16, 32, 64} {
		xs := Spec{N: 1000, Cond: 1, DynRange: dr, Seed: 1}.Generate()
		if len(xs) != 1000 {
			t.Fatalf("dr=%d: len %d", dr, len(xs))
		}
		if k := metrics.CondNumber(xs); k != 1 {
			t.Errorf("dr=%d: k = %g, want exactly 1", dr, k)
		}
		if got := metrics.DynRange(xs); got != dr {
			t.Errorf("dr=%d: measured dr = %d", dr, got)
		}
	}
}

func TestSumZeroSpec(t *testing.T) {
	for _, dr := range []int{0, 8, 32} {
		for _, n := range []int{4, 100, 101, 1000} {
			xs := Spec{N: n, Cond: math.Inf(1), DynRange: dr, Seed: 2}.Generate()
			if len(xs) != n {
				t.Fatalf("n=%d dr=%d: len %d", n, dr, len(xs))
			}
			var a superacc.Acc
			a.AddSlice(xs)
			if !a.IsZero() {
				t.Errorf("n=%d dr=%d: exact sum %g != 0", n, dr, a.Float64())
			}
			if got := metrics.DynRange(xs); got != dr {
				t.Errorf("n=%d dr=%d: measured dr = %d", n, dr, got)
			}
		}
	}
}

func TestIllConditionedTargets(t *testing.T) {
	// Every decade of k from 10 to 1e8 must be achieved within 2x in
	// log-space across dynamic ranges.
	for _, dr := range []int{0, 8, 32} {
		for _, k := range []float64{10, 100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8} {
			xs := Spec{N: 4096, Cond: k, DynRange: dr, Seed: 3}.Generate()
			if len(xs) != 4096 {
				t.Fatalf("k=%g dr=%d: len %d", k, dr, len(xs))
			}
			got := metrics.CondNumber(xs)
			ratio := got / k
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("k=%g dr=%d: achieved k = %g (ratio %.2f)", k, dr, got, ratio)
			}
			if gotDR := metrics.DynRange(xs); gotDR != dr {
				t.Errorf("k=%g dr=%d: measured dr = %d", k, dr, gotDR)
			}
		}
	}
}

func TestIllConditionedSmallK(t *testing.T) {
	for _, k := range []float64{2, 3, 5} {
		xs := Spec{N: 2000, Cond: k, DynRange: 8, Seed: 4}.Generate()
		got := metrics.CondNumber(xs)
		if got/k < 0.4 || got/k > 2.5 {
			t.Errorf("k=%g: achieved %g", k, got)
		}
	}
}

func TestSpecDeterministic(t *testing.T) {
	s := Spec{N: 500, Cond: 1e4, DynRange: 16, Seed: 42}
	a := s.Generate()
	b := s.Generate()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same spec generated different sets")
		}
	}
	s2 := s
	s2.Seed = 43
	c := s2.Generate()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds generated identical sets")
	}
}

func TestSpecBaseExp(t *testing.T) {
	xs := Spec{N: 100, Cond: 1, DynRange: 4, BaseExp: -40, Seed: 5}.Generate()
	for _, x := range xs {
		if x == 0 {
			continue
		}
		e := math.Ilogb(math.Abs(x))
		if e < -40 || e > -36 {
			t.Errorf("exponent %d outside [-40,-36]", e)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{N: 1, Cond: 1},
		{N: 10, Cond: 0.5},
		{N: 10, Cond: 1, DynRange: -1},
		{N: 10, Cond: 1, DynRange: 10, BaseExp: 995},
		{N: 10, Cond: math.NaN()},
	}
	for i, s := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("spec %d should panic", i)
				}
			}()
			s.Generate()
		}()
	}
}

func TestUniform(t *testing.T) {
	xs := Uniform(10000, -1000, 1000, 7)
	if len(xs) != 10000 {
		t.Fatal("length")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	var mean float64
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
		mean += x
	}
	mean /= float64(len(xs))
	if lo < -1000 || hi > 1000 {
		t.Errorf("range violated: [%g, %g]", lo, hi)
	}
	if hi < 500 || lo > -500 {
		t.Error("suspiciously narrow sample")
	}
	if math.Abs(mean) > 30 {
		t.Errorf("mean %g too far from 0", mean)
	}
}

func TestSumZeroSeries(t *testing.T) {
	xs := SumZeroSeries(8192, 32, 9)
	var a superacc.Acc
	a.AddSlice(xs)
	if !a.IsZero() {
		t.Error("series does not sum to zero exactly")
	}
	if dr := metrics.DynRange(xs); dr != 32 {
		t.Errorf("dr = %d, want 32", dr)
	}
	if k := metrics.CondNumber(xs); !math.IsInf(k, 1) {
		t.Errorf("k = %g, want +Inf", k)
	}
}

func TestTableIProperties(t *testing.T) {
	rows := TableI()
	if len(rows) != 11 {
		t.Fatalf("Table I has %d rows, want 11", len(rows))
	}
	for i, row := range rows {
		if got := metrics.DecimalDynRange(row.Values); got != row.DR {
			t.Errorf("row %d: decimal dr = %d, table says %d", i, got, row.DR)
		}
		k := metrics.CondNumber(row.Values)
		switch {
		case math.IsInf(row.K, 1):
			if !math.IsInf(k, 1) {
				t.Errorf("row %d: k = %g, table says ∞", i, k)
			}
		case row.K == 1:
			if k != 1 {
				t.Errorf("row %d: k = %g, table says 1", i, k)
			}
		default:
			// The printed values are illustrative; require the right
			// order of magnitude.
			if k < row.K/3 || k > row.K*3 {
				t.Errorf("row %d: k = %g, table says %g", i, k, row.K)
			}
		}
	}
}

func TestNBodyForces(t *testing.T) {
	xs := NBodyForces(10000, 11)
	if len(xs) != 10000 {
		t.Fatal("length")
	}
	k := metrics.CondNumber(xs)
	dr := metrics.DynRange(xs)
	// The motivating workload: both k and dr should be large.
	if k < 10 {
		t.Errorf("N-body k = %g; expected ill-conditioned data", k)
	}
	if dr < 20 {
		t.Errorf("N-body dr = %d; expected wide dynamic range", dr)
	}
}
