// Package gen constructs the operand sets the paper's experiments reduce:
// sets with prescribed size n, sum condition number k, and dynamic range
// dr; exactly-cancelling ("sum-to-zero") series; uniform ranges; the
// literal Table I sample sets; and an N-body-style force workload for
// the motivating example.
//
// Dynamic range here is measured in binary exponent bits (the exponent
// of the float64 representation); the paper's Table I quotes decimal
// exponents — one decimal digit is ~3.32 bits. Condition-number targets
// are hit approximately (within a small factor, verified by tests); the
// grid experiments always report the measured k of each generated cell.
package gen

import (
	"fmt"
	"math"

	"repro/internal/fpu"
	"repro/internal/superacc"
)

// Spec describes an operand set to generate.
type Spec struct {
	// N is the number of values (>= 2).
	N int
	// Cond is the target sum condition number: 1 for same-sign data,
	// +Inf for an exactly-zero sum, anything in between for
	// ill-conditioned data.
	Cond float64
	// DynRange is the binary dynamic range: the exact difference between
	// the largest and smallest binary exponent in the set.
	DynRange int
	// BaseExp is the binary exponent of the smallest-magnitude values
	// (default 0 — values near 1).
	BaseExp int
	// Seed drives generation; equal specs generate equal sets.
	Seed uint64
}

// String summarizes the spec for reports.
func (s Spec) String() string {
	return fmt.Sprintf("n=%d k=%g dr=%d", s.N, s.Cond, s.DynRange)
}

// Generate builds the operand set. It panics on invalid specs (N < 2,
// Cond < 1, negative DynRange, or exponents outside the float64 range).
func (s Spec) Generate() []float64 {
	if s.N < 2 {
		panic("gen: Spec.N must be >= 2")
	}
	if s.Cond < 1 || math.IsNaN(s.Cond) {
		panic("gen: Spec.Cond must be >= 1 (or +Inf)")
	}
	if s.DynRange < 0 {
		panic("gen: Spec.DynRange must be >= 0")
	}
	if s.BaseExp < -1000 || s.BaseExp+s.DynRange > 1000 {
		panic("gen: exponent range outside float64")
	}
	r := fpu.NewRNG(s.Seed ^ 0xabcdef12345)
	switch {
	case math.IsInf(s.Cond, 1):
		return s.sumZero(r)
	case s.Cond == 1:
		return s.sameSign(r)
	default:
		return s.illConditioned(r)
	}
}

// mantissa returns a random value in [1, 2).
func mantissa(r *fpu.RNG) float64 { return 1 + r.Float64() }

// value draws a positive value with a random exponent in the spec range.
func (s Spec) value(r *fpu.RNG) float64 {
	return math.Ldexp(mantissa(r), s.BaseExp+r.Intn(s.DynRange+1))
}

// forceEndpoints overwrites the first two slots with values pinned to
// the extreme exponents so the generated dynamic range is exact. The
// callers re-establish their sum invariants afterwards where needed.
func (s Spec) forceEndpoints(xs []float64, r *fpu.RNG) {
	xs[0] = math.Ldexp(mantissa(r), s.BaseExp)
	xs[1] = math.Ldexp(mantissa(r), s.BaseExp+s.DynRange)
}

// sameSign generates k = 1 data: all positive values across the range.
func (s Spec) sameSign(r *fpu.RNG) []float64 {
	xs := make([]float64, s.N)
	for i := range xs {
		xs[i] = s.value(r)
	}
	s.forceEndpoints(xs, r)
	r.Shuffle(xs)
	return xs
}

// sumZero generates k = +Inf data: exact ± pairs spanning the range.
// N odd gets one extra zero value.
func (s Spec) sumZero(r *fpu.RNG) []float64 {
	xs := make([]float64, 0, s.N)
	// Pin the endpoints with one pair at each extreme exponent.
	lo := math.Ldexp(mantissa(r), s.BaseExp)
	hi := math.Ldexp(mantissa(r), s.BaseExp+s.DynRange)
	xs = append(xs, lo, -lo)
	if s.N >= 4 {
		xs = append(xs, hi, -hi)
	}
	for len(xs)+2 <= s.N {
		v := s.value(r)
		xs = append(xs, v, -v)
	}
	if len(xs) < s.N {
		xs = append(xs, 0)
	}
	r.Shuffle(xs)
	return xs
}

// illConditioned generates data with a finite condition-number target
// k > 1, deterministically (no sampling noise in the achieved k):
//
//   - moderate k (<= N/4): the set is p positive "singles" plus exact
//     ± pairs. The pairs cancel exactly, so the exact sum is the
//     singles' mass and k ≈ sumAbs/singlesMass = N/p.
//   - large k (> N/4): the set is exact ± pairs plus q near-cancelling
//     pairs (a, -(a-δ)) whose gaps δ are exact multiples of ulp(a); the
//     exact sum is q·δ, which can be made as small as one ulp at the top
//     of the range, reaching k up to ~2^52·N.
//
// Both constructions keep every element's exponent inside
// [BaseExp, BaseExp+DynRange] and pin both endpoints, so the generated
// dynamic range is exact.
func (s Spec) illConditioned(r *fpu.RNG) []float64 {
	if s.Cond <= float64(s.N)/4 && s.N >= 8 {
		return s.illSingles(r)
	}
	return s.illNearPairs(r)
}

// expectedAbs is the mean |value| drawn by Spec.value: mantissa mean 1.5
// times the average of 2^e over the exponent range.
func (s Spec) expectedAbs() float64 {
	span := math.Ldexp(1, s.BaseExp+s.DynRange+1) - math.Ldexp(1, s.BaseExp)
	return 1.5 * span / float64(s.DynRange+1)
}

// illSingles implements the moderate-k construction. The pair mass is
// built and measured first; the p singles then all take the exact value
// v = sPairs/(p*(k-1)), which makes the achieved condition number
// (sPairs + p*v)/(p*v) = k up to one float64 rounding.
func (s Spec) illSingles(r *fpu.RNG) []float64 {
	k := s.Cond
	vT := math.Ldexp(1.5, s.BaseExp+s.DynRange/2) // mid-range target for v
	eBar := s.expectedAbs()
	p := int(math.Round(float64(s.N) * eBar / ((k-1)*vT + eBar)))
	if p < 1 {
		p = 1
	}
	if p > s.N-6 {
		p = s.N - 6
	}
	if (s.N-p)%2 == 1 {
		p++ // keep the pair block even
	}
	xs := make([]float64, 0, s.N)
	// Pin both endpoints with exact pairs.
	lo := math.Ldexp(mantissa(r), s.BaseExp)
	hi := math.Ldexp(mantissa(r), s.BaseExp+s.DynRange)
	xs = append(xs, lo, -lo, hi, -hi)
	for len(xs)+p+2 <= s.N {
		v := s.value(r)
		xs = append(xs, v, -v)
	}
	var abs superacc.Acc
	for _, x := range xs {
		abs.Add(math.Abs(x))
	}
	sPairs := abs.Float64()
	v := sPairs / (float64(p) * (k - 1))
	// Keep v's exponent inside the range; clamping trades k accuracy
	// for an exact dynamic range.
	if minV := math.Ldexp(1, s.BaseExp); v < minV {
		v = minV
	}
	if maxV := math.Ldexp(1.999, s.BaseExp+s.DynRange); v > maxV {
		v = maxV
	}
	for i := 0; i < p; i++ {
		xs = append(xs, v)
	}
	r.Shuffle(xs)
	return xs
}

// illNearPairs implements the large-k construction.
func (s Spec) illNearPairs(r *fpu.RNG) []float64 {
	topExp := s.BaseExp + s.DynRange
	a := math.Ldexp(1.5, topExp)
	ulpA := math.Ldexp(1, topExp-52)
	// Build the cancelling pair mass first so its absolute sum is known
	// exactly when the gaps are sized.
	pairs := make([]float64, 0, s.N)
	lo := math.Ldexp(mantissa(r), s.BaseExp)
	hi := math.Ldexp(mantissa(r), topExp)
	pairs = append(pairs, lo, -lo)
	if s.N >= 8 {
		pairs = append(pairs, hi, -hi)
	}
	// Reserve room: q near-pairs (q decided below, at most ~20) plus an
	// optional padding zero for odd N.
	reserve := 44
	if reserve > s.N-len(pairs) {
		reserve = s.N - len(pairs)
	}
	for len(pairs)+2 <= s.N-reserve {
		v := s.value(r)
		pairs = append(pairs, v, -v)
	}
	var abs superacc.Acc
	for _, x := range pairs {
		abs.Add(math.Abs(x))
	}
	sPairs := abs.Float64()
	// Size the gap: solve delta = (sPairs + 2*q*a)/k, iterating once to
	// pick q so each per-pair gap fits well inside the top bin.
	maxGap := math.Ldexp(0.45, topExp)
	delta := (sPairs + 2*a) / s.Cond
	q := int(math.Ceil(delta / maxGap))
	if q < 1 {
		q = 1
	}
	if q > (s.N-len(pairs))/2 {
		q = (s.N - len(pairs)) / 2
	}
	delta = (sPairs + 2*float64(q)*a) / s.Cond
	gap := delta / float64(q)
	// Round the gap to an exact multiple of ulp(a) so each near-pair
	// cancels to exactly `gap`.
	gap = math.Round(gap/ulpA) * ulpA
	if gap < ulpA {
		gap = ulpA
	}
	if gap > maxGap {
		gap = maxGap // best effort; achieved k lands below target
	}
	xs := append([]float64(nil), pairs...)
	for i := 0; i < q; i++ {
		xs = append(xs, a, -(a - gap))
	}
	// Fill any remaining slots with exact pairs, then pad odd N with 0.
	for len(xs)+2 <= s.N {
		v := s.value(r)
		xs = append(xs, v, -v)
	}
	if len(xs) < s.N {
		xs = append(xs, 0)
	}
	r.Shuffle(xs)
	return xs
}

// Uniform returns n values uniformly distributed in (lo, hi) — the
// workload of the paper's Figs 2 and 3.
func Uniform(n int, lo, hi float64, seed uint64) []float64 {
	r := fpu.NewRNG(seed ^ 0x5eed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + r.Float64()*(hi-lo)
	}
	return xs
}

// SumZeroSeries returns an n-value series whose exact sum is zero with
// binary dynamic range dr — the construction behind Figs 4–7 ("a series
// that is known to sum to zero under exact arithmetic", dr = 32 sets).
func SumZeroSeries(n, dr int, seed uint64) []float64 {
	return Spec{N: n, Cond: math.Inf(1), DynRange: dr, Seed: seed}.Generate()
}

// TableIRow is one sample set from the paper's Table I with its stated
// decimal dynamic range and condition number.
type TableIRow struct {
	Values []float64
	DR     int     // decimal dynamic range as printed in the table
	K      float64 // condition number as printed (math.Inf(1) for ∞)
}

// TableI returns the eleven literal sample sets of the paper's Table I.
func TableI() []TableIRow {
	inf := math.Inf(1)
	return []TableIRow{
		{[]float64{1.23e32, 1.35e32, 2.37e32, 3.54e32}, 0, 1},
		{[]float64{1.23e-32, 1.35e-32, 2.37e-32, 3.54e-32}, 0, 1},
		{[]float64{-1.23e16, -1.35e16, -2.37e16, -3.54e16}, 0, 1},
		{[]float64{2.37e16, 3.41e8, 4.32e8, 8.14e16}, 8, 1},
		{[]float64{3.14e32, 1.59e16, 2.65e18, 3.58e24}, 16, 1},
		{[]float64{2.505e2, 2.5e2, -2.495e2, -2.5e2}, 0, 1000},
		{[]float64{5.00e2, 4.99999e-1, 1.0e-6, -4.995e2}, 8, 1000},
		{[]float64{5.00e2, 4.9999e-1, 1.0e-14, -4.995e2}, 16, 1000},
		{[]float64{3.14e8, 1.59e8, -3.14e8, -1.59e8}, 0, inf},
		{[]float64{3.14e4, 1.59e-4, -3.14e4, -1.59e-4}, 8, inf},
		{[]float64{3.14e8, 1.59e-8, -3.14e8, -1.59e-8}, 16, inf},
	}
}

// NBodyForces emulates the paper's motivating ill-conditioned workload:
// the pairwise force components on a particle in an N-body system whose
// net force is near zero (bodies distributed nearly isotropically).
// Returns n force contributions whose sum is small relative to their
// magnitudes — both k and dr are "frequently very large" (Section V-A).
func NBodyForces(n int, seed uint64) []float64 {
	r := fpu.NewRNG(seed ^ 0xb0d1)
	xs := make([]float64, n)
	for i := range xs {
		// 1/r^2 magnitudes with distances over ~5 decades, signed by
		// direction: heavy-tailed, mixed-sign, nearly cancelling.
		dist := math.Ldexp(mantissa(r), r.Intn(17)) // r in [1, 2^17)
		f := 1.0 / (dist * dist)
		if r.Bool() {
			f = -f
		}
		xs[i] = f
	}
	return xs
}
