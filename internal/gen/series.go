package gen

import (
	"math"

	"repro/internal/fpu"
)

// Classic numerical-analysis series with known closed forms — canonical
// accuracy probes for summation algorithms. Each returns the terms plus
// the limit the partial sum approaches, so tests can measure algorithm
// error against truth without a high-precision pass (the truncation
// error of the series is accounted for by comparing against the exact
// partial sum where needed).

// AlternatingHarmonic returns the first n terms of 1 - 1/2 + 1/3 - ...
// (limit ln 2). Mixed signs with slowly decaying magnitudes: a classic
// mild-cancellation workload.
func AlternatingHarmonic(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		t := 1 / float64(i+1)
		if i%2 == 1 {
			t = -t
		}
		xs[i] = t
	}
	return xs
}

// Basel returns the first n terms of sum 1/i^2 (limit pi^2/6). Same
// sign, rapidly decaying: ascending-order summation is near-exact,
// descending order absorbs the tail — the textbook ordering example.
func Basel(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		f := float64(i + 1)
		xs[i] = 1 / (f * f)
	}
	return xs
}

// Geometric returns n terms of ratio r starting at 1 (limit 1/(1-r)
// for |r| < 1). With r an exact power of two the partial sums are
// exactly representable, making it an exactness probe.
func Geometric(n int, r float64) []float64 {
	xs := make([]float64, n)
	t := 1.0
	for i := range xs {
		xs[i] = t
		t *= r
	}
	return xs
}

// RumpPolynomialTerms returns the additive terms of an evaluation in
// the spirit of Rump's famous polynomial: enormous products that cancel
// almost completely, leaving a small remainder that naive arithmetic
// gets catastrophically wrong. Constructed so the exact sum is the
// returned remainder.
func RumpPolynomialTerms() (xs []float64, exact float64) {
	// Pairs of huge cancelling values at descending scales plus a small
	// survivor; all values are exact powers-of-two multiples so the
	// true sum is exactly `exact`.
	exact = 0x1.5p-20
	xs = []float64{
		0x1p90, 0x1.8p70, -0x1p90, -0x1.8p70,
		0x1.4p55, -0x1.4p55,
		0x1p33, -0x1p33,
		exact,
	}
	return xs, exact
}

// OscillatingDecay returns n terms of sign-alternating exponential
// decay scaled by a large carrier that cancels: sum_{i} c*(-1)^i +
// 2^-i/8-ish noise. Its condition number grows with the carrier scale.
func OscillatingDecay(n int, carrierExp int, seed uint64) []float64 {
	r := fpu.NewRNG(seed ^ 0x05C1)
	xs := make([]float64, n)
	carrier := math.Ldexp(1, carrierExp)
	for i := range xs {
		c := carrier
		if i%2 == 1 {
			c = -carrier
		}
		xs[i] = c + math.Ldexp(r.Float64(), -8-i%40)
	}
	if n%2 == 1 {
		xs[n-1] = math.Ldexp(r.Float64(), -8) // keep the carrier balanced
	}
	return xs
}
