package mpirt

import (
	"fmt"

	"repro/internal/reduce"
)

// Vector collectives: the realistic MPI_Reduce semantics where each
// rank contributes a same-length vector and the result is the
// elementwise reduction. Every element is combined with its own op
// state, so the per-element guarantees (e.g. BN's bitwise
// reproducibility) carry over to every schedule.
//
// Large vectors are segmented (segSize elements per message) so that
// segments pipeline: on the tree topologies a parent forwards segment
// s to its own parent as soon as it has merged it, while segment s+1
// is still in flight below — with bounded inbox credit the pipeline
// self-throttles instead of buffering the whole vector per link. The
// double binary tree alternates segments between its two complementary
// trees, which is what halves its per-link load. Rabenseifner and the
// reduce-scatter+allgather allreduce subdivide the vector by recursive
// halving instead; their message sizes shrink geometrically per round,
// so segSize does not apply to them.

// VectorReduce reduces each rank's local vector elementwise to root
// over the selected topology. segSize bounds the number of elements
// per pipelined message (0 = whole vector in one message). Returns the
// finalized vector at root and ok = true there; nil, false elsewhere.
func (r *Rank) VectorReduce(root int, local []float64, op reduce.Op,
	topo Topology, mode Mode, segSize int) ([]float64, bool) {
	states := make([]reduce.State, len(local))
	for i, x := range local {
		states[i] = op.Leaf(x)
	}
	out, ok := r.reduceStates(root, states, op, topo, mode, segSize)
	if !ok {
		return nil, false
	}
	return finalizeStates(op, out), true
}

// reduceStates reduces a vector of per-element partial states to root,
// dispatching to the schedule the topology selects. The states slice
// is consumed. Returns the reduced states and true at root only.
func (r *Rank) reduceStates(root int, states []reduce.State, op reduce.Op,
	topo Topology, mode Mode, segSize int) ([]reduce.State, bool) {
	switch topo {
	case Rabenseifner:
		return r.rabenseifner(root, states, op, false)
	case RSAllgather:
		out, ok := r.rabenseifner(root, states, op, true)
		if !ok || r.ID != root {
			return nil, false
		}
		return out, true
	case DoubleTree:
		return r.doubleTreeReduceStates(root, states, op, mode, segSize)
	default:
		return r.treeReduceStates(root, states, op, topo, mode, segSize)
	}
}

// treeReduceStates is the segmented, pipelined reduction over the
// single-tree topologies (binomial, binary, chain, flat).
func (r *Rank) treeReduceStates(root int, states []reduce.State, op reduce.Op,
	topo Topology, mode Mode, segSize int) ([]reduce.State, bool) {
	n := len(states)
	numSegs, segSize := segmentPlan(n, segSize)
	// All ranks must agree on the segment count; it derives from the
	// (assumed uniform) local length. Guard against mismatched lengths
	// by exchanging the count via the tag sequence itself: each segment
	// reduction is an independent collective round, so a mismatch
	// deadlocks loudly in tests rather than corrupting silently.
	parent, children := r.family(topo, root)
	for s := 0; s < numSegs; s++ {
		lo := s * segSize
		hi := lo + segSize
		if hi > n {
			hi = n
		}
		tag := r.nextCollTag()
		r.mergeSegFromChildren(states[lo:hi], op, children, mode, tag)
		if parent >= 0 {
			seg := make([]reduce.State, hi-lo)
			copy(seg, states[lo:hi])
			r.send(parent, tag, seg)
		}
	}
	if r.ID != root {
		return nil, false
	}
	return states, true
}

func finalizeStates(op reduce.Op, states []reduce.State) []float64 {
	out := make([]float64, len(states))
	for i, st := range states {
		out[i] = op.Finalize(st)
	}
	return out
}

func mergeSeg(op reduce.Op, dst, src []reduce.State) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpirt: vector segment length mismatch: %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] = op.Merge(dst[i], src[i])
	}
}

// VectorAllReduce reduces elementwise and returns the finalized vector
// on every rank. RSAllgather runs natively (its allgather phase already
// leaves bitwise-identical states everywhere, so no broadcast is
// needed); every other topology reduces to rank 0 and broadcasts.
func (r *Rank) VectorAllReduce(local []float64, op reduce.Op,
	topo Topology, mode Mode, segSize int) []float64 {
	if topo == RSAllgather {
		states := make([]reduce.State, len(local))
		for i, x := range local {
			states[i] = op.Leaf(x)
		}
		out, _ := r.rabenseifner(0, states, op, true)
		return finalizeStates(op, out)
	}
	v, _ := r.VectorReduce(0, local, op, topo, mode, segSize)
	return r.Broadcast(0, v).([]float64)
}
