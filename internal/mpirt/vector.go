package mpirt

import (
	"fmt"

	"repro/internal/reduce"
)

// Vector collectives: the realistic MPI_Reduce semantics where each
// rank contributes a same-length vector and the result is the
// elementwise reduction. Large vectors are segmented so that segments
// pipeline up the tree (a parent forwards segment s as soon as it has
// merged it, while segment s+1 is still in flight below), which is how
// production MPI implementations keep deep trees busy.

// VectorReduce reduces each rank's local vector elementwise to root.
// Every element is combined with its own op state, so the per-element
// guarantees (e.g. PR's bitwise reproducibility) carry over. segSize
// bounds the number of elements per pipelined message (0 = whole
// vector in one message). Returns the finalized vector at root and ok
// = true there; nil, false elsewhere.
func (r *Rank) VectorReduce(root int, local []float64, op reduce.Op,
	topo Topology, mode Mode, segSize int) ([]float64, bool) {
	n := len(local)
	if segSize <= 0 || segSize > n {
		segSize = n
	}
	if segSize == 0 {
		segSize = 1 // empty vector: still run the collective protocol
	}
	numSegs := 0
	if n > 0 {
		numSegs = (n + segSize - 1) / segSize
	}
	// All ranks must agree on the segment count; it derives from the
	// (assumed uniform) local length. Guard against mismatched lengths
	// by exchanging the count via the tag sequence itself: each segment
	// reduction is an independent collective round, so a mismatch
	// deadlocks loudly in tests rather than corrupting silently.
	parent, children := r.family(topo, root)
	states := make([]reduce.State, n)
	for i, x := range local {
		states[i] = op.Leaf(x)
	}
	for s := 0; s < numSegs; s++ {
		lo := s * segSize
		hi := lo + segSize
		if hi > n {
			hi = n
		}
		tag := r.nextCollTag()
		switch mode {
		case FixedOrder:
			got := make([]struct {
				src int
				seg []reduce.State
			}, 0, len(children))
			for range children {
				src, p := r.RecvAny(tag)
				got = append(got, struct {
					src int
					seg []reduce.State
				}{src, p.([]reduce.State)})
			}
			for i := 1; i < len(got); i++ {
				for j := i; j > 0 && got[j].src < got[j-1].src; j-- {
					got[j], got[j-1] = got[j-1], got[j]
				}
			}
			for _, g := range got {
				mergeSeg(op, states[lo:hi], g.seg)
			}
		case ArrivalOrder:
			for range children {
				_, p := r.RecvAny(tag)
				mergeSeg(op, states[lo:hi], p.([]reduce.State))
			}
		default:
			panic("mpirt: invalid mode")
		}
		if parent >= 0 {
			seg := make([]reduce.State, hi-lo)
			copy(seg, states[lo:hi])
			r.send(parent, tag, seg)
		}
	}
	if parent >= 0 {
		return nil, false
	}
	out := make([]float64, n)
	for i, st := range states {
		out[i] = op.Finalize(st)
	}
	return out, true
}

func mergeSeg(op reduce.Op, dst, src []reduce.State) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mpirt: vector segment length mismatch: %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] = op.Merge(dst[i], src[i])
	}
}

// VectorAllReduce reduces elementwise to rank 0 and broadcasts the
// finalized vector to every rank.
func (r *Rank) VectorAllReduce(local []float64, op reduce.Op,
	topo Topology, mode Mode, segSize int) []float64 {
	v, _ := r.VectorReduce(0, local, op, topo, mode, segSize)
	return r.Broadcast(0, v).([]float64)
}
