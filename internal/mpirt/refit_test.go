package mpirt

import (
	"math"
	"testing"
)

func TestParseBenchSample(t *testing.T) {
	cases := []struct {
		name string
		want TopoSample
		ok   bool
	}{
		{"BenchmarkCollective/topo=binomial/ranks=256", TopoSample{Topo: Binomial, Ranks: 256, MsgBytes: 8, Ns: 5}, true},
		{"BenchmarkCollective/topo=rabenseifner/ranks=1024-8", TopoSample{Topo: Rabenseifner, Ranks: 1024, MsgBytes: 8, Ns: 5}, true},
		{"BenchmarkCollectiveVector/topo=chain/ranks=64/elems=4096", TopoSample{Topo: Chain, Ranks: 64, MsgBytes: 32768, Ns: 5}, true},
		{"BenchmarkCollectiveVector/topo=dtree/ranks=64/elems=4096-16", TopoSample{Topo: DoubleTree, Ranks: 64, MsgBytes: 32768, Ns: 5}, true},
		{"BenchmarkSweep/fused/n=100", TopoSample{}, false},
		{"BenchmarkCollective/topo=warp/ranks=64", TopoSample{}, false},
		{"BenchmarkCollective/topo=binomial", TopoSample{}, false},
		{"BenchmarkCollective/topo=binomial/ranks=zero", TopoSample{}, false},
	}
	for _, tc := range cases {
		got, ok := ParseBenchSample(tc.name, 5)
		if ok != tc.ok {
			t.Errorf("%s: ok=%v, want %v", tc.name, ok, tc.ok)
			continue
		}
		if ok && got != tc.want {
			t.Errorf("%s: parsed %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestRefitOverwritesMeasuredCells pins the refit contract: a bucket
// with two or more measured topologies adopts the measured-fastest
// usable one, buckets with fewer keep the model answer, and the
// original table is never mutated.
func TestRefitOverwritesMeasuredCells(t *testing.T) {
	base := NewSelectionTable(DefaultMachine())
	orig := base.Pick(8, 256)

	// Make the measurement disagree with the model: whatever the model
	// picked for (8B, 256 ranks), claim flat measured 10x faster.
	samples := []TopoSample{
		{Topo: orig, Ranks: 256, MsgBytes: 8, Ns: 1000},
		{Topo: Flat, Ranks: 256, MsgBytes: 8, Ns: 100},
		// A lone sample in another bucket: no comparison, no refit.
		{Topo: Chain, Ranks: 16, MsgBytes: 1 << 20, Ns: 1},
	}
	refit, n := base.Refit(samples)
	if n != 1 {
		t.Fatalf("refit %d cells, want 1", n)
	}
	if got := refit.Pick(8, 256); got != Flat {
		t.Errorf("refit table picks %v for measured bucket, want flat", got)
	}
	if got := base.Pick(8, 256); got != orig {
		t.Errorf("original table mutated: picks %v, want %v", got, orig)
	}
	if got, want := refit.Pick(1<<20, 16), base.Pick(1<<20, 16); got != want {
		t.Errorf("single-sample bucket changed: %v, want model answer %v", got, want)
	}
}

// TestRefitMinOverDuplicates: repeated measurements of one topology
// collapse to their minimum before comparison.
func TestRefitMinOverDuplicates(t *testing.T) {
	base := NewSelectionTable(DefaultMachine())
	samples := []TopoSample{
		{Topo: Binomial, Ranks: 64, MsgBytes: 64, Ns: 500},
		{Topo: Binomial, Ranks: 64, MsgBytes: 64, Ns: 90}, // best binomial run
		{Topo: Flat, Ranks: 64, MsgBytes: 64, Ns: 100},
	}
	refit, n := base.Refit(samples)
	if n != 1 {
		t.Fatalf("refit %d cells, want 1", n)
	}
	if got := refit.Pick(64, 64); got != Binomial {
		t.Errorf("refit picks %v, want binomial (min 90ns beats flat 100ns)", got)
	}
}

// TestRefitDegenerateSamples: non-finite and non-positive timings are
// dropped, and a measured winner failing can_use at the bucket
// representative yields to the next usable topology.
func TestRefitDegenerateSamples(t *testing.T) {
	base := NewSelectionTable(DefaultMachine())

	bad := []TopoSample{
		{Topo: Flat, Ranks: 256, MsgBytes: 8, Ns: math.NaN()},
		{Topo: Binomial, Ranks: 256, MsgBytes: 8, Ns: math.Inf(1)},
		{Topo: Chain, Ranks: 256, MsgBytes: 8, Ns: -5},
		{Topo: DoubleTree, Ranks: 256, MsgBytes: 8, Ns: 0},
	}
	if _, n := base.Refit(bad); n != 0 {
		t.Errorf("unusable samples refit %d cells, want 0", n)
	}
	if _, n := base.Refit(nil); n != 0 {
		t.Errorf("nil samples refit %d cells, want 0", n)
	}

	// Rabenseifner cannot run 1 elem over 256 ranks (elems < pof2):
	// even measured fastest, the refit must fall through to the next
	// measured usable topology.
	guard := []TopoSample{
		{Topo: Rabenseifner, Ranks: 256, MsgBytes: 8, Ns: 1},
		{Topo: Binomial, Ranks: 256, MsgBytes: 8, Ns: 50},
		{Topo: Flat, Ranks: 256, MsgBytes: 8, Ns: 200},
	}
	refit, n := base.Refit(guard)
	if n != 1 {
		t.Fatalf("refit %d cells, want 1", n)
	}
	if got := refit.Pick(8, 256); got != Binomial {
		t.Errorf("refit picks %v, want binomial (rabenseifner fails can_use at 1 elem)", got)
	}
}
