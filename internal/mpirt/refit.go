package mpirt

import (
	"math"
	"strconv"
	"strings"
)

// Measured refit of the selection table: the α-β-γ model seeds every
// cell, but a machine that has actually run the collective benchmarks
// (BENCH_mpirt.json) can overwrite the cells its measurements cover
// with the measured-fastest topology — the oneCCL pattern of updating
// per-transport tables from observed runs while keeping the model
// answer wherever no measurement exists.

// TopoSample is one measured collective run: the wall-clock ns of
// reducing a MsgBytes-sized vector over Ranks ranks with Topo.
type TopoSample struct {
	Topo     Topology
	Ranks    int
	MsgBytes int
	Ns       float64
}

// ParseBenchSample maps a collective benchmark name and its ns/op onto
// a TopoSample. It understands the two BENCH_mpirt shapes:
//
//	BenchmarkCollective/topo=<name>/ranks=<d>            (scalar: 8 bytes)
//	BenchmarkCollectiveVector/topo=<name>/ranks=<d>/elems=<d>
//
// with or without the trailing -<procs> suffix Go appends. Unrelated
// benchmark names return ok = false.
func ParseBenchSample(name string, nsPerOp float64) (TopoSample, bool) {
	parts := strings.Split(name, "/")
	if len(parts) < 3 {
		return TopoSample{}, false
	}
	base := parts[0]
	if base != "BenchmarkCollective" && base != "BenchmarkCollectiveVector" {
		return TopoSample{}, false
	}
	// Strip the -<procs> suffix from the final component.
	last := parts[len(parts)-1]
	if i := strings.LastIndexByte(last, '-'); i >= 0 {
		if _, err := strconv.Atoi(last[i+1:]); err == nil {
			parts[len(parts)-1] = last[:i]
		}
	}
	var s TopoSample
	s.Ns = nsPerOp
	elems := 1
	for _, part := range parts[1:] {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return TopoSample{}, false
		}
		switch key {
		case "topo":
			topo, err := ParseTopology(val)
			if err != nil {
				return TopoSample{}, false
			}
			s.Topo = topo
		case "ranks":
			n, err := strconv.Atoi(val)
			if err != nil {
				return TopoSample{}, false
			}
			s.Ranks = n
		case "elems":
			n, err := strconv.Atoi(val)
			if err != nil {
				return TopoSample{}, false
			}
			elems = n
		default:
			return TopoSample{}, false
		}
	}
	if s.Ranks < 1 {
		return TopoSample{}, false
	}
	s.MsgBytes = 8 * elems
	return s, true
}

// Refit returns a copy of the table with every bucket that at least two
// distinct topologies were measured in overwritten by the
// measured-fastest usable topology (a single-topology bucket has no
// comparison to make, so the model answer stands), plus the number of
// cells overwritten. Samples with non-finite or non-positive timings
// are ignored, and a measured winner that fails the can_use guard at
// the bucket representative yields to the next-fastest usable one — a
// corrupt benchmark file can shrink the refit, never break the table.
func (t *SelectionTable) Refit(samples []TopoSample) (*SelectionTable, int) {
	out := *t
	// best[lm][lr][topo] = min measured ns for that bucket.
	type bucket = map[Topology]float64
	best := map[[2]int]bucket{}
	for _, s := range samples {
		if !(s.Ns > 0) || math.IsInf(s.Ns, 0) {
			continue
		}
		key := [2]int{logBucket(s.MsgBytes, selTableMaxLogMsg), logBucket(s.Ranks, selTableMaxLogRanks)}
		b := best[key]
		if b == nil {
			b = bucket{}
			best[key] = b
		}
		if v, ok := b[s.Topo]; !ok || s.Ns < v {
			b[s.Topo] = s.Ns
		}
	}
	refit := 0
	for key, b := range best {
		if len(b) < 2 {
			continue
		}
		lm, lr := key[0], key[1]
		elems := int(uint64(1) << lm / 8)
		if elems < 1 {
			elems = 1
		}
		ranks := 1 << lr
		winner, winNs := Topology(0), math.Inf(1)
		found := false
		// Iterate in the canonical order so ties break toward the
		// simpler schedule, like BestTopology.
		for _, topo := range Topologies {
			ns, measured := b[topo]
			if !measured || !topo.CanUse(ranks, elems) {
				continue
			}
			if ns < winNs {
				winner, winNs, found = topo, ns, true
			}
		}
		if found {
			out.cells[lm][lr] = winner
			refit++
		}
	}
	return &out, refit
}
