package mpirt

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync"
)

// Topology selection in the oneCCL style: a table keyed on
// (log2 message size, log2 rank count) whose cells hold the collective
// algorithm the cost model ranks fastest for that regime, evaluated
// once per machine (oneCCL's ccl_algorithm_selector inserts per-size
// algorithm ranges per transport; cuMat hardcodes measured piecewise
// boundaries in the same log-log space). Lookups are two bit-scans and
// an array index, so per-call selection is effectively free.
//
// The underlying model is the classic α-β-γ collective cost
// decomposition: completion ≈ span·(α + o) + β·(bytes per link) +
// γ·(merges per rank), with α the link latency, o the serialized
// receive overhead, β the per-element bandwidth cost, and γ the
// per-element merge cost — see Machine.CollectiveTime. Its crossovers
// reproduce the textbook selection rules: flat for a handful of ranks,
// binomial for small messages (latency-bound: log n span, full-vector
// links), pipelined chain / double tree for large messages at modest
// rank counts (bandwidth-bound: per-link load m or m/2), and
// rabenseifner for large messages at scale (per-link load
// 2m·(pof2-1)/pof2 with only 2 log n rounds).

// CollectiveTime models the completion time of reducing an
// elems-element vector over n ranks with the given topology and
// pipeline segment size, on this machine with the placement's
// inter-node link fraction folded into an effective latency. It is a
// closed-form α·span + β·bytes-per-link + γ·merges model, not a
// simulation — CompletionTime remains the exact critical-path
// evaluator for explicit trees.
func (m Machine) CollectiveTime(topo Topology, n, elems, segSize int, p Placement) float64 {
	if n <= 1 {
		return 0
	}
	alpha := m.effLatency(n, p)
	o := m.RecvCost
	beta := m.ElemCost
	gamma := m.MergeCost
	mf := float64(elems)
	// c(e): cost of receiving and absorbing an e-element message.
	c := func(e float64) float64 { return o + e*(beta+gamma) }
	L := float64(bits.Len(uint(n - 1))) // ceil(log2 n)
	numSegs, segSize := segmentPlan(elems, segSize)
	S := float64(numSegs)
	s := float64(segSize)
	pof2 := float64(pof2Below(n))
	foldin := 0.0
	if int(pof2) != n {
		foldin = alpha + c(mf)
	}
	switch topo {
	case Flat:
		return alpha + float64(n-1)*c(mf)
	case Binomial:
		return L * (alpha + c(mf))
	case BinaryTree:
		// Depth of the complete binary tree; two child messages
		// serialize at each interior node.
		d := float64(bits.Len(uint(n))) - 1
		if d < 1 {
			d = 1
		}
		return d * (alpha + 2*c(mf))
	case Chain:
		// Pipelined store-and-forward: n-1 hops plus S-1 drain steps.
		return (float64(n-1) + S - 1) * (alpha + c(s))
	case Rabenseifner:
		// Reduce-scatter: log n rounds moving m/2, m/4, ... elements
		// (Σ = m·(pof2-1)/pof2), then a binomial gather of the same
		// total volume (no merges on the way up).
		vol := mf * (pof2 - 1) / pof2
		return foldin + 2*L*(alpha+o) + vol*(2*beta+gamma)
	case RSAllgather:
		// Same reduce-scatter, then a recursive-doubling allgather and
		// the post-fold hop handing results back to folded-out ranks.
		vol := mf * (pof2 - 1) / pof2
		t := foldin + 2*L*(alpha+o) + vol*(2*beta+gamma)
		if int(pof2) != n {
			t += alpha + o + mf*beta
		}
		return t
	case DoubleTree:
		// Each tree pipelines half the segments at half the per-link
		// load; interior nodes serialize two child messages per
		// segment.
		d := float64(bits.Len(uint(n))) - 1
		if d < 1 {
			d = 1
		}
		segsPerTree := math.Ceil(S / 2)
		return d*(alpha+2*c(s)) + (segsPerTree-1)*2*c(s)
	}
	panic("mpirt: invalid topology " + topo.String())
}

// effLatency returns the expected per-hop latency: the placement's
// inter-node link fraction (or the uniform-random expectation when p
// is nil) blending IntraLat and InterLat.
func (m Machine) effLatency(n int, p Placement) float64 {
	f := m.interFraction(n, p)
	return m.IntraLat*(1-f) + m.InterLat*f
}

// interFraction estimates the probability that a link between two
// distinct ranks crosses a node boundary.
func (m Machine) interFraction(n int, p Placement) float64 {
	if n <= 1 {
		return 0
	}
	if p != nil {
		// Exact pair-counting over the placement.
		counts := map[int]int{}
		for _, node := range p {
			counts[node]++
		}
		same := 0
		for _, c := range counts {
			same += c * (c - 1)
		}
		return 1 - float64(same)/float64(n*(n-1))
	}
	if m.CoresPerNode <= 0 {
		return 1
	}
	nodes := (n + m.CoresPerNode - 1) / m.CoresPerNode
	if nodes <= 1 {
		return 0
	}
	f := 1 - float64(m.CoresPerNode-1)/float64(n-1)
	if f < 0 {
		return 0
	}
	return f
}

// CanUse reports whether the topology's schedule is usable for an
// elems-element reduction over n ranks — oneCCL's can_use guard:
// rabenseifner-style scatter needs at least one element per core-group
// rank (param.count < pof2 falls back to a tree there).
func (t Topology) CanUse(n, elems int) bool {
	switch t {
	case Rabenseifner, RSAllgather:
		return n == 1 || elems >= pof2Below(n)
	}
	return true
}

// selTableMaxLogMsg and selTableMaxLogRanks bound the selection table:
// message sizes up to 2^30 bytes and rank counts up to 2^20.
const (
	selTableMaxLogMsg   = 30
	selTableMaxLogRanks = 20
)

// SelectionTable maps (log2 message bytes, log2 ranks) buckets to the
// model-fastest topology on a machine.
type SelectionTable struct {
	m       Machine
	segSize int
	cells   [selTableMaxLogMsg + 1][selTableMaxLogRanks + 1]Topology
}

// DefaultSegSize is the pipeline segment size (in elements) the
// selection table assumes for the segmented schedules.
const DefaultSegSize = 256

// NewSelectionTable evaluates the machine's cost model at every bucket
// representative and records the fastest usable topology per cell.
func NewSelectionTable(m Machine) *SelectionTable {
	t := &SelectionTable{m: m, segSize: DefaultSegSize}
	for lm := 0; lm <= selTableMaxLogMsg; lm++ {
		// Bucket representative: the low edge, so exact powers of two —
		// the sizes callers overwhelmingly use — evaluate exactly.
		elems := int(uint64(1) << lm / 8)
		if elems < 1 {
			elems = 1
		}
		for lr := 0; lr <= selTableMaxLogRanks; lr++ {
			t.cells[lm][lr] = m.BestTopology(1<<lr, elems, t.segSize)
		}
	}
	return t
}

// BestTopology returns the usable topology with the lowest modeled
// completion time (ties break toward the lower-numbered, simpler
// schedule) — the exact-model answer the bucketed table approximates.
func (m Machine) BestTopology(ranks, elems, segSize int) Topology {
	best := Binomial
	bestT := math.Inf(1)
	for _, topo := range Topologies {
		if !topo.CanUse(ranks, elems) {
			continue
		}
		if ct := m.CollectiveTime(topo, ranks, elems, segSize, nil); ct < bestT {
			best, bestT = topo, ct
		}
	}
	return best
}

// Pick returns the table's topology for a message of msgBytes reduced
// over ranks ranks.
func (t *SelectionTable) Pick(msgBytes, ranks int) Topology {
	lm := logBucket(msgBytes, selTableMaxLogMsg)
	lr := logBucket(ranks, selTableMaxLogRanks)
	topo := t.cells[lm][lr]
	// Bucket representatives can straddle a can_use boundary: re-guard
	// at the exact point and fall back like oneCCL's fallback_table.
	if !topo.CanUse(ranks, msgBytes/8) {
		return Binomial
	}
	return topo
}

func logBucket(v, max int) int {
	if v < 1 {
		v = 1
	}
	l := bits.Len(uint(v)) - 1
	if l > max {
		l = max
	}
	return l
}

// String renders the table as a (message size × ranks) grid of
// topology names, for reports.
func (t *SelectionTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "msg\\ranks")
	cols := []int{0, 2, 4, 6, 8, 10, 12, 14, 16}
	for _, lr := range cols {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("2^%d", lr))
	}
	b.WriteByte('\n')
	for lm := 3; lm <= selTableMaxLogMsg; lm += 3 {
		fmt.Fprintf(&b, "%-8s", byteSize(uint64(1)<<lm))
		for _, lr := range cols {
			fmt.Fprintf(&b, " %8s", t.cells[lm][lr])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func byteSize(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%dGB", v>>30)
	case v >= 1<<20:
		return fmt.Sprintf("%dMB", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dKB", v>>10)
	}
	return fmt.Sprintf("%dB", v)
}

var (
	defaultTableOnce sync.Once
	defaultTable     *SelectionTable
)

// SelectTopology picks the collective algorithm for a msgBytes-sized
// reduction over ranks ranks from the default machine's selection
// table — the mpirt analogue of an intelligent runtime choosing a
// reduction plan per call.
func SelectTopology(msgBytes, ranks int) Topology {
	defaultTableOnce.Do(func() { defaultTable = NewSelectionTable(DefaultMachine()) })
	return defaultTable.Pick(msgBytes, ranks)
}
