package mpirt

import (
	"math/bits"

	"repro/internal/reduce"
)

// Bandwidth-optimal collectives: Rabenseifner reduce (recursive-halving
// reduce-scatter + binomial gather) and the reduce-scatter + allgather
// allreduce (recursive halving then recursive doubling). Both operate
// on a vector of per-element reduction states; each rank ends up
// combining O(m) elements instead of the O(m log n) a full-vector tree
// schedule moves through every interior rank, which is why production
// MPI layers select them for large payloads (MPICH's
// MPIR_Reduce_intra_reduce_scatter_gather, oneCCL's rabenseifner).
//
// Both schedules pair each rank with exactly one partner per round, so
// the merge order is fixed by the schedule itself: the result is
// deterministic for every operator in either Mode, and — because
// partial states aggregate rank groups in ascending-group order — an
// exactly-mergeable operator (BN) finalizes to the same bits as every
// tree topology.
//
// Non-power-of-two worlds use the standard MPICH fold-in: with
// rem = size - pof2, each even rank below 2*rem sends its whole state
// vector to the odd rank above it and drops out of the power-of-two
// phase; the odd rank absorbs it (lower-rank operand first) and
// proceeds with newrank = rank/2. Surviving ranks at or above 2*rem
// get newrank = rank - rem. After the allgather phase the surviving
// odd ranks send the finished vector back to their dropped partners.

// pof2Below returns the largest power of two <= n.
func pof2Below(n int) int {
	return 1 << (bits.Len(uint(n)) - 1)
}

// foldRoles describes a rank's place in the power-of-two core group.
type foldRoles struct {
	pof2, rem int
	newrank   int // -1 for ranks folded out of the core group
}

func foldInfo(rank, size int) foldRoles {
	pof2 := pof2Below(size)
	rem := size - pof2
	f := foldRoles{pof2: pof2, rem: rem}
	switch {
	case rank < 2*rem && rank%2 == 0:
		f.newrank = -1
	case rank < 2*rem:
		f.newrank = rank / 2
	default:
		f.newrank = rank - rem
	}
	return f
}

// oldRank maps a core-group newrank back to the world rank that holds
// it.
func (f foldRoles) oldRank(newrank int) int {
	if newrank < f.rem {
		return 2*newrank + 1
	}
	return newrank + f.rem
}

// chunkMsg carries a contiguous range of reduced element states with
// its vector offset, for the gather and allgather phases.
type chunkMsg struct {
	lo     int
	states []reduce.State
}

// rabenseifner runs the reduce-scatter core and then either a binomial
// gather of the chunks to root (allgather=false: Rabenseifner reduce)
// or a recursive-doubling allgather plus post-fold (allgather=true:
// reduce-scatter + allgather allreduce). It returns the full reduced
// state vector and whether this rank holds it: only the root for the
// gather form, every rank for the allgather form.
//
// The states slice is consumed: ranges sent away must not be reused by
// the caller.
func (r *Rank) rabenseifner(root int, states []reduce.State, op reduce.Op, allgather bool) ([]reduce.State, bool) {
	// Fixed per-collective tag budget so every rank's tag sequence
	// stays aligned regardless of its role in this schedule.
	tFold := r.nextCollTag()
	tRS := r.nextCollTag()
	tGath := r.nextCollTag()
	tPost := r.nextCollTag()

	n := r.Size
	nElem := len(states)
	f := foldInfo(r.ID, n)
	L := bits.Len(uint(f.pof2)) - 1 // log2(pof2) rounds

	// Pre-fold: fold the excess ranks into their odd neighbors.
	if r.ID < 2*f.rem {
		if f.newrank < 0 {
			r.send(r.ID+1, tFold, states)
			if !allgather {
				// Dropped ranks take no further part in a rooted
				// reduce unless they are the root, which receives the
				// finished vector from its surrogate below.
				if r.ID == root {
					return r.Recv(root+1, tPost).([]reduce.State), true
				}
				return nil, false
			}
			// Allreduce: wait for the finished vector from the partner.
			full := r.Recv(r.ID+1, tPost).([]reduce.State)
			return full, allgather || r.ID == root
		}
		partner := r.Recv(r.ID-1, tFold).([]reduce.State)
		for i := range states {
			// Lower-rank operand first: canonical ascending-group order.
			states[i] = op.Merge(partner[i], states[i])
		}
	}

	// Reduce-scatter by recursive halving over the core group. Both
	// partners derive the same [lo,hi) range split from their shared
	// newrank prefix, so no range metadata needs to travel.
	lo, hi := 0, nElem
	for k := 0; k < L; k++ {
		halfBit := f.pof2 >> (k + 1)
		partnerNew := f.newrank ^ halfBit
		partnerOld := f.oldRank(partnerNew)
		mid := lo + (hi-lo)/2
		var keepLo, keepHi, giveLo, giveHi int
		if f.newrank&halfBit == 0 {
			keepLo, keepHi, giveLo, giveHi = lo, mid, mid, hi
		} else {
			keepLo, keepHi, giveLo, giveHi = mid, hi, lo, mid
		}
		r.send(partnerOld, tRS, states[giveLo:giveHi])
		theirs := r.Recv(partnerOld, tRS).([]reduce.State)
		for i := range theirs {
			// The group with the lower newranks is the earlier operand.
			if f.newrank&halfBit == 0 {
				states[keepLo+i] = op.Merge(states[keepLo+i], theirs[i])
			} else {
				states[keepLo+i] = op.Merge(theirs[i], states[keepLo+i])
			}
		}
		lo, hi = keepLo, keepHi
	}

	if !allgather {
		return r.rabenseifnerGather(root, states, lo, hi, nElem, f, tGath, tPost)
	}

	// Allgather by recursive doubling: undo the halving, exchanging
	// owned ranges with the same partners in reverse round order.
	for k := L - 1; k >= 0; k-- {
		halfBit := f.pof2 >> (k + 1)
		partnerOld := f.oldRank(f.newrank ^ halfBit)
		r.send(partnerOld, tGath, chunkMsg{lo: lo, states: states[lo:hi]})
		got := r.Recv(partnerOld, tGath).(chunkMsg)
		copy(states[got.lo:got.lo+len(got.states)], got.states)
		// Sibling ranges partition their parent range, so the union is
		// exactly the parent — take min/max independently (an empty
		// sibling still marks a correct boundary point).
		if got.lo < lo {
			lo = got.lo
		}
		if end := got.lo + len(got.states); end > hi {
			hi = end
		}
	}
	// Post-fold: hand the finished vector back to the dropped ranks.
	if r.ID < 2*f.rem && f.newrank >= 0 {
		r.send(r.ID-1, tPost, states)
	}
	return states, true
}

// rabenseifnerGather performs the binomial gather of scattered chunks
// to the root (or its surrogate when the root was folded out), then
// ships the assembled vector to the root if needed.
func (r *Rank) rabenseifnerGather(root int, states []reduce.State,
	lo, hi, nElem int, f foldRoles, tGath, tPost int) ([]reduce.State, bool) {
	// The gather target inside the core group: the root itself, or —
	// when the root is a folded-out even rank — the odd neighbor that
	// absorbed it.
	surrogate := root
	if sf := foldInfo(root, r.Size); sf.newrank < 0 {
		surrogate = root + 1
	}
	rootNew := foldInfo(surrogate, r.Size).newrank

	// Binomial gather over core-group vertices. Chunks are disjoint
	// element ranges, so no merging happens here — only placement.
	v := (f.newrank - rootNew + f.pof2) % f.pof2
	owned := []chunkMsg{}
	if hi > lo {
		owned = append(owned, chunkMsg{lo: lo, states: states[lo:hi]})
	}
	var parentV int
	var nChildren int
	if v == 0 {
		parentV = -1
		for b := 1; b < f.pof2; b <<= 1 {
			nChildren++
		}
	} else {
		lsb := v & -v
		parentV = v - lsb
		for b := 1; b < lsb; b <<= 1 {
			if v+b < f.pof2 {
				nChildren++
			}
		}
	}
	for i := 0; i < nChildren; i++ {
		_, p := r.RecvAny(tGath)
		owned = append(owned, p.([]chunkMsg)...)
	}
	if parentV >= 0 {
		r.send(f.oldRank((parentV+rootNew)%f.pof2), tGath, owned)
		return nil, false
	}
	// v == 0: this rank is the gather target; assemble the full vector.
	for _, c := range owned {
		copy(states[c.lo:c.lo+len(c.states)], c.states)
	}
	if surrogate != root {
		r.send(root, tPost, states)
		return nil, false
	}
	return states, true
}
