package mpirt

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/sum"
)

func chunks(xs []float64, parts int) [][]float64 {
	out := make([][]float64, parts)
	per := (len(xs) + parts - 1) / parts
	for i := range out {
		lo := i * per
		hi := lo + per
		if lo > len(xs) {
			lo = len(xs)
		}
		if hi > len(xs) {
			hi = len(xs)
		}
		out[i] = xs[lo:hi]
	}
	return out
}

func makeData(n int, seed uint64) []float64 {
	r := fpu.NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		v := math.Ldexp(r.Float64()+0.5, r.Intn(30)-15)
		if r.Bool() {
			v = -v
		}
		xs[i] = v
	}
	return xs
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2, Config{})
	err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 7, 42.0)
		} else {
			if got := r.Recv(0, 7); got.(float64) != 42.0 {
				panic("bad payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBuffersOutOfOrder(t *testing.T) {
	w := NewWorld(2, Config{})
	err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, 1, "first")
			r.Send(1, 2, "second")
		} else {
			// Ask for tag 2 first: tag 1 must be buffered, not lost.
			if got := r.Recv(0, 2); got.(string) != "second" {
				panic("tag 2 wrong")
			}
			if got := r.Recv(0, 1); got.(string) != "first" {
				panic("tag 1 lost")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const n = 8
	w := NewWorld(n, Config{})
	var before, after int32
	err := w.Run(func(r *Rank) {
		atomic.AddInt32(&before, 1)
		r.Barrier()
		if atomic.LoadInt32(&before) != n {
			panic("barrier released early")
		}
		atomic.AddInt32(&after, 1)
		r.Barrier()
		if atomic.LoadInt32(&after) != n {
			panic("second barrier released early")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastAllTopSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33} {
		w := NewWorld(n, Config{})
		err := w.Run(func(r *Rank) {
			var payload any
			if r.ID == 2%n {
				payload = "hello"
			}
			got := r.Broadcast(2%n, payload)
			if got.(string) != "hello" {
				panic("broadcast payload wrong")
			}
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGather(t *testing.T) {
	const n = 9
	w := NewWorld(n, Config{})
	err := w.Run(func(r *Rank) {
		got := r.Gather(3, r.ID*10)
		if r.ID != 3 {
			if got != nil {
				panic("non-root got gather result")
			}
			return
		}
		for i, v := range got {
			if v.(int) != i*10 {
				panic("gather misordered")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceCorrectAllTopologies(t *testing.T) {
	xs := makeData(10000, 1)
	ref := bigref.SumFloat64(xs)
	for _, n := range []int{1, 2, 5, 8, 16} {
		parts := chunks(xs, n)
		for _, topo := range Topologies {
			for _, mode := range []Mode{FixedOrder, ArrivalOrder} {
				w := NewWorld(n, Config{})
				var got float64
				err := w.Run(func(r *Rank) {
					v, ok := r.ReduceSum(0, parts[r.ID], sum.CompositeAlg.Op(), topo, mode)
					if ok {
						got = v
					} else if r.ID == 0 {
						panic("root did not get result")
					}
				})
				if err != nil {
					t.Fatalf("n=%d %v %v: %v", n, topo, mode, err)
				}
				if math.Abs(got-ref) > 1e-9*math.Abs(ref)+1e-12 {
					t.Errorf("n=%d %v %v: got %g want %g", n, topo, mode, got, ref)
				}
			}
		}
	}
}

func TestReduceNonRootGetsNothing(t *testing.T) {
	w := NewWorld(4, Config{})
	err := w.Run(func(r *Rank) {
		st := r.Reduce(2, sum.StandardAlg.Op().Leaf(float64(r.ID)), sum.StandardAlg.Op(), Binomial, FixedOrder)
		if r.ID == 2 {
			if st == nil {
				panic("root missing state")
			}
			if got := sum.StandardAlg.Op().Finalize(st); got != 6 {
				panic("wrong reduce value")
			}
		} else if st != nil {
			panic("non-root received state")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	const n = 6
	w := NewWorld(n, Config{})
	err := w.Run(func(r *Rank) {
		op := sum.NeumaierAlg.Op()
		st := r.AllReduce(op.Leaf(float64(r.ID+1)), op, Binomial, FixedOrder)
		if got := op.Finalize(st); got != 21 {
			panic("allreduce wrong on some rank")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPRReproducibleUnderJitterAndArrival(t *testing.T) {
	xs := makeData(8000, 3)
	parts := chunks(xs, 16)
	op := sum.PreroundedAlg.Op()
	results := map[float64]bool{}
	for trial := 0; trial < 8; trial++ {
		w := NewWorld(16, Config{Jitter: 200 * time.Microsecond, Seed: uint64(trial)})
		var got float64
		if err := w.Run(func(r *Rank) {
			if v, ok := r.ReduceSum(0, parts[r.ID], op, Binomial, ArrivalOrder); ok {
				got = v
			}
		}); err != nil {
			t.Fatal(err)
		}
		results[got] = true
	}
	if len(results) != 1 {
		t.Errorf("PR produced %d distinct results under arrival-order jitter", len(results))
	}
}

func TestSTVariesUnderArrivalOrder(t *testing.T) {
	// An ill-conditioned cancelling set: arrival-order ST reduction
	// should produce multiple distinct values across jitter seeds.
	r := fpu.NewRNG(4)
	xs := make([]float64, 0, 16384)
	for i := 0; i < 8192; i++ {
		v := math.Ldexp(r.Float64()+0.5, r.Intn(40)-20)
		xs = append(xs, v, -v)
	}
	r.Shuffle(xs)
	parts := chunks(xs, 32)
	op := sum.StandardAlg.Op()
	results := map[float64]bool{}
	for trial := 0; trial < 12; trial++ {
		w := NewWorld(32, Config{Jitter: 300 * time.Microsecond, Seed: uint64(trial * 7)})
		var got float64
		if err := w.Run(func(rk *Rank) {
			if v, ok := rk.ReduceSum(0, parts[rk.ID], op, Flat, ArrivalOrder); ok {
				got = v
			}
		}); err != nil {
			t.Fatal(err)
		}
		results[got] = true
	}
	if len(results) < 2 {
		t.Skip("scheduler produced identical arrival orders; inherently timing-dependent")
	}
}

func TestFixedOrderDeterministic(t *testing.T) {
	xs := makeData(4000, 5)
	parts := chunks(xs, 8)
	op := sum.StandardAlg.Op()
	results := map[float64]bool{}
	for trial := 0; trial < 6; trial++ {
		w := NewWorld(8, Config{Jitter: 200 * time.Microsecond, Seed: uint64(trial)})
		var got float64
		if err := w.Run(func(r *Rank) {
			if v, ok := r.ReduceSum(0, parts[r.ID], op, Binomial, FixedOrder); ok {
				got = v
			}
		}); err != nil {
			t.Fatal(err)
		}
		results[got] = true
	}
	if len(results) != 1 {
		t.Errorf("fixed-order reduce nondeterministic: %d distinct values", len(results))
	}
}

func TestFamilyStructure(t *testing.T) {
	// Every rank except the root must have exactly one parent, and the
	// union of children lists must cover all non-root ranks exactly once.
	// Only the single-tree topologies have a family(); the schedule
	// topologies are validated structurally in collective_test.go.
	for _, topo := range treeTopologies {
		for _, n := range []int{1, 2, 3, 8, 13, 16} {
			for _, root := range []int{0, 1, n - 1} {
				if root < 0 || root >= n {
					continue
				}
				parents := make([]int, n)
				childCount := make([]int, n)
				w := NewWorld(n, Config{})
				var mu [64]int32
				_ = mu
				err := w.Run(func(r *Rank) {
					p, cs := r.family(topo, root)
					parents[r.ID] = p
					for range cs {
					}
					childCount[r.ID] = len(cs)
				})
				if err != nil {
					t.Fatal(err)
				}
				if parents[root] != -1 {
					t.Errorf("%v n=%d root=%d: root has parent %d", topo, n, root, parents[root])
				}
				total := 0
				for _, c := range childCount {
					total += c
				}
				if total != n-1 {
					t.Errorf("%v n=%d root=%d: %d child edges, want %d", topo, n, root, total, n-1)
				}
				for id, p := range parents {
					if id != root && (p < 0 || p >= n) {
						t.Errorf("%v n=%d root=%d: rank %d parent %d invalid", topo, n, root, id, p)
					}
				}
			}
		}
	}
}

func TestPanicPropagatesAsError(t *testing.T) {
	w := NewWorld(3, Config{})
	err := w.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("boom")
		}
		// Other ranks must not deadlock: they do no communication.
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestInvalidWorldAndSend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) should panic")
		}
	}()
	NewWorld(0, Config{})
}

func TestLocalStateEmpty(t *testing.T) {
	op := sum.KahanAlg.Op()
	if got := op.Finalize(LocalState(op, nil)); got != 0 {
		t.Errorf("empty local state = %g", got)
	}
}

func TestAllGather(t *testing.T) {
	const n = 7
	w := NewWorld(n, Config{})
	err := w.Run(func(r *Rank) {
		got := r.AllGather(r.ID * 3)
		if len(got) != n {
			panic("allgather length")
		}
		for i, v := range got {
			if v.(int) != i*3 {
				panic("allgather misordered")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	const n = 5
	w := NewWorld(n, Config{})
	err := w.Run(func(r *Rank) {
		var items []any
		if r.ID == 2 {
			for i := 0; i < n; i++ {
				items = append(items, i*i)
			}
		}
		got := r.Scatter(2, items)
		if got.(int) != r.ID*r.ID {
			panic("scatter wrong item")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongCountPanics(t *testing.T) {
	w := NewWorld(2, Config{})
	err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Scatter(0, []any{1}) // wrong length -> rank panic
		} else {
			// Rank 1 would block forever waiting for its item; detect
			// the root's failure instead by doing nothing.
		}
	})
	if err == nil {
		t.Fatal("expected error from mis-sized scatter")
	}
}
