package mpirt

import (
	"math/bits"
	"sync"

	"repro/internal/reduce"
)

// Double binary tree reduction (Sanders, Speck & Träff; the schedule
// behind NCCL's tree allreduce and oneCCL's double_tree). Two
// complementary binary trees span all ranks: T1 is the inorder-numbered
// search tree over ranks 0..n-1, whose interior nodes all sit at odd
// ranks; T2 is its mirror (even n) or its rotation by one rank (odd n),
// whose interior nodes all sit at even ranks. Every rank is therefore
// interior in at most one tree and a leaf in the other, so when the
// payload is split into segments — even segments reduced up T1, odd
// segments up T2 — each rank forwards only half the vector through its
// interior role, halving the per-link load of a single binary tree
// while keeping the log n span.

// inorderTree builds the parent array of the inorder-numbered binary
// tree over ranks 0..n-1 and returns its root. The range (a, b]
// (labels a+1..b, 1-based) is rooted at a + 2^floor(log2(b-a)), which
// keeps every interior label even (every leaf label odd), i.e. every
// interior rank odd.
func inorderTree(n int) (parent []int, root int) {
	parent = make([]int, n)
	var rec func(a, b, par int)
	rec = func(a, b, par int) {
		if a >= b {
			return
		}
		r := a + 1<<(bits.Len(uint(b-a))-1)
		parent[r-1] = par - 1 // par == 0 encodes "no parent"
		rec(a, r-1, r)
		rec(r, b, r)
	}
	rec(0, n, 0)
	return parent, 1<<(bits.Len(uint(n))-1) - 1
}

// doubleTrees returns the parent arrays and roots of the two
// complementary trees.
func doubleTrees(n int) (p1, p2 []int, r1, r2 int) {
	p1, r1 = inorderTree(n)
	p2 = make([]int, n)
	if n%2 == 0 {
		// Mirror: rank r in T2 plays the role of rank n-1-r in T1, so
		// T2's interior ranks are the mirrors of T1's odd interiors —
		// all even.
		for r := 0; r < n; r++ {
			if q := p1[n-1-r]; q < 0 {
				p2[r] = -1
			} else {
				p2[r] = n - 1 - q
			}
		}
		r2 = n - 1 - r1
	} else {
		// Rotation: rank r in T2 plays the role of rank r-1 (mod n) in
		// T1; odd-rank interiors of T1 map to even-rank interiors of T2.
		for r := 0; r < n; r++ {
			if q := p1[(r-1+n)%n]; q < 0 {
				p2[r] = -1
			} else {
				p2[r] = (q + 1) % n
			}
		}
		r2 = (r1 + 1) % n
	}
	return p1, p2, r1, r2
}

// dtreeInfo is the immutable double-tree structure for one world size,
// shared read-only by every rank.
type dtreeInfo struct {
	parents  [2][]int
	roots    [2]int
	children [2][][]int
}

var (
	dtreeMu    sync.Mutex
	dtreeCache = map[int]*dtreeInfo{}
)

// dtreeFor returns the double-tree structure for an n-rank world,
// memoized per size. The structure depends only on n and is never
// mutated after construction, so one copy serves every rank of every
// world: without the cache each rank rebuilds O(n) arrays, turning a
// single collective into O(n^2) work and allocation across the world
// (seconds of pure construction at 10^4 ranks).
func dtreeFor(n int) *dtreeInfo {
	dtreeMu.Lock()
	defer dtreeMu.Unlock()
	if info, ok := dtreeCache[n]; ok {
		return info
	}
	p1, p2, r1, r2 := doubleTrees(n)
	info := &dtreeInfo{
		parents:  [2][]int{p1, p2},
		roots:    [2]int{r1, r2},
		children: [2][][]int{childLists(p1), childLists(p2)},
	}
	dtreeCache[n] = info
	return info
}

// childLists inverts a parent array into per-rank sorted child lists.
func childLists(parent []int) [][]int {
	children := make([][]int, len(parent))
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	// Parent arrays are built in ascending rank order, so each list is
	// already sorted ascending — the canonical FixedOrder merge order.
	return children
}

// doubleTreeReduceStates reduces the state vector to root: even
// segments climb T1, odd segments climb T2, pipelined per segment.
// Each tree's root forwards its finished segments to the caller's root
// under a distinct tag (so arrival-order child receives can never
// confuse a finished segment with a child contribution).
func (r *Rank) doubleTreeReduceStates(root int, states []reduce.State,
	op reduce.Op, mode Mode, segSize int) ([]reduce.State, bool) {
	n := len(states)
	numSegs, segSize := segmentPlan(n, segSize)
	dt := dtreeFor(r.Size)
	parents := dt.parents
	roots := dt.roots
	children := dt.children

	for s := 0; s < numSegs; s++ {
		lo := s * segSize
		hi := lo + segSize
		if hi > n {
			hi = n
		}
		tag := r.nextCollTag()
		tagFinal := r.nextCollTag()
		t := s % 2
		r.mergeSegFromChildren(states[lo:hi], op, children[t][r.ID], mode, tag)
		switch {
		case parents[t][r.ID] >= 0:
			seg := make([]reduce.State, hi-lo)
			copy(seg, states[lo:hi])
			r.send(parents[t][r.ID], tag, seg)
		case r.ID != root:
			// Tree root, but not the caller's root: forward the
			// finished segment.
			seg := make([]reduce.State, hi-lo)
			copy(seg, states[lo:hi])
			r.send(root, tagFinal, seg)
		}
		if r.ID == root && roots[t] != root {
			copy(states[lo:hi], r.Recv(roots[t], tagFinal).([]reduce.State))
		}
	}
	if r.ID != root {
		return nil, false
	}
	return states, true
}

// mergeSegFromChildren absorbs one segment's contribution from each
// child into dst, in ascending-child order (FixedOrder) or arrival
// order (ArrivalOrder).
func (r *Rank) mergeSegFromChildren(dst []reduce.State, op reduce.Op,
	children []int, mode Mode, tag int) {
	switch mode {
	case FixedOrder:
		got := make([]struct {
			src int
			seg []reduce.State
		}, 0, len(children))
		for range children {
			src, p := r.RecvAny(tag)
			got = append(got, struct {
				src int
				seg []reduce.State
			}{src, p.([]reduce.State)})
		}
		for i := 1; i < len(got); i++ {
			for j := i; j > 0 && got[j].src < got[j-1].src; j-- {
				got[j], got[j-1] = got[j-1], got[j]
			}
		}
		for _, g := range got {
			mergeSeg(op, dst, g.seg)
		}
	case ArrivalOrder:
		for range children {
			_, p := r.RecvAny(tag)
			mergeSeg(op, dst, p.([]reduce.State))
		}
	default:
		panic("mpirt: invalid mode")
	}
}

// segmentPlan normalizes a segment size against a vector length and
// returns the segment count (at least 1: empty vectors still run one
// protocol round so every rank's tag sequence advances identically).
func segmentPlan(n, segSize int) (numSegs, size int) {
	if segSize <= 0 || segSize > n {
		segSize = n
	}
	if segSize == 0 {
		segSize = 1
	}
	numSegs = 1
	if n > 0 {
		numSegs = (n + segSize - 1) / segSize
	}
	return numSegs, segSize
}
