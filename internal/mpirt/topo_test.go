package mpirt

import (
	"testing"
)

func TestFixedBinomialTreeStructure(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 13, 64} {
		tr := FixedBinomialTree(n)
		if err := tr.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if tr.Root != 0 {
			t.Errorf("n=%d: root %d", n, tr.Root)
		}
	}
}

func TestTopologyAwareTreeStructure(t *testing.T) {
	m := DefaultMachine()
	for _, n := range []int{1, 2, 16, 17, 100, 256} {
		p := RandomPlacement(m, n, 42)
		tr := TopologyAwareTree(p)
		if err := tr.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		// Every non-leader rank's parent must share its node (the tree
		// crosses node boundaries only between leaders).
		leaders := map[int]int{} // node -> leader
		for rank, node := range p {
			if _, ok := leaders[node]; !ok && tr.Parent[rank] == -1 || isLeader(tr, p, rank) {
				leaders[node] = rank
			}
		}
		for rank, pa := range tr.Parent {
			if pa < 0 {
				continue
			}
			if p[rank] != p[pa] && !isLeader(tr, p, rank) {
				t.Errorf("n=%d: non-leader rank %d crosses nodes", n, rank)
			}
		}
	}
}

// isLeader reports whether rank's parent (if any) is on another node or
// rank is the root — i.e. rank is its node's representative.
func isLeader(tr ReduceTree, p Placement, rank int) bool {
	pa := tr.Parent[rank]
	return pa == -1 || p[pa] != p[rank]
}

func TestRandomPlacementBalanced(t *testing.T) {
	m := DefaultMachine()
	n := 160
	p := RandomPlacement(m, n, 7)
	counts := map[int]int{}
	for _, node := range p {
		counts[node]++
	}
	for node, c := range counts {
		if c > m.CoresPerNode {
			t.Errorf("node %d oversubscribed: %d ranks", node, c)
		}
	}
}

func TestCompletionTimeSmallByHand(t *testing.T) {
	// Two ranks on one node: one message + one receive + one merge.
	m := Machine{CoresPerNode: 4, IntraLat: 1, InterLat: 10, RecvCost: 0.25, MergeCost: 0.5}
	p := Placement{0, 0}
	tr := FixedBinomialTree(2)
	if got := m.CompletionTime(tr, p); got != 1.75 {
		t.Errorf("intra-node pair: %g, want 1.75", got)
	}
	// Same pair split across nodes.
	p = Placement{0, 1}
	if got := m.CompletionTime(tr, p); got != 10.75 {
		t.Errorf("inter-node pair: %g, want 10.75", got)
	}
	// Ordered flat over 3 ranks, all on one node: last arrival at
	// IntraLat, then two serialized receive+merge slots.
	p = Placement{0, 0, 0}
	if got := m.CompletionTime(OrderedFlatTree(3), p); got != 1+2*0.75 {
		t.Errorf("ordered flat: %g, want 2.5", got)
	}
}

func TestTopologyAdvantageGrowsWithScale(t *testing.T) {
	// The Balaji-Kimpe effect: the aware/fixed gap widens as core count
	// grows (averaged over placements to tame variance).
	m := DefaultMachine()
	mean := func(n int) float64 {
		s := 0.0
		const reps = 10
		for i := 0; i < reps; i++ {
			s += TopologyAdvantage(m, n, uint64(n*100+i))
		}
		return s / reps
	}
	small, large := mean(64), mean(1024)
	if small < 1 {
		t.Errorf("topology-aware tree slower at n=64: advantage %.2f", small)
	}
	if large <= small {
		t.Errorf("advantage did not grow with scale: n=64 -> %.2f, n=1024 -> %.2f", small, large)
	}
}

func TestCompletionTimeDeepChainNoOverflow(t *testing.T) {
	// A 100k-rank chain exercises the iterative post-order.
	n := 100000
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	tr := ReduceTree{Parent: parent, Root: 0}
	m := DefaultMachine()
	p := make(Placement, n)
	for i := range p {
		p[i] = i / m.CoresPerNode
	}
	if got := m.CompletionTime(tr, p); got <= 0 {
		t.Errorf("chain completion %g", got)
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	bad := ReduceTree{Parent: []int{-1, -1}, Root: 0} // two roots
	if err := bad.Validate(); err == nil {
		t.Error("two roots accepted")
	}
	cyc := ReduceTree{Parent: []int{-1, 2, 1}, Root: 0} // 1<->2 cycle
	if err := cyc.Validate(); err == nil {
		t.Error("cycle accepted")
	}
}
