package mpirt

import (
	"fmt"
	"testing"

	"repro/internal/sum"
)

// BenchmarkCollective runs one full scalar BN reduction per iteration
// for every topology at the rank scales the selection table targets,
// and reports the closed-form model cost alongside (modelcost, in
// machine cost units) so BENCH_mpirt.json carries the wall-clock and
// the modeled cost side by side — the artifact the selection-table
// agreement gate is reviewed against.
func BenchmarkCollective(b *testing.B) {
	op := sum.BinnedAlg.Op()
	m := DefaultMachine()
	for _, ranks := range []int{16, 256, 4096, 10000} {
		xs := makeData(ranks, uint64(ranks))
		for _, topo := range Topologies {
			b.Run(fmt.Sprintf("topo=%s/ranks=%d", topo, ranks), func(b *testing.B) {
				b.ReportMetric(m.CollectiveTime(topo, ranks, 1, DefaultSegSize, nil), "modelcost")
				for i := 0; i < b.N; i++ {
					w := NewWorld(ranks, Config{})
					if err := w.Run(func(r *Rank) {
						r.ReduceSum(0, xs[r.ID:r.ID+1], op, topo, ArrivalOrder)
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCollectiveVector reduces a segmented BN state vector, where
// the bandwidth-optimal schedules earn their keep: the model cost is
// evaluated at the real element count so the crossovers in
// BENCH_mpirt.json can be compared against measured wall-clock.
func BenchmarkCollectiveVector(b *testing.B) {
	const ranks, nElem = 64, 512
	op := sum.BinnedAlg.Op()
	xs := makeData(ranks*nElem, 7)
	m := DefaultMachine()
	for _, topo := range Topologies {
		b.Run(fmt.Sprintf("topo=%s/ranks=%d/elems=%d", topo, ranks, nElem), func(b *testing.B) {
			b.ReportMetric(m.CollectiveTime(topo, ranks, nElem, DefaultSegSize, nil), "modelcost")
			for i := 0; i < b.N; i++ {
				w := NewWorld(ranks, Config{})
				if err := w.Run(func(r *Rank) {
					r.VectorReduce(0, xs[r.ID*nElem:(r.ID+1)*nElem], op, topo, ArrivalOrder, DefaultSegSize)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
