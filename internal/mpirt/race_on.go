//go:build race

package mpirt

// raceEnabled gates test sizing: the extreme-scale (10^4-rank) pins
// run only outside the race detector, whose per-goroutine overhead
// makes them impractically slow; race runs exercise the same protocols
// at 256 ranks.
const raceEnabled = true
