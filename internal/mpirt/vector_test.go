package mpirt

import (
	"math"
	"testing"
	"time"

	"repro/internal/bigref"
	"repro/internal/fpu"
	"repro/internal/sum"
)

// vecData builds per-rank vectors whose elementwise exact sums are
// computable.
func vecData(ranks, n int, seed uint64) [][]float64 {
	r := fpu.NewRNG(seed)
	out := make([][]float64, ranks)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = math.Ldexp(r.Float64()*2-1, r.Intn(40)-20)
		}
	}
	return out
}

// exactElementwise returns the exact per-element sums.
func exactElementwise(vecs [][]float64) []float64 {
	n := len(vecs[0])
	out := make([]float64, n)
	col := make([]float64, len(vecs))
	for j := 0; j < n; j++ {
		for i := range vecs {
			col[i] = vecs[i][j]
		}
		out[j] = bigref.SumFloat64(col)
	}
	return out
}

func TestVectorReduceCorrectAllSegSizes(t *testing.T) {
	const ranks, n = 8, 100
	vecs := vecData(ranks, n, 1)
	want := exactElementwise(vecs)
	for _, segSize := range []int{0, 1, 7, 33, 100, 1000} {
		for _, topo := range []Topology{Binomial, Chain} {
			w := NewWorld(ranks, Config{})
			var got []float64
			err := w.Run(func(r *Rank) {
				if v, ok := r.VectorReduce(0, vecs[r.ID], sum.CompositeAlg.Op(), topo, FixedOrder, segSize); ok {
					got = v
				}
			})
			if err != nil {
				t.Fatalf("seg=%d %v: %v", segSize, topo, err)
			}
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-9*math.Abs(want[j])+1e-15 {
					t.Fatalf("seg=%d %v: element %d: %g vs %g", segSize, topo, j, got[j], want[j])
				}
			}
		}
	}
}

func TestVectorReducePRBitwiseUnderArrival(t *testing.T) {
	const ranks, n = 16, 64
	vecs := vecData(ranks, n, 2)
	op := sum.PreroundedAlg.Op()
	var first []float64
	for trial := 0; trial < 5; trial++ {
		w := NewWorld(ranks, Config{Jitter: 150 * time.Microsecond, Seed: uint64(trial)})
		var got []float64
		err := w.Run(func(r *Rank) {
			if v, ok := r.VectorReduce(0, vecs[r.ID], op, Binomial, ArrivalOrder, 13); ok {
				got = v
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
			continue
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("trial %d element %d: %g != %g", trial, j, got[j], first[j])
			}
		}
	}
}

func TestVectorAllReduce(t *testing.T) {
	const ranks, n = 6, 17
	vecs := vecData(ranks, n, 3)
	want := exactElementwise(vecs)
	w := NewWorld(ranks, Config{})
	results := make([][]float64, ranks)
	err := w.Run(func(r *Rank) {
		results[r.ID] = r.VectorAllReduce(vecs[r.ID], sum.CompositeAlg.Op(), Binomial, FixedOrder, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, got := range results {
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-9*math.Abs(want[j])+1e-15 {
				t.Fatalf("rank %d element %d wrong", id, j)
			}
		}
	}
}

func TestVectorReduceEmpty(t *testing.T) {
	w := NewWorld(4, Config{})
	err := w.Run(func(r *Rank) {
		v, ok := r.VectorReduce(0, nil, sum.StandardAlg.Op(), Binomial, FixedOrder, 8)
		if r.ID == 0 {
			if !ok || len(v) != 0 {
				panic("root should get an empty vector")
			}
		} else if ok {
			panic("non-root got result")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorReduceSingleRank(t *testing.T) {
	w := NewWorld(1, Config{})
	err := w.Run(func(r *Rank) {
		v, ok := r.VectorReduce(0, []float64{1, 2, 3}, sum.StandardAlg.Op(), Flat, FixedOrder, 2)
		if !ok || v[0] != 1 || v[1] != 2 || v[2] != 3 {
			panic("single-rank vector reduce wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
