//go:build !race

package mpirt

// raceEnabled gates test sizing: see race_on.go.
const raceEnabled = false
