package mpirt

import (
	"fmt"

	"repro/internal/fpu"
)

// Topology-aware reduction model. The paper's Section II-B leans on
// Balaji & Kimpe's result that reduction trees conforming to the
// physical topology outperform reductions that enforce a specified
// ordering of partial reduction, with the advantage growing with core
// count — that is *why* exascale reductions will not honor a fixed
// operand order. This file reproduces the effect with a deterministic
// critical-path (LogP-flavored) time model over a two-level machine
// (nodes of cores): messages crossing a node boundary pay InterLat,
// messages within a node pay IntraLat, every received message pays a
// serialized RecvCost at the receiver, and every merge pays MergeCost.
//
// Completion time of a reduction tree:
//
//	done(leaf)   = 0
//	done(parent) = arrivals (done(child) + lat) absorbed in arrival
//	               order, each paying RecvCost + MergeCost serially
//
// The order-enforcing baseline is the flat gather-and-fold at the root
// (the cheapest reduction that honors one canonical operand order
// without extra synchronization rounds): its root serializes n-1
// receives, so its cost grows linearly while the topology-aware
// hierarchical tree grows logarithmically — the gap widens with scale,
// as Balaji & Kimpe measured.

// Machine is a two-level topology.
type Machine struct {
	CoresPerNode int
	// IntraLat and InterLat are link latencies in arbitrary time units;
	// RecvCost is the per-message receive overhead serialized at the
	// receiver (LogP's "o"); MergeCost is the per-merge compute cost.
	IntraLat, InterLat, RecvCost, MergeCost float64
	// ElemCost is the per-element transfer (bandwidth) cost of a
	// message — the β term of the α·span + β·bytes collective model
	// (see CollectiveTime). Zero means latency-only modeling.
	ElemCost float64
}

// DefaultMachine mirrors a commodity cluster: ~20x latency gap between
// shared-memory and network links, receive overhead comparable to an
// intra-node hop, and a per-element bandwidth cost that makes a
// ~1000-element message cost about as much as a network latency.
func DefaultMachine() Machine {
	return Machine{CoresPerNode: 16, IntraLat: 1, InterLat: 20, RecvCost: 1, MergeCost: 0.1, ElemCost: 0.02}
}

// Placement maps each rank to a node.
type Placement []int

// RandomPlacement scatters n ranks across the machine's nodes uniformly
// (node count is ceil(n / CoresPerNode); ranks land anywhere, modeling
// a scheduler that does not preserve rank adjacency).
func RandomPlacement(m Machine, n int, seed uint64) Placement {
	nodes := (n + m.CoresPerNode - 1) / m.CoresPerNode
	r := fpu.NewRNG(seed ^ 0x70b0)
	p := make(Placement, n)
	// Balanced random assignment: shuffle slots.
	slots := make([]int, 0, nodes*m.CoresPerNode)
	for node := 0; node < nodes; node++ {
		for c := 0; c < m.CoresPerNode; c++ {
			slots = append(slots, node)
		}
	}
	for i := range p {
		j := i + r.Intn(len(slots)-i)
		slots[i], slots[j] = slots[j], slots[i]
		p[i] = slots[i]
	}
	return p
}

// lat returns the link latency between two ranks.
func (m Machine) lat(p Placement, a, b int) float64 {
	if p[a] == p[b] {
		return m.IntraLat
	}
	return m.InterLat
}

// ReduceTree is a rooted tree over ranks: Parent[root] = -1.
type ReduceTree struct {
	Parent []int
	Root   int
}

// Validate checks the tree is a single rooted spanning tree.
func (t ReduceTree) Validate() error {
	n := len(t.Parent)
	if t.Root < 0 || t.Root >= n || t.Parent[t.Root] != -1 {
		return fmt.Errorf("mpirt: invalid root %d", t.Root)
	}
	for v := 0; v < n; v++ {
		if v == t.Root {
			continue
		}
		seen := 0
		for u := v; u != t.Root; u = t.Parent[u] {
			if u < 0 || u >= n || t.Parent[u] < 0 {
				return fmt.Errorf("mpirt: rank %d does not reach the root", v)
			}
			if seen++; seen > n {
				return fmt.Errorf("mpirt: cycle through rank %d", v)
			}
		}
	}
	return nil
}

// FixedBinomialTree is the topology-oblivious baseline: the binomial
// tree over rank IDs, regardless of where ranks were placed.
func FixedBinomialTree(n int) ReduceTree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = v - (v & -v)
	}
	return ReduceTree{Parent: parent, Root: 0}
}

// TopologyAwareTree builds a two-level tree from the placement: within
// each node, ranks form a binomial tree rooted at the node's first
// rank (its leader); leaders form a binomial tree across nodes rooted
// at rank 0's leader.
func TopologyAwareTree(p Placement) ReduceTree {
	n := len(p)
	byNode := map[int][]int{}
	var nodeOrder []int
	for rank, node := range p {
		if len(byNode[node]) == 0 {
			nodeOrder = append(nodeOrder, node)
		}
		byNode[node] = append(byNode[node], rank)
	}
	parent := make([]int, n)
	leaders := make([]int, 0, len(nodeOrder))
	for _, node := range nodeOrder {
		members := byNode[node]
		leader := members[0]
		leaders = append(leaders, leader)
		for i, rank := range members {
			if i == 0 {
				continue
			}
			// Binomial within the node over member indices.
			pi := i - (i & -i)
			parent[rank] = members[pi]
		}
	}
	for i, leader := range leaders {
		if i == 0 {
			parent[leader] = -1
			continue
		}
		pi := i - (i & -i)
		parent[leader] = leaders[pi]
	}
	return ReduceTree{Parent: parent, Root: leaders[0]}
}

// CompletionTime returns the simulated critical-path time of reducing
// one value per rank up the tree on the given machine.
func (m Machine) CompletionTime(t ReduceTree, p Placement) float64 {
	n := len(t.Parent)
	children := make([][]int, n)
	for v, pa := range t.Parent {
		if pa >= 0 {
			children[pa] = append(children[pa], v)
		}
	}
	// Iterative post-order to avoid recursion depth limits on chains.
	done := make([]float64, n)
	state := make([]int, n) // next child index to process
	stack := []int{t.Root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if state[v] < len(children[v]) {
			c := children[v][state[v]]
			state[v]++
			stack = append(stack, c)
			continue
		}
		stack = stack[:len(stack)-1]
		// Children complete; the parent merges arrivals serially in
		// arrival order (earliest first).
		arrivals := make([]float64, 0, len(children[v]))
		for _, c := range children[v] {
			arrivals = append(arrivals, done[c]+m.lat(p, c, v))
		}
		sortFloats(arrivals)
		tNow := 0.0
		for _, a := range arrivals {
			if a > tNow {
				tNow = a
			}
			tNow += m.RecvCost + m.MergeCost
		}
		done[v] = tNow
	}
	return done[t.Root]
}

func sortFloats(xs []float64) {
	// Insertion sort: arrival lists are short (tree fan-in).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// OrderedFlatTree is the order-enforcing baseline: every rank sends to
// the root, which folds contributions in one canonical order. This is
// the reduction shape a strict "fixed reduction order" requirement
// forces without extra synchronization rounds.
func OrderedFlatTree(n int) ReduceTree {
	parent := make([]int, n)
	parent[0] = -1
	for v := 1; v < n; v++ {
		parent[v] = 0
	}
	return ReduceTree{Parent: parent, Root: 0}
}

// TopologyAdvantage returns completion(ordered)/completion(aware) for n
// ranks randomly placed on the machine — the Balaji-Kimpe ratio. Values
// above 1 mean the topology-aware tree wins; the ratio grows with n.
func TopologyAdvantage(m Machine, n int, seed uint64) float64 {
	p := RandomPlacement(m, n, seed)
	ordered := m.CompletionTime(OrderedFlatTree(n), p)
	aware := m.CompletionTime(TopologyAwareTree(p), p)
	return ordered / aware
}
