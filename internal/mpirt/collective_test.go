package mpirt

import (
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/sum"
)

// bigRanks is the extreme-scale world size: the full O(10^4) target
// normally, a race-detector-friendly 256 when the suite runs under
// -race (the protocols are identical; only the scale differs).
func bigRanks() int {
	if raceEnabled {
		return 256
	}
	return 10000
}

func TestDoubleTreeStructure(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17, 31, 64, 100, 1023, 1024} {
		p1, p2, r1, r2 := doubleTrees(n)
		for i, tree := range []ReduceTree{{Parent: p1, Root: r1}, {Parent: p2, Root: r2}} {
			if err := tree.Validate(); err != nil {
				t.Fatalf("n=%d tree %d: %v", n, i+1, err)
			}
		}
		// Each rank must be interior (have children) in at most one tree.
		interior1 := make([]bool, n)
		interior2 := make([]bool, n)
		for v := 0; v < n; v++ {
			if p1[v] >= 0 {
				interior1[p1[v]] = true
			}
			if p2[v] >= 0 {
				interior2[p2[v]] = true
			}
		}
		for v := 0; v < n; v++ {
			if interior1[v] && interior2[v] {
				t.Fatalf("n=%d: rank %d interior in both trees", n, v)
			}
		}
		// Interior nodes of a complete binary tree: fan-in at most 2.
		for _, parent := range [][]int{p1, p2} {
			deg := make([]int, n)
			for v := 0; v < n; v++ {
				if parent[v] >= 0 {
					deg[parent[v]]++
				}
			}
			for v, d := range deg {
				if d > 2 {
					t.Fatalf("n=%d: rank %d has %d children", n, v, d)
				}
			}
		}
	}
}

func TestCollectiveVectorCorrectAllTopologies(t *testing.T) {
	const nElem = 37
	for _, ranks := range []int{1, 2, 3, 5, 8, 16, 31} {
		vecs := vecData(ranks, nElem, uint64(ranks))
		want := exactElementwise(vecs)
		for _, topo := range Topologies {
			for _, segSize := range []int{0, 5, 16} {
				w := NewWorld(ranks, Config{})
				var got []float64
				err := w.Run(func(r *Rank) {
					if v, ok := r.VectorReduce(0, vecs[r.ID], sum.CompositeAlg.Op(), topo, FixedOrder, segSize); ok {
						got = v
					}
				})
				if err != nil {
					t.Fatalf("ranks=%d %v seg=%d: %v", ranks, topo, segSize, err)
				}
				for j := range want {
					if math.Abs(got[j]-want[j]) > 1e-9*math.Abs(want[j])+1e-15 {
						t.Fatalf("ranks=%d %v seg=%d element %d: %g vs %g",
							ranks, topo, segSize, j, got[j], want[j])
					}
				}
			}
		}
	}
}

func TestCollectiveRootVariants(t *testing.T) {
	// Roots that are folded-out even ranks, surviving odd ranks, tree
	// roots, and the last rank all must receive the same bits.
	const ranks, nElem = 11, 9
	vecs := vecData(ranks, nElem, 7)
	op := sum.BinnedAlg.Op()
	var want []float64
	for _, root := range []int{0, 1, 2, 5, ranks - 1} {
		for _, topo := range Topologies {
			w := NewWorld(ranks, Config{})
			var got []float64
			err := w.Run(func(r *Rank) {
				if v, ok := r.VectorReduce(root, vecs[r.ID], op, topo, ArrivalOrder, 4); ok {
					if r.ID != root {
						panic("non-root claimed result")
					}
					got = v
				}
			})
			if err != nil {
				t.Fatalf("root=%d %v: %v", root, topo, err)
			}
			if want == nil {
				want = got
				continue
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("root=%d %v: element %d bits differ", root, topo, j)
				}
			}
		}
	}
}

// TestCrossTopologyBitwisePin is the exactness pin: a BN payload
// reduced over every topology × mode × jitter seed × segment size must
// finalize to identical bits, equal to the single-rank binned sum of
// each element's column.
func TestCrossTopologyBitwisePin(t *testing.T) {
	const ranks, nElem = 24, 33
	vecs := vecData(ranks, nElem, 11)
	op := sum.BinnedAlg.Op()
	want := make([]uint64, nElem)
	col := make([]float64, ranks)
	for j := 0; j < nElem; j++ {
		for i := range vecs {
			col[i] = vecs[i][j]
		}
		want[j] = math.Float64bits(sum.Binned(col))
	}
	for _, topo := range Topologies {
		for _, mode := range []Mode{FixedOrder, ArrivalOrder} {
			for _, segSize := range []int{0, 5, 16, 33} {
				for seed := uint64(1); seed <= 3; seed++ {
					w := NewWorld(ranks, Config{Jitter: 100 * time.Microsecond, Seed: seed})
					var got []float64
					err := w.Run(func(r *Rank) {
						if v, ok := r.VectorReduce(0, vecs[r.ID], op, topo, mode, segSize); ok {
							got = v
						}
					})
					if err != nil {
						t.Fatalf("%v %v seg=%d seed=%d: %v", topo, mode, segSize, seed, err)
					}
					for j := range want {
						if math.Float64bits(got[j]) != want[j] {
							t.Fatalf("%v %v seg=%d seed=%d: element %d: got %x want %x",
								topo, mode, segSize, seed, j, math.Float64bits(got[j]), want[j])
						}
					}
				}
			}
		}
	}
}

// TestNonPowerOfTwoFoldIn pins the pre/post fold step of the
// rabenseifner-style schedules at awkward world sizes, including
// vectors shorter than the core group (empty scatter ranges).
func TestNonPowerOfTwoFoldIn(t *testing.T) {
	sizes := []int{3, 5, 1023}
	if !raceEnabled && !testing.Short() {
		sizes = append(sizes, 10000)
	}
	op := sum.BinnedAlg.Op()
	for _, ranks := range sizes {
		nElem := 8
		if ranks > 100 {
			nElem = 4 // far below pof2: exercises empty ownership ranges
		}
		perRank := 3
		xs := makeData(ranks*perRank, uint64(ranks))
		var want uint64
		{
			w := NewWorld(ranks, Config{})
			var ref float64
			if err := w.Run(func(r *Rank) {
				if v, ok := r.ReduceSum(0, xs[r.ID*perRank:(r.ID+1)*perRank], op, Binomial, FixedOrder); ok {
					ref = v
				}
			}); err != nil {
				t.Fatal(err)
			}
			want = math.Float64bits(ref)
			if want != math.Float64bits(sum.Binned(xs)) {
				t.Fatalf("ranks=%d: binomial BN disagrees with single-rank binned sum", ranks)
			}
		}
		for _, topo := range []Topology{Rabenseifner, RSAllgather, DoubleTree} {
			// Scalar (states can't scatter: pure fold-in + protocol).
			w := NewWorld(ranks, Config{})
			var got float64
			if err := w.Run(func(r *Rank) {
				if v, ok := r.ReduceSum(0, xs[r.ID*perRank:(r.ID+1)*perRank], op, topo, ArrivalOrder); ok {
					got = v
				}
			}); err != nil {
				t.Fatalf("ranks=%d %v: %v", ranks, topo, err)
			}
			if math.Float64bits(got) != want {
				t.Fatalf("ranks=%d %v: scalar bits %x want %x", ranks, topo, math.Float64bits(got), want)
			}
			// Vector shorter than pof2 where it matters.
			vecs := vecData(ranks, nElem, uint64(ranks)*13)
			w = NewWorld(ranks, Config{})
			var gotVec []float64
			if err := w.Run(func(r *Rank) {
				if v, ok := r.VectorReduce(0, vecs[r.ID], op, topo, ArrivalOrder, 2); ok {
					gotVec = v
				}
			}); err != nil {
				t.Fatalf("ranks=%d %v vector: %v", ranks, topo, err)
			}
			col := make([]float64, ranks)
			for j := 0; j < nElem; j++ {
				for i := range vecs {
					col[i] = vecs[i][j]
				}
				if math.Float64bits(gotVec[j]) != math.Float64bits(sum.Binned(col)) {
					t.Fatalf("ranks=%d %v: vector element %d bits differ", ranks, topo, j)
				}
			}
		}
	}
}

// TestExtremeScaleCrossTopologyPin is the acceptance pin: at O(10^4)
// goroutine ranks (256 under -race), every topology reduces a BN
// payload under arrival order with jitter to the same bits as the
// single-rank binned sum.
func TestExtremeScaleCrossTopologyPin(t *testing.T) {
	ranks := bigRanks()
	if testing.Short() {
		ranks = 256
	}
	const perRank = 2
	xs := makeData(ranks*perRank, 42)
	want := math.Float64bits(sum.Binned(xs))
	op := sum.BinnedAlg.Op()
	for _, topo := range Topologies {
		w := NewWorld(ranks, Config{Jitter: 20 * time.Microsecond, Seed: uint64(ranks)})
		var got float64
		if err := w.Run(func(r *Rank) {
			if v, ok := r.ReduceSum(0, xs[r.ID*perRank:(r.ID+1)*perRank], op, topo, ArrivalOrder); ok {
				got = v
			}
		}); err != nil {
			t.Fatalf("ranks=%d %v: %v", ranks, topo, err)
		}
		if math.Float64bits(got) != want {
			t.Errorf("ranks=%d %v: bits %x want %x", ranks, topo, math.Float64bits(got), want)
		}
	}
}

// TestVectorAllReduceRSAGBitwise checks the native allreduce path: the
// allgather replicates chunk states, so every rank finalizes identical
// bits with no broadcast.
func TestVectorAllReduceRSAGBitwise(t *testing.T) {
	for _, ranks := range []int{5, 16, 23} {
		const nElem = 12
		vecs := vecData(ranks, nElem, uint64(ranks)*3)
		op := sum.BinnedAlg.Op()
		results := make([][]float64, ranks)
		w := NewWorld(ranks, Config{Jitter: 50 * time.Microsecond, Seed: 9})
		if err := w.Run(func(r *Rank) {
			results[r.ID] = r.VectorAllReduce(vecs[r.ID], op, RSAllgather, ArrivalOrder, 0)
		}); err != nil {
			t.Fatal(err)
		}
		col := make([]float64, ranks)
		for j := 0; j < nElem; j++ {
			for i := range vecs {
				col[i] = vecs[i][j]
			}
			want := math.Float64bits(sum.Binned(col))
			for id := range results {
				if math.Float64bits(results[id][j]) != want {
					t.Fatalf("ranks=%d rank %d element %d bits differ", ranks, id, j)
				}
			}
		}
	}
}

// TestInboxMemoryLinear verifies the bounded-credit inboxes: a 10^4
// rank world must allocate O(size) envelope slots, not the O(size^2)
// of the old 8*size+64 buffering (which would be ~26 GB of channel
// buffers at this scale).
func TestInboxMemoryLinear(t *testing.T) {
	const ranks = 10000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	w := NewWorld(ranks, Config{})
	runtime.GC()
	runtime.ReadMemStats(&after)
	allocated := after.HeapAlloc - before.HeapAlloc
	// inboxCap envelopes (~32 B each) plus channel overhead per rank:
	// comfortably under 4 KB per rank. The old buffering needed
	// 8*10^4 * 32 B ≈ 2.5 MB per rank.
	if limit := uint64(ranks * 4096); allocated > limit {
		t.Fatalf("10^4-rank world allocated %d bytes (> %d): inbox memory is not O(n)", allocated, limit)
	}
	if w.Size() != ranks {
		t.Fatal("world lost its size")
	}
	runtime.KeepAlive(w)
}

// TestBackpressureFlood floods the root far past its inbox credit from
// every rank at once: senders must block on the bounded inbox and
// resume as the root drains, with no message lost.
func TestBackpressureFlood(t *testing.T) {
	ranks := bigRanks()
	if testing.Short() {
		ranks = 256
	}
	const burst = 4 // per sender; total far exceeds inboxCap
	w := NewWorld(ranks, Config{})
	var total float64
	err := w.Run(func(r *Rank) {
		if r.ID == 0 {
			// Let senders saturate the inbox before draining.
			time.Sleep(2 * time.Millisecond)
			sum := 0.0
			for i := 0; i < (r.Size-1)*burst; i++ {
				_, p := r.RecvAny(1)
				sum += p.(float64)
			}
			total = sum
			return
		}
		for b := 0; b < burst; b++ {
			r.Send(0, 1, float64(r.ID))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for id := 1; id < ranks; id++ {
		want += float64(id) * burst
	}
	if total != want {
		t.Fatalf("flood lost messages: got %g want %g", total, want)
	}
}

// TestSelectionTableAgreement is the selection acceptance gate: on the
// benchmark grid, the bucketed table must pick the model-fastest
// topology in at least 80% of the cells (disagreements can only come
// from bucket quantization).
func TestSelectionTableAgreement(t *testing.T) {
	m := DefaultMachine()
	ranksGrid := []int{16, 256, 4096, 10000}
	msgGrid := []int{512, 4096, 65536, 1 << 20, 8 << 20}
	agree, cells := 0, 0
	for _, ranks := range ranksGrid {
		for _, msgBytes := range msgGrid {
			cells++
			exact := m.BestTopology(ranks, msgBytes/8, DefaultSegSize)
			pick := SelectTopology(msgBytes, ranks)
			if pick == exact {
				agree++
			} else {
				t.Logf("msg=%dB ranks=%d: table %v, model %v (model %vx)", msgBytes, ranks, pick, exact,
					m.CollectiveTime(pick, ranks, msgBytes/8, DefaultSegSize, nil)/
						m.CollectiveTime(exact, ranks, msgBytes/8, DefaultSegSize, nil))
			}
		}
	}
	if frac := float64(agree) / float64(cells); frac < 0.8 {
		t.Fatalf("selection table agrees with the model on %d/%d cells (%.0f%% < 80%%)", agree, cells, frac*100)
	}
}

// TestCollectiveTimeModelShape sanity-checks the α·span + β·bytes
// model's qualitative crossovers.
func TestCollectiveTimeModelShape(t *testing.T) {
	m := DefaultMachine()
	// Flat serializes the root: must lose to binomial at scale.
	if m.CollectiveTime(Flat, 4096, 16, 0, nil) <= m.CollectiveTime(Binomial, 4096, 16, 0, nil) {
		t.Error("flat should lose to binomial at 4096 ranks")
	}
	// Small messages are latency-bound: binomial beats rabenseifner.
	if m.CollectiveTime(Binomial, 4096, 8, 0, nil) >= m.CollectiveTime(Rabenseifner, 4096, 8, 0, nil) {
		t.Error("binomial should win small messages at scale")
	}
	// Large messages at scale are bandwidth-bound: rabenseifner beats
	// binomial by ~log n / 2.
	big := 1 << 17
	if m.CollectiveTime(Rabenseifner, 4096, big, DefaultSegSize, nil) >=
		m.CollectiveTime(Binomial, 4096, big, DefaultSegSize, nil) {
		t.Error("rabenseifner should win large messages at scale")
	}
	// The double tree halves the binary tree's per-link load for
	// multi-segment payloads.
	if m.CollectiveTime(DoubleTree, 1024, big, DefaultSegSize, nil) >=
		m.CollectiveTime(BinaryTree, 1024, big, DefaultSegSize, nil) {
		t.Error("double tree should beat single binary tree on large payloads")
	}
	// CanUse mirrors oneCCL's pof2 guard.
	if Rabenseifner.CanUse(4096, 100) || !Rabenseifner.CanUse(4096, 8192) {
		t.Error("rabenseifner CanUse pof2 guard wrong")
	}
	// Every topology parses back from its name.
	for _, topo := range Topologies {
		got, err := ParseTopology(topo.String())
		if err != nil || got != topo {
			t.Errorf("ParseTopology(%q) = %v, %v", topo.String(), got, err)
		}
	}
}
