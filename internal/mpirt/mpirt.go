// Package mpirt is a message-passing runtime simulated in pure Go:
// ranks are goroutines, links are buffered channels, and collectives are
// implemented over point-to-point sends with pluggable reduction
// topologies. It stands in for the MPI layer of the paper's experiments
// (custom MPI_Reduce operators over local partial sums).
//
// Two properties of real extreme-scale reductions are modeled
// explicitly:
//
//   - Topology: the reduction tree a collective uses (binomial, binary,
//     chain, flat) is selectable per call, like an MPI implementation
//     choosing a plan by message size and communicator shape.
//   - Nondeterminism: in ArrivalOrder mode a parent merges child
//     contributions in the order they arrive, and optional per-message
//     jitter makes that order vary run to run — the system-level effect
//     (Balaji & Kimpe) whose numerical consequences the paper studies.
package mpirt

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/fpu"
	"repro/internal/reduce"
)

// Mode selects how a parent combines child contributions in a reduction.
type Mode uint8

const (
	// FixedOrder merges child states in ascending rank order after all
	// have arrived: deterministic for a deterministic operator.
	FixedOrder Mode = iota
	// ArrivalOrder merges child states as they arrive: the merge order
	// depends on timing, modeling a topology/latency-aware collective.
	ArrivalOrder
)

// String names the mode.
func (m Mode) String() string {
	if m == ArrivalOrder {
		return "arrival-order"
	}
	return "fixed-order"
}

// Topology selects the reduction schedule used by collectives. The
// first four are single rooted trees; the last three are the
// bandwidth-optimal schedules a production MPI/CCL layer selects for
// large payloads (oneCCL: direct / rabenseifner / tree / double_tree).
type Topology uint8

const (
	// Binomial is the classic MPI binomial reduction tree.
	Binomial Topology = iota
	// BinaryTree is a complete binary tree (rank 2i+1, 2i+2 children).
	BinaryTree
	// Chain is a serial pipeline: rank i receives from i+1.
	Chain
	// Flat has every non-root rank send directly to the root.
	Flat
	// Rabenseifner reduces by recursive-halving reduce-scatter followed
	// by a binomial gather of the scattered chunks to the root: each
	// rank moves O(m) elements instead of the tree schedules' O(m log n).
	Rabenseifner
	// RSAllgather is the reduce-scatter + allgather allreduce
	// (recursive halving then recursive doubling); every rank ends with
	// the full result, the root returns it.
	RSAllgather
	// DoubleTree reduces even segments up one inorder binary tree and
	// odd segments up its complement; every rank is interior in at most
	// one tree, halving the per-link load of a single binary tree.
	DoubleTree
)

// Topologies lists every topology.
var Topologies = []Topology{Binomial, BinaryTree, Chain, Flat, Rabenseifner, RSAllgather, DoubleTree}

// treeTopologies are the single-rooted-tree schedules family() covers.
var treeTopologies = []Topology{Binomial, BinaryTree, Chain, Flat}

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Binomial:
		return "binomial"
	case BinaryTree:
		return "binary"
	case Chain:
		return "chain"
	case Flat:
		return "flat"
	case Rabenseifner:
		return "rabenseifner"
	case RSAllgather:
		return "rsag"
	case DoubleTree:
		return "dtree"
	}
	return fmt.Sprintf("Topology(%d)", uint8(t))
}

// ParseTopology maps a name produced by String back to its Topology.
func ParseTopology(s string) (Topology, error) {
	for _, t := range Topologies {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("mpirt: unknown topology %q", s)
}

// isTree reports whether the topology is a single rooted tree handled
// by family().
func (t Topology) isTree() bool {
	switch t {
	case Binomial, BinaryTree, Chain, Flat:
		return true
	}
	return false
}

// Config tunes a World.
type Config struct {
	// Jitter is the maximum random delay injected before each send.
	// Zero disables jitter. Combined with ArrivalOrder it makes merge
	// orders vary run to run.
	Jitter time.Duration
	// Seed drives each rank's jitter generator (rank id is mixed in).
	Seed uint64
}

// World is a communicator of size ranks.
type World struct {
	size    int
	cfg     Config
	inboxes []chan envelope
}

type envelope struct {
	src     int
	tag     int
	payload any
}

// inboxCap is the per-rank inbox credit: how many envelopes a rank can
// have in flight toward one receiver before further senders block. A
// bounded inbox is what keeps world memory O(size): the previous
// 8*size+64 capacity allocated O(size^2) envelope slots across the
// world, which is ~26 GB of channel buffers at 10^4 ranks before a
// single message is sent. Senders to a full inbox park on the channel
// (credit-based backpressure); every collective here eventually drains
// its inbox, so bounded credit throttles pipelines without deadlock —
// no schedule sends more than a handful of messages to one peer before
// that peer receives.
const inboxCap = 16

// NewWorld creates a communicator with size ranks. Inboxes are bounded
// (see inboxCap), so the world costs O(size) memory: a send to a
// saturated rank blocks until the receiver drains credit.
func NewWorld(size int, cfg Config) *World {
	if size < 1 {
		panic("mpirt: world size must be >= 1")
	}
	w := &World{size: size, cfg: cfg, inboxes: make([]chan envelope, size)}
	for i := range w.inboxes {
		w.inboxes[i] = make(chan envelope, inboxCap)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run launches one goroutine per rank executing body and waits for all
// of them. A panicking rank aborts the run and is reported as an error.
func (w *World) Run(body func(r *Rank)) error {
	var wg sync.WaitGroup
	errs := make([]error, w.size)
	for id := 0; id < w.size; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("mpirt: rank %d panicked: %v", id, p)
				}
			}()
			body(&Rank{
				ID:   id,
				Size: w.size,
				w:    w,
				rng:  fpu.NewRNG(w.cfg.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15),
			})
		}(id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank is one process in the world; methods on it may only be called
// from within the goroutine Run assigned to it.
type Rank struct {
	ID, Size int
	w        *World
	pending  []envelope
	coll     int // per-rank collective sequence number
	rng      *fpu.RNG
}

// collective tags live above user tags; user tags must be >= 0.
const collTagBase = 1 << 30

func (r *Rank) nextCollTag() int {
	r.coll++
	return collTagBase + r.coll
}

// Send delivers payload to rank dst under the given tag (tag >= 0 for
// user messages). Jitter, if configured, delays the send.
func (r *Rank) Send(dst, tag int, payload any) {
	r.send(dst, tag, payload)
}

func (r *Rank) send(dst, tag int, payload any) {
	if dst < 0 || dst >= r.Size {
		panic(fmt.Sprintf("mpirt: send to invalid rank %d", dst))
	}
	if j := r.w.cfg.Jitter; j > 0 {
		jitterDelay(time.Duration(r.rng.Float64() * float64(j)))
	}
	r.w.inboxes[dst] <- envelope{src: r.ID, tag: tag, payload: payload}
}

// jitterDelay delays the caller for d. Short delays yield-spin instead
// of sleeping: timer granularity on a loaded host rounds a microsecond
// time.Sleep up to ~1ms, which would serialize pipelined schedules (a
// 10^4-hop chain becomes 10^4 timer ticks ≈ 10 s of wall clock).
// Yielding the goroutine until the deadline still perturbs scheduling
// order, which is all jitter exists to do.
func jitterDelay(d time.Duration) {
	if d >= 200*time.Microsecond {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. Other messages are buffered.
func (r *Rank) Recv(src, tag int) any {
	for i, e := range r.pending {
		if e.src == src && e.tag == tag {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return e.payload
		}
	}
	for {
		e := <-r.w.inboxes[r.ID]
		if e.src == src && e.tag == tag {
			return e.payload
		}
		r.pending = append(r.pending, e)
	}
}

// RecvAny blocks until a message with the given tag arrives from any
// source, returning the source and payload in arrival order.
func (r *Rank) RecvAny(tag int) (src int, payload any) {
	for i, e := range r.pending {
		if e.tag == tag {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return e.src, e.payload
		}
	}
	for {
		e := <-r.w.inboxes[r.ID]
		if e.tag == tag {
			return e.src, e.payload
		}
		r.pending = append(r.pending, e)
	}
}

// vertex returns this rank's position in a tree rooted at root.
func (r *Rank) vertex(root int) int { return (r.ID - root + r.Size) % r.Size }

// rankOf maps a tree vertex back to a rank id.
func (r *Rank) rankOf(v, root int) int { return (v + root) % r.Size }

// family returns the parent rank (-1 at the root) and child ranks of
// this rank in the given topology rooted at root.
func (r *Rank) family(topo Topology, root int) (parent int, children []int) {
	v := r.vertex(root)
	n := r.Size
	switch topo {
	case Binomial:
		if v == 0 {
			parent = -1
			for b := 1; b < n; b <<= 1 {
				children = append(children, r.rankOf(b, root))
			}
		} else {
			lsb := v & -v
			parent = r.rankOf(v-lsb, root)
			for b := 1; b < lsb; b <<= 1 {
				if v+b < n {
					children = append(children, r.rankOf(v+b, root))
				}
			}
		}
	case BinaryTree:
		if v == 0 {
			parent = -1
		} else {
			parent = r.rankOf((v-1)/2, root)
		}
		for _, c := range []int{2*v + 1, 2*v + 2} {
			if c < n {
				children = append(children, r.rankOf(c, root))
			}
		}
	case Chain:
		if v == 0 {
			parent = -1
		} else {
			parent = r.rankOf(v-1, root)
		}
		if v+1 < n {
			children = append(children, r.rankOf(v+1, root))
		}
	case Flat:
		if v == 0 {
			parent = -1
			for c := 1; c < n; c++ {
				children = append(children, r.rankOf(c, root))
			}
		} else {
			parent = r.rankOf(0, root)
		}
	default:
		panic("mpirt: invalid topology " + topo.String())
	}
	return parent, children
}

// Barrier synchronizes all ranks (binomial gather + broadcast).
func (r *Rank) Barrier() {
	tag := r.nextCollTag()
	parent, children := r.family(Binomial, 0)
	for _, c := range children {
		r.Recv(c, tag)
	}
	if parent >= 0 {
		r.send(parent, tag, nil)
		r.Recv(parent, tag)
	}
	for _, c := range children {
		r.send(c, tag, nil)
	}
}

// Broadcast distributes root's payload to every rank and returns it.
func (r *Rank) Broadcast(root int, payload any) any {
	tag := r.nextCollTag()
	parent, children := r.family(Binomial, root)
	if parent >= 0 {
		payload = r.Recv(parent, tag)
	}
	for _, c := range children {
		r.send(c, tag, payload)
	}
	return payload
}

// Gather collects each rank's payload at root, indexed by rank id.
// Non-root ranks receive nil.
func (r *Rank) Gather(root int, payload any) []any {
	tag := r.nextCollTag()
	if r.ID != root {
		r.send(root, tag, [2]any{r.ID, payload})
		return nil
	}
	out := make([]any, r.Size)
	out[root] = payload
	for i := 0; i < r.Size-1; i++ {
		_, p := r.RecvAny(tag)
		pair := p.([2]any)
		out[pair[0].(int)] = pair[1]
	}
	return out
}

// AllGather collects every rank's payload on every rank, indexed by
// rank id (gather to rank 0 + broadcast).
func (r *Rank) AllGather(payload any) []any {
	got := r.Gather(0, payload)
	res := r.Broadcast(0, got)
	return res.([]any)
}

// Scatter distributes items[i] from root to rank i and returns this
// rank's item. Only the root's items argument is consulted.
func (r *Rank) Scatter(root int, items []any) any {
	tag := r.nextCollTag()
	if r.ID == root {
		if len(items) != r.Size {
			panic(fmt.Sprintf("mpirt: Scatter needs %d items, got %d", r.Size, len(items)))
		}
		for dst := 0; dst < r.Size; dst++ {
			if dst != root {
				r.send(dst, tag, items[dst])
			}
		}
		return items[root]
	}
	return r.Recv(root, tag)
}

// Reduce combines each rank's local partial state up a reduction
// schedule and returns the final state at root (nil elsewhere). For
// tree topologies in FixedOrder mode every parent waits for all
// children and merges them in ascending rank order; in ArrivalOrder
// mode it merges them as they arrive. The schedule topologies
// (Rabenseifner, RSAllgather, DoubleTree) treat the state as a
// one-element vector: their merge order is fixed by the schedule, so
// they are deterministic in either mode (and bitwise identical to the
// trees for exactly-mergeable operators such as BN).
func (r *Rank) Reduce(root int, local reduce.State, op reduce.Op, topo Topology, mode Mode) reduce.State {
	if !topo.isTree() {
		states, ok := r.reduceStates(root, []reduce.State{local}, op, topo, mode, 1)
		if !ok {
			return nil
		}
		return states[0]
	}
	tag := r.nextCollTag()
	parent, children := r.family(topo, root)
	state := local
	switch mode {
	case FixedOrder:
		got := make([]struct {
			src int
			st  reduce.State
		}, 0, len(children))
		for range children {
			src, p := r.RecvAny(tag)
			got = append(got, struct {
				src int
				st  reduce.State
			}{src, p})
		}
		sort.Slice(got, func(i, j int) bool { return got[i].src < got[j].src })
		for _, g := range got {
			state = op.Merge(state, g.st)
		}
	case ArrivalOrder:
		for range children {
			_, p := r.RecvAny(tag)
			state = op.Merge(state, p)
		}
	default:
		panic("mpirt: invalid mode")
	}
	if parent >= 0 {
		r.send(parent, tag, state)
		return nil
	}
	return state
}

// AllReduce performs Reduce to rank 0 followed by a Broadcast of the
// final state, returning it on every rank.
func (r *Rank) AllReduce(local reduce.State, op reduce.Op, topo Topology, mode Mode) reduce.State {
	st := r.Reduce(0, local, op, topo, mode)
	return r.Broadcast(0, st)
}

// ReduceSum accumulates the rank's local values with op (leaf-by-leaf)
// and reduces the partial states globally, returning the finalized sum
// at root and NaN elsewhere.
func (r *Rank) ReduceSum(root int, local []float64, op reduce.Op, topo Topology, mode Mode) (float64, bool) {
	state := LocalState(op, local)
	st := r.Reduce(root, state, op, topo, mode)
	if st == nil {
		return 0, false
	}
	return op.Finalize(st), true
}

// LocalState folds a slice into a single partial state under op (the
// "local sum" phase executed by each rank before the global reduce).
func LocalState(op reduce.Op, xs []float64) reduce.State {
	if len(xs) == 0 {
		return op.Leaf(0)
	}
	st := op.Leaf(xs[0])
	for _, x := range xs[1:] {
		st = op.Merge(st, op.Leaf(x))
	}
	return st
}
