// Package wire implements "reprostate v1": a versioned, canonical
// binary encoding for the repo's mergeable reduction states — the
// binned (BN) engine's State, the exact superaccumulator, and the fused
// profile+speculative-sum accumulator. It is the substrate of the
// reduction-as-a-service layer (internal/aggsrv): ranks and clients
// ship partial states over the network, servers merge them in any
// arrival order, and the merge-order invariance of the underlying
// engines guarantees the result's bits.
//
// Canonical: a given state has exactly one encoding. The layout is
// fixed per kind — every field is a fixed-width little-endian word,
// floats are carried as their IEEE-754 bit patterns (so NaN payloads,
// -0, ±Inf, and denormals round-trip exactly), and booleans/flag bytes
// admit only their defined values — so encode→decode→re-encode is
// byte-identical, and any accepted byte string re-encodes to itself.
//
// Strict: decoding rejects, with a positioned error, anything that is
// not a canonical encoding of a reachable state — wrong magic, unknown
// versions, unknown kinds, a payload length that disagrees with the
// kind, truncation at any boundary, undefined flag bits, and counter
// or limb values outside the engines' documented invariants (validated
// by binned.Restore / superacc.Restore, so a forged renorm counter can
// never void the exactness headroom of subsequent deposits). Decoding
// arbitrary bytes never panics and never allocates beyond the fixed
// decoded state itself.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/binned"
	"repro/internal/kernel"
	"repro/internal/superacc"
)

// Version is the encoding version this package writes and accepts.
const Version = 1

// magic opens every frame: "RPST" (reprostate).
var magic = [4]byte{'R', 'P', 'S', 'T'}

// HeaderSize is the fixed frame header: magic, version byte, kind byte,
// and the payload length as a little-endian uint16.
const HeaderSize = 8

// Kind identifies the encoded state type.
type Kind uint8

const (
	// KindBinned is a binned.State (BN partial sum).
	KindBinned Kind = 1
	// KindSuperacc is a superacc.Acc (exact partial sum).
	KindSuperacc Kind = 2
	// KindFused is a kernel.FusedAcc (profile + speculative sums).
	KindFused Kind = 3
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindBinned:
		return "binned"
	case KindSuperacc:
		return "superacc"
	case KindFused:
		return "fused-profile"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Payload sizes per kind. Every field is 8 bytes except the trailing
// flags byte.
const (
	binnedPayload   = binned.StateSlots*8 + 4*8 + 1 // bins, count, pend, posInf, negInf, flags
	superaccPayload = superacc.Limbs*8 + 8 + 1      // limbs, pending, flags
	fusedPayload    = 10*8 + 1                      // n, st, sumS, sumC, absS, absC, maxExp, minExp, pos, neg, flags
)

// Decoding errors. ErrTruncated distinguishes "need more bytes" from
// corruption, so stream readers can grow their buffer instead of
// dropping the connection.
var (
	ErrTruncated = errors.New("wire: truncated reprostate frame")
	ErrMagic     = errors.New("wire: bad magic (not a reprostate frame)")
	ErrVersion   = errors.New("wire: unknown reprostate version")
	ErrKind      = errors.New("wire: unknown reprostate kind")
	ErrCorrupt   = errors.New("wire: corrupt reprostate frame")
)

// payloadSize returns the fixed payload length for a kind, or 0 for an
// unknown kind.
func payloadSize(k Kind) int {
	switch k {
	case KindBinned:
		return binnedPayload
	case KindSuperacc:
		return superaccPayload
	case KindFused:
		return fusedPayload
	}
	return 0
}

// EncodedSize returns the total frame length (header + payload) for a
// kind, or 0 for an unknown kind.
func EncodedSize(k Kind) int {
	if n := payloadSize(k); n > 0 {
		return HeaderSize + n
	}
	return 0
}

// Peek validates the frame header at the start of b and returns the
// kind and total frame length without decoding the payload. It rejects
// bad magic, unknown versions and kinds, a length field that disagrees
// with the kind's fixed layout, and truncation (b shorter than the
// header, or than the declared frame).
func Peek(b []byte) (Kind, int, error) {
	if len(b) < HeaderSize {
		return 0, 0, ErrTruncated
	}
	if [4]byte(b[:4]) != magic {
		return 0, 0, ErrMagic
	}
	if b[4] != Version {
		return 0, 0, fmt.Errorf("%w %d", ErrVersion, b[4])
	}
	k := Kind(b[5])
	want := payloadSize(k)
	if want == 0 {
		return 0, 0, fmt.Errorf("%w %d", ErrKind, b[5])
	}
	if got := int(binary.LittleEndian.Uint16(b[6:8])); got != want {
		return 0, 0, fmt.Errorf("%w: %s payload length %d, want %d", ErrCorrupt, k, got, want)
	}
	if len(b) < HeaderSize+want {
		return 0, 0, ErrTruncated
	}
	return k, HeaderSize + want, nil
}

// appendHeader writes the frame header for kind k.
func appendHeader(dst []byte, k Kind) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, Version, byte(k))
	return binary.LittleEndian.AppendUint16(dst, uint16(payloadSize(k)))
}

// AppendBinned appends the canonical encoding of a binned state
// snapshot to dst and returns the extended slice.
func AppendBinned(dst []byte, s *binned.Snapshot) []byte {
	dst = appendHeader(dst, KindBinned)
	for _, v := range s.Bins {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Count))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Pend))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.PosInf))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.NegInf))
	return append(dst, boolByte(s.NaN))
}

// DecodeBinned decodes one binned frame from the start of b, returning
// the restored state and the number of bytes consumed. The state is
// validated (binned.Restore), so it is safe to merge and deposit into.
func DecodeBinned(b []byte) (binned.State, int, error) {
	k, n, err := Peek(b)
	if err != nil {
		return binned.State{}, 0, err
	}
	if k != KindBinned {
		return binned.State{}, 0, fmt.Errorf("%w: have %s, want binned", ErrCorrupt, k)
	}
	p := b[HeaderSize:n]
	var s binned.Snapshot
	for i := range s.Bins {
		s.Bins[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
	}
	off := len(s.Bins) * 8
	s.Count = int64(binary.LittleEndian.Uint64(p[off:]))
	s.Pend = int64(binary.LittleEndian.Uint64(p[off+8:]))
	s.PosInf = int64(binary.LittleEndian.Uint64(p[off+16:]))
	s.NegInf = int64(binary.LittleEndian.Uint64(p[off+24:]))
	nan, err := decodeBool(p[off+32])
	if err != nil {
		return binned.State{}, 0, err
	}
	s.NaN = nan
	st, err := binned.Restore(s)
	if err != nil {
		return binned.State{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return st, n, nil
}

// AppendSuperacc appends the canonical encoding of a superaccumulator
// snapshot to dst and returns the extended slice.
func AppendSuperacc(dst []byte, s *superacc.Snapshot) []byte {
	dst = appendHeader(dst, KindSuperacc)
	for _, v := range s.Limbs {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(s.Pending))
	return append(dst, boolByte(s.NaN))
}

// DecodeSuperacc decodes one superaccumulator frame from the start of
// b, returning the restored accumulator and the bytes consumed.
func DecodeSuperacc(b []byte) (superacc.Acc, int, error) {
	k, n, err := Peek(b)
	if err != nil {
		return superacc.Acc{}, 0, err
	}
	if k != KindSuperacc {
		return superacc.Acc{}, 0, fmt.Errorf("%w: have %s, want superacc", ErrCorrupt, k)
	}
	p := b[HeaderSize:n]
	var s superacc.Snapshot
	for i := range s.Limbs {
		s.Limbs[i] = int64(binary.LittleEndian.Uint64(p[i*8:]))
	}
	off := len(s.Limbs) * 8
	s.Pending = int64(binary.LittleEndian.Uint64(p[off:]))
	nan, err := decodeBool(p[off+8])
	if err != nil {
		return superacc.Acc{}, 0, err
	}
	s.NaN = nan
	acc, err := superacc.Restore(s)
	if err != nil {
		return superacc.Acc{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return acc, n, nil
}

// Fused-profile flag bits. Undefined bits must be zero.
const (
	fusedHasNonzero = 1 << 0
	fusedNonFinite  = 1 << 1
)

// AppendFused appends the canonical encoding of a fused profile+sum
// accumulator to dst and returns the extended slice.
func AppendFused(dst []byte, a *kernel.FusedAcc) []byte {
	dst = appendHeader(dst, KindFused)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.N))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.ST))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.SumS))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.SumC))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.AbsS))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(a.AbsC))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(a.MaxExp)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(int64(a.MinExp)))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Pos))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(a.Neg))
	var flags byte
	if a.HasNonzero {
		flags |= fusedHasNonzero
	}
	if a.NonFinite {
		flags |= fusedNonFinite
	}
	return append(dst, flags)
}

// DecodeFused decodes one fused-profile frame from the start of b,
// returning the accumulator and the bytes consumed. The profile
// invariants are validated: counts non-negative and consistent, binary
// exponents inside the float64 range, and the zero-observation
// normal form (no nonzero seen => exponents and sign counts are zero,
// exactly as the fold and Merge maintain them).
func DecodeFused(b []byte) (kernel.FusedAcc, int, error) {
	k, n, err := Peek(b)
	if err != nil {
		return kernel.FusedAcc{}, 0, err
	}
	if k != KindFused {
		return kernel.FusedAcc{}, 0, fmt.Errorf("%w: have %s, want fused-profile", ErrCorrupt, k)
	}
	p := b[HeaderSize:n]
	var a kernel.FusedAcc
	a.N = int64(binary.LittleEndian.Uint64(p[0:]))
	a.ST = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	a.SumS = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
	a.SumC = math.Float64frombits(binary.LittleEndian.Uint64(p[24:]))
	a.AbsS = math.Float64frombits(binary.LittleEndian.Uint64(p[32:]))
	a.AbsC = math.Float64frombits(binary.LittleEndian.Uint64(p[40:]))
	a.MaxExp = int(int64(binary.LittleEndian.Uint64(p[48:])))
	a.MinExp = int(int64(binary.LittleEndian.Uint64(p[56:])))
	a.Pos = int64(binary.LittleEndian.Uint64(p[64:]))
	a.Neg = int64(binary.LittleEndian.Uint64(p[72:]))
	flags := p[80]
	if flags&^(fusedHasNonzero|fusedNonFinite) != 0 {
		return kernel.FusedAcc{}, 0, fmt.Errorf("%w: undefined fused flag bits %#x", ErrCorrupt, flags)
	}
	a.HasNonzero = flags&fusedHasNonzero != 0
	a.NonFinite = flags&fusedNonFinite != 0
	if err := validateFused(&a); err != nil {
		return kernel.FusedAcc{}, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return a, n, nil
}

// validateFused checks the invariants every fold- or merge-produced
// accumulator satisfies.
func validateFused(a *kernel.FusedAcc) error {
	if a.N < 0 || a.Pos < 0 || a.Neg < 0 {
		return fmt.Errorf("negative count (n=%d pos=%d neg=%d)", a.N, a.Pos, a.Neg)
	}
	if a.Pos+a.Neg > a.N || a.Pos+a.Neg < 0 {
		return fmt.Errorf("sign counts %d+%d exceed n=%d", a.Pos, a.Neg, a.N)
	}
	if a.HasNonzero {
		if a.Pos+a.Neg == 0 {
			return errors.New("HasNonzero with zero sign counts")
		}
		if a.MinExp > a.MaxExp || a.MinExp < -1074 || a.MaxExp > 1023 {
			return fmt.Errorf("exponent range [%d, %d] outside float64", a.MinExp, a.MaxExp)
		}
	} else if a.MaxExp != 0 || a.MinExp != 0 || a.Pos != 0 || a.Neg != 0 {
		return errors.New("zero-observation state with nonzero exponents or sign counts")
	}
	return nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// decodeBool admits only the canonical encodings 0 and 1, so a decoded
// frame always re-encodes to the same bytes.
func decodeBool(b byte) (bool, error) {
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("%w: non-canonical bool byte %#x", ErrCorrupt, b)
}
