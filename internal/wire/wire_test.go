package wire

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/binned"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/superacc"
)

// corpusInputs are the adversarial operand sets the round-trip corpus
// states are built from: specials (NaN/±Inf/-0), denormals, huge
// top-window values, cancellation, and a renorm-boundary bulk stream.
func corpusInputs() [][]float64 {
	bulk := make([]float64, binned.MaxPend+17) // crosses the BN carry schedule
	for i := range bulk {
		bulk[i] = float64(i%1009) * 0x1p-25
	}
	return [][]float64{
		nil,
		{0},
		{math.Copysign(0, -1)},
		{1, -1},
		{0x1p-1074, -0x1p-1070, 0x1p-1040},
		{math.Inf(1)},
		{math.Inf(-1), math.Inf(-1)},
		{math.Inf(1), math.Inf(-1)},
		{math.NaN()},
		{math.NaN(), 1, math.Inf(1)},
		{0x1.fffffffffffffp1023, 0x1p1000, -0x1p990},
		{0x1.fffffffffffffp1023, 0x1.fffffffffffffp1023}, // overflows finalize
		gen.Spec{N: 5000, Cond: 1e12, DynRange: 40, Seed: 7}.Generate(),
		gen.SumZeroSeries(4096, 32, 9),
		bulk,
	}
}

// binnedCorpus builds one BN state per corpus input (plus merged and
// specials-heavy combinations).
func binnedCorpus() []*binned.State {
	var out []*binned.State
	for _, xs := range corpusInputs() {
		st := new(binned.State)
		st.AddSlice(xs)
		out = append(out, st)
	}
	merged := new(binned.State)
	for _, st := range out {
		merged.Merge(st)
	}
	out = append(out, merged)
	return out
}

func superaccCorpus() []*superacc.Acc {
	var out []*superacc.Acc
	for _, xs := range corpusInputs() {
		a := new(superacc.Acc)
		a.AddSlice(xs)
		out = append(out, a)
	}
	scaled := new(superacc.Acc)
	scaled.AddLdexp(0x1.8p40, 512)
	scaled.AddLdexp(-0x1p-30, 512)
	out = append(out, scaled)
	return out
}

func fusedCorpus() []kernel.FusedAcc {
	var out []kernel.FusedAcc
	for _, xs := range corpusInputs() {
		out = append(out, kernel.FusedProfileSum(xs))
	}
	m := out[0]
	for _, a := range out[1:] {
		m = m.Merge(a)
	}
	return append(out, m)
}

// TestWireRoundTripBinned: encode→decode→re-encode is byte-identical
// for every corpus state, and the decoded state is field-for-field the
// original.
func TestWireRoundTripBinned(t *testing.T) {
	for i, st := range binnedCorpus() {
		snap := st.Snapshot()
		enc := AppendBinned(nil, &snap)
		if len(enc) != EncodedSize(KindBinned) {
			t.Fatalf("state %d: encoded %d bytes, want %d", i, len(enc), EncodedSize(KindBinned))
		}
		dec, n, err := DecodeBinned(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("state %d: decode failed: n=%d err=%v", i, n, err)
		}
		ds := dec.Snapshot()
		if ds != snap {
			// Bins with NaN payloads compare unequal via ==; fall back
			// to the bit comparison.
			if !snapshotsBitEqual(&ds, &snap) {
				t.Fatalf("state %d: decoded snapshot differs", i)
			}
		}
		if math.Float64bits(dec.Finalize()) != math.Float64bits(st.Finalize()) {
			t.Fatalf("state %d: Finalize bits differ after round-trip", i)
		}
		re := AppendBinned(nil, &ds)
		if !bytes.Equal(re, enc) {
			t.Fatalf("state %d: re-encode not byte-identical", i)
		}
	}
}

func snapshotsBitEqual(a, b *binned.Snapshot) bool {
	for i := range a.Bins {
		if math.Float64bits(a.Bins[i]) != math.Float64bits(b.Bins[i]) {
			return false
		}
	}
	return a.Count == b.Count && a.Pend == b.Pend &&
		a.PosInf == b.PosInf && a.NegInf == b.NegInf && a.NaN == b.NaN
}

// TestWireRoundTripSuperacc mirrors the BN pin for the exact
// superaccumulator.
func TestWireRoundTripSuperacc(t *testing.T) {
	for i, a := range superaccCorpus() {
		snap := a.Snapshot()
		enc := AppendSuperacc(nil, &snap)
		if len(enc) != EncodedSize(KindSuperacc) {
			t.Fatalf("acc %d: encoded %d bytes, want %d", i, len(enc), EncodedSize(KindSuperacc))
		}
		dec, n, err := DecodeSuperacc(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("acc %d: decode failed: n=%d err=%v", i, n, err)
		}
		ds := dec.Snapshot()
		if ds != snap {
			t.Fatalf("acc %d: decoded snapshot differs", i)
		}
		if math.Float64bits(dec.Float64()) != math.Float64bits(a.Float64()) {
			t.Fatalf("acc %d: Float64 bits differ after round-trip", i)
		}
		// Float64 normalizes; re-snapshot the pristine decode.
		dec2, _, _ := DecodeSuperacc(enc)
		s2 := dec2.Snapshot()
		re := AppendSuperacc(nil, &s2)
		if !bytes.Equal(re, enc) {
			t.Fatalf("acc %d: re-encode not byte-identical", i)
		}
	}
}

// TestWireRoundTripFused mirrors the pin for the fused profile state.
func TestWireRoundTripFused(t *testing.T) {
	for i, a := range fusedCorpus() {
		enc := AppendFused(nil, &a)
		if len(enc) != EncodedSize(KindFused) {
			t.Fatalf("acc %d: encoded %d bytes, want %d", i, len(enc), EncodedSize(KindFused))
		}
		dec, n, err := DecodeFused(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("acc %d: decode failed: n=%d err=%v", i, n, err)
		}
		re := AppendFused(nil, &dec)
		if !bytes.Equal(re, enc) {
			t.Fatalf("acc %d: re-encode not byte-identical", i)
		}
		if math.Float64bits(dec.ST) != math.Float64bits(a.ST) ||
			math.Float64bits(dec.SumS) != math.Float64bits(a.SumS) ||
			math.Float64bits(dec.SumC) != math.Float64bits(a.SumC) {
			t.Fatalf("acc %d: speculative sums differ after round-trip", i)
		}
	}
}

// TestWireMergePin: merging decoded states is bitwise-identical to
// merging the in-memory originals — the property the aggregation
// server's correctness rests on.
func TestWireMergePin(t *testing.T) {
	states := binnedCorpus()
	for i := range states {
		for j := range states {
			ref := *states[i]
			ref.Merge(states[j])

			ei := AppendBinned(nil, ptrSnap(states[i]))
			ej := AppendBinned(nil, ptrSnap(states[j]))
			di, _, err := DecodeBinned(ei)
			if err != nil {
				t.Fatal(err)
			}
			dj, _, err := DecodeBinned(ej)
			if err != nil {
				t.Fatal(err)
			}
			di.Merge(&dj)

			rs, ds := ref.Snapshot(), di.Snapshot()
			if !snapshotsBitEqual(&ds, &rs) {
				t.Fatalf("merge(%d, %d): decoded merge differs from in-memory merge", i, j)
			}
			if math.Float64bits(ref.Finalize()) != math.Float64bits(di.Finalize()) {
				t.Fatalf("merge(%d, %d): Finalize bits differ", i, j)
			}
		}
	}

	// Superacc merge pin over a smaller cross product.
	accs := superaccCorpus()
	for i := 0; i < len(accs); i += 3 {
		for j := 1; j < len(accs); j += 4 {
			ref := *accs[i]
			arg := *accs[j] // Merge normalizes a copy; keep corpus pristine
			ref.Merge(&arg)
			si, sj := accs[i].Snapshot(), accs[j].Snapshot()
			di, _, err := DecodeSuperacc(AppendSuperacc(nil, &si))
			if err != nil {
				t.Fatal(err)
			}
			dj, _, err := DecodeSuperacc(AppendSuperacc(nil, &sj))
			if err != nil {
				t.Fatal(err)
			}
			di.Merge(&dj)
			if math.Float64bits(ref.Float64()) != math.Float64bits(di.Float64()) {
				t.Fatalf("superacc merge(%d, %d): Float64 bits differ", i, j)
			}
		}
	}

	// Fused merge pin.
	fused := fusedCorpus()
	for i := 0; i < len(fused); i += 2 {
		for j := 1; j < len(fused); j += 3 {
			ref := fused[i].Merge(fused[j])
			di, _, err := DecodeFused(AppendFused(nil, &fused[i]))
			if err != nil {
				t.Fatal(err)
			}
			dj, _, err := DecodeFused(AppendFused(nil, &fused[j]))
			if err != nil {
				t.Fatal(err)
			}
			got := di.Merge(dj)
			if AppendFused(nil, &got) == nil || !bytes.Equal(AppendFused(nil, &got), AppendFused(nil, &ref)) {
				t.Fatalf("fused merge(%d, %d): decoded merge differs", i, j)
			}
		}
	}
}

// TestWireRejectsTruncation: every proper prefix of a valid frame is
// rejected with ErrTruncated — at every byte boundary, not just the
// header.
func TestWireRejectsTruncation(t *testing.T) {
	var st binned.State
	st.AddSlice([]float64{1, -2.5, 0x1p-1074, math.Inf(1)})
	snap := st.Snapshot()
	frames := [][]byte{AppendBinned(nil, &snap)}

	var a superacc.Acc
	a.Add(3.25)
	as := a.Snapshot()
	frames = append(frames, AppendSuperacc(nil, &as))

	f := kernel.FusedProfileSum([]float64{1, 2, -3})
	frames = append(frames, AppendFused(nil, &f))

	for fi, frame := range frames {
		for i := 0; i < len(frame); i++ {
			if _, _, err := Peek(frame[:i]); err == nil {
				t.Fatalf("frame %d: Peek accepted a %d-byte prefix of %d", fi, i, len(frame))
			}
			var err error
			switch fi {
			case 0:
				_, _, err = DecodeBinned(frame[:i])
			case 1:
				_, _, err = DecodeSuperacc(frame[:i])
			case 2:
				_, _, err = DecodeFused(frame[:i])
			}
			if err == nil {
				t.Fatalf("frame %d: decode accepted a %d-byte prefix of %d", fi, i, len(frame))
			}
		}
	}
}

// TestWireRejectsCorruption: unknown versions and kinds, bad magic, a
// disagreeing length field, non-canonical flag bytes, and invariant
// violations are all rejected.
func TestWireRejectsCorruption(t *testing.T) {
	var st binned.State
	st.AddSlice([]float64{1, 2, 3})
	snap := st.Snapshot()
	good := AppendBinned(nil, &snap)

	mutate := func(mut func([]byte)) []byte {
		b := bytes.Clone(good)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' })},
		{"future version", mutate(func(b []byte) { b[4] = 2 })},
		{"version zero", mutate(func(b []byte) { b[4] = 0 })},
		{"unknown kind", mutate(func(b []byte) { b[5] = 99 })},
		{"kind zero", mutate(func(b []byte) { b[5] = 0 })},
		{"length field low", mutate(func(b []byte) { b[6] = 1; b[7] = 0 })},
		{"length field high", mutate(func(b []byte) { b[6] = 0xff; b[7] = 0xff })},
		{"non-canonical nan byte", mutate(func(b []byte) { b[len(b)-1] = 2 })},
		{"negative count", mutate(func(b []byte) {
			off := HeaderSize + binned.StateSlots*8
			for i := 0; i < 8; i++ {
				b[off+i] = 0xff
			}
		})},
		{"forged pend", mutate(func(b []byte) {
			off := HeaderSize + binned.StateSlots*8 + 8
			b[off+3] = 0x7f // pend ~ 2^27+ >= MaxPend
		})},
	}
	for _, tc := range cases {
		if _, _, err := DecodeBinned(tc.b); err == nil {
			t.Errorf("%s: DecodeBinned accepted corrupt frame", tc.name)
		}
	}

	// A kind mismatch against the typed decoder is rejected even though
	// the frame itself is valid.
	var acc superacc.Acc
	acc.Add(1)
	as := acc.Snapshot()
	saFrame := AppendSuperacc(nil, &as)
	if _, _, err := DecodeBinned(saFrame); err == nil {
		t.Error("DecodeBinned accepted a superacc frame")
	}
	if _, _, err := DecodeSuperacc(good); err == nil {
		t.Error("DecodeSuperacc accepted a binned frame")
	}
	if _, _, err := DecodeFused(good); err == nil {
		t.Error("DecodeFused accepted a binned frame")
	}
}

func ptrSnap(st *binned.State) *binned.Snapshot {
	s := st.Snapshot()
	return &s
}
