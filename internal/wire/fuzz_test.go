package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/binned"
	"repro/internal/kernel"
	"repro/internal/superacc"
)

// checkDecodeProperties is the fuzz property, shared by the fuzz target
// and the deterministic corpus replay: decoding arbitrary bytes must
// never panic (the harness catches that), a successful Peek must agree
// with the typed decoders, and any accepted frame must re-encode
// byte-identically to the bytes that were consumed — the canonicality
// contract.
func checkDecodeProperties(t *testing.T, data []byte) {
	t.Helper()
	k, n, err := Peek(data)
	if err != nil {
		// Rejected input: the typed decoders must reject it too (they
		// all begin with the same header check).
		if _, _, err := DecodeBinned(data); err == nil {
			t.Fatal("Peek rejected but DecodeBinned accepted")
		}
		if _, _, err := DecodeSuperacc(data); err == nil {
			t.Fatal("Peek rejected but DecodeSuperacc accepted")
		}
		if _, _, err := DecodeFused(data); err == nil {
			t.Fatal("Peek rejected but DecodeFused accepted")
		}
		return
	}
	if n < HeaderSize || n > len(data) {
		t.Fatalf("Peek returned frame length %d outside [%d, %d]", n, HeaderSize, len(data))
	}
	switch k {
	case KindBinned:
		st, dn, err := DecodeBinned(data)
		if err != nil {
			return // header fine, payload violates a state invariant
		}
		if dn != n {
			t.Fatalf("DecodeBinned consumed %d, Peek said %d", dn, n)
		}
		s := st.Snapshot()
		if re := AppendBinned(nil, &s); !bytes.Equal(re, data[:n]) {
			t.Fatal("accepted binned frame does not re-encode byte-identically")
		}
	case KindSuperacc:
		acc, dn, err := DecodeSuperacc(data)
		if err != nil {
			return
		}
		if dn != n {
			t.Fatalf("DecodeSuperacc consumed %d, Peek said %d", dn, n)
		}
		s := acc.Snapshot()
		if re := AppendSuperacc(nil, &s); !bytes.Equal(re, data[:n]) {
			t.Fatal("accepted superacc frame does not re-encode byte-identically")
		}
	case KindFused:
		fa, dn, err := DecodeFused(data)
		if err != nil {
			return
		}
		if dn != n {
			t.Fatalf("DecodeFused consumed %d, Peek said %d", dn, n)
		}
		if re := AppendFused(nil, &fa); !bytes.Equal(re, data[:n]) {
			t.Fatal("accepted fused frame does not re-encode byte-identically")
		}
	default:
		t.Fatalf("Peek returned unknown kind %d", k)
	}
}

// seedFrames builds the in-code seed corpus: one valid frame per kind
// (specials included) plus targeted corruptions.
func seedFrames() [][]byte {
	var st binned.State
	st.AddSlice([]float64{1, -0x1p-1074, 6.5e300, 0})
	var poisoned binned.State
	poisoned.AddSlice([]float64{0 * 1, 1})
	poisoned.Add(0x1p1023)
	ss, ps := st.Snapshot(), poisoned.Snapshot()

	var acc superacc.Acc
	acc.AddSlice([]float64{0x1p-1074, -1e308})
	as := acc.Snapshot()

	fa := kernel.FusedProfileSum([]float64{3, -4, 0x1p-1050})

	frames := [][]byte{
		AppendBinned(nil, &ss),
		AppendBinned(nil, &ps),
		AppendSuperacc(nil, &as),
		AppendFused(nil, &fa),
	}
	// Corrupted variants: flipped version, kind, flags, and a torn tail.
	for _, f := range frames[:4] {
		v := bytes.Clone(f)
		v[4] = 7
		frames = append(frames, v)
		k := bytes.Clone(f)
		k[5] ^= 0x5a
		frames = append(frames, k)
		fl := bytes.Clone(f)
		fl[len(fl)-1] = 0xff
		frames = append(frames, fl)
		frames = append(frames, f[:len(f)-3], f[:HeaderSize], f[:3])
	}
	return frames
}

// FuzzWireDecode fuzzes the reprostate decoder: arbitrary bytes must
// never panic or allocate unbounded memory (the layout is fixed-size by
// construction), and every accepted frame must re-encode
// byte-identically. The seed corpus below is doubled by the checked-in
// files under testdata/fuzz/FuzzWireDecode, which the normal test suite
// replays deterministically (go test runs all seeds even without
// -fuzz; TestFuzzCorpusReplay additionally pins the files explicitly).
func FuzzWireDecode(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		checkDecodeProperties(t, data)
	})
}

// TestFuzzCorpusReplay replays the checked-in fuzz corpus files through
// the decode property deterministically, so the corpus keeps failing
// loudly if it ever goes stale or the property regresses — independent
// of the go test fuzz plumbing.
func TestFuzzCorpusReplay(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(ents) == 0 {
		t.Fatal("seed corpus directory is empty")
	}
	for _, e := range ents {
		data, err := parseCorpusFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		t.Run(e.Name(), func(t *testing.T) {
			checkDecodeProperties(t, data)
		})
	}
}

// parseCorpusFile reads one go-fuzz corpus file ("go test fuzz v1"
// followed by a []byte literal).
func parseCorpusFile(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)
	if len(lines) != 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, fmt.Errorf("not a go fuzz v1 corpus file")
	}
	body := strings.TrimSpace(lines[1])
	const pre, post = `[]byte(`, `)`
	if !strings.HasPrefix(body, pre) || !strings.HasSuffix(body, post) {
		return nil, fmt.Errorf("unexpected corpus entry %q", body)
	}
	s, err := strconv.Unquote(body[len(pre) : len(body)-len(post)])
	if err != nil {
		return nil, fmt.Errorf("unquoting corpus entry: %v", err)
	}
	return []byte(s), nil
}
