// Package bigref provides arbitrary-precision reference sums and
// error-vs-reference helpers. The paper computed its reference sums in
// quad-double precision with GNU MPFR; we use math/big.Float at 256 bits
// (>= quad-double) and, where exactness matters, the superacc package.
package bigref

import (
	"math"
	"math/big"

	"repro/internal/superacc"
)

// Prec is the working precision in bits (four times binary64's 53-bit
// significand, rounded up — strictly more than quad-double).
//
// Adequacy bound: a running 256-bit sum represents every partial sum
// exactly as long as dynamicRange + 53 + log2(n) <= 256; beyond that
// (e.g. operands spanning more than ~180 bits with heavy cancellation)
// use the exact superaccumulator oracle (SumFloat64 / superacc.Acc)
// instead. The paper's quad-double MPFR reference has the same class of
// limit at half this width.
const Prec = 256

// Sum returns the sum of xs computed in Prec-bit precision.
func Sum(xs []float64) *big.Float {
	acc := new(big.Float).SetPrec(Prec)
	t := new(big.Float).SetPrec(Prec)
	for _, x := range xs {
		acc.Add(acc, t.SetFloat64(x))
	}
	return acc
}

// SumFloat64 returns the reference sum rounded to float64. For pure
// float64 inputs this equals the exact, correctly rounded sum.
func SumFloat64(xs []float64) float64 {
	return superacc.Sum(xs)
}

// AbsSum returns sum(|x|) in Prec-bit precision.
func AbsSum(xs []float64) *big.Float {
	acc := new(big.Float).SetPrec(Prec)
	t := new(big.Float).SetPrec(Prec)
	for _, x := range xs {
		t.SetFloat64(x)
		acc.Add(acc, t.Abs(t))
	}
	return acc
}

// Err returns |computed - reference| as a float64, where reference is an
// arbitrary-precision value. This is the error magnitude plotted
// throughout the paper's figures.
func Err(computed float64, reference *big.Float) float64 {
	if math.IsNaN(computed) || math.IsInf(computed, 0) {
		return math.Inf(1)
	}
	d := new(big.Float).SetPrec(Prec).SetFloat64(computed)
	d.Sub(d, reference)
	d.Abs(d)
	f, _ := d.Float64()
	return f
}

// ErrVsExact returns |computed - exactSum(xs)| using the exact
// superaccumulator as the oracle.
func ErrVsExact(computed float64, xs []float64) float64 {
	var a superacc.Acc
	a.AddSlice(xs)
	ref := a.BigFloat(2200)
	if ref == nil {
		return math.Inf(1)
	}
	return Err(computed, ref)
}

// RelErr returns |computed - reference| / |reference|, or the absolute
// error when the reference is zero.
func RelErr(computed float64, reference *big.Float) float64 {
	e := Err(computed, reference)
	if reference.Sign() == 0 {
		return e
	}
	r := new(big.Float).SetPrec(Prec).Abs(reference)
	rf, _ := r.Float64()
	return e / rf
}
