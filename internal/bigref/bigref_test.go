package bigref

import (
	"math"
	"testing"

	"repro/internal/fpu"
)

func TestSumMatchesExactOracle(t *testing.T) {
	r := fpu.NewRNG(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = math.Ldexp(r.Float64()*2-1, r.Intn(80)-40)
	}
	bf := Sum(xs)
	f, _ := bf.Float64()
	if f != SumFloat64(xs) {
		t.Errorf("big.Float sum %g disagrees with exact oracle %g", f, SumFloat64(xs))
	}
}

func TestErrZeroForExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ref := Sum(xs)
	if e := Err(10, ref); e != 0 {
		t.Errorf("Err(exact) = %g, want 0", e)
	}
	if e := Err(10.5, ref); e != 0.5 {
		t.Errorf("Err(10.5) = %g, want 0.5", e)
	}
}

func TestErrNaNInf(t *testing.T) {
	ref := Sum([]float64{1})
	if !math.IsInf(Err(math.NaN(), ref), 1) {
		t.Error("NaN should map to +Inf error")
	}
	if !math.IsInf(Err(math.Inf(-1), ref), 1) {
		t.Error("Inf should map to +Inf error")
	}
}

func TestAbsSum(t *testing.T) {
	f, _ := AbsSum([]float64{1, -2, 3, -4}).Float64()
	if f != 10 {
		t.Errorf("AbsSum = %g, want 10", f)
	}
}

func TestRelErr(t *testing.T) {
	ref := Sum([]float64{4})
	if got := RelErr(5, ref); got != 0.25 {
		t.Errorf("RelErr = %g, want 0.25", got)
	}
	zero := Sum(nil)
	if got := RelErr(0.5, zero); got != 0.5 {
		t.Errorf("RelErr vs zero ref = %g, want absolute 0.5", got)
	}
}

func TestErrVsExactCancellingSet(t *testing.T) {
	xs := []float64{1e16, 1, -1e16}
	// Standard left-to-right summation loses the 1.
	st := (xs[0] + xs[1]) + xs[2]
	e := ErrVsExact(st, xs)
	if e != 1 {
		t.Errorf("expected error 1 from absorbed term, got %g", e)
	}
}
