// Package aggsrv implements reduction-as-a-service: a long-lived TCP
// aggregation server that accepts streaming deposit batches from many
// concurrent clients and folds them into named reproducible binned
// accumulators. Because binned deposits and merges are exact, the
// finalized bits of every key are invariant under arrival order,
// connection count, and batch sizing — the server inherits the
// reproducibility contract from the accumulator, not from any ordering
// discipline on the network.
//
// Wire protocol (all integers little-endian):
//
//	frame    := len:uint32 body
//	body     := op:byte rest
//	op 'D'   := keyLen:uint16 key raw-float64-bits*   (deposit scalars, no reply)
//	op 'S'   := keyLen:uint16 key reprostate-v1-frame (deposit an encoded
//	            binned state, merged exactly; no reply)
//	op 'F'   := (flush barrier; reply 'A' once every prior frame on this
//	            connection has been applied)
//	op 'Q'   := keyLen:uint16 key (snapshot; reply 'R' value-bits:uint64
//	            reprostate-v1-frame of a consistent copy)
//	reply 'E':= utf8 message (protocol error; connection closes after)
//
// Frames on one connection are applied in order; frames from different
// connections interleave arbitrarily. Deposits are fire-and-forget:
// an 'A' ack to a flush guarantees every deposit sent before it is
// folded in, which is the only ordering a caller can rely on.
//
// Accumulators live in a power-of-two slab of shards keyed by FNV-1a of
// the key, each shard guarded by its own mutex, so deposits to
// different keys (and snapshots of one key) do not stall traffic on
// other shards. Large batches are pre-folded into a per-connection
// scratch state outside the lock and applied with a single exact Merge,
// keeping lock hold times O(bins) instead of O(batch).
package aggsrv

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/binned"
	"repro/internal/wire"
)

// Protocol op and reply bytes.
const (
	opDeposit = 'D'
	opState   = 'S'
	opFlush   = 'F'
	opSnap    = 'Q'

	repAck  = 'A'
	repSnap = 'R'
	repErr  = 'E'
)

// coalesceMin is the batch size above which a deposit is pre-folded
// into the connection's scratch state outside the shard lock and
// applied with one Merge. Below it, holding the lock for a direct
// AddSlice is cheaper than paying a 68-slot merge.
const coalesceMin = 64

// Config parameterizes a Server. The zero value is usable: every field
// has a sane default applied by New.
type Config struct {
	// Shards is the number of accumulator shards; rounded up to a
	// power of two. Default 16.
	Shards int
	// MaxFrame bounds the accepted frame body length in bytes.
	// Default 1 MiB (≈128k scalars per deposit frame).
	MaxFrame int
	// MaxKeyLen bounds accumulator key length. Default 255.
	MaxKeyLen int
	// ReadTimeout is the per-frame read deadline; zero means no
	// deadline.
	ReadTimeout time.Duration
	// WriteTimeout is the per-reply write deadline; zero means no
	// deadline.
	WriteTimeout time.Duration
}

func (c *Config) sanitize() {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	// Round up to a power of two so shard selection is a mask.
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MaxFrame <= 0 {
		c.MaxFrame = 1 << 20
	}
	if c.MaxKeyLen <= 0 {
		c.MaxKeyLen = 255
	}
}

// Stats is a point-in-time snapshot of server counters.
type Stats struct {
	Deposits  int64 // scalar deposits folded in (state deposits count their Count)
	Batches   int64 // deposit frames applied
	Snapshots int64 // snapshot requests served
	Keys      int64 // distinct accumulator keys
}

// shard is one slot of the accumulator slab.
type shard struct {
	mu sync.Mutex
	m  map[string]*binned.State
	_  [40]byte // pad to a cache line so shard locks don't false-share
}

// Server is a reduction-as-a-service aggregation endpoint.
type Server struct {
	cfg    Config
	shards []shard
	mask   uint64

	deposits  atomic.Int64
	batches   atomic.Int64
	snapshots atomic.Int64
	keys      atomic.Int64

	pool sync.Pool // *connState

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	wg sync.WaitGroup
}

// connState holds the per-connection reusable buffers. After the first
// few frames grow them to steady-state capacity, the deposit path
// performs zero heap allocations per frame.
type connState struct {
	len4    [4]byte
	frame   []byte
	vals    []float64
	out     []byte // reply buffer; out[:4] is the length prefix
	scratch binned.State
}

// New constructs a Server with cfg (defaults applied). Call Serve or
// ListenAndServe to start accepting connections.
func New(cfg Config) *Server {
	cfg.sanitize()
	s := &Server{
		cfg:    cfg,
		shards: make([]shard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
		conns:  make(map[net.Conn]struct{}),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*binned.State)
	}
	s.pool.New = func() any {
		return &connState{out: make([]byte, 4, 256)}
	}
	return s
}

// Stats returns a snapshot of the server counters. Counter fields are
// atomics; Keys is maintained atomically on first insert, so Stats
// never takes a shard lock.
func (s *Server) Stats() Stats {
	return Stats{
		Deposits:  s.deposits.Load(),
		Batches:   s.batches.Load(),
		Snapshots: s.snapshots.Load(),
		Keys:      s.keys.Load(),
	}
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until the listener is closed (by
// Shutdown, Close, or externally). It returns nil on a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("aggsrv: server is shut down")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Shutdown stops accepting connections and waits for in-flight
// connections to finish. If ctx expires first, remaining connections
// are force-closed (their buffered-but-unflushed deposits are
// dropped; anything acked by a flush is retained) and ctx.Err() is
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	if s.listener != nil {
		s.listener.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close force-closes the listener and every connection immediately.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	c := s.pool.Get().(*connState)
	defer s.pool.Put(c)
	br := bufio.NewReaderSize(conn, 1<<16)
	for {
		if s.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		if _, err := io.ReadFull(br, c.len4[:]); err != nil {
			return // EOF or deadline: client is done
		}
		n := int(binary.LittleEndian.Uint32(c.len4[:]))
		if n == 0 || n > s.cfg.MaxFrame {
			s.writeError(conn, c, fmt.Sprintf("frame length %d outside (0, %d]", n, s.cfg.MaxFrame))
			return
		}
		if cap(c.frame) < n {
			c.frame = make([]byte, n)
		}
		body := c.frame[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		c.out = c.out[:4]
		if err := s.process(c, body); err != nil {
			s.writeError(conn, c, err.Error())
			return
		}
		if len(c.out) > 4 {
			if err := s.writeFrame(conn, c); err != nil {
				return
			}
		}
	}
}

// process applies one frame body, appending any reply to c.out (which
// the caller has reset to its 4-byte length prefix). A returned error
// is a protocol violation: the handler reports it and closes.
//
// This is the hot path: for deposit frames it performs no heap
// allocations once c's buffers have grown to steady state.
func (s *Server) process(c *connState, body []byte) error {
	switch op := body[0]; op {
	case opDeposit:
		key, payload, err := splitKey(body[1:], s.cfg.MaxKeyLen)
		if err != nil {
			return err
		}
		if len(payload)%8 != 0 {
			return fmt.Errorf("deposit payload %d bytes, not a multiple of 8", len(payload))
		}
		n := len(payload) / 8
		if n == 0 {
			s.batches.Add(1)
			return nil
		}
		if cap(c.vals) < n {
			c.vals = make([]float64, n)
		}
		vals := c.vals[:n]
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		s.depositVals(c, key, vals)
		return nil

	case opState:
		key, payload, err := splitKey(body[1:], s.cfg.MaxKeyLen)
		if err != nil {
			return err
		}
		st, used, err := wire.DecodeBinned(payload)
		if err != nil {
			return fmt.Errorf("state deposit: %v", err)
		}
		if used != len(payload) {
			return fmt.Errorf("state deposit: %d trailing bytes", len(payload)-used)
		}
		sh := s.shardOf(key)
		sh.mu.Lock()
		s.entryLocked(sh, key).Merge(&st)
		sh.mu.Unlock()
		s.deposits.Add(st.Count())
		s.batches.Add(1)
		return nil

	case opFlush:
		if len(body) != 1 {
			return fmt.Errorf("flush frame has %d trailing bytes", len(body)-1)
		}
		c.out = append(c.out, repAck)
		return nil

	case opSnap:
		key, rest, err := splitKey(body[1:], s.cfg.MaxKeyLen)
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return fmt.Errorf("snapshot frame has %d trailing bytes", len(rest))
		}
		cp := s.copyState(key)
		s.snapshots.Add(1)
		snap := cp.Snapshot()
		c.out = append(c.out, repSnap)
		c.out = binary.LittleEndian.AppendUint64(c.out, math.Float64bits(cp.Finalize()))
		c.out = wire.AppendBinned(c.out, &snap)
		return nil
	}
	return fmt.Errorf("unknown op 0x%02x", body[0])
}

// depositVals folds a scalar batch into key's accumulator. Batches of
// coalesceMin or more are pre-folded into the connection scratch state
// outside the shard lock and applied with one exact Merge; the merged
// result finalizes to the same bits as depositing element-wise, so
// coalescing never perturbs the answer.
func (s *Server) depositVals(c *connState, key []byte, vals []float64) {
	sh := s.shardOf(key)
	if len(vals) >= coalesceMin {
		c.scratch.Reset()
		c.scratch.AddSlice(vals)
		sh.mu.Lock()
		s.entryLocked(sh, key).Merge(&c.scratch)
		sh.mu.Unlock()
	} else {
		sh.mu.Lock()
		s.entryLocked(sh, key).AddSlice(vals)
		sh.mu.Unlock()
	}
	s.deposits.Add(int64(len(vals)))
	s.batches.Add(1)
}

// copyState returns a consistent copy of key's accumulator, taken under
// that shard's lock only — snapshots never stall deposits on other
// shards. A missing key yields an empty state (value -0 by Finalize's
// empty-sum convention, count 0).
func (s *Server) copyState(key []byte) binned.State {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.m[string(key)]; ok {
		return *e
	}
	return binned.State{}
}

// entryLocked returns key's accumulator, inserting an empty one on
// first sight. Caller holds sh.mu. The lookup compiles to a no-copy
// map access; only the once-per-key insert allocates.
func (s *Server) entryLocked(sh *shard, key []byte) *binned.State {
	if e, ok := sh.m[string(key)]; ok {
		return e
	}
	e := new(binned.State)
	sh.m[string(key)] = e
	s.keys.Add(1)
	return e
}

// shardOf selects the shard for key by FNV-1a.
func (s *Server) shardOf(key []byte) *shard {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &s.shards[h&s.mask]
}

// splitKey parses the keyLen-prefixed key from rest of a frame body.
func splitKey(b []byte, maxKey int) (key, rest []byte, err error) {
	if len(b) < 2 {
		return nil, nil, errors.New("frame truncated before key length")
	}
	kl := int(binary.LittleEndian.Uint16(b))
	if kl > maxKey {
		return nil, nil, fmt.Errorf("key length %d exceeds limit %d", kl, maxKey)
	}
	if len(b) < 2+kl {
		return nil, nil, fmt.Errorf("frame truncated inside key (%d of %d bytes)", len(b)-2, kl)
	}
	return b[2 : 2+kl], b[2+kl:], nil
}

// writeFrame fills in c.out's length prefix and writes the frame.
func (s *Server) writeFrame(conn net.Conn, c *connState) error {
	binary.LittleEndian.PutUint32(c.out[:4], uint32(len(c.out)-4))
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	_, err := conn.Write(c.out)
	return err
}

func (s *Server) writeError(conn net.Conn, c *connState, msg string) {
	c.out = c.out[:4]
	c.out = append(c.out, repErr)
	c.out = append(c.out, msg...)
	s.writeFrame(conn, c)
}
