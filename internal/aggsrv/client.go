package aggsrv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"

	"repro/internal/binned"
	"repro/internal/wire"
)

// maxClientBatch is the largest number of scalars the client packs into
// one deposit frame; larger slices are split transparently. 8192
// scalars is a 64 KiB payload — big enough to amortize framing, small
// enough to stay well under any server MaxFrame.
const maxClientBatch = 8192

// Client is a connection to an aggregation server. A Client is not
// safe for concurrent use; give each goroutine its own (deposits from
// different connections interleave exactly, so this costs nothing).
type Client struct {
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
	enc  []byte // reusable frame build buffer
}

// Snapshot is a consistent point-in-time view of one server-side
// accumulator.
type Snapshot struct {
	// Value is the correctly-rounded sum of every deposit folded into
	// the key at snapshot time (the binned Finalize).
	Value float64
	// Count is the number of scalar deposits behind Value.
	Count int64
	// Wire is the canonical reprostate v1 encoding of the accumulator
	// state, suitable for re-depositing ('S') or offline inspection.
	Wire []byte
}

// State decodes the snapshot's wire state back into a live accumulator.
func (s *Snapshot) State() (binned.State, error) {
	st, n, err := wire.DecodeBinned(s.Wire)
	if err != nil {
		return binned.State{}, err
	}
	if n != len(s.Wire) {
		return binned.State{}, fmt.Errorf("aggsrv: %d trailing bytes after snapshot state", len(s.Wire)-n)
	}
	return st, nil
}

// Dial connects to an aggregation server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (useful for tests and
// custom transports).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriterSize(conn, 1<<16),
		br:   bufio.NewReaderSize(conn, 1<<15),
	}
}

// Deposit streams xs into key's accumulator. Deposits are buffered and
// fire-and-forget: call Flush to barrier them. Large slices are split
// into multiple frames; exactness makes the chunking invisible in the
// final bits.
func (c *Client) Deposit(key string, xs []float64) error {
	if err := validKey(key); err != nil {
		return err
	}
	for len(xs) > 0 {
		n := len(xs)
		if n > maxClientBatch {
			n = maxClientBatch
		}
		c.enc = c.enc[:0]
		c.enc = appendFrameHeader(c.enc, 1+2+len(key)+8*n)
		c.enc = append(c.enc, opDeposit)
		c.enc = appendKey(c.enc, key)
		for _, x := range xs[:n] {
			c.enc = binary.LittleEndian.AppendUint64(c.enc, math.Float64bits(x))
		}
		if _, err := c.bw.Write(c.enc); err != nil {
			return err
		}
		xs = xs[n:]
	}
	return nil
}

// DepositState merges a locally accumulated binned state into key's
// accumulator — the rank-local-partials pattern: accumulate locally,
// ship one canonical state instead of every scalar.
func (c *Client) DepositState(key string, st *binned.State) error {
	if err := validKey(key); err != nil {
		return err
	}
	snap := st.Snapshot()
	c.enc = c.enc[:0]
	c.enc = appendFrameHeader(c.enc, 1+2+len(key)+wire.EncodedSize(wire.KindBinned))
	c.enc = append(c.enc, opState)
	c.enc = appendKey(c.enc, key)
	c.enc = wire.AppendBinned(c.enc, &snap)
	_, err := c.bw.Write(c.enc)
	return err
}

// Flush barriers the connection: it returns once the server has
// applied every deposit sent before it.
func (c *Client) Flush() error {
	c.enc = c.enc[:0]
	c.enc = appendFrameHeader(c.enc, 1)
	c.enc = append(c.enc, opFlush)
	if _, err := c.bw.Write(c.enc); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	op, _, err := c.readReply()
	if err != nil {
		return err
	}
	if op != repAck {
		return fmt.Errorf("aggsrv: flush got reply 0x%02x, want ack", op)
	}
	return nil
}

// Snapshot returns a consistent snapshot of key's accumulator. It
// implies a flush of this connection's own deposits (frames are applied
// in order), but not of other connections'. The returned state is
// decoded and cross-checked against the server-computed value bits, so
// a corrupt reply surfaces as an error, never as silently wrong bits.
func (c *Client) Snapshot(key string) (Snapshot, error) {
	if err := validKey(key); err != nil {
		return Snapshot{}, err
	}
	c.enc = c.enc[:0]
	c.enc = appendFrameHeader(c.enc, 1+2+len(key))
	c.enc = append(c.enc, opSnap)
	c.enc = appendKey(c.enc, key)
	if _, err := c.bw.Write(c.enc); err != nil {
		return Snapshot{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Snapshot{}, err
	}
	op, body, err := c.readReply()
	if err != nil {
		return Snapshot{}, err
	}
	if op != repSnap || len(body) < 1+8 {
		return Snapshot{}, fmt.Errorf("aggsrv: snapshot got reply 0x%02x (%d bytes)", op, len(body))
	}
	snap := Snapshot{
		Value: math.Float64frombits(binary.LittleEndian.Uint64(body[1:])),
		Wire:  append([]byte(nil), body[9:]...),
	}
	st, err := snap.State()
	if err != nil {
		return Snapshot{}, fmt.Errorf("aggsrv: snapshot state rejected: %v", err)
	}
	if got := math.Float64bits(st.Finalize()); got != math.Float64bits(snap.Value) {
		return Snapshot{}, fmt.Errorf("aggsrv: snapshot value bits %x disagree with state bits %x",
			math.Float64bits(snap.Value), got)
	}
	snap.Count = st.Count()
	return snap, nil
}

// Close flushes buffered deposits and closes the connection. Deposits
// not barriered by a Flush may be dropped if the connection dies;
// Close's own flush covers the clean-shutdown path.
func (c *Client) Close() error {
	ferr := c.bw.Flush()
	cerr := c.conn.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// readReply reads one reply frame, translating 'E' replies to errors.
func (c *Client) readReply() (byte, []byte, error) {
	var len4 [4]byte
	if _, err := io.ReadFull(c.br, len4[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.LittleEndian.Uint32(len4[:]))
	if n == 0 || n > 1<<21 {
		return 0, nil, fmt.Errorf("aggsrv: reply frame length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return 0, nil, err
	}
	if body[0] == repErr {
		return 0, nil, errors.New("aggsrv: server: " + string(body[1:]))
	}
	return body[0], body, nil
}

func appendFrameHeader(dst []byte, bodyLen int) []byte {
	return binary.LittleEndian.AppendUint32(dst, uint32(bodyLen))
}

// validKey rejects keys the uint16 length prefix cannot carry; the
// server's (usually much tighter) MaxKeyLen is enforced server-side.
func validKey(key string) error {
	if len(key) > 1<<16-1 {
		return fmt.Errorf("aggsrv: key length %d exceeds wire limit", len(key))
	}
	return nil
}

func appendKey(dst []byte, key string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	return append(dst, key...)
}
